// Tests for the lower-bound constructions: the G_rc family (Figure 1 /
// Observation 1), the SD -> CSS -> MST encoding chain (§3.2), and the
// Theorem-3 ring experiment machinery.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "smst/graph/generators.h"
#include "smst/graph/mst_reference.h"
#include "smst/graph/properties.h"
#include "smst/lower_bounds/grc.h"
#include "smst/lower_bounds/ring_experiment.h"
#include "smst/lower_bounds/set_disjointness.h"
#include "smst/mst/randomized_mst.h"

namespace smst {
namespace {

// ------------------------------------------------------------- G_rc ----

TEST(GrcTest, StructureMatchesFigure1) {
  Xoshiro256 rng(1);
  auto inst = BuildGrc(5, 40, rng);
  const auto& g = inst.graph;
  // rows*cols grid nodes + |X|-1 tree internals.
  EXPECT_EQ(g.NumNodes(), 5 * 40 + inst.x_cols.size() - 1);
  // X is a power of two containing the first and last columns.
  EXPECT_EQ(inst.x_cols.size() & (inst.x_cols.size() - 1), 0u);
  EXPECT_EQ(inst.x_cols.front(), 0u);
  EXPECT_EQ(inst.x_cols.back(), 39u);
  // Alice and Bob sit at the ends of row 1.
  EXPECT_EQ(inst.alice, inst.node_at[0][0]);
  EXPECT_EQ(inst.bob, inst.node_at[0][39]);
  // One attachment edge per other row on each side.
  EXPECT_EQ(inst.alice_row_edges.size(), 4u);
  EXPECT_EQ(inst.bob_row_edges.size(), 4u);
  for (EdgeIndex e : inst.alice_row_edges) {
    EXPECT_TRUE(g.GetEdge(e).u == inst.alice || g.GetEdge(e).v == inst.alice);
  }
}

TEST(GrcTest, BackboneSpansTheGraph) {
  Xoshiro256 rng(2);
  auto inst = BuildGrc(4, 32, rng);
  // Backbone + all Alice/Bob attachments marked = the all-zero SD
  // instance; it must span (and indeed the backbone alone must not).
  std::vector<bool> marked(inst.graph.NumEdges(), false);
  for (EdgeIndex e : inst.backbone_edges) marked[e] = true;
  EXPECT_FALSE(MarkedSubgraphSpans(inst.graph, marked));
  for (EdgeIndex e : inst.alice_row_edges) marked[e] = true;
  for (EdgeIndex e : inst.bob_row_edges) marked[e] = true;
  EXPECT_TRUE(MarkedSubgraphSpans(inst.graph, marked));
}

TEST(GrcTest, Observation1DiameterIsOColOverLog) {
  // D = Theta(c / log n): the X highway + tree shortcut beats the c-hop
  // row distance by a log factor.
  Xoshiro256 rng(3);
  for (std::size_t cols : {64u, 128u, 256u}) {
    auto inst = BuildGrc(4, cols, rng);
    const auto d = ExactDiameter(inst.graph);
    const double n = static_cast<double>(inst.graph.NumNodes());
    const double bound = static_cast<double>(cols) / std::log2(n);
    EXPECT_LE(d, 8 * bound + 2 * std::log2(n) + 8) << "cols=" << cols;
    EXPECT_GE(d, bound / 8) << "cols=" << cols;
    // And much smaller than the naive row distance.
    EXPECT_LT(d, cols);
  }
}

TEST(GrcTest, RegimeProducesValidParams) {
  for (std::size_t n : {100u, 1000u, 5000u}) {
    auto [rows, cols] = GrcRegimeForSize(n);
    EXPECT_GE(rows, 2u);
    EXPECT_GE(cols, 4u);
    EXPECT_GT(cols, rows);  // the paper's c >> r regime
  }
}

TEST(GrcTest, RejectsDegenerateParams) {
  Xoshiro256 rng(4);
  EXPECT_THROW(BuildGrc(1, 40, rng), std::invalid_argument);
  EXPECT_THROW(BuildGrc(5, 2, rng), std::invalid_argument);
}

// --------------------------------------------------- SD / CSS / MST ----

TEST(SdTest, DisjointnessPredicate) {
  SdInstance sd;
  sd.x = {true, false, true};
  sd.y = {false, true, false};
  EXPECT_TRUE(sd.Disjoint());
  sd.y[2] = true;
  EXPECT_FALSE(sd.Disjoint());
}

TEST(SdTest, ForcedIntersectionIntersects) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(RandomSdInstance(16, rng, true).Disjoint());
  }
}

TEST(CssTest, MarkedSpansIffDisjoint) {
  Xoshiro256 rng(6);
  auto inst = BuildGrc(6, 24, rng);
  for (int trial = 0; trial < 10; ++trial) {
    auto sd = RandomSdInstance(5, rng, trial % 2 == 0);
    auto enc = EncodeCssAsMstWeights(inst, sd, rng);
    EXPECT_EQ(MarkedSubgraphSpans(enc.graph, enc.marked), sd.Disjoint());
  }
}

TEST(CssTest, MarkedEdgesAreAllLighter) {
  Xoshiro256 rng(7);
  auto inst = BuildGrc(4, 16, rng);
  auto sd = RandomSdInstance(3, rng, false);
  auto enc = EncodeCssAsMstWeights(inst, sd, rng);
  Weight max_marked = 0, min_unmarked = kPlusInfinity;
  for (EdgeIndex e = 0; e < enc.graph.NumEdges(); ++e) {
    const Weight w = enc.graph.GetEdge(e).weight;
    if (enc.marked[e]) max_marked = std::max(max_marked, w);
    else min_unmarked = std::min(min_unmarked, w);
  }
  EXPECT_LT(max_marked, min_unmarked);
}

TEST(CssTest, MstReadoutSolvesSetDisjointness) {
  // The full reduction, end to end: encode SD as weights, solve MST with
  // the *distributed sleeping algorithm*, read the SD answer back off.
  Xoshiro256 rng(8);
  auto inst = BuildGrc(5, 16, rng);
  for (int trial = 0; trial < 6; ++trial) {
    auto sd = RandomSdInstance(4, rng, trial % 2 == 0);
    auto enc = EncodeCssAsMstWeights(inst, sd, rng);
    auto run = RunRandomizedMst(enc.graph, {.seed = 100u + trial});
    ASSERT_EQ(run.consistency_error, "");
    // Sequential cross-check.
    EXPECT_EQ(run.tree_edges, KruskalMst(enc.graph));
    EXPECT_EQ(SdAnswerFromMst(enc, run.tree_edges), sd.Disjoint())
        << "trial " << trial;
  }
}

// ---------------------------------------------------- Ring (Thm 3) -----

TEST(RingTest, TwoHeaviestSeparationIsOftenLinear) {
  // With constant probability the separation is Omega(n); over 40 seeds
  // the mean should be well above n/8 (uniform positions -> mean ~ n/4).
  const std::size_t n = 200;
  double total = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Xoshiro256 rng(seed);
    auto g = MakeRing(n, rng);
    total += static_cast<double>(TwoHeaviestEdgeSeparation(g));
  }
  EXPECT_GT(total / 40.0, n / 8.0);
}

TEST(RingTest, AwakeFloorGrowsLogarithmically) {
  EXPECT_NEAR(RingAwakeFloor(13 * 13), 2.0, 1e-9);
  EXPECT_GT(RingAwakeFloor(10000), RingAwakeFloor(100));
}

TEST(RingReplayTest, KnowledgeSpreadsOneHopPerSharedAwakeRound) {
  // 4-node ring; nodes 0 and 1 awake together in round 1; node 2 never
  // shares a round with anyone.
  std::vector<std::vector<std::uint64_t>> wakes{
      {1, 2}, {1}, {3}, {2}};
  auto k = ReplayRingKnowledge(4, wakes, 0);
  // Node 0 heard node 1 in round 1 (right += 1); node 3 in round 2.
  EXPECT_EQ(k[0].right, 1u);
  EXPECT_EQ(k[0].left, 1u);
  // Node 1 heard node 0 only.
  EXPECT_EQ(k[1].left, 1u);
  EXPECT_EQ(k[1].right, 0u);
  // Node 2 heard nobody.
  EXPECT_EQ(k[2].left, 0u);
  EXPECT_EQ(k[2].right, 0u);
}

TEST(RingReplayTest, TransitiveKnowledgeTravels) {
  // Chain of shared rounds: (0,1)@1 then (1,2)@2: node 2 learns about 0.
  std::vector<std::vector<std::uint64_t>> wakes{{1}, {1, 2}, {2}, {}};
  // Node 3 never wakes (allowed: replay only, not a protocol).
  auto k = ReplayRingKnowledge(4, wakes, 0);
  EXPECT_EQ(k[2].left, 2u);  // knows node 1 and node 0
}

TEST(RingReplayTest, RepeatedExchangeAddsNothingWithoutNewInformation) {
  // Nodes 0 and 1 exchange twice; node 1 never learns anything new, so
  // node 0's knowledge stays one hop.
  std::vector<std::vector<std::uint64_t>> wakes{{1, 2}, {1, 2}, {}, {}};
  auto k = ReplayRingKnowledge(4, wakes, 0);
  EXPECT_EQ(k[0].right, 1u);
  EXPECT_EQ(k[0].left, 0u);
}

TEST(RingReplayTest, BudgetSnapshotsEarlierKnowledge) {
  // Node 0 hears node 1 at its 1st wake and node 3 at its 2nd.
  std::vector<std::vector<std::uint64_t>> wakes{{1, 2}, {1}, {}, {2}};
  auto k1 = ReplayRingKnowledge(4, wakes, 1);
  auto k2 = ReplayRingKnowledge(4, wakes, 2);
  EXPECT_EQ(k1[0].right, 1u);
  EXPECT_EQ(k1[0].left, 0u);  // after the first wake, node 3 unheard
  EXPECT_EQ(k2[0].right, 1u);
  EXPECT_EQ(k2[0].left, 1u);
}

TEST(RingIsolationTest, MeasuredOnARealRun) {
  const std::size_t n = 169;  // 13^2
  Xoshiro256 rng(99);
  auto g = MakeRing(n, rng);
  MstOptions opt;
  opt.seed = 99;
  opt.record_wake_times = true;
  auto run = RunRandomizedMst(g, opt);
  ASSERT_EQ(run.wake_times.size(), n);
  const double f1 = SegmentIsolationFraction(n, run.wake_times, 1);
  // Isolation fractions are probabilities in [0, 1]; for a=0 the segment
  // length is 1 and isolation means "never heard anything by wake 0" —
  // trivially true.
  EXPECT_GE(f1, 0.0);
  EXPECT_LE(f1, 1.0);
  const double f0 = SegmentIsolationFraction(n, run.wake_times, 0);
  EXPECT_EQ(f0, 1.0);
}

TEST(RingIsolationTest, SegmentLongerThanRingGivesZero) {
  std::vector<std::vector<std::uint64_t>> wakes(10);
  EXPECT_EQ(SegmentIsolationFraction(10, wakes, 3), 0.0);
}

}  // namespace
}  // namespace smst
