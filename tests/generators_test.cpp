#include <set>

#include <gtest/gtest.h>

#include "smst/graph/generators.h"
#include "smst/graph/properties.h"

namespace smst {
namespace {

void ExpectValid(const WeightedGraph& g, std::size_t n) {
  EXPECT_EQ(g.NumNodes(), n);
  // Builder already guarantees connected / simple / distinct weights; we
  // re-check weight distinctness as a belt-and-braces property.
  std::set<Weight> w;
  for (const Edge& e : g.Edges()) w.insert(e.weight);
  EXPECT_EQ(w.size(), g.NumEdges());
}

TEST(GeneratorsTest, Path) {
  Xoshiro256 rng(1);
  auto g = MakePath(10, rng);
  ExpectValid(g, 10);
  EXPECT_EQ(g.NumEdges(), 9u);
  EXPECT_EQ(ExactDiameter(g), 9u);
}

TEST(GeneratorsTest, Ring) {
  Xoshiro256 rng(1);
  auto g = MakeRing(10, rng);
  ExpectValid(g, 10);
  EXPECT_EQ(g.NumEdges(), 10u);
  EXPECT_EQ(ExactDiameter(g), 5u);
  for (NodeIndex v = 0; v < 10; ++v) EXPECT_EQ(g.DegreeOf(v), 2u);
}

TEST(GeneratorsTest, RingRejectsTiny) {
  Xoshiro256 rng(1);
  EXPECT_THROW(MakeRing(2, rng), std::invalid_argument);
}

TEST(GeneratorsTest, Star) {
  Xoshiro256 rng(2);
  auto g = MakeStar(8, rng);
  ExpectValid(g, 8);
  EXPECT_EQ(g.NumEdges(), 7u);
  EXPECT_EQ(g.DegreeOf(0), 7u);
  EXPECT_EQ(ExactDiameter(g), 2u);
}

TEST(GeneratorsTest, Complete) {
  Xoshiro256 rng(3);
  auto g = MakeComplete(7, rng);
  ExpectValid(g, 7);
  EXPECT_EQ(g.NumEdges(), 21u);
  EXPECT_EQ(ExactDiameter(g), 1u);
}

TEST(GeneratorsTest, BinaryTree) {
  Xoshiro256 rng(4);
  auto g = MakeBinaryTree(15, rng);
  ExpectValid(g, 15);
  EXPECT_EQ(g.NumEdges(), 14u);
  EXPECT_EQ(ExactDiameter(g), 6u);  // leaf -> root -> other leaf
}

TEST(GeneratorsTest, Grid) {
  Xoshiro256 rng(5);
  auto g = MakeGrid(4, 5, rng);
  ExpectValid(g, 20);
  EXPECT_EQ(g.NumEdges(), 4u * 4 + 5u * 3);  // rows*(cols-1) + (rows-1)*cols
  EXPECT_EQ(ExactDiameter(g), 3u + 4u);
}

TEST(GeneratorsTest, Barbell) {
  Xoshiro256 rng(6);
  auto g = MakeBarbell(10, rng);
  ExpectValid(g, 10);
  EXPECT_EQ(ExactDiameter(g), 3u);
}

TEST(GeneratorsTest, ErdosRenyiIsAlwaysConnected) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    auto g = MakeErdosRenyi(50, 0.01, rng);  // far below threshold
    ExpectValid(g, 50);                      // Build() throws if unconnected
  }
}

TEST(GeneratorsTest, RandomTreeHasExactlyNMinusOneEdges) {
  Xoshiro256 rng(8);
  auto g = MakeRandomTree(64, rng);
  ExpectValid(g, 64);
  EXPECT_EQ(g.NumEdges(), 63u);
}

TEST(GeneratorsTest, RandomGeometricConnected) {
  Xoshiro256 rng(9);
  auto g = MakeRandomGeometric(60, 0.18, rng);
  ExpectValid(g, 60);
}

TEST(GeneratorsTest, SameSeedSameGraph) {
  Xoshiro256 a(42), b(42);
  auto g1 = MakeErdosRenyi(30, 0.2, a);
  auto g2 = MakeErdosRenyi(30, 0.2, b);
  ASSERT_EQ(g1.NumEdges(), g2.NumEdges());
  for (EdgeIndex e = 0; e < g1.NumEdges(); ++e) {
    EXPECT_EQ(g1.GetEdge(e).u, g2.GetEdge(e).u);
    EXPECT_EQ(g1.GetEdge(e).v, g2.GetEdge(e).v);
    EXPECT_EQ(g1.GetEdge(e).weight, g2.GetEdge(e).weight);
  }
}

TEST(GeneratorsTest, MaxIdOptionSamplesSparseIds) {
  Xoshiro256 rng(10);
  GeneratorOptions opt;
  opt.max_id = 10000;
  auto g = MakeRing(20, rng, opt);
  EXPECT_EQ(g.MaxId(), 10000u);
  bool any_above_n = false;
  for (NodeIndex v = 0; v < 20; ++v) {
    EXPECT_GE(g.IdOf(v), 1u);
    EXPECT_LE(g.IdOf(v), 10000u);
    any_above_n |= g.IdOf(v) > 20;
  }
  EXPECT_TRUE(any_above_n);  // overwhelmingly likely
}

TEST(GeneratorsTest, UnshuffledIdsAreIndexOrder) {
  Xoshiro256 rng(11);
  GeneratorOptions opt;
  opt.shuffle_ids = false;
  auto g = MakePath(5, rng, opt);
  for (NodeIndex v = 0; v < 5; ++v) EXPECT_EQ(g.IdOf(v), v + 1);
}

TEST(GeneratorsTest, FromEdgeList) {
  Xoshiro256 rng(12);
  auto g = FromEdgeList(3, {{0, 1}, {1, 2}}, rng);
  ExpectValid(g, 3);
  EXPECT_EQ(g.NumEdges(), 2u);
}

}  // namespace
}  // namespace smst
