// The harness's JSON-lines records feed strict downstream parsers (jq,
// sweep-analysis scripts); these tests round-trip the emitters through a
// strict in-test parser so invalid output (bare nan tokens, raw control
// characters in strings) fails here instead of in a pipeline.
#include <cctype>
#include <cmath>
#include <limits>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "smst/util/json.h"

namespace smst {
namespace {

// ------------------------------------------------ strict mini-parser ---
//
// Accepts exactly the JSON grammar (RFC 8259) for one value; no
// extensions, no leniency. Decodes strings (short escapes + \uXXXX for
// the BMP subset the emitter produces) so tests can compare round-tripped
// contents, and records top-level object keys that map to `null`.

class StrictParser {
 public:
  // By value: callers pass freshly concatenated temporaries.
  explicit StrictParser(std::string text) : s_(std::move(text)) {}

  bool ParseValue() {
    SkipWs();
    if (!ParseValueInner()) return false;
    SkipWs();
    return pos_ == s_.size();  // trailing garbage is a failure
  }

  const std::map<std::string, std::string>& TopStrings() const {
    return top_strings_;
  }
  const std::map<std::string, double>& TopNumbers() const {
    return top_numbers_;
  }
  const std::map<std::string, bool>& TopNulls() const { return top_nulls_; }

 private:
  bool ParseValueInner() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': { std::string out; return ParseString(&out); }
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: { double out; return ParseNumber(&out); }
    }
  }

  bool ParseObject() {
    const bool top = depth_ == 0;
    ++depth_;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') { ++pos_; --depth_; return true; }
    for (;;) {
      SkipWs();
      std::string key;
      if (pos_ >= s_.size() || s_[pos_] != '"' || !ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_++] != ':') return false;
      SkipWs();
      if (top && pos_ < s_.size() && s_[pos_] == '"') {
        std::string v;
        if (!ParseString(&v)) return false;
        top_strings_[key] = v;
      } else if (top && pos_ < s_.size() && s_[pos_] == 'n') {
        if (!Literal("null")) return false;
        top_nulls_[key] = true;
      } else if (top && pos_ < s_.size() &&
                 (s_[pos_] == '-' ||
                  std::isdigit(static_cast<unsigned char>(s_[pos_])))) {
        double v;
        if (!ParseNumber(&v)) return false;
        top_numbers_[key] = v;
      } else if (!ParseValueInner()) {
        return false;
      }
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == '}') { ++pos_; --depth_; return true; }
      return false;
    }
  }

  bool ParseArray() {
    ++depth_;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') { ++pos_; --depth_; return true; }
    for (;;) {
      SkipWs();
      if (!ParseValueInner()) return false;
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == ']') { ++pos_; --depth_; return true; }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // '"'
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return false;  // raw control char: invalid JSON
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 >= s_.size()) return false;
            unsigned v = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = s_[pos_ + i];
              if (!std::isxdigit(static_cast<unsigned char>(h))) return false;
              v = v * 16 +
                  (std::isdigit(static_cast<unsigned char>(h))
                       ? static_cast<unsigned>(h - '0')
                       : static_cast<unsigned>(std::tolower(h) - 'a') + 10);
            }
            // The emitter only \u-escapes control bytes; decode those.
            if (v > 0x7f) return false;
            out->push_back(static_cast<char>(v));
            pos_ += 4;
            break;
          }
          default: return false;
        }
        ++pos_;
        continue;
      }
      out->push_back(static_cast<char>(c));
      ++pos_;
    }
    return false;  // unterminated
  }

  bool ParseNumber(double* out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    if (pos_ >= s_.size() ||
        !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      return false;
    }
    // No leading zeros before more digits (strict grammar).
    if (s_[pos_] == '0' && pos_ + 1 < s_.size() &&
        std::isdigit(static_cast<unsigned char>(s_[pos_ + 1]))) {
      return false;
    }
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        return false;
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        return false;
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    *out = std::stod(s_.substr(start, pos_ - start));
    return true;
  }

  bool Literal(const std::string& word) {
    if (s_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string s_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::map<std::string, std::string> top_strings_;
  std::map<std::string, double> top_numbers_;
  std::map<std::string, bool> top_nulls_;
};

bool IsValidJson(const std::string& text) {
  return StrictParser(text).ParseValue();
}

// --------------------------------------------------------- JsonNum -----

TEST(JsonNumTest, IntegralValuesPrintWithoutFraction) {
  EXPECT_EQ(JsonNum(0.0), "0");
  EXPECT_EQ(JsonNum(42.0), "42");
  EXPECT_EQ(JsonNum(-17.0), "-17");
}

TEST(JsonNumTest, NonFiniteBecomesNull) {
  // `nan` / `inf` are not JSON tokens; a 100%-crash sweep's averages
  // used to corrupt whole records this way.
  EXPECT_EQ(JsonNum(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonNum(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNum(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonNumTest, EveryOutputIsAValidJsonValue) {
  for (double v : {0.0, 1.5, -2.25e-7, 1e300, 3.14159265358979,
                   std::numeric_limits<double>::quiet_NaN(),
                   std::numeric_limits<double>::infinity()}) {
    EXPECT_TRUE(IsValidJson(JsonNum(v))) << JsonNum(v);
  }
}

// --------------------------------------------------------- JsonStr -----

TEST(JsonStrTest, EscapesQuotesBackslashesAndControls) {
  const std::string hostile =
      "name \"quoted\" back\\slash\nnewline\ttab\rcr\x01\x1f bytes";
  const std::string token = JsonStr(hostile);
  StrictParser p("{\"k\":" + token + "}");
  ASSERT_TRUE(p.ParseValue()) << token;
  ASSERT_EQ(p.TopStrings().count("k"), 1u);
  EXPECT_EQ(p.TopStrings().at("k"), hostile);  // exact round-trip
}

TEST(JsonStrTest, PlainStringsPassThrough) {
  EXPECT_EQ(JsonStr("ring-sweep"), "\"ring-sweep\"");
}

// -------------------------------------------- harness-shaped records ---

TEST(JsonRecordTest, HarnessStyleLineSurvivesHostileInputs) {
  // The exact shape Harness::JsonRecord emits: an experiment/record
  // envelope plus caller fields — here with a hostile experiment name
  // and non-finite aggregates, the two historical corruption sources.
  const std::string name = "sweep\n\"v2\"\ttab\x02";
  const double bad_avg = std::numeric_limits<double>::quiet_NaN();
  const std::string line = "{\"experiment\":" + JsonStr(name) +
                           ",\"record\":" + JsonStr("aggregate") +
                           ",\"n\":1024,\"avg_awake\":" + JsonNum(bad_avg) +
                           ",\"rounds\":" + JsonNum(69774.0) + "}";
  StrictParser p(line);
  ASSERT_TRUE(p.ParseValue()) << line;
  EXPECT_EQ(p.TopStrings().at("experiment"), name);
  EXPECT_EQ(p.TopStrings().at("record"), "aggregate");
  EXPECT_EQ(p.TopNumbers().at("n"), 1024.0);
  EXPECT_EQ(p.TopNumbers().at("rounds"), 69774.0);
  EXPECT_TRUE(p.TopNulls().count("avg_awake"));  // null, not `nan`
}

TEST(JsonRecordTest, StrictParserRejectsTheOldCorruptForms) {
  // Guard the guard: the parser these tests rely on must actually flag
  // the malformed output the emitters used to produce.
  EXPECT_FALSE(IsValidJson("{\"avg\":nan}"));
  EXPECT_FALSE(IsValidJson("{\"avg\":inf}"));
  EXPECT_FALSE(IsValidJson("{\"name\":\"a\nb\"}"));  // raw control char
  EXPECT_FALSE(IsValidJson("{\"name\":\"unterminated}"));
  EXPECT_FALSE(IsValidJson("{\"n\":01}"));
  EXPECT_FALSE(IsValidJson("{\"n\":1} trailing"));
}

}  // namespace
}  // namespace smst
