// smst_lint fixture: every violation here carries a suppression comment,
// so the expected finding count for this file is zero. Exercises the
// same-line form, the next-line form, and the `*` wildcard. Lint input
// only — never compiled.
#include <cstdlib>
#include <ctime>
#include <unordered_map>

namespace fixture {

int SameLineSuppression() {
  return rand();  // smst-lint-disable(det-rand)
}

long NextLineSuppression() {
  // smst-lint-disable-next-line(det-wall-clock)
  return time(nullptr);
}

int MultiRuleSuppression() {
  // smst-lint-disable-next-line(det-rand, det-wall-clock)
  return rand() + static_cast<int>(time(nullptr));
}

struct Frame {
  int pc = 0;
};

int SuppressedFlatEntry(Frame& fr) {
  // smst-lint-disable-next-line(flat-missing-case)
  switch (fr.pc) {  // no case 0, but the suppression covers it
    case 1:
      SMST_FLAT_AWAKE(fr, 2);
      return 1;
    default:
      throw fr.pc;
  }
}

int WildcardSuppression() {
  std::unordered_map<int, int> m;
  m[1] = 2;
  int sum = 0;
  for (const auto& [k, v] : m) {  // smst-lint-disable(*)
    sum += k + v;
  }
  return sum;
}

}  // namespace fixture
