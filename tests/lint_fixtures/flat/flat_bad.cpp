// smst_lint fixture: flat-lowering violations. A switch becomes a "Duff
// switch" when its body mentions SMST_FLAT_AWAKE or SMST_FLAT_SUB; the
// flat rules key on that, not on the directory, so this fixture needs no
// special path segment. Lint input only — never compiled.

namespace fixture {

struct Frame {
  int pc = 0;
  int phase = 0;
  int saved = 0;
};

// Neither a `case 0:` entry label nor a `default:` guard: both gaps are
// reported against the switch line.
int ResumeNoEntry(Frame& fr) {
  switch (fr.pc) {  // flat-missing-case (x2: no case 0, no default)
    case 1:
      fr.phase = 2;
      SMST_FLAT_AWAKE(fr, 2);
      return 1;
    case 2:
      return 0;
  }
  return -1;
}

// State 0 bleeds into state 1: the span before `case 1:` ends in an
// assignment, not a terminator.
int FallsThrough(Frame& fr) {
  switch (fr.pc) {
    default:
      throw fr.pc;
    case 0:
      fr.phase = 1;
      SMST_FLAT_AWAKE(fr, 1);
      fr.saved = fr.phase;
    case 1:  // flat-fallthrough
      return fr.saved;
  }
}

// `total` lives on the C++ stack, which does not survive the return
// hidden inside SMST_FLAT_AWAKE; the read on resume sees a fresh frame.
// This is the minimal repro for flat-local-across-resume.
int LocalAcrossResume(Frame& fr) {
  switch (fr.pc) {
    default:
      throw fr.pc;
    case 0: {
      int total = fr.phase + 1;
      SMST_FLAT_AWAKE(fr, 1);
      return total;  // flat-local-across-resume
    }
  }
}

}  // namespace fixture
