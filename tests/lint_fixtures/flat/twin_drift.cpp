// smst_lint fixture: flat/coroutine twin drift. Each directive pairs a
// flat class with its coroutine twin; the analyzer collects kTag*
// identifiers and string literals from both sides and reports drift at
// the directive line. Lint input only — never compiled.

namespace fixture {

template <typename T>
struct Task {};
struct Frame;
struct Ctx;
struct Awaiter {};

Awaiter Tick(Ctx& ctx);
void Send(int tag);
void Fail(const char* what);

// The coroutine gained a reply tag and reworded its error string; the
// flat lowering was never updated to match.
// smst-lint-twin(FlatEcho=EchoWave)   <- flat-twin-drift fires here
struct FlatEcho {
  int Start(Frame& fr) {
    Send(kTagEchoProbe);
    Fail("echo: probe lost");
    return 1;
  }
};

Task<int> EchoWave(Ctx& ctx) {
  Send(kTagEchoProbe);
  Send(kTagEchoReply);
  Fail("echo: reply lost");
  co_await Tick(ctx);
  co_return 0;
}

// A matched pair must stay silent: identical tags and strings.
// smst-lint-twin(FlatSum=SumWave)
struct FlatSum {
  int Start(Frame& fr) {
    Send(kTagSumUp);
    Fail("sum: overflow");
    return 1;
  }
};

Task<int> SumWave(Ctx& ctx) {
  Send(kTagSumUp);
  Fail("sum: overflow");
  co_await Tick(ctx);
  co_return 0;
}

}  // namespace fixture
