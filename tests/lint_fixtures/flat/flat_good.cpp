// smst_lint fixture: flat-lowering look-alikes that must NOT be flagged.
// Lint input only — never compiled.

namespace fixture {

struct Frame {
  int pc = 0;
  int phase = 0;
  int saved = 0;
};

// The canonical shape: a case 0 entry, a default that throws, every
// state span ends in a terminator, and values that cross a resume point
// live in the frame, not on the stack.
int WellFormedResume(Frame& fr) {
  switch (fr.pc) {
    default:
      throw fr.pc;
    case 0: {
      int scratch = fr.phase + 1;  // consumed before the resume point
      fr.saved = scratch;
      SMST_FLAT_AWAKE(fr, 1);
      return 1;
    }
    case 1:
      return fr.saved;  // persisted in the frame: fine
  }
}

// A plain dispatch switch (no resume macro in the body) is not a flat
// state machine; entry/default/fallthrough rules do not apply.
int PlainDispatch(int op) {
  switch (op) {
    case 1:
      op += 1;
    case 2:
      return op;
  }
  return 0;
}

}  // namespace fixture
