// smst_lint fixture: determinism look-alikes that must NOT be flagged.
// This file is lint input only — it is never compiled or linked.
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Sampler {
  int rand() const { return 4; }  // member named rand: calls are fine
  long time(int zone) const { return zone; }
};

int MemberCallsNotFlagged(const Sampler& s) {
  // Member access spelling of banned names is not ambient state.
  return s.rand() + static_cast<int>(s.time(0));
}

int CommentAndStringImmunity() {
  // Calls in comments are invisible: rand(); time(nullptr);
  const char* doc = "call rand() or std::random_device at your peril";
  const char* raw = R"(time(nullptr) inside a raw string
  spanning lines with rand() mentions)";
  /* block comment: srand(7); steady_clock::now() */
  return doc[0] + raw[0];
}

int MembershipOnlyUnordered(const std::vector<int>& xs) {
  // Insert/find without iteration leaks no hash order.
  std::unordered_set<int> seen;
  int dupes = 0;
  for (int x : xs) {
    if (!seen.insert(x).second) ++dupes;
  }
  return dupes;
}

int OrderedIterationFine(const std::map<std::string, int>& m) {
  int sum = 0;
  for (const auto& [k, v] : m) sum += static_cast<int>(k.size()) + v;
  return sum;
}

int ValueKeysFine() {
  std::map<std::string, int*> by_name;  // pointer *values* are fine as mapped
  return by_name.size();
}

std::vector<int> SortBeforeUseIsFine() {
  // The canonical laundering idiom: copy out of the unordered container,
  // sort, THEN read. The sort kills the taint, so nothing downstream fires.
  std::unordered_set<int> pool;
  pool.insert(3);
  std::vector<int> out(pool.begin(), pool.end());
  std::sort(out.begin(), out.end());
  int sum = 0;
  for (int x : out) sum += x;
  return out;
}

}  // namespace fixture
