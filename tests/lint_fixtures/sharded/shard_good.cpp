// smst_lint fixture: sharded-runtime shapes that must NOT be flagged.
// Lint input only — never compiled.

namespace fixture {

struct Ring;
struct WireEntry {
  unsigned node = 0;
  const void* payload = nullptr;
};
struct Barrier {
  void arrive_and_wait();
  void arrive_and_drop();
};
struct Exchange {
  void Push(unsigned shard, unsigned lane, const WireEntry& e);
  void DrainInto(unsigned shard, unsigned lane, Ring& out);
};
struct Metrics {
  unsigned long sends = 0;
};

// The correct round shape: push all outbound entries, hit the barrier,
// then drain what the peers pushed.
void RoundStep(Barrier& barrier, Exchange& ex, Ring& ring,
               const WireEntry& e) {
  ex.Push(0, 1, e);
  barrier.arrive_and_wait();
  ex.DrainInto(1, 0, ring);
  barrier.arrive_and_wait();
}

// Wire entries carry values; a worker may still take addresses of its
// own state for private use outside the wire surface.
unsigned LocalAddressesPrivately(Exchange& ex, const WireEntry& in) {
  Metrics metrics;
  Metrics* mine = &metrics;  // private use: never crosses the wire
  WireEntry e{in.node, nullptr};
  ex.Push(0, 1, e);
  return mine->sends != 0 ? 1u : 0u;
}

// A retiring worker drops its barrier slot after its last push; the
// push is on the correct side.
void RetireWorker(Barrier& barrier, Exchange& ex, const WireEntry& e) {
  ex.Push(0, 1, e);
  barrier.arrive_and_drop();
}

}  // namespace fixture
