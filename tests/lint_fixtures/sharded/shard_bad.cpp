// smst_lint fixture: sharded-runtime violations. Lives under a
// `sharded/` path segment so the shard rules apply, exactly as they do
// to the sharded simulator backend. Lint input only — never compiled.

namespace fixture {

struct Ring;
struct WireEntry {
  unsigned node = 0;
  const void* payload = nullptr;
};
struct Barrier {
  void arrive_and_wait();
};
struct Exchange {
  void Push(unsigned shard, unsigned lane, const WireEntry& e);
  void DrainInto(unsigned shard, unsigned lane, Ring& out);
};
struct Metrics {
  unsigned long sends = 0;
};

// Draining before the first barrier reads rings that peer shards are
// still writing.
void DrainTooEarly(Barrier& barrier, Exchange& ex, Ring& ring) {
  ex.DrainInto(0, 1, ring);  // shard-barrier-order
  barrier.arrive_and_wait();
}

// Pushing after the last barrier races the receiving shard's drain.
void PushTooLate(Barrier& barrier, Exchange& ex, const WireEntry& e) {
  barrier.arrive_and_wait();
  ex.Push(0, 1, e);  // shard-barrier-order
}

// A pointer to this shard's private metrics escapes into a wire entry;
// the receiving shard would touch unsynchronized state.
void LeakMetrics(Exchange& ex) {
  Metrics metrics;
  WireEntry e{1, &metrics};  // shard-local-escape
  ex.Push(0, 1, e);
}

}  // namespace fixture
