// smst_lint fixture: determinism violations. Every flagged construct in
// this file must be reported; lint_test.cpp asserts the exact set.
// This file is lint input only — it is never compiled or linked.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

int AmbientRandomness() {
  int x = rand();                   // det-rand
  srand(42);                        // det-rand
  std::random_device dev;           // det-random-device
  return x + static_cast<int>(dev());
}

long WallClock() {
  long t = time(nullptr);                                // det-wall-clock
  auto tp = std::chrono::steady_clock::now();            // det-wall-clock
  auto wall = std::chrono::system_clock::now();          // det-wall-clock
  return t + tp.time_since_epoch().count() +
         wall.time_since_epoch().count();
}

int OrderLeaks() {
  std::unordered_map<int, int> counts;
  counts[1] = 2;
  int sum = 0;
  for (const auto& [k, v] : counts) {  // det-unordered-iter
    sum += k + v;
  }
  std::unordered_set<int> seen;
  auto it = seen.begin();  // iterator is pending here, not yet a finding
  return sum + (it == seen.end() ? 0 : *it);  // det-unordered-iter (read of it)
}

struct Node {
  int id;
};

int PointerKeys(Node* a) {
  std::map<Node*, int> by_addr;  // det-pointer-key
  by_addr[a] = 1;
  return by_addr.size();
}

}  // namespace fixture
