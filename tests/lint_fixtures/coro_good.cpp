// smst_lint fixture: coroutine-adjacent code that must NOT be flagged.
// Lint input only — never compiled.
#include <algorithm>
#include <cstdint>
#include <vector>

namespace fixture {

template <typename T>
struct Task {};
struct Awaiter {};

Awaiter NextRound();
void Register(const std::uint64_t* slot);

Task<int> ValueCaptureInCoroutine(std::vector<int> xs) {
  int floor = 10;
  auto keep = [floor](int v) { return v > floor; };  // by value: fine
  xs.erase(std::remove_if(xs.begin(), xs.end(), keep), xs.end());
  co_await NextRound();
  co_return static_cast<int>(xs.size());
}

Task<void> VoidTaskNeedsNoCoReturn(int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await NextRound();  // Task<void>: falling off the end is fine
  }
}

Task<int> AddressAfterLastAwait() {
  co_await NextRound();
  std::uint64_t counter = 0;
  Register(&counter);  // no later co_await: nothing can go stale
  co_return static_cast<int>(counter);
}

Task<int> InlineRefBeforeSuspension(std::vector<int> xs) {
  int lo = 10;
  xs.erase(std::remove_if(xs.begin(), xs.end(),
                          [&](int v) { return v < lo; }),
           xs.end());  // the lambda is consumed here; no suspension yet
  co_await NextRound();
  co_return static_cast<int>(xs.size());
}

Task<int> AddressConfinedToBlock() {
  {
    std::uint64_t counter = 0;
    Register(&counter);  // the scope closes before any suspension
  }
  co_await NextRound();
  co_return 0;
}

int RefCaptureOutsideCoroutine(std::vector<int>& xs) {
  int floor = 10;  // plain function: by-reference capture is idiomatic
  auto keep = [&](int v) { return v > floor; };
  return static_cast<int>(std::count_if(xs.begin(), xs.end(), keep));
}

Task<int> ForwardingNonCoroutine();
Task<int> Forwarder() { return ForwardingNonCoroutine(); }  // not a coroutine

}  // namespace fixture
