// smst_lint fixture: two findings, one of which is baselined by
// tests/lint_fixtures/baseline_case.txt. With that baseline applied,
// exactly the det-wall-clock finding must survive. Lint input only —
// never compiled.
#include <cstdlib>
#include <ctime>

namespace fixture {

int BaselinedLegacyCall() {
  return rand();  // in baseline_case.txt: does not fail the run
}

long FreshViolation() {
  return time(nullptr);  // not baselined: must fail the run
}

}  // namespace fixture
