// smst_lint fixture: coroutine-safety violations. The Task/awaitable
// shapes mirror src/smst/runtime/task.h closely enough for the token
// heuristics; lint input only — never compiled.
#include <algorithm>
#include <cstdint>
#include <vector>

namespace fixture {

template <typename T>
struct Task {};
struct Awaiter {};

Awaiter NextRound();
void Register(const std::uint64_t* slot);
template <typename F>
Awaiter ApplyEach(std::vector<int>& xs, F f);

Task<int> RefCaptureInCoroutine(std::vector<int> xs) {
  int floor = 10;
  auto keep = [&](int v) { return v > floor; };  // coro-ref-capture
  xs.erase(std::remove_if(xs.begin(), xs.end(), keep), xs.end());
  co_await NextRound();
  co_return static_cast<int>(xs.size());
}

Task<int> MissingCoReturn(int rounds) {  // coro-missing-co-return
  for (int i = 0; i < rounds; ++i) {
    co_await NextRound();
  }
}

Task<int> InlineRefInSuspendingStatement(std::vector<int> xs) {
  int lo = 0;
  co_await ApplyEach(xs, [&](int v) { lo += v; });  // coro-ref-capture
  co_return lo;
}

Task<int> LocalAddressAcrossAwait() {
  std::uint64_t counter = 0;
  Register(&counter);  // coro-local-addr
  co_await NextRound();
  co_return static_cast<int>(counter);
}

}  // namespace fixture
