// smst_lint fixture: sleeping-model/CONGEST violations. Lives under a
// `mst/` path segment so the directory-scoped rules apply, exactly as
// they do to src/smst/mst/. Lint input only — never compiled.
#include <cstdint>
#include <unordered_map>

namespace fixture {

class Scheduler;  // congest-scheduler-access (x1: declaration names it)

struct NodeContext {
  Scheduler* scheduler;  // congest-scheduler-access
};

std::uint64_t TallyByFragment(const NodeContext& ctx) {
  std::unordered_map<std::uint64_t, int> per_frag;  // decl alone: no finding
  (void)ctx;
  std::uint64_t digest = 0;
  for (const auto& [frag, n] : per_frag) {  // det-unordered-iter
    digest = digest * 31 + frag + static_cast<std::uint64_t>(n);
  }
  return digest;  // det-unordered-protocol: hash-order digest escapes
}

std::uint64_t PackLanesUnguarded(std::uint64_t a, std::uint64_t b,
                                 std::uint64_t c, std::uint64_t d) {
  return a | (b << 16) | (c << 32) | (d << 48);  // congest-lane-pack
}

}  // namespace fixture
