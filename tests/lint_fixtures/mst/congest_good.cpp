// smst_lint fixture: CONGEST-adjacent code that must NOT be flagged,
// under the same `mst/` path scoping as congest_bad.cpp. Lint input
// only — never compiled.
#include <cassert>
#include <cstdint>
#include <map>

namespace fixture {

struct Ctx {
  // Algorithm code reaching the network through the sanctioned API.
  std::uint64_t Awake(std::uint64_t round) { return round; }
};

std::uint64_t UsesOnlyNodeContext(Ctx& ctx) {
  // The word "Scheduler" in a comment or string is not an access.
  const char* note = "driven by the Scheduler elsewhere";
  return ctx.Awake(3) + note[0];
}

std::uint64_t SortedContainersFine() {
  std::map<std::uint64_t, int> per_frag;  // ordered: deterministic
  per_frag[7] = 1;
  return per_frag.size();
}

std::uint64_t PackLanesGuarded(std::uint64_t a, std::uint64_t b,
                               std::uint64_t c, std::uint64_t d) {
  assert(a >> 16 == 0 && b >> 16 == 0 && c >> 16 == 0 && d >> 16 == 0);
  return a | (b << 16) | (c << 32) | (d << 48);  // guarded: not flagged
}

std::uint64_t SingleShiftFine(std::uint64_t lo, std::uint64_t hi) {
  return (lo << 32) | hi;  // one lane boundary, graph.cpp edge-key idiom
}

}  // namespace fixture
