// Adaptive schedule blocks (MstOptions::adaptive_blocks): identical
// protocol and coin flips, so the tree, phase count and awake complexity
// are bit-identical to the fixed-block run — only sleeping rounds
// disappear from the early phases.
#include <gtest/gtest.h>

#include "smst/graph/generators.h"
#include "smst/graph/mst_reference.h"
#include "smst/mst/randomized_mst.h"
#include "smst/mst/spanning_tree_bm.h"
#include "smst/sleeping/ldt.h"

namespace smst {
namespace {

class AdaptiveBlocksTest : public ::testing::TestWithParam<int> {};

TEST_P(AdaptiveBlocksTest, SameExecutionFewerRounds) {
  const int family = GetParam();
  Xoshiro256 rng(family + 10);
  WeightedGraph g = [&]() -> WeightedGraph {
    switch (family) {
      case 0: return MakeErdosRenyi(80, 0.08, rng);
      case 1: return MakeRing(80, rng);
      case 2: return MakePath(80, rng);  // deep fragments, worst case
      case 3: return MakeGrid(8, 10, rng);
      default: return MakeRandomGeometric(80, 0.22, rng);
    }
  }();
  MstOptions fixed;
  fixed.seed = 7;
  MstOptions adaptive = fixed;
  adaptive.adaptive_blocks = true;

  auto a = RunRandomizedMst(g, fixed);
  auto b = RunRandomizedMst(g, adaptive);

  EXPECT_EQ(a.tree_edges, b.tree_edges);
  EXPECT_EQ(a.tree_edges, KruskalMst(g));
  EXPECT_EQ(a.phases, b.phases);
  EXPECT_EQ(a.stats.max_awake, b.stats.max_awake);
  EXPECT_EQ(a.stats.total_messages, b.stats.total_messages);
  // Early phases use tiny blocks: strictly fewer rounds.
  EXPECT_LT(b.stats.rounds, a.stats.rounds);
  EXPECT_EQ(b.stats.dropped_messages, 0u);
  EXPECT_EQ(CheckForestInvariant(g, b.final_ldt), "");
}

INSTANTIATE_TEST_SUITE_P(Families, AdaptiveBlocksTest, ::testing::Range(0, 5));

TEST(AdaptiveBlocksTest, DepthBoundHoldsEveryPhase) {
  // The soundness condition behind the optimization: at the start of
  // phase p every fragment's depth is at most B_p (B_1=0, B_{p+1}=3B_p+1).
  Xoshiro256 rng(42);
  auto g = MakePath(120, rng);  // the depth-hungriest family
  MstOptions opt;
  opt.seed = 9;
  opt.adaptive_blocks = true;
  opt.record_forest_snapshots = true;
  auto r = RunRandomizedMst(g, opt);
  EXPECT_EQ(r.tree_edges, KruskalMst(g));
  std::uint64_t bound = 0;  // B_{p+1} after phase p's merge
  for (const auto& forest : r.forest_per_phase) {
    bound = std::min<std::uint64_t>(3 * bound + 1, g.NumNodes() - 1);
    for (const LdtState& s : forest) EXPECT_LE(s.level, bound);
  }
}

TEST(AdaptiveBlocksTest, WorksForTheSpanningTreeVariantToo) {
  Xoshiro256 rng(43);
  auto g = MakeErdosRenyi(60, 0.1, rng);
  MstOptions opt;
  opt.seed = 3;
  opt.adaptive_blocks = true;
  auto r = RunBmSpanningTree(g, opt);
  EXPECT_EQ(r.tree_edges.size(), g.NumNodes() - 1);
  EXPECT_EQ(r.consistency_error, "");
}

TEST(AdaptiveBlocksTest, LargeScaleSpeedup) {
  Xoshiro256 rng(44);
  auto g = MakeErdosRenyi(1024, 8.0 / 1024.0, rng);
  MstOptions fixed;
  fixed.seed = 5;
  MstOptions adaptive = fixed;
  adaptive.adaptive_blocks = true;
  auto a = RunRandomizedMst(g, fixed);
  auto b = RunRandomizedMst(g, adaptive);
  EXPECT_EQ(a.tree_edges, b.tree_edges);
  // B_p saturates at n after ~log_3 n of the ~log_{4/3} n phases, so the
  // provable-depth-bound version wins a solid constant (>= 25%), not an
  // asymptotic factor.
  EXPECT_LT(b.stats.rounds * 5, a.stats.rounds * 4);
}

}  // namespace
}  // namespace smst
