#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "smst/graph/generators.h"
#include "smst/graph/graph.h"
#include "smst/runtime/simulator.h"
#include "smst/runtime/task.h"

namespace smst {
namespace {

// ---------------------------------------------------------------- Task --

Task<int> Identity(int v) { co_return v; }

Task<int> SumOfChildren() {
  int a = co_await Identity(2);
  int b = co_await Identity(40);
  co_return a + b;
}

Task<void> StoreResult(int* out) { *out = co_await SumOfChildren(); }

TEST(TaskTest, NestedTasksRunSynchronouslyToCompletion) {
  int result = 0;
  TaskRunner runner(StoreResult(&result));
  EXPECT_FALSE(runner.Done());
  runner.Start();
  EXPECT_TRUE(runner.Done());
  EXPECT_EQ(result, 42);
}

Task<void> Thrower() {
  co_await Identity(1);
  throw std::runtime_error("boom");
}

TEST(TaskTest, ExceptionIsStoredAndRethrown) {
  TaskRunner runner(Thrower());
  runner.Start();
  ASSERT_TRUE(runner.Done());
  EXPECT_THROW(runner.RethrowIfFailed(), std::runtime_error);
}

Task<int> Rethrower() {
  co_await Thrower();
  co_return 1;  // unreachable
}

Task<void> CatchInParent(bool* caught) {
  try {
    co_await Rethrower();
  } catch (const std::runtime_error&) {
    *caught = true;
  }
}

TEST(TaskTest, ExceptionsPropagateThroughNestedAwaits) {
  bool caught = false;
  TaskRunner runner(CatchInParent(&caught));
  runner.Start();
  EXPECT_TRUE(runner.Done());
  EXPECT_TRUE(caught);
}

TEST(TaskTest, DestroyingUnstartedTaskLeaksNothing) {
  // Exercised under ASan in CI-style runs; here it just must not crash.
  { auto t = Identity(5); (void)t; }
  { TaskRunner runner(StoreResult(nullptr)); (void)runner; }  // not started
  SUCCEED();
}

// ----------------------------------------------------------- Simulator --

WeightedGraph TwoNodes() {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 7);
  return std::move(b).Build();
}

struct PingPongState {
  std::vector<std::uint64_t> got;  // payload received per node
};

Task<void> PingPongNode(NodeContext& ctx, PingPongState* state) {
  // Round 1: both awake; each sends its ID. Round 2: both awake again;
  // each echoes back ID+received.
  // (gtest ASSERT_* returns and cannot be used inside coroutines; throw
  // instead and let the simulator surface it.)
  auto in1 = co_await ctx.Awake(1, OutMessage{0, Message{1, ctx.Id(), 0, 0}});
  if (in1.size() != 1) throw std::logic_error("expected 1 message in round 1");
  std::uint64_t peer = in1[0].msg.a;
  auto in2 =
      co_await ctx.Awake(2, OutMessage{0, Message{2, ctx.Id() + peer, 0, 0}});
  if (in2.size() != 1) throw std::logic_error("expected 1 message in round 2");
  state->got[ctx.Index()] = in2[0].msg.a;
}

TEST(SimulatorTest, PingPongDeliversBothWays) {
  auto g = TwoNodes();
  PingPongState state{std::vector<std::uint64_t>(2, 0)};
  Simulator sim(g);
  sim.Run([&state](NodeContext& ctx) { return PingPongNode(ctx, &state); });
  // Both nodes computed id0+id1 = 1+2 = 3.
  EXPECT_EQ(state.got[0], 3u);
  EXPECT_EQ(state.got[1], 3u);
  auto stats = sim.Stats();
  EXPECT_EQ(stats.rounds, 2u);
  EXPECT_EQ(stats.max_awake, 2u);
  EXPECT_EQ(stats.total_messages, 4u);
  EXPECT_EQ(stats.dropped_messages, 0u);
}

Task<void> SendToSleeper(NodeContext& ctx, int* received_count) {
  if (ctx.Id() == 1) {
    // Node 0 (ID 1) is awake in round 1 and sends; peer sleeps.
    co_await ctx.Awake(1, OutMessage{0, Message{9, 123, 0, 0}});
  } else {
    // Node 1 (ID 2) wakes only in round 2: the round-1 message is lost.
    auto in = co_await ctx.Awake(2);
    *received_count += static_cast<int>(in.size());
  }
}

TEST(SimulatorTest, MessagesToSleepingNodesAreDropped) {
  auto g = TwoNodes();
  int received = 0;
  Simulator sim(g);
  sim.Run([&received](NodeContext& ctx) {
    return SendToSleeper(ctx, &received);
  });
  EXPECT_EQ(received, 0);
  EXPECT_EQ(sim.Stats().dropped_messages, 1u);
  EXPECT_EQ(sim.Stats().total_messages, 1u);
}

Task<void> DeepSleeper(NodeContext& ctx) {
  co_await ctx.Awake(1);
  co_await ctx.Awake(1'000'000'000);  // a billion rounds of sleep
}

TEST(SimulatorTest, EmptyRoundsAreSkippedCheaply) {
  auto g = TwoNodes();
  Simulator sim(g);
  sim.Run([](NodeContext& ctx) { return DeepSleeper(ctx); });
  auto stats = sim.Stats();
  EXPECT_EQ(stats.rounds, 1'000'000'000u);
  EXPECT_EQ(stats.max_awake, 2u);       // awake complexity is 2, not 1e9
  EXPECT_EQ(stats.awake_node_rounds, 4u);
}

Task<void> DoublePortSend(NodeContext& ctx) {
  if (ctx.Index() == 0) {
    SendBatch sends;
    sends.push_back({0, Message{1, 0, 0, 0}});
    sends.push_back({0, Message{2, 0, 0, 0}});
    co_await ctx.Awake(1, std::move(sends));
  } else {
    co_await ctx.Awake(1);
  }
}

TEST(SimulatorTest, TwoMessagesOnOnePortIsAModelViolation) {
  auto g = TwoNodes();
  Simulator sim(g);
  EXPECT_THROW(
      sim.Run([](NodeContext& ctx) { return DoublePortSend(ctx); }),
      std::logic_error);
}

Task<void> NonMonotoneAwake(NodeContext& ctx) {
  co_await ctx.Awake(5);
  co_await ctx.Awake(5);  // must be strictly increasing
}

TEST(SimulatorTest, AwakeRoundsMustStrictlyIncrease) {
  auto g = TwoNodes();
  Simulator sim(g);
  EXPECT_THROW(
      sim.Run([](NodeContext& ctx) { return NonMonotoneAwake(ctx); }),
      std::logic_error);
}

// ------------------------------------------ scheduler failure surfacing --
// Scheduler::Register throws from inside the Awake awaitable's
// await_suspend; the standard resumes the coroutine and propagates the
// exception from the co_await, so it must land in the task's promise and
// surface via TaskRunner::RethrowIfFailed — never std::terminate, and
// never masked by a peer's generic "never finished" error.

TEST(SchedulerTest, DuplicateWakeRegistrationThrowsInEveryBuildType) {
  // Only direct Register misuse can double-book a node (a coroutine is
  // suspended while its wake is queued), but before this was a throw it
  // was a debug-only assert: release builds silently clobbered
  // delivery state. Pin the loud failure.
  auto g = TwoNodes();
  Metrics metrics(g.NumNodes());
  Scheduler sched(g, metrics, /*max_rounds=*/100);
  PendingWake first{0, 1, {}, {}, nullptr};
  PendingWake second{0, 1, {}, {}, nullptr};
  sched.Register(&first);
  sched.Register(&second);
  try {
    sched.RunUntilIdle();
    FAIL() << "duplicate wake did not throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("awake twice"), std::string::npos)
        << e.what();
  }
}

Task<int> NestedBadRound(NodeContext& ctx) {
  co_await ctx.Awake(3);
  co_await ctx.Awake(2);  // rejected by Register mid-run, two frames deep
  co_return 0;            // unreachable
}

Task<void> NestedBadRoundProgram(NodeContext& ctx) {
  // The bad Awake sits inside a child task: the Register exception must
  // ride the symmetric-transfer chain through the parent frame.
  (void)co_await NestedBadRound(ctx);
}

TEST(SimulatorTest, BadRoundRequestSurfacesThroughNestedTasks) {
  auto g = TwoNodes();
  Simulator sim(g);
  try {
    sim.Run([](NodeContext& ctx) { return NestedBadRoundProgram(ctx); });
    FAIL() << "bad round request did not throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("requested awake round"),
              std::string::npos)
        << e.what();
  }
}

Task<int> NestedDoubleSend(NodeContext& ctx) {
  SendBatch sends;
  sends.push_back({0, Message{1, 0, 0, 0}});
  sends.push_back({0, Message{2, 0, 0, 0}});
  co_await ctx.Awake(1, std::move(sends));
  co_return 0;
}

Task<void> NestedDoubleSendProgram(NodeContext& ctx) {
  (void)co_await NestedDoubleSend(ctx);
}

TEST(SimulatorTest, DoubleSendOnPortSurfacesThroughNestedTasks) {
  auto g = TwoNodes();
  Simulator sim(g);
  try {
    sim.Run([](NodeContext& ctx) { return NestedDoubleSendProgram(ctx); });
    FAIL() << "double send did not throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("two messages on one port"),
              std::string::npos)
        << e.what();
  }
}

Task<void> FailOrFinish(NodeContext& ctx, std::vector<int>* finished) {
  if (ctx.Index() == 1) {
    co_await ctx.Awake(2);
    co_await ctx.Awake(1);  // bad: thrown while the scheduler resumes us
  } else {
    // The peer keeps running past the failure round and completes.
    co_await ctx.Awake(1);
    co_await ctx.Awake(4);
    (*finished)[ctx.Index()] = 1;
  }
}

TEST(SimulatorTest, MidRunRegisterFailureDoesNotStrandPeers) {
  auto g = TwoNodes();
  std::vector<int> finished(2, 0);
  Simulator sim(g);
  try {
    sim.Run([&finished](NodeContext& ctx) {
      return FailOrFinish(ctx, &finished);
    });
    FAIL() << "expected the node-1 failure to surface";
  } catch (const std::logic_error& e) {
    // The root cause (node 1's bad round request), not a generic
    // "never finished" for a peer, and the peer still ran to completion.
    EXPECT_NE(std::string(e.what()).find("requested awake round"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(finished[0], 1);
}

Task<void> Runaway(NodeContext& ctx) {
  for (Round r = 1;; r += 1) co_await ctx.Awake(r);
}

TEST(SimulatorTest, WatchdogStopsRunaways) {
  auto g = TwoNodes();
  SimulatorOptions opt;
  opt.max_rounds = 100;
  Simulator sim(g, opt);
  EXPECT_THROW(sim.Run([](NodeContext& ctx) { return Runaway(ctx); }),
               std::runtime_error);
}

Task<void> RngRecorder(NodeContext& ctx, std::vector<std::uint64_t>* out) {
  (*out)[ctx.Index()] = ctx.Rng().Next();
  co_await ctx.Awake(1);
}

TEST(SimulatorTest, SameSeedSameRandomness) {
  auto g = TwoNodes();
  std::vector<std::uint64_t> a(2), b(2), c(2);
  auto run = [&g](std::uint64_t seed, std::vector<std::uint64_t>* out) {
    SimulatorOptions opt;
    opt.seed = seed;
    Simulator sim(g, opt);
    sim.Run([out](NodeContext& ctx) { return RngRecorder(ctx, out); });
  };
  run(5, &a);
  run(5, &b);
  run(6, &c);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a[0], a[1]);  // per-node substreams differ
}

Task<void> TrianglePortCheck(NodeContext& ctx,
                             std::vector<std::vector<std::uint64_t>>* seen) {
  // Everyone sends its ID on every port in round 1; receivers record the
  // sender ID indexed by arrival port.
  SendBatch sends;
  for (std::uint32_t p = 0; p < ctx.Degree(); ++p) {
    sends.push_back({p, Message{1, ctx.Id(), 0, 0}});
  }
  auto in = co_await ctx.Awake(1, std::move(sends));
  (*seen)[ctx.Index()].assign(ctx.Degree(), 0);
  for (const InMessage& m : in) (*seen)[ctx.Index()][m.port] = m.msg.a;
}

TEST(SimulatorTest, ArrivalPortsIdentifySenders) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 1).AddEdge(1, 2, 2).AddEdge(2, 0, 3);
  auto g = std::move(b).Build();
  std::vector<std::vector<std::uint64_t>> seen(3);
  Simulator sim(g);
  sim.Run([&seen](NodeContext& ctx) {
    return TrianglePortCheck(ctx, &seen);
  });
  // Node 1's port 0 is edge (0,1) -> sender ID 1; port 1 is (1,2) -> ID 3.
  EXPECT_EQ(seen[1][0], 1u);
  EXPECT_EQ(seen[1][1], 3u);
  // Node 0's port 0 is (0,1) -> ID 2; port 1 is (2,0) -> ID 3.
  EXPECT_EQ(seen[0][0], 2u);
  EXPECT_EQ(seen[0][1], 3u);
}

TEST(SimulatorTest, MessageBitsAreAccounted) {
  auto g = TwoNodes();
  PingPongState state{std::vector<std::uint64_t>(2, 0)};
  Simulator sim(g);
  sim.Run([&state](NodeContext& ctx) { return PingPongNode(ctx, &state); });
  auto stats = sim.Stats();
  EXPECT_GT(stats.total_bits, 0u);
  // Tag byte + three fields of at most 64 bits.
  EXPECT_LE(stats.max_message_bits, 8u + 3 * 64u);
}

TEST(SimulatorTest, RunTwiceIsAnError) {
  auto g = TwoNodes();
  Simulator sim(g);
  auto program = [](NodeContext& ctx) { return DeepSleeper(ctx); };
  sim.Run(program);
  EXPECT_THROW(sim.Run(program), std::logic_error);
}

TEST(MessageTest, BitSizeGrowsWithContent) {
  Message small{1, 1, 0, 0};
  Message big{1, ~std::uint64_t{0}, ~std::uint64_t{0}, ~std::uint64_t{0}};
  EXPECT_LT(small.BitSize(), big.BitSize());
  EXPECT_EQ(big.BitSize(), 8u + 192u);
  Message zero{0, 0, 0, 0};
  EXPECT_EQ(zero.BitSize(), 8u + 3u);  // empty fields still cost one bit
}

}  // namespace
}  // namespace smst
