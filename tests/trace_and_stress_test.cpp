// Execution tracing and stress / edge coverage: high-degree nodes (the
// scheduler's >64-port duplicate-send fallback), larger n, and schedule
// violation detection.
#include <vector>

#include <gtest/gtest.h>

#include "smst/graph/generators.h"
#include "smst/graph/mst_reference.h"
#include "smst/mst/deterministic_mst.h"
#include "smst/mst/randomized_mst.h"
#include "smst/runtime/simulator.h"
#include "smst/sleeping/forest_builder.h"
#include "smst/sleeping/procedures.h"

namespace smst {
namespace {

Task<void> ChatterNode(NodeContext& ctx) {
  auto sends = ToAllPorts(ctx, Message{1, ctx.Id(), 0, 0});
  co_await ctx.Awake(1, std::move(sends));
  if (ctx.Index() == 0) co_await ctx.Awake(2);  // one lonely wake
}

TEST(TraceTest, EventsMatchTheRun) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 1).AddEdge(1, 2, 2).AddEdge(2, 0, 3);
  auto g = std::move(b).Build();
  std::vector<TraceEvent> events;
  SimulatorOptions opt;
  opt.trace = [&events](const TraceEvent& e) { events.push_back(e); };
  Simulator sim(g, opt);
  sim.Run([](NodeContext& ctx) { return ChatterNode(ctx); });

  ASSERT_EQ(events.size(), 4u);  // 3 nodes in round 1 + node 0 in round 2
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(events[i].round, 1u);
    EXPECT_EQ(events[i].sent, 2u);
    EXPECT_EQ(events[i].received, 2u);
    EXPECT_EQ(events[i].dropped, 0u);
  }
  EXPECT_EQ(events[3].round, 2u);
  EXPECT_EQ(events[3].node, 0u);
  EXPECT_EQ(events[3].sent, 0u);
  EXPECT_EQ(events[3].received, 0u);
}

Task<void> SendToSleeperNode(NodeContext& ctx) {
  if (ctx.Index() == 0) {
    co_await ctx.Awake(1, OutMessage{0, Message{1, 0, 0, 0}});
  } else {
    co_await ctx.Awake(2);
  }
}

TEST(TraceTest, DropsAreAttributedToTheSender) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 1);
  auto g = std::move(b).Build();
  std::vector<TraceEvent> events;
  SimulatorOptions opt;
  opt.trace = [&events](const TraceEvent& e) { events.push_back(e); };
  Simulator sim(g, opt);
  sim.Run([](NodeContext& ctx) { return SendToSleeperNode(ctx); });
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].node, 0u);
  EXPECT_EQ(events[0].dropped, 1u);
  EXPECT_EQ(events[1].received, 0u);
}

TEST(StressTest, HighDegreeNodesUseTheLargePortPath) {
  // Complete graph on 70 nodes: degree 69 > 64, exercising the
  // scheduler's vector<bool> duplicate-port fallback.
  Xoshiro256 rng(1);
  auto g = MakeComplete(70, rng);
  auto r = RunRandomizedMst(g, {.seed = 1});
  EXPECT_EQ(r.tree_edges, KruskalMst(g));
}

TEST(StressTest, DuplicatePortDetectionOnHighDegreeNode) {
  Xoshiro256 rng(2);
  auto g = MakeStar(70, rng);  // center degree 69
  Simulator sim(g);
  EXPECT_THROW(sim.Run([](NodeContext& ctx) -> Task<void> {
                 if (ctx.Degree() > 64) {
                   SendBatch sends;
                   sends.push_back({68, Message{1, 0, 0, 0}});
                   sends.push_back({68, Message{2, 0, 0, 0}});
                   co_await ctx.Awake(1, std::move(sends));
                 } else {
                   co_await ctx.Awake(1);
                 }
               }),
               std::logic_error);
}

TEST(StressTest, FourThousandNodeRandomizedMst) {
  Xoshiro256 rng(3);
  auto g = MakeErdosRenyi(4096, 6.0 / 4096.0, rng);
  auto r = RunRandomizedMst(g, {.seed = 3});
  EXPECT_EQ(r.tree_edges, KruskalMst(g));
  // O(log n): 12-bit n, generous constant.
  EXPECT_LE(r.stats.max_awake, 40u * 12u);
}

TEST(StressTest, DeepPathDeterministic) {
  // Path graphs maximize fragment depth (the schedule's worst case).
  Xoshiro256 rng(4);
  auto g = MakePath(200, rng);
  auto r = RunDeterministicMst(g, {.seed = 4});
  EXPECT_EQ(r.tree_edges, KruskalMst(g));
  EXPECT_EQ(r.tree_edges.size(), 199u);  // every path edge
}

Task<void> BrokenParentBroadcast(NodeContext& ctx,
                                 std::vector<LdtState>* states) {
  // The root "forgets" to participate: its child must detect the
  // protocol violation instead of silently misbehaving.
  const LdtState& ldt = (*states)[ctx.Index()];
  if (ldt.IsRoot()) co_return;
  co_await FragmentBroadcast(ctx, ldt, 1, Message{});
}

TEST(FailureDetectionTest, SilentParentIsAProtocolError) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 1);
  auto g = std::move(b).Build();
  auto states = BuildForest(g, {0}, {0});
  Simulator sim(g);
  EXPECT_THROW(sim.Run([&states](NodeContext& ctx) {
                 return BrokenParentBroadcast(ctx, &states);
               }),
               std::runtime_error);
}

}  // namespace
}  // namespace smst
