// Sharded simulator backend: partitioning, the exchange ring, and the
// headline contract — results, metrics, and outcomes are bit-identical
// to the serial engine at every shard count, for both partition
// policies, both MST engines, and with or without an adversary.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "smst/faults/fault_plan.h"
#include "smst/graph/generators.h"
#include "smst/lower_bounds/grc.h"
#include "smst/mst/api.h"
#include "smst/runtime/sharded/exchange.h"
#include "smst/runtime/sharded/partition.h"
#include "smst/runtime/simulator.h"

namespace smst {
namespace {

// --------------------------------------------------------- partition ---

TEST(ShardPartitionTest, ClampsShardCountToNodeCount) {
  ShardPartition p(5, 64, ShardPolicy::kContiguousBlocks);
  EXPECT_EQ(p.NumShards(), 5u);
  ShardPartition q(5, 0, ShardPolicy::kContiguousBlocks);
  EXPECT_EQ(q.NumShards(), 1u);
  ShardPartition empty(0, 4, ShardPolicy::kRoundRobin);
  EXPECT_EQ(empty.NumShards(), 1u);
}

TEST(ShardPartitionTest, ContiguousBlocksAreBalancedAndOrdered) {
  // 10 nodes over 3 shards: sizes 4/3/3, ascending index ranges.
  ShardPartition p(10, 3, ShardPolicy::kContiguousBlocks);
  ASSERT_EQ(p.NumShards(), 3u);
  EXPECT_EQ(p.NodesOf(0), (std::vector<NodeIndex>{0, 1, 2, 3}));
  EXPECT_EQ(p.NodesOf(1), (std::vector<NodeIndex>{4, 5, 6}));
  EXPECT_EQ(p.NodesOf(2), (std::vector<NodeIndex>{7, 8, 9}));
}

TEST(ShardPartitionTest, RoundRobinOwnerIsIndexModuloShards) {
  ShardPartition p(10, 3, ShardPolicy::kRoundRobin);
  for (NodeIndex v = 0; v < 10; ++v) EXPECT_EQ(p.Owner(v), v % 3);
  EXPECT_EQ(p.NodesOf(0), (std::vector<NodeIndex>{0, 3, 6, 9}));
}

TEST(ShardPartitionTest, OwnerAndLocalIndexAgreeWithNodeLists) {
  for (ShardPolicy policy :
       {ShardPolicy::kContiguousBlocks, ShardPolicy::kRoundRobin}) {
    ShardPartition p(23, 4, policy);
    std::size_t covered = 0;
    for (std::uint32_t s = 0; s < p.NumShards(); ++s) {
      const auto& nodes = p.NodesOf(s);
      covered += nodes.size();
      for (std::uint32_t i = 0; i < nodes.size(); ++i) {
        EXPECT_EQ(p.Owner(nodes[i]), s);
        EXPECT_EQ(p.LocalIndex(nodes[i]), i);
      }
    }
    EXPECT_EQ(covered, 23u);  // every node owned exactly once
  }
}

TEST(ShardPartitionTest, PolicyNamesRoundTrip) {
  EXPECT_EQ(ParseShardPolicy("block"), ShardPolicy::kContiguousBlocks);
  EXPECT_EQ(ParseShardPolicy("rr"), ShardPolicy::kRoundRobin);
  EXPECT_STREQ(ShardPolicyName(ShardPolicy::kContiguousBlocks), "block");
  EXPECT_STREQ(ShardPolicyName(ShardPolicy::kRoundRobin), "rr");
  EXPECT_THROW(ParseShardPolicy("zigzag"), std::invalid_argument);
}

// ---------------------------------------------------------- exchange ---

TEST(SpscRingTest, PreservesPushOrderThroughTheSpillPath) {
  // Capacity 8 with 100 entries forces most of them through the spill
  // vector; drain order must still equal push order across the seam.
  SpscRing ring(8);
  for (std::uint32_t i = 0; i < 100; ++i) {
    WireEntry e;
    e.src = i;
    e.batch_pos = i * 7;
    ring.Push(e);
  }
  std::vector<WireEntry> out;
  ring.DrainInto(out);
  ASSERT_EQ(out.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(out[i].src, i);
    EXPECT_EQ(out[i].batch_pos, i * 7);
  }
  EXPECT_TRUE(ring.EmptyUnsynchronized());
}

TEST(SpscRingTest, DrainThenReuseStaysFifo) {
  SpscRing ring(8);
  std::vector<WireEntry> out;
  for (std::uint32_t round = 0; round < 3; ++round) {
    for (std::uint32_t i = 0; i < 5; ++i) {
      WireEntry e;
      e.src = round * 100 + i;
      ring.Push(e);
    }
    out.clear();
    ring.DrainInto(out);
    ASSERT_EQ(out.size(), 5u);
    for (std::uint32_t i = 0; i < 5; ++i) {
      EXPECT_EQ(out[i].src, round * 100 + i);
    }
  }
}

// ------------------------------------------------------- bit-identity --

struct Topology {
  std::string name;
  WeightedGraph graph;
};

std::vector<Topology> Topologies() {
  std::vector<Topology> cases;
  {
    Xoshiro256 rng(51);
    cases.push_back({"ring-24", MakeRing(24, rng)});
  }
  {
    Xoshiro256 rng(52);
    cases.push_back({"star-16", MakeStar(16, rng)});
  }
  {
    Xoshiro256 rng(53);
    cases.push_back({"grc-4x8", BuildGrc(4, 8, rng).graph});
  }
  {
    Xoshiro256 rng(54);
    cases.push_back({"er-32", MakeErdosRenyi(32, 0.2, rng)});
  }
  return cases;
}

void ExpectSameLdt(const LdtState& a, const LdtState& b) {
  EXPECT_EQ(a.fragment_id, b.fragment_id);
  EXPECT_EQ(a.level, b.level);
  EXPECT_EQ(a.parent_port, b.parent_port);
  ASSERT_EQ(a.child_ports.size(), b.child_ports.size());
  for (std::size_t i = 0; i < a.child_ports.size(); ++i) {
    EXPECT_EQ(a.child_ports[i], b.child_ports[i]);
  }
}

// Every observable of a run must match: the tree, all aggregate and
// per-node metrics, telemetry, the classified outcome, and the fault
// and audit meters.
void ExpectIdenticalRuns(const MstRunResult& a, const MstRunResult& b) {
  EXPECT_EQ(a.tree_edges, b.tree_edges);
  EXPECT_EQ(a.consistency_error, b.consistency_error);
  EXPECT_EQ(a.phases, b.phases);

  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.max_awake, b.stats.max_awake);
  EXPECT_EQ(a.stats.avg_awake, b.stats.avg_awake);  // exact, same sums
  EXPECT_EQ(a.stats.total_messages, b.stats.total_messages);
  EXPECT_EQ(a.stats.total_bits, b.stats.total_bits);
  EXPECT_EQ(a.stats.max_message_bits, b.stats.max_message_bits);
  EXPECT_EQ(a.stats.dropped_messages, b.stats.dropped_messages);
  EXPECT_EQ(a.stats.awake_node_rounds, b.stats.awake_node_rounds);

  ASSERT_EQ(a.node_metrics.size(), b.node_metrics.size());
  for (std::size_t v = 0; v < a.node_metrics.size(); ++v) {
    EXPECT_EQ(a.node_metrics[v].awake_rounds, b.node_metrics[v].awake_rounds);
    EXPECT_EQ(a.node_metrics[v].messages_sent,
              b.node_metrics[v].messages_sent);
    EXPECT_EQ(a.node_metrics[v].bits_sent, b.node_metrics[v].bits_sent);
    EXPECT_EQ(a.node_metrics[v].messages_dropped,
              b.node_metrics[v].messages_dropped);
  }
  EXPECT_EQ(a.wake_times, b.wake_times);
  EXPECT_EQ(a.fragments_per_phase, b.fragments_per_phase);
  EXPECT_EQ(a.blue_per_phase, b.blue_per_phase);
  ASSERT_EQ(a.final_ldt.size(), b.final_ldt.size());
  for (std::size_t v = 0; v < a.final_ldt.size(); ++v) {
    ExpectSameLdt(a.final_ldt[v], b.final_ldt[v]);
  }
  ASSERT_EQ(a.forest_per_phase.size(), b.forest_per_phase.size());
  for (std::size_t p = 0; p < a.forest_per_phase.size(); ++p) {
    ASSERT_EQ(a.forest_per_phase[p].size(), b.forest_per_phase[p].size());
    for (std::size_t v = 0; v < a.forest_per_phase[p].size(); ++v) {
      ExpectSameLdt(a.forest_per_phase[p][v], b.forest_per_phase[p][v]);
    }
  }

  EXPECT_EQ(a.outcome.status, b.outcome.status);
  EXPECT_EQ(a.outcome.detail, b.outcome.detail);
  EXPECT_EQ(a.outcome.unfinished_nodes, b.outcome.unfinished_nodes);
  EXPECT_EQ(a.outcome.last_round, b.outcome.last_round);
  EXPECT_EQ(a.outcome.faults.injected_drops, b.outcome.faults.injected_drops);
  EXPECT_EQ(a.outcome.faults.injected_delays,
            b.outcome.faults.injected_delays);
  EXPECT_EQ(a.outcome.faults.delayed_delivered,
            b.outcome.faults.delayed_delivered);
  EXPECT_EQ(a.outcome.faults.delayed_lost, b.outcome.faults.delayed_lost);
  EXPECT_EQ(a.outcome.faults.injected_duplicates,
            b.outcome.faults.injected_duplicates);
  EXPECT_EQ(a.outcome.faults.jittered_wakes, b.outcome.faults.jittered_wakes);
  EXPECT_EQ(a.outcome.faults.suppressed_wakes,
            b.outcome.faults.suppressed_wakes);
  EXPECT_EQ(a.outcome.faults.crashed_nodes, b.outcome.faults.crashed_nodes);
  EXPECT_EQ(a.outcome.audited_awake_node_rounds,
            b.outcome.audited_awake_node_rounds);
  EXPECT_EQ(a.outcome.audited_model_drops, b.outcome.audited_model_drops);
  EXPECT_EQ(a.outcome.audit_violations, b.outcome.audit_violations);
}

MstRunResult RunWith(const WeightedGraph& g, MstAlgorithm algo,
                     std::uint64_t seed, std::uint32_t shards,
                     ShardPolicy policy, const FaultPlan* plan) {
  MstOptions opt;
  opt.seed = seed;
  opt.shards = shards;
  opt.shard_policy = policy;
  opt.fault_plan = plan;
  opt.record_wake_times = true;
  opt.record_forest_snapshots = true;
  return ComputeMst(g, algo, opt);
}

TEST(ShardedIdentityTest, FaultFreeRunsMatchSerialAtEveryShardCount) {
  for (const Topology& c : Topologies()) {
    for (MstAlgorithm algo :
         {MstAlgorithm::kRandomized, MstAlgorithm::kDeterministic}) {
      for (std::uint64_t seed : {1, 5}) {
        const MstRunResult serial =
            RunWith(c.graph, algo, seed, 0, ShardPolicy::kContiguousBlocks,
                    nullptr);
        for (std::uint32_t shards : {1u, 2u, 4u}) {
          for (ShardPolicy policy :
               {ShardPolicy::kContiguousBlocks, ShardPolicy::kRoundRobin}) {
            SCOPED_TRACE(c.name + " " + MstAlgorithmName(algo) + " seed " +
                         std::to_string(seed) + " shards " +
                         std::to_string(shards) + " " +
                         ShardPolicyName(policy));
            ExpectIdenticalRuns(
                serial, RunWith(c.graph, algo, seed, shards, policy, nullptr));
          }
        }
      }
    }
  }
}

TEST(ShardedIdentityTest, FaultedRunsMatchSerialAtEveryShardCount) {
  // Mixed adversary: drops, delays (which cross the delayed-heap path),
  // duplicates, jitter, and crash-stop. The whole classified outcome —
  // including the per-category fault meters — must be shard-invariant.
  const FaultPlan plan =
      ParseFaultPlan("salt=9,drop=0.003,delay=2:0.02,dup=0.01,jitter=2:0.01");
  const FaultPlan crashy = ParseFaultPlan("salt=4,crash=40:0.05,drop=0.002");
  for (const Topology& c : Topologies()) {
    for (const FaultPlan* p : {&plan, &crashy}) {
      for (MstAlgorithm algo :
           {MstAlgorithm::kRandomized, MstAlgorithm::kDeterministic}) {
        const MstRunResult serial = RunWith(
            c.graph, algo, 3, 0, ShardPolicy::kContiguousBlocks, p);
        for (std::uint32_t shards : {2u, 4u}) {
          SCOPED_TRACE(c.name + " " + MstAlgorithmName(algo) + " plan " +
                       p->ToString() + " shards " + std::to_string(shards));
          ExpectIdenticalRuns(
              serial,
              RunWith(c.graph, algo, 3, shards,
                      ShardPolicy::kContiguousBlocks, p));
        }
      }
    }
  }
}

TEST(ShardedIdentityTest, OverProvisionedShardCountClamps) {
  // More shards than nodes: clamped, still identical.
  Xoshiro256 rng(61);
  const auto g = MakeRing(6, rng);
  const MstRunResult serial = RunWith(g, MstAlgorithm::kRandomized, 2, 0,
                                      ShardPolicy::kContiguousBlocks, nullptr);
  ExpectIdenticalRuns(serial,
                      RunWith(g, MstAlgorithm::kRandomized, 2, 64,
                              ShardPolicy::kRoundRobin, nullptr));
}

TEST(ShardedIdentityTest, TracingRequiresTheSerialEngine) {
  Xoshiro256 rng(62);
  const auto g = MakeRing(4, rng);
  SimulatorOptions opt;
  opt.shards = 2;
  opt.trace = [](const TraceEvent&) {};
  EXPECT_THROW(Simulator(g, opt), std::invalid_argument);
}

}  // namespace
}  // namespace smst
