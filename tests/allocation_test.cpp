// Allocation-regression harness: pins the engine's zero-allocation
// steady state so it cannot silently regress.
//
// This binary replaces global operator new/delete with counting
// versions (test-only; nothing here leaks into the library). The core
// assertion style is *marginal*, not absolute: run the same workload at
// two different round counts after a warm-up run and require the total
// allocation counts to be equal — i.e. zero allocations per additional
// awake node-round. Absolute counts would be brittle across standard
// libraries; marginal counts are exact and portable.
//
// With SMST_NO_FRAME_POOL the coroutine frame pool is compiled out and
// every sub-procedure await allocates; the steady-state assertions are
// skipped in that configuration (the correctness tests still run).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <stdexcept>

#include "smst/graph/generators.h"
#include "smst/graph/graph.h"
#include "smst/mst/randomized_mst.h"
#include "smst/runtime/frame_pool.h"
#include "smst/runtime/simulator.h"

namespace {

// Thread-local so the count is exact for the (single-threaded) workload
// under measurement even if other threads existed.
thread_local std::uint64_t t_alloc_count = 0;

}  // namespace

void* operator new(std::size_t n) {
  ++t_alloc_count;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace smst {
namespace {

template <typename Fn>
std::uint64_t CountAllocs(Fn&& fn) {
  const std::uint64_t before = t_alloc_count;
  fn();
  return t_alloc_count - before;
}

// Every node awake and chattering on all ports every round — the same
// shape as bench_micro's dense-round engine benchmark.
Task<void> PingNode(NodeContext& ctx, int rounds) {
  for (int r = 1; r <= rounds; ++r) {
    SendBatch sends;
    sends.reserve(ctx.Degree());
    for (std::uint32_t p = 0; p < ctx.Degree(); ++p) {
      sends.push_back({p, Message{1, ctx.Id(), 0, 0}});
    }
    co_await ctx.Awake(static_cast<Round>(r), std::move(sends));
  }
}

RunStats RunPing(const WeightedGraph& g, int rounds) {
  Simulator sim(g);
  sim.Run([rounds](NodeContext& ctx) { return PingNode(ctx, rounds); });
  return sim.Stats();
}

TEST(AllocationRegressionTest, EngineSteadyStateIsAllocationFree) {
#ifdef SMST_NO_FRAME_POOL
  GTEST_SKIP() << "frame pool compiled out; steady state allocates";
#endif
  Xoshiro256 rng(7);
  const auto g = MakeRing(64, rng);
  RunPing(g, 8);  // warm-up: frame pool, lazy library initialization

  const std::uint64_t short_run = CountAllocs([&] { RunPing(g, 32); });
  const std::uint64_t long_run = CountAllocs([&] { RunPing(g, 128); });
  // The extra (128 - 32) * 64 = 6144 awake node-rounds must cost zero
  // heap allocations: inline message batches, pooled coroutine frames,
  // recycled scheduler buckets.
  EXPECT_EQ(long_run, short_run)
      << "steady-state allocations now scale with awake node-rounds";
}

TEST(AllocationRegressionTest, FramePoolRecyclesFramesAfterWarmup) {
#ifdef SMST_NO_FRAME_POOL
  GTEST_SKIP() << "frame pool compiled out";
#endif
  Xoshiro256 rng(7);
  const auto g = MakeRing(16, rng);
  RunPing(g, 4);  // warm-up
  const FramePoolStats before = GetFramePoolStats();
  RunPing(g, 4);
  const FramePoolStats after = GetFramePoolStats();
  EXPECT_GT(after.pool_hits, before.pool_hits);
  EXPECT_EQ(after.fresh_blocks, before.fresh_blocks)
      << "a warmed pool should not mint new blocks for a repeat run";
}

// --- satellite: degree > 64 exercises Register's scratch bitset -------

WeightedGraph MakeHighDegreeStar(std::size_t leaves) {
  GraphBuilder b(leaves + 1);
  for (std::size_t i = 0; i < leaves; ++i) {
    b.AddEdge(0, static_cast<NodeIndex>(i + 1), static_cast<Weight>(i + 1));
  }
  return std::move(b).Build();
}

// The center broadcasts on all (>64) ports every round; leaves are awake
// listening. Register's duplicate-port check must use the reusable
// scratch bitset, not a fresh vector<bool> per awake.
Task<void> StarNode(NodeContext& ctx, int rounds) {
  const bool center = ctx.Degree() > 1;
  for (int r = 1; r <= rounds; ++r) {
    SendBatch sends;
    if (center) {
      sends.reserve(ctx.Degree());
      for (std::uint32_t p = 0; p < ctx.Degree(); ++p) {
        sends.push_back({p, Message{2, ctx.Id(), 0, 0}});
      }
    }
    co_await ctx.Awake(static_cast<Round>(r), std::move(sends));
  }
}

std::uint64_t RunStar(const WeightedGraph& g, int rounds) {
  Simulator sim(g);
  sim.Run([rounds](NodeContext& ctx) { return StarNode(ctx, rounds); });
  return sim.Stats().awake_node_rounds;
}

TEST(AllocationRegressionTest, HighDegreeRegisterUsesScratchBitset) {
#ifdef SMST_NO_FRAME_POOL
  GTEST_SKIP() << "frame pool compiled out; steady state allocates";
#endif
  const auto g = MakeHighDegreeStar(80);  // center degree 80 > 64
  RunStar(g, 4);  // warm-up

  const std::uint64_t short_run = CountAllocs([&] { RunStar(g, 8); });
  const std::uint64_t long_run = CountAllocs([&] { RunStar(g, 32); });
  // Per extra round the only permitted allocation is the center's
  // 80-entry SendBatch spilling past its inline capacity — exactly one.
  // Register itself (the old per-awake vector<bool>) must contribute
  // zero; before the scratch bitset this margin was several per round.
  EXPECT_EQ(long_run - short_run, std::uint64_t{32 - 8})
      << "degree>64 awake path allocates more than the send spill";
}

TEST(AllocationRegressionTest, HighDegreeDuplicatePortStillDetected) {
  const auto g = MakeHighDegreeStar(80);
  Simulator sim(g);
  EXPECT_THROW(
      sim.Run([](NodeContext& ctx) -> Task<void> {
        SendBatch sends;
        if (ctx.Degree() > 1) {
          sends.push_back({70, Message{3, 1, 0, 0}});
          sends.push_back({70, Message{3, 2, 0, 0}});  // duplicate port
        }
        co_await ctx.Awake(1, std::move(sends));
      }),
      std::logic_error);
}

// --- end-to-end budget on a real algorithm ----------------------------

TEST(AllocationRegressionTest, RandomizedMstStaysWithinAllocationBudget) {
#ifdef SMST_NO_FRAME_POOL
  GTEST_SKIP() << "frame pool compiled out; steady state allocates";
#endif
  Xoshiro256 rng(1);
  const auto g = MakeErdosRenyi(128, 8.0 / 128, rng);
  RunRandomizedMst(g, {.seed = 1});  // warm-up

  std::uint64_t awake_rounds = 0;
  const std::uint64_t allocs = CountAllocs([&] {
    awake_rounds = RunRandomizedMst(g, {.seed = 1}).stats.awake_node_rounds;
  });
  ASSERT_GT(awake_rounds, 0u);
  // Whole-run budget. The engine's steady state is allocation-free (see
  // EngineSteadyStateIsAllocationFree); what remains here is (a) run
  // setup, amortized, and (b) message batches spilling past their inline
  // capacity of 4 on this average-degree-8 graph — inherent to the
  // workload, not per-round engine cost. Measured ~0.94 on this
  // workload; the pin catches any regression back toward the pre-pool
  // ~3-5 allocations per awake node-round.
  const double per_awake_round =
      static_cast<double>(allocs) / static_cast<double>(awake_rounds);
  EXPECT_LT(per_awake_round, 1.0)
      << "allocs=" << allocs << " awake_node_rounds=" << awake_rounds;
}

}  // namespace
}  // namespace smst
