// SmallVec unit tests: inline/heap growth, move semantics, and the
// exception paths of growth (run under the ASan CI job, which also
// checks the raw-storage lifetime handling for leaks).
#include "smst/util/small_vec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace smst {
namespace {

TEST(SmallVecTest, StartsInlineAndEmpty) {
  SmallVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
  EXPECT_TRUE(v.is_inline());
}

TEST(SmallVecTest, StaysInlineUpToCapacity) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVecTest, SpillsToHeapBeyondInlineCapacity) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVecTest, ReserveBeyondInlineMovesExistingElements) {
  SmallVec<std::string, 2> v;
  v.push_back("alpha");
  v.push_back("beta");
  v.reserve(16);
  EXPECT_FALSE(v.is_inline());
  EXPECT_GE(v.capacity(), 16u);
  EXPECT_EQ(v[0], "alpha");
  EXPECT_EQ(v[1], "beta");
}

TEST(SmallVecTest, ClearKeepsHeapCapacity) {
  SmallVec<int, 2> v;
  for (int i = 0; i < 50; ++i) v.push_back(i);
  const std::size_t cap = v.capacity();
  v.clear();
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), cap);
  EXPECT_FALSE(v.is_inline());
}

TEST(SmallVecTest, InitializerListAndEquality) {
  SmallVec<int, 4> a{1, 2, 3};
  SmallVec<int, 4> b{1, 2, 3};
  SmallVec<int, 4> c{1, 2, 4};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(SmallVecTest, MoveFromInlineLeavesSourceEmpty) {
  SmallVec<std::string, 4> a;
  a.push_back("x");
  a.push_back("y");
  SmallVec<std::string, 4> b(std::move(a));
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], "x");
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): specified
  EXPECT_TRUE(a.is_inline());
}

TEST(SmallVecTest, MoveFromHeapStealsBuffer) {
  SmallVec<int, 2> a;
  for (int i = 0; i < 20; ++i) a.push_back(i);
  const int* data_before = a.data();
  SmallVec<int, 2> b(std::move(a));
  EXPECT_EQ(b.data(), data_before);  // no copy, pointer stolen
  EXPECT_EQ(b.size(), 20u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): specified
}

TEST(SmallVecTest, MoveAssignReleasesOldContents) {
  SmallVec<std::string, 2> a;
  for (int i = 0; i < 10; ++i) a.push_back("a" + std::to_string(i));
  SmallVec<std::string, 2> b;
  b.push_back("old");
  b = std::move(a);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(b[9], "a9");
}

TEST(SmallVecTest, CopyIsDeepInlineAndHeap) {
  SmallVec<int, 2> heap;
  for (int i = 0; i < 10; ++i) heap.push_back(i);
  SmallVec<int, 2> heap_copy(heap);
  heap_copy[0] = 99;
  EXPECT_EQ(heap[0], 0);
  EXPECT_EQ(heap_copy.size(), heap.size());

  SmallVec<int, 8> inl{1, 2};
  SmallVec<int, 8> inl_copy;
  inl_copy = inl;
  inl_copy[1] = 7;
  EXPECT_EQ(inl[1], 2);
}

TEST(SmallVecTest, PopBackAndResize) {
  SmallVec<int, 4> v{1, 2, 3};
  v.pop_back();
  EXPECT_EQ(v.size(), 2u);
  v.resize(6);
  EXPECT_EQ(v.size(), 6u);
  EXPECT_EQ(v[5], 0);  // value-initialized
  v.resize(1);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 1);
}

TEST(SmallVecTest, WorksAsContiguousRangeForSpan) {
  SmallVec<int, 4> v{10, 20, 30};
  std::span<const int> s = v;
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[2], 30);
}

// --- exception paths ---------------------------------------------------

// Copy-only type whose copy constructor throws on demand; SmallVec's
// growth must then use copies (move_if_noexcept) and give the strong
// guarantee.
struct Thrower {
  static inline bool armed = false;
  static inline int live = 0;
  int value = 0;

  explicit Thrower(int v) : value(v) { ++live; }
  Thrower(const Thrower& o) : value(o.value) {
    if (armed) throw std::runtime_error("copy blew up");
    ++live;
  }
  Thrower& operator=(const Thrower&) = delete;
  ~Thrower() { --live; }
};

TEST(SmallVecTest, GrowthWithThrowingCopyGivesStrongGuarantee) {
  Thrower::armed = false;
  {
    SmallVec<Thrower, 2> v;
    v.emplace_back(1);
    v.emplace_back(2);
    ASSERT_TRUE(v.is_inline());
    Thrower::armed = true;  // the growth copy must now throw
    EXPECT_THROW(v.emplace_back(3), std::runtime_error);
    Thrower::armed = false;
    // Untouched: still inline, both elements intact.
    EXPECT_TRUE(v.is_inline());
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0].value, 1);
    EXPECT_EQ(v[1].value, 2);
    // And the vector still works afterwards.
    v.emplace_back(3);
    EXPECT_EQ(v[2].value, 3);
    EXPECT_FALSE(v.is_inline());
  }
  EXPECT_EQ(Thrower::live, 0);  // no leaked constructions on any path
}

TEST(SmallVecTest, DestructionRunsElementDestructors) {
  Thrower::armed = false;
  {
    SmallVec<Thrower, 2> v;
    for (int i = 0; i < 9; ++i) v.emplace_back(i);
    EXPECT_EQ(Thrower::live, 9);
  }
  EXPECT_EQ(Thrower::live, 0);
}

}  // namespace
}  // namespace smst
