// Protocol-level properties that hold for every algorithm in the
// library, enforced across a sweep of graphs and seeds:
//  * no algorithm ever sends to a sleeping node (schedules are exact);
//  * every message respects the O(log n)-bit CONGEST budget;
//  * awake metering is consistent (sum of wake times == awake rounds);
//  * termination modes agree on the output;
//  * the awake-rounds distribution is balanced (no hot node).
#include <cmath>

#include <gtest/gtest.h>

#include "smst/graph/generators.h"
#include "smst/graph/mst_reference.h"
#include "smst/mst/api.h"
#include "smst/mst/randomized_mst.h"

namespace smst {
namespace {

struct Combo {
  MstAlgorithm algo;
  int family;
  std::uint64_t seed;
};

class ProtocolPropertyTest : public ::testing::TestWithParam<Combo> {};

WeightedGraph MakeFamily(int family, std::size_t n, Xoshiro256& rng) {
  switch (family) {
    case 0: return MakeErdosRenyi(n, 6.0 / static_cast<double>(n), rng);
    case 1: return MakeRing(n, rng);
    case 2: return MakeGrid(6, n / 6, rng);
    default: return MakeRandomGeometric(n, 0.25, rng);
  }
}

TEST_P(ProtocolPropertyTest, HoldsOnEveryRun) {
  const Combo c = GetParam();
  const std::size_t n = 60;
  Xoshiro256 rng(c.seed * 31 + c.family);
  auto g = MakeFamily(c.family, n, rng);

  MstOptions opt;
  opt.seed = c.seed;
  opt.record_wake_times = true;
  auto r = ComputeMst(g, c.algo, opt);

  // 1. Nothing was ever sent into the void: the schedules guarantee the
  //    receiver of every message is awake. (Lost messages are legal in
  //    the model but would mean our schedule arithmetic is off.)
  EXPECT_EQ(r.stats.dropped_messages, 0u) << MstAlgorithmName(c.algo);

  // 2. CONGEST bit budget: IDs, weights, levels, counts — all poly(n).
  EXPECT_LE(r.stats.max_message_bits, 200u);

  // 3. Metering consistency.
  std::uint64_t wake_sum = 0;
  for (NodeIndex v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(r.wake_times[v].size(), r.node_metrics[v].awake_rounds);
    wake_sum += r.wake_times[v].size();
    // Wake times strictly increase and end within the run.
    for (std::size_t i = 1; i < r.wake_times[v].size(); ++i) {
      EXPECT_LT(r.wake_times[v][i - 1], r.wake_times[v][i]);
    }
    if (!r.wake_times[v].empty()) {
      EXPECT_LE(r.wake_times[v].back(), r.stats.rounds);
    }
  }
  EXPECT_EQ(wake_sum, r.stats.awake_node_rounds);

  // 4. Output sanity (exact MST for the MST algorithms).
  if (c.algo != MstAlgorithm::kBmSpanningTree) {
    EXPECT_EQ(r.tree_edges, KruskalMst(g)) << MstAlgorithmName(c.algo);
  }
  EXPECT_EQ(r.consistency_error, "");

  // 5. Balance: the busiest node is within a small factor of the mean —
  //    the sleeping schedules don't create hot spots.
  EXPECT_LE(static_cast<double>(r.stats.max_awake),
            6.0 * r.stats.avg_awake + 20.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProtocolPropertyTest,
    ::testing::Values(
        Combo{MstAlgorithm::kRandomized, 0, 1},
        Combo{MstAlgorithm::kRandomized, 1, 2},
        Combo{MstAlgorithm::kRandomized, 2, 3},
        Combo{MstAlgorithm::kRandomized, 3, 4},
        Combo{MstAlgorithm::kDeterministic, 0, 1},
        Combo{MstAlgorithm::kDeterministic, 1, 2},
        Combo{MstAlgorithm::kDeterministic, 2, 3},
        Combo{MstAlgorithm::kDeterministic, 3, 4},
        Combo{MstAlgorithm::kDeterministicLogStar, 0, 1},
        Combo{MstAlgorithm::kDeterministicLogStar, 1, 2},
        Combo{MstAlgorithm::kBmSpanningTree, 0, 1},
        Combo{MstAlgorithm::kBmSpanningTree, 3, 2}));

TEST(TerminationModeTest, EarlyDetectAndPaperBudgetAgreeOnTheTree) {
  Xoshiro256 rng(9);
  auto g = MakeErdosRenyi(48, 0.12, rng);
  MstOptions early;
  early.seed = 7;
  MstOptions paper;
  paper.seed = 7;
  paper.termination = TerminationMode::kPaperPhaseCount;
  auto a = RunRandomizedMst(g, early);
  auto b = RunRandomizedMst(g, paper);
  EXPECT_EQ(a.tree_edges, b.tree_edges);
  // Paper mode keeps (idle-)running to the budget; early mode stops when
  // the DONE broadcast lands. Same active phases either way.
  EXPECT_EQ(a.phases, b.phases);
  // Idle phases cost no awake rounds.
  EXPECT_EQ(a.stats.max_awake, b.stats.max_awake);
  EXPECT_GE(b.stats.rounds, a.stats.rounds);
}

TEST(SeedSweepTest, FiftySeedsAllExact) {
  // The randomized algorithm succeeds w.h.p.; at n=32 with in-model
  // termination detection it must succeed every time (detection is
  // exact, only the phase count is random).
  Xoshiro256 rng(4);
  auto g = MakeErdosRenyi(32, 0.2, rng);
  const auto truth = KruskalMst(g);
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    auto r = RunRandomizedMst(g, {.seed = seed});
    ASSERT_EQ(r.tree_edges, truth) << "seed " << seed;
  }
}

TEST(PhaseCountDistributionTest, ConcentratesNearLogN) {
  Xoshiro256 rng(11);
  auto g = MakeRing(128, rng);
  double sum = 0;
  std::uint64_t worst = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    auto r = RunRandomizedMst(g, {.seed = seed});
    sum += static_cast<double>(r.phases);
    worst = std::max(worst, r.phases);
  }
  const double mean = sum / 30.0;
  // log_{4/3}(128) ~ 16.9; coin filtering keeps the mean close to it and
  // the worst case within the paper budget.
  EXPECT_GT(mean, 8.0);
  EXPECT_LT(mean, 30.0);
  EXPECT_LE(worst, RandomizedPaperPhaseCount(128));
}

}  // namespace
}  // namespace smst
