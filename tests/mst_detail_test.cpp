// Unit tests for the GHS-engine internals (detail.h): local MOE
// candidate selection under both rules, and outgoing-edge lookup.
#include <gtest/gtest.h>

#include "smst/graph/graph.h"
#include "smst/mst/detail.h"
#include "smst/runtime/simulator.h"

namespace smst {
namespace {

// The detail functions take a NodeContext; a tiny harness runs a check
// inside a one-round simulation to obtain one.
void WithContext(const WeightedGraph& g, NodeIndex node,
                 const std::function<void(NodeContext&)>& check) {
  Simulator sim(g);
  sim.Run([&](NodeContext& ctx) -> Task<void> {
    if (ctx.Index() == node) check(ctx);
    co_await ctx.Awake(1);
  });
}

WeightedGraph Diamond() {
  // 0-1 (w 10), 0-2 (w 20), 1-3 (w 30), 2-3 (w 5)
  GraphBuilder b(4);
  b.AddEdge(0, 1, 10).AddEdge(0, 2, 20).AddEdge(1, 3, 30).AddEdge(2, 3, 5);
  return std::move(b).Build();
}

TEST(DetailTest, LocalMoeMinWeightSkipsIntraFragmentEdges) {
  auto g = Diamond();
  WithContext(g, 0, [&](NodeContext& ctx) {
    LdtState ldt = LdtState::Singleton(ctx.Id());
    // Node 0's ports: to 1 (w10), to 2 (w20). Same fragment as node 1.
    std::vector<NodeId> nbr_frag{ldt.fragment_id, 99};
    auto item = detail::LocalMoe(ctx, ldt, nbr_frag,
                                 detail::SelectionRule::kMinWeight);
    EXPECT_EQ(item.key, 20u);
    EXPECT_EQ(item.b, 20u);  // b always carries the weight
  });
}

TEST(DetailTest, LocalMoeAbsentWhenAllNeighborsInternal) {
  auto g = Diamond();
  WithContext(g, 0, [&](NodeContext& ctx) {
    LdtState ldt = LdtState::Singleton(ctx.Id());
    std::vector<NodeId> nbr_frag{ldt.fragment_id, ldt.fragment_id};
    auto item = detail::LocalMoe(ctx, ldt, nbr_frag,
                                 detail::SelectionRule::kMinWeight);
    EXPECT_TRUE(item.Absent());
  });
}

TEST(DetailTest, LocalMoeMinNeighborIdPrefersSmallFragment) {
  auto g = Diamond();
  WithContext(g, 0, [&](NodeContext& ctx) {
    LdtState ldt = LdtState::Singleton(ctx.Id());
    // Heavier edge leads to the smaller fragment ID: the BM rule picks it.
    std::vector<NodeId> nbr_frag{50, 7};
    auto item = detail::LocalMoe(ctx, ldt, nbr_frag,
                                 detail::SelectionRule::kMinNeighborId);
    EXPECT_EQ(item.key, 7u);
    EXPECT_EQ(item.b, 20u);
  });
}

TEST(DetailTest, PortOfOutgoingWeightFindsOnlyOutgoingEdges) {
  auto g = Diamond();
  WithContext(g, 0, [&](NodeContext& ctx) {
    LdtState ldt = LdtState::Singleton(ctx.Id());
    std::vector<NodeId> nbr_frag{ldt.fragment_id, 99};
    // Weight 10 exists but is intra-fragment -> not found.
    EXPECT_EQ(detail::PortOfOutgoingWeight(ctx, ldt, nbr_frag, 10), kNoPort);
    EXPECT_EQ(detail::PortOfOutgoingWeight(ctx, ldt, nbr_frag, 20), 1u);
    EXPECT_EQ(detail::PortOfOutgoingWeight(ctx, ldt, nbr_frag, 77), kNoPort);
  });
}

}  // namespace
}  // namespace smst
