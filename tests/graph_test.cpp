#include <stdexcept>

#include <gtest/gtest.h>

#include "smst/graph/graph.h"
#include "smst/graph/properties.h"
#include "smst/graph/union_find.h"

namespace smst {
namespace {

WeightedGraph Triangle() {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 10).AddEdge(1, 2, 20).AddEdge(2, 0, 30);
  return std::move(b).Build();
}

TEST(GraphBuilderTest, BuildsTriangle) {
  auto g = Triangle();
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.DegreeOf(0), 2u);
  EXPECT_EQ(g.DegreeOf(1), 2u);
  EXPECT_EQ(g.DegreeOf(2), 2u);
}

TEST(GraphBuilderTest, DefaultIdsAreOneToN) {
  auto g = Triangle();
  EXPECT_EQ(g.IdOf(0), 1u);
  EXPECT_EQ(g.IdOf(2), 3u);
  EXPECT_EQ(g.MaxId(), 3u);
  EXPECT_EQ(g.IndexOfId(2), 1u);
  EXPECT_EQ(g.IndexOfId(99), kInvalidNode);
}

TEST(GraphBuilderTest, CustomIds) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 5);
  b.SetIds({7, 3}, 10);
  auto g = std::move(b).Build();
  EXPECT_EQ(g.IdOf(0), 7u);
  EXPECT_EQ(g.MaxId(), 10u);
}

TEST(GraphBuilderTest, RejectsSelfLoop) {
  GraphBuilder b(2);
  EXPECT_THROW(b.AddEdge(1, 1, 3), std::invalid_argument);
}

TEST(GraphBuilderTest, RejectsOutOfRangeEndpoint) {
  GraphBuilder b(2);
  EXPECT_THROW(b.AddEdge(0, 2, 3), std::invalid_argument);
}

TEST(GraphBuilderTest, RejectsDuplicateWeight) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 5).AddEdge(1, 2, 5);
  EXPECT_THROW(std::move(b).Build(), std::invalid_argument);
}

TEST(GraphBuilderTest, RejectsParallelEdge) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 5).AddEdge(1, 0, 6);
  EXPECT_THROW(std::move(b).Build(), std::invalid_argument);
}

TEST(GraphBuilderTest, RejectsDisconnected) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1).AddEdge(2, 3, 2);
  EXPECT_THROW(std::move(b).Build(), std::invalid_argument);
}

TEST(GraphBuilderTest, RejectsDuplicateIds) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 1);
  b.SetIds({4, 4}, 10);
  EXPECT_THROW(std::move(b).Build(), std::invalid_argument);
}

TEST(GraphBuilderTest, RejectsIdAboveN) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 1);
  b.SetIds({4, 11}, 10);
  EXPECT_THROW(std::move(b).Build(), std::invalid_argument);
}

TEST(GraphBuilderTest, RejectsZeroId) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 1);
  b.SetIds({0, 1}, 10);
  EXPECT_THROW(std::move(b).Build(), std::invalid_argument);
}

TEST(GraphTest, PortsCoverIncidentEdges) {
  auto g = Triangle();
  auto ports = g.PortsOf(1);
  ASSERT_EQ(ports.size(), 2u);
  // Port order is edge-insertion order: (0,1) then (1,2).
  EXPECT_EQ(ports[0].neighbor, 0u);
  EXPECT_EQ(ports[0].weight, 10u);
  EXPECT_EQ(ports[1].neighbor, 2u);
  EXPECT_EQ(ports[1].weight, 20u);
}

TEST(GraphTest, OtherEndpoint) {
  auto g = Triangle();
  EXPECT_EQ(g.OtherEndpoint(0, 0), 1u);
  EXPECT_EQ(g.OtherEndpoint(0, 1), 0u);
}

TEST(GraphTest, TotalWeight) {
  auto g = Triangle();
  std::vector<EdgeIndex> set{0, 2};
  EXPECT_EQ(g.TotalWeight(set), 40u);
}

TEST(PropertiesTest, BfsDistancesOnPath) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1).AddEdge(1, 2, 2).AddEdge(2, 3, 3);
  auto g = std::move(b).Build();
  auto d = BfsDistances(g, 0);
  EXPECT_EQ(d, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(Eccentricity(g, 1), 2u);
  EXPECT_EQ(ExactDiameter(g), 3u);
  EXPECT_EQ(DoubleSweepDiameterLowerBound(g), 3u);
}

TEST(PropertiesTest, DiameterOfTriangleIsOne) {
  EXPECT_EQ(ExactDiameter(Triangle()), 1u);
}

TEST(PropertiesTest, SpanningTreeDetection) {
  auto g = Triangle();
  EXPECT_TRUE(IsSpanningTree(g, {true, true, false}));
  EXPECT_TRUE(IsSpanningTree(g, {false, true, true}));
  EXPECT_FALSE(IsSpanningTree(g, {true, true, true}));   // cycle
  EXPECT_FALSE(IsSpanningTree(g, {true, false, false}));  // too few
}

TEST(UnionFindTest, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumSets(), 5u);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_EQ(uf.NumSets(), 4u);
  EXPECT_EQ(uf.SizeOf(0), 2u);
  uf.Union(2, 3);
  uf.Union(0, 3);
  EXPECT_EQ(uf.SizeOf(1), 4u);
  EXPECT_EQ(uf.NumSets(), 2u);
}

}  // namespace
}  // namespace smst
