// Post-construction tree operations: O(1)-awake broadcast / min / sum
// over the LDT a finished MST run leaves behind.
#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "smst/apps/tree_ops.h"
#include "smst/graph/generators.h"
#include "smst/mst/randomized_mst.h"

namespace smst {
namespace {

struct Fixture {
  WeightedGraph g;
  MstRunResult run;

  explicit Fixture(std::size_t n, std::uint64_t seed)
      : g(Make(n, seed)), run(RunRandomizedMst(g, {.seed = seed})) {}

  static WeightedGraph Make(std::size_t n, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    return MakeErdosRenyi(n, 6.0 / static_cast<double>(n), rng);
  }
};

TEST(TreeOpsTest, BroadcastReachesEveryNode) {
  Fixture fx(50, 1);
  TreeOpRequest req;
  req.kind = TreeOpRequest::Kind::kBroadcast;
  req.broadcast_value = 123456;
  auto report = RunTreeOps(fx.g, fx.run, {req});
  ASSERT_EQ(report.outcomes.size(), 1u);
  for (auto v : report.outcomes[0].per_node) EXPECT_EQ(v, 123456u);
  EXPECT_EQ(report.outcomes[0].root_value, 123456u);
  EXPECT_LE(report.stats.max_awake, 2u);  // O(1) awake, one block
  EXPECT_EQ(report.stats.dropped_messages, 0u);
}

TEST(TreeOpsTest, AggregatesMatchSequentialAnswers) {
  Fixture fx(60, 2);
  Xoshiro256 rng(99);
  TreeOpRequest min_req;
  min_req.kind = TreeOpRequest::Kind::kAggregateMin;
  TreeOpRequest sum_req;
  sum_req.kind = TreeOpRequest::Kind::kAggregateSum;
  for (std::size_t v = 0; v < 60; ++v) {
    min_req.inputs.push_back(rng.NextInRange(100, 100000));
    sum_req.inputs.push_back(rng.NextBelow(50));
  }
  auto report = RunTreeOps(fx.g, fx.run, {min_req, sum_req});
  EXPECT_EQ(report.outcomes[0].root_value,
            *std::min_element(min_req.inputs.begin(), min_req.inputs.end()));
  EXPECT_EQ(report.outcomes[1].root_value,
            std::accumulate(sum_req.inputs.begin(), sum_req.inputs.end(),
                            std::uint64_t{0}));
}

TEST(TreeOpsTest, BatchOfManyOpsStaysO1AwakePerOp) {
  Fixture fx(40, 3);
  std::vector<TreeOpRequest> batch;
  for (int i = 0; i < 10; ++i) {
    TreeOpRequest req;
    req.kind = TreeOpRequest::Kind::kBroadcast;
    req.broadcast_value = 1000u + i;
    batch.push_back(req);
  }
  auto report = RunTreeOps(fx.g, fx.run, batch);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(report.outcomes[i].root_value, 1000u + i);
  }
  EXPECT_LE(report.stats.max_awake, 2u * 10u);
  // Each op costs one (2n+1)-round block.
  EXPECT_LE(report.stats.rounds, 10 * (2 * 40 + 1));
}

TEST(TreeOpsTest, RejectsMismatchedInputs) {
  Fixture fx(20, 4);
  TreeOpRequest req;
  req.kind = TreeOpRequest::Kind::kAggregateSum;
  req.inputs = {1, 2, 3};  // wrong size
  EXPECT_THROW(RunTreeOps(fx.g, fx.run, {req}), std::invalid_argument);
}

TEST(TreeOpsTest, RejectsForeignResult) {
  Fixture fx(20, 5);
  Xoshiro256 rng(6);
  auto other = MakeRing(30, rng);
  TreeOpRequest req;
  req.kind = TreeOpRequest::Kind::kBroadcast;
  EXPECT_THROW(RunTreeOps(other, fx.run, {req}), std::invalid_argument);
}

}  // namespace
}  // namespace smst
