// Property sweeps for the toolbox procedures over random tree shapes:
// for every (family, size, seed) the results must match a direct
// sequential computation, with the paper's O(1)-awake guarantee.
#include <algorithm>
#include <queue>
#include <vector>

#include <gtest/gtest.h>

#include "smst/graph/generators.h"
#include "smst/runtime/simulator.h"
#include "smst/sleeping/forest_builder.h"
#include "smst/sleeping/procedures.h"

namespace smst {
namespace {

struct TreeFixture {
  WeightedGraph g;
  std::vector<LdtState> states;
  NodeIndex root;

  // A random tree topology (the whole graph is one fragment), rooted at
  // a random node.
  TreeFixture(std::size_t n, std::uint64_t seed, bool caterpillar)
      : g(Make(n, seed, caterpillar)) {
    Xoshiro256 rng(seed * 13 + 5);
    root = static_cast<NodeIndex>(rng.NextBelow(g.NumNodes()));
    std::vector<EdgeIndex> all;
    for (EdgeIndex e = 0; e < g.NumEdges(); ++e) all.push_back(e);
    states = BuildForest(g, all, {root});
  }

  static WeightedGraph Make(std::size_t n, std::uint64_t seed,
                            bool caterpillar) {
    Xoshiro256 rng(seed);
    if (caterpillar) return MakeCaterpillar(n / 2, rng);
    return MakeRandomTree(n, rng);
  }

  // Sequential recomputation of each node's subtree (for oracle checks).
  std::vector<std::vector<NodeIndex>> Subtrees() const {
    std::vector<std::vector<NodeIndex>> subtree(g.NumNodes());
    // Process nodes in decreasing level order.
    std::vector<NodeIndex> order(g.NumNodes());
    for (NodeIndex v = 0; v < g.NumNodes(); ++v) order[v] = v;
    std::sort(order.begin(), order.end(), [&](NodeIndex a, NodeIndex b) {
      return states[a].level > states[b].level;
    });
    for (NodeIndex v : order) {
      subtree[v].push_back(v);
      for (std::uint32_t cp : states[v].child_ports) {
        NodeIndex c = g.PortsOf(v)[cp].neighbor;
        subtree[v].insert(subtree[v].end(), subtree[c].begin(),
                          subtree[c].end());
      }
    }
    return subtree;
  }
};

class ProcedureSweep
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(ProcedureSweep, UpcastMinMatchesOracleEverywhere) {
  auto [size_class, seed, caterpillar] = GetParam();
  const std::size_t n = size_class == 0 ? 12 : (size_class == 1 ? 33 : 70);
  TreeFixture fx(n, seed, caterpillar);
  ASSERT_EQ(CheckForestInvariant(fx.g, fx.states), "");

  // Random values at a random subset of nodes.
  Xoshiro256 rng(seed * 101);
  std::vector<UpcastItem> own(fx.g.NumNodes());
  for (NodeIndex v = 0; v < fx.g.NumNodes(); ++v) {
    if (rng.NextDouble() < 0.5) {
      own[v] = UpcastItem{rng.NextBelow(1000), v, 0};
    }
  }
  std::vector<UpcastItem> result(fx.g.NumNodes());
  Simulator sim(fx.g);
  sim.Run([&](NodeContext& ctx) -> Task<void> {
    result[ctx.Index()] =
        co_await UpcastMin(ctx, fx.states[ctx.Index()], 1, own[ctx.Index()]);
  });

  // Oracle: every node's result is the min over its subtree.
  auto subtree = fx.Subtrees();
  for (NodeIndex v = 0; v < fx.g.NumNodes(); ++v) {
    UpcastItem expected;
    for (NodeIndex u : subtree[v]) {
      if (own[u] < expected) expected = own[u];
    }
    EXPECT_EQ(result[v].key, expected.key) << "node " << v;
    EXPECT_EQ(result[v].b, expected.b) << "node " << v;
  }
  EXPECT_LE(sim.Stats().max_awake, 2u);
  EXPECT_EQ(sim.Stats().dropped_messages, 0u);
}

TEST_P(ProcedureSweep, UpcastSumMatchesOracleEverywhere) {
  auto [size_class, seed, caterpillar] = GetParam();
  const std::size_t n = size_class == 0 ? 12 : (size_class == 1 ? 33 : 70);
  TreeFixture fx(n, seed, caterpillar);

  Xoshiro256 rng(seed * 103);
  std::vector<std::uint64_t> own(fx.g.NumNodes());
  for (auto& v : own) v = rng.NextBelow(5);
  std::vector<UpcastSumResult> result(fx.g.NumNodes());
  Simulator sim(fx.g);
  sim.Run([&](NodeContext& ctx) -> Task<void> {
    result[ctx.Index()] =
        co_await UpcastSum(ctx, fx.states[ctx.Index()], 1, own[ctx.Index()]);
  });

  auto subtree = fx.Subtrees();
  for (NodeIndex v = 0; v < fx.g.NumNodes(); ++v) {
    std::uint64_t expected = 0;
    for (NodeIndex u : subtree[v]) expected += own[u];
    EXPECT_EQ(result[v].subtree_total, expected) << "node " << v;
    // Child breakdown sums to the total minus own.
    std::uint64_t child_sum = 0;
    for (auto [port, total] : result[v].child_totals) child_sum += total;
    EXPECT_EQ(child_sum + own[v], expected);
  }
  EXPECT_LE(sim.Stats().max_awake, 2u);
}

TEST_P(ProcedureSweep, BroadcastReachesAllAtO1Awake) {
  auto [size_class, seed, caterpillar] = GetParam();
  const std::size_t n = size_class == 0 ? 12 : (size_class == 1 ? 33 : 70);
  TreeFixture fx(n, seed, caterpillar);

  std::vector<std::uint64_t> got(fx.g.NumNodes(), 0);
  Simulator sim(fx.g);
  sim.Run([&](NodeContext& ctx) -> Task<void> {
    Message m = co_await FragmentBroadcast(ctx, fx.states[ctx.Index()], 1,
                                           Message{9, 7777, 0, 0});
    got[ctx.Index()] = m.a;
  });
  for (auto v : got) EXPECT_EQ(v, 7777u);
  EXPECT_LE(sim.Stats().max_awake, 2u);
  EXPECT_LE(sim.Stats().rounds, ScheduleBlockLength(fx.g.NumNodes()));
  EXPECT_EQ(sim.Stats().dropped_messages, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ProcedureSweep,
    ::testing::Combine(::testing::Range(0, 3), ::testing::Values(1, 2, 3, 4),
                       ::testing::Bool()));

TEST(ProcedureSpanTest, SmallerSpanSameResultsFewerRounds) {
  // A shallow tree scheduled with a tight span behaves identically.
  Xoshiro256 rng(5);
  GeneratorOptions opt;
  opt.shuffle_ids = false;
  auto g = MakeStar(40, rng, opt);  // depth 1
  std::vector<EdgeIndex> all;
  for (EdgeIndex e = 0; e < g.NumEdges(); ++e) all.push_back(e);
  auto states = BuildForest(g, all, {0});

  for (std::size_t span : {2u, 40u}) {
    std::vector<std::uint64_t> got(g.NumNodes(), 0);
    Simulator sim(g);
    sim.Run([&](NodeContext& ctx) -> Task<void> {
      Message m = co_await FragmentBroadcast(ctx, states[ctx.Index()], 1,
                                             Message{9, 123, 0, 0}, span);
      got[ctx.Index()] = m.a;
    });
    for (auto v : got) EXPECT_EQ(v, 123u);
    EXPECT_LE(sim.Stats().rounds, ScheduleBlockLength(span));
  }
}

}  // namespace
}  // namespace smst
