#include <gtest/gtest.h>

#include "smst/energy/energy.h"
#include "smst/graph/generators.h"
#include "smst/mst/api.h"

namespace smst {
namespace {

TEST(EnergyTest, HandComputedBill) {
  RunStats stats;
  stats.rounds = 100;
  std::vector<NodeMetrics> nodes(2);
  nodes[0].awake_rounds = 10;
  nodes[0].messages_sent = 5;
  nodes[1].awake_rounds = 2;
  nodes[1].messages_sent = 0;
  EnergyModel model{100.0, 0.1, 1.0};
  auto bill = BillRun(stats, nodes, model);
  // node 0: 10*100 + 5*1 + 90*0.1 = 1014; node 1: 2*100 + 98*0.1 = 209.8
  EXPECT_DOUBLE_EQ(bill.max_per_node, 1014.0);
  EXPECT_DOUBLE_EQ(bill.total, 1014.0 + 209.8);
  EXPECT_DOUBLE_EQ(bill.avg_per_node, (1014.0 + 209.8) / 2);
  EXPECT_NEAR(bill.awake_share, (1005.0 + 200.0) / (1014.0 + 209.8), 1e-12);
}

TEST(EnergyTest, EmptyRunIsZero) {
  RunStats stats;
  auto bill = BillRun(stats, {}, EnergyModel::SensorMote());
  EXPECT_EQ(bill.total, 0.0);
  EXPECT_EQ(bill.awake_share, 0.0);
  EXPECT_EQ(RunsPerBattery(bill, 1.0), 0.0);
}

TEST(EnergyTest, RunsPerBatteryInvertsWorstNode) {
  EnergyReport r;
  r.max_per_node = 500.0;  // microjoule
  EXPECT_DOUBLE_EQ(RunsPerBattery(r, 1.0), 2000.0);
}

TEST(EnergyTest, PresetModelsAreOrdered) {
  // Wi-Fi costs more than a mote, which costs more than BLE; for all,
  // awake is orders of magnitude above sleep.
  for (auto m : {EnergyModel::SensorMote(), EnergyModel::WifiStation(),
                 EnergyModel::BleBeacon()}) {
    EXPECT_GT(m.awake_cost, 100 * m.sleep_cost);
  }
  EXPECT_GT(EnergyModel::WifiStation().awake_cost,
            EnergyModel::SensorMote().awake_cost);
  EXPECT_GT(EnergyModel::SensorMote().awake_cost,
            EnergyModel::BleBeacon().awake_cost);
}

TEST(EnergyTest, SleepingBeatsBaselineByOrdersOfMagnitude) {
  // The paper's whole point, as an energy assertion.
  Xoshiro256 rng(3);
  auto g = MakeErdosRenyi(100, 0.08, rng);
  auto sleeping = ComputeMst(g, MstAlgorithm::kRandomized, {.seed = 3});
  auto baseline = ComputeMst(g, MstAlgorithm::kGhsBaseline, {.seed = 3});
  const auto model = EnergyModel::SensorMote();
  const auto bill_s = BillRun(sleeping.stats, sleeping.node_metrics, model);
  // The baseline result reuses the sleeping run's node metrics for
  // messages, but awake = rounds for every node by definition:
  std::vector<NodeMetrics> always_awake = baseline.node_metrics;
  for (auto& m : always_awake) m.awake_rounds = baseline.stats.rounds;
  const auto bill_b = BillRun(baseline.stats, always_awake, model);
  EXPECT_GT(bill_b.max_per_node, 50.0 * bill_s.max_per_node);
}

}  // namespace
}  // namespace smst
