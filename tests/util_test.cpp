#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "smst/util/fit.h"
#include "smst/util/prng.h"
#include "smst/util/table.h"

namespace smst {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(Xoshiro256Test, Deterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256Test, NextBelowStaysInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Xoshiro256Test, NextBelowOneIsAlwaysZero) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(Xoshiro256Test, NextInRangeInclusive) {
  Xoshiro256 rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    auto v = rng.NextInRange(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256Test, CoinIsRoughlyFair) {
  Xoshiro256 rng(11);
  int heads = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) heads += rng.NextCoin() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.5, 0.01);
}

TEST(Xoshiro256Test, DoubleInUnitInterval) {
  Xoshiro256 rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Xoshiro256Test, SplitStreamsAreIndependentAndDeterministic) {
  Xoshiro256 parent(99);
  Xoshiro256 c1 = parent.Split(0);
  Xoshiro256 c2 = parent.Split(1);
  Xoshiro256 c1_again = parent.Split(0);
  EXPECT_NE(c1.Next(), c2.Next());
  Xoshiro256 c1_ref = parent.Split(0);
  EXPECT_EQ(c1_again.Next(), c1_ref.Next());
}

TEST(ShuffleTest, IsAPermutation) {
  Xoshiro256 rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto orig = v;
  Shuffle(v, rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(SampleDistinctTest, DistinctSortedWithinRange) {
  Xoshiro256 rng(17);
  auto s = SampleDistinct(10, 1000, 200, rng);
  ASSERT_EQ(s.size(), 200u);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  std::set<std::uint64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 200u);
  EXPECT_GE(s.front(), 10u);
  EXPECT_LE(s.back(), 1000u);
}

TEST(SampleDistinctTest, ExhaustiveRangeIsFullRange) {
  Xoshiro256 rng(17);
  auto s = SampleDistinct(1, 50, 50, rng);
  ASSERT_EQ(s.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(s[i], i + 1);
}

TEST(SampleIdsTest, DistinctIdsInRange) {
  Xoshiro256 rng(23);
  auto ids = SampleIds(100, 1000, rng);
  ASSERT_EQ(ids.size(), 100u);
  std::set<std::uint64_t> uniq(ids.begin(), ids.end());
  EXPECT_EQ(uniq.size(), 100u);
  for (auto id : ids) {
    EXPECT_GE(id, 1u);
    EXPECT_LE(id, 1000u);
  }
}

TEST(TableTest, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "12345"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| name  |"), std::string::npos);
  EXPECT_NE(s.find("12345"), std::string::npos);
  // Every line has equal width.
  std::size_t first_nl = s.find('\n');
  std::size_t width = first_nl;
  for (std::size_t pos = 0; pos < s.size();) {
    std::size_t nl = s.find('\n', pos);
    EXPECT_EQ(nl - pos, width);
    pos = nl + 1;
  }
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.AddRow({"x"});
  EXPECT_NE(t.ToString().find("x"), std::string::npos);
}

TEST(FitTest, RecoversLinearScaling) {
  std::vector<double> x{100, 200, 400, 800, 1600};
  std::vector<double> y;
  for (double v : x) y.push_back(3.5 * v);
  EXPECT_EQ(BestFitName(x, y), "n");
  auto fit = FitOne(x, y, {"n", [](double n) { return n; }});
  EXPECT_NEAR(fit.constant, 3.5, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(FitTest, RecoversLogScaling) {
  std::vector<double> x{64, 256, 1024, 4096, 16384};
  std::vector<double> y;
  for (double v : x) y.push_back(2.0 * std::log2(v) + 0.01);
  EXPECT_EQ(BestFitName(x, y), "log n");
}

TEST(FitTest, RecoversNLogN) {
  std::vector<double> x{64, 256, 1024, 4096};
  std::vector<double> y;
  for (double v : x) y.push_back(0.7 * v * std::log2(v));
  EXPECT_EQ(BestFitName(x, y), "n log n");
}

TEST(FitTest, AllModelsSortedByR2) {
  std::vector<double> x{10, 100, 1000};
  std::vector<double> y{1, 2, 3};
  auto fits = FitAll(x, y, StandardModels());
  for (std::size_t i = 1; i < fits.size(); ++i) {
    EXPECT_GE(fits[i - 1].r_squared, fits[i].r_squared);
  }
}

}  // namespace
}  // namespace smst
