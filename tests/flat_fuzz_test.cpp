// Differential fuzz: seed-swept small random graphs, coroutine vs flat
// engine, both MST algorithms. A cheap, broad net over the lowering —
// any divergence in the tree, the phase count, or the aggregate meters
// fails with the generating (topology seed, run seed) pair in the trace.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "smst/graph/generators.h"
#include "smst/mst/api.h"
#include "smst/runtime/simulator.h"

namespace smst {
namespace {

MstRunResult RunWith(const WeightedGraph& g, MstAlgorithm algo,
                     std::uint64_t seed, EngineMode engine) {
  MstOptions opt;
  opt.seed = seed;
  opt.engine = engine;
  return ComputeMst(g, algo, opt);
}

TEST(FlatFuzzTest, SeedSweptGraphsMatchAcrossEngines) {
  for (std::uint64_t topo_seed = 0; topo_seed < 12; ++topo_seed) {
    Xoshiro256 rng(1000 + topo_seed);
    const std::size_t n = 6 + 2 * (topo_seed % 6);  // 6..16 nodes
    const auto g = MakeErdosRenyi(n, 0.35, rng);
    for (MstAlgorithm algo :
         {MstAlgorithm::kRandomized, MstAlgorithm::kDeterministic}) {
      for (std::uint64_t seed : {1, 9}) {
        SCOPED_TRACE("topo_seed " + std::to_string(topo_seed) + " n " +
                     std::to_string(n) + " " + MstAlgorithmName(algo) +
                     " seed " + std::to_string(seed));
        const MstRunResult a =
            RunWith(g, algo, seed, EngineMode::kCoroutine);
        const MstRunResult b = RunWith(g, algo, seed, EngineMode::kFlat);
        EXPECT_EQ(a.tree_edges, b.tree_edges);
        EXPECT_EQ(a.consistency_error, b.consistency_error);
        EXPECT_EQ(a.phases, b.phases);
        EXPECT_EQ(a.stats.rounds, b.stats.rounds);
        EXPECT_EQ(a.stats.awake_node_rounds, b.stats.awake_node_rounds);
        EXPECT_EQ(a.stats.total_messages, b.stats.total_messages);
        EXPECT_EQ(a.stats.total_bits, b.stats.total_bits);
        EXPECT_EQ(a.stats.dropped_messages, b.stats.dropped_messages);
      }
    }
  }
}

}  // namespace
}  // namespace smst
