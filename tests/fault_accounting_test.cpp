// Fault accounting: under a mixed fault plan the scheduler's
// messages_dropped meter (model drops: sends that reached a sleeping
// receiver, including delayed messages that missed their window) must
// agree with the auditor's independently-counted model drops, and the
// awake meters must agree — on every topology, seed, and thread count.
// Injected drops are the adversary destroying in-flight messages and are
// deliberately NOT model drops; the test pins that separation too.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "smst/faults/fault_plan.h"
#include "smst/graph/generators.h"
#include "smst/lower_bounds/grc.h"
#include "smst/runtime/parallel_runner.h"

namespace smst {
namespace {

// Mixed plan: drops, short delays, and duplicates all active at rates
// the small topologies survive often enough to exercise both the
// completed and the failed bookkeeping paths.
constexpr char kMixedPlan[] = "salt=3,drop=0.002,delay=2:0.01,dup=0.01";

struct Case {
  std::string name;
  WeightedGraph graph;
};

std::vector<Case> Topologies() {
  std::vector<Case> cases;
  {
    Xoshiro256 rng(31);
    cases.push_back({"ring-24", MakeRing(24, rng)});
  }
  {
    Xoshiro256 rng(32);
    cases.push_back({"star-16", MakeStar(16, rng)});
  }
  {
    Xoshiro256 rng(33);
    cases.push_back({"grc-4x8", BuildGrc(4, 8, rng).graph});
  }
  return cases;
}

std::uint64_t SumDropped(const MstRunResult& r) {
  std::uint64_t total = 0;
  for (const NodeMetrics& m : r.node_metrics) total += m.messages_dropped;
  return total;
}

std::uint64_t SumAwake(const MstRunResult& r) {
  std::uint64_t total = 0;
  for (const NodeMetrics& m : r.node_metrics) total += m.awake_rounds;
  return total;
}

#ifndef SMST_NO_AUDITOR
TEST(FaultAccountingTest, DropMeterAndAwakeMeterAgreeWithAuditor) {
  const FaultPlan plan = ParseFaultPlan(kMixedPlan);
  for (const Case& c : Topologies()) {
    for (std::uint64_t seed : {1, 2}) {
      for (MstAlgorithm algo :
           {MstAlgorithm::kRandomized, MstAlgorithm::kDeterministic}) {
        SCOPED_TRACE(c.name + " seed " + std::to_string(seed) + " " +
                     MstAlgorithmName(algo));
        MstOptions opt;
        opt.seed = seed;
        opt.fault_plan = &plan;
        opt.audit = AuditMode::kOn;
        const auto r = ComputeMst(c.graph, algo, opt);
        // The run may complete or fail — the meters must agree either way.
        EXPECT_EQ(r.outcome.audit_violations, 0u);
        EXPECT_EQ(r.outcome.audited_model_drops, SumDropped(r));
        EXPECT_EQ(r.outcome.audited_awake_node_rounds, SumAwake(r));
        EXPECT_EQ(r.stats.dropped_messages, SumDropped(r));
        EXPECT_EQ(r.stats.awake_node_rounds, SumAwake(r));
      }
    }
  }
}
#endif  // SMST_NO_AUDITOR

TEST(FaultAccountingTest, InjectedDropsAreNotModelDrops) {
  // drop=1 destroys every message in flight; the model-drop meter must
  // stay untouched by those injections (it only counts sleeping-receiver
  // losses, which can no longer occur once everything is destroyed).
  Xoshiro256 rng(41);
  const auto g = MakeRing(12, rng);
  const FaultPlan plan = ParseFaultPlan("drop=1");
  MstOptions opt;
  opt.fault_plan = &plan;
  opt.max_rounds = 1 << 20;
  const auto r = ComputeMst(g, MstAlgorithm::kRandomized, opt);
  EXPECT_GT(r.outcome.faults.injected_drops, 0u);
  EXPECT_EQ(SumDropped(r), 0u);
}

TEST(FaultAccountingTest, AccountingIsThreadCountInvariant) {
  const FaultPlan plan = ParseFaultPlan(kMixedPlan);
  std::vector<Case> cases = Topologies();
  std::vector<RunSpec> specs;
  MstOptions opt;
  opt.fault_plan = &plan;
#ifndef SMST_NO_AUDITOR
  opt.audit = AuditMode::kOn;
#endif
  for (const Case& c : cases) {
    for (std::uint64_t seed : {1, 2}) {
      specs.push_back(RunSpec{&c.graph, MstAlgorithm::kRandomized, opt, seed});
      specs.push_back(
          RunSpec{&c.graph, MstAlgorithm::kDeterministic, opt, seed});
    }
  }
  const auto serial = ParallelRunner(1).RunAll(specs);
  const auto threaded = ParallelRunner(4).RunAll(specs);
  ASSERT_EQ(serial.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE("spec " + std::to_string(i));
    // RunOutcome::operator== covers status, detail, FaultStats, and the
    // audit summary field for field.
    EXPECT_EQ(serial[i].outcome, threaded[i].outcome);
    EXPECT_EQ(SumDropped(serial[i]), SumDropped(threaded[i]));
    EXPECT_EQ(SumAwake(serial[i]), SumAwake(threaded[i]));
  }
}

}  // namespace
}  // namespace smst
