// Flat execution engine (DESIGN §13): the batched state-machine lowering
// of the MST algorithms must be bit-identical to the coroutine engine in
// every observable — tree, aggregate and per-node metrics, telemetry,
// classified outcome, fault meters, and audit totals — fault-free and
// faulted, serial and sharded. Plus the option-validation surface:
// engine parsing, trace rejection, overload mismatch, and the
// flat+log*-coloring rejection.
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "smst/faults/fault_plan.h"
#include "smst/graph/generators.h"
#include "smst/lower_bounds/grc.h"
#include "smst/mst/api.h"
#include "smst/mst/deterministic_mst.h"
#include "smst/mst/randomized_mst.h"
#include "smst/runtime/simulator.h"

namespace smst {
namespace {

struct Topology {
  std::string name;
  WeightedGraph graph;
};

std::vector<Topology> Topologies() {
  std::vector<Topology> cases;
  {
    Xoshiro256 rng(71);
    cases.push_back({"ring-24", MakeRing(24, rng)});
  }
  {
    Xoshiro256 rng(72);
    cases.push_back({"star-16", MakeStar(16, rng)});
  }
  {
    Xoshiro256 rng(73);
    cases.push_back({"grc-4x8", BuildGrc(4, 8, rng).graph});
  }
  {
    Xoshiro256 rng(74);
    cases.push_back({"er-32", MakeErdosRenyi(32, 0.2, rng)});
  }
  return cases;
}

void ExpectSameLdt(const LdtState& a, const LdtState& b) {
  EXPECT_EQ(a.fragment_id, b.fragment_id);
  EXPECT_EQ(a.level, b.level);
  EXPECT_EQ(a.parent_port, b.parent_port);
  ASSERT_EQ(a.child_ports.size(), b.child_ports.size());
  for (std::size_t i = 0; i < a.child_ports.size(); ++i) {
    EXPECT_EQ(a.child_ports[i], b.child_ports[i]);
  }
}

// Every observable of a run must match (the same contract the sharded
// backend pins against the serial engine).
void ExpectIdenticalRuns(const MstRunResult& a, const MstRunResult& b) {
  EXPECT_EQ(a.tree_edges, b.tree_edges);
  EXPECT_EQ(a.consistency_error, b.consistency_error);
  EXPECT_EQ(a.phases, b.phases);

  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.max_awake, b.stats.max_awake);
  EXPECT_EQ(a.stats.avg_awake, b.stats.avg_awake);  // exact, same sums
  EXPECT_EQ(a.stats.total_messages, b.stats.total_messages);
  EXPECT_EQ(a.stats.total_bits, b.stats.total_bits);
  EXPECT_EQ(a.stats.max_message_bits, b.stats.max_message_bits);
  EXPECT_EQ(a.stats.dropped_messages, b.stats.dropped_messages);
  EXPECT_EQ(a.stats.awake_node_rounds, b.stats.awake_node_rounds);

  ASSERT_EQ(a.node_metrics.size(), b.node_metrics.size());
  for (std::size_t v = 0; v < a.node_metrics.size(); ++v) {
    EXPECT_EQ(a.node_metrics[v].awake_rounds, b.node_metrics[v].awake_rounds);
    EXPECT_EQ(a.node_metrics[v].messages_sent,
              b.node_metrics[v].messages_sent);
    EXPECT_EQ(a.node_metrics[v].bits_sent, b.node_metrics[v].bits_sent);
    EXPECT_EQ(a.node_metrics[v].messages_dropped,
              b.node_metrics[v].messages_dropped);
  }
  EXPECT_EQ(a.wake_times, b.wake_times);
  EXPECT_EQ(a.fragments_per_phase, b.fragments_per_phase);
  EXPECT_EQ(a.blue_per_phase, b.blue_per_phase);
  ASSERT_EQ(a.final_ldt.size(), b.final_ldt.size());
  for (std::size_t v = 0; v < a.final_ldt.size(); ++v) {
    ExpectSameLdt(a.final_ldt[v], b.final_ldt[v]);
  }
  ASSERT_EQ(a.forest_per_phase.size(), b.forest_per_phase.size());
  for (std::size_t p = 0; p < a.forest_per_phase.size(); ++p) {
    ASSERT_EQ(a.forest_per_phase[p].size(), b.forest_per_phase[p].size());
    for (std::size_t v = 0; v < a.forest_per_phase[p].size(); ++v) {
      ExpectSameLdt(a.forest_per_phase[p][v], b.forest_per_phase[p][v]);
    }
  }

  EXPECT_EQ(a.outcome.status, b.outcome.status);
  EXPECT_EQ(a.outcome.detail, b.outcome.detail);
  EXPECT_EQ(a.outcome.unfinished_nodes, b.outcome.unfinished_nodes);
  EXPECT_EQ(a.outcome.last_round, b.outcome.last_round);
  EXPECT_EQ(a.outcome.faults.injected_drops, b.outcome.faults.injected_drops);
  EXPECT_EQ(a.outcome.faults.injected_delays,
            b.outcome.faults.injected_delays);
  EXPECT_EQ(a.outcome.faults.delayed_delivered,
            b.outcome.faults.delayed_delivered);
  EXPECT_EQ(a.outcome.faults.delayed_lost, b.outcome.faults.delayed_lost);
  EXPECT_EQ(a.outcome.faults.injected_duplicates,
            b.outcome.faults.injected_duplicates);
  EXPECT_EQ(a.outcome.faults.jittered_wakes, b.outcome.faults.jittered_wakes);
  EXPECT_EQ(a.outcome.faults.suppressed_wakes,
            b.outcome.faults.suppressed_wakes);
  EXPECT_EQ(a.outcome.faults.crashed_nodes, b.outcome.faults.crashed_nodes);
  EXPECT_EQ(a.outcome.audited_awake_node_rounds,
            b.outcome.audited_awake_node_rounds);
  EXPECT_EQ(a.outcome.audited_model_drops, b.outcome.audited_model_drops);
  EXPECT_EQ(a.outcome.audit_violations, b.outcome.audit_violations);
}

MstRunResult RunWith(const WeightedGraph& g, MstAlgorithm algo,
                     std::uint64_t seed, EngineMode engine,
                     std::uint32_t shards, const FaultPlan* plan,
                     AuditMode audit = AuditMode::kDefault) {
  MstOptions opt;
  opt.seed = seed;
  opt.engine = engine;
  opt.shards = shards;
  opt.fault_plan = plan;
  opt.audit = audit;
  opt.record_wake_times = true;
  opt.record_forest_snapshots = true;
  return ComputeMst(g, algo, opt);
}

// ----------------------------------------------------- bit-identity ---

TEST(FlatEngineIdentityTest, FaultFreeRunsMatchCoroutineSerialAndSharded) {
  for (const Topology& c : Topologies()) {
    for (MstAlgorithm algo :
         {MstAlgorithm::kRandomized, MstAlgorithm::kDeterministic}) {
      for (std::uint64_t seed : {1, 5}) {
        const MstRunResult coro = RunWith(c.graph, algo, seed,
                                          EngineMode::kCoroutine, 0, nullptr);
        for (std::uint32_t shards : {0u, 2u}) {
          SCOPED_TRACE(c.name + " " + MstAlgorithmName(algo) + " seed " +
                       std::to_string(seed) + " shards " +
                       std::to_string(shards));
          ExpectIdenticalRuns(coro, RunWith(c.graph, algo, seed,
                                            EngineMode::kFlat, shards,
                                            nullptr));
        }
      }
    }
  }
}

TEST(FlatEngineIdentityTest, FaultedRunsMatchCoroutineSerialAndSharded) {
  // Mixed adversary (drops, delays, duplicates, jitter) and a crash-stop
  // plan: the whole classified outcome including the per-category fault
  // meters must be engine-invariant.
  const FaultPlan plan =
      ParseFaultPlan("salt=9,drop=0.003,delay=2:0.02,dup=0.01,jitter=2:0.01");
  const FaultPlan crashy = ParseFaultPlan("salt=4,crash=40:0.05,drop=0.002");
  for (const Topology& c : Topologies()) {
    for (const FaultPlan* p : {&plan, &crashy}) {
      for (MstAlgorithm algo :
           {MstAlgorithm::kRandomized, MstAlgorithm::kDeterministic}) {
        const MstRunResult coro =
            RunWith(c.graph, algo, 3, EngineMode::kCoroutine, 0, p);
        for (std::uint32_t shards : {0u, 2u}) {
          SCOPED_TRACE(c.name + " " + MstAlgorithmName(algo) + " plan " +
                       p->ToString() + " shards " + std::to_string(shards));
          ExpectIdenticalRuns(
              coro, RunWith(c.graph, algo, 3, EngineMode::kFlat, shards, p));
        }
      }
    }
  }
}

TEST(FlatEngineIdentityTest, AuditedRunsMatchIncludingAuditTotals) {
  // AuditMode::kOn routes the flat run through the generic scheduler
  // path (the auditor observes the identical event stream); the audit
  // meters themselves must match the coroutine run's.
  Xoshiro256 rng(75);
  const auto g = MakeErdosRenyi(24, 0.25, rng);
  for (MstAlgorithm algo :
       {MstAlgorithm::kRandomized, MstAlgorithm::kDeterministic}) {
    SCOPED_TRACE(MstAlgorithmName(algo));
    const MstRunResult coro = RunWith(g, algo, 2, EngineMode::kCoroutine, 0,
                                      nullptr, AuditMode::kOn);
    const MstRunResult flat = RunWith(g, algo, 2, EngineMode::kFlat, 0,
                                      nullptr, AuditMode::kOn);
    ExpectIdenticalRuns(coro, flat);
    EXPECT_GT(flat.outcome.audited_awake_node_rounds, 0u);
  }
}

TEST(FlatEngineIdentityTest, AdaptiveBlocksAndBaselinesMatchToo) {
  // The remaining harness surfaces: adaptive blocks (randomized),
  // paper-mode termination, and the two derived algorithms that reuse
  // the randomized engine.
  Xoshiro256 rng(76);
  const auto g = MakeErdosRenyi(20, 0.3, rng);
  for (MstAlgorithm algo :
       {MstAlgorithm::kGhsBaseline, MstAlgorithm::kBmSpanningTree}) {
    SCOPED_TRACE(MstAlgorithmName(algo));
    ExpectIdenticalRuns(RunWith(g, algo, 7, EngineMode::kCoroutine, 0, nullptr),
                        RunWith(g, algo, 7, EngineMode::kFlat, 0, nullptr));
  }
  MstOptions opt;
  opt.seed = 7;
  opt.adaptive_blocks = true;
  MstOptions flat_opt = opt;
  flat_opt.engine = EngineMode::kFlat;
  ExpectIdenticalRuns(RunRandomizedMst(g, opt), RunRandomizedMst(g, flat_opt));
  opt.adaptive_blocks = false;
  opt.termination = TerminationMode::kPaperPhaseCount;
  flat_opt = opt;
  flat_opt.engine = EngineMode::kFlat;
  ExpectIdenticalRuns(RunRandomizedMst(g, opt), RunRandomizedMst(g, flat_opt));
}

// ------------------------------------------------ option validation ---

TEST(FlatEngineOptionsTest, EngineNamesRoundTrip) {
  EXPECT_EQ(ParseEngineMode("coroutine"), EngineMode::kCoroutine);
  EXPECT_EQ(ParseEngineMode("flat"), EngineMode::kFlat);
  EXPECT_STREQ(EngineModeName(EngineMode::kCoroutine), "coroutine");
  EXPECT_STREQ(EngineModeName(EngineMode::kFlat), "flat");
  EXPECT_THROW(ParseEngineMode("warp"), std::invalid_argument);
}

TEST(FlatEngineOptionsTest, TracingRequiresTheCoroutineEngine) {
  Xoshiro256 rng(77);
  const auto g = MakeRing(4, rng);
  SimulatorOptions opt;
  opt.engine = EngineMode::kFlat;
  opt.trace = [](const TraceEvent&) {};
  EXPECT_THROW(Simulator(g, opt), std::invalid_argument);
}

struct NoopFlatProgram final : FlatProgram {
  Round Start(NodeIndex, FlatEnv&, SendBatch&) override { return kFlatDone; }
  Round Step(NodeIndex, Round, FlatEnv&, const InboxBatch&,
             SendBatch&) override {
    return kFlatDone;
  }
};

TEST(FlatEngineOptionsTest, EngineAndOverloadMustAgree) {
  Xoshiro256 rng(78);
  const auto g = MakeRing(4, rng);
  {
    SimulatorOptions opt;
    opt.engine = EngineMode::kFlat;
    Simulator sim(g, opt);
    EXPECT_THROW(
        sim.Run([](NodeContext&) -> Task<void> { co_return; }),
        std::logic_error);
  }
  {
    Simulator sim(g, SimulatorOptions{});
    NoopFlatProgram program;
    EXPECT_THROW(sim.Run(program), std::logic_error);
  }
}

TEST(FlatEngineOptionsTest, LogStarColoringRejectsTheFlatEngine) {
  Xoshiro256 rng(79);
  const auto g = MakeRing(6, rng);
  MstOptions opt;
  opt.engine = EngineMode::kFlat;
  opt.coloring = ColoringVariant::kLogStar;
  EXPECT_THROW(RunDeterministicMst(g, opt), std::invalid_argument);
  MstOptions api_opt;
  api_opt.engine = EngineMode::kFlat;
  EXPECT_THROW(ComputeMst(g, MstAlgorithm::kDeterministicLogStar, api_opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace smst
