// Tests for stats, args, and the extra graph generators.
#include <cmath>

#include <gtest/gtest.h>

#include "smst/graph/generators.h"
#include "smst/graph/mst_reference.h"
#include "smst/graph/properties.h"
#include "smst/util/args.h"
#include "smst/util/stats.h"

namespace smst {
namespace {

// ------------------------------------------------------------- stats ---

TEST(StatsTest, SummaryOfKnownSample) {
  auto s = Summarize({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // the textbook example
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(StatsTest, EmptySummaryIsZero) {
  auto s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0 / 3.0), 20.0);
}

TEST(StatsTest, GeometricMean) {
  EXPECT_NEAR(GeometricMean({1, 4, 16}), 4.0, 1e-12);
  EXPECT_NEAR(GeometricMean({2, 2, 2}), 2.0, 1e-12);
  EXPECT_EQ(GeometricMean({}), 0.0);
}

TEST(StatsTest, GeometricMeanRejectsNonPositiveInEveryBuild) {
  // Historically an assert (vanished in Release and silently produced
  // NaN/-inf ratios in bench tables); now a thrown contract violation.
  EXPECT_THROW(GeometricMean({1.0, 0.0, 4.0}), std::domain_error);
  EXPECT_THROW(GeometricMean({-2.0}), std::domain_error);
  EXPECT_THROW(GeometricMean({std::nan("")}), std::domain_error);
}

// -------------------------------------------------------------- args ---

ArgParser Parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgsTest, SpaceAndEqualsForms) {
  auto a = Parse({"--n", "42", "--p=0.5", "--verbose"});
  EXPECT_EQ(a.GetUint("n", 0), 42u);
  EXPECT_DOUBLE_EQ(a.GetDouble("p", 0), 0.5);
  EXPECT_TRUE(a.GetBool("verbose", false));
  EXPECT_EQ(a.GetString("missing", "dflt"), "dflt");
}

TEST(ArgsTest, BooleanSwitchBeforeAnotherFlag) {
  auto a = Parse({"--quiet", "--n", "7"});
  EXPECT_TRUE(a.GetBool("quiet", false));
  EXPECT_EQ(a.GetUint("n", 0), 7u);
}

TEST(ArgsTest, RejectsNonFlagToken) {
  EXPECT_THROW(Parse({"positional"}), std::invalid_argument);
}

TEST(ArgsTest, RejectsMalformedNumbers) {
  auto a = Parse({"--n", "12x"});
  EXPECT_THROW(a.GetUint("n", 0), std::invalid_argument);
  auto b = Parse({"--p", "0.5q"});
  EXPECT_THROW(b.GetDouble("p", 0), std::invalid_argument);
  auto c = Parse({"--flag", "maybe"});
  EXPECT_THROW(c.GetBool("flag", false), std::invalid_argument);
}

TEST(ArgsTest, GetUintRejectsNegativeAndExoticForms) {
  // strtoull would happily wrap "-1" to 2^64-1 and parse "0x10"/"+5";
  // the parser now accepts plain decimal digits only.
  for (const char* bad : {"-1", "+5", " 7", "7 ", "0x10", ""}) {
    auto a = Parse({"--n", bad});
    EXPECT_THROW(a.GetUint("n", 0), std::invalid_argument) << "'" << bad << "'";
  }
  auto overflow = Parse({"--n", "99999999999999999999"});  // > 2^64-1
  EXPECT_THROW(overflow.GetUint("n", 0), std::invalid_argument);
  auto max = Parse({"--n", "18446744073709551615"});  // == 2^64-1: fine
  EXPECT_EQ(max.GetUint("n", 0), 18446744073709551615ull);
  auto zero = Parse({"--n", "0"});
  EXPECT_EQ(zero.GetUint("n", 1), 0u);
}

TEST(ArgsTest, GetDoubleRejectsNonFiniteAndGarbage) {
  for (const char* bad : {"nan", "inf", "-inf", "1e999", "", " 1.5", "1.5 ",
                          "0.5q", "--3"}) {
    auto a = Parse({"--p", bad});
    EXPECT_THROW(a.GetDouble("p", 0), std::invalid_argument)
        << "'" << bad << "'";
  }
  auto ok = Parse({"--p", "-2.5e-3"});
  EXPECT_DOUBLE_EQ(ok.GetDouble("p", 0), -2.5e-3);
}

TEST(ArgsTest, UnusedFlagDetection) {
  auto a = Parse({"--n", "1", "--typo", "2"});
  EXPECT_EQ(a.GetUint("n", 0), 1u);
  auto unused = a.UnusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

// --------------------------------------------------- new generators ----

TEST(GeneratorsExtraTest, Hypercube) {
  Xoshiro256 rng(1);
  auto g = MakeHypercube(4, rng);
  EXPECT_EQ(g.NumNodes(), 16u);
  EXPECT_EQ(g.NumEdges(), 32u);  // n*d/2
  for (NodeIndex v = 0; v < 16; ++v) EXPECT_EQ(g.DegreeOf(v), 4u);
  EXPECT_EQ(ExactDiameter(g), 4u);
  EXPECT_THROW(MakeHypercube(0, rng), std::invalid_argument);
}

TEST(GeneratorsExtraTest, Caterpillar) {
  Xoshiro256 rng(2);
  auto g = MakeCaterpillar(10, rng);
  EXPECT_EQ(g.NumNodes(), 20u);
  EXPECT_EQ(g.NumEdges(), 19u);  // a tree
  EXPECT_EQ(ExactDiameter(g), 11u);  // leaf-spine...spine-leaf
}

TEST(GeneratorsExtraTest, Lollipop) {
  Xoshiro256 rng(3);
  auto g = MakeLollipop(20, rng);
  EXPECT_EQ(g.NumNodes(), 20u);
  // head K10 (45 edges) + tail path of 10 extra nodes (10 edges... the
  // path re-uses the last head node, so 20-10 = 10 tail edges).
  EXPECT_EQ(g.NumEdges(), 45u + 10u);
  EXPECT_EQ(ExactDiameter(g), 11u);
}

TEST(GeneratorsExtraTest, MstWorksOnAllNewFamilies) {
  Xoshiro256 rng(4);
  for (auto g : {MakeHypercube(4, rng), MakeCaterpillar(12, rng),
                 MakeLollipop(16, rng)}) {
    auto k = KruskalMst(g);
    auto p = PrimMst(g);
    EXPECT_EQ(k, p);
    EXPECT_EQ(k.size(), g.NumNodes() - 1);
  }
}

}  // namespace
}  // namespace smst
