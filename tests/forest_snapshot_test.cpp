// Mid-run structural checks: the Forest-of-LDTs invariant (the paper's
// central data-structure property) must hold at the end of EVERY phase,
// for both algorithms, and the fragment partition must coarsen
// monotonically (fragments only ever merge).
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "smst/graph/generators.h"
#include "smst/mst/deterministic_mst.h"
#include "smst/mst/randomized_mst.h"
#include "smst/sleeping/ldt.h"

namespace smst {
namespace {

void CheckPhaseSnapshots(const WeightedGraph& g, const MstRunResult& r) {
  ASSERT_FALSE(r.forest_per_phase.empty());
  ASSERT_EQ(r.forest_per_phase.size(), r.phases);
  std::map<NodeId, std::set<NodeIndex>> prev_fragments;
  for (std::size_t p = 0; p < r.forest_per_phase.size(); ++p) {
    const auto& forest = r.forest_per_phase[p];
    // 1. FLDT invariant.
    EXPECT_EQ(CheckForestInvariant(g, forest), "") << "after phase " << p + 1;
    // 2. Coarsening: every old fragment is contained in one new fragment.
    std::map<NodeId, std::set<NodeIndex>> fragments;
    for (NodeIndex v = 0; v < g.NumNodes(); ++v) {
      fragments[forest[v].fragment_id].insert(v);
    }
    if (p > 0) {
      for (const auto& [old_id, old_members] : prev_fragments) {
        std::set<NodeId> new_ids;
        for (NodeIndex v : old_members) new_ids.insert(forest[v].fragment_id);
        EXPECT_EQ(new_ids.size(), 1u)
            << "fragment " << old_id << " split after phase " << p + 1;
      }
      EXPECT_LE(fragments.size(), prev_fragments.size());
    }
    prev_fragments = std::move(fragments);
  }
  // Final phase: a single fragment spanning everything.
  EXPECT_EQ(prev_fragments.size(), 1u);
}

TEST(ForestSnapshotTest, RandomizedHoldsEveryPhase) {
  Xoshiro256 rng(1);
  auto g = MakeErdosRenyi(64, 0.1, rng);
  MstOptions opt;
  opt.seed = 1;
  opt.record_forest_snapshots = true;
  CheckPhaseSnapshots(g, RunRandomizedMst(g, opt));
}

TEST(ForestSnapshotTest, RandomizedOnRing) {
  Xoshiro256 rng(2);
  auto g = MakeRing(60, rng);
  MstOptions opt;
  opt.seed = 2;
  opt.record_forest_snapshots = true;
  CheckPhaseSnapshots(g, RunRandomizedMst(g, opt));
}

TEST(ForestSnapshotTest, DeterministicHoldsEveryPhase) {
  Xoshiro256 rng(3);
  auto g = MakeErdosRenyi(48, 0.12, rng);
  MstOptions opt;
  opt.seed = 3;
  opt.record_forest_snapshots = true;
  CheckPhaseSnapshots(g, RunDeterministicMst(g, opt));
}

TEST(ForestSnapshotTest, DeterministicLogStarHoldsEveryPhase) {
  Xoshiro256 rng(4);
  auto g = MakeGrid(6, 8, rng);
  MstOptions opt;
  opt.seed = 4;
  opt.coloring = ColoringVariant::kLogStar;
  opt.record_forest_snapshots = true;
  CheckPhaseSnapshots(g, RunDeterministicMst(g, opt));
}

TEST(ForestSnapshotTest, DisabledByDefault) {
  Xoshiro256 rng(5);
  auto g = MakeRing(20, rng);
  auto r = RunRandomizedMst(g, {.seed = 5});
  EXPECT_TRUE(r.forest_per_phase.empty());
}

}  // namespace
}  // namespace smst
