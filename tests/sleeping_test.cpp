// Tests for the sleeping-model toolbox: schedule arithmetic, the four
// Appendix-B procedures, Merging-Fragments, and Fast-Awake-Coloring —
// including the paper's O(1)-awake guarantees.
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "smst/graph/generators.h"
#include "smst/runtime/simulator.h"
#include "smst/sleeping/coloring.h"
#include "smst/sleeping/ldt.h"
#include "smst/sleeping/merging.h"
#include "smst/sleeping/procedures.h"
#include "smst/sleeping/schedule.h"
#include "tests/test_util.h"

namespace smst {
namespace {

using testing::BuildForest;
using testing::PortTo;

// ---------------------------------------------------------- Schedule ---

TEST(ScheduleTest, PaperRoundNames) {
  // Paper (block started at round 1, n nodes): non-root at distance i has
  // rounds i, i+1, n+1, 2n-i+1, 2n-i+2.
  const std::size_t n = 10;
  const auto r = TransmissionSchedule(1, 3, n);
  EXPECT_FALSE(r.is_root);
  EXPECT_EQ(r.down_receive, 3u);
  EXPECT_EQ(r.down_send, 4u);
  EXPECT_EQ(r.side, 11u);           // n+1
  EXPECT_EQ(r.up_receive, 18u);     // 2n-i+1
  EXPECT_EQ(r.up_send, 19u);        // 2n-i+2
}

TEST(ScheduleTest, RootRounds) {
  const auto r = TransmissionSchedule(1, 0, 10);
  EXPECT_TRUE(r.is_root);
  EXPECT_EQ(r.down_send, 1u);
  EXPECT_EQ(r.side, 11u);
  EXPECT_EQ(r.up_receive, 21u);  // 2n+1
}

TEST(ScheduleTest, ShiftedBlockStart) {
  const auto base = TransmissionSchedule(1, 2, 8);
  const auto shifted = TransmissionSchedule(101, 2, 8);
  EXPECT_EQ(shifted.down_receive, base.down_receive + 100);
  EXPECT_EQ(shifted.up_send, base.up_send + 100);
}

TEST(ScheduleTest, ParentChildRoundsMesh) {
  // Parent's Down-Send == child's Down-Receive; child's Up-Send ==
  // parent's Up-Receive — for every level.
  const std::size_t n = 20;
  for (std::uint64_t lvl = 1; lvl < n; ++lvl) {
    auto child = TransmissionSchedule(7, lvl, n);
    auto parent = TransmissionSchedule(7, lvl - 1, n);
    EXPECT_EQ(parent.down_send, child.down_receive);
    EXPECT_EQ(child.up_send, parent.up_receive);
  }
}

TEST(ScheduleTest, AllRoundsWithinBlock) {
  const std::size_t n = 9;
  const Round start = 50;
  for (std::uint64_t lvl = 0; lvl < n; ++lvl) {
    auto r = TransmissionSchedule(start, lvl, n);
    for (Round x : {r.down_send, r.side, r.up_receive}) {
      EXPECT_GE(x, start);
      EXPECT_LT(x, start + ScheduleBlockLength(n));
    }
  }
}

TEST(ScheduleTest, BlockCursorAdvances) {
  BlockCursor c(1, 5);
  EXPECT_EQ(c.TakeBlock(), 1u);
  EXPECT_EQ(c.TakeBlock(), 12u);  // 2*5+1 later
  c.SkipBlocks(3);
  EXPECT_EQ(c.TakeBlock(), 56u);
  EXPECT_EQ(c.NextRound(), 67u);
}

// ------------------------------------------------ Procedure fixtures ---

// A 6-node graph: path 0-1-2-3 plus 4 and 5 hanging off node 1 and 3.
// One fragment rooted at 0.
struct SingleTreeFixture {
  WeightedGraph g;
  std::vector<LdtState> states;

  SingleTreeFixture() : g(Build()) {
    states = BuildForest(g, {0, 1, 2, 3, 4}, {0});
  }

  static WeightedGraph Build() {
    GraphBuilder b(6);
    b.AddEdge(0, 1, 1).AddEdge(1, 2, 2).AddEdge(2, 3, 3).AddEdge(1, 4, 4)
        .AddEdge(3, 5, 5);
    return std::move(b).Build();
  }
};

Task<void> BroadcastProgram(NodeContext& ctx, std::vector<LdtState>* states,
                            std::vector<std::uint64_t>* got) {
  const LdtState& ldt = (*states)[ctx.Index()];
  Message root_msg{100, 4242, 0, 0};
  Message m = co_await FragmentBroadcast(ctx, ldt, 1, root_msg);
  (*got)[ctx.Index()] = m.a;
}

TEST(FragmentBroadcastTest, ReachesEveryNodeInO1Awake) {
  SingleTreeFixture fx;
  ASSERT_EQ(CheckForestInvariant(fx.g, fx.states), "");
  std::vector<std::uint64_t> got(6, 0);
  Simulator sim(fx.g);
  sim.Run([&](NodeContext& ctx) {
    return BroadcastProgram(ctx, &fx.states, &got);
  });
  for (auto v : got) EXPECT_EQ(v, 4242u);
  auto stats = sim.Stats();
  EXPECT_LE(stats.max_awake, 2u);                       // O(1) awake
  EXPECT_LE(stats.rounds, ScheduleBlockLength(6));      // O(n) run time
}

Task<void> UpcastProgram(NodeContext& ctx, std::vector<LdtState>* states,
                         std::vector<UpcastItem>* own,
                         std::vector<UpcastItem>* result) {
  const LdtState& ldt = (*states)[ctx.Index()];
  (*result)[ctx.Index()] =
      co_await UpcastMin(ctx, ldt, 1, (*own)[ctx.Index()]);
}

TEST(UpcastMinTest, MinReachesRootWithPayload) {
  SingleTreeFixture fx;
  std::vector<UpcastItem> own(6);
  own[0] = {50, 1, 1};
  own[2] = {30, 2, 2};
  own[5] = {10, 3, 3};  // global min at a leaf, deep in the tree
  own[4] = {40, 4, 4};
  std::vector<UpcastItem> result(6);
  Simulator sim(fx.g);
  sim.Run([&](NodeContext& ctx) {
    return UpcastProgram(ctx, &fx.states, &own, &result);
  });
  EXPECT_EQ(result[0].key, 10u);
  EXPECT_EQ(result[0].b, 3u);
  EXPECT_EQ(result[0].c, 3u);
  // Intermediate node 3 sees the min of its subtree {3, 5}.
  EXPECT_EQ(result[3].key, 10u);
  // Node 4's subtree is itself.
  EXPECT_EQ(result[4].key, 40u);
  EXPECT_LE(sim.Stats().max_awake, 2u);
}

TEST(UpcastMinTest, AllAbsentYieldsAbsentAtRoot) {
  SingleTreeFixture fx;
  std::vector<UpcastItem> own(6);  // all absent
  std::vector<UpcastItem> result(6);
  Simulator sim(fx.g);
  sim.Run([&](NodeContext& ctx) {
    return UpcastProgram(ctx, &fx.states, &own, &result);
  });
  EXPECT_TRUE(result[0].Absent());
  // Nothing needed to be sent at all.
  EXPECT_EQ(sim.Stats().total_messages, 0u);
}

Task<void> UpcastSumProgram(NodeContext& ctx, std::vector<LdtState>* states,
                            std::vector<std::uint64_t>* own,
                            std::vector<UpcastSumResult>* result) {
  const LdtState& ldt = (*states)[ctx.Index()];
  (*result)[ctx.Index()] =
      co_await UpcastSum(ctx, ldt, 1, (*own)[ctx.Index()]);
}

TEST(UpcastSumTest, TotalsAndPerChildBreakdown) {
  SingleTreeFixture fx;
  std::vector<std::uint64_t> own{1, 0, 2, 0, 5, 3};
  std::vector<UpcastSumResult> result(6);
  Simulator sim(fx.g);
  sim.Run([&](NodeContext& ctx) {
    return UpcastSumProgram(ctx, &fx.states, &own, &result);
  });
  EXPECT_EQ(result[0].subtree_total, 11u);  // all
  EXPECT_EQ(result[1].subtree_total, 10u);  // {1,2,3,4,5}
  // Node 1's children: node 2 (subtree {2,3,5} = 5) and node 4 (5).
  std::map<std::uint32_t, std::uint64_t> by_port(
      result[1].child_totals.begin(), result[1].child_totals.end());
  EXPECT_EQ(by_port[PortTo(fx.g, 1, 2)], 5u);
  EXPECT_EQ(by_port[PortTo(fx.g, 1, 4)], 5u);
  EXPECT_LE(sim.Stats().max_awake, 2u);
}

// Two fragments on a path 0-1 | 2-3 (edge 1-2 crosses).
struct TwoFragmentFixture {
  WeightedGraph g;
  std::vector<LdtState> states;

  TwoFragmentFixture() : g(Build()) {
    states = BuildForest(g, {0, 2}, {0, 2});  // edges (0,1) and (2,3)
  }

  static WeightedGraph Build() {
    GraphBuilder b(4);
    b.AddEdge(0, 1, 1).AddEdge(1, 2, 2).AddEdge(2, 3, 3);
    return std::move(b).Build();
  }
};

Task<void> SideProgram(NodeContext& ctx, std::vector<LdtState>* states,
                       std::vector<InboxBatch>* got) {
  const LdtState& ldt = (*states)[ctx.Index()];
  // Everyone announces its fragment ID on every port.
  auto sends = ToAllPorts(ctx, Message{7, ldt.fragment_id, 0, 0});
  (*got)[ctx.Index()] =
      co_await TransmitAdjacent(ctx, ldt, 1, std::move(sends));
}

TEST(TransmitAdjacentTest, CrossFragmentExchangeInOneAwakeRound) {
  TwoFragmentFixture fx;
  ASSERT_EQ(CheckForestInvariant(fx.g, fx.states), "");
  std::vector<InboxBatch> got(4);
  Simulator sim(fx.g);
  sim.Run([&](NodeContext& ctx) {
    return SideProgram(ctx, &fx.states, &got);
  });
  // Node 1 (fragment 1) hears fragment 3's ID from node 2 and vice versa.
  bool node1_heard_frag3 = false;
  for (const auto& m : got[1]) node1_heard_frag3 |= m.msg.a == 3;
  EXPECT_TRUE(node1_heard_frag3);
  bool node2_heard_frag1 = false;
  for (const auto& m : got[2]) node2_heard_frag1 |= m.msg.a == 1;
  EXPECT_TRUE(node2_heard_frag1);
  EXPECT_EQ(sim.Stats().max_awake, 1u);
}

// ------------------------------------------------- Merging-Fragments ---

struct MergeHarness {
  WeightedGraph g;
  std::vector<LdtState> states;
  std::vector<MergeRole> roles;
  std::vector<std::vector<bool>> mst_marks;

  MergeHarness(WeightedGraph graph, std::vector<LdtState> s)
      : g(std::move(graph)), states(std::move(s)), roles(g.NumNodes()) {
    for (NodeIndex v = 0; v < g.NumNodes(); ++v) {
      mst_marks.emplace_back(g.DegreeOf(v), false);
    }
  }

  void Run() {
    Simulator sim(g);
    sim.Run([this](NodeContext& ctx) { return Program(ctx); });
    stats = sim.Stats();
  }

  Task<void> Program(NodeContext& ctx) {
    BlockCursor cursor(1, ctx.NumNodesKnown());
    co_await MergingFragments(ctx, states[ctx.Index()], cursor,
                              roles[ctx.Index()], mst_marks[ctx.Index()]);
  }

  RunStats stats;
};

TEST(MergingFragmentsTest, SimpleAttachPreservesInvariant) {
  // Fragments {0,1} rooted at 0 and {2,3} rooted at 2; tails fragment
  // {2,3} attaches via edge (1,2): u_T = node 2 (its root).
  TwoFragmentFixture fx;
  MergeHarness h(fx.g, fx.states);
  for (NodeIndex v : {2u, 3u}) h.roles[v].is_tails = true;
  h.roles[2].attach_port = PortTo(fx.g, 2, 1);
  h.Run();

  EXPECT_EQ(CheckForestInvariant(h.g, h.states), "");
  for (NodeIndex v = 0; v < 4; ++v) EXPECT_EQ(h.states[v].fragment_id, 1u);
  EXPECT_EQ(h.states[2].level, 2u);
  EXPECT_EQ(h.states[3].level, 3u);
  EXPECT_TRUE(h.states[0].IsRoot());
  // Both endpoints marked the merge edge (1,2).
  EXPECT_TRUE(h.mst_marks[1][PortTo(fx.g, 1, 2)]);
  EXPECT_TRUE(h.mst_marks[2][PortTo(fx.g, 2, 1)]);
  EXPECT_LE(h.stats.max_awake, 5u);
  EXPECT_LE(h.stats.rounds, kMergeBlocks * ScheduleBlockLength(4));
}

TEST(MergingFragmentsTest, FullPathReversal) {
  // Tails fragment is a chain 2-3-4-5 rooted at 5; u_T = node 2 (the far
  // end), so the whole chain must re-orient (the Appendix C scenario).
  GraphBuilder b(6);
  b.AddEdge(0, 1, 1).AddEdge(1, 2, 2).AddEdge(2, 3, 3).AddEdge(3, 4, 4)
      .AddEdge(4, 5, 5);
  auto g = std::move(b).Build();
  auto states = BuildForest(g, {0, 2, 3, 4}, {0, 5});
  ASSERT_EQ(states[2].level, 3u);  // chain depth under root 5

  MergeHarness h(std::move(g), std::move(states));
  for (NodeIndex v : {2u, 3u, 4u, 5u}) h.roles[v].is_tails = true;
  h.roles[2].attach_port = PortTo(h.g, 2, 1);
  h.Run();

  EXPECT_EQ(CheckForestInvariant(h.g, h.states), "");
  for (NodeIndex v = 0; v < 6; ++v) {
    EXPECT_EQ(h.states[v].fragment_id, 1u);
    EXPECT_EQ(h.states[v].level, v);  // path graph: level == index
  }
  EXPECT_LE(h.stats.max_awake, 5u);
}

TEST(MergingFragmentsTest, StarMergeManyTailsIntoOneHeads) {
  // Heads fragment {0}; three tails singleton fragments {1}, {2}, {3},
  // all attaching to node 0 simultaneously.
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1).AddEdge(0, 2, 2).AddEdge(0, 3, 3);
  auto g = std::move(b).Build();
  auto states = BuildForest(g, {}, {0, 1, 2, 3});

  MergeHarness h(std::move(g), std::move(states));
  for (NodeIndex v : {1u, 2u, 3u}) {
    h.roles[v].is_tails = true;
    h.roles[v].attach_port = 0;  // their only port leads to node 0
  }
  h.Run();

  EXPECT_EQ(CheckForestInvariant(h.g, h.states), "");
  EXPECT_EQ(h.states[0].child_ports.size(), 3u);
  for (NodeIndex v : {1u, 2u, 3u}) {
    EXPECT_EQ(h.states[v].fragment_id, 1u);
    EXPECT_EQ(h.states[v].level, 1u);
  }
}

TEST(MergingFragmentsTest, TailsWithBranchesReorientsOffPathSubtrees) {
  // Tails fragment: star around node 3 (children 2, 4, 5) rooted at 4;
  // u_T = node 2 attaches to heads {0,1}. Off-path nodes 4, 5 must adopt
  // levels through the down pass.
  GraphBuilder b(6);
  b.AddEdge(0, 1, 1).AddEdge(1, 2, 2).AddEdge(2, 3, 3).AddEdge(3, 4, 4)
      .AddEdge(3, 5, 5);
  auto g = std::move(b).Build();
  auto states = BuildForest(g, {0, 2, 3, 4}, {0, 4});
  MergeHarness h(std::move(g), std::move(states));
  for (NodeIndex v : {2u, 3u, 4u, 5u}) h.roles[v].is_tails = true;
  h.roles[2].attach_port = PortTo(h.g, 2, 1);
  h.Run();

  EXPECT_EQ(CheckForestInvariant(h.g, h.states), "");
  EXPECT_EQ(h.states[2].level, 2u);
  EXPECT_EQ(h.states[3].level, 3u);
  EXPECT_EQ(h.states[4].level, 4u);
  EXPECT_EQ(h.states[5].level, 4u);
}

TEST(MergingFragmentsTest, HeadsOnlyRunCostsOneAwakeRound) {
  // No fragment merges: everyone participates in sub-block A only.
  TwoFragmentFixture fx;
  MergeHarness h(fx.g, fx.states);
  h.Run();
  EXPECT_EQ(CheckForestInvariant(h.g, h.states), "");
  EXPECT_EQ(h.states[2].fragment_id, 3u);  // unchanged
  EXPECT_EQ(h.stats.max_awake, 1u);
}

// ---------------------------------------------- Fast-Awake-Coloring ----

// Harness: fragments are singleton nodes; the H-edges are given edges of
// the graph (simulating valid MOEs between singleton fragments).
struct ColoringHarness {
  WeightedGraph g;
  std::vector<LdtState> states;
  std::vector<std::vector<NbrEntry>> nbr;
  std::vector<std::vector<HPort>> h_ports;
  std::vector<ColoringResult> results;

  explicit ColoringHarness(WeightedGraph graph, const std::vector<EdgeIndex>& h_edges)
      : g(std::move(graph)), nbr(g.NumNodes()), h_ports(g.NumNodes()),
        results(g.NumNodes()) {
    std::vector<NodeIndex> roots;
    for (NodeIndex v = 0; v < g.NumNodes(); ++v) roots.push_back(v);
    states = BuildForest(g, {}, roots);
    for (EdgeIndex e : h_edges) {
      const Edge& edge = g.GetEdge(e);
      nbr[edge.u].push_back({g.IdOf(edge.v), edge.weight, true});
      nbr[edge.v].push_back({g.IdOf(edge.u), edge.weight, false});
      h_ports[edge.u].push_back({PortTo(g, edge.u, edge.v), g.IdOf(edge.v)});
      h_ports[edge.v].push_back({PortTo(g, edge.v, edge.u), g.IdOf(edge.u)});
    }
  }

  Task<void> Program(NodeContext& ctx) {
    BlockCursor cursor(1, ctx.NumNodesKnown());
    const NodeIndex v = ctx.Index();
    results[v] = co_await FastAwakeColoring(ctx, states[v], cursor, nbr[v],
                                            h_ports[v]);
  }

  void Run() {
    Simulator sim(g);
    sim.Run([this](NodeContext& ctx) { return Program(ctx); });
    stats = sim.Stats();
  }

  RunStats stats;
};

TEST(FastAwakeColoringTest, PathIsProperlyColoredWithBluePresent) {
  Xoshiro256 rng(1);
  GeneratorOptions opt;
  opt.shuffle_ids = false;
  auto g = MakePath(8, rng, opt);
  std::vector<EdgeIndex> h_edges;
  for (EdgeIndex e = 0; e < g.NumEdges(); ++e) h_edges.push_back(e);
  ColoringHarness h(std::move(g), h_edges);
  h.Run();

  int blue = 0;
  for (NodeIndex v = 0; v < h.g.NumNodes(); ++v) {
    EXPECT_NE(h.results[v].my_color, FragColor::kNone);
    blue += h.results[v].my_color == FragColor::kBlue ? 1 : 0;
    // Proper: no H-neighbor has my color.
    for (const HPort& hp : h.h_ports[v]) {
      NodeIndex u = h.g.PortsOf(v)[hp.port].neighbor;
      EXPECT_NE(h.results[v].my_color, h.results[u].my_color);
    }
    // neighbor_colors agrees with the neighbors' actual colors.
    for (const auto& [id, color] : h.results[v].neighbor_colors) {
      EXPECT_EQ(color, h.results[h.g.IndexOfId(id)].my_color);
    }
  }
  EXPECT_GE(blue, 1);
  // Smallest-ID fragment always picks Blue.
  EXPECT_EQ(h.results[h.g.IndexOfId(1)].my_color, FragColor::kBlue);
}

TEST(FastAwakeColoringTest, Degree4StarUsesDistinctColors) {
  Xoshiro256 rng(2);
  GeneratorOptions opt;
  opt.shuffle_ids = false;
  auto g = MakeStar(5, rng, opt);  // center degree 4
  std::vector<EdgeIndex> h_edges{0, 1, 2, 3};
  ColoringHarness h(std::move(g), h_edges);
  h.Run();
  for (NodeIndex leaf = 1; leaf < 5; ++leaf) {
    EXPECT_NE(h.results[0].my_color, h.results[leaf].my_color);
  }
}

TEST(FastAwakeColoringTest, IsolatedFragmentPicksBlueAndSleepsCheaply) {
  Xoshiro256 rng(3);
  GeneratorOptions opt;
  opt.shuffle_ids = false;
  auto g = MakePath(4, rng, opt);
  ColoringHarness h(std::move(g), {});  // no H-edges at all
  h.Run();
  for (NodeIndex v = 0; v < 4; ++v) {
    EXPECT_EQ(h.results[v].my_color, FragColor::kBlue);
  }
  // Each node only ran its own trivial stage.
  EXPECT_LE(h.stats.max_awake, 3u);
}

TEST(FastAwakeColoringTest, AwakeTimeIsConstantPerNode) {
  Xoshiro256 rng(4);
  GeneratorOptions opt;
  opt.shuffle_ids = false;
  auto g = MakeRing(12, rng, opt);
  std::vector<EdgeIndex> h_edges;
  for (EdgeIndex e = 0; e < g.NumEdges(); ++e) h_edges.push_back(e);
  ColoringHarness h(std::move(g), h_edges);
  h.Run();
  // <= 5 stages x <= 9 wakes, independent of n and N.
  EXPECT_LE(h.stats.max_awake, 45u);
  // Run time spans the full N * 5 blocks (structurally O(nN)).
  EXPECT_LE(h.stats.rounds,
            12u * kColoringBlocksPerStage * ScheduleBlockLength(12));
}

TEST(FastAwakeColoringTest, SparseIdsStillWork) {
  // IDs in [1, 40] on 6 fragments: stages of absent IDs are empty.
  GraphBuilder b(6);
  b.AddEdge(0, 1, 1).AddEdge(1, 2, 2).AddEdge(2, 3, 3).AddEdge(3, 4, 4)
      .AddEdge(4, 5, 5);
  b.SetIds({40, 3, 17, 8, 25, 11}, 40);
  auto g = std::move(b).Build();
  std::vector<EdgeIndex> h_edges{0, 1, 2, 3, 4};
  ColoringHarness h(std::move(g), h_edges);
  h.Run();
  for (NodeIndex v = 0; v + 1 < 6; ++v) {
    EXPECT_NE(h.results[v].my_color, h.results[v + 1].my_color);
  }
  // Fragment with the smallest ID (node 1, ID 3) goes first: Blue.
  EXPECT_EQ(h.results[1].my_color, FragColor::kBlue);
}

// -------------------------------------------------- Forest invariant ---

TEST(ForestInvariantTest, DetectsBadLevel) {
  TwoFragmentFixture fx;
  fx.states[1].level = 7;
  EXPECT_NE(CheckForestInvariant(fx.g, fx.states), "");
}

TEST(ForestInvariantTest, DetectsWrongFragmentId) {
  TwoFragmentFixture fx;
  fx.states[3].fragment_id = 999;
  EXPECT_NE(CheckForestInvariant(fx.g, fx.states), "");
}

TEST(ForestInvariantTest, DetectsAsymmetricPointers) {
  TwoFragmentFixture fx;
  fx.states[0].child_ports.clear();  // parent no longer lists child
  EXPECT_NE(CheckForestInvariant(fx.g, fx.states), "");
}

TEST(ForestInvariantTest, DetectsNonRootFragmentId) {
  TwoFragmentFixture fx;
  // Make node 1 a root of its own while node 0 still claims it.
  fx.states[1].parent_port = kNoPort;
  fx.states[1].level = 0;
  EXPECT_NE(CheckForestInvariant(fx.g, fx.states), "");
}

}  // namespace
}  // namespace smst
