// Runtime invariant auditor: each check must fire on a seeded violation
// with round + node attribution, and a clean run under AuditMode::kOn
// must come back with zero violations and meters that agree with the
// scheduler's.
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "smst/faults/auditor.h"
#include "smst/graph/generators.h"
#include "smst/mst/api.h"

namespace smst {
namespace {

WeightedGraph TestPath(std::size_t n) {
  Xoshiro256 rng(5);
  GeneratorOptions opt;
  opt.shuffle_ids = false;  // IDs 1..n in index order, easy to reason about
  return MakePath(n, rng, opt);
}

std::uint32_t PortTo(const WeightedGraph& g, NodeIndex v, NodeIndex u) {
  const auto ports = g.PortsOf(v);
  for (std::uint32_t i = 0; i < ports.size(); ++i) {
    if (ports[i].neighbor == u) return i;
  }
  ADD_FAILURE() << "no port from " << v << " to " << u;
  return kNoPort;
}

// A correct FLDT over the path: node 0 is the root, each node i > 0 hangs
// off i - 1.
std::vector<LdtState> PathChainForest(const WeightedGraph& g) {
  const std::size_t n = g.NumNodes();
  std::vector<LdtState> states(n);
  for (NodeIndex v = 0; v < n; ++v) {
    states[v].fragment_id = g.IdOf(0);
    states[v].level = v;
    if (v > 0) states[v].parent_port = PortTo(g, v, v - 1);
    if (v + 1 < n) states[v].child_ports.push_back(PortTo(g, v, v + 1));
  }
  return states;
}

// ---- seeded violations -------------------------------------------------

TEST(AuditorTest, FlagsOversizedMessageWithAttribution) {
  const auto g = TestPath(4);
  Auditor::Config config;
  config.max_message_bits = 16;
  Auditor audit(g, config);
  EXPECT_EQ(audit.BitBudget(), 16u);

  Message ok;
  ok.a = 0xF;  // 8 tag bits + 4 + 1 + 1 = 14 bits: inside the budget
  Message oversized;
  oversized.a = ~std::uint64_t{0} >> 1;  // 63 bits in one field

  audit.OnAwake(7, 2);
  audit.OnSend(7, 2, 0, ok);
  EXPECT_TRUE(audit.Clean());
  audit.OnSend(7, 2, 1, oversized);
  ASSERT_EQ(audit.ViolationCount(), 1u);
  const AuditViolation& v = audit.Violations()[0];
  EXPECT_EQ(v.check, "congest-bits");
  EXPECT_EQ(v.round, Round{7});
  EXPECT_EQ(v.node, NodeIndex{2});
  EXPECT_NE(audit.Report().find("congest-bits"), std::string::npos);
}

TEST(AuditorTest, DerivedBudgetAdmitsEveryLegitimateField) {
  const auto g = TestPath(8);
  Auditor audit(g);
  // Largest legitimate single-field values: the graph's own IDs/weights
  // and the ±infinity sentinel (accounted as one symbol, not 64 bits).
  Message m;
  m.a = g.MaxId();
  m.b = kPlusInfinity;
  m.c = g.NumNodes();
  audit.OnAwake(1, 0);
  audit.OnSend(1, 0, 0, m);
  EXPECT_TRUE(audit.Clean()) << audit.Report();
  // The packed-lane idiom (coloring.cpp Pack4): four log-sized values in
  // 16-bit lanes. Positionally wide, informationally O(log n) — legal.
  Message packed;
  // The unguarded pack is the point of the test: the Auditor, not an
  // assert, is the runtime check. smst-lint-disable-next-line(congest-lane-pack)
  packed.a = g.MaxId() | (g.MaxId() << 16) | (g.MaxId() << 32) |
             (g.MaxId() << 48);
  audit.OnSend(1, 0, 1, packed);
  EXPECT_TRUE(audit.Clean()) << audit.Report();
}

TEST(AuditorTest, FlagsSendWhileAsleep) {
  const auto g = TestPath(4);
  Auditor audit(g);
  audit.OnAwake(3, 1);
  audit.OnSend(4, 1, 0, Message{});  // awake in round 3, sending in 4
  ASSERT_EQ(audit.ViolationCount(), 1u);
  EXPECT_EQ(audit.Violations()[0].check, "asleep-send");
  EXPECT_EQ(audit.Violations()[0].round, Round{4});
  EXPECT_EQ(audit.Violations()[0].node, NodeIndex{1});
}

TEST(AuditorTest, FlagsDeliveryToSleepingNode) {
  const auto g = TestPath(4);
  Auditor audit(g);
  audit.OnAwake(5, 0);
  audit.OnDeliver(5, 0, 3, Message{});  // node 3 never woke
  ASSERT_EQ(audit.ViolationCount(), 1u);
  EXPECT_EQ(audit.Violations()[0].check, "asleep-receive");
  EXPECT_EQ(audit.Violations()[0].round, Round{5});
  EXPECT_EQ(audit.Violations()[0].node, NodeIndex{3});
}

TEST(AuditorTest, FlagsAwakeMeterMismatch) {
  const auto g = TestPath(4);
  Auditor audit(g);
  audit.OnAwake(1, 0);
  audit.OnAwake(1, 1);
  Metrics metrics(4);
  metrics.Node(0).awake_rounds = 1;  // scheduler "metered" only one
  metrics.SetLastRound(1);
  audit.CheckAwakeMeter(metrics);
  ASSERT_EQ(audit.ViolationCount(), 1u);
  EXPECT_EQ(audit.Violations()[0].check, "awake-meter");
  EXPECT_NE(audit.Violations()[0].detail.find("2"), std::string::npos);
}

TEST(AuditorTest, AcceptsCorrectForestSnapshot) {
  const auto g = TestPath(5);
  Auditor audit(g);
  audit.CheckForest(9, PathChainForest(g));
  EXPECT_TRUE(audit.Clean()) << audit.Report();
}

TEST(AuditorTest, FlagsForestCycleWithAttribution) {
  const auto g = TestPath(5);
  auto states = PathChainForest(g);
  // Corrupt the chain into a 2-cycle: 2 and 3 claim each other as parent.
  states[2].parent_port = PortTo(g, 2, 3);
  states[3].parent_port = PortTo(g, 3, 2);
  Auditor audit(g);
  audit.CheckForest(9, states);
  EXPECT_FALSE(audit.Clean());
  bool cycle_found = false;
  for (const AuditViolation& v : audit.Violations()) {
    EXPECT_EQ(v.check, "forest");
    EXPECT_EQ(v.round, Round{9});  // the snapshot's phase label
    if (v.detail.find("cycle") != std::string::npos) {
      cycle_found = true;
      // 2 and 3 are the cycle; node 4's parent chain walks into it and
      // legitimately overruns too. Nodes 0 and 1 still reach the root.
      EXPECT_TRUE(v.node >= 2 && v.node <= 4) << "node " << v.node;
    }
  }
  EXPECT_TRUE(cycle_found) << audit.Report();
}

TEST(AuditorTest, FlagsLevelAndSymmetryBreaks) {
  const auto g = TestPath(4);
  auto states = PathChainForest(g);
  states[2].level = 7;  // parent has level 1
  Auditor audit(g);
  audit.CheckForest(1, states);
  ASSERT_GE(audit.ViolationCount(), 1u);
  EXPECT_EQ(audit.Violations()[0].node, NodeIndex{2});

  auto states2 = PathChainForest(g);
  states2[1].child_ports.clear();  // parent no longer lists node 2
  Auditor audit2(g);
  audit2.CheckForest(1, states2);
  EXPECT_FALSE(audit2.Clean());
  EXPECT_NE(audit2.Report().find("child"), std::string::npos);
}

TEST(AuditorTest, FailFastThrowsAtTheViolation) {
  const auto g = TestPath(4);
  Auditor::Config config;
  config.fail_fast = true;
  Auditor audit(g, config);
  try {
    audit.OnSend(6, 2, 0, Message{});  // asleep send
    FAIL() << "expected fail-fast to throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("asleep-send"), std::string::npos) << what;
    EXPECT_NE(what.find("round 6"), std::string::npos) << what;
    EXPECT_NE(what.find("node 2"), std::string::npos) << what;
  }
}

TEST(AuditorTest, RecordsUpToCapAndCountsTheRest) {
  const auto g = TestPath(4);
  Auditor::Config config;
  config.max_recorded = 2;
  Auditor audit(g, config);
  for (Round r = 1; r <= 5; ++r) audit.OnSend(r, 0, 0, Message{});
  EXPECT_EQ(audit.ViolationCount(), 5u);
  EXPECT_EQ(audit.Violations().size(), 2u);
  EXPECT_NE(audit.Report().find("5 audit violation(s)"), std::string::npos);
}

// ---- clean-run integration ---------------------------------------------

#ifndef SMST_NO_AUDITOR
TEST(AuditorTest, CleanRunsAuditCleanUnderBothAlgorithms) {
  Xoshiro256 rng(21);
  const auto g = MakeErdosRenyi(40, 0.2, rng);
  for (MstAlgorithm algo :
       {MstAlgorithm::kRandomized, MstAlgorithm::kDeterministic}) {
    MstOptions opt;
    opt.audit = AuditMode::kOn;
    const auto r = ComputeMst(g, algo, opt);
    SCOPED_TRACE(MstAlgorithmName(algo));
    EXPECT_TRUE(r.outcome.Ok());
    EXPECT_EQ(r.outcome.audit_violations, 0u);
    // The auditor's independent meters agree with the scheduler's.
    EXPECT_EQ(r.outcome.audited_awake_node_rounds,
              r.stats.awake_node_rounds);
    EXPECT_EQ(r.outcome.audited_model_drops, r.stats.dropped_messages);
  }
}

TEST(AuditorTest, AuditModeOffDisablesTheSummary) {
  Xoshiro256 rng(22);
  const auto g = MakeErdosRenyi(32, 0.2, rng);
  MstOptions opt;
  opt.audit = AuditMode::kOff;
  const auto r = ComputeMst(g, MstAlgorithm::kRandomized, opt);
  EXPECT_TRUE(r.outcome.Ok());
  EXPECT_EQ(r.outcome.audited_awake_node_rounds, 0u);
}
#endif  // SMST_NO_AUDITOR

}  // namespace
}  // namespace smst
