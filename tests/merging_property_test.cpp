// Randomized property tests for Merging-Fragments: random graphs, random
// spanning forests, random (valid) merge configurations — after one merge
// wave the forest invariant must hold, tails fragments must be absorbed
// into their targets, and the awake cost must stay O(1).
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "smst/graph/generators.h"
#include "smst/graph/union_find.h"
#include "smst/runtime/simulator.h"
#include "smst/sleeping/forest_builder.h"
#include "smst/sleeping/merging.h"

namespace smst {
namespace {

struct RandomMergeScenario {
  WeightedGraph g;
  std::vector<LdtState> states;
  std::vector<MergeRole> roles;
  std::map<NodeId, NodeId> expected_frag;  // old fragment -> fragment after
  std::size_t tails_count = 0;

  // Builds a random forest over a random graph and picks a random
  // independent set of fragments as tails, each with a valid attach edge
  // into a non-tails fragment.
  RandomMergeScenario(std::size_t n, std::uint64_t seed)
      : g(MakeGraph(n, seed)) {
    Xoshiro256 rng(seed * 7 + 1);

    // Random spanning forest: sample edges in random order, keep a
    // random fraction of the acyclic ones.
    std::vector<EdgeIndex> order(g.NumEdges());
    for (EdgeIndex e = 0; e < g.NumEdges(); ++e) order[e] = e;
    Shuffle(order, rng);
    UnionFind uf(n);
    std::vector<EdgeIndex> forest;
    for (EdgeIndex e : order) {
      if (rng.NextDouble() < 0.6 &&
          !uf.Connected(g.GetEdge(e).u, g.GetEdge(e).v)) {
        uf.Union(g.GetEdge(e).u, g.GetEdge(e).v);
        forest.push_back(e);
      }
    }
    // One random root per component.
    std::map<std::size_t, std::vector<NodeIndex>> comps;
    for (NodeIndex v = 0; v < n; ++v) comps[uf.Find(v)].push_back(v);
    std::vector<NodeIndex> roots;
    std::vector<NodeId> frag_of(n);
    for (auto& [rep, members] : comps) {
      NodeIndex root = members[rng.NextBelow(members.size())];
      roots.push_back(root);
      for (NodeIndex v : members) frag_of[v] = g.IdOf(root);
    }
    states = BuildForest(g, forest, roots);

    // Tails selection: walk fragments in random order; a fragment may
    // become tails if it has an outgoing edge to a fragment that is not
    // (yet) tails; mark the target as permanently non-tails.
    roles.resize(n);
    std::set<NodeId> is_tails, is_target;
    Shuffle(roots, rng);
    for (NodeIndex root : roots) {
      const NodeId frag = g.IdOf(root);
      expected_frag.emplace(frag, frag);
      if (is_target.count(frag)) continue;
      // Collect candidate outgoing edges to eligible targets.
      std::vector<std::pair<NodeIndex, std::uint32_t>> candidates;
      for (NodeIndex v = 0; v < n; ++v) {
        if (frag_of[v] != frag) continue;
        std::uint32_t port = 0;
        for (const Port& p : g.PortsOf(v)) {
          const NodeId other = frag_of[p.neighbor];
          if (other != frag && !is_tails.count(other)) {
            candidates.emplace_back(v, port);
          }
          ++port;
        }
      }
      if (candidates.empty() || rng.NextDouble() < 0.3) continue;
      auto [node, port] = candidates[rng.NextBelow(candidates.size())];
      const NodeId target = frag_of[g.PortsOf(node)[port].neighbor];
      is_tails.insert(frag);
      is_target.insert(target);
      for (NodeIndex v = 0; v < n; ++v) {
        if (frag_of[v] == frag) roles[v].is_tails = true;
      }
      roles[node].attach_port = port;
      expected_frag[frag] = target;
      ++tails_count;
    }
    // Resolve chains: tails -> target which may itself be... targets are
    // never tails by construction, so one hop suffices.
  }

  static WeightedGraph MakeGraph(std::size_t n, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    return MakeErdosRenyi(n, 5.0 / static_cast<double>(n), rng);
  }
};

class MergingPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MergingPropertyTest, RandomScenarioPreservesAllInvariants) {
  const std::uint64_t seed = GetParam();
  RandomMergeScenario sc(40, seed);
  ASSERT_EQ(CheckForestInvariant(sc.g, sc.states), "");

  std::vector<LdtState> before = sc.states;
  std::vector<std::vector<bool>> marks;
  for (NodeIndex v = 0; v < sc.g.NumNodes(); ++v) {
    marks.emplace_back(sc.g.DegreeOf(v), false);
  }
  Simulator sim(sc.g);
  sim.Run([&](NodeContext& ctx) -> Task<void> {
    BlockCursor cursor(1, ctx.NumNodesKnown());
    co_await MergingFragments(ctx, sc.states[ctx.Index()], cursor,
                              sc.roles[ctx.Index()], marks[ctx.Index()]);
  });

  // Forest invariant after the wave.
  EXPECT_EQ(CheckForestInvariant(sc.g, sc.states), "");

  // Every node landed in the fragment the scenario predicts.
  for (NodeIndex v = 0; v < sc.g.NumNodes(); ++v) {
    EXPECT_EQ(sc.states[v].fragment_id,
              sc.expected_frag.at(before[v].fragment_id))
        << "node " << v << " seed " << seed;
  }

  // Exactly one merge edge per tails fragment, marked by both endpoints.
  std::size_t marked_pairs = 0;
  for (EdgeIndex e = 0; e < sc.g.NumEdges(); ++e) {
    const Edge& edge = sc.g.GetEdge(e);
    std::uint32_t pu = PortTo(sc.g, edge.u, edge.v);
    std::uint32_t pv = PortTo(sc.g, edge.v, edge.u);
    EXPECT_EQ(marks[edge.u][pu], marks[edge.v][pv]) << "edge " << e;
    marked_pairs += marks[edge.u][pu] ? 1 : 0;
  }
  EXPECT_EQ(marked_pairs, sc.tails_count);

  // O(1) awake and no lost messages.
  EXPECT_LE(sim.Stats().max_awake, 5u);
  EXPECT_EQ(sim.Stats().dropped_messages, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergingPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace smst
