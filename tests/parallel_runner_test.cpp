// ParallelRunner: thread count must be invisible in the results.
//
// The batch runner's contract is bit-identical output to a serial loop —
// every (algorithm, graph, seed) cell derives its randomness only from
// its own seed, so a 4-thread sweep must reproduce the 1-thread sweep
// field for field (stats, tree, probes). These tests are also the TSan
// target in CI: they exercise the pool with more threads than cores and
// with failing jobs in flight.
#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "smst/graph/generators.h"
#include "smst/runtime/parallel_runner.h"

namespace smst {
namespace {

void ExpectSameStats(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.max_awake, b.max_awake);
  EXPECT_EQ(a.avg_awake, b.avg_awake);  // exact: same doubles, same order
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.total_bits, b.total_bits);
  EXPECT_EQ(a.max_message_bits, b.max_message_bits);
  EXPECT_EQ(a.dropped_messages, b.dropped_messages);
  EXPECT_EQ(a.awake_node_rounds, b.awake_node_rounds);
}

void ExpectSameRun(const MstRunResult& a, const MstRunResult& b) {
  ExpectSameStats(a.stats, b.stats);
  EXPECT_EQ(a.tree_edges, b.tree_edges);
  EXPECT_EQ(a.phases, b.phases);
  // Probe-derived telemetry (fragment/Blue counts per phase).
  EXPECT_EQ(a.fragments_per_phase, b.fragments_per_phase);
  EXPECT_EQ(a.blue_per_phase, b.blue_per_phase);
  ASSERT_EQ(a.node_metrics.size(), b.node_metrics.size());
  for (std::size_t v = 0; v < a.node_metrics.size(); ++v) {
    EXPECT_EQ(a.node_metrics[v].awake_rounds, b.node_metrics[v].awake_rounds);
    EXPECT_EQ(a.node_metrics[v].bits_sent, b.node_metrics[v].bits_sent);
  }
}

TEST(ParallelRunnerTest, FourThreadSweepMatchesSerialBitForBit) {
  // Both MST algorithms × two sizes × three seeds, as one batch.
  std::vector<WeightedGraph> graphs;
  for (std::size_t n : {32u, 48u}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      Xoshiro256 rng(n * 31 + seed);
      graphs.push_back(MakeErdosRenyi(n, 8.0 / double(n), rng));
    }
  }
  std::vector<RunSpec> specs;
  for (MstAlgorithm algo :
       {MstAlgorithm::kRandomized, MstAlgorithm::kDeterministic}) {
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      specs.push_back(RunSpec{&graphs[gi], algo, {}, 1 + gi % 3});
    }
  }

  const auto serial = ParallelRunner(1).RunAll(specs);
  const auto parallel = ParallelRunner(4).RunAll(specs);
  ASSERT_EQ(serial.size(), specs.size());
  ASSERT_EQ(parallel.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE("spec " + std::to_string(i));
    ExpectSameRun(serial[i], parallel[i]);
  }
}

TEST(ParallelRunnerTest, RepeatedParallelBatchesAreStable) {
  Xoshiro256 rng(99);
  const auto g = MakeErdosRenyi(64, 0.125, rng);
  std::vector<RunSpec> specs;
  for (std::uint64_t s = 1; s <= 8; ++s) {
    specs.push_back(RunSpec{&g, MstAlgorithm::kRandomized, {}, s});
  }
  ParallelRunner runner(4);
  const auto first = runner.RunAll(specs);
  const auto second = runner.RunAll(specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE("spec " + std::to_string(i));
    ExpectSameRun(first[i], second[i]);
  }
}

TEST(ParallelRunnerTest, SeedFieldOverridesOptionsSeed) {
  Xoshiro256 rng(7);
  const auto g = MakeErdosRenyi(48, 0.2, rng);
  MstOptions options;
  options.seed = 5;
  const auto runs = ParallelRunner(2).RunAll({
      RunSpec{&g, MstAlgorithm::kRandomized, options, 0},  // keeps seed 5
      RunSpec{&g, MstAlgorithm::kRandomized, options, 5},  // explicit 5
      RunSpec{&g, MstAlgorithm::kRandomized, options, 6},
  });
  ExpectSameRun(runs[0], runs[1]);
  EXPECT_EQ(runs[0].tree_edges, runs[2].tree_edges);  // same unique MST
  // Different seed, different coin flips: some execution metric moves.
  EXPECT_NE(runs[0].stats.total_bits, runs[2].stats.total_bits);
}

TEST(ParallelRunnerTest, FirstSubmittedFailureIsRethrown) {
  Xoshiro256 rng(3);
  const auto g = MakeErdosRenyi(32, 0.25, rng);
  std::vector<RunSpec> specs(6, RunSpec{&g, MstAlgorithm::kRandomized, {}, 1});
  specs[2].graph = nullptr;  // fails; later jobs still run
  EXPECT_THROW(ParallelRunner(4).RunAll(specs), std::invalid_argument);
}

TEST(ParallelRunnerTest, ForEachCoversEveryIndexExactlyOnce) {
  ParallelRunner runner(8);  // more workers than cores on CI, on purpose
  std::vector<int> hits(100, 0);
  runner.ForEach(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1);
}

TEST(ParallelRunnerTest, ForEachRethrowsSmallestFailingIndex) {
  ParallelRunner runner(4);
  try {
    runner.ForEach(50, [&](std::size_t i) {
      if (i % 7 == 3) throw std::runtime_error("job " + std::to_string(i));
    });
    FAIL() << "expected a job failure to surface";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job 3");
  }
}

TEST(ParallelRunnerTest, ZeroThreadsMeansHardwareConcurrency) {
  EXPECT_GE(ParallelRunner(0).Threads(), 1u);
  EXPECT_EQ(ParallelRunner(3).Threads(), 3u);
}

}  // namespace
}  // namespace smst
