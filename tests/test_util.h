// Shared test helpers (thin aliases over the library's forest builder).
#pragma once

#include "smst/sleeping/forest_builder.h"

namespace smst::testing {

using smst::BuildForest;
using smst::PortTo;

}  // namespace smst::testing
