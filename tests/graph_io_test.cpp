#include <sstream>

#include <gtest/gtest.h>

#include "smst/graph/generators.h"
#include "smst/graph/io.h"
#include "smst/graph/mst_reference.h"

namespace smst {
namespace {

TEST(EdgeListTest, ParsesMinimalGraph) {
  std::istringstream in(R"(# comment
n 3
0 1 10
1 2 20   # trailing comment
)");
  auto g = ReadEdgeList(in);
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.IdOf(0), 1u);  // default IDs
  EXPECT_EQ(g.MaxId(), 3u);
}

TEST(EdgeListTest, ParsesExplicitIds) {
  std::istringstream in(R"(n 2 50
id 0 7
id 1 42
0 1 5
)");
  auto g = ReadEdgeList(in);
  EXPECT_EQ(g.IdOf(0), 7u);
  EXPECT_EQ(g.IdOf(1), 42u);
  EXPECT_EQ(g.MaxId(), 50u);
}

TEST(EdgeListTest, RoundTripsThroughWrite) {
  Xoshiro256 rng(1);
  GeneratorOptions opt;
  opt.max_id = 500;
  auto g = MakeErdosRenyi(30, 0.2, rng, opt);
  std::ostringstream out;
  WriteEdgeList(g, out);
  std::istringstream in(out.str());
  auto g2 = ReadEdgeList(in);
  ASSERT_EQ(g2.NumNodes(), g.NumNodes());
  ASSERT_EQ(g2.NumEdges(), g.NumEdges());
  EXPECT_EQ(g2.MaxId(), g.MaxId());
  for (EdgeIndex e = 0; e < g.NumEdges(); ++e) {
    EXPECT_EQ(g2.GetEdge(e).u, g.GetEdge(e).u);
    EXPECT_EQ(g2.GetEdge(e).v, g.GetEdge(e).v);
    EXPECT_EQ(g2.GetEdge(e).weight, g.GetEdge(e).weight);
  }
  for (NodeIndex v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(g2.IdOf(v), g.IdOf(v));
  }
}

TEST(EdgeListTest, ErrorsCarryLineNumbers) {
  {
    std::istringstream in("0 1 5\n");
    EXPECT_THROW(ReadEdgeList(in), std::invalid_argument);  // edge before n
  }
  {
    std::istringstream in("n 0\n");
    EXPECT_THROW(ReadEdgeList(in), std::invalid_argument);
  }
  {
    std::istringstream in("n 3\n0 1\n");
    try {
      ReadEdgeList(in);
      FAIL();
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
  }
  {
    std::istringstream in("n 2\nn 2\n");
    EXPECT_THROW(ReadEdgeList(in), std::invalid_argument);
  }
  {
    std::istringstream in("n 2 1\n0 1 5\n");  // max-id < n
    EXPECT_THROW(ReadEdgeList(in), std::invalid_argument);
  }
  {
    std::istringstream in("n 2\nid 0 9\n0 1 5\n");  // partial ids
    EXPECT_THROW(ReadEdgeList(in), std::invalid_argument);
  }
  {
    std::istringstream in("");
    EXPECT_THROW(ReadEdgeList(in), std::invalid_argument);
  }
}

TEST(EdgeListTest, BuilderValidationPropagates) {
  // Disconnected graph: the builder's connectivity check fires.
  std::istringstream in("n 4\n0 1 1\n2 3 2\n");
  EXPECT_THROW(ReadEdgeList(in), std::invalid_argument);
}

TEST(DotTest, HighlightsTreeEdges) {
  Xoshiro256 rng(2);
  auto g = MakeRing(5, rng);
  auto mst = KruskalMst(g);
  std::ostringstream out;
  WriteDot(g, mst, out);
  const std::string dot = out.str();
  EXPECT_NE(dot.find("graph smst {"), std::string::npos);
  // 4 tree edges bold, 1 non-tree edge grey.
  std::size_t bold = 0, pos = 0;
  while ((pos = dot.find("penwidth", pos)) != std::string::npos) {
    ++bold;
    ++pos;
  }
  EXPECT_EQ(bold, 4u);
  EXPECT_NE(dot.find("#bbbbbb"), std::string::npos);
  // Every node declared.
  for (NodeIndex v = 0; v < 5; ++v) {
    EXPECT_NE(dot.find("label=\"" + std::to_string(v) + " ("),
              std::string::npos);
  }
}

TEST(FileIoTest, ReadEdgeListFileErrorsOnMissing) {
  EXPECT_THROW(ReadEdgeListFile("/nonexistent/path/graph.txt"),
               std::invalid_argument);
}

}  // namespace
}  // namespace smst
