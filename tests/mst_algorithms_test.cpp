// End-to-end tests: both sleeping-model MST algorithms (and the
// spanning-tree / baseline variants) against the sequential ground truth,
// across a matrix of graph families, sizes and seeds; plus the paper's
// complexity claims as measured properties.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "smst/graph/generators.h"
#include "smst/graph/mst_reference.h"
#include "smst/graph/mst_verify.h"
#include "smst/graph/properties.h"
#include "smst/mst/api.h"
#include "smst/mst/deterministic_mst.h"
#include "smst/mst/ghs_congest.h"
#include "smst/mst/randomized_mst.h"
#include "smst/mst/spanning_tree_bm.h"
#include "smst/sleeping/ldt.h"

namespace smst {
namespace {

WeightedGraph MakeFamily(int family, std::size_t n, Xoshiro256& rng) {
  switch (family) {
    case 0: return MakeErdosRenyi(n, 4.0 / static_cast<double>(n), rng);
    case 1: return MakeRing(n, rng);
    case 2: return MakePath(n, rng);
    case 3: return MakeComplete(std::min<std::size_t>(n, 24), rng);
    case 4: return MakeRandomGeometric(n, 0.25, rng);
    case 5: return MakeRandomTree(n, rng);
    case 6: return MakeGrid(4, (n + 3) / 4, rng);
    default: return MakeStar(n, rng);
  }
}

void ExpectExactMst(const WeightedGraph& g, const MstRunResult& r) {
  EXPECT_EQ(r.consistency_error, "") << r.consistency_error;
  auto check = VerifyExactMst(g, r.tree_edges);
  EXPECT_TRUE(check.ok) << check.error;
  // The final forest must be one LDT spanning the graph.
  EXPECT_EQ(CheckForestInvariant(g, r.final_ldt), "");
  std::set<NodeId> frag_ids;
  for (const LdtState& s : r.final_ldt) frag_ids.insert(s.fragment_id);
  EXPECT_EQ(frag_ids.size(), 1u);
}

// ----------------------------------------------------- Randomized-MST --

class RandomizedMstTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RandomizedMstTest, ComputesTheExactMst) {
  auto [family, size_class, seed] = GetParam();
  const std::size_t n = size_class == 0 ? 16 : (size_class == 1 ? 48 : 96);
  Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 1000 + family);
  auto g = MakeFamily(family, n, rng);
  auto r = RunRandomizedMst(g, {.seed = static_cast<std::uint64_t>(seed)});
  ExpectExactMst(g, r);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, RandomizedMstTest,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Range(0, 3),
                       ::testing::Values(1, 2, 3)));

TEST(RandomizedMstTest, PaperPhaseCountModeAlsoSucceeds) {
  Xoshiro256 rng(5);
  auto g = MakeErdosRenyi(40, 0.15, rng);
  MstOptions opt;
  opt.seed = 5;
  opt.termination = TerminationMode::kPaperPhaseCount;
  auto r = RunRandomizedMst(g, opt);
  ExpectExactMst(g, r);
  EXPECT_LE(r.phases, RandomizedPaperPhaseCount(40));
}

TEST(RandomizedMstTest, AwakeComplexityIsLogarithmic) {
  // max_awake <= c * log2 n with one modest c across a 16x size range —
  // the O(log n) claim of Theorem 1 as a measured property.
  for (std::size_t n : {32u, 128u, 512u}) {
    Xoshiro256 rng(n);
    auto g = MakeErdosRenyi(n, 6.0 / static_cast<double>(n), rng);
    auto r = RunRandomizedMst(g, {.seed = 7});
    const double c = static_cast<double>(r.stats.max_awake) /
                     std::log2(static_cast<double>(n));
    EXPECT_LE(c, 40.0) << "n=" << n << " awake=" << r.stats.max_awake;
  }
}

TEST(RandomizedMstTest, RoundComplexityIsWithinPhaseBudget) {
  Xoshiro256 rng(11);
  const std::size_t n = 64;
  auto g = MakeRing(n, rng);
  auto r = RunRandomizedMst(g, {.seed = 11});
  // rounds <= phases * 9 blocks * (2n+1).
  EXPECT_LE(r.stats.rounds,
            r.phases * kRandomizedBlocksPerPhase * (2 * n + 1));
}

TEST(RandomizedMstTest, FragmentCountNeverIncreases) {
  Xoshiro256 rng(13);
  auto g = MakeErdosRenyi(80, 0.1, rng);
  auto r = RunRandomizedMst(g, {.seed = 13});
  ASSERT_GE(r.phases, 1u);
  EXPECT_EQ(r.fragments_per_phase[1], 80u);  // all singletons at start
  for (std::uint64_t p = 2; p <= r.phases; ++p) {
    EXPECT_LE(r.fragments_per_phase[p], r.fragments_per_phase[p - 1]);
  }
  EXPECT_EQ(r.fragments_per_phase[r.phases], 1u);  // DONE phase
}

TEST(RandomizedMstTest, DeterministicUnderFixedSeed) {
  Xoshiro256 rng(17);
  auto g = MakeErdosRenyi(50, 0.12, rng);
  auto a = RunRandomizedMst(g, {.seed = 3});
  auto b = RunRandomizedMst(g, {.seed = 3});
  EXPECT_EQ(a.tree_edges, b.tree_edges);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.max_awake, b.stats.max_awake);
  EXPECT_EQ(a.phases, b.phases);
}

TEST(RandomizedMstTest, MessagesRespectTheCongestBudget) {
  Xoshiro256 rng(19);
  const std::size_t n = 64;
  auto g = MakeErdosRenyi(n, 0.1, rng);
  auto r = RunRandomizedMst(g, {.seed = 19});
  // O(log n) bits: tag + 3 fields, each holding an ID/weight/level of
  // poly(n) magnitude.
  EXPECT_LE(r.stats.max_message_bits,
            8 + 3 * (std::bit_width(g.MaxId()) +
                     std::bit_width(std::uint64_t{1} << 25) + 8));
}

TEST(RandomizedMstTest, TinyGraphs) {
  for (std::size_t n : {2u, 3u, 4u}) {
    GraphBuilder b(n);
    for (NodeIndex v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1, v + 1);
    auto g = std::move(b).Build();
    auto r = RunRandomizedMst(g, {.seed = 1});
    ExpectExactMst(g, r);
    EXPECT_EQ(r.tree_edges.size(), n - 1);
  }
}

// -------------------------------------------------- Deterministic-MST --

class DeterministicMstTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DeterministicMstTest, ComputesTheExactMst) {
  auto [family, seed] = GetParam();
  const std::size_t n = 40;
  Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 77 + family);
  auto g = MakeFamily(family, n, rng);
  auto r = RunDeterministicMst(g, {.seed = static_cast<std::uint64_t>(seed)});
  ExpectExactMst(g, r);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DeterministicMstTest,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Values(1, 2)));

TEST(DeterministicMstTest, SparseIdRange) {
  // N = 10 * n: the run time grows with N, the result must not change.
  Xoshiro256 rng(23);
  GeneratorOptions gopt;
  gopt.max_id = 300;
  auto g = MakeErdosRenyi(30, 0.15, rng, gopt);
  auto r = RunDeterministicMst(g, {.seed = 23});
  ExpectExactMst(g, r);
}

TEST(DeterministicMstTest, SeedDoesNotChangeTheOutcome) {
  // The algorithm is deterministic: different seeds, same everything.
  Xoshiro256 rng(29);
  auto g = MakeErdosRenyi(36, 0.15, rng);
  auto a = RunDeterministicMst(g, {.seed = 1});
  auto b = RunDeterministicMst(g, {.seed = 999});
  EXPECT_EQ(a.tree_edges, b.tree_edges);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.max_awake, b.stats.max_awake);
}

TEST(DeterministicMstTest, AwakeComplexityIsLogarithmic) {
  for (std::size_t n : {16u, 64u, 256u}) {
    Xoshiro256 rng(n);
    auto g = MakeErdosRenyi(n, 6.0 / static_cast<double>(n), rng);
    auto r = RunDeterministicMst(g, {.seed = 7});
    const double c = static_cast<double>(r.stats.max_awake) /
                     std::log2(static_cast<double>(n));
    EXPECT_LE(c, 60.0) << "n=" << n << " awake=" << r.stats.max_awake;
  }
}

TEST(DeterministicMstTest, RunTimeScalesWithN) {
  // Same graph topology/weights, IDs drawn from [1, N] for growing N:
  // rounds grow with N (the O(nN log n) term), awake stays put.
  std::vector<std::uint64_t> rounds;
  std::vector<std::uint64_t> awake;
  for (NodeId N : {32u, 128u, 512u}) {
    Xoshiro256 rng(31);  // same seed: same topology and weights
    GeneratorOptions gopt;
    gopt.max_id = N;
    auto g = MakeErdosRenyi(32, 0.15, rng, gopt);
    auto r = RunDeterministicMst(g, {.seed = 31});
    ExpectExactMst(g, r);
    rounds.push_back(r.stats.rounds);
    awake.push_back(r.stats.max_awake);
  }
  EXPECT_GT(rounds[1], rounds[0]);
  EXPECT_GT(rounds[2], rounds[1]);
  // Awake complexity must not grow with N (phases may differ slightly,
  // allow a small factor).
  EXPECT_LE(awake[2], awake[0] * 2);
}

TEST(DeterministicMstTest, BluesAreAtLeastOnePerPhase) {
  Xoshiro256 rng(37);
  auto g = MakeErdosRenyi(48, 0.12, rng);
  auto r = RunDeterministicMst(g, {.seed = 37});
  for (std::uint64_t p = 1; p < r.phases; ++p) {  // last phase is DONE-only
    EXPECT_GE(r.blue_per_phase[p], 1u) << "phase " << p;
  }
}

// ----------------------------------------- Corollary 1 (log* variant) --

class LogStarMstTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LogStarMstTest, ComputesTheExactMst) {
  auto [family, seed] = GetParam();
  const std::size_t n = 36;
  Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 131 + family);
  auto g = MakeFamily(family, n, rng);
  MstOptions opt;
  opt.seed = static_cast<std::uint64_t>(seed);
  opt.coloring = ColoringVariant::kLogStar;
  auto r = RunDeterministicMst(g, opt);
  ExpectExactMst(g, r);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, LogStarMstTest,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Values(1, 2)));

TEST(LogStarMstTest, RunTimeIndependentOfN) {
  // Corollary 1's point: unlike Fast-Awake-Coloring, the log* variant's
  // round complexity does not scale with the ID range N.
  std::vector<std::uint64_t> rounds;
  for (NodeId N : {64u, 1024u}) {
    Xoshiro256 rng(31);
    GeneratorOptions gopt;
    gopt.max_id = N;
    auto g = MakeErdosRenyi(32, 0.15, rng, gopt);
    MstOptions opt;
    opt.seed = 31;
    opt.coloring = ColoringVariant::kLogStar;
    auto r = RunDeterministicMst(g, opt);
    ExpectExactMst(g, r);
    rounds.push_back(r.stats.rounds);
  }
  // A 16x larger N must not cost anywhere near 16x the rounds (phase
  // counts can wiggle; allow 2x).
  EXPECT_LE(rounds[1], rounds[0] * 2);
}

TEST(LogStarMstTest, ApiDispatch) {
  Xoshiro256 rng(59);
  auto g = MakeErdosRenyi(28, 0.2, rng);
  auto r = ComputeMst(g, MstAlgorithm::kDeterministicLogStar, {.seed = 59});
  EXPECT_EQ(r.tree_edges, KruskalMst(g));
}

TEST(DeterministicMstTest, PaperPhaseBudgetIsAstronomicalButFinite) {
  // ceil(log_{240000/239999} n) + 240000: document the constant.
  EXPECT_GT(DeterministicPaperPhaseCount(100), 1000000u);
  EXPECT_LT(DeterministicPaperPhaseCount(100), 2000000u);
}

TEST(DeterministicMstTest, PaperPhaseBudgetModeRunsToCompletionOnToyInputs) {
  // ~670k idle phases after the ~3 active ones; the empty-round skipping
  // makes this cheap enough to execute literally at toy sizes.
  Xoshiro256 rng(61);
  auto g = MakeRing(6, rng);
  MstOptions opt;
  opt.seed = 61;
  opt.termination = TerminationMode::kPaperPhaseCount;
  auto r = RunDeterministicMst(g, opt);
  ExpectExactMst(g, r);
  // Run time counts the slept-through budget; awake does not.
  EXPECT_GT(r.stats.rounds, 1000000u);
  EXPECT_LT(r.stats.max_awake, 200u);
}

// ------------------------------------------ Spanning tree & baseline ---

TEST(BmSpanningTreeTest, ProducesASpanningTreeInLogAwake) {
  Xoshiro256 rng(41);
  auto g = MakeErdosRenyi(100, 0.08, rng);
  auto r = RunBmSpanningTree(g, {.seed = 41});
  EXPECT_EQ(r.consistency_error, "");
  EXPECT_EQ(r.tree_edges.size(), g.NumNodes() - 1);
  EXPECT_TRUE(IsSpanningTree(g, EdgeMask(g, r.tree_edges)));
  EXPECT_LE(r.stats.max_awake, 40 * std::log2(100.0));
}

TEST(BmSpanningTreeTest, GenerallyNotTheMst) {
  // On a complete graph an arbitrary spanning tree essentially never
  // matches the MST.
  Xoshiro256 rng(43);
  auto g = MakeComplete(20, rng);
  auto r = RunBmSpanningTree(g, {.seed = 43});
  auto mst = KruskalMst(g);
  EXPECT_NE(r.tree_edges, mst);
  EXPECT_GT(g.TotalWeight(r.tree_edges), g.TotalWeight(mst));
}

TEST(LeaderElectionTest, EveryoneKnowsOneLeaderInLogAwake) {
  Xoshiro256 rng(44);
  GeneratorOptions gopt;
  gopt.max_id = 5000;  // sparse IDs: the leader is some surviving root
  auto g = MakeErdosRenyi(120, 0.06, rng, gopt);
  auto r = RunLeaderElection(g, {.seed = 44});
  // The leader is a real node's ID.
  EXPECT_NE(g.IndexOfId(r.leader_id), kInvalidNode);
  EXPECT_LE(r.stats.max_awake, 40 * std::log2(120.0));
  // Deterministic under the seed.
  auto r2 = RunLeaderElection(g, {.seed = 44});
  EXPECT_EQ(r.leader_id, r2.leader_id);
}

TEST(GhsBaselineTest, SameTreeButAwakeEqualsRounds) {
  Xoshiro256 rng(47);
  auto g = MakeErdosRenyi(60, 0.1, rng);
  auto sleeping = RunRandomizedMst(g, {.seed = 47});
  auto baseline = RunGhsBaseline(g, {.seed = 47});
  EXPECT_EQ(sleeping.tree_edges, baseline.tree_edges);
  EXPECT_EQ(baseline.stats.max_awake, baseline.stats.rounds);
  // The sleeping algorithm's awake time is drastically smaller.
  EXPECT_LT(sleeping.stats.max_awake * 100, baseline.stats.max_awake);
}

// ----------------------------------------------------------- Facade ----

TEST(ApiTest, DispatchesAllAlgorithms) {
  Xoshiro256 rng(53);
  auto g = MakeErdosRenyi(30, 0.2, rng);
  auto truth = KruskalMst(g);
  for (MstAlgorithm a : {MstAlgorithm::kRandomized,
                         MstAlgorithm::kDeterministic,
                         MstAlgorithm::kGhsBaseline}) {
    auto r = ComputeMst(g, a, {.seed = 53});
    EXPECT_EQ(r.tree_edges, truth) << MstAlgorithmName(a);
  }
  auto st = ComputeMst(g, MstAlgorithm::kBmSpanningTree, {.seed = 53});
  EXPECT_TRUE(IsSpanningTree(g, EdgeMask(g, st.tree_edges)));
}

TEST(ApiTest, AlgorithmNames) {
  EXPECT_STREQ(MstAlgorithmName(MstAlgorithm::kRandomized), "Randomized-MST");
  EXPECT_STREQ(MstAlgorithmName(MstAlgorithm::kDeterministic),
               "Deterministic-MST");
}

}  // namespace
}  // namespace smst
