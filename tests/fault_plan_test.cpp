// Fault-injection adversary: spec parsing, per-rule semantics at the
// FaultSession level, and the two contracts the subsystem is built
// around — a null plan is a bit-exact no-op, and a non-null plan is
// deterministic (same plan + seed => identical RunOutcome, metrics, and
// tree, independent of thread count).
#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "smst/faults/fault_plan.h"
#include "smst/graph/generators.h"
#include "smst/mst/api.h"
#include "smst/runtime/parallel_runner.h"

namespace smst {
namespace {

// ---- parsing ----------------------------------------------------------

TEST(FaultPlanParseTest, ParsesCompositeSpec) {
  const FaultPlan plan = ParseFaultPlan("drop=0.01,jitter=2");
  EXPECT_EQ(plan.salt, 0u);
  ASSERT_EQ(plan.rules.size(), 2u);
  EXPECT_EQ(plan.rules[0].kind, FaultKind::kDrop);
  EXPECT_DOUBLE_EQ(plan.rules[0].probability, 0.01);
  EXPECT_EQ(plan.rules[0].node, kInvalidNode);
  EXPECT_EQ(plan.rules[1].kind, FaultKind::kWakeJitter);
  EXPECT_EQ(plan.rules[1].param, 2u);
  EXPECT_DOUBLE_EQ(plan.rules[1].probability, 1.0);
}

TEST(FaultPlanParseTest, ParsesProbabilityAndNodeSuffixes) {
  const FaultPlan plan =
      ParseFaultPlan("salt=9,delay=3:0.5@7,crash=100:0.25@2,dup=0.2@1");
  EXPECT_EQ(plan.salt, 9u);
  ASSERT_EQ(plan.rules.size(), 3u);
  EXPECT_EQ(plan.rules[0].kind, FaultKind::kDelay);
  EXPECT_EQ(plan.rules[0].param, 3u);
  EXPECT_DOUBLE_EQ(plan.rules[0].probability, 0.5);
  EXPECT_EQ(plan.rules[0].node, NodeIndex{7});
  EXPECT_EQ(plan.rules[1].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.rules[1].from_round, Round{100});
  EXPECT_DOUBLE_EQ(plan.rules[1].probability, 0.25);
  EXPECT_EQ(plan.rules[1].node, NodeIndex{2});
  EXPECT_EQ(plan.rules[2].kind, FaultKind::kDuplicate);
  EXPECT_DOUBLE_EQ(plan.rules[2].probability, 0.2);
  EXPECT_EQ(plan.rules[2].node, NodeIndex{1});
}

TEST(FaultPlanParseTest, EmptySpecIsEmptyPlan) {
  EXPECT_TRUE(ParseFaultPlan("").Empty());
  EXPECT_TRUE(ParseFaultPlan(",,").Empty());
}

TEST(FaultPlanParseTest, RejectsMalformedItems) {
  EXPECT_THROW(ParseFaultPlan("bogus=1"), std::invalid_argument);
  EXPECT_THROW(ParseFaultPlan("drop"), std::invalid_argument);
  EXPECT_THROW(ParseFaultPlan("drop="), std::invalid_argument);
  EXPECT_THROW(ParseFaultPlan("drop=1.5"), std::invalid_argument);
  EXPECT_THROW(ParseFaultPlan("drop=0.5:0.5"), std::invalid_argument);
  EXPECT_THROW(ParseFaultPlan("delay=0"), std::invalid_argument);
  EXPECT_THROW(ParseFaultPlan("jitter=x"), std::invalid_argument);
  EXPECT_THROW(ParseFaultPlan("crash=0"), std::invalid_argument);
  EXPECT_THROW(ParseFaultPlan("delay=2:2"), std::invalid_argument);
  EXPECT_THROW(ParseFaultPlan("drop=0.1@"), std::invalid_argument);
}

TEST(FaultPlanParseTest, ToStringRoundTrips) {
  const FaultPlan plan =
      ParseFaultPlan("salt=9,delay=3:0.5@7,drop=0.01,jitter=2,crash=40@5");
  EXPECT_EQ(ParseFaultPlan(plan.ToString()), plan);
}

// ---- FaultSession rule semantics --------------------------------------

TEST(FaultSessionTest, NullAndEmptyPlansAreInactive) {
  const FaultPlan empty;
  FaultSession none(nullptr, 1, 8);
  FaultSession blank(&empty, 1, 8);
  EXPECT_FALSE(none.Active());
  EXPECT_FALSE(blank.Active());
  const auto v = none.OnMessage(0, 0, 1);
  EXPECT_FALSE(v.drop);
  EXPECT_EQ(v.delay, 0u);
  EXPECT_EQ(blank.PerturbWake(3, 17, 2), Round{17});
  EXPECT_FALSE(blank.SuppressWake(3, 17));
}

TEST(FaultSessionTest, CertainDropBeatsDelayAndDup) {
  const FaultPlan plan = ParseFaultPlan("drop=1,delay=4,dup=1");
  FaultSession s(&plan, 7, 8);
  const auto v = s.OnMessage(2, 0, 5);
  EXPECT_TRUE(v.drop);
  EXPECT_EQ(v.delay, 0u);  // drop short-circuits the remaining rules
  EXPECT_FALSE(v.duplicate);
  EXPECT_EQ(s.Stats().injected_drops, 1u);
  EXPECT_EQ(s.Stats().injected_delays, 0u);
}

TEST(FaultSessionTest, NodeFilterRestrictsToSender) {
  FaultPlan plan = ParseFaultPlan("drop=1@3");
  FaultSession s(&plan, 7, 8);
  EXPECT_TRUE(s.OnMessage(3, 0, 1).drop);
  EXPECT_FALSE(s.OnMessage(2, 0, 1).drop);
  EXPECT_EQ(s.Stats().injected_drops, 1u);
}

TEST(FaultSessionTest, ActivationWindowGatesRounds) {
  FaultPlan plan = ParseFaultPlan("drop=1");
  plan.rules[0].from_round = 10;
  plan.rules[0].to_round = 20;
  FaultSession s(&plan, 7, 8);
  EXPECT_FALSE(s.OnMessage(0, 0, 9).drop);
  EXPECT_TRUE(s.OnMessage(0, 0, 10).drop);
  EXPECT_TRUE(s.OnMessage(0, 0, 20).drop);
  EXPECT_FALSE(s.OnMessage(0, 0, 21).drop);
}

TEST(FaultSessionTest, DelayAndDuplicateCompose) {
  const FaultPlan plan = ParseFaultPlan("delay=4,dup=1");
  FaultSession s(&plan, 7, 8);
  const auto v = s.OnMessage(1, 2, 6);
  EXPECT_FALSE(v.drop);
  EXPECT_EQ(v.delay, 4u);
  EXPECT_TRUE(v.duplicate);
  EXPECT_EQ(s.Stats().injected_delays, 1u);
  EXPECT_EQ(s.Stats().injected_duplicates, 1u);
}

TEST(FaultSessionTest, JitterStaysInRadiusAndAboveMinRound) {
  const FaultPlan plan = ParseFaultPlan("jitter=3");
  FaultSession s(&plan, 7, 8);
  std::uint64_t moved = 0;
  for (Round req = 50; req < 150; ++req) {
    const Round r = s.PerturbWake(1, req, 10);
    EXPECT_GE(r + 3, req);  // r >= req - 3 without unsigned underflow
    EXPECT_LE(r, req + 3);
    EXPECT_GE(r, Round{10});
    if (r != req) ++moved;
  }
  EXPECT_EQ(s.Stats().jittered_wakes, moved);
  EXPECT_GT(moved, 0u);  // radius 3, probability 1: most wakes move
  // The clamp: a wake jittered below min_round lands exactly on it.
  for (Round req = 2; req <= 5; ++req) {
    EXPECT_GE(s.PerturbWake(1, req, req), req);
  }
}

TEST(FaultSessionTest, CrashSuppressesFromItsRoundOn) {
  const FaultPlan plan = ParseFaultPlan("crash=10@3");
  FaultSession s(&plan, 7, 8);
  EXPECT_EQ(s.CrashRound(3), Round{10});
  EXPECT_EQ(s.CrashRound(2), kMaxRound);
  EXPECT_FALSE(s.SuppressWake(3, 9));
  EXPECT_TRUE(s.SuppressWake(3, 10));
  EXPECT_TRUE(s.SuppressWake(3, 11));
  EXPECT_FALSE(s.SuppressWake(2, 11));
  EXPECT_EQ(s.Stats().suppressed_wakes, 2u);
  EXPECT_EQ(s.Stats().crashed_nodes, 1u);  // counted once, not per wake
}

TEST(FaultSessionTest, VerdictsAreOrderIndependent) {
  // Counter-based hashing: the verdict for an event depends only on its
  // coordinates, not on how many events were examined before it.
  const FaultPlan plan = ParseFaultPlan("drop=0.5");
  FaultSession forward(&plan, 42, 8);
  FaultSession backward(&plan, 42, 8);
  std::vector<bool> fwd, bwd(100);
  for (std::uint32_t i = 0; i < 100; ++i) {
    fwd.push_back(forward.OnMessage(i % 8, i % 4, 1 + i).drop);
  }
  for (std::uint32_t i = 100; i-- > 0;) {
    bwd[i] = backward.OnMessage(i % 8, i % 4, 1 + i).drop;
  }
  EXPECT_EQ(fwd, bwd);
  EXPECT_EQ(forward.Stats(), backward.Stats());
}

TEST(FaultSessionTest, SaltRealizesAnIndependentPattern) {
  FaultPlan a = ParseFaultPlan("drop=0.5");
  FaultPlan b = ParseFaultPlan("salt=1,drop=0.5");
  FaultSession sa(&a, 42, 8), sb(&b, 42, 8);
  bool differs = false;
  for (std::uint32_t i = 0; i < 64 && !differs; ++i) {
    differs = sa.OnMessage(i % 8, 0, 1 + i).drop !=
              sb.OnMessage(i % 8, 0, 1 + i).drop;
  }
  EXPECT_TRUE(differs);
}

// ---- full-run contracts ------------------------------------------------

void ExpectSameFaultedRun(const MstRunResult& a, const MstRunResult& b) {
  EXPECT_EQ(a.outcome, b.outcome);  // status, detail, FaultStats, audit
  EXPECT_EQ(a.tree_edges, b.tree_edges);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.total_messages, b.stats.total_messages);
  EXPECT_EQ(a.stats.total_bits, b.stats.total_bits);
  EXPECT_EQ(a.stats.awake_node_rounds, b.stats.awake_node_rounds);
  EXPECT_EQ(a.stats.dropped_messages, b.stats.dropped_messages);
  ASSERT_EQ(a.node_metrics.size(), b.node_metrics.size());
  for (std::size_t v = 0; v < a.node_metrics.size(); ++v) {
    EXPECT_EQ(a.node_metrics[v].awake_rounds, b.node_metrics[v].awake_rounds);
    EXPECT_EQ(a.node_metrics[v].messages_dropped,
              b.node_metrics[v].messages_dropped);
  }
}

TEST(FaultedRunTest, NullPlanIsABitExactNoOp) {
  Xoshiro256 rng(11);
  const auto g = MakeErdosRenyi(48, 0.15, rng);
  MstOptions plain;
  plain.seed = 7;
  const FaultPlan empty;
  MstOptions with_empty_plan = plain;
  with_empty_plan.fault_plan = &empty;

  const auto a = ComputeMst(g, MstAlgorithm::kRandomized, plain);
  const auto b = ComputeMst(g, MstAlgorithm::kRandomized, with_empty_plan);
  ExpectSameFaultedRun(a, b);
  EXPECT_TRUE(a.outcome.Ok());
  EXPECT_EQ(a.outcome.faults, FaultStats{});
}

TEST(FaultedRunTest, SamePlanAndSeedReplayExactly) {
  Xoshiro256 rng(12);
  const auto g = MakeErdosRenyi(64, 0.12, rng);
  const FaultPlan plan = ParseFaultPlan("salt=5,drop=0.001,delay=2:0.01");
  MstOptions opt;
  opt.seed = 3;
  opt.fault_plan = &plan;
  const auto a = ComputeMst(g, MstAlgorithm::kRandomized, opt);
  const auto b = ComputeMst(g, MstAlgorithm::kRandomized, opt);
  ExpectSameFaultedRun(a, b);
}

TEST(FaultedRunTest, DifferentSeedsRealizeDifferentFaultPatterns) {
  Xoshiro256 rng(12);
  const auto g = MakeErdosRenyi(64, 0.12, rng);
  const FaultPlan plan = ParseFaultPlan("drop=0.01");
  MstOptions opt;
  opt.fault_plan = &plan;
  opt.seed = 3;
  const auto a = ComputeMst(g, MstAlgorithm::kRandomized, opt);
  opt.seed = 4;
  const auto b = ComputeMst(g, MstAlgorithm::kRandomized, opt);
  // Not a hard guarantee per event, but across a whole run at drop=0.01
  // identical injection totals would mean the seed is not reaching the
  // adversary stream.
  EXPECT_NE(a.outcome.faults.injected_drops, b.outcome.faults.injected_drops);
}

TEST(FaultedRunTest, ThreadCountIsInvisibleInFaultedSweeps) {
  Xoshiro256 rng(13);
  const auto g = MakeErdosRenyi(48, 0.15, rng);
  const FaultPlan plan = ParseFaultPlan("salt=2,drop=0.002,jitter=1:0.001");
  MstOptions opt;
  opt.fault_plan = &plan;
  std::vector<RunSpec> specs;
  for (MstAlgorithm algo :
       {MstAlgorithm::kRandomized, MstAlgorithm::kDeterministic}) {
    for (std::uint64_t s = 1; s <= 4; ++s) {
      specs.push_back(RunSpec{&g, algo, opt, s});
    }
  }
  const auto serial = ParallelRunner(1).RunAll(specs);
  const auto threaded = ParallelRunner(4).RunAll(specs);
  ASSERT_EQ(serial.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE("spec " + std::to_string(i));
    ExpectSameFaultedRun(serial[i], threaded[i]);
  }
}

TEST(FaultedRunTest, CrashStopClassifiesAsCrashedPartition) {
  Xoshiro256 rng(14);
  const auto g = MakeRing(16, rng);
  const FaultPlan plan = ParseFaultPlan("crash=5@3");
  MstOptions opt;
  opt.fault_plan = &plan;
  opt.max_rounds = 1 << 20;
  const auto r = ComputeMst(g, MstAlgorithm::kRandomized, opt);
  EXPECT_FALSE(r.outcome.Ok());
  EXPECT_GE(r.outcome.faults.crashed_nodes, 1u);
  EXPECT_GE(r.outcome.faults.suppressed_wakes, 1u);
}

}  // namespace
}  // namespace smst
