#include <gtest/gtest.h>

#include "smst/graph/generators.h"
#include "smst/graph/mst_reference.h"
#include "smst/graph/mst_verify.h"
#include "smst/graph/properties.h"

namespace smst {
namespace {

TEST(KruskalTest, HandPickedExample) {
  // Classic 4-node example; MST = {(0,1,1), (1,2,2), (2,3,3)}.
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1).AddEdge(1, 2, 2).AddEdge(2, 3, 3).AddEdge(3, 0, 4)
      .AddEdge(0, 2, 5);
  auto g = std::move(b).Build();
  auto mst = KruskalMst(g);
  EXPECT_EQ(mst, (std::vector<EdgeIndex>{0, 1, 2}));
  EXPECT_EQ(g.TotalWeight(mst), 6u);
}

TEST(KruskalTest, TreeInputReturnsAllEdges) {
  Xoshiro256 rng(1);
  auto g = MakeRandomTree(40, rng);
  auto mst = KruskalMst(g);
  EXPECT_EQ(mst.size(), 39u);
}

TEST(KruskalTest, RingDropsHeaviestEdge) {
  Xoshiro256 rng(2);
  auto g = MakeRing(12, rng);
  auto mst = KruskalMst(g);
  ASSERT_EQ(mst.size(), 11u);
  Weight heaviest = 0;
  EdgeIndex heaviest_e = kInvalidEdge;
  for (EdgeIndex e = 0; e < g.NumEdges(); ++e) {
    if (g.GetEdge(e).weight > heaviest) {
      heaviest = g.GetEdge(e).weight;
      heaviest_e = e;
    }
  }
  for (EdgeIndex e : mst) EXPECT_NE(e, heaviest_e);
}

class ReferenceAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ReferenceAgreementTest, KruskalPrimBoruvkaAgree) {
  auto [family, seed] = GetParam();
  Xoshiro256 rng(seed);
  WeightedGraph g = [&]() -> WeightedGraph {
    switch (family) {
      case 0: return MakeErdosRenyi(60, 0.1, rng);
      case 1: return MakeRing(60, rng);
      case 2: return MakeComplete(25, rng);
      case 3: return MakeGrid(6, 10, rng);
      case 4: return MakeRandomGeometric(60, 0.2, rng);
      default: return MakeRandomTree(60, rng);
    }
  }();
  auto k = KruskalMst(g);
  auto p = PrimMst(g);
  auto bo = BoruvkaMst(g);
  EXPECT_EQ(k, p);
  EXPECT_EQ(k, bo);
  EXPECT_TRUE(IsSpanningTree(g, EdgeMask(g, k)));
}

INSTANTIATE_TEST_SUITE_P(
    Families, ReferenceAgreementTest,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Values(1, 2, 3)));

TEST(VerifyTest, AcceptsTheMst) {
  Xoshiro256 rng(5);
  auto g = MakeErdosRenyi(40, 0.15, rng);
  auto mst = KruskalMst(g);
  EXPECT_TRUE(VerifyExactMst(g, mst).ok);
  EXPECT_TRUE(CertifyMstByCycleProperty(g, mst).ok);
}

TEST(VerifyTest, RejectsWrongEdgeCount) {
  Xoshiro256 rng(5);
  auto g = MakeErdosRenyi(40, 0.15, rng);
  auto mst = KruskalMst(g);
  mst.pop_back();
  auto check = VerifyExactMst(g, mst);
  EXPECT_FALSE(check.ok);
  EXPECT_FALSE(check.error.empty());
}

TEST(VerifyTest, RejectsNonMstSpanningTree) {
  // Swap an MST edge for a heavier non-tree edge that keeps it spanning.
  GraphBuilder b(3);
  b.AddEdge(0, 1, 1).AddEdge(1, 2, 2).AddEdge(2, 0, 3);
  auto g = std::move(b).Build();
  std::vector<EdgeIndex> not_mst{1, 2};  // (1,2),(2,0) spans, but not MST
  EXPECT_TRUE(IsSpanningTree(g, EdgeMask(g, not_mst)));
  EXPECT_FALSE(VerifyExactMst(g, not_mst).ok);
  EXPECT_FALSE(CertifyMstByCycleProperty(g, not_mst).ok);
}

TEST(VerifyTest, RejectsCycle) {
  auto g = [] {
    GraphBuilder b(3);
    b.AddEdge(0, 1, 1).AddEdge(1, 2, 2).AddEdge(2, 0, 3);
    return std::move(b).Build();
  }();
  std::vector<EdgeIndex> cycle{0, 1, 2};
  EXPECT_FALSE(VerifyExactMst(g, cycle).ok);
}

TEST(EdgeMaskTest, MarksExactlyTheSet) {
  Xoshiro256 rng(6);
  auto g = MakeRing(8, rng);
  auto mask = EdgeMask(g, {1, 3, 5});
  for (EdgeIndex e = 0; e < g.NumEdges(); ++e) {
    EXPECT_EQ(mask[e], e == 1 || e == 3 || e == 5);
  }
}

}  // namespace
}  // namespace smst
