// Unit tests for the Corollary-1 log* coloring: Cole-Vishkin iteration
// counts, properness on adversarial fragment graphs, the mover
// (local-minimum) rule, and the O(log* n) awake property.
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "smst/graph/generators.h"
#include "smst/runtime/simulator.h"
#include "smst/sleeping/coloring.h"
#include "smst/sleeping/forest_builder.h"
#include "tests/test_util.h"

namespace smst {
namespace {

TEST(LogStarParamsTest, CvIterationCounts) {
  // Bound sequence: B -> 2*(bit_width(B)-1)+1 until <= 5.
  EXPECT_EQ(LogStarCvIterations(5), 1u);   // already small: one defensive pass
  EXPECT_EQ(LogStarCvIterations(7), 1u);   // 7 -> 5
  EXPECT_EQ(LogStarCvIterations(100), 3u); // 100 -> 13 -> 7 -> 5
  EXPECT_EQ(LogStarCvIterations(1u << 20), 4u);  // ~2^20 -> 41 -> 11 -> 7 -> 5
  // log*-ish growth: doubling the exponent adds at most one iteration.
  EXPECT_LE(LogStarCvIterations(NodeId{1} << 40),
            LogStarCvIterations(NodeId{1} << 20) + 1);
}

TEST(LogStarParamsTest, BlockCountIsNIndependent) {
  EXPECT_EQ(LogStarColoringBlocks(100, 1000), LogStarColoringBlocks(10000, 1000));
  // ... and only log*-grows with N.
  EXPECT_LE(LogStarColoringBlocks(100, NodeId{1} << 40),
            LogStarColoringBlocks(100, 64) + 5 * 9);
}

// Harness: singleton-node fragments, H-edges = chosen graph edges
// (mirrors the FastAwakeColoring test harness).
struct LogStarHarness {
  WeightedGraph g;
  std::vector<LdtState> states;
  std::vector<std::vector<NbrEntry>> nbr;
  std::vector<std::vector<HPort>> h_ports;
  std::vector<LogStarResult> results;
  RunStats stats;

  LogStarHarness(WeightedGraph graph, const std::vector<EdgeIndex>& h_edges)
      : g(std::move(graph)), nbr(g.NumNodes()), h_ports(g.NumNodes()),
        results(g.NumNodes()) {
    std::vector<NodeIndex> roots;
    for (NodeIndex v = 0; v < g.NumNodes(); ++v) roots.push_back(v);
    states = BuildForest(g, {}, roots);
    for (EdgeIndex e : h_edges) {
      const Edge& edge = g.GetEdge(e);
      nbr[edge.u].push_back({g.IdOf(edge.v), edge.weight, true});
      nbr[edge.v].push_back({g.IdOf(edge.u), edge.weight, false});
      h_ports[edge.u].push_back({PortTo(g, edge.u, edge.v), g.IdOf(edge.v)});
      h_ports[edge.v].push_back({PortTo(g, edge.v, edge.u), g.IdOf(edge.u)});
    }
  }

  Task<void> Program(NodeContext& ctx) {
    BlockCursor cursor(1, ctx.NumNodesKnown());
    const NodeIndex v = ctx.Index();
    if (nbr[v].empty()) {
      cursor.SkipBlocks(
          LogStarColoringBlocks(ctx.NumNodesKnown(), ctx.MaxIdKnown()));
      co_return;
    }
    results[v] =
        co_await LogStarColoring(ctx, states[v], cursor, nbr[v], h_ports[v]);
  }

  void Run() {
    Simulator sim(g);
    sim.Run([this](NodeContext& ctx) { return Program(ctx); });
    stats = sim.Stats();
  }

  void ExpectProper(const std::vector<EdgeIndex>& h_edges) {
    for (EdgeIndex e : h_edges) {
      const Edge& edge = g.GetEdge(e);
      EXPECT_NE(results[edge.u].my_color, results[edge.v].my_color)
          << "edge " << e;
      EXPECT_LE(results[edge.u].my_color, 4u);
      EXPECT_LE(results[edge.v].my_color, 4u);
      // Mutual knowledge is consistent.
      EXPECT_EQ(results[edge.u].neighbor_colors.at(g.IdOf(edge.v)),
                results[edge.v].my_color);
      EXPECT_EQ(results[edge.v].neighbor_colors.at(g.IdOf(edge.u)),
                results[edge.u].my_color);
    }
  }
};

std::vector<EdgeIndex> AllEdges(const WeightedGraph& g) {
  std::vector<EdgeIndex> v;
  for (EdgeIndex e = 0; e < g.NumEdges(); ++e) v.push_back(e);
  return v;
}

TEST(LogStarColoringTest, PathIsProper) {
  Xoshiro256 rng(1);
  GeneratorOptions opt;
  opt.shuffle_ids = false;
  auto g = MakePath(16, rng, opt);
  auto edges = AllEdges(g);
  LogStarHarness h(std::move(g), edges);
  h.Run();
  h.ExpectProper(edges);
}

TEST(LogStarColoringTest, RingIsProper) {
  // Rings exercise the case with no forest roots in some pseudoforests.
  Xoshiro256 rng(2);
  GeneratorOptions opt;
  opt.shuffle_ids = false;
  auto g = MakeRing(17, rng, opt);  // odd ring: needs >= 3 colors
  auto edges = AllEdges(g);
  LogStarHarness h(std::move(g), edges);
  h.Run();
  h.ExpectProper(edges);
}

TEST(LogStarColoringTest, Degree4StarIsProper) {
  Xoshiro256 rng(3);
  GeneratorOptions opt;
  opt.shuffle_ids = false;
  auto g = MakeStar(5, rng, opt);
  auto edges = AllEdges(g);
  LogStarHarness h(std::move(g), edges);
  h.Run();
  h.ExpectProper(edges);
}

TEST(LogStarColoringTest, GridWithShuffledSparseIds) {
  Xoshiro256 rng(4);
  GeneratorOptions opt;
  opt.max_id = 4096;  // sparse IDs: big initial CV colors
  auto g = MakeGrid(4, 5, rng, opt);
  auto edges = AllEdges(g);
  LogStarHarness h(std::move(g), edges);
  h.Run();
  h.ExpectProper(edges);
}

TEST(LogStarColoringTest, MoversAreIndependentAndPresent) {
  Xoshiro256 rng(5);
  GeneratorOptions opt;
  opt.shuffle_ids = false;
  auto g = MakeRing(12, rng, opt);
  auto edges = AllEdges(g);
  LogStarHarness h(std::move(g), edges);
  h.Run();
  int movers = 0;
  for (NodeIndex v = 0; v < 12; ++v) {
    if (!h.results[v].IsMover()) continue;
    ++movers;
    // No H-neighbor is also a mover (strict minima are independent).
    for (const HPort& hp : h.h_ports[v]) {
      NodeIndex u = h.g.PortsOf(v)[hp.port].neighbor;
      EXPECT_FALSE(h.results[u].IsMover());
    }
  }
  EXPECT_GE(movers, 1);  // every component has its color minimum
}

TEST(LogStarColoringTest, AwakeIsLogStarNotLinear) {
  // Awake rounds stay bounded as N grows 64x (contrast: Fast-Awake-
  // Coloring stage membership stays O(1) too, but its *round* count
  // grows with N; here both stay put).
  std::vector<std::uint64_t> awake;
  for (NodeId N : {32u, 2048u}) {
    GraphBuilder b(8);
    for (NodeIndex v = 0; v + 1 < 8; ++v) b.AddEdge(v, v + 1, v + 1);
    std::vector<NodeId> ids;
    for (NodeId i = 1; i <= 8; ++i) ids.push_back(i * (N / 8));
    b.SetIds(ids, N);
    auto g = std::move(b).Build();
    auto edges = AllEdges(g);
    LogStarHarness h(std::move(g), edges);
    h.Run();
    h.ExpectProper(edges);
    awake.push_back(h.stats.max_awake);
  }
  EXPECT_LE(awake[1], awake[0] + 5 * 9 * 3);  // at most ~log* more wakes
}

TEST(LogStarColoringTest, RejectsIsolatedFragment) {
  Xoshiro256 rng(6);
  GeneratorOptions opt;
  opt.shuffle_ids = false;
  auto g = MakePath(4, rng, opt);
  LogStarHarness h(std::move(g), {});
  // Program() skips coloring for empty nbr; directly calling it throws.
  Simulator sim(h.g);
  EXPECT_THROW(
      sim.Run([&h](NodeContext& ctx) -> Task<void> {
        BlockCursor cursor(1, ctx.NumNodesKnown());
        co_await LogStarColoring(ctx, h.states[ctx.Index()], cursor,
                                 h.nbr[ctx.Index()], h.h_ports[ctx.Index()]);
      }),
      std::logic_error);
}

TEST(LogStarColoringTest, TwoValidEdgesBetweenTheSameFragments) {
  // Mutual-MOE-like shape: two 2-node fragments joined by TWO distinct
  // valid edges (the deterministic algorithm can produce this when f's
  // outgoing MOE to g and g's outgoing MOE to f are different edges).
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1).AddEdge(2, 3, 2).AddEdge(0, 2, 3).AddEdge(1, 3, 4);
  auto g = std::move(b).Build();
  auto states = BuildForest(g, {0, 1}, {0, 2});  // fragments {0,1}, {2,3}

  std::vector<std::vector<NbrEntry>> nbr(4);
  std::vector<std::vector<HPort>> h_ports(4);
  const NodeId id_a = g.IdOf(0), id_b = g.IdOf(2);
  for (NodeIndex v : {0u, 1u}) {
    nbr[v] = {{id_b, 3, true}, {id_b, 4, false}};
  }
  for (NodeIndex v : {2u, 3u}) {
    nbr[v] = {{id_a, 3, false}, {id_a, 4, true}};
  }
  h_ports[0] = {{PortTo(g, 0, 2), id_b}};
  h_ports[2] = {{PortTo(g, 2, 0), id_a}};
  h_ports[1] = {{PortTo(g, 1, 3), id_b}};
  h_ports[3] = {{PortTo(g, 3, 1), id_a}};

  std::vector<LogStarResult> results(4);
  Simulator sim(g);
  sim.Run([&](NodeContext& ctx) -> Task<void> {
    BlockCursor cursor(1, ctx.NumNodesKnown());
    const NodeIndex v = ctx.Index();
    results[v] =
        co_await LogStarColoring(ctx, states[v], cursor, nbr[v], h_ports[v]);
  });
  // Fragment-level colors: consistent within a fragment, proper across.
  EXPECT_EQ(results[0].my_color, results[1].my_color);
  EXPECT_EQ(results[2].my_color, results[3].my_color);
  EXPECT_NE(results[0].my_color, results[2].my_color);
  EXPECT_EQ(results[0].neighbor_colors.at(id_b), results[2].my_color);
  EXPECT_EQ(results[2].neighbor_colors.at(id_a), results[0].my_color);
}

}  // namespace
}  // namespace smst
