// Tests for tools/smst_lint: exact fixture-corpus findings, suppression
// and baseline semantics, JSON output, and the shipped-tree-clean
// guarantee (src/ + tools/ modulo tools/smst_lint/baseline.txt).
//
// The analyzer binary is exercised end to end: each test invokes it the
// way CI and the `lint` target do. SMST_LINT_BIN and SMST_REPO_ROOT are
// injected by tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <sys/wait.h>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string stdout_text;
};

LintRun RunLint(const std::string& args) {
  const std::string cmd =
      std::string(SMST_LINT_BIN) + " --root " + SMST_REPO_ROOT + " " + args +
      " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  LintRun run;
  char buf[4096];
  std::size_t got;
  while ((got = fread(buf, 1, sizeof buf, pipe)) > 0) {
    run.stdout_text.append(buf, got);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

// Extracts "file:line:[rule]" triples from text-mode output.
std::set<std::string> FindingTriples(const std::string& text) {
  std::set<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t bracket = line.find(" [");
    const std::size_t close = line.find(']', bracket);
    if (bracket == std::string::npos || close == std::string::npos) continue;
    // "file:line: [rule] message" -> "file:line:[rule]"
    out.insert(line.substr(0, bracket - 1) + ":" +
               line.substr(bracket + 1, close - bracket));
  }
  return out;
}

std::string FixturePath(const std::string& name) {
  return std::string("tests/lint_fixtures/") + name;
}

TEST(SmstLint, FixtureCorpusExactFindingSet) {
  const LintRun run = RunLint("tests/lint_fixtures");
  EXPECT_EQ(run.exit_code, 1);
  const std::set<std::string> expected = {
      "tests/lint_fixtures/baseline_case.cpp:11:[det-rand]",
      "tests/lint_fixtures/baseline_case.cpp:15:[det-wall-clock]",
      "tests/lint_fixtures/coro_bad.cpp:19:[coro-ref-capture]",
      "tests/lint_fixtures/coro_bad.cpp:25:[coro-missing-co-return]",
      "tests/lint_fixtures/coro_bad.cpp:33:[coro-local-addr]",
      "tests/lint_fixtures/det_bad.cpp:14:[det-rand]",
      "tests/lint_fixtures/det_bad.cpp:15:[det-rand]",
      "tests/lint_fixtures/det_bad.cpp:16:[det-random-device]",
      "tests/lint_fixtures/det_bad.cpp:21:[det-wall-clock]",
      "tests/lint_fixtures/det_bad.cpp:22:[det-wall-clock]",
      "tests/lint_fixtures/det_bad.cpp:23:[det-wall-clock]",
      "tests/lint_fixtures/det_bad.cpp:32:[det-unordered-iter]",
      "tests/lint_fixtures/det_bad.cpp:36:[det-unordered-iter]",
      "tests/lint_fixtures/det_bad.cpp:45:[det-pointer-key]",
      "tests/lint_fixtures/mst/congest_bad.cpp:9:[congest-scheduler-access]",
      "tests/lint_fixtures/mst/congest_bad.cpp:12:[congest-scheduler-access]",
      "tests/lint_fixtures/mst/congest_bad.cpp:16:[det-unordered-protocol]",
      "tests/lint_fixtures/mst/congest_bad.cpp:23:[congest-lane-pack]",
  };
  EXPECT_EQ(FindingTriples(run.stdout_text), expected);
}

TEST(SmstLint, GoodFixturesAreClean) {
  for (const char* name :
       {"det_good.cpp", "coro_good.cpp", "mst/congest_good.cpp"}) {
    const LintRun run = RunLint(FixturePath(name));
    EXPECT_EQ(run.exit_code, 0) << name << "\n" << run.stdout_text;
    EXPECT_TRUE(FindingTriples(run.stdout_text).empty()) << name;
  }
}

TEST(SmstLint, SuppressionCommentsSilenceFindings) {
  const LintRun run = RunLint(FixturePath("suppress.cpp"));
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_TRUE(FindingTriples(run.stdout_text).empty());
}

TEST(SmstLint, BaselineFiltersListedFindingsOnly) {
  const std::string target = FixturePath("baseline_case.cpp");
  // Without the baseline: both findings, exit 1.
  EXPECT_EQ(RunLint(target).exit_code, 1);
  EXPECT_EQ(FindingTriples(RunLint(target).stdout_text).size(), 2u);

  // With it: only the non-baselined det-wall-clock survives.
  const LintRun filtered = RunLint(
      "--baseline " + std::string(SMST_REPO_ROOT) +
      "/tests/lint_fixtures/baseline_case.txt " + target);
  EXPECT_EQ(filtered.exit_code, 1);
  const std::set<std::string> expected = {
      "tests/lint_fixtures/baseline_case.cpp:15:[det-wall-clock]"};
  EXPECT_EQ(FindingTriples(filtered.stdout_text), expected);
}

TEST(SmstLint, WriteBaselineRoundTripsToClean) {
  const std::string tmp = testing::TempDir() + "smst_lint_baseline_rt.txt";
  const LintRun write =
      RunLint("--write-baseline " + tmp + " tests/lint_fixtures");
  EXPECT_EQ(write.exit_code, 1);  // findings exist; they just got recorded
  const LintRun reread =
      RunLint("--baseline " + tmp + " tests/lint_fixtures");
  EXPECT_EQ(reread.exit_code, 0) << reread.stdout_text;
  EXPECT_TRUE(FindingTriples(reread.stdout_text).empty());
  std::remove(tmp.c_str());
}

TEST(SmstLint, ShippedTreeIsCleanModuloBaseline) {
  const LintRun run =
      RunLint("--baseline " + std::string(SMST_REPO_ROOT) +
              "/tools/smst_lint/baseline.txt src tools");
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_TRUE(FindingTriples(run.stdout_text).empty()) << run.stdout_text;
}

TEST(SmstLint, JsonOutputReportsRulesAndCounts) {
  const LintRun run = RunLint(
      "--json --baseline " + std::string(SMST_REPO_ROOT) +
      "/tests/lint_fixtures/baseline_case.txt " +
      FixturePath("baseline_case.cpp"));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.stdout_text.find("\"rule\": \"det-wall-clock\""),
            std::string::npos);
  EXPECT_NE(run.stdout_text.find("\"rule\": \"det-rand\""), std::string::npos);
  EXPECT_NE(run.stdout_text.find("\"baselined\": true"), std::string::npos);
  EXPECT_NE(run.stdout_text.find("\"active\": 1, \"baselined\": 1"),
            std::string::npos);
}

TEST(SmstLint, ListRulesCoversAllPacks) {
  const LintRun run = RunLint("--list-rules");
  EXPECT_EQ(run.exit_code, 0);
  for (const char* rule :
       {"det-rand", "det-random-device", "det-wall-clock",
        "det-unordered-iter", "det-unordered-protocol", "det-pointer-key",
        "congest-scheduler-access", "congest-lane-pack", "coro-ref-capture",
        "coro-missing-co-return", "coro-local-addr"}) {
    EXPECT_NE(run.stdout_text.find(rule), std::string::npos) << rule;
  }
}

}  // namespace
