// Tests for tools/smst_lint: exact fixture-corpus findings, suppression
// and baseline semantics, JSON/SARIF output, parallel byte-identity, the
// incremental cache, and the shipped-tree-clean guarantee
// (src/ + tools/ + tests/ + bench/ modulo tools/smst_lint/baseline.txt).
//
// The analyzer binary is exercised end to end: each test invokes it the
// way CI and the `lint` target do. SMST_LINT_BIN and SMST_REPO_ROOT are
// injected by tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <sys/wait.h>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string stdout_text;
};

LintRun RunLint(const std::string& args) {
  const std::string cmd =
      std::string(SMST_LINT_BIN) + " --root " + SMST_REPO_ROOT + " " + args +
      " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  LintRun run;
  char buf[4096];
  std::size_t got;
  while ((got = fread(buf, 1, sizeof buf, pipe)) > 0) {
    run.stdout_text.append(buf, got);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

// Extracts "file:line:[rule]" triples from text-mode output.
std::set<std::string> FindingTriples(const std::string& text) {
  std::set<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t bracket = line.find(" [");
    const std::size_t close = line.find(']', bracket);
    if (bracket == std::string::npos || close == std::string::npos) continue;
    // "file:line: [rule] message" -> "file:line:[rule]"
    out.insert(line.substr(0, bracket - 1) + ":" +
               line.substr(bracket + 1, close - bracket));
  }
  return out;
}

std::string FixturePath(const std::string& name) {
  return std::string("tests/lint_fixtures/") + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(SmstLint, FixtureCorpusExactFindingSet) {
  const LintRun run = RunLint("tests/lint_fixtures");
  EXPECT_EQ(run.exit_code, 1);
  const std::set<std::string> expected = {
      "tests/lint_fixtures/baseline_case.cpp:11:[det-rand]",
      "tests/lint_fixtures/baseline_case.cpp:15:[det-wall-clock]",
      "tests/lint_fixtures/coro_bad.cpp:21:[coro-ref-capture]",
      "tests/lint_fixtures/coro_bad.cpp:27:[coro-missing-co-return]",
      "tests/lint_fixtures/coro_bad.cpp:35:[coro-ref-capture]",
      "tests/lint_fixtures/coro_bad.cpp:41:[coro-local-addr]",
      "tests/lint_fixtures/det_bad.cpp:14:[det-rand]",
      "tests/lint_fixtures/det_bad.cpp:15:[det-rand]",
      "tests/lint_fixtures/det_bad.cpp:16:[det-random-device]",
      "tests/lint_fixtures/det_bad.cpp:21:[det-wall-clock]",
      "tests/lint_fixtures/det_bad.cpp:22:[det-wall-clock]",
      "tests/lint_fixtures/det_bad.cpp:23:[det-wall-clock]",
      "tests/lint_fixtures/det_bad.cpp:32:[det-unordered-iter]",
      "tests/lint_fixtures/det_bad.cpp:37:[det-unordered-iter]",
      "tests/lint_fixtures/det_bad.cpp:45:[det-pointer-key]",
      "tests/lint_fixtures/flat/flat_bad.cpp:17:[flat-missing-case]",
      "tests/lint_fixtures/flat/flat_bad.cpp:38:[flat-fallthrough]",
      "tests/lint_fixtures/flat/flat_bad.cpp:53:[flat-local-across-resume]",
      "tests/lint_fixtures/flat/twin_drift.cpp:20:[flat-twin-drift]",
      "tests/lint_fixtures/mst/congest_bad.cpp:9:[congest-scheduler-access]",
      "tests/lint_fixtures/mst/congest_bad.cpp:12:[congest-scheduler-access]",
      "tests/lint_fixtures/mst/congest_bad.cpp:19:[det-unordered-iter]",
      "tests/lint_fixtures/mst/congest_bad.cpp:22:[det-unordered-protocol]",
      "tests/lint_fixtures/mst/congest_bad.cpp:27:[congest-lane-pack]",
      "tests/lint_fixtures/sharded/shard_bad.cpp:26:[shard-barrier-order]",
      "tests/lint_fixtures/sharded/shard_bad.cpp:33:[shard-barrier-order]",
      "tests/lint_fixtures/sharded/shard_bad.cpp:40:[shard-local-escape]",
  };
  EXPECT_EQ(FindingTriples(run.stdout_text), expected);
}

TEST(SmstLint, FlatLocalAcrossResumeMinimalRepro) {
  // The acceptance repro: a switch-local read after an SMST_FLAT_AWAKE
  // resume point must fire, pointing at the read.
  const LintRun run = RunLint(FixturePath("flat/flat_bad.cpp"));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.stdout_text.find(
                "flat_bad.cpp:53: [flat-local-across-resume] local 'total'"),
            std::string::npos)
      << run.stdout_text;
}

TEST(SmstLint, GoodFixturesAreClean) {
  for (const char* name :
       {"det_good.cpp", "coro_good.cpp", "mst/congest_good.cpp",
        "flat/flat_good.cpp", "sharded/shard_good.cpp"}) {
    const LintRun run = RunLint(FixturePath(name));
    EXPECT_EQ(run.exit_code, 0) << name << "\n" << run.stdout_text;
    EXPECT_TRUE(FindingTriples(run.stdout_text).empty()) << name;
  }
}

TEST(SmstLint, SuppressionCommentsSilenceFindings) {
  const LintRun run = RunLint(FixturePath("suppress.cpp"));
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_TRUE(FindingTriples(run.stdout_text).empty());
}

TEST(SmstLint, BaselineFiltersListedFindingsOnly) {
  const std::string target = FixturePath("baseline_case.cpp");
  // Without the baseline: both findings, exit 1.
  EXPECT_EQ(RunLint(target).exit_code, 1);
  EXPECT_EQ(FindingTriples(RunLint(target).stdout_text).size(), 2u);

  // With it: only the non-baselined det-wall-clock survives. The fixture
  // baseline uses the legacy `path|rule|text` key form, so this also
  // pins the one-release fallback.
  const LintRun filtered = RunLint(
      "--baseline " + std::string(SMST_REPO_ROOT) +
      "/tests/lint_fixtures/baseline_case.txt " + target);
  EXPECT_EQ(filtered.exit_code, 1);
  const std::set<std::string> expected = {
      "tests/lint_fixtures/baseline_case.cpp:15:[det-wall-clock]"};
  EXPECT_EQ(FindingTriples(filtered.stdout_text), expected);
}

TEST(SmstLint, WriteBaselineRoundTripsToClean) {
  const std::string tmp = testing::TempDir() + "smst_lint_baseline_rt.txt";
  const LintRun write =
      RunLint("--write-baseline " + tmp + " tests/lint_fixtures");
  EXPECT_EQ(write.exit_code, 1);  // findings exist; they just got recorded
  const LintRun reread =
      RunLint("--baseline " + tmp + " tests/lint_fixtures");
  EXPECT_EQ(reread.exit_code, 0) << reread.stdout_text;
  EXPECT_TRUE(FindingTriples(reread.stdout_text).empty());
  std::remove(tmp.c_str());
}

TEST(SmstLint, PruneBaselineMigratesKeysAndDropsStale) {
  // Seed a baseline holding one legacy-format live entry and one stale
  // entry; --prune-baseline must rewrite it to just the live entry, in
  // the v2 content-hash key form.
  const std::string tmp = testing::TempDir() + "smst_lint_prune.txt";
  {
    std::ofstream out(tmp);
    out << "tests/lint_fixtures/baseline_case.cpp|det-rand|return rand(); "
           "// in baseline_case.txt: does not fail the run\n";
    out << "tests/lint_fixtures/gone.cpp|det-rand|rand();\n";
  }
  const LintRun prune = RunLint("--baseline " + tmp + " --prune-baseline " +
                                FixturePath("baseline_case.cpp"));
  EXPECT_EQ(prune.exit_code, 1);  // det-wall-clock is still active

  const std::string pruned = ReadAll(tmp);
  EXPECT_NE(pruned.find("baseline_case.cpp|det-rand|h:"), std::string::npos)
      << pruned;
  EXPECT_EQ(pruned.find("gone.cpp"), std::string::npos) << pruned;
  EXPECT_EQ(pruned.find("return rand()"), std::string::npos) << pruned;

  // The migrated file still filters the same finding.
  const LintRun reread =
      RunLint("--baseline " + tmp + " " + FixturePath("baseline_case.cpp"));
  const std::set<std::string> expected = {
      "tests/lint_fixtures/baseline_case.cpp:15:[det-wall-clock]"};
  EXPECT_EQ(FindingTriples(reread.stdout_text), expected);
  std::remove(tmp.c_str());
}

TEST(SmstLint, ShippedTreeIsCleanModuloBaseline) {
  const LintRun run =
      RunLint("--baseline " + std::string(SMST_REPO_ROOT) +
              "/tools/smst_lint/baseline.txt src tools tests bench");
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_TRUE(FindingTriples(run.stdout_text).empty()) << run.stdout_text;
}

TEST(SmstLint, JsonOutputReportsRulesAndCounts) {
  const LintRun run = RunLint(
      "--json --baseline " + std::string(SMST_REPO_ROOT) +
      "/tests/lint_fixtures/baseline_case.txt " +
      FixturePath("baseline_case.cpp"));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.stdout_text.find("\"rule\": \"det-wall-clock\""),
            std::string::npos);
  EXPECT_NE(run.stdout_text.find("\"rule\": \"det-rand\""), std::string::npos);
  EXPECT_NE(run.stdout_text.find("\"baselined\": true"), std::string::npos);
  EXPECT_NE(run.stdout_text.find("\"active\": 1, \"baselined\": 1"),
            std::string::npos);
  EXPECT_NE(run.stdout_text.find("\"files_analyzed\": 1"), std::string::npos);
  EXPECT_NE(run.stdout_text.find("\"files_cached\": 0"), std::string::npos);
}

TEST(SmstLint, SarifOutputHasDriverRulesAndResults) {
  const std::string tmp = testing::TempDir() + "smst_lint_out.sarif";
  const LintRun run = RunLint(
      "--sarif " + tmp + " --baseline " + std::string(SMST_REPO_ROOT) +
      "/tests/lint_fixtures/baseline_case.txt " +
      FixturePath("baseline_case.cpp"));
  EXPECT_EQ(run.exit_code, 1);
  const std::string sarif = ReadAll(tmp);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"smst_lint\""), std::string::npos);
  // Every rule is described in the driver block, findings become results
  // with a physical location, and baselined findings carry an external
  // suppression rather than being dropped.
  EXPECT_NE(sarif.find("\"id\": \"flat-twin-drift\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"det-wall-clock\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"det-rand\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 15"), std::string::npos);
  EXPECT_NE(sarif.find("\"suppressions\""), std::string::npos);
  EXPECT_NE(sarif.find("tests/lint_fixtures/baseline_case.cpp"),
            std::string::npos);
  std::remove(tmp.c_str());
}

TEST(SmstLint, ParallelRunsAreByteIdentical) {
  const LintRun one = RunLint("--json --jobs 1 tests/lint_fixtures");
  const LintRun four = RunLint("--json --jobs 4 tests/lint_fixtures");
  EXPECT_EQ(one.exit_code, four.exit_code);
  EXPECT_EQ(one.stdout_text, four.stdout_text);
}

TEST(SmstLint, IncrementalCacheSkipsUnchangedFiles) {
  const std::string dir = testing::TempDir() + "smst_lint_cache";
  std::filesystem::remove_all(dir);
  const LintRun cold = RunLint("--json --cache " + dir +
                               " tests/lint_fixtures");
  EXPECT_NE(cold.stdout_text.find("\"files_cached\": 0"), std::string::npos)
      << cold.stdout_text;
  const LintRun warm = RunLint("--json --cache " + dir +
                               " tests/lint_fixtures");
  EXPECT_NE(warm.stdout_text.find("\"files_analyzed\": 0"), std::string::npos)
      << warm.stdout_text;
  // Cached and fresh runs agree on the findings themselves.
  EXPECT_EQ(cold.exit_code, warm.exit_code);
  EXPECT_EQ(FindingTriples(cold.stdout_text), FindingTriples(warm.stdout_text));
  std::filesystem::remove_all(dir);
}

TEST(SmstLint, ListRulesCoversAllPacks) {
  const LintRun run = RunLint("--list-rules");
  EXPECT_EQ(run.exit_code, 0);
  for (const char* rule :
       {"det-rand", "det-random-device", "det-wall-clock",
        "det-unordered-iter", "det-unordered-protocol", "det-pointer-key",
        "congest-scheduler-access", "congest-lane-pack", "coro-ref-capture",
        "coro-missing-co-return", "coro-local-addr", "flat-missing-case",
        "flat-fallthrough", "flat-local-across-resume", "flat-twin-drift",
        "shard-barrier-order", "shard-local-escape"}) {
    EXPECT_NE(run.stdout_text.find(rule), std::string::npos) << rule;
  }
}

}  // namespace
