// smst_cli — run any algorithm in the library on any graph family, with
// verification, energy billing, and an awake histogram.
//
//   smst_cli --algo randomized --graph er --n 512 --seed 7
//   smst_cli --algo deterministic --graph ring --n 128 --max-id 1024
//   smst_cli --algo logstar --graph grc --rows 4 --cols 64 --energy mote
//   smst_cli --algo randomized --n 1024 --seeds 16 --threads 8
//   smst_cli --help
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <stdexcept>
#include <vector>

#include <fstream>

#include "smst/energy/energy.h"
#include "smst/graph/generators.h"
#include "smst/graph/io.h"
#include "smst/graph/mst_verify.h"
#include "smst/graph/properties.h"
#include "smst/lower_bounds/grc.h"
#include "smst/mst/api.h"
#include "smst/runtime/parallel_runner.h"
#include "smst/runtime/simulator.h"
#include "smst/util/args.h"
#include "smst/util/stats.h"
#include "smst/util/table.h"

namespace {

constexpr const char* kHelp = R"(smst_cli — sleeping-model distributed MST runner

flags:
  --algo     randomized | deterministic | logstar | ghs | spanning   [randomized]
  --graph    er | ring | path | grid | geometric | complete | tree |
             hypercube | caterpillar | lollipop | barbell | grc       [er]
  --input    load an edge-list file instead of generating (see graph/io.h)
  --dot      write the graph + tree as Graphviz DOT to this path
  --adaptive use depth-bounded schedule blocks (randomized engine)
  --n        node count (family-dependent meaning)                   [256]
  --p        Erdos-Renyi edge probability (0 = 8/n)                  [0]
  --radius   geometric radius                                        [0.16]
  --rows/--cols  G_rc shape                                          [4/64]
  --max-id   N, the ID range (0 = n)                                 [0]
  --seed     run & generator seed                                    [1]
  --seeds    run K seeded runs (seed .. seed+K-1) on the same graph  [1]
  --threads  worker threads for multi-seed runs (0 = all cores)      [0]
  --paper-phases    use the paper's fixed phase budget (randomized)
  --fault-plan      adversary spec, e.g. 'drop=0.01,jitter=2' — comma-
             separated drop=P | delay=K[:P] | dup=P | jitter=D[:P] |
             crash=R[:P] items, each with optional @NODE filter, plus
             salt=S (see faults/fault_plan.h). The run is classified
             (completed / wrong-result / non-termination /
             crashed-partition) instead of verified-or-die.
  --audit    force the runtime invariant auditor on (Debug has it on)
  --shards   simulator worker shards (0 = serial engine); results are
             bit-identical for every value                           [0]
  --shard-policy  block | rr — node-to-shard partition policy        [block]
  --engine   coroutine | flat — per-node coroutines, or the batched
             state-machine lowering (results are bit-identical; flat
             trades generality for throughput, see DESIGN.md §13)    [coroutine]
  --energy   off | mote | wifi | ble                                 [off]
  --quiet    only the summary line
)";

smst::MstAlgorithm ParseAlgo(const std::string& s) {
  if (s == "randomized") return smst::MstAlgorithm::kRandomized;
  if (s == "deterministic") return smst::MstAlgorithm::kDeterministic;
  if (s == "logstar") return smst::MstAlgorithm::kDeterministicLogStar;
  if (s == "ghs") return smst::MstAlgorithm::kGhsBaseline;
  if (s == "spanning") return smst::MstAlgorithm::kBmSpanningTree;
  throw std::invalid_argument("unknown --algo '" + s + "'");
}

smst::WeightedGraph MakeGraph(const smst::ArgParser& args,
                              smst::Xoshiro256& rng) {
  const std::string family = args.GetString("graph", "er");
  const std::size_t n = args.GetUint("n", 256);
  smst::GeneratorOptions opt;
  opt.max_id = args.GetUint("max-id", 0);
  if (family == "er") {
    double p = args.GetDouble("p", 0.0);
    if (p <= 0.0) p = 8.0 / static_cast<double>(n);
    return smst::MakeErdosRenyi(n, p, rng, opt);
  }
  if (family == "ring") return smst::MakeRing(n, rng, opt);
  if (family == "path") return smst::MakePath(n, rng, opt);
  if (family == "grid") {
    const std::size_t side = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::sqrt(double(n))));
    return smst::MakeGrid(side, (n + side - 1) / side, rng, opt);
  }
  if (family == "geometric") {
    return smst::MakeRandomGeometric(n, args.GetDouble("radius", 0.16), rng,
                                     opt);
  }
  if (family == "complete") return smst::MakeComplete(n, rng, opt);
  if (family == "tree") return smst::MakeRandomTree(n, rng, opt);
  if (family == "hypercube") {
    std::size_t d = 0;
    while ((std::size_t{1} << (d + 1)) <= n) ++d;
    return smst::MakeHypercube(d, rng, opt);
  }
  if (family == "caterpillar") return smst::MakeCaterpillar(n / 2, rng, opt);
  if (family == "lollipop") return smst::MakeLollipop(n, rng, opt);
  if (family == "barbell") return smst::MakeBarbell(n, rng, opt);
  if (family == "grc") {
    auto inst = smst::BuildGrc(args.GetUint("rows", 4),
                               args.GetUint("cols", 64), rng);
    return std::move(inst.graph);
  }
  throw std::invalid_argument("unknown --graph '" + family + "'");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    smst::ArgParser args(argc, argv);
    if (args.Has("help")) {
      std::cout << kHelp;
      return 0;
    }
    const auto algo = ParseAlgo(args.GetString("algo", "randomized"));
    const std::uint64_t seed = args.GetUint("seed", 1);
    const bool quiet = args.GetBool("quiet", false);
    const std::string energy = args.GetString("energy", "off");

    smst::Xoshiro256 rng(seed);
    const std::string input = args.GetString("input", "");
    auto g = input.empty() ? MakeGraph(args, rng)
                           : smst::ReadEdgeListFile(input);
    const std::string dot_path = args.GetString("dot", "");

    smst::MstOptions opt;
    opt.seed = seed;
    opt.adaptive_blocks = args.GetBool("adaptive", false);
    if (args.GetBool("paper-phases", false)) {
      opt.termination = smst::TerminationMode::kPaperPhaseCount;
    }
    smst::FaultPlan fault_plan;
    const std::string fault_spec = args.GetString("fault-plan", "");
    if (!fault_spec.empty()) {
      fault_plan = smst::ParseFaultPlan(fault_spec);
      opt.fault_plan = &fault_plan;
    }
    const bool faulted = !fault_plan.Empty();
    if (args.GetBool("audit", false)) opt.audit = smst::AuditMode::kOn;
    opt.shards = static_cast<std::uint32_t>(args.GetUint("shards", 0));
    opt.shard_policy =
        smst::ParseShardPolicy(args.GetString("shard-policy", "block"));
    opt.engine = smst::ParseEngineMode(args.GetString("engine", "coroutine"));
    if (opt.engine == smst::EngineMode::kFlat &&
        !smst::SupportsFlatEngine(algo, opt)) {
      std::cerr << "error: --engine flat is not lowered for "
                << smst::MstAlgorithmName(algo)
                << " (supported: randomized, deterministic with the "
                   "fast-awake coloring); use --engine coroutine\n";
      return 2;
    }
    const std::uint64_t num_seeds = args.GetUint("seeds", 1);
    const auto threads = static_cast<unsigned>(args.GetUint("threads", 0));
    if (auto unused = args.UnusedFlags(); !unused.empty()) {
      std::cerr << "unknown flag --" << unused.front() << " (see --help)\n";
      return 2;
    }

    if (num_seeds > 1) {
      // Multi-seed sweep: the same graph under seeds seed..seed+K-1, run
      // across the thread pool; per-seed rows plus a mean/worst summary.
      std::vector<smst::RunSpec> specs(num_seeds);
      for (std::uint64_t s = 0; s < num_seeds; ++s) {
        specs[s] = smst::RunSpec{&g, algo, opt, seed + s};
      }
      smst::ParallelRunner runner(threads);
      const auto runs = runner.RunAll(specs);

      smst::Table t({"seed", "awake max", "awake avg", "rounds", "messages",
                     "phases", "verdict"});
      double awake_sum = 0, rounds_sum = 0;
      std::uint64_t awake_worst = 0;
      bool all_ok = true;
      for (std::uint64_t s = 0; s < num_seeds; ++s) {
        const auto& r = runs[s];
        std::string verdict = "spanning tree";
        if (faulted) {
          // Under an adversary the verdict is the classified outcome; a
          // completed run that is not the exact MST is a wrong result.
          auto status = r.outcome.status;
          if (status == smst::RunStatus::kCompleted &&
              algo != smst::MstAlgorithm::kBmSpanningTree &&
              !smst::VerifyExactMst(g, r.tree_edges).ok) {
            status = smst::RunStatus::kWrongResult;
          }
          verdict = smst::RunStatusName(status);
        } else if (algo != smst::MstAlgorithm::kBmSpanningTree) {
          auto check = smst::VerifyExactMst(g, r.tree_edges);
          verdict = check.ok ? "exact MST" : "FAILED: " + check.error;
          all_ok = all_ok && check.ok;
        }
        awake_sum += static_cast<double>(r.stats.max_awake);
        rounds_sum += static_cast<double>(r.stats.rounds);
        awake_worst = std::max(awake_worst, r.stats.max_awake);
        t.AddRow({smst::Table::Num(seed + s),
                  smst::Table::Num(r.stats.max_awake),
                  smst::Table::Num(r.stats.avg_awake, 2),
                  smst::Table::Num(r.stats.rounds),
                  smst::Table::Num(r.stats.total_messages),
                  smst::Table::Num(r.phases), verdict});
      }
      std::cout << smst::MstAlgorithmName(algo) << " on n=" << g.NumNodes()
                << " m=" << g.NumEdges() << " N=" << g.MaxId() << ": "
                << num_seeds << " seeded runs on " << runner.Threads()
                << " threads\n";
      if (!quiet) t.Print(std::cout);
      std::cout << "mean awake=" << awake_sum / double(num_seeds)
                << " worst awake=" << awake_worst
                << " mean rounds=" << rounds_sum / double(num_seeds)
                << (all_ok ? "" : "  [VERIFICATION FAILURES]") << "\n";
      return all_ok ? 0 : 1;
    }

    const auto r = smst::ComputeMst(g, algo, opt);
    std::string verdict = "spanning tree";
    smst::RunOutcome outcome = r.outcome;
    if (faulted) {
      if (outcome.Ok() && algo != smst::MstAlgorithm::kBmSpanningTree) {
        auto check = smst::VerifyExactMst(g, r.tree_edges);
        if (!check.ok) {
          outcome.status = smst::RunStatus::kWrongResult;
          outcome.detail = check.error;
        }
      }
      verdict = std::string("outcome=") + smst::RunStatusName(outcome.status);
    } else if (algo != smst::MstAlgorithm::kBmSpanningTree) {
      auto check = smst::VerifyExactMst(g, r.tree_edges);
      verdict = check.ok ? "exact MST (verified)" : "FAILED: " + check.error;
    }

    std::cout << smst::MstAlgorithmName(algo) << " on n=" << g.NumNodes()
              << " m=" << g.NumEdges() << " N=" << g.MaxId() << ": " << verdict
              << " | awake=" << r.stats.max_awake
              << " rounds=" << r.stats.rounds << " phases=" << r.phases
              << "\n";
    if (!quiet) {
      smst::Table t({"metric", "value"});
      t.AddRow({"tree weight",
                smst::Table::Num(g.TotalWeight(r.tree_edges))});
      t.AddRow({"awake complexity (max)", smst::Table::Num(r.stats.max_awake)});
      t.AddRow({"awake (node-averaged)",
                smst::Table::Num(r.stats.avg_awake, 2)});
      t.AddRow({"round complexity", smst::Table::Num(r.stats.rounds)});
      t.AddRow({"messages", smst::Table::Num(r.stats.total_messages)});
      t.AddRow({"bits sent", smst::Table::Num(r.stats.total_bits)});
      t.AddRow({"largest message (bits)",
                smst::Table::Num(r.stats.max_message_bits)});
      t.AddRow({"dropped messages", smst::Table::Num(r.stats.dropped_messages)});
      std::vector<double> awakes;
      for (const auto& m : r.node_metrics) {
        awakes.push_back(static_cast<double>(m.awake_rounds));
      }
      const auto s = smst::Summarize(awakes);
      t.AddRow({"awake per node min/median/max",
                smst::Table::Num(s.min, 0) + " / " +
                    smst::Table::Num(s.median, 0) + " / " +
                    smst::Table::Num(s.max, 0)});
      t.Print(std::cout);
    }
    if (faulted) {
      const smst::FaultStats& f = outcome.faults;
      std::cout << "fault-plan '" << fault_plan.ToString() << "': "
                << smst::RunStatusName(outcome.status)
                << (outcome.detail.empty() ? "" : " (" + outcome.detail + ")")
                << "\n  injected: drops=" << f.injected_drops
                << " delays=" << f.injected_delays << " (delivered "
                << f.delayed_delivered << ", lost " << f.delayed_lost
                << ") dups=" << f.injected_duplicates
                << " jittered=" << f.jittered_wakes
                << " crashed=" << f.crashed_nodes << " ("
                << f.suppressed_wakes << " wakes suppressed)"
                << "\n  unfinished nodes=" << outcome.unfinished_nodes
                << " last round=" << outcome.last_round;
      if (outcome.audited_awake_node_rounds != 0 ||
          outcome.audit_violations != 0) {
        std::cout << " | audit: awake node-rounds="
                  << outcome.audited_awake_node_rounds
                  << " model drops=" << outcome.audited_model_drops
                  << " violations=" << outcome.audit_violations;
      }
      std::cout << "\n";
    }
    if (!dot_path.empty()) {
      std::ofstream dot(dot_path);
      if (!dot) {
        std::cerr << "cannot write '" << dot_path << "'\n";
        return 2;
      }
      smst::WriteDot(g, r.tree_edges, dot);
      std::cout << "wrote " << dot_path << " (render: dot -Tsvg " << dot_path
                << " -o tree.svg)\n";
    }
    if (energy != "off") {
      smst::EnergyModel model = smst::EnergyModel::SensorMote();
      if (energy == "wifi") model = smst::EnergyModel::WifiStation();
      else if (energy == "ble") model = smst::EnergyModel::BleBeacon();
      else if (energy != "mote") {
        std::cerr << "unknown --energy '" << energy << "'\n";
        return 2;
      }
      const auto bill = smst::BillRun(r.stats, r.node_metrics, model);
      std::cout << "energy(" << energy << "): total=" << bill.total
                << "uJ worst-node=" << bill.max_per_node
                << "uJ awake-share=" << bill.awake_share
                << " runs-per-1J-battery="
                << smst::RunsPerBattery(bill, 1.0) << "\n";
    }
    return verdict.rfind("FAILED", 0) == 0 ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
