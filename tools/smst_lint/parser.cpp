#include "parser.h"

namespace smst_lint {
namespace {

// Spans of `class`/`struct` bodies, innermost last, for attributing
// in-class member functions. `enum class` and forward declarations
// (`class X;`) produce no span.
struct ClassSpan {
  std::string name;
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};

std::vector<ClassSpan> FindClassSpans(const Tokens& t,
                                      const std::vector<std::size_t>& match) {
  std::vector<ClassSpan> spans;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].IsIdent("class") && !t[i].IsIdent("struct")) continue;
    if (i > 0 && t[i - 1].IsIdent("enum")) continue;
    if (t[i + 1].kind != Token::Kind::kIdent) continue;
    const std::string& name = t[i + 1].text;
    // Scan past the name (and any `final` / base-clause) to `{` or `;`.
    std::size_t k = i + 2;
    while (k < t.size() && !t[k].Is("{") && !t[k].Is(";") && !t[k].Is("(") &&
           !t[k].Is(")") && !t[k].Is("}")) {
      if (t[k].Is("<")) {  // template-id in a base clause; hop over it
        int depth = 0;
        for (; k < t.size(); ++k) {
          if (t[k].Is("<")) ++depth;
          if (t[k].Is(">") && --depth == 0) break;
          if (t[k].Is(">>") && (depth -= 2) <= 0) break;
        }
      }
      ++k;
    }
    if (k >= t.size() || !t[k].Is("{")) continue;
    const std::size_t close = match[k];
    if (close == kNoMatch) continue;
    spans.push_back(ClassSpan{name, k, close});
  }
  return spans;
}

}  // namespace

bool IsAnyOf(const Token& tok, std::initializer_list<std::string_view> set) {
  for (std::string_view s : set) {
    if (tok.text == s) return true;
  }
  return false;
}

std::size_t MatchForward(const Tokens& t, std::size_t open,
                         std::string_view open_s, std::string_view close_s) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].Is(open_s)) ++depth;
    if (t[i].Is(close_s) && --depth == 0) return i;
  }
  return t.size();
}

std::size_t MatchBackward(const Tokens& t, std::size_t close,
                          std::string_view open_s, std::string_view close_s) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (t[i].Is(close_s)) ++depth;
    if (t[i].Is(open_s) && --depth == 0) return i;
  }
  return 0;
}

ParsedFile Parse(const LexedFile& file) {
  ParsedFile out;
  out.file = &file;
  const Tokens& t = file.tokens;

  // One-pass bracket map. Mismatched pairs (possible under heavy macro
  // use) simply stay kNoMatch; rules treat that as "no structure here".
  out.match.assign(t.size(), kNoMatch);
  std::vector<std::size_t> braces, parens, squares;
  for (std::size_t i = 0; i < t.size(); ++i) {
    std::vector<std::size_t>* stack = nullptr;
    bool close = false;
    if (t[i].Is("{")) {
      stack = &braces;
    } else if (t[i].Is("(")) {
      stack = &parens;
    } else if (t[i].Is("[")) {
      stack = &squares;
    } else if (t[i].Is("}")) {
      stack = &braces;
      close = true;
    } else if (t[i].Is(")")) {
      stack = &parens;
      close = true;
    } else if (t[i].Is("]")) {
      stack = &squares;
      close = true;
    }
    if (stack == nullptr) continue;
    if (!close) {
      stack->push_back(i);
    } else if (!stack->empty()) {
      out.match[stack->back()] = i;
      out.match[i] = stack->back();
      stack->pop_back();
    }
  }

  const std::vector<ClassSpan> classes = FindClassSpans(t, out.match);

  // Function extraction: a candidate body is a `{` preceded (modulo
  // cv/noexcept specifiers and constructor init lists) by `name(...)`.
  // Lambdas are excluded: their tokens stay inside the enclosing
  // function's span.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].Is("{")) continue;

    std::size_t j = i;
    while (j > 0 && IsAnyOf(t[j - 1], {"const", "noexcept", "override",
                                       "final", "mutable", "&", "&&"})) {
      --j;
    }
    if (j == 0 || !t[j - 1].Is(")")) continue;

    // Walk back through `) [: init-list]` to the parameter list of the
    // function itself.
    std::size_t close = j - 1;
    std::size_t name_idx = 0;
    std::size_t params_open = 0;
    while (true) {
      const std::size_t open = MatchBackward(t, close, "(", ")");
      if (open == 0) break;
      const Token& before = t[open - 1];
      if (before.kind != Token::Kind::kIdent) break;
      if (IsAnyOf(before, {"if", "for", "while", "switch", "catch", "return",
                           "co_await", "co_return", "sizeof", "alignof",
                           "noexcept", "new", "delete"})) {
        break;  // control flow / operator, not a function header
      }
      // Constructor init-list entry? Keep walking left.
      if (open >= 2 && (t[open - 2].Is(",") || t[open - 2].Is(":")) &&
          open >= 3 && t[open - 3].Is(")")) {
        close = open - 3;
        continue;
      }
      if (open >= 2 && (t[open - 2].Is(",") || t[open - 2].Is(":"))) {
        // `: member_(x) {` where the thing left of `:`/`,` is not `)` —
        // first init entry; hop over the `:` to the parameter list.
        std::size_t k = open - 2;
        while (k > 0 && !t[k].Is(":")) k = MatchBackward(t, k, "(", ")") - 1;
        if (k > 0 && t[k - 1].Is(")")) {
          close = k - 1;
          continue;
        }
      }
      name_idx = open - 1;
      params_open = open;
      break;
    }
    if (name_idx == 0) continue;

    Fn fn;
    fn.name = t[name_idx].text;
    fn.line = t[i].line;
    fn.params_begin = params_open;
    fn.params_end = out.match[params_open] != kNoMatch
                        ? out.match[params_open]
                        : MatchForward(t, params_open, "(", ")");
    fn.body_begin = i;
    fn.body_end =
        out.match[i] != kNoMatch ? out.match[i] : MatchForward(t, i, "{", "}");

    // Enclosing class: out-of-line qualification wins, then the innermost
    // class body span containing this function.
    if (name_idx >= 2 && t[name_idx - 1].Is("::") &&
        t[name_idx - 2].kind == Token::Kind::kIdent) {
      fn.class_name = t[name_idx - 2].text;
    } else {
      for (const ClassSpan& c : classes) {
        if (c.body_begin < name_idx && fn.body_end < c.body_end) {
          fn.class_name = c.name;  // spans are in opening order; keep last
        }
      }
    }

    // Return type: scan left of the name for `Task <`.
    for (std::size_t k = name_idx; k-- > 0;) {
      const Token& tok = t[k];
      if (IsAnyOf(tok, {";", "}", "{", ")", "(", "public", "private",
                        "protected"})) {
        break;
      }
      if (tok.IsIdent("Task") && k + 1 < t.size() && t[k + 1].Is("<")) {
        fn.returns_task = true;
        fn.task_void =
            k + 2 < t.size() && (t[k + 2].Is("void") || t[k + 2].Is(">"));
        break;
      }
    }

    for (std::size_t k = fn.body_begin; k < fn.body_end; ++k) {
      if (t[k].IsIdent("co_await") || t[k].IsIdent("co_yield")) {
        fn.has_co_await = true;
      }
      if (t[k].IsIdent("co_return")) fn.has_co_return = true;
    }
    out.fns.push_back(std::move(fn));
  }
  return out;
}

}  // namespace smst_lint
