// smst_lint SARIF output: serializes findings as a SARIF 2.1.0 log so CI
// systems (GitHub code scanning et al.) can ingest lint results natively.
//
// One run, one tool ("smst_lint"), every rule from AllRules() in the
// driver's rules array. Baselined findings are emitted with an external
// suppression rather than dropped, so the SARIF log is the complete
// picture and consumers decide what to surface.
#pragma once

#include <string>
#include <vector>

#include "rules.h"

namespace smst_lint {

// `version` stamps tool.driver.version.
std::string SarifReport(const std::vector<Finding>& findings,
                        std::string_view version);

}  // namespace smst_lint
