#include "sarif.h"

#include <cstdio>

namespace smst_lint {
namespace {

std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string SarifReport(const std::vector<Finding>& findings,
                        std::string_view version) {
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"smst_lint\",\n";
  out += "          \"version\": \"" + std::string(version) + "\",\n";
  out +=
      "          \"informationUri\": "
      "\"https://example.invalid/smst/tools/smst_lint\",\n"
      "          \"rules\": [\n";
  const auto& rules = AllRules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out += "            {\"id\": \"" + std::string(rules[i].id) +
           "\", \"shortDescription\": {\"text\": \"" +
           Escape(std::string(rules[i].summary)) + "\"}}";
    out += i + 1 < rules.size() ? ",\n" : "\n";
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "        {\n";
    out += "          \"ruleId\": \"" + Escape(f.rule) + "\",\n";
    out += "          \"level\": \"error\",\n";
    out += "          \"message\": {\"text\": \"" + Escape(f.message) +
           "\"},\n";
    out +=
        "          \"locations\": [{\"physicalLocation\": "
        "{\"artifactLocation\": {\"uri\": \"" +
        Escape(f.file) + "\"}, \"region\": {\"startLine\": " +
        std::to_string(f.line) + "}}}]";
    if (f.baselined) {
      out += ",\n          \"suppressions\": [{\"kind\": \"external\"}]\n";
    } else {
      out += "\n";
    }
    out += "        }";
    out += i + 1 < findings.size() ? ",\n" : "\n";
  }
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace smst_lint
