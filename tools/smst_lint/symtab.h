// smst_lint symbol table: per-function declarations with heuristic types
// and scope extents.
//
// Built once per function span from the parsed token tree. Declarations
// are recognized by shape, not by name lookup:
//
//   Type [<args>] [const] [&|&&|*]... name  ( = | ; | { | , in a header )
//   auto [a, b, ...] = ...                       (structured bindings)
//   for (Type x : range) / if (auto m = ...; ...)  (header-scoped)
//
// A symbol's `type` is the last type-ish identifier left of its name
// (template arguments skipped), which is exactly enough for the rules:
// "is this an unordered container", "is this per-shard Scheduler/Metrics
// state". Its scope is the innermost brace block containing the
// declaration — extended to the controlled statement for declarations in
// `for`/`if`/`while`/`switch` headers — so reads can be tested for
// "after this resume point but still in scope".
//
// What this cannot see (by design): typedefs/aliases, class member
// variables of other TUs, overloads, templates as templates. Rules that
// need more must stay heuristic or move to a real front end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "parser.h"

namespace smst_lint {

struct Symbol {
  std::string name;
  std::string type;  // heuristic; "auto" when deduced or unknown
  std::uint32_t line = 0;
  std::size_t decl_index = 0;   // token index of the name
  std::size_t scope_begin = 0;  // token range in which the symbol is visible
  std::size_t scope_end = 0;
  bool is_param = false;
};

class SymbolTable {
 public:
  // Builds the table for one function: parameters plus body declarations.
  static SymbolTable Build(const Tokens& t, const ParsedFile& parsed,
                           const Fn& fn);

  // Innermost symbol named `name` whose scope covers token index `at`
  // and whose declaration precedes it; nullptr when none.
  const Symbol* LookupAt(std::string_view name, std::size_t at) const;

  const std::vector<Symbol>& All() const { return symbols_; }

 private:
  std::vector<Symbol> symbols_;
};

}  // namespace smst_lint
