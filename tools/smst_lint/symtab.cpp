#include "symtab.h"

namespace smst_lint {
namespace {

// Identifiers that can never be a declared variable's name or type.
bool IsReservedWord(const Token& tok) {
  return IsAnyOf(tok, {"return",   "co_return", "co_await", "co_yield",
                       "if",       "else",      "for",      "while",
                       "do",       "switch",    "case",     "default",
                       "break",    "continue",  "goto",     "throw",
                       "new",      "delete",    "sizeof",   "alignof",
                       "operator", "template",  "typename", "using",
                       "namespace", "class",    "struct",   "enum",
                       "public",   "private",   "protected", "static_assert"});
}

// Walks back from the token before a declared name to the type-ish
// identifier, skipping cv/ref/pointer decorations and template argument
// lists. Returns "" when the shape is not a declaration.
std::string TypeLeftOf(const Tokens& t, std::size_t name_idx) {
  std::size_t k = name_idx;
  while (k > 0 &&
         (t[k - 1].Is("&") || t[k - 1].Is("&&") || t[k - 1].Is("*") ||
          t[k - 1].IsIdent("const") || t[k - 1].IsIdent("constexpr"))) {
    --k;
  }
  if (k == 0) return "";
  if (t[k - 1].Is(">") || t[k - 1].Is(">>")) {
    // Skip the template argument list backwards. `>>` closes two.
    int depth = 0;
    std::size_t i = k;
    while (i-- > 0) {
      if (t[i].Is(">")) ++depth;
      if (t[i].Is(">>")) depth += 2;
      if (t[i].Is("<") && --depth == 0) break;
      if (t[i].Is(";") || t[i].Is("{") || t[i].Is("}")) return "";
    }
    if (i == 0 || depth != 0) return "";
    k = i;  // now at `<`; the type name is just left of it
  }
  if (k == 0 || t[k - 1].kind != Token::Kind::kIdent ||
      IsReservedWord(t[k - 1])) {
    return "";
  }
  return t[k - 1].text;
}

}  // namespace

SymbolTable SymbolTable::Build(const Tokens& t, const ParsedFile& parsed,
                               const Fn& fn) {
  SymbolTable table;

  // --- Parameters: split the parameter list at top-level commas. -------
  if (fn.params_end > fn.params_begin) {
    std::size_t chunk_start = fn.params_begin + 1;
    int depth = 0;
    for (std::size_t i = fn.params_begin + 1; i <= fn.params_end; ++i) {
      const bool at_end = i == fn.params_end;
      if (!at_end) {
        if (t[i].Is("(") || t[i].Is("[") || t[i].Is("{") || t[i].Is("<")) {
          ++depth;
        }
        if (t[i].Is(")") || t[i].Is("]") || t[i].Is("}") || t[i].Is(">")) {
          --depth;
        }
        if (t[i].Is(">>")) depth -= 2;
      }
      if (!at_end && (!t[i].Is(",") || depth != 0)) continue;
      // Chunk [chunk_start, i): the name is the last identifier before a
      // default-argument `=` (if any). Unnamed parameters have no
      // plausible type left of that identifier and are dropped.
      std::size_t effective_end = i;
      for (std::size_t k = chunk_start; k < i; ++k) {
        if (t[k].Is("=")) {
          effective_end = k;
          break;
        }
      }
      std::size_t name_idx = kNoMatch;
      if (effective_end > chunk_start) {
        const std::size_t last = effective_end - 1;
        if (t[last].kind == Token::Kind::kIdent && !IsReservedWord(t[last]) &&
            !t[last].Is("void") && !t[last].Is("const")) {
          name_idx = last;
        }
      }
      if (name_idx != kNoMatch && name_idx > chunk_start) {
        Symbol s;
        s.name = t[name_idx].text;
        s.type = TypeLeftOf(t, name_idx);
        s.line = t[name_idx].line;
        s.decl_index = name_idx;
        s.scope_begin = fn.body_begin;
        s.scope_end = fn.body_end;
        s.is_param = true;
        if (!s.type.empty()) table.symbols_.push_back(std::move(s));
      }
      chunk_start = i + 1;
    }
  }

  // --- Body declarations. ----------------------------------------------
  // Control-flow headers extend a header declaration's scope over the
  // controlled statement: record (header `(`, controlled end) pairs.
  struct HeaderScope {
    std::size_t open = 0, close = 0, stmt_end = 0;
  };
  std::vector<HeaderScope> headers;
  for (std::size_t i = fn.body_begin; i + 1 < fn.body_end; ++i) {
    if (!IsAnyOf(t[i], {"for", "if", "while", "switch", "catch"}) ||
        t[i].kind != Token::Kind::kIdent || !t[i + 1].Is("(")) {
      continue;
    }
    HeaderScope h;
    h.open = i + 1;
    h.close = parsed.match[h.open] != kNoMatch
                  ? parsed.match[h.open]
                  : MatchForward(t, h.open, "(", ")");
    if (h.close >= fn.body_end) continue;
    std::size_t after = h.close + 1;
    if (after < fn.body_end && t[after].Is("{")) {
      h.stmt_end = parsed.match[after] != kNoMatch
                       ? parsed.match[after]
                       : MatchForward(t, after, "{", "}");
    } else {
      while (after < fn.body_end && !t[after].Is(";")) ++after;
      h.stmt_end = after;
    }
    headers.push_back(h);
  }

  auto scope_for = [&](std::size_t decl_idx) -> std::pair<std::size_t,
                                                          std::size_t> {
    // Header declarations live to the end of the controlled statement.
    for (std::size_t h = headers.size(); h-- > 0;) {
      if (headers[h].open < decl_idx && decl_idx < headers[h].close) {
        return {headers[h].open, headers[h].stmt_end};
      }
    }
    // Otherwise: the innermost brace block containing the declaration.
    std::size_t begin = fn.body_begin, end = fn.body_end;
    for (std::size_t k = fn.body_begin; k < decl_idx; ++k) {
      if (!t[k].Is("{")) continue;
      const std::size_t close = parsed.match[k];
      if (close != kNoMatch && close > decl_idx && k > begin &&
          close < end) {
        begin = k;
        end = close;
      }
    }
    return {begin, end};
  };

  auto in_for_header = [&](std::size_t idx) {
    for (const HeaderScope& h : headers) {
      if (h.open < idx && idx < h.close) return true;
    }
    return false;
  };

  for (std::size_t i = fn.body_begin + 1; i + 1 < fn.body_end; ++i) {
    // Structured bindings: auto [cv/ref] `[` a, b `]`.
    if (t[i].Is("[") && i > 0) {
      std::size_t q = i;
      while (q > fn.body_begin &&
             (t[q - 1].Is("&") || t[q - 1].Is("&&") ||
              t[q - 1].IsIdent("const"))) {
        --q;
      }
      if (q > fn.body_begin && t[q - 1].IsIdent("auto")) {
        const std::size_t close = parsed.match[i] != kNoMatch
                                      ? parsed.match[i]
                                      : MatchForward(t, i, "[", "]");
        const auto [sb, se] = scope_for(i);
        for (std::size_t k = i + 1; k < close && k < fn.body_end; ++k) {
          if (t[k].kind != Token::Kind::kIdent) continue;
          Symbol s;
          s.name = t[k].text;
          s.type = "auto";
          s.line = t[k].line;
          s.decl_index = k;
          s.scope_begin = sb;
          s.scope_end = se;
          table.symbols_.push_back(std::move(s));
        }
        i = close;
        continue;
      }
    }

    if (t[i].kind != Token::Kind::kIdent || IsReservedWord(t[i])) continue;
    const Token& next = t[i + 1];
    // Declaration tails: `= init`, `;`, `{init}`, `(init)` is too
    // call-ambiguous to accept, and `:` only inside a range-for header.
    const bool eq_tail = next.Is("=") && !(i + 2 < fn.body_end &&
                                           t[i + 2].Is("="));  // not `==`
    const bool tail = eq_tail || next.Is(";") || next.Is("{") ||
                      (next.Is(":") && in_for_header(i + 1));
    if (!tail) continue;
    // `a = b` where `a` is a member (`x.a = ...`) or a known comparison
    // (`a == b` handled above) is not a declaration; TypeLeftOf rejects
    // everything without a plausible type to its left.
    const std::string type = TypeLeftOf(t, i);
    if (type.empty()) continue;

    const auto [sb, se] = scope_for(i);
    Symbol s;
    s.name = t[i].text;
    s.type = type;
    s.line = t[i].line;
    s.decl_index = i;
    s.scope_begin = sb;
    s.scope_end = se;
    table.symbols_.push_back(std::move(s));
  }
  return table;
}

const Symbol* SymbolTable::LookupAt(std::string_view name,
                                    std::size_t at) const {
  const Symbol* best = nullptr;
  for (const Symbol& s : symbols_) {
    if (s.name != name) continue;
    if (s.decl_index > at || at > s.scope_end) continue;
    if (best == nullptr || s.scope_begin >= best->scope_begin) best = &s;
  }
  return best;
}

}  // namespace smst_lint
