#include "rules.h"

#include <algorithm>
#include <map>
#include <set>
#include <string_view>

namespace smst_lint {
namespace {

using Tokens = std::vector<Token>;

// ---------------------------------------------------------------------------
// Path scoping. Rules that only make sense for protocol code key off the
// directory segment, not the full prefix, so the fixture corpus under
// tests/lint_fixtures/<segment>/ exercises them too.
// ---------------------------------------------------------------------------

bool HasDirSegment(std::string_view path, std::string_view segment) {
  std::size_t pos = 0;
  while ((pos = path.find(segment, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || path[pos - 1] == '/';
    const std::size_t end = pos + segment.size();
    const bool right_ok = end < path.size() && path[end] == '/';
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

// Protocol dirs: iteration order / container choice can leak into message
// contents and round behavior.
bool InProtocolDir(std::string_view path) {
  return HasDirSegment(path, "mst") || HasDirSegment(path, "sleeping") ||
         HasDirSegment(path, "lower_bounds") || HasDirSegment(path, "energy");
}

// Algorithm dirs: node programs live here; the simulator internals are off
// limits (the sleeping model's locality boundary).
bool InAlgoDir(std::string_view path) {
  return HasDirSegment(path, "mst") || HasDirSegment(path, "sleeping");
}

// ---------------------------------------------------------------------------
// Token-walk helpers.
// ---------------------------------------------------------------------------

std::size_t MatchForward(const Tokens& t, std::size_t open,
                         std::string_view open_s, std::string_view close_s) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].Is(open_s)) ++depth;
    if (t[i].Is(close_s) && --depth == 0) return i;
  }
  return t.size();
}

std::size_t MatchBackward(const Tokens& t, std::size_t close,
                          std::string_view open_s, std::string_view close_s) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (t[i].Is(close_s)) ++depth;
    if (t[i].Is(open_s) && --depth == 0) return i;
  }
  return 0;
}

bool IsAnyOf(const Token& tok, std::initializer_list<std::string_view> set) {
  for (std::string_view s : set) {
    if (tok.text == s) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Function extraction. A candidate body is a `{` preceded (modulo
// cv/noexcept specifiers and constructor init lists) by `name(...)`.
// Lambdas are excluded (their tokens stay inside the enclosing function's
// span). This is a heuristic: local classes and function-try-blocks are
// imperfectly handled, which is acceptable for lint purposes.
// ---------------------------------------------------------------------------

struct Fn {
  std::string name;
  std::uint32_t line = 0;        // line of the body's `{`
  std::size_t body_begin = 0;    // index of `{`
  std::size_t body_end = 0;      // index of matching `}` (or tokens.size())
  bool returns_task = false;     // declared return type names Task<...>
  bool task_void = false;        // ... and the payload is void / empty
  bool has_co_await = false;
  bool has_co_return = false;
};

std::vector<Fn> FindFunctions(const Tokens& t) {
  std::vector<Fn> fns;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].Is("{")) continue;

    // Scan back over trailing specifiers.
    std::size_t j = i;
    while (j > 0 && IsAnyOf(t[j - 1], {"const", "noexcept", "override",
                                       "final", "mutable", "&", "&&"})) {
      --j;
    }
    if (j == 0 || !t[j - 1].Is(")")) continue;

    // Walk back through `) [: init-list]` to the parameter list of the
    // function itself.
    std::size_t close = j - 1;
    std::size_t name_idx = 0;
    while (true) {
      const std::size_t open = MatchBackward(t, close, "(", ")");
      if (open == 0) break;
      const Token& before = t[open - 1];
      if (before.kind != Token::Kind::kIdent) break;
      if (IsAnyOf(before, {"if", "for", "while", "switch", "catch", "return",
                           "co_await", "co_return", "sizeof", "alignof",
                           "noexcept", "new", "delete"})) {
        break;  // control flow / operator, not a function header
      }
      // Constructor init-list entry? Keep walking left.
      if (open >= 2 && (t[open - 2].Is(",") || t[open - 2].Is(":")) &&
          open >= 3 && t[open - 3].Is(")")) {
        close = open - 3;
        continue;
      }
      if (open >= 2 && (t[open - 2].Is(",") || t[open - 2].Is(":"))) {
        // `: member_(x) {` where the thing left of `:`/`,` is not `)` —
        // first init entry; hop over the `:` to the parameter list.
        std::size_t k = open - 2;
        while (k > 0 && !t[k].Is(":")) k = MatchBackward(t, k, "(", ")") - 1;
        if (k > 0 && t[k - 1].Is(")")) {
          close = k - 1;
          continue;
        }
      }
      name_idx = open - 1;
      break;
    }
    if (name_idx == 0) continue;

    Fn fn;
    fn.name = t[name_idx].text;
    fn.line = t[i].line;
    fn.body_begin = i;
    fn.body_end = MatchForward(t, i, "{", "}");

    // Return type: scan left of the name for `Task <`.
    for (std::size_t k = name_idx; k-- > 0;) {
      const Token& tok = t[k];
      if (IsAnyOf(tok, {";", "}", "{", ")", "(", "public", "private",
                        "protected"})) {
        break;
      }
      if (tok.IsIdent("Task") && k + 1 < t.size() && t[k + 1].Is("<")) {
        fn.returns_task = true;
        fn.task_void =
            k + 2 < t.size() && (t[k + 2].Is("void") || t[k + 2].Is(">"));
        break;
      }
    }

    for (std::size_t k = fn.body_begin; k < fn.body_end; ++k) {
      if (t[k].IsIdent("co_await") || t[k].IsIdent("co_yield")) {
        fn.has_co_await = true;
      }
      if (t[k].IsIdent("co_return")) fn.has_co_return = true;
    }
    fns.push_back(std::move(fn));
  }
  return fns;
}

// ---------------------------------------------------------------------------
// Shared small detectors.
// ---------------------------------------------------------------------------

const std::set<std::string_view> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

bool IsMemberAccess(const Tokens& t, std::size_t i) {
  return i > 0 && (t[i - 1].Is(".") || t[i - 1].Is("->"));
}

// Locals declared as unordered containers within [begin, end):
// `unordered_xxx < ... > [&*]* name`.
std::map<std::string, std::uint32_t> UnorderedLocals(const Tokens& t,
                                                     std::size_t begin,
                                                     std::size_t end) {
  std::map<std::string, std::uint32_t> vars;
  for (std::size_t i = begin; i < end; ++i) {
    if (t[i].kind != Token::Kind::kIdent || !kUnorderedTypes.count(t[i].text)) {
      continue;
    }
    if (i + 1 >= end || !t[i + 1].Is("<")) continue;
    std::size_t gt = i + 1;
    int depth = 0;
    for (; gt < end; ++gt) {
      if (t[gt].Is("<")) ++depth;
      if (t[gt].Is(">") && --depth == 0) break;
      if (t[gt].Is(">>")) {
        depth -= 2;
        if (depth <= 0) break;
      }
    }
    std::size_t k = gt + 1;
    while (k < end && (t[k].Is("&") || t[k].Is("*"))) ++k;
    if (k < end && t[k].kind == Token::Kind::kIdent) {
      vars.emplace(t[k].text, t[k].line);
    }
  }
  return vars;
}

// ---------------------------------------------------------------------------
// The rule packs.
// ---------------------------------------------------------------------------

class Analysis {
 public:
  explicit Analysis(const LexedFile& file)
      : file_(file), t_(file.tokens), fns_(FindFunctions(file.tokens)) {}

  std::vector<Finding> Run() {
    DeterminismPack();
    CongestPack();
    CoroutinePack();

    std::vector<Finding> kept;
    for (Finding& f : findings_) {
      if (!file_.suppressions.Suppressed(f.line, f.rule)) {
        kept.push_back(std::move(f));
      }
    }
    std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
      return a.line != b.line ? a.line < b.line : a.rule < b.rule;
    });
    return kept;
  }

 private:
  void Flag(std::uint32_t line, std::string_view rule,
            std::string_view message) {
    findings_.push_back(
        Finding{file_.path, line, std::string(rule), std::string(message)});
  }

  // --- determinism ------------------------------------------------------
  void DeterminismPack() {
    const auto unordered_vars = UnorderedLocals(t_, 0, t_.size());
    const bool protocol_dir = InProtocolDir(file_.path);

    for (std::size_t i = 0; i < t_.size(); ++i) {
      const Token& tok = t_[i];
      if (tok.kind != Token::Kind::kIdent) continue;
      // A banned name preceded by a type-ish identifier is a declaration
      // (`int rand() ...` declares a member, it doesn't call libc).
      const bool declared =
          i > 0 && t_[i - 1].kind == Token::Kind::kIdent &&
          !IsAnyOf(t_[i - 1], {"return", "co_return", "co_await", "co_yield",
                               "else", "do", "case"});
      const bool called =
          i + 1 < t_.size() && t_[i + 1].Is("(") && !declared;

      if (called && !IsMemberAccess(t_, i) &&
          IsAnyOf(tok, {"rand", "srand", "rand_r", "drand48", "lrand48",
                        "mrand48", "random_shuffle"})) {
        Flag(tok.line, "det-rand",
             "C library randomness is seeded ambiently and breaks replay; "
             "use the run's Xoshiro256 (util/prng.h)");
      }
      if (tok.Is("random_device")) {
        Flag(tok.line, "det-random-device",
             "std::random_device draws entropy outside the run seed; derive "
             "streams with Xoshiro256::Split instead");
      }
      if (called && !IsMemberAccess(t_, i) &&
          IsAnyOf(tok, {"time", "clock", "gettimeofday", "clock_gettime",
                        "localtime", "gmtime", "mktime"})) {
        Flag(tok.line, "det-wall-clock",
             "wall-clock reads make runs irreproducible; simulation time is "
             "Scheduler rounds, bench timing belongs in bench/");
      }
      if (IsAnyOf(tok, {"system_clock", "steady_clock",
                        "high_resolution_clock", "utc_clock", "file_clock"}) &&
          i + 2 < t_.size() && t_[i + 1].Is("::") && t_[i + 2].IsIdent("now")) {
        Flag(tok.line, "det-wall-clock",
             "std::chrono clock reads make runs irreproducible; simulation "
             "time is Scheduler rounds, bench timing belongs in bench/");
      }

      if (protocol_dir && kUnorderedTypes.count(tok.text)) {
        Flag(tok.line, "det-unordered-protocol",
             "unordered containers are banned in protocol code "
             "(mst/sleeping/lower_bounds/energy): hash order can leak into "
             "messages and round behavior; use a sorted flat container");
      }

      // Iteration-order exposure of an unordered local.
      if (kUnorderedTypes.count(tok.text)) continue;
      if (unordered_vars.count(tok.text) == 0) continue;
      if (i + 2 < t_.size() && t_[i + 1].Is(".") &&
          IsAnyOf(t_[i + 2], {"begin", "cbegin", "rbegin", "crbegin"}) &&
          i + 3 < t_.size() && t_[i + 3].Is("(")) {
        Flag(tok.line, "det-unordered-iter",
             "iterating an unordered container exposes hash order, which "
             "varies across libraries and ASLR; sort first, or suppress with "
             "a comment explaining why order is inert");
      }
    }

    // Range-for over an unordered local.
    for (std::size_t i = 0; i + 1 < t_.size(); ++i) {
      if (!t_[i].IsIdent("for") || !t_[i + 1].Is("(")) continue;
      const std::size_t close = MatchForward(t_, i + 1, "(", ")");
      for (std::size_t k = i + 2; k < close; ++k) {
        if (!t_[k].Is(":")) continue;
        if (k + 1 < close && t_[k + 1].kind == Token::Kind::kIdent &&
            unordered_vars.count(t_[k + 1].text)) {
          Flag(t_[k + 1].line, "det-unordered-iter",
               "iterating an unordered container exposes hash order, which "
               "varies across libraries and ASLR; sort first, or suppress "
               "with a comment explaining why order is inert");
        }
        break;  // only the range-for colon
      }
    }

    // Pointer-valued keys in ordered or unordered associative containers.
    for (std::size_t i = 0; i + 1 < t_.size(); ++i) {
      if (t_[i].kind != Token::Kind::kIdent ||
          !IsAnyOf(t_[i], {"map", "set", "unordered_map", "unordered_set",
                           "multimap", "multiset"})) {
        continue;
      }
      if (!t_[i + 1].Is("<")) continue;
      int depth = 0;
      std::size_t last = 0;  // last meaningful token of the first argument
      for (std::size_t k = i + 1; k < t_.size(); ++k) {
        if (t_[k].Is("<")) ++depth;
        if (t_[k].Is(">") && --depth == 0) break;
        if (t_[k].Is(">>") && (depth -= 2) <= 0) break;
        if (t_[k].Is(",") && depth == 1) break;
        last = k;
      }
      if (last != 0 && t_[last].Is("*")) {
        Flag(t_[i].line, "det-pointer-key",
             "pointer values as container keys order by address, which ASLR "
             "randomizes run to run; key by index or ID instead");
      }
    }
  }

  // --- sleeping-model / CONGEST ----------------------------------------
  void CongestPack() {
    if (InAlgoDir(file_.path)) {
      for (const Token& tok : t_) {
        if (tok.kind == Token::Kind::kIdent &&
            IsAnyOf(tok, {"Scheduler", "Simulator", "SimulatorOptions"})) {
          Flag(tok.line, "congest-scheduler-access",
               "algorithm code may only touch the network through "
               "NodeContext::Awake/SendBatch; Scheduler/Simulator access "
               "belongs to driver entry points (baseline those)");
        }
      }
    }

    // Lane packing (the coloring's Pack4 idiom: fields ORed into 16-bit
    // lanes) without a width guard in the same function.
    for (const Fn& fn : fns_) {
      std::set<std::string> shifts;
      std::uint32_t first_line = 0;
      bool guarded = false;
      for (std::size_t k = fn.body_begin; k < fn.body_end; ++k) {
        if (t_[k].Is("<<") && k + 1 < fn.body_end &&
            t_[k + 1].kind == Token::Kind::kNumber &&
            IsAnyOf(t_[k + 1], {"16", "32", "48"})) {
          shifts.insert(t_[k + 1].text);
          if (first_line == 0) first_line = t_[k].line;
        }
        if (t_[k].kind == Token::Kind::kIdent &&
            IsAnyOf(t_[k], {"assert", "static_assert", "throw"})) {
          guarded = true;
        }
      }
      if (shifts.size() >= 2 && !guarded) {
        Flag(first_line, "congest-lane-pack",
             "packing multiple values into 16-bit lanes without a width "
             "guard; values wider than a lane silently corrupt neighbors — "
             "assert each value fits before packing");
      }
    }
  }

  // --- coroutine safety -------------------------------------------------
  void CoroutinePack() {
    for (const Fn& fn : fns_) {
      if (fn.returns_task && !fn.task_void && fn.has_co_await &&
          !fn.has_co_return) {
        Flag(fn.line, "coro-missing-co-return",
             "value-returning Task coroutine never co_returns; flowing off "
             "the end of a non-void coroutine is undefined behavior");
      }
      if (!fn.has_co_await) continue;

      // By-reference lambda captures inside a coroutine.
      for (std::size_t k = fn.body_begin + 1; k < fn.body_end; ++k) {
        if (!t_[k].Is("[")) continue;
        if (k + 1 < fn.body_end && t_[k + 1].Is("[")) {  // [[attribute]]
          k = MatchForward(t_, k, "[", "]");
          continue;
        }
        // Subscript (`a[i]`, `](...)[0]`) vs lambda introducer.
        const Token& prev = t_[k - 1];
        const bool subscript = prev.kind == Token::Kind::kIdent
                                   ? !IsAnyOf(prev, {"return", "co_return",
                                                     "co_await", "co_yield"})
                                   : prev.Is("]") || prev.Is(")");
        const std::size_t close = MatchForward(t_, k, "[", "]");
        if (!subscript) {
          for (std::size_t m = k + 1; m < close; ++m) {
            if (t_[m].Is("&") || t_[m].Is("&&")) {
              Flag(t_[k].line, "coro-ref-capture",
                   "by-reference lambda capture inside a coroutine; if the "
                   "lambda outlives a suspension the captured frame slots "
                   "dangle — capture by value, or suppress with a note that "
                   "the lambda never crosses a co_await");
              break;
            }
          }
        }
        k = close;
      }

      // Address of a local escaping before a later co_await.
      std::set<std::string> locals;
      for (std::size_t k = fn.body_begin + 1; k + 1 < fn.body_end; ++k) {
        if (t_[k].kind != Token::Kind::kIdent) continue;
        const Token& prev = t_[k - 1];
        const Token& next = t_[k + 1];
        const bool decl_tail =
            next.Is("=") || next.Is(";") || next.Is("{");
        const bool type_ahead =
            (prev.kind == Token::Kind::kIdent &&
             !IsAnyOf(prev, {"return", "co_return", "co_await", "co_yield",
                             "delete", "new", "goto", "else", "do", "throw",
                             "case", "operator"})) ||
            prev.Is(">") || prev.Is("*") || prev.Is("&");
        if (decl_tail && type_ahead) locals.insert(t_[k].text);
      }
      std::size_t last_await = fn.body_begin;
      for (std::size_t k = fn.body_end; k-- > fn.body_begin;) {
        if (t_[k].IsIdent("co_await")) {
          last_await = k;
          break;
        }
      }
      for (std::size_t k = fn.body_begin + 1; k + 1 < last_await; ++k) {
        if (!t_[k].Is("&")) continue;
        if (!IsAnyOf(t_[k - 1], {"=", "(", ",", "return"})) continue;
        const Token& target = t_[k + 1];
        if (target.kind != Token::Kind::kIdent || !locals.count(target.text)) {
          continue;
        }
        if (k + 2 < t_.size() && t_[k + 2].Is("::")) continue;
        Flag(t_[k].line, "coro-local-addr",
             "address of a coroutine local escapes before a later co_await; "
             "if the consumer dereferences it while this coroutine is "
             "suspended the frame slot may be stale — pass by value or "
             "suppress with a why-safe note");
      }
    }
  }

  const LexedFile& file_;
  const Tokens& t_;
  std::vector<Fn> fns_;
  std::vector<Finding> findings_;
};

}  // namespace

const std::vector<RuleDesc>& AllRules() {
  static const std::vector<RuleDesc> kRules = {
      {"det-rand", "C library randomness (rand/srand/drand48/...)"},
      {"det-random-device", "std::random_device entropy outside the seed"},
      {"det-wall-clock", "wall-clock reads (time/clock/chrono ::now)"},
      {"det-unordered-iter", "iteration over an unordered container"},
      {"det-unordered-protocol",
       "unordered container in protocol dirs (mst/sleeping/lower_bounds/"
       "energy)"},
      {"det-pointer-key", "pointer values used as associative-container keys"},
      {"congest-scheduler-access",
       "Scheduler/Simulator access from algorithm dirs (mst/sleeping)"},
      {"congest-lane-pack", "16-bit lane packing without a width guard"},
      {"coro-ref-capture", "by-reference lambda capture in a coroutine"},
      {"coro-missing-co-return",
       "value-returning Task coroutine without co_return"},
      {"coro-local-addr", "local address escaping before a later co_await"},
  };
  return kRules;
}

std::vector<Finding> AnalyzeFile(const LexedFile& file) {
  return Analysis(file).Run();
}

}  // namespace smst_lint
