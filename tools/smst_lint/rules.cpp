#include "rules.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string_view>

#include "flow.h"
#include "parser.h"
#include "symtab.h"

namespace smst_lint {

std::string NormalizeLine(const std::string& line) {
  std::string out;
  bool pending_space = false;
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) out.push_back(' ');
    pending_space = false;
    out.push_back(c);
  }
  return out;
}

namespace {

// ---------------------------------------------------------------------------
// Path scoping. Rules that only make sense for protocol code key off the
// directory segment, not the full prefix, so the fixture corpus under
// tests/lint_fixtures/<segment>/ exercises them too.
// ---------------------------------------------------------------------------

bool HasDirSegment(std::string_view path, std::string_view segment) {
  std::size_t pos = 0;
  while ((pos = path.find(segment, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || path[pos - 1] == '/';
    const std::size_t end = pos + segment.size();
    const bool right_ok = end < path.size() && path[end] == '/';
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

// Protocol dirs: iteration order / container choice can leak into message
// contents and round behavior.
bool InProtocolDir(std::string_view path) {
  return HasDirSegment(path, "mst") || HasDirSegment(path, "sleeping") ||
         HasDirSegment(path, "lower_bounds") || HasDirSegment(path, "energy");
}

// Algorithm dirs: node programs live here; the simulator internals are off
// limits (the sleeping model's locality boundary).
bool InAlgoDir(std::string_view path) {
  return HasDirSegment(path, "mst") || HasDirSegment(path, "sleeping");
}

// Sharded-runtime dirs: the shard-* pack only applies where per-shard
// state and the exchange exist.
bool InShardedDir(std::string_view path) {
  return HasDirSegment(path, "sharded");
}

// ---------------------------------------------------------------------------
// Shared small detectors.
// ---------------------------------------------------------------------------

const std::set<std::string_view> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

// Per-shard state that must never travel in a WireEntry: these objects are
// owned by one worker thread and poked without synchronization.
const std::set<std::string_view> kShardLocalTypes = {
    "Scheduler", "Metrics",  "Auditor", "NodeMetrics",
    "FlatRuntime", "FramePool", "Shard"};

bool IsMemberAccess(const Tokens& t, std::size_t i) {
  return i > 0 && (t[i - 1].Is(".") || t[i - 1].Is("->"));
}

bool IsFlatResumeMacro(const Token& tok) {
  return tok.IsIdent("SMST_FLAT_AWAKE") || tok.IsIdent("SMST_FLAT_SUB");
}

// ---------------------------------------------------------------------------
// The rule packs.
// ---------------------------------------------------------------------------

class Analysis {
 public:
  explicit Analysis(const LexedFile& file)
      : file_(file), t_(file.tokens), parsed_(Parse(file)) {
    symtabs_.reserve(parsed_.fns.size());
    for (const Fn& fn : parsed_.fns) {
      symtabs_.push_back(SymbolTable::Build(t_, parsed_, fn));
    }
  }

  FileAnalysis Run() {
    DeterminismPack();
    CongestPack();
    CoroutinePack();
    FlatPack();
    ShardPack();
    CollectTwinFacts();

    FileAnalysis out;
    out.path = file_.path;
    for (Finding& f : findings_) {
      if (!file_.suppressions.Suppressed(f.line, f.rule)) {
        out.findings.push_back(std::move(f));
      }
    }
    std::sort(out.findings.begin(), out.findings.end(),
              [](const Finding& a, const Finding& b) {
                return a.line != b.line ? a.line < b.line : a.rule < b.rule;
              });
    out.findings.erase(std::unique(out.findings.begin(), out.findings.end()),
                       out.findings.end());
    for (const TwinDecl& tw : file_.twins) {
      TwinRef ref;
      ref.flat_class = tw.flat_class;
      ref.coro_name = tw.coro_name;
      ref.line = tw.line;
      ref.suppressed =
          file_.suppressions.Suppressed(tw.line, "flat-twin-drift");
      ref.norm_text = LineText(tw.line);
      out.twins.push_back(std::move(ref));
    }
    out.class_facts = std::move(class_facts_);
    out.fn_facts = std::move(fn_facts_);
    return out;
  }

 private:
  std::string LineText(std::uint32_t line) const {
    if (line >= 1 && line <= file_.lines.size()) {
      return NormalizeLine(file_.lines[line - 1]);
    }
    return std::string();
  }

  void Flag(std::uint32_t line, std::string_view rule,
            std::string_view message) {
    findings_.push_back(Finding{file_.path, line, std::string(rule),
                                std::string(message), LineText(line)});
  }

  // Innermost function whose body contains token index `idx`; kNoMatch
  // when none.
  std::size_t EnclosingFn(std::size_t idx) const {
    std::size_t best = kNoMatch;
    for (std::size_t f = 0; f < parsed_.fns.size(); ++f) {
      const Fn& fn = parsed_.fns[f];
      if (fn.body_begin < idx && idx < fn.body_end &&
          (best == kNoMatch ||
           fn.body_begin > parsed_.fns[best].body_begin)) {
        best = f;
      }
    }
    return best;
  }

  std::size_t Close(std::size_t open, std::string_view o,
                    std::string_view c) const {
    return parsed_.match[open] != kNoMatch ? parsed_.match[open]
                                           : MatchForward(t_, open, o, c);
  }

  // --- determinism ------------------------------------------------------
  void DeterminismPack() {
    for (std::size_t i = 0; i < t_.size(); ++i) {
      const Token& tok = t_[i];
      if (tok.kind != Token::Kind::kIdent) continue;
      // A banned name preceded by a type-ish identifier is a declaration
      // (`int rand() ...` declares a member, it doesn't call libc).
      const bool declared =
          i > 0 && t_[i - 1].kind == Token::Kind::kIdent &&
          !IsAnyOf(t_[i - 1], {"return", "co_return", "co_await", "co_yield",
                               "else", "do", "case"});
      const bool called =
          i + 1 < t_.size() && t_[i + 1].Is("(") && !declared;

      if (called && !IsMemberAccess(t_, i) &&
          IsAnyOf(tok, {"rand", "srand", "rand_r", "drand48", "lrand48",
                        "mrand48", "random_shuffle"})) {
        Flag(tok.line, "det-rand",
             "C library randomness is seeded ambiently and breaks replay; "
             "use the run's Xoshiro256 (util/prng.h)");
      }
      if (tok.Is("random_device")) {
        Flag(tok.line, "det-random-device",
             "std::random_device draws entropy outside the run seed; derive "
             "streams with Xoshiro256::Split instead");
      }
      if (called && !IsMemberAccess(t_, i) &&
          IsAnyOf(tok, {"time", "clock", "gettimeofday", "clock_gettime",
                        "localtime", "gmtime", "mktime"})) {
        Flag(tok.line, "det-wall-clock",
             "wall-clock reads make runs irreproducible; simulation time is "
             "Scheduler rounds, bench timing belongs in bench/");
      }
      if (IsAnyOf(tok, {"system_clock", "steady_clock",
                        "high_resolution_clock", "utc_clock", "file_clock"}) &&
          i + 2 < t_.size() && t_[i + 1].Is("::") && t_[i + 2].IsIdent("now")) {
        Flag(tok.line, "det-wall-clock",
             "std::chrono clock reads make runs irreproducible; simulation "
             "time is Scheduler rounds, bench timing belongs in bench/");
      }
    }

    // Hash-order dataflow, per function (flow.h): iteration sources,
    // sort kills, assignment spread, read and protocol-escape sinks.
    const bool protocol_dir = InProtocolDir(file_.path);
    for (std::size_t f = 0; f < parsed_.fns.size(); ++f) {
      for (const FlowFinding& ff : UnorderedFlow(t_, parsed_, parsed_.fns[f],
                                                 symtabs_[f], protocol_dir)) {
        if (ff.kind == FlowFinding::Kind::kUnorderedIter) {
          Flag(ff.line, "det-unordered-iter",
               "hash-order iteration reaches '" + ff.detail +
                   "' without a sort; unordered iteration order varies "
                   "across libraries and ASLR — sort first, or suppress "
                   "with a note on why order is inert");
        } else {
          Flag(ff.line, "det-unordered-protocol",
               "value derived from unordered-container iteration escapes "
               "into the protocol surface through '" + ff.detail +
                   "'; hash order must not influence messages or round "
                   "behavior — sort before building protocol data");
        }
      }
    }

    // Pointer-valued keys in ordered or unordered associative containers.
    for (std::size_t i = 0; i + 1 < t_.size(); ++i) {
      if (t_[i].kind != Token::Kind::kIdent ||
          !IsAnyOf(t_[i], {"map", "set", "unordered_map", "unordered_set",
                           "multimap", "multiset"})) {
        continue;
      }
      if (!t_[i + 1].Is("<")) continue;
      int depth = 0;
      std::size_t last = 0;  // last meaningful token of the first argument
      for (std::size_t k = i + 1; k < t_.size(); ++k) {
        if (t_[k].Is("<")) ++depth;
        if (t_[k].Is(">") && --depth == 0) break;
        if (t_[k].Is(">>") && (depth -= 2) <= 0) break;
        if (t_[k].Is(",") && depth == 1) break;
        last = k;
      }
      if (last != 0 && t_[last].Is("*")) {
        Flag(t_[i].line, "det-pointer-key",
             "pointer values as container keys order by address, which ASLR "
             "randomizes run to run; key by index or ID instead");
      }
    }
  }

  // --- sleeping-model / CONGEST ----------------------------------------
  void CongestPack() {
    if (InAlgoDir(file_.path)) {
      for (const Token& tok : t_) {
        if (tok.kind == Token::Kind::kIdent &&
            IsAnyOf(tok, {"Scheduler", "Simulator", "SimulatorOptions"})) {
          Flag(tok.line, "congest-scheduler-access",
               "algorithm code may only touch the network through "
               "NodeContext::Awake/SendBatch; Scheduler/Simulator access "
               "belongs to driver entry points (baseline those)");
        }
      }
    }

    // Lane packing (the coloring's Pack4 idiom: fields ORed into 16-bit
    // lanes) without a width guard in the same function.
    for (const Fn& fn : parsed_.fns) {
      std::set<std::string> shifts;
      std::uint32_t first_line = 0;
      bool guarded = false;
      for (std::size_t k = fn.body_begin; k < fn.body_end; ++k) {
        if (t_[k].Is("<<") && k + 1 < fn.body_end &&
            t_[k + 1].kind == Token::Kind::kNumber &&
            IsAnyOf(t_[k + 1], {"16", "32", "48"})) {
          shifts.insert(t_[k + 1].text);
          if (first_line == 0) first_line = t_[k].line;
        }
        if (t_[k].kind == Token::Kind::kIdent &&
            IsAnyOf(t_[k], {"assert", "static_assert", "throw"})) {
          guarded = true;
        }
      }
      if (shifts.size() >= 2 && !guarded) {
        Flag(first_line, "congest-lane-pack",
             "packing multiple values into 16-bit lanes without a width "
             "guard; values wider than a lane silently corrupt neighbors — "
             "assert each value fits before packing");
      }
    }
  }

  // --- coroutine safety -------------------------------------------------
  void CoroutinePack() {
    for (std::size_t f = 0; f < parsed_.fns.size(); ++f) {
      const Fn& fn = parsed_.fns[f];
      if (fn.returns_task && !fn.task_void && fn.has_co_await &&
          !fn.has_co_return) {
        Flag(fn.line, "coro-missing-co-return",
             "value-returning Task coroutine never co_returns; flowing off "
             "the end of a non-void coroutine is undefined behavior");
      }
      if (!fn.has_co_await) continue;

      // By-reference lambda captures inside a coroutine. A *stored*
      // lambda (`auto f = [&]...`) can be called after any later
      // suspension, so it is always flagged. An inline lambda consumed by
      // the same statement (a sort comparator, an algorithm callback) is
      // only dangerous when that statement itself suspends.
      for (std::size_t k = fn.body_begin + 1; k < fn.body_end; ++k) {
        if (!t_[k].Is("[")) continue;
        if (k + 1 < fn.body_end && t_[k + 1].Is("[")) {  // [[attribute]]
          k = Close(k, "[", "]");
          continue;
        }
        // Subscript (`a[i]`, `](...)[0]`) vs lambda introducer.
        const Token& prev = t_[k - 1];
        const bool subscript = prev.kind == Token::Kind::kIdent
                                   ? !IsAnyOf(prev, {"return", "co_return",
                                                     "co_await", "co_yield"})
                                   : prev.Is("]") || prev.Is(")");
        const std::size_t close = Close(k, "[", "]");
        if (!subscript) {
          bool ref_capture = false;
          for (std::size_t m = k + 1; m < close; ++m) {
            if (t_[m].Is("&") || t_[m].Is("&&")) {
              ref_capture = true;
              break;
            }
          }
          if (ref_capture && prev.Is("=")) {
            Flag(t_[k].line, "coro-ref-capture",
                 "stored lambda captures by reference inside a coroutine; "
                 "if it is invoked after a suspension the captured frame "
                 "slots dangle — capture by value, or suppress with a note "
                 "that the lambda never crosses a co_await");
          } else if (ref_capture && StatementAwaits(fn, k, close)) {
            Flag(t_[k].line, "coro-ref-capture",
                 "by-reference lambda capture in a statement that "
                 "suspends; the lambda may run while the frame is parked — "
                 "capture by value, or suppress with a why-safe note");
          }
        }
        k = close;
      }

      // Address of a local escaping with a suspension still ahead inside
      // the local's scope.
      const SymbolTable& syms = symtabs_[f];
      for (std::size_t k = fn.body_begin + 1; k + 1 < fn.body_end; ++k) {
        if (!t_[k].Is("&")) continue;
        if (!IsAnyOf(t_[k - 1], {"=", "(", ",", "return"})) continue;
        const Token& target = t_[k + 1];
        if (target.kind != Token::Kind::kIdent) continue;
        if (k + 2 < t_.size() && t_[k + 2].Is("::")) continue;
        const Symbol* s = syms.LookupAt(target.text, k);
        if (s == nullptr || s->is_param) continue;
        const std::size_t horizon = std::min(s->scope_end, fn.body_end);
        for (std::size_t m = k + 1; m < horizon; ++m) {
          if (t_[m].IsIdent("co_await") || t_[m].IsIdent("co_yield")) {
            Flag(t_[k].line, "coro-local-addr",
                 "address of coroutine local '" + s->name +
                     "' escapes with a suspension still ahead in its "
                     "scope; if the consumer dereferences it while the "
                     "coroutine is parked the frame slot may be stale — "
                     "pass by value or suppress with a why-safe note");
            break;
          }
        }
      }
    }
  }

  // True when the statement containing the lambda at [open, close]
  // contains a co_await/co_yield outside the lambda's own body.
  bool StatementAwaits(const Fn& fn, std::size_t open,
                       std::size_t close) const {
    std::size_t begin = fn.body_begin + 1;
    for (std::size_t k = open; k-- > fn.body_begin + 1;) {
      if (t_[k].Is(";") || t_[k].Is("{") || t_[k].Is("}")) {
        begin = k + 1;
        break;
      }
    }
    // Lambda body: first `{` after the introducer (past any parameter
    // list); skip it when scanning for the statement's own awaits.
    std::size_t lam_open = close + 1;
    while (lam_open < fn.body_end && !t_[lam_open].Is("{") &&
           !t_[lam_open].Is(";")) {
      ++lam_open;
    }
    const std::size_t lam_close = lam_open < fn.body_end && t_[lam_open].Is("{")
                                      ? Close(lam_open, "{", "}")
                                      : lam_open;
    std::size_t end = lam_close;
    while (end < fn.body_end && !t_[end].Is(";")) ++end;
    for (std::size_t k = begin; k < end; ++k) {
      if (k >= lam_open && k <= lam_close) continue;
      if (t_[k].IsIdent("co_await") || t_[k].IsIdent("co_yield")) return true;
    }
    return false;
  }

  // --- flat lowering ----------------------------------------------------
  void FlatPack() {
    for (std::size_t i = 0; i + 1 < t_.size(); ++i) {
      if (!t_[i].IsIdent("switch") || !t_[i + 1].Is("(")) continue;
      const std::size_t hclose = Close(i + 1, "(", ")");
      if (hclose + 1 >= t_.size() || !t_[hclose + 1].Is("{")) continue;
      const std::size_t body = hclose + 1;
      const std::size_t bclose = Close(body, "{", "}");
      bool duff = false;
      for (std::size_t k = body + 1; k < bclose; ++k) {
        if (IsFlatResumeMacro(t_[k])) {
          duff = true;
          break;
        }
      }
      if (!duff) {
        i = hclose;  // keep scanning inside the body for nested switches
        continue;
      }
      AnalyzeDuffSwitch(i, body, bclose);
      i = hclose;
    }
  }

  // First token of the last top-level statement in [from, to); kNoMatch
  // when the span holds no statement.
  std::size_t LastStmtFirstToken(std::size_t from, std::size_t to) {
    std::size_t last_first = kNoMatch;
    bool expect = true;
    for (std::size_t k = from; k < to; ++k) {
      if (expect && !t_[k].Is(";")) {
        last_first = k;
        expect = false;
      }
      if (t_[k].Is("{")) {
        k = Close(k, "{", "}");
        expect = true;
        continue;
      }
      if (t_[k].Is("(")) {
        k = Close(k, "(", ")");
        continue;
      }
      if (t_[k].Is(";")) expect = true;
    }
    return last_first;
  }

  void AnalyzeDuffSwitch(std::size_t sw, std::size_t body,
                         std::size_t bclose) {
    // Top-level labels: `case X :` / `default :` at brace depth 0 inside
    // the switch body. Macro-generated `case __LINE__:` labels are
    // invisible (the lexer skips preprocessor output it never sees), so
    // the labels here are exactly the ones a human wrote.
    struct Label {
      std::size_t idx = 0;    // the `case`/`default` token
      std::size_t colon = 0;  // its `:`
      bool is_case0 = false;
    };
    std::vector<Label> labels;
    bool has_default = false;
    for (std::size_t k = body + 1; k < bclose; ++k) {
      if (t_[k].Is("{")) {
        k = Close(k, "{", "}");
        continue;
      }
      if (t_[k].Is("(")) {
        k = Close(k, "(", ")");
        continue;
      }
      if (t_[k].IsIdent("case")) {
        Label lb;
        lb.idx = k;
        lb.colon = k;
        while (lb.colon < bclose && !t_[lb.colon].Is(":")) ++lb.colon;
        lb.is_case0 = k + 1 < bclose && t_[k + 1].Is("0");
        labels.push_back(lb);
        k = lb.colon;
      } else if (t_[k].IsIdent("default") && k + 1 < bclose &&
                 t_[k + 1].Is(":")) {
        labels.push_back(Label{k, k + 1, false});
        has_default = true;
        k = k + 1;
      }
    }
    bool has_case0 = false;
    for (const Label& lb : labels) has_case0 |= lb.is_case0;
    if (!has_case0) {
      Flag(t_[sw].line, "flat-missing-case",
           "flat state-machine switch has no top-level `case 0:`; a fresh "
           "frame (pc == 0) would hit undefined dispatch — add the entry "
           "label");
    }
    if (!has_default) {
      Flag(t_[sw].line, "flat-missing-case",
           "flat state-machine switch has no `default:`; a corrupt pc "
           "must fail loudly (`default: throw ...`), not fall out of the "
           "switch");
    }

    // Fallthrough between consecutive top-level labels: the last
    // top-level statement before a label must be a terminator.
    for (std::size_t j = 0; j + 1 < labels.size(); ++j) {
      std::size_t last_first =
          LastStmtFirstToken(labels[j].colon + 1, labels[j + 1].idx);
      // A bare-block statement (`case 0: { ... }`) terminates iff its own
      // last statement does — descend instead of flagging the brace.
      while (last_first != kNoMatch && t_[last_first].Is("{")) {
        const std::size_t close = Close(last_first, "{", "}");
        if (close == kNoMatch || close <= last_first) break;
        last_first = LastStmtFirstToken(last_first + 1, close);
      }
      if (last_first == kNoMatch) continue;  // empty span: label grouping
      if (!IsAnyOf(t_[last_first],
                   {"return", "co_return", "throw", "break", "continue",
                    "goto"})) {
        Flag(t_[labels[j + 1].idx].line, "flat-fallthrough",
             "resume label reached by fallthrough: the previous label's "
             "code does not end in return/throw/break — states must not "
             "bleed into each other; terminate the span explicitly");
      }
    }

    // Locals declared inside the switch body but read after a resume
    // point: the frame is gone after the enclosing function returns, so
    // the read sees a fresh (reinitialized or stale) value.
    const std::size_t f = EnclosingFn(sw);
    if (f == kNoMatch) return;
    const SymbolTable& syms = symtabs_[f];
    std::vector<std::size_t> resumes;  // index past the macro call's `)`
    for (std::size_t k = body + 1; k < bclose; ++k) {
      if (!IsFlatResumeMacro(t_[k])) continue;
      if (k + 1 < bclose && t_[k + 1].Is("(")) {
        resumes.push_back(Close(k + 1, "(", ")"));
      } else {
        resumes.push_back(k);
      }
    }
    for (const Symbol& s : syms.All()) {
      if (s.is_param) continue;
      if (s.decl_index <= body || s.decl_index >= bclose) continue;
      std::size_t resume = kNoMatch;
      for (std::size_t r : resumes) {
        if (r > s.decl_index && r < s.scope_end) {
          resume = r;
          break;
        }
      }
      if (resume == kNoMatch) continue;
      const std::size_t horizon = std::min(s.scope_end, bclose);
      for (std::size_t k = resume + 1; k < horizon; ++k) {
        if (t_[k].kind != Token::Kind::kIdent || t_[k].text != s.name) {
          continue;
        }
        if (IsMemberAccess(t_, k)) continue;
        Flag(t_[k].line, "flat-local-across-resume",
             "local '" + s.name + "' (declared line " +
                 std::to_string(s.line) +
                 ") is read after a resume point; the C++ stack frame "
                 "does not survive the return — persist the value in the "
                 "flat state struct instead");
        break;
      }
    }
  }

  // --- sharded runtime --------------------------------------------------
  void ShardPack() {
    if (!InShardedDir(file_.path)) return;
    for (std::size_t f = 0; f < parsed_.fns.size(); ++f) {
      const Fn& fn = parsed_.fns[f];

      // Barrier ordering: within a function that synchronizes on the
      // round barrier, inbound drains must happen after the send barrier
      // and outbound pushes before it — otherwise one shard reads rings
      // another shard is still writing.
      std::vector<std::size_t> barriers;
      for (std::size_t k = fn.body_begin + 1; k < fn.body_end; ++k) {
        if (t_[k].kind == Token::Kind::kIdent &&
            IsAnyOf(t_[k], {"arrive_and_wait", "arrive_and_drop"})) {
          barriers.push_back(k);
        }
      }
      if (!barriers.empty()) {
        for (std::size_t k = fn.body_begin + 1; k < fn.body_end; ++k) {
          if (t_[k].kind != Token::Kind::kIdent || k + 1 >= fn.body_end ||
              !t_[k + 1].Is("(")) {
            continue;
          }
          if (t_[k].Is("DrainInto") && k < barriers.front()) {
            Flag(t_[k].line, "shard-barrier-order",
                 "DrainInto before the first round barrier: peers may "
                 "still be pushing into this ring — drain only after "
                 "arrive_and_wait");
          }
          if (t_[k].Is("Push") && k > barriers.back()) {
            Flag(t_[k].line, "shard-barrier-order",
                 "Push after the last round barrier: the receiving shard "
                 "may already be draining this ring — push before "
                 "arrive_and_wait");
          }
        }
      }

      // Shard-local state escaping into wire entries.
      const SymbolTable& syms = symtabs_[f];
      for (std::size_t k = fn.body_begin + 1; k + 1 < fn.body_end; ++k) {
        if (t_[k].kind != Token::Kind::kIdent) continue;
        std::size_t span_begin = kNoMatch, span_end = kNoMatch;
        if (t_[k].Is("WireEntry") && t_[k + 1].Is("{")) {
          span_begin = k + 1;  // WireEntry{...} temporary
          span_end = Close(span_begin, "{", "}");
        } else if (t_[k].Is("WireEntry") && k + 2 < fn.body_end &&
                   t_[k + 1].kind == Token::Kind::kIdent &&
                   t_[k + 2].Is("{")) {
          span_begin = k + 2;  // WireEntry e{...} declaration
          span_end = Close(span_begin, "{", "}");
        } else if (t_[k].Is("Push") && t_[k + 1].Is("(")) {
          span_begin = k + 1;
          span_end = Close(span_begin, "(", ")");
        } else {
          continue;
        }
        for (std::size_t m = span_begin + 1; m + 1 < span_end; ++m) {
          if (!t_[m].Is("&")) continue;
          if (!IsAnyOf(t_[m - 1], {"=", "(", ",", "{"})) continue;
          const Token& target = t_[m + 1];
          if (target.kind != Token::Kind::kIdent) continue;
          const Symbol* s = syms.LookupAt(target.text, m);
          if (s == nullptr || !kShardLocalTypes.count(s->type)) continue;
          Flag(t_[m].line, "shard-local-escape",
               "address of shard-local '" + s->name + "' (type " + s->type +
                   ") escapes into a wire entry; the receiving shard "
                   "would touch another worker's unsynchronized state — "
                   "send values, not pointers");
        }
        k = span_begin;  // idents inside the span may open nested spans
      }
    }
  }

  // --- twin facts (for the cross-TU flat-twin-drift pass) ---------------
  void CollectTwinFacts() {
    for (const Fn& fn : parsed_.fns) {
      TwinFacts facts;
      for (std::size_t k = fn.body_begin; k < fn.body_end && k < t_.size();
           ++k) {
        if (t_[k].kind == Token::Kind::kIdent &&
            t_[k].text.rfind("kTag", 0) == 0) {
          facts.tags.push_back(t_[k].text);
        }
        if (t_[k].kind == Token::Kind::kString && !t_[k].literal.empty()) {
          facts.literals.push_back(t_[k].literal);
        }
      }
      auto merge = [](TwinFacts& into, const TwinFacts& from) {
        into.tags.insert(into.tags.end(), from.tags.begin(), from.tags.end());
        into.literals.insert(into.literals.end(), from.literals.begin(),
                             from.literals.end());
        std::sort(into.tags.begin(), into.tags.end());
        into.tags.erase(std::unique(into.tags.begin(), into.tags.end()),
                        into.tags.end());
        std::sort(into.literals.begin(), into.literals.end());
        into.literals.erase(
            std::unique(into.literals.begin(), into.literals.end()),
            into.literals.end());
      };
      merge(fn_facts_[fn.name], facts);
      if (!fn.class_name.empty()) merge(class_facts_[fn.class_name], facts);
    }
  }

  const LexedFile& file_;
  const Tokens& t_;
  ParsedFile parsed_;
  std::vector<SymbolTable> symtabs_;
  std::vector<Finding> findings_;
  std::map<std::string, TwinFacts> class_facts_;
  std::map<std::string, TwinFacts> fn_facts_;
};

std::string Truncate(const std::string& s, std::size_t max) {
  if (s.size() <= max) return s;
  return s.substr(0, max) + "...";
}

// Elements of `a` missing from `b` (both sorted), rendered for a message.
std::string MissingFrom(const std::vector<std::string>& a,
                        const std::vector<std::string>& b, bool quote) {
  std::vector<std::string> diff;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(diff));
  std::string out;
  for (std::size_t i = 0; i < diff.size() && i < 3; ++i) {
    if (!out.empty()) out += ", ";
    out += quote ? "\"" + Truncate(diff[i], 40) + "\"" : diff[i];
  }
  if (diff.size() > 3) out += ", ...";
  return out;
}

}  // namespace

const std::vector<RuleDesc>& AllRules() {
  static const std::vector<RuleDesc> kRules = {
      {"det-rand", "C library randomness (rand/srand/drand48/...)"},
      {"det-random-device", "std::random_device entropy outside the seed"},
      {"det-wall-clock", "wall-clock reads (time/clock/chrono ::now)"},
      {"det-unordered-iter",
       "hash-order iteration reaching a read without a sort"},
      {"det-unordered-protocol",
       "hash-order data escaping into the protocol surface "
       "(mst/sleeping/lower_bounds/energy)"},
      {"det-pointer-key", "pointer values used as associative-container keys"},
      {"congest-scheduler-access",
       "Scheduler/Simulator access from algorithm dirs (mst/sleeping)"},
      {"congest-lane-pack", "16-bit lane packing without a width guard"},
      {"coro-ref-capture", "by-reference lambda capture in a coroutine"},
      {"coro-missing-co-return",
       "value-returning Task coroutine without co_return"},
      {"coro-local-addr",
       "local address escaping with a suspension still ahead"},
      {"flat-missing-case",
       "flat state-machine switch without case 0 / default"},
      {"flat-fallthrough",
       "flat resume label reached by fallthrough from the previous state"},
      {"flat-local-across-resume",
       "flat state-machine local read across a resume point"},
      {"flat-twin-drift",
       "flat class and coroutine twin disagree on tags or error strings"},
      {"shard-barrier-order",
       "exchange Push/DrainInto on the wrong side of the round barrier"},
      {"shard-local-escape",
       "address of shard-local state escaping into a wire entry"},
  };
  return kRules;
}

FileAnalysis AnalyzeFile(const LexedFile& file) {
  return Analysis(file).Run();
}

void CrossCheckTwins(std::vector<FileAnalysis>& files) {
  std::map<std::string, TwinFacts> classes, fns;
  auto merge = [](TwinFacts& into, const TwinFacts& from) {
    into.tags.insert(into.tags.end(), from.tags.begin(), from.tags.end());
    into.literals.insert(into.literals.end(), from.literals.begin(),
                         from.literals.end());
    std::sort(into.tags.begin(), into.tags.end());
    into.tags.erase(std::unique(into.tags.begin(), into.tags.end()),
                    into.tags.end());
    std::sort(into.literals.begin(), into.literals.end());
    into.literals.erase(
        std::unique(into.literals.begin(), into.literals.end()),
        into.literals.end());
  };
  for (const FileAnalysis& fa : files) {
    for (const auto& [name, facts] : fa.class_facts) merge(classes[name], facts);
    for (const auto& [name, facts] : fa.fn_facts) merge(fns[name], facts);
  }

  for (FileAnalysis& fa : files) {
    bool appended = false;
    for (const TwinRef& tw : fa.twins) {
      if (tw.suppressed) continue;
      auto ci = classes.find(tw.flat_class);
      auto fi = fns.find(tw.coro_name);
      // Lenient when either side is outside the analyzed set: a partial
      // run (single file, fixtures) must not produce phantom drift.
      if (ci == classes.end() || fi == fns.end()) continue;
      std::string parts;
      auto add = [&parts](std::string_view what, const std::string& items) {
        if (items.empty()) return;
        if (!parts.empty()) parts += "; ";
        parts += std::string(what) + ": " + items;
      };
      add("tags only in flat",
          MissingFrom(ci->second.tags, fi->second.tags, false));
      add("tags only in coroutine",
          MissingFrom(fi->second.tags, ci->second.tags, false));
      add("strings only in flat",
          MissingFrom(ci->second.literals, fi->second.literals, true));
      add("strings only in coroutine",
          MissingFrom(fi->second.literals, ci->second.literals, true));
      if (parts.empty()) continue;
      fa.findings.push_back(Finding{
          fa.path, tw.line, "flat-twin-drift",
          "flat class " + tw.flat_class + " and coroutine " + tw.coro_name +
              " have drifted apart (" + parts +
              "); the flat lowering must stay behaviorally identical to "
              "its coroutine twin",
          tw.norm_text});
      appended = true;
    }
    if (appended) {
      std::sort(fa.findings.begin(), fa.findings.end(),
                [](const Finding& a, const Finding& b) {
                  return a.line != b.line ? a.line < b.line : a.rule < b.rule;
                });
    }
  }
}

}  // namespace smst_lint
