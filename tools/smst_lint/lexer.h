// smst_lint lexer: a minimal C++ tokenizer sufficient for rule scanning.
//
// It is not a compiler front end. It produces a flat token stream with
// line numbers and guarantees exactly the invariants the rule packs need:
//
//   * comments never produce tokens (but suppression and twin directives
//     inside them are collected — see Suppressions / TwinDecl),
//   * string literals (including raw strings R"delim(...)delim" and
//     encoding prefixes), character literals, and digit separators are
//     consumed correctly so their contents can never fake an identifier.
//     A literal's contents are preserved in Token::literal (the
//     flat-twin-drift rule compares error-string fragments across TUs),
//     while Token::text stays a placeholder so literal contents can never
//     collide with punctuation or identifier matching,
//   * preprocessor lines — with backslash continuations — are skipped
//     entirely (rules reason about code, not includes or macros),
//   * the multi-character operators the rules care about (`::`, `<<`,
//     `>>`, `->`, `&&`) are single tokens.
//
// Anything fancier (templates, overload resolution, actual types) is the
// analyzer's problem, solved heuristically; see parser.h / symtab.h /
// flow.h and the rule packs in rules.cpp.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace smst_lint {

struct Token {
  enum class Kind { kIdent, kNumber, kString, kPunct };
  Kind kind;
  std::string text;
  std::uint32_t line = 0;
  // For kString tokens only: the literal's contents (without quotes or
  // encoding prefix). Empty for every other kind.
  std::string literal;

  bool Is(std::string_view s) const { return text == s; }
  bool IsIdent(std::string_view s) const {
    return kind == Kind::kIdent && text == s;
  }
};

// Per-line rule suppressions gathered from comments:
//   // smst-lint-disable(rule-a,rule-b)      — this line
//   // smst-lint-disable-next-line(rule-a)   — the following line
// A rule list of `*` suppresses every rule on that line.
class Suppressions {
 public:
  void Add(std::uint32_t line, std::string rule) {
    by_line_[line].insert(std::move(rule));
  }
  bool Suppressed(std::uint32_t line, const std::string& rule) const {
    auto it = by_line_.find(line);
    if (it == by_line_.end()) return false;
    return it->second.count(rule) != 0 || it->second.count("*") != 0;
  }

 private:
  std::map<std::uint32_t, std::set<std::string>> by_line_;
};

// A flat/coroutine twin declaration gathered from a comment:
//   // smst-lint-twin(FlatBroadcast=FragmentBroadcast)
// declares that the member functions of class FlatBroadcast (in this TU)
// must use the same message tags and error-string literals as the
// coroutine function FragmentBroadcast (in any TU of the same run).
// The flat-twin-drift rule cross-checks the pair after all files are
// analyzed; see rules.h.
struct TwinDecl {
  std::string flat_class;
  std::string coro_name;
  std::uint32_t line = 0;
};

struct LexedFile {
  std::string path;  // repo-relative, forward slashes
  std::vector<Token> tokens;
  Suppressions suppressions;
  std::vector<TwinDecl> twins;
  std::vector<std::string> lines;  // raw source lines, for baseline keys
};

LexedFile Lex(std::string path, std::string_view source);

}  // namespace smst_lint
