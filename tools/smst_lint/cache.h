// smst_lint incremental cache: per-file analysis results under a cache
// directory (conventionally build/lint_cache).
//
// One entry file per analyzed source file, named by a hash of the
// repo-relative path. An entry stores freshness info (mtime in
// nanoseconds, FNV-1a 64 of the file contents) plus the complete
// FileAnalysis: findings (with their normalized line text, so baseline
// keys re-derive without re-reading the source), twin directives, and the
// tag/literal facts the cross-TU twin check consumes. Cross-TU
// flat-twin-drift findings are NOT cached — CrossCheckTwins recomputes
// them each run from the cached facts, so a change in one TU re-checks
// every twin pair.
//
// Lookup is mtime-first: an exact mtime match is a hit with no source
// read at all. On mtime mismatch the caller re-reads the file and retries
// by content hash (a touch without an edit re-stamps the entry instead of
// re-analyzing). Any parse problem or version mismatch is simply a miss.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>

#include "rules.h"

namespace smst_lint::cache {

// Entry path for a repo-relative source path.
std::filesystem::path EntryPath(const std::filesystem::path& dir,
                                const std::string& rel_path);

// mtime-only probe: returns the cached analysis when the entry exists,
// is version-current, and records exactly `mtime_ns`.
std::optional<FileAnalysis> LoadByMtime(const std::filesystem::path& dir,
                                        const std::string& rel_path,
                                        std::int64_t mtime_ns);

// content probe: returns the cached analysis when the entry's content
// hash matches `content_hash`; re-stamps the entry with `mtime_ns` so the
// next run hits the mtime fast path.
std::optional<FileAnalysis> LoadByContent(const std::filesystem::path& dir,
                                          const std::string& rel_path,
                                          std::int64_t mtime_ns,
                                          std::uint64_t content_hash);

// Writes/overwrites the entry. Failures are silent (the cache is an
// optimization, never a correctness dependency).
void Store(const std::filesystem::path& dir, const std::string& rel_path,
           std::int64_t mtime_ns, std::uint64_t content_hash,
           const FileAnalysis& analysis);

}  // namespace smst_lint::cache
