// smst_lint rule packs.
//
// Three packs, mirroring the project's correctness pillars (DESIGN.md §11):
//
//   det-*      determinism: no wall clocks, no ambient randomness, no
//              iteration-order leaks from unordered containers, no
//              pointer-valued keys.
//   congest-*  sleeping-model/CONGEST locality: algorithm code touches the
//              network only through NodeContext/Awake/SendBatch; lane
//              packing carries a width guard.
//   coro-*     coroutine safety: no by-reference lambda captures in
//              coroutines, no value-returning Task without co_return, no
//              local addresses escaping across a co_await.
//
// Every rule is a heuristic over the token stream (lexer.h) — precise
// enough to catch the project's actual failure modes, suppressible with
// `// smst-lint-disable(rule-id)` where a human has checked the site.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lexer.h"

namespace smst_lint {

struct Finding {
  std::string file;
  std::uint32_t line = 0;
  std::string rule;
  std::string message;
  bool baselined = false;

  bool operator==(const Finding&) const = default;
};

struct RuleDesc {
  std::string_view id;
  std::string_view summary;
};

// All rules, for --list-rules and docs.
const std::vector<RuleDesc>& AllRules();

// Runs every rule pack over one lexed file. Findings are sorted by
// (line, rule) and already filtered through the file's inline
// suppressions; baseline filtering happens later (baseline.h).
std::vector<Finding> AnalyzeFile(const LexedFile& file);

}  // namespace smst_lint
