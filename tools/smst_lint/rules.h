// smst_lint rule packs.
//
// Five packs, mirroring the project's correctness pillars (DESIGN.md §11
// and §14):
//
//   det-*      determinism: no wall clocks, no ambient randomness, no
//              hash-order dataflow reaching reads or the protocol surface
//              (flow.h), no pointer-valued keys.
//   congest-*  sleeping-model/CONGEST locality: algorithm code touches the
//              network only through NodeContext/Awake/SendBatch; lane
//              packing carries a width guard.
//   coro-*     coroutine safety: no dangerous lambda captures in
//              coroutines, no value-returning Task without co_return, no
//              local addresses escaping across a co_await.
//   flat-*     flat-lowering discipline for the Duff's-device state
//              machines (mst/flat_driver.h): no locals alive across a
//              resume point, no missing case 0 / default, no implicit
//              fallthrough between resume labels, no tag/error-string
//              drift between a flat class and its coroutine twin.
//   shard-*    sharded-runtime discipline: no shard-local state escaping
//              into wire entries, no exchange pushes/drains on the wrong
//              side of the round barrier.
//
// Every rule is a heuristic over the parsed token tree (parser.h) with a
// per-function symbol table (symtab.h) and, for the det dataflow rules, a
// linear statement-flow walk (flow.h) — precise enough to catch the
// project's actual failure modes, suppressible with
// `// smst-lint-disable(rule-id)` where a human has checked the site.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.h"

namespace smst_lint {

struct Finding {
  std::string file;
  std::uint32_t line = 0;
  std::string rule;
  std::string message;
  // Whitespace-collapsed text of the source line, captured at analysis
  // time — baseline keys hash this (baseline.h), and the cache stores it
  // so cached findings re-key correctly without the source.
  std::string norm_text;
  bool baselined = false;

  bool operator==(const Finding&) const = default;
};

// Trims and collapses runs of whitespace to single spaces.
std::string NormalizeLine(const std::string& line);

struct RuleDesc {
  std::string_view id;
  std::string_view summary;
};

// All rules, for --list-rules and docs.
const std::vector<RuleDesc>& AllRules();

// Facts the flat-twin-drift rule compares across translation units: the
// message tags (identifiers starting with "kTag") and the string-literal
// contents used inside a span.
struct TwinFacts {
  std::vector<std::string> tags;      // sorted, unique
  std::vector<std::string> literals;  // sorted, unique
};

// One `// smst-lint-twin(FlatClass=CoroName)` directive, resolved enough
// to cross-check after all files are analyzed.
struct TwinRef {
  std::string flat_class;
  std::string coro_name;
  std::uint32_t line = 0;     // line of the directive
  bool suppressed = false;    // inline suppression covers the directive line
  std::string norm_text;      // of the directive line, for baseline keys
};

// Per-file analysis result. `findings` covers every single-TU rule;
// twin directives and the tag/literal facts feed the cross-TU
// flat-twin-drift pass (CrossCheckTwins).
struct FileAnalysis {
  std::string path;
  std::vector<Finding> findings;
  std::vector<TwinRef> twins;
  // Union of member-function facts per class declared-or-defined here.
  std::map<std::string, TwinFacts> class_facts;
  // Facts per free/member function name (the coroutine side of a twin).
  std::map<std::string, TwinFacts> fn_facts;
};

// Runs every single-TU rule pack over one lexed file. Findings are sorted
// by (line, rule) and already filtered through the file's inline
// suppressions; baseline filtering happens later (baseline.h).
FileAnalysis AnalyzeFile(const LexedFile& file);

// Cross-TU pass: for every twin directive, compares the flat class's
// facts against the coroutine's facts across all analyzed files and
// appends flat-twin-drift findings (at the directive's line) to the
// directive's file. Call after all AnalyzeFile results are collected;
// deterministic given the same input set in any order.
void CrossCheckTwins(std::vector<FileAnalysis>& files);

}  // namespace smst_lint
