// smst_lint flow: a linear statement-flow walk per function span.
//
// The v1 rules flagged syntax ("an unordered container is iterated");
// the v2 determinism rules flag dataflow ("hash order reaches something
// that matters"). This module implements the shared taint walk:
//
//   sources   range-for over an unordered local/param; `.begin()` (and
//             cousins) on one. A source inside a declaration's
//             initializer taints the declared variable instead of
//             flagging immediately (`vector out(chosen.begin(), ...)`).
//   kills     `sort`/`stable_sort` applied to a tainted variable: the
//             contents stop depending on hash order.
//   spread    plain and compound assignment: a tainted right-hand side
//             taints the assigned variable.
//   sinks     reading a still-tainted variable (det-unordered-iter), and
//             — in protocol dirs — a tainted value escaping into the
//             protocol surface: `return`, Send/SendBatch/Awake argument
//             lists, `Message{...}` construction, push_back/emplace_back
//             (det-unordered-protocol).
//
// The walk is a single forward pass in token order: no loops-to-fixpoint,
// no branches — statements are analyzed in source order, which matches
// how the project's straight-line protocol blocks actually read.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "parser.h"
#include "symtab.h"

namespace smst_lint {

struct FlowFinding {
  std::uint32_t line = 0;
  enum class Kind { kUnorderedIter, kProtocolEscape } kind;
  std::string detail;  // variable involved, for the message
};

// Runs the unordered-order taint walk over one function. `protocol_dir`
// enables the escape sinks (det-unordered-protocol).
std::vector<FlowFinding> UnorderedFlow(const Tokens& t,
                                       const ParsedFile& parsed, const Fn& fn,
                                       const SymbolTable& syms,
                                       bool protocol_dir);

// True if `type` names one of the std unordered containers.
bool IsUnorderedType(std::string_view type);

}  // namespace smst_lint
