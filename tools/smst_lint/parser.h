// smst_lint parser: brace-matched token trees and function extraction.
//
// Sits between the lexer (flat token stream) and the rule packs. It is
// still not a compiler front end — there is no preprocessor, no name
// lookup, no types — but it recovers the structure the v2 rules need:
//
//   * a bracket map: for every `{`/`(`/`[` the index of its matching
//     close token (and back), computed in one pass;
//   * function spans: body extents, the parameter-list extent, the
//     (heuristic) declared-return-type facts, coroutine-ness;
//   * the enclosing class of a function, either from an out-of-line
//     qualified name (`Round FlatMerge::Resume(...)`) or from an
//     enclosing `class`/`struct` body span — this is what lets the
//     flat-twin-drift rule group member functions per flat class.
//
// Everything downstream (symtab.h, flow.h, rules.cpp) works on these
// spans instead of re-deriving them with local token scans.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.h"

namespace smst_lint {

using Tokens = std::vector<Token>;

inline constexpr std::size_t kNoMatch = static_cast<std::size_t>(-1);

bool IsAnyOf(const Token& tok, std::initializer_list<std::string_view> set);

// Index of the token matching the opener/closer at `open`/`close`, using
// explicit open/close texts (e.g. "{" / "}"). Returns t.size() forward /
// 0 backward when unbalanced, matching the v1 helpers' conventions.
std::size_t MatchForward(const Tokens& t, std::size_t open,
                         std::string_view open_s, std::string_view close_s);
std::size_t MatchBackward(const Tokens& t, std::size_t close,
                          std::string_view open_s, std::string_view close_s);

// One function (or member-function) body found in the token stream.
struct Fn {
  std::string name;        // unqualified
  std::string class_name;  // enclosing class, or "" for a free function
  std::uint32_t line = 0;  // line of the body's `{`
  std::size_t params_begin = 0;  // index of the parameter list's `(`
  std::size_t params_end = 0;    // index of its `)`
  std::size_t body_begin = 0;    // index of `{`
  std::size_t body_end = 0;      // index of matching `}` (or tokens.size())
  bool returns_task = false;     // declared return type names Task<...>
  bool task_void = false;        // ... and the payload is void / empty
  bool has_co_await = false;
  bool has_co_return = false;
};

struct ParsedFile {
  const LexedFile* file = nullptr;
  // match[i] == index of the token closing the bracket opened at i, and
  // vice versa; kNoMatch for non-bracket or unbalanced tokens.
  std::vector<std::size_t> match;
  std::vector<Fn> fns;
};

ParsedFile Parse(const LexedFile& file);

}  // namespace smst_lint
