// smst_lint: project-specific static analysis for the sleeping-model MST
// reproduction. See rules.h for the rule packs and DESIGN.md §11/§14 for
// the architecture and the static-vs-runtime split with the fault Auditor.
//
// Usage:
//   smst_lint [options] [path...]   paths default to: src tools tests bench
//   --root DIR             repo root; findings report DIR-relative paths
//   --baseline FILE        filter findings through a baseline file
//   --write-baseline FILE  write all current findings as the new baseline
//   --prune-baseline       rewrite --baseline FILE keeping only entries
//                          that still match a finding (migrates legacy
//                          keys to the v2 hash form)
//   --json                 machine-readable output on stdout
//   --sarif FILE           write a SARIF 2.1.0 log to FILE
//   --jobs N               analyze files on N worker threads (default 1);
//                          output is byte-identical for any N
//   --cache DIR            incremental cache: reuse per-file results when
//                          mtime or content hash is unchanged
//   --list-rules           print rule ids and summaries
//
// Directory walks skip subdirectories named lint_fixtures (the test
// corpus of intentional findings); pass such a directory explicitly to
// lint it.
//
// Exit status: 0 clean (after suppressions + baseline), 1 findings,
// 2 usage or I/O error.

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baseline.h"
#include "cache.h"
#include "lexer.h"
#include "rules.h"
#include "sarif.h"

namespace fs = std::filesystem;
using smst_lint::AllRules;
using smst_lint::AnalyzeFile;
using smst_lint::Baseline;
using smst_lint::FileAnalysis;
using smst_lint::Finding;
using smst_lint::Lex;
using smst_lint::LexedFile;
using smst_lint::SarifReport;

namespace {

constexpr std::string_view kVersion = "2.0.0";

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" ||
         ext == ".cxx";
}

std::optional<std::string> ReadFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Recursive walk that skips subdirectories named lint_fixtures — the test
// corpus of intentional findings. The starting directory itself is never
// skipped, so explicitly passing tests/lint_fixtures walks it fully.
void WalkDir(const fs::path& dir, std::vector<fs::path>* out) {
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const fs::directory_entry& entry = *it;
    if (entry.is_directory(ec)) {
      if (entry.path().filename() == "lint_fixtures") continue;
      WalkDir(entry.path(), out);
    } else if (entry.is_regular_file(ec) &&
               HasSourceExtension(entry.path())) {
      out->push_back(entry.path());
    }
  }
}

std::int64_t MtimeNs(const fs::path& p) {
  std::error_code ec;
  const auto t = fs::last_write_time(p, ec);
  if (ec) return 0;
  return static_cast<std::int64_t>(t.time_since_epoch().count());
}

struct Options {
  fs::path root = fs::current_path();
  std::vector<std::string> paths;
  std::optional<fs::path> baseline_path;
  std::optional<fs::path> write_baseline_path;
  std::optional<fs::path> sarif_path;
  std::optional<fs::path> cache_dir;
  bool prune_baseline = false;
  bool json = false;
  int jobs = 1;
};

int Fail(const std::string& message) {
  std::cerr << "smst_lint: " << message << "\n";
  return 2;
}

struct Slot {
  FileAnalysis analysis;
  bool from_cache = false;
  std::string error;  // non-empty: I/O failure for this file
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bool paths_defaulted = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "smst_lint: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      opt.root = value("--root");
    } else if (arg == "--baseline") {
      opt.baseline_path = value("--baseline");
    } else if (arg == "--write-baseline") {
      opt.write_baseline_path = value("--write-baseline");
    } else if (arg == "--prune-baseline") {
      opt.prune_baseline = true;
    } else if (arg == "--sarif") {
      opt.sarif_path = value("--sarif");
    } else if (arg == "--cache") {
      opt.cache_dir = value("--cache");
    } else if (arg == "--jobs") {
      opt.jobs = std::atoi(value("--jobs"));
      if (opt.jobs < 1) return Fail("--jobs needs a positive integer");
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--list-rules") {
      for (const auto& r : AllRules()) {
        std::cout << r.id << "  " << r.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: smst_lint [--root DIR] [--baseline FILE] "
                   "[--write-baseline FILE] [--prune-baseline] "
                   "[--sarif FILE] [--jobs N] [--cache DIR] [--json] "
                   "[--list-rules] [path...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Fail("unknown option " + arg);
    } else {
      opt.paths.push_back(arg);
    }
  }
  if (opt.paths.empty()) {
    opt.paths = {"src", "tools", "tests", "bench"};
    paths_defaulted = true;
  }
  if (opt.prune_baseline && !opt.baseline_path) {
    return Fail("--prune-baseline needs --baseline FILE");
  }

  std::error_code ec;
  opt.root = fs::canonical(opt.root, ec);
  if (ec) return Fail("bad --root: " + ec.message());

  // Collect the file set, sorted for deterministic output.
  std::vector<fs::path> files;
  for (const std::string& p : opt.paths) {
    fs::path abs = fs::path(p).is_absolute() ? fs::path(p) : opt.root / p;
    if (fs::is_directory(abs, ec)) {
      WalkDir(abs, &files);
    } else if (fs::is_regular_file(abs, ec)) {
      files.push_back(abs);
    } else if (!paths_defaulted) {
      return Fail("no such file or directory: " + p);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  Baseline baseline;
  if (opt.baseline_path) {
    auto text = ReadFile(*opt.baseline_path);
    if (!text) {
      return Fail("cannot read baseline " + opt.baseline_path->string());
    }
    std::vector<std::string> errors;
    baseline = Baseline::Parse(*text, &errors);
    for (const std::string& e : errors) std::cerr << "smst_lint: " << e << "\n";
    if (!errors.empty()) return 2;
  }

  // Per-file analysis, optionally parallel: an atomic cursor over the
  // sorted file list (the parallel runner's ForEach idiom), results
  // land in file order, everything downstream is serial — so output is
  // byte-identical for any --jobs value.
  std::vector<Slot> slots(files.size());
  std::atomic<std::size_t> cursor{0};
  auto work = [&] {
    for (std::size_t idx = cursor.fetch_add(1); idx < files.size();
         idx = cursor.fetch_add(1)) {
      const fs::path& file = files[idx];
      Slot& slot = slots[idx];
      std::error_code rec;
      const std::string rel =
          fs::relative(file, opt.root, rec).generic_string();
      const std::string path = rec ? file.generic_string() : rel;

      std::int64_t mtime = 0;
      if (opt.cache_dir) {
        mtime = MtimeNs(file);
        if (auto hit = smst_lint::cache::LoadByMtime(*opt.cache_dir, path,
                                                     mtime)) {
          slot.analysis = std::move(*hit);
          slot.from_cache = true;
          continue;
        }
      }
      auto source = ReadFile(file);
      if (!source) {
        slot.error = "cannot read " + file.string();
        continue;
      }
      std::uint64_t hash = 0;
      if (opt.cache_dir) {
        hash = Baseline::Fnv1a64(*source);
        if (auto hit = smst_lint::cache::LoadByContent(*opt.cache_dir, path,
                                                       mtime, hash)) {
          slot.analysis = std::move(*hit);
          slot.from_cache = true;
          continue;
        }
      }
      slot.analysis = AnalyzeFile(Lex(path, *source));
      if (opt.cache_dir) {
        smst_lint::cache::Store(*opt.cache_dir, path, mtime, hash,
                                slot.analysis);
      }
    }
  };
  const std::size_t jobs =
      std::min<std::size_t>(static_cast<std::size_t>(opt.jobs),
                            std::max<std::size_t>(files.size(), 1));
  if (jobs <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t w = 0; w < jobs; ++w) pool.emplace_back(work);
    for (std::thread& th : pool) th.join();
  }

  std::size_t analyzed = 0, cached = 0;
  std::vector<FileAnalysis> analyses;
  analyses.reserve(slots.size());
  for (Slot& slot : slots) {
    if (!slot.error.empty()) return Fail(slot.error);
    (slot.from_cache ? cached : analyzed)++;
    analyses.push_back(std::move(slot.analysis));
  }

  // Cross-TU pass: flat-twin-drift over the cached+fresh facts.
  smst_lint::CrossCheckTwins(analyses);

  // Baseline matching and aggregation, in file order (serial).
  std::vector<Finding> findings;
  Baseline next_baseline;
  for (FileAnalysis& fa : analyses) {
    for (Finding& f : fa.findings) {
      f.baselined = baseline.Matches(f);
      next_baseline.Insert(Baseline::KeyFor(f));
      findings.push_back(std::move(f));
    }
  }

  if (opt.write_baseline_path) {
    std::ofstream out(*opt.write_baseline_path);
    if (!out) {
      return Fail("cannot write " + opt.write_baseline_path->string());
    }
    out << next_baseline.Serialize();
  }
  if (opt.prune_baseline) {
    std::size_t dropped = 0;
    const std::string pruned = baseline.SerializeUsed(&dropped);
    std::ofstream out(*opt.baseline_path, std::ios::trunc);
    if (!out) {
      return Fail("cannot write " + opt.baseline_path->string());
    }
    out << pruned;
    std::cerr << "smst_lint: pruned " << dropped
              << " stale baseline entr" << (dropped == 1 ? "y" : "ies")
              << "\n";
  }

  std::size_t active = 0, baselined = 0;
  for (const Finding& f : findings) {
    (f.baselined ? baselined : active)++;
  }

  if (opt.sarif_path) {
    std::ofstream out(*opt.sarif_path, std::ios::trunc);
    if (!out) return Fail("cannot write " + opt.sarif_path->string());
    out << SarifReport(findings, kVersion);
  }

  if (opt.json) {
    std::ostream& out = std::cout;
    out << "{\n  \"findings\": [\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      out << "    {\"file\": \"" << JsonEscape(f.file) << "\", \"line\": "
          << f.line << ", \"rule\": \"" << JsonEscape(f.rule)
          << "\", \"baselined\": " << (f.baselined ? "true" : "false")
          << ", \"message\": \"" << JsonEscape(f.message) << "\"}"
          << (i + 1 < findings.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"counts\": {\"active\": " << active
        << ", \"baselined\": " << baselined
        << ", \"files_scanned\": " << files.size()
        << ", \"files_analyzed\": " << analyzed
        << ", \"files_cached\": " << cached << "}\n}\n";
  } else {
    for (const Finding& f : findings) {
      if (f.baselined) continue;
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    }
    std::cerr << "smst_lint: " << files.size() << " files ("
              << analyzed << " analyzed, " << cached << " cached), "
              << active << " finding(s), " << baselined << " baselined\n";
  }
  return active == 0 ? 0 : 1;
}
