// smst_lint: project-specific static analysis for the sleeping-model MST
// reproduction. See rules.h for the rule packs and DESIGN.md §11 for the
// architecture and the static-vs-runtime split with the fault Auditor.
//
// Usage:
//   smst_lint [options] [path...]          paths default to: src tools
//   --root DIR             repo root; findings report DIR-relative paths
//   --baseline FILE        filter findings through a baseline file
//   --write-baseline FILE  write all current findings as the new baseline
//   --json                 machine-readable output on stdout
//   --list-rules           print rule ids and summaries
//
// Exit status: 0 clean (after suppressions + baseline), 1 findings,
// 2 usage or I/O error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "baseline.h"
#include "lexer.h"
#include "rules.h"

namespace fs = std::filesystem;
using smst_lint::AllRules;
using smst_lint::AnalyzeFile;
using smst_lint::Baseline;
using smst_lint::Finding;
using smst_lint::Lex;
using smst_lint::LexedFile;

namespace {

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" ||
         ext == ".cxx";
}

std::optional<std::string> ReadFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct Options {
  fs::path root = fs::current_path();
  std::vector<std::string> paths;
  std::optional<fs::path> baseline_path;
  std::optional<fs::path> write_baseline_path;
  bool json = false;
};

int Fail(const std::string& message) {
  std::cerr << "smst_lint: " << message << "\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "smst_lint: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      opt.root = value("--root");
    } else if (arg == "--baseline") {
      opt.baseline_path = value("--baseline");
    } else if (arg == "--write-baseline") {
      opt.write_baseline_path = value("--write-baseline");
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--list-rules") {
      for (const auto& r : AllRules()) {
        std::cout << r.id << "  " << r.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: smst_lint [--root DIR] [--baseline FILE] "
                   "[--write-baseline FILE] [--json] [--list-rules] "
                   "[path...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Fail("unknown option " + arg);
    } else {
      opt.paths.push_back(arg);
    }
  }
  if (opt.paths.empty()) opt.paths = {"src", "tools"};

  std::error_code ec;
  opt.root = fs::canonical(opt.root, ec);
  if (ec) return Fail("bad --root: " + ec.message());

  // Collect the file set, sorted for deterministic output.
  std::vector<fs::path> files;
  for (const std::string& p : opt.paths) {
    fs::path abs = fs::path(p).is_absolute() ? fs::path(p) : opt.root / p;
    if (fs::is_directory(abs, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(abs)) {
        if (entry.is_regular_file() && HasSourceExtension(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(abs, ec)) {
      files.push_back(abs);
    } else {
      return Fail("no such file or directory: " + p);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  Baseline baseline;
  if (opt.baseline_path) {
    auto text = ReadFile(*opt.baseline_path);
    if (!text) {
      return Fail("cannot read baseline " + opt.baseline_path->string());
    }
    std::vector<std::string> errors;
    baseline = Baseline::Parse(*text, &errors);
    for (const std::string& e : errors) std::cerr << "smst_lint: " << e << "\n";
    if (!errors.empty()) return 2;
  }

  std::vector<Finding> findings;
  Baseline next_baseline;
  for (const fs::path& file : files) {
    auto source = ReadFile(file);
    if (!source) return Fail("cannot read " + file.string());
    const std::string rel =
        fs::relative(file, opt.root, ec).generic_string();
    LexedFile lexed = Lex(ec ? file.generic_string() : rel, *source);
    for (Finding& f : AnalyzeFile(lexed)) {
      const std::string key = Baseline::KeyFor(f, lexed.lines);
      f.baselined = baseline.Contains(key);
      next_baseline.Insert(key);
      findings.push_back(std::move(f));
    }
  }

  if (opt.write_baseline_path) {
    std::ofstream out(*opt.write_baseline_path);
    if (!out) {
      return Fail("cannot write " + opt.write_baseline_path->string());
    }
    out << next_baseline.Serialize();
  }

  std::size_t active = 0, baselined = 0;
  for (const Finding& f : findings) {
    (f.baselined ? baselined : active)++;
  }

  if (opt.json) {
    std::ostream& out = std::cout;
    out << "{\n  \"findings\": [\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      out << "    {\"file\": \"" << JsonEscape(f.file) << "\", \"line\": "
          << f.line << ", \"rule\": \"" << JsonEscape(f.rule)
          << "\", \"baselined\": " << (f.baselined ? "true" : "false")
          << ", \"message\": \"" << JsonEscape(f.message) << "\"}"
          << (i + 1 < findings.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"counts\": {\"active\": " << active
        << ", \"baselined\": " << baselined
        << ", \"files_scanned\": " << files.size() << "}\n}\n";
  } else {
    for (const Finding& f : findings) {
      if (f.baselined) continue;
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    }
    std::cerr << "smst_lint: " << files.size() << " files, " << active
              << " finding(s), " << baselined << " baselined\n";
  }
  return active == 0 ? 0 : 1;
}
