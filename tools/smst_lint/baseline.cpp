#include "baseline.h"

#include <cctype>
#include <sstream>

namespace smst_lint {

std::string Baseline::NormalizeLine(const std::string& line) {
  std::string out;
  bool pending_space = false;
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) out.push_back(' ');
    pending_space = false;
    out.push_back(c);
  }
  return out;
}

std::string Baseline::KeyFor(const Finding& f,
                             const std::vector<std::string>& source_lines) {
  const std::string text = f.line >= 1 && f.line <= source_lines.size()
                               ? NormalizeLine(source_lines[f.line - 1])
                               : std::string();
  return f.file + "|" + f.rule + "|" + text;
}

Baseline Baseline::Parse(const std::string& text,
                         std::vector<std::string>* errors) {
  Baseline b;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    // Two '|' separators minimum; the line text may itself contain '|'.
    const std::size_t p1 = line.find('|');
    const std::size_t p2 = p1 == std::string::npos ? p1 : line.find('|', p1 + 1);
    if (p2 == std::string::npos) {
      if (errors) {
        errors->push_back("baseline line " + std::to_string(lineno) +
                          ": expected path|rule|line-text");
      }
      continue;
    }
    b.Insert(line.substr(0, p1) + "|" + line.substr(p1 + 1, p2 - p1 - 1) +
             "|" + NormalizeLine(line.substr(p2 + 1)));
  }
  return b;
}

std::string Baseline::Serialize() const {
  std::string out =
      "# smst_lint baseline — pre-existing findings that do not fail the "
      "build.\n"
      "# Format: path|rule-id|normalized source line. Regenerate with\n"
      "#   smst_lint --write-baseline tools/smst_lint/baseline.txt\n"
      "# Entries match on line *text*, not line numbers, so edits elsewhere\n"
      "# in a file do not invalidate them. Remove entries as sites get "
      "fixed.\n";
  for (const std::string& k : keys_) {
    out += k;
    out += '\n';
  }
  return out;
}

}  // namespace smst_lint
