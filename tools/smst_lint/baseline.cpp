#include "baseline.h"

#include <cctype>
#include <cstdio>
#include <set>
#include <sstream>

namespace smst_lint {
namespace {

constexpr std::string_view kHeader =
    "# smst_lint baseline — pre-existing findings that do not fail the "
    "build.\n"
    "# Format: path|rule-id|h:<FNV-1a 64 of the line text, whitespace "
    "stripped>.\n"
    "# Regenerate with\n"
    "#   smst_lint --write-baseline tools/smst_lint/baseline.txt\n"
    "# or drop fixed sites with\n"
    "#   smst_lint --baseline tools/smst_lint/baseline.txt "
    "--prune-baseline\n"
    "# Entries match on line *content*, not line numbers, so edits "
    "elsewhere\n"
    "# in a file do not invalidate them.\n";

std::string StripAllWhitespace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) out.push_back(c);
  }
  return out;
}

std::string HashTag(std::string_view norm_text) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "h:%016llx",
                static_cast<unsigned long long>(
                    Baseline::Fnv1a64(StripAllWhitespace(norm_text))));
  return buf;
}

bool IsHashTag(std::string_view rest) {
  if (rest.size() != 18 || rest.substr(0, 2) != "h:") return false;
  for (char c : rest.substr(2)) {
    if (!std::isxdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

std::uint64_t Baseline::Fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string Baseline::KeyFor(const Finding& f) {
  return f.file + "|" + f.rule + "|" + HashTag(f.norm_text);
}

std::string Baseline::LegacyKeyFor(const Finding& f) {
  return f.file + "|" + f.rule + "|" + f.norm_text;
}

bool Baseline::Matches(const Finding& f) {
  auto it = keys_.find(KeyFor(f));
  if (it == keys_.end()) {
    it = keys_.find(LegacyKeyFor(f));
    if (it == keys_.end()) return false;
    // Remember the v2 form so Serialize can migrate the entry.
    legacy_rewrites_.emplace(it->first, KeyFor(f));
  }
  it->second = true;
  return true;
}

Baseline Baseline::Parse(const std::string& text,
                         std::vector<std::string>* errors) {
  Baseline b;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    // Two '|' separators minimum; a legacy line text may itself contain
    // '|'.
    const std::size_t p1 = line.find('|');
    const std::size_t p2 =
        p1 == std::string::npos ? p1 : line.find('|', p1 + 1);
    if (p2 == std::string::npos) {
      if (errors) {
        errors->push_back("baseline line " + std::to_string(lineno) +
                          ": expected path|rule|h:<hash> (or legacy "
                          "path|rule|line-text)");
      }
      continue;
    }
    const std::string head = line.substr(0, p2 + 1);
    const std::string rest = line.substr(p2 + 1);
    if (IsHashTag(rest)) {
      b.Insert(head + rest);
    } else {
      b.Insert(head + NormalizeLine(rest));  // legacy entry
    }
  }
  return b;
}

std::string Baseline::Serialize() const {
  std::set<std::string> lines;
  for (const auto& [key, used] : keys_) {
    auto rw = legacy_rewrites_.find(key);
    lines.insert(rw == legacy_rewrites_.end() ? key : rw->second);
  }
  std::string out(kHeader);
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

std::string Baseline::SerializeUsed(std::size_t* dropped) const {
  std::set<std::string> lines;
  std::size_t removed = 0;
  for (const auto& [key, used] : keys_) {
    if (!used) {
      ++removed;
      continue;
    }
    auto rw = legacy_rewrites_.find(key);
    lines.insert(rw == legacy_rewrites_.end() ? key : rw->second);
  }
  std::string out(kHeader);
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  if (dropped) *dropped = removed;
  return out;
}

}  // namespace smst_lint
