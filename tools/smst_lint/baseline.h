// smst_lint baseline: pre-existing findings that don't block the build.
//
// v2 entries key on (file, rule, content hash of the normalized source
// line) rather than line numbers, so unrelated edits above a baselined
// site don't invalidate the baseline and long lines don't bloat the file.
// Format, one entry per line:
//
//   path|rule-id|h:<16 hex digits>
//
// The hash is FNV-1a 64 over the line text with ALL whitespace stripped,
// so reformatting alone doesn't unbaseline a finding (changing the code
// does — which is the point).
//
// Legacy v1 entries (`path|rule-id|normalized line text`) are still
// accepted for one release so existing baselines keep working; running
// with --write-baseline or --prune-baseline rewrites them as v2 keys.
//
// `#` starts a comment; blank lines are ignored.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "rules.h"

namespace smst_lint {

class Baseline {
 public:
  // Parses baseline text (the file's contents). Unparseable lines are
  // reported via `errors`.
  static Baseline Parse(const std::string& text,
                        std::vector<std::string>* errors);

  static std::uint64_t Fnv1a64(std::string_view data);

  // v2 key for a finding: path|rule|h:<hash of norm_text sans whitespace>.
  static std::string KeyFor(const Finding& f);
  // v1 key, accepted for one release: path|rule|normalized line text.
  static std::string LegacyKeyFor(const Finding& f);

  bool Contains(const std::string& key) const {
    return keys_.count(key) != 0;
  }
  void Insert(std::string key) { keys_.emplace(std::move(key), false); }

  // True when the finding matches a v2 or legacy entry; the matching
  // entry is marked used (the survivors of --prune-baseline).
  bool Matches(const Finding& f);

  // Serialized, sorted, with a header comment — for --write-baseline.
  // Legacy keys that matched a finding this run are rewritten as v2.
  std::string Serialize() const;

  // Only the entries that matched a finding this run (v2 form) — the
  // output of --prune-baseline. `dropped` reports how many entries the
  // prune removed.
  std::string SerializeUsed(std::size_t* dropped) const;

 private:
  // key -> (used this run, v2 rewrite of the key if it was legacy)
  std::map<std::string, bool> keys_;
  std::map<std::string, std::string> legacy_rewrites_;
};

}  // namespace smst_lint
