// smst_lint baseline: pre-existing findings that don't block the build.
//
// Entries key on (file, rule, normalized source line text) rather than
// line numbers, so unrelated edits above a baselined site don't invalidate
// the baseline. Format, one entry per line:
//
//   path|rule-id|normalized line text
//
// `#` starts a comment; blank lines are ignored. Normalization trims the
// line and collapses runs of whitespace, so reformatting alone doesn't
// unbaseline a finding (changing the code does — which is the point).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "rules.h"

namespace smst_lint {

class Baseline {
 public:
  // Parses baseline text (the file's contents). Unparseable lines are
  // reported via `errors`.
  static Baseline Parse(const std::string& text,
                        std::vector<std::string>* errors);

  static std::string NormalizeLine(const std::string& line);
  static std::string KeyFor(const Finding& f,
                            const std::vector<std::string>& source_lines);

  bool Contains(const std::string& key) const { return keys_.count(key) != 0; }
  void Insert(std::string key) { keys_.insert(std::move(key)); }

  // Serialized, sorted, with a header comment — for --write-baseline.
  std::string Serialize() const;

 private:
  std::set<std::string> keys_;
};

}  // namespace smst_lint
