#include "cache.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "baseline.h"  // Fnv1a64

namespace smst_lint::cache {
namespace {

constexpr std::string_view kVersion = "smst-lint-cache-v2";

// Space-separated line format needs whitespace-free fields.
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case ' ': out += "\\s"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out.push_back(s[i]);
      continue;
    }
    switch (s[++i]) {
      case '\\': out.push_back('\\'); break;
      case 'n': out.push_back('\n'); break;
      case 't': out.push_back('\t'); break;
      case 's': out.push_back(' '); break;
      default: out.push_back(s[i]);
    }
  }
  return out;
}

std::vector<std::string> Fields(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string f;
  while (in >> f) out.push_back(std::move(f));
  return out;
}

struct Entry {
  std::int64_t mtime_ns = 0;
  std::uint64_t content_hash = 0;
  FileAnalysis analysis;
};

std::optional<Entry> ParseEntry(const std::filesystem::path& entry_path) {
  std::ifstream in(entry_path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || line != kVersion) return std::nullopt;

  Entry e;
  bool have_meta = false;
  while (std::getline(in, line)) {
    const std::vector<std::string> f = Fields(line);
    if (f.empty()) continue;
    if (f[0] == "meta" && f.size() == 4) {
      e.mtime_ns = std::strtoll(f[1].c_str(), nullptr, 10);
      e.content_hash = std::strtoull(f[2].c_str(), nullptr, 16);
      e.analysis.path = Unescape(f[3]);
      have_meta = true;
    } else if (f[0] == "finding" && f.size() == 6) {
      Finding fd;
      fd.line = static_cast<std::uint32_t>(std::strtoul(f[1].c_str(),
                                                        nullptr, 10));
      fd.rule = Unescape(f[2]);
      fd.norm_text = Unescape(f[3]);
      fd.message = Unescape(f[4]);
      fd.file = Unescape(f[5]);
      e.analysis.findings.push_back(std::move(fd));
    } else if (f[0] == "twin" && f.size() == 6) {
      TwinRef tw;
      tw.line = static_cast<std::uint32_t>(std::strtoul(f[1].c_str(),
                                                        nullptr, 10));
      tw.suppressed = f[2] == "1";
      tw.flat_class = Unescape(f[3]);
      tw.coro_name = Unescape(f[4]);
      tw.norm_text = Unescape(f[5]);
      e.analysis.twins.push_back(std::move(tw));
    } else if (f[0] == "cdecl" && f.size() == 2) {
      e.analysis.class_facts[Unescape(f[1])];
    } else if (f[0] == "fdecl" && f.size() == 2) {
      e.analysis.fn_facts[Unescape(f[1])];
    } else if (f[0] == "ctag" && f.size() == 3) {
      e.analysis.class_facts[Unescape(f[1])].tags.push_back(Unescape(f[2]));
    } else if (f[0] == "clit" && f.size() == 3) {
      e.analysis.class_facts[Unescape(f[1])].literals.push_back(
          Unescape(f[2]));
    } else if (f[0] == "ftag" && f.size() == 3) {
      e.analysis.fn_facts[Unescape(f[1])].tags.push_back(Unescape(f[2]));
    } else if (f[0] == "flit" && f.size() == 3) {
      e.analysis.fn_facts[Unescape(f[1])].literals.push_back(Unescape(f[2]));
    } else {
      return std::nullopt;  // unknown record: treat as corrupt
    }
  }
  if (!have_meta) return std::nullopt;
  return e;
}

void WriteEntry(const std::filesystem::path& entry_path, const Entry& e) {
  std::error_code ec;
  std::filesystem::create_directories(entry_path.parent_path(), ec);
  std::ofstream out(entry_path, std::ios::trunc);
  if (!out) return;
  char hash_buf[24];
  std::snprintf(hash_buf, sizeof hash_buf, "%016llx",
                static_cast<unsigned long long>(e.content_hash));
  out << kVersion << "\n"
      << "meta " << e.mtime_ns << " " << hash_buf << " "
      << Escape(e.analysis.path) << "\n";
  for (const Finding& fd : e.analysis.findings) {
    out << "finding " << fd.line << " " << Escape(fd.rule) << " "
        << Escape(fd.norm_text) << " " << Escape(fd.message) << " "
        << Escape(fd.file) << "\n";
  }
  for (const TwinRef& tw : e.analysis.twins) {
    out << "twin " << tw.line << " " << (tw.suppressed ? 1 : 0) << " "
        << Escape(tw.flat_class) << " " << Escape(tw.coro_name) << " "
        << Escape(tw.norm_text) << "\n";
  }
  for (const auto& [name, facts] : e.analysis.class_facts) {
    out << "cdecl " << Escape(name) << "\n";
    for (const std::string& t : facts.tags) {
      out << "ctag " << Escape(name) << " " << Escape(t) << "\n";
    }
    for (const std::string& l : facts.literals) {
      out << "clit " << Escape(name) << " " << Escape(l) << "\n";
    }
  }
  for (const auto& [name, facts] : e.analysis.fn_facts) {
    out << "fdecl " << Escape(name) << "\n";
    for (const std::string& t : facts.tags) {
      out << "ftag " << Escape(name) << " " << Escape(t) << "\n";
    }
    for (const std::string& l : facts.literals) {
      out << "flit " << Escape(name) << " " << Escape(l) << "\n";
    }
  }
}

}  // namespace

std::filesystem::path EntryPath(const std::filesystem::path& dir,
                                const std::string& rel_path) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(
                    Baseline::Fnv1a64(rel_path)));
  return dir / (std::string(buf) + ".lint");
}

std::optional<FileAnalysis> LoadByMtime(const std::filesystem::path& dir,
                                        const std::string& rel_path,
                                        std::int64_t mtime_ns) {
  auto e = ParseEntry(EntryPath(dir, rel_path));
  if (!e || e->analysis.path != rel_path || e->mtime_ns != mtime_ns) {
    return std::nullopt;
  }
  return std::move(e->analysis);
}

std::optional<FileAnalysis> LoadByContent(const std::filesystem::path& dir,
                                          const std::string& rel_path,
                                          std::int64_t mtime_ns,
                                          std::uint64_t content_hash) {
  auto e = ParseEntry(EntryPath(dir, rel_path));
  if (!e || e->analysis.path != rel_path ||
      e->content_hash != content_hash) {
    return std::nullopt;
  }
  // Touch without an edit: re-stamp so the next run takes the mtime
  // fast path.
  e->mtime_ns = mtime_ns;
  WriteEntry(EntryPath(dir, rel_path), *e);
  return std::move(e->analysis);
}

void Store(const std::filesystem::path& dir, const std::string& rel_path,
           std::int64_t mtime_ns, std::uint64_t content_hash,
           const FileAnalysis& analysis) {
  Entry e;
  e.mtime_ns = mtime_ns;
  e.content_hash = content_hash;
  e.analysis = analysis;
  WriteEntry(EntryPath(dir, rel_path), e);
}

}  // namespace smst_lint::cache
