#include "lexer.h"

#include <cctype>

namespace smst_lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Matches the encoding-prefix identifiers that may precede a raw string:
// R, uR, UR, LR, u8R.
bool IsRawStringPrefix(std::string_view ident) {
  return ident == "R" || ident == "uR" || ident == "UR" || ident == "LR" ||
         ident == "u8R";
}

// Parses `smst-lint-disable(...)` / `smst-lint-disable-next-line(...)`
// directives out of a comment's text and records them against `line` (or
// line + 1 for the next-line form).
void CollectDirectives(std::string_view comment, std::uint32_t line,
                       Suppressions& out) {
  static constexpr std::string_view kTag = "smst-lint-disable";
  std::size_t pos = 0;
  while ((pos = comment.find(kTag, pos)) != std::string_view::npos) {
    std::size_t cursor = pos + kTag.size();
    std::uint32_t target = line;
    static constexpr std::string_view kNext = "-next-line";
    if (comment.substr(cursor, kNext.size()) == kNext) {
      cursor += kNext.size();
      target = line + 1;
    }
    pos = cursor;
    if (cursor >= comment.size() || comment[cursor] != '(') continue;
    std::size_t close = comment.find(')', cursor);
    if (close == std::string_view::npos) continue;
    std::string_view list = comment.substr(cursor + 1, close - cursor - 1);
    std::string rule;
    for (std::size_t i = 0; i <= list.size(); ++i) {
      if (i == list.size() || list[i] == ',') {
        if (!rule.empty()) out.Add(target, rule);
        rule.clear();
      } else if (!std::isspace(static_cast<unsigned char>(list[i]))) {
        rule.push_back(list[i]);
      }
    }
    pos = close;
  }
}

// Parses `smst-lint-twin(FlatClass=CoroutineName)` twin declarations out
// of a comment's text. Both sides are plain identifiers; malformed
// directives are ignored (the fixture corpus pins the accepted shape).
void CollectTwins(std::string_view comment, std::uint32_t line,
                  std::vector<TwinDecl>& out) {
  static constexpr std::string_view kTag = "smst-lint-twin";
  std::size_t pos = 0;
  while ((pos = comment.find(kTag, pos)) != std::string_view::npos) {
    std::size_t cursor = pos + kTag.size();
    pos = cursor;
    if (cursor >= comment.size() || comment[cursor] != '(') continue;
    const std::size_t close = comment.find(')', cursor);
    if (close == std::string_view::npos) continue;
    std::string_view body = comment.substr(cursor + 1, close - cursor - 1);
    const std::size_t eq = body.find('=');
    if (eq == std::string_view::npos) continue;
    auto trim = [](std::string_view s) {
      while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
        s.remove_prefix(1);
      while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
        s.remove_suffix(1);
      return std::string(s);
    };
    TwinDecl decl{trim(body.substr(0, eq)), trim(body.substr(eq + 1)), line};
    if (!decl.flat_class.empty() && !decl.coro_name.empty()) {
      out.push_back(std::move(decl));
    }
    pos = close;
  }
}

}  // namespace

LexedFile Lex(std::string path, std::string_view src) {
  LexedFile out;
  out.path = std::move(path);

  // Split raw lines up front (baseline keys want the original text).
  {
    std::string cur;
    for (char c : src) {
      if (c == '\n') {
        out.lines.push_back(cur);
        cur.clear();
      } else if (c != '\r') {
        cur.push_back(c);
      }
    }
    out.lines.push_back(cur);
  }

  std::size_t i = 0;
  const std::size_t n = src.size();
  std::uint32_t line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto push = [&](Token::Kind kind, std::string text) {
    out.tokens.push_back(Token{kind, std::move(text), line, {}});
  };
  auto push_literal = [&](std::string text, std::string contents,
                          std::uint32_t at_line) {
    out.tokens.push_back(Token{Token::Kind::kString, std::move(text), at_line,
                               std::move(contents)});
  };

  while (i < n) {
    char c = src[i];

    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Preprocessor line (with backslash continuations).
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;  // newline handled by the main loop
        ++i;
      }
      continue;
    }
    at_line_start = false;

    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t start = i + 2;
      while (i < n && src[i] != '\n') ++i;
      CollectDirectives(src.substr(start, i - start), line, out.suppressions);
      CollectTwins(src.substr(start, i - start), line, out.twins);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::uint32_t comment_line = line;
      std::size_t start = i + 2;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      std::size_t end = (i + 1 < n) ? i : n;
      CollectDirectives(src.substr(start, end - start), comment_line,
                        out.suppressions);
      CollectTwins(src.substr(start, end - start), comment_line, out.twins);
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }

    // Identifier (possibly a raw-string prefix).
    if (IsIdentStart(c)) {
      std::size_t start = i;
      while (i < n && IsIdentChar(src[i])) ++i;
      std::string ident(src.substr(start, i - start));
      if (i < n && src[i] == '"' && IsRawStringPrefix(ident)) {
        // Raw string: R"delim( ... )delim"
        const std::uint32_t open_line = line;
        ++i;  // consume the opening quote
        std::string delim;
        while (i < n && src[i] != '(') delim.push_back(src[i++]);
        if (i < n) ++i;  // consume '('
        const std::string closer = ")" + delim + "\"";
        std::size_t end = src.find(closer, i);
        if (end == std::string_view::npos) end = n;
        for (std::size_t j = i; j < end && j < n; ++j) {
          if (src[j] == '\n') ++line;
        }
        std::string contents(src.substr(i, end - i));
        i = (end == n) ? n : end + closer.size();
        push_literal("<raw-string>", std::move(contents), open_line);
        continue;
      }
      push(Token::Kind::kIdent, std::move(ident));
      continue;
    }

    // Number (digit separators, hex, float suffixes all just consumed).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t start = i;
      while (i < n && (IsIdentChar(src[i]) || src[i] == '\'' ||
                       src[i] == '.' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P')))) {
        ++i;
      }
      push(Token::Kind::kNumber, std::string(src.substr(start, i - start)));
      continue;
    }

    // String and character literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const std::uint32_t open_line = line;
      const std::size_t start = i + 1;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') ++line;  // unterminated; keep line counts sane
        ++i;
      }
      std::string contents(src.substr(start, i - start));
      if (i < n) ++i;  // closing quote
      push_literal(quote == '"' ? "<string>" : "<char>", std::move(contents),
                   open_line);
      continue;
    }

    // Multi-character operators the rules care about.
    if (i + 1 < n) {
      std::string_view two = src.substr(i, 2);
      if (two == "::" || two == "<<" || two == ">>" || two == "->" ||
          two == "&&") {
        push(Token::Kind::kPunct, std::string(two));
        i += 2;
        continue;
      }
    }

    push(Token::Kind::kPunct, std::string(1, c));
    ++i;
  }
  return out;
}

}  // namespace smst_lint
