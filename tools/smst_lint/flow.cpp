#include "flow.h"

#include <map>
#include <set>

namespace smst_lint {
namespace {

const std::set<std::string_view> kUnordered = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

bool IsBeginCall(const Tokens& t, std::size_t i) {
  // t[i] is the container ident; matches `X . begin|cbegin|rbegin|crbegin (`.
  return i + 3 < t.size() && t[i + 1].Is(".") &&
         IsAnyOf(t[i + 2], {"begin", "cbegin", "rbegin", "crbegin"}) &&
         t[i + 3].Is("(");
}

// First identifier at or after `from` (stopping at `until`), skipping
// namespace qualifiers — the "base" of an expression like `std::move(x)`
// is x, of `*ptr` is ptr.
std::size_t BaseIdent(const Tokens& t, std::size_t from, std::size_t until) {
  for (std::size_t k = from; k < until; ++k) {
    if (t[k].kind != Token::Kind::kIdent) continue;
    if (k + 1 < until && t[k + 1].Is("::")) continue;  // qualifier
    if (IsAnyOf(t[k], {"const", "auto", "move"})) continue;
    return k;
  }
  return kNoMatch;
}

// Start of the statement containing token `i` (one past the previous
// `;` / `{` / `}`, bounded below by `floor`).
std::size_t StmtStart(const Tokens& t, std::size_t i, std::size_t floor) {
  for (std::size_t k = i; k-- > floor;) {
    if (t[k].Is(";") || t[k].Is("{") || t[k].Is("}")) return k + 1;
  }
  return floor;
}

std::size_t StmtEnd(const Tokens& t, std::size_t i, std::size_t ceil) {
  for (std::size_t k = i; k < ceil; ++k) {
    if (t[k].Is(";")) return k;
  }
  return ceil;
}

}  // namespace

bool IsUnorderedType(std::string_view type) {
  return kUnordered.count(type) != 0;
}

std::vector<FlowFinding> UnorderedFlow(const Tokens& t,
                                       const ParsedFile& parsed, const Fn& fn,
                                       const SymbolTable& syms,
                                       bool protocol_dir) {
  std::vector<FlowFinding> out;
  std::set<std::string> dedupe;  // "kind|line|var"
  auto flag = [&](FlowFinding::Kind kind, std::uint32_t line,
                  const std::string& var) {
    const std::string key = std::to_string(static_cast<int>(kind)) + "|" +
                            std::to_string(line) + "|" + var;
    if (!dedupe.insert(key).second) return;
    out.push_back(FlowFinding{line, kind, var});
  };

  auto is_unordered_var = [&](const std::string& name, std::size_t at) {
    const Symbol* s = syms.LookupAt(name, at);
    return s != nullptr && IsUnorderedType(s->type);
  };

  // name -> line: constructed from unordered iteration, not yet sorted or
  // read. A read flags det-unordered-iter and moves the name to tainted_.
  std::map<std::string, std::uint32_t> pending;
  std::set<std::string> tainted;
  std::set<std::string> iter_read_flagged;  // one read flag per variable

  // Reads a span for sink purposes: pending names get their deferred
  // iter flag; tainted names trigger the protocol escape (when enabled).
  auto scan_sink_span = [&](std::size_t from, std::size_t until,
                            bool escape_sink) {
    for (std::size_t k = from; k < until && k < t.size(); ++k) {
      if (t[k].kind != Token::Kind::kIdent) continue;
      if (k > 0 && (t[k - 1].Is(".") || t[k - 1].Is("->"))) continue;
      const std::string& name = t[k].text;
      auto p = pending.find(name);
      if (p != pending.end()) {
        if (iter_read_flagged.insert(name).second) {
          flag(FlowFinding::Kind::kUnorderedIter, t[k].line, name);
        }
        pending.erase(p);
        tainted.insert(name);
      }
      if (escape_sink && protocol_dir && tainted.count(name)) {
        flag(FlowFinding::Kind::kProtocolEscape, t[k].line, name);
      }
    }
  };

  for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
    const Token& tok = t[i];
    if (tok.kind != Token::Kind::kIdent) continue;

    // --- kill: sort/stable_sort applied to a variable -----------------
    if (IsAnyOf(tok, {"sort", "stable_sort"}) && i + 1 < fn.body_end &&
        t[i + 1].Is("(")) {
      const std::size_t close = parsed.match[i + 1] != kNoMatch
                                    ? parsed.match[i + 1]
                                    : MatchForward(t, i + 1, "(", ")");
      const std::size_t base = BaseIdent(t, i + 2, close);
      if (base != kNoMatch) {
        pending.erase(t[base].text);
        tainted.erase(t[base].text);
      }
      i = close;
      continue;
    }

    // --- source: range-for over an unordered container ----------------
    if (tok.IsIdent("for") && i + 1 < fn.body_end && t[i + 1].Is("(")) {
      const std::size_t open = i + 1;
      const std::size_t close = parsed.match[open] != kNoMatch
                                    ? parsed.match[open]
                                    : MatchForward(t, open, "(", ")");
      // The range-for `:` sits at parenthesis depth 1.
      std::size_t colon = kNoMatch;
      int depth = 0;
      for (std::size_t k = open; k < close; ++k) {
        if (t[k].Is("(") || t[k].Is("[") || t[k].Is("{")) ++depth;
        if (t[k].Is(")") || t[k].Is("]") || t[k].Is("}")) --depth;
        if (t[k].Is(":") && depth == 1) {
          colon = k;
          break;
        }
        if (t[k].Is(";")) break;  // classic for
      }
      if (colon == kNoMatch) continue;
      const std::size_t base = BaseIdent(t, colon + 1, close);
      if (base == kNoMatch) continue;
      const std::string& range = t[base].text;
      bool taints_loop_vars = false;
      if (is_unordered_var(range, base)) {
        flag(FlowFinding::Kind::kUnorderedIter, t[base].line, range);
        taints_loop_vars = true;
      } else if (pending.count(range)) {
        if (iter_read_flagged.insert(range).second) {
          flag(FlowFinding::Kind::kUnorderedIter, t[base].line, range);
        }
        pending.erase(range);
        tainted.insert(range);
        taints_loop_vars = true;
      } else if (tainted.count(range)) {
        taints_loop_vars = true;  // unsorted copy: contents still tainted
      }
      if (taints_loop_vars) {
        for (const Symbol& s : syms.All()) {
          if (s.decl_index > open && s.decl_index < colon) {
            tainted.insert(s.name);
          }
        }
      }
      i = close;
      continue;
    }

    // --- source: .begin() family on an unordered container ------------
    if (IsBeginCall(t, i) && is_unordered_var(tok.text, i)) {
      const std::size_t stmt = StmtStart(t, i, fn.body_begin + 1);
      // A declaration in the same statement captures the iteration
      // instead of exposing it: taint the declared name.
      std::string decl_name;
      for (const Symbol& s : syms.All()) {
        if (s.decl_index >= stmt && s.decl_index < i) decl_name = s.name;
      }
      if (decl_name.empty()) {
        // Direct-init declarations (`std::vector<T> out(x.begin(), ...)`)
        // have no `=` tail, so the symbol table misses them; recover the
        // shape here: the identifier owning the call parenthesis that
        // encloses us, with a plausible type to its left.
        for (std::size_t k = i; k-- > stmt;) {
          if (!t[k].Is("(")) continue;
          const std::size_t close = parsed.match[k];
          if (close == kNoMatch || close < i) continue;
          if (k > stmt && t[k - 1].kind == Token::Kind::kIdent) {
            std::size_t name_idx = k - 1;
            std::size_t back = name_idx;
            while (back > stmt &&
                   (t[back - 1].Is("&") || t[back - 1].Is("*"))) {
              --back;
            }
            const bool has_type =
                back > stmt && (t[back - 1].kind == Token::Kind::kIdent ||
                                t[back - 1].Is(">") || t[back - 1].Is(">>"));
            if (has_type && !IsAnyOf(t[name_idx], {"if", "while", "return",
                                                   "switch", "for"})) {
              decl_name = t[name_idx].text;
            }
          }
          break;
        }
      }
      if (!decl_name.empty()) {
        pending[decl_name] = tok.line;
      } else {
        flag(FlowFinding::Kind::kUnorderedIter, tok.line, tok.text);
      }
      i += 3;  // past `. begin (`
      continue;
    }

    // --- spread: assignment with a tainted right-hand side ------------
    if (tok.kind == Token::Kind::kIdent && i + 1 < fn.body_end) {
      std::size_t eq = kNoMatch;
      if (t[i + 1].Is("=") &&
          !(i + 2 < fn.body_end && t[i + 2].Is("="))) {  // not `==`
        eq = i + 1;
      } else if (i + 2 < fn.body_end && t[i + 2].Is("=") &&
                 t[i + 1].kind == Token::Kind::kPunct &&
                 IsAnyOf(t[i + 1], {"+", "-", "*", "/", "%", "|", "^"})) {
        eq = i + 2;  // compound assignment, lexed as op then `=`
      }
      const bool member = i > 0 && (t[i - 1].Is(".") || t[i - 1].Is("->"));
      if (eq != kNoMatch && !member) {
        const std::size_t end = StmtEnd(t, eq, fn.body_end);
        bool rhs_tainted = false;
        for (std::size_t k = eq + 1; k < end; ++k) {
          if (t[k].kind == Token::Kind::kIdent && tainted.count(t[k].text)) {
            rhs_tainted = true;
            break;
          }
        }
        if (rhs_tainted) tainted.insert(tok.text);
        // Reassignment from a clean source clears nothing: a variable
        // that ever held hash-ordered data stays suspicious (cheap and
        // conservative). Pending vars *are* cleared: the old iteration
        // result is gone before anyone read it.
        if (!rhs_tainted) pending.erase(tok.text);
      }
    }

    // --- sinks ---------------------------------------------------------
    if (IsAnyOf(tok, {"Send", "SendBatch", "Awake", "push_back",
                      "emplace_back"}) &&
        i + 1 < fn.body_end && t[i + 1].Is("(")) {
      const std::size_t close = parsed.match[i + 1] != kNoMatch
                                    ? parsed.match[i + 1]
                                    : MatchForward(t, i + 1, "(", ")");
      scan_sink_span(i + 2, close, /*escape_sink=*/true);
      continue;
    }
    if (tok.IsIdent("Message") && i + 1 < fn.body_end && t[i + 1].Is("{")) {
      const std::size_t close = parsed.match[i + 1] != kNoMatch
                                    ? parsed.match[i + 1]
                                    : MatchForward(t, i + 1, "{", "}");
      scan_sink_span(i + 2, close, /*escape_sink=*/true);
      continue;
    }
    if (tok.IsIdent("return") || tok.IsIdent("co_return")) {
      scan_sink_span(i + 1, StmtEnd(t, i, fn.body_end),
                     /*escape_sink=*/true);
      continue;
    }

    // --- deferred read of a pending variable ---------------------------
    if (pending.count(tok.text)) {
      const bool member = i > 0 && (t[i - 1].Is(".") || t[i - 1].Is("->"));
      const bool is_decl_site = [&] {
        const Symbol* s = syms.LookupAt(tok.text, i);
        return s != nullptr && s->decl_index == i;
      }();
      // Plain reassignment is handled above (clears pending); anything
      // else that mentions the name reads it.
      const bool reassign =
          i + 1 < fn.body_end && t[i + 1].Is("=") &&
          !(i + 2 < fn.body_end && t[i + 2].Is("="));
      if (!member && !is_decl_site && !reassign) {
        if (iter_read_flagged.insert(tok.text).second) {
          flag(FlowFinding::Kind::kUnorderedIter, tok.line, tok.text);
        }
        pending.erase(tok.text);
        tainted.insert(tok.text);
      }
    }
  }
  return out;
}

}  // namespace smst_lint
