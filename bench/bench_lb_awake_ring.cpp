// Experiment T1-lb-awake — Table 1, "AT Lower Bound" (Theorem 3).
//
// The Omega(log n) awake lower bound on rings, measured from three
// angles: (a) the witness structure — the two heaviest edges of a
// random-weight ring are far apart, so an MST decision must cross
// Omega(n) hops; (b) our algorithms' measured awake complexity vs the
// log_13(n) floor (they sit a constant factor above it, i.e. they are
// awake-optimal); (c) the Lemma-11 isolation statistic replayed from the
// actual wake schedules.
#include <cmath>
#include <iostream>
#include <vector>

#include "smst/graph/generators.h"
#include "smst/lower_bounds/ring_experiment.h"
#include "smst/mst/randomized_mst.h"
#include "smst/mst/deterministic_mst.h"
#include "smst/util/table.h"

int main() {
  std::cout << "== T1-lb-awake: Theorem 3 — Omega(log n) awake lower bound "
               "on rings ==\n\n";

  // (a) Separation of the two heaviest edges, over seeds.
  {
    std::cout << "-- witness structure: hop separation of the two heaviest "
                 "edges (20 seeds)\n";
    smst::Table t({"n", "mean separation", "mean / n", "P[sep >= n/8]"});
    for (std::size_t n : {128u, 256u, 512u, 1024u, 2048u}) {
      double total = 0;
      int big = 0;
      for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        smst::Xoshiro256 rng(seed * 1000 + n);
        auto g = smst::MakeRing(n, rng);
        const auto sep = smst::TwoHeaviestEdgeSeparation(g);
        total += static_cast<double>(sep);
        big += sep >= n / 8 ? 1 : 0;
      }
      t.AddRow({smst::Table::Num(static_cast<std::uint64_t>(n)),
                smst::Table::Num(total / 20, 1),
                smst::Table::Num(total / 20 / double(n), 3),
                smst::Table::Num(big / 20.0, 2)});
    }
    t.Print(std::cout);
    std::cout << "(uniform edge positions -> mean separation ~ n/4; the "
                 "constant-probability Omega(n) gap the proof needs)\n\n";
  }

  // (b) Measured awake vs the floor.
  {
    std::cout << "-- measured awake complexity vs the Theorem-3 floor\n";
    smst::Table t({"n", "floor log_13 n", "Randomized awake",
                   "ratio", "Deterministic awake", "ratio"});
    for (std::size_t n : {64u, 128u, 256u, 512u, 1024u}) {
      smst::Xoshiro256 rng(n);
      auto g = smst::MakeRing(n, rng);
      auto rnd = smst::RunRandomizedMst(g, {.seed = 5});
      auto det = smst::RunDeterministicMst(g, {.seed = 5});
      const double floor = smst::RingAwakeFloor(n);
      t.AddRow({smst::Table::Num(static_cast<std::uint64_t>(n)),
                smst::Table::Num(floor, 2),
                smst::Table::Num(rnd.stats.max_awake),
                smst::Table::Num(double(rnd.stats.max_awake) / floor, 1),
                smst::Table::Num(det.stats.max_awake),
                smst::Table::Num(double(det.stats.max_awake) / floor, 1)});
    }
    t.Print(std::cout);
    std::cout << "(measured >= floor always; the roughly flat ratio columns "
                 "are the algorithms' awake-optimality)\n\n";
  }

  // (c) Lemma 11 isolation fractions from real wake schedules.
  {
    std::cout << "-- Lemma 11 replay: fraction of 13^a-segments with an "
                 "isolated vertex after a wakes (Randomized-MST run)\n";
    smst::Table t({"n", "a=1", "a=2", "a=3"});
    for (std::size_t n : {169u, 2197u}) {  // 13^2, 13^3
      smst::MstOptions opt;
      opt.seed = 7;
      opt.record_wake_times = true;
      smst::Xoshiro256 rng(n);
      auto g = smst::MakeRing(n, rng);
      auto run = smst::RunRandomizedMst(g, opt);
      std::vector<std::string> row{
          smst::Table::Num(static_cast<std::uint64_t>(n))};
      for (std::size_t a = 1; a <= 3; ++a) {
        std::size_t len = 1;
        for (std::size_t i = 0; i < a; ++i) len *= 13;
        row.push_back(len <= n
                          ? smst::Table::Num(smst::SegmentIsolationFraction(
                                                 n, run.wake_times, a),
                                             3)
                          : "-");
      }
      t.AddRow(row);
    }
    t.Print(std::cout);
    std::cout << "(the proof guarantees >= 0.5 for every algorithm; chaining "
                 "a up to log_13 n forces Omega(log n) awake rounds)\n";
  }
  return 0;
}
