#include "harness.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <utility>

#include "alloc_count.h"
#include "smst/graph/mst_verify.h"
#include "smst/runtime/simulator.h"
#include "smst/util/args.h"

namespace smst::bench {

std::string JsonNum(double v) { return smst::JsonNum(v); }

std::string JsonStr(const std::string& s) { return smst::JsonStr(s); }

Harness::Harness(std::string experiment, int argc, char** argv)
    : experiment_(std::move(experiment)) {
  ArgParser args(argc, argv);
  runner_ = ParallelRunner(static_cast<unsigned>(args.GetUint("threads", 0)));
  seeds_override_ = args.GetUint("seeds", 0);
  shards_ = static_cast<std::uint32_t>(args.GetUint("shards", 0));
  shard_policy_ = ParseShardPolicy(args.GetString("shard-policy", "block"));
  engine_ = ParseEngineMode(args.GetString("engine", "coroutine"));
  const std::string json_path = args.GetString("json", "");
  if (!json_path.empty()) {
    json_.open(json_path);
    if (!json_) {
      // Bad user input, not a bug: exit cleanly instead of letting the
      // exception abort the bench with a terminate() backtrace.
      std::cerr << "error: cannot write --json file '" << json_path << "'\n";
      std::exit(2);
    }
  }
  if (auto unused = args.UnusedFlags(); !unused.empty()) {
    std::cerr << "note: ignoring unknown flag --" << unused.front()
              << " (harness flags: --threads N, --seeds K, --json PATH, "
                 "--shards K, --shard-policy block|rr, "
                 "--engine coroutine|flat)\n";
  }
}

Harness::~Harness() = default;

void Harness::JsonRecord(const std::string& record_type,
                         const std::string& fields) {
  if (!json_.is_open()) return;
  json_ << "{\"experiment\":" << JsonStr(experiment_)
        << ",\"record\":" << JsonStr(record_type) << "," << fields << "}\n";
}

SweepOutput Harness::Sweep(MstAlgorithm algo,
                           const std::vector<std::size_t>& sizes,
                           std::uint64_t seeds, const GraphFactory& factory,
                           const MstOptions& base, bool verify) {
  SweepOutput out;
  out.cells.resize(sizes.size() * seeds);

  // Algorithms without a flat lowering run their cells on the coroutine
  // engine (results are bit-identical anyway; only wall-clock differs).
  // Announce the downgrade so `--engine flat` over a multi-algorithm
  // bench is honest instead of aborting the suite mid-sweep.
  EngineMode engine = engine_;
  if (engine == EngineMode::kFlat && !SupportsFlatEngine(algo, base)) {
    std::cerr << "note: " << MstAlgorithmName(algo)
              << " has no flat-engine lowering; sweeping it on the "
                 "coroutine engine\n";
    engine = EngineMode::kCoroutine;
  }

  // Workers fill disjoint cells; graphs are built inside the cell so
  // generation parallelizes too. Everything a cell computes depends only
  // on (n, seed), so the result set is independent of thread count.
  runner_.ForEach(out.cells.size(), [&](std::size_t i) {
    const std::size_t n = sizes[i / seeds];
    const std::uint64_t seed = 1 + i % seeds;
    const WeightedGraph g = factory(n, seed);
    MstOptions options = base;
    options.seed = seed;
    // Sharded engine selection is an execution detail: results are
    // bit-identical for every shard count, so the sweep's cells stay a
    // pure function of (n, seed) either way.
    options.shards = shards_;
    options.shard_policy = shard_policy_;
    options.engine = engine;
    // Each cell runs wholly on this worker thread, so the thread-local
    // counter difference is exactly this run's allocations. Graph
    // generation (above) and verification (below) are excluded: the
    // budget under regression watch is the simulated run's.
    const std::uint64_t allocs_before = AllocCount();
    MstRunResult run = ComputeMst(g, algo, options);
    const std::uint64_t allocs = AllocCount() - allocs_before;
    if (verify) {
      auto check = VerifyExactMst(g, run.tree_edges);
      if (!check.ok) {
        throw std::runtime_error(std::string("MST verification failed (") +
                                 MstAlgorithmName(algo) +
                                 ", n=" + std::to_string(n) +
                                 ", seed=" + std::to_string(seed) +
                                 "): " + check.error);
      }
    }
    out.cells[i] = SweepCell{n, seed, allocs, std::move(run)};
  });

  const std::string algo_field = "\"algo\":" + JsonStr(MstAlgorithmName(algo));
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    SweepAggregate agg;
    agg.n = sizes[i];
    agg.runs = seeds;
    double awake_round_sum = 0;
    for (std::uint64_t s = 0; s < seeds; ++s) {
      const SweepCell& cell = out.cells[i * seeds + s];
      const RunStats& st = cell.run.stats;
      agg.max_awake += static_cast<double>(st.max_awake);
      agg.avg_awake += st.avg_awake;
      agg.rounds += static_cast<double>(st.rounds);
      agg.messages += static_cast<double>(st.total_messages);
      agg.bits += static_cast<double>(st.total_bits);
      agg.dropped += static_cast<double>(st.dropped_messages);
      agg.phases += static_cast<double>(cell.run.phases);
      agg.allocs += static_cast<double>(cell.allocs);
      awake_round_sum += static_cast<double>(st.awake_node_rounds);
      const double cell_apar =
          st.awake_node_rounds == 0
              ? 0.0
              : static_cast<double>(cell.allocs) /
                    static_cast<double>(st.awake_node_rounds);
      JsonRecord(
          "run",
          algo_field + ",\"n\":" + std::to_string(cell.n) +
              ",\"seed\":" + std::to_string(cell.seed) +
              ",\"max_awake\":" + std::to_string(st.max_awake) +
              ",\"avg_awake\":" + JsonNum(st.avg_awake) +
              ",\"rounds\":" + std::to_string(st.rounds) +
              ",\"messages\":" + std::to_string(st.total_messages) +
              ",\"bits\":" + std::to_string(st.total_bits) +
              ",\"dropped\":" + std::to_string(st.dropped_messages) +
              ",\"phases\":" + std::to_string(cell.run.phases) +
              ",\"allocs\":" + std::to_string(cell.allocs) +
              ",\"allocs_per_awake_round\":" + JsonNum(cell_apar));
    }
    const double k = static_cast<double>(seeds);
    agg.allocs_per_awake_round =
        awake_round_sum == 0 ? 0.0 : agg.allocs / awake_round_sum;
    agg.max_awake /= k;
    agg.avg_awake /= k;
    agg.rounds /= k;
    agg.messages /= k;
    agg.bits /= k;
    agg.dropped /= k;
    agg.phases /= k;
    agg.allocs /= k;
    JsonRecord("aggregate",
               algo_field + ",\"n\":" + std::to_string(agg.n) +
                   ",\"runs\":" + std::to_string(agg.runs) +
                   ",\"max_awake\":" + JsonNum(agg.max_awake) +
                   ",\"avg_awake\":" + JsonNum(agg.avg_awake) +
                   ",\"rounds\":" + JsonNum(agg.rounds) +
                   ",\"messages\":" + JsonNum(agg.messages) +
                   ",\"bits\":" + JsonNum(agg.bits) +
                   ",\"dropped\":" + JsonNum(agg.dropped) +
                   ",\"phases\":" + JsonNum(agg.phases) +
                   ",\"allocs\":" + JsonNum(agg.allocs) +
                   ",\"allocs_per_awake_round\":" +
                   JsonNum(agg.allocs_per_awake_round));
    out.by_n.push_back(agg);
  }
  return out;
}

}  // namespace smst::bench
