// Experiment L4-blue — Lemmas 4 and 5.
//
// In Deterministic-MST, every connected subgraph H' of the valid-MOE
// supergraph H with |H'| >= 342 has at least |H'|/342 Blue fragments, and
// all Blue fragments merge away. We measure the per-phase Blue fraction
// (it is far above the worst-case 1/342 floor in practice) and the phase
// counts vs the paper's astronomically conservative budget.
#include <iostream>
#include <vector>

#include "smst/graph/generators.h"
#include "smst/mst/deterministic_mst.h"
#include "smst/util/table.h"

int main() {
  std::cout << "== L4-blue: Lemmas 4/5 — Blue fragments per phase "
               "(Deterministic-MST) ==\n\n";

  smst::Table t({"graph", "n", "phase", "fragments", "Blue", "Blue fraction",
                 "Lemma 4 floor"});
  struct Family {
    const char* name;
    smst::WeightedGraph g;
  };
  smst::Xoshiro256 rng(5);
  std::vector<Family> families;
  families.push_back({"ErdosRenyi(256, 8/n)",
                      smst::MakeErdosRenyi(256, 8.0 / 256.0, rng)});
  families.push_back({"Ring(256)", smst::MakeRing(256, rng)});
  families.push_back({"Grid(16x16)", smst::MakeGrid(16, 16, rng)});

  for (const auto& fam : families) {
    auto r = smst::RunDeterministicMst(fam.g, {.seed = 9});
    for (std::uint64_t p = 1; p <= r.phases; ++p) {
      const auto frags = r.fragments_per_phase[p];
      const auto blue = r.blue_per_phase[p];
      if (frags == 0) continue;
      t.AddRow({fam.name,
                smst::Table::Num(
                    static_cast<std::uint64_t>(fam.g.NumNodes())),
                smst::Table::Num(p), smst::Table::Num(frags),
                smst::Table::Num(blue),
                smst::Table::Num(double(blue) / double(frags), 3),
                "0.003"});
    }
  }
  t.Print(std::cout);

  std::cout << "\nphase budget comparison (measured vs the paper's "
               "ceil(log_{240000/239999} n) + 240000):\n";
  smst::Table b({"n", "measured phases", "paper budget"});
  for (std::size_t n : {64u, 256u, 1024u}) {
    smst::Xoshiro256 r2(n);
    auto g = smst::MakeErdosRenyi(n, 8.0 / double(n), r2);
    auto run = smst::RunDeterministicMst(g, {.seed = 2});
    b.AddRow({smst::Table::Num(static_cast<std::uint64_t>(n)),
              smst::Table::Num(run.phases),
              smst::Table::Num(smst::DeterministicPaperPhaseCount(n))});
  }
  b.Print(std::cout);
  std::cout << "\nExpected: Blue fractions around 1/3-1/2 (greedy coloring "
               "makes many local minima Blue), vastly above the\nadversarial "
               "1/342 floor — which is why the measured phase counts are "
               "~log(n) with a small constant.\n";
  return 0;
}
