// Experiment L1-decay — Lemma 1.
//
// In Randomized-MST, the expected number of fragments drops by a factor
// >= 4/3 per phase (a fragment survives only if it flips heads or its
// MOE points at another tails fragment: probability <= 3/4). We average
// the per-phase fragment counts over many seeds and compare the measured
// survival ratio with the 3/4 bound, and the phase count with the
// 4*ceil(log_{4/3} n) + 1 budget.
#include <cmath>
#include <iostream>
#include <vector>

#include "harness.h"
#include "smst/graph/generators.h"
#include "smst/mst/randomized_mst.h"
#include "smst/util/table.h"

int main(int argc, char** argv) {
  smst::bench::Harness h("fragment_decay", argc, argv);
  std::cout << "== L1-decay: Lemma 1 — fragments shrink by >= 4/3 per phase "
               "(expectation) ==\n\n";
  const std::uint64_t seeds = h.Seeds(20);
  const std::size_t n = 512;

  auto sweep = h.Sweep(
      smst::MstAlgorithm::kRandomized, {n}, seeds,
      [](std::size_t nodes, std::uint64_t seed) {
        smst::Xoshiro256 rng(seed);
        return smst::MakeErdosRenyi(nodes, 8.0 / static_cast<double>(nodes),
                                    rng);
      },
      {}, false);

  std::vector<double> frag_sum;  // mean fragments at phase p
  std::vector<int> samples;
  double phases_sum = 0;
  for (const auto& cell : sweep.cells) {
    const auto& r = cell.run;
    phases_sum += static_cast<double>(r.phases);
    for (std::uint64_t p = 1; p <= r.phases; ++p) {
      if (frag_sum.size() < p) {
        frag_sum.resize(p, 0.0);
        samples.resize(p, 0);
      }
      frag_sum[p - 1] += static_cast<double>(r.fragments_per_phase[p]);
      ++samples[p - 1];
    }
  }

  smst::Table t({"phase", "mean fragments", "survival ratio",
                 "Lemma 1 bound", "runs still active"});
  for (std::size_t p = 0; p < frag_sum.size(); ++p) {
    const double mean = frag_sum[p] / samples[p];
    std::string ratio = "-";
    if (p > 0 && samples[p] == samples[p - 1]) {
      ratio = smst::Table::Num(mean / (frag_sum[p - 1] / samples[p - 1]), 3);
    }
    t.AddRow({smst::Table::Num(static_cast<std::uint64_t>(p + 1)),
              smst::Table::Num(mean, 1), ratio, "<= 0.750",
              smst::Table::Num(static_cast<std::uint64_t>(samples[p]))});
  }
  t.Print(std::cout);

  const double budget = smst::RandomizedPaperPhaseCount(n);
  std::cout << "\nmean phases to termination: "
            << phases_sum / static_cast<double>(seeds)
            << "   paper budget 4*ceil(log_{4/3} n)+1 = " << budget
            << "   (n = " << n << ", " << seeds << " seeds)\n"
            << "Expected: the measured survival ratio hovers right at the "
               "3/4 expectation bound — Lemma 1's analysis\nis tight "
               "(variance lets late, small-sample phases wiggle around it) "
               "— and the phase count stays well\ninside the paper "
               "budget.\n";
  return 0;
}
