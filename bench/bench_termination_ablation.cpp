// Ablation for the termination-mode design choice (DESIGN.md §2.1).
//
// The paper runs a fixed phase budget; our default adds an in-model DONE
// broadcast (O(1) extra awake rounds) and stops exactly when one
// fragment remains. This bench quantifies what each choice costs:
// identical trees, identical awake complexity, but the paper budget
// inflates the round count by the unused phases — drastically so for
// the deterministic algorithm, whose budget constant is ~240000 phases.
#include <iostream>
#include <vector>

#include "harness.h"
#include "smst/graph/generators.h"
#include "smst/mst/deterministic_mst.h"
#include "smst/mst/randomized_mst.h"
#include "smst/util/table.h"

int main(int argc, char** argv) {
  smst::bench::Harness h("termination_ablation", argc, argv);
  std::cout << "== ablation: EarlyDetect termination vs the paper's fixed "
               "phase budget ==\n\n";

  {
    std::cout << "-- Randomized-MST (budget = 4*ceil(log_{4/3} n) + 1)\n";
    const std::vector<std::size_t> sizes{64, 256, 1024};
    // One paired (early, paper-budget) cell per n, run across the pool.
    std::vector<smst::MstRunResult> early_runs(sizes.size());
    std::vector<smst::MstRunResult> paper_runs(sizes.size());
    h.Runner().ForEach(sizes.size(), [&](std::size_t i) {
      const std::size_t n = sizes[i];
      smst::Xoshiro256 rng(n);
      auto g = smst::MakeErdosRenyi(n, 8.0 / double(n), rng);
      smst::MstOptions early;
      early.seed = 3;
      early_runs[i] = smst::RunRandomizedMst(g, early);
      smst::MstOptions paper;
      paper.seed = 3;
      paper.termination = smst::TerminationMode::kPaperPhaseCount;
      paper_runs[i] = smst::RunRandomizedMst(g, paper);
    });
    smst::Table t({"n", "mode", "phases (active)", "phase budget", "rounds",
                   "awake", "same tree?"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const std::size_t n = sizes[i];
      const auto& a = early_runs[i];
      const auto& b = paper_runs[i];
      const char* same = a.tree_edges == b.tree_edges ? "yes" : "NO";
      t.AddRow({smst::Table::Num(static_cast<std::uint64_t>(n)), "early",
                smst::Table::Num(a.phases), "-",
                smst::Table::Num(a.stats.rounds),
                smst::Table::Num(a.stats.max_awake), same});
      t.AddRow({smst::Table::Num(static_cast<std::uint64_t>(n)), "paper",
                smst::Table::Num(b.phases),
                smst::Table::Num(smst::RandomizedPaperPhaseCount(n)),
                smst::Table::Num(b.stats.rounds),
                smst::Table::Num(b.stats.max_awake), same});
    }
    t.Print(std::cout);
    std::cout << "(same tree, same awake complexity — the budget only adds "
                 "empty rounds at the tail; EarlyDetect's DONE broadcast is "
                 "free because it rides the existing Fragment-Broadcast)\n\n";
  }

  {
    std::cout << "-- Deterministic-MST: why the paper budget is simulated "
                 "only at toy sizes\n";
    smst::Table t({"n", "mode", "phases (active)", "phase budget", "rounds",
                   "awake"});
    for (std::size_t n : {6u, 8u}) {
      smst::Xoshiro256 rng(n);
      auto g = smst::MakeRing(n, rng);
      smst::MstOptions early;
      early.seed = 1;
      auto a = smst::RunDeterministicMst(g, early);
      smst::MstOptions paper;
      paper.seed = 1;
      paper.termination = smst::TerminationMode::kPaperPhaseCount;
      auto b = smst::RunDeterministicMst(g, paper);
      t.AddRow({smst::Table::Num(static_cast<std::uint64_t>(n)), "early",
                smst::Table::Num(a.phases), "-",
                smst::Table::Num(a.stats.rounds),
                smst::Table::Num(a.stats.max_awake)});
      t.AddRow({smst::Table::Num(static_cast<std::uint64_t>(n)), "paper",
                smst::Table::Num(b.phases),
                smst::Table::Num(smst::DeterministicPaperPhaseCount(n)),
                smst::Table::Num(b.stats.rounds),
                smst::Table::Num(b.stats.max_awake)});
    }
    t.Print(std::cout);
    std::cout << "(the ~10^6-phase worst-case budget blows the round count "
                 "up by ~10^5x over the 3-4 phases actually needed, at zero "
                 "awake cost — empty rounds are free in the sleeping model, "
                 "but the wall-clock of a real deployment is not)\n";
  }
  return 0;
}
