// Experiment R1-robustness — fault-injection degradation curves.
//
// The paper's algorithms are drop-free by construction: the sleeping
// model loses a message only if the protocol *chose* mismatched wake
// schedules, and the transmission schedules are designed so that never
// happens. This bench measures how far that brittleness carries under an
// adversary: for each fault intensity (message drop rate, wake jitter
// radius) it runs both MST algorithms over many seeds and reports the
// outcome mix (completed / wrong-result / non-termination /
// crashed-partition), the fraction of runs whose output is still the
// exact MST, and the awake inflation of surviving runs relative to the
// fault-free baseline.
//
// JSON records (one per (algorithm, axis, intensity) config, schema
// DESIGN.md §8): record "robustness" with the outcome histogram and the
// degradation measurements.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "harness.h"
#include "smst/faults/fault_plan.h"
#include "smst/graph/generators.h"
#include "smst/graph/mst_verify.h"
#include "smst/mst/api.h"
#include "smst/runtime/parallel_runner.h"
#include "smst/util/table.h"

namespace {

struct ConfigResult {
  std::uint64_t completed = 0;
  std::uint64_t wrong = 0;
  std::uint64_t nonterm = 0;
  std::uint64_t crashed = 0;
  std::uint64_t mst_correct = 0;
  double mean_awake_completed = 0;  // over completed runs (0 if none)
  double mean_injected = 0;         // drops+delays+dups+jitters per run
};

ConfigResult Summarize(const smst::WeightedGraph& g,
                       const std::vector<smst::MstRunResult>& runs) {
  ConfigResult c;
  double awake_sum = 0;
  double injected_sum = 0;
  for (const auto& r : runs) {
    const auto& f = r.outcome.faults;
    injected_sum += static_cast<double>(f.injected_drops + f.injected_delays +
                                        f.injected_duplicates +
                                        f.jittered_wakes + f.suppressed_wakes);
    switch (r.outcome.status) {
      case smst::RunStatus::kCompleted: {
        ++c.completed;
        awake_sum += static_cast<double>(r.stats.max_awake);
        if (smst::VerifyExactMst(g, r.tree_edges).ok) ++c.mst_correct;
        break;
      }
      case smst::RunStatus::kWrongResult: ++c.wrong; break;
      case smst::RunStatus::kNonTermination: ++c.nonterm; break;
      case smst::RunStatus::kCrashedPartition: ++c.crashed; break;
    }
  }
  if (c.completed > 0) {
    c.mean_awake_completed = awake_sum / static_cast<double>(c.completed);
  }
  c.mean_injected = injected_sum / static_cast<double>(runs.size());
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  smst::bench::Harness h("robustness", argc, argv);
  std::cout << "== R1-robustness: fault-injection degradation curves ==\n\n";

  const std::uint64_t seeds = h.Seeds(10);
  const std::vector<double> drop_rates = {0,      1e-5, 3e-5, 1e-4,
                                          3e-4,   1e-3, 3e-3};
  const std::vector<std::uint64_t> jitters = {0, 1, 2, 4};

  struct AlgoCase {
    smst::MstAlgorithm algo;
    std::size_t n;
  };
  const std::vector<AlgoCase> cases = {
      {smst::MstAlgorithm::kRandomized, 128},
      {smst::MstAlgorithm::kDeterministic, 64},
  };

  for (const AlgoCase& ac : cases) {
    smst::Xoshiro256 gen_rng(1);
    const auto g = smst::MakeErdosRenyi(
        ac.n, 8.0 / static_cast<double>(ac.n), gen_rng);
    const char* algo_name = smst::MstAlgorithmName(ac.algo);
    std::cout << algo_name << " on n=" << ac.n << " m=" << g.NumEdges()
              << ", " << seeds << " seeds per intensity\n";

    double baseline_awake = 0;
    smst::Table t({"axis", "intensity", "completed", "wrong", "non-term",
                   "crashed", "MST-correct", "awake x baseline"});

    // Axis 1: message drop rate (jitter 0). Axis 2: wake jitter (drop 0).
    // Intensity 0 on either axis is the shared fault-free baseline.
    for (int axis = 0; axis < 2; ++axis) {
      const std::size_t count =
          axis == 0 ? drop_rates.size() : jitters.size();
      for (std::size_t i = axis == 0 ? 0 : 1; i < count; ++i) {
        const double drop = axis == 0 ? drop_rates[i] : 0.0;
        const std::uint64_t jitter = axis == 0 ? 0 : jitters[i];
        smst::FaultPlan plan;
        if (drop > 0) {
          smst::FaultRule rule;
          rule.kind = smst::FaultKind::kDrop;
          rule.probability = drop;
          plan.rules.push_back(rule);
        }
        if (jitter > 0) {
          smst::FaultRule rule;
          rule.kind = smst::FaultKind::kWakeJitter;
          rule.param = jitter;
          plan.rules.push_back(rule);
        }

        smst::MstOptions opt;
        if (!plan.Empty()) opt.fault_plan = &plan;
        std::vector<smst::RunSpec> specs(seeds);
        for (std::uint64_t s = 0; s < seeds; ++s) {
          specs[s] = smst::RunSpec{&g, ac.algo, opt, s + 1};
        }
        const auto runs = h.Runner().RunAll(specs);
        const ConfigResult c = Summarize(g, runs);
        if (axis == 0 && i == 0) {
          baseline_awake = c.mean_awake_completed;
        }
        const double inflation =
            baseline_awake > 0 && c.completed > 0
                ? c.mean_awake_completed / baseline_awake
                : 0.0;

        const std::string axis_name = axis == 0 ? "drop" : "jitter";
        const std::string intensity =
            axis == 0 ? smst::Table::Num(drop, 5)
                      : smst::Table::Num(jitter);
        t.AddRow({axis_name, intensity, smst::Table::Num(c.completed),
                  smst::Table::Num(c.wrong), smst::Table::Num(c.nonterm),
                  smst::Table::Num(c.crashed),
                  smst::Table::Num(static_cast<double>(c.mst_correct) /
                                       static_cast<double>(seeds),
                                   2),
                  c.completed > 0 ? smst::Table::Num(inflation, 3) : "-"});

        h.JsonRecord(
            "robustness",
            "\"algo\":" + smst::bench::JsonStr(algo_name) +
                ",\"n\":" + smst::bench::JsonNum(double(ac.n)) +
                ",\"axis\":" + smst::bench::JsonStr(axis_name) +
                ",\"drop\":" + smst::bench::JsonNum(drop) +
                ",\"jitter\":" + smst::bench::JsonNum(double(jitter)) +
                ",\"seeds\":" + smst::bench::JsonNum(double(seeds)) +
                ",\"completed\":" + smst::bench::JsonNum(double(c.completed)) +
                ",\"wrong_result\":" + smst::bench::JsonNum(double(c.wrong)) +
                ",\"non_termination\":" +
                smst::bench::JsonNum(double(c.nonterm)) +
                ",\"crashed_partition\":" +
                smst::bench::JsonNum(double(c.crashed)) +
                ",\"mst_correct_fraction\":" +
                smst::bench::JsonNum(double(c.mst_correct) / double(seeds)) +
                ",\"mean_awake_completed\":" +
                smst::bench::JsonNum(c.mean_awake_completed) +
                ",\"awake_inflation\":" + smst::bench::JsonNum(inflation) +
                ",\"mean_injected_events\":" +
                smst::bench::JsonNum(c.mean_injected));
      }
    }
    t.Print(std::cout);
    std::cout << "\n";
  }

  std::cout
      << "Expected: both algorithms are drop-free by construction, so the\n"
         "degradation threshold is sharp — survival at drop rates around\n"
         "1e-5..1e-4 (a few total drops per run, absorbed only when they\n"
         "hit redundant fragment-ID exchanges), collapse to crashed-\n"
         "partition well before 1e-3; surviving runs near the threshold\n"
         "pay a small awake-inflation premium from extra merge phases.\n"
         "Wake jitter >= 1 desynchronizes the transmission schedules and\n"
         "kills every run outright — there is no graceful regime on that\n"
         "axis.\n";
  return 0;
}
