// Ablation: adaptive schedule blocks (extension beyond the paper).
//
// The paper's procedures stretch every block to 2n+1 rounds so that any
// fragment shape fits. But at the start of phase p every fragment's
// depth is provably at most B_p (B_1 = 0, B_{p+1} = 3B_p + 1), so blocks
// of span B_p + 1 suffice. The execution is bit-identical — same coins,
// same tree, same awake complexity — while the run time drops by a
// constant factor (the log n early phases cost O(3^p) instead of O(n)
// rounds each). The asymptotic class stays O(n log n): the paper's
// round-complexity claim is robust to this optimization.
#include <iostream>
#include <vector>

#include "harness.h"
#include "smst/graph/generators.h"
#include "smst/mst/randomized_mst.h"
#include "smst/util/table.h"

int main(int argc, char** argv) {
  smst::bench::Harness h("adaptive_blocks", argc, argv);
  std::cout << "== ablation: fixed 2n+1 blocks vs adaptive depth-bounded "
               "blocks (Randomized-MST) ==\n\n";
  const std::vector<std::size_t> sizes{128, 256, 512, 1024, 2048, 4096};
  std::vector<smst::MstRunResult> fixed_runs(sizes.size());
  std::vector<smst::MstRunResult> adaptive_runs(sizes.size());
  h.Runner().ForEach(sizes.size(), [&](std::size_t i) {
    const std::size_t n = sizes[i];
    smst::Xoshiro256 rng(n);
    auto g = smst::MakeErdosRenyi(n, 8.0 / double(n), rng);
    smst::MstOptions fixed;
    fixed.seed = 3;
    smst::MstOptions adaptive = fixed;
    adaptive.adaptive_blocks = true;
    fixed_runs[i] = smst::RunRandomizedMst(g, fixed);
    adaptive_runs[i] = smst::RunRandomizedMst(g, adaptive);
  });

  smst::Table t({"n", "rounds (fixed)", "rounds (adaptive)", "speedup",
                 "awake (both)", "same tree?"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto& a = fixed_runs[i];
    const auto& b = adaptive_runs[i];
    if (a.stats.max_awake != b.stats.max_awake) {
      std::cerr << "awake mismatch!\n";
      return 1;
    }
    t.AddRow({smst::Table::Num(static_cast<std::uint64_t>(sizes[i])),
              smst::Table::Num(a.stats.rounds),
              smst::Table::Num(b.stats.rounds),
              smst::Table::Num(double(a.stats.rounds) / double(b.stats.rounds),
                               2),
              smst::Table::Num(a.stats.max_awake),
              a.tree_edges == b.tree_edges ? "yes" : "NO"});
    h.JsonRecord("run",
                 "\"n\":" + std::to_string(sizes[i]) +
                     ",\"rounds_fixed\":" + std::to_string(a.stats.rounds) +
                     ",\"rounds_adaptive\":" + std::to_string(b.stats.rounds) +
                     ",\"max_awake\":" + std::to_string(a.stats.max_awake));
  }
  t.Print(std::cout);
  std::cout << "\nExpected: identical trees and awake complexity, with a "
               "~1.3-1.5x round speedup: the first ~log_3(n)\nphases shrink "
               "from Theta(n) to Theta(3^p) rounds each, but B_p saturates "
               "at n for the remaining\n~log_{4/3}(n) phases — a constant-"
               "factor win that leaves the paper's O(n log n) class intact.\n";
  return 0;
}
