// Ablation: adaptive schedule blocks (extension beyond the paper).
//
// The paper's procedures stretch every block to 2n+1 rounds so that any
// fragment shape fits. But at the start of phase p every fragment's
// depth is provably at most B_p (B_1 = 0, B_{p+1} = 3B_p + 1), so blocks
// of span B_p + 1 suffice. The execution is bit-identical — same coins,
// same tree, same awake complexity — while the run time drops by a
// constant factor (the log n early phases cost O(3^p) instead of O(n)
// rounds each). The asymptotic class stays O(n log n): the paper's
// round-complexity claim is robust to this optimization.
#include <iostream>

#include "smst/graph/generators.h"
#include "smst/mst/randomized_mst.h"
#include "smst/util/table.h"

int main() {
  std::cout << "== ablation: fixed 2n+1 blocks vs adaptive depth-bounded "
               "blocks (Randomized-MST) ==\n\n";
  smst::Table t({"n", "rounds (fixed)", "rounds (adaptive)", "speedup",
                 "awake (both)", "same tree?"});
  for (std::size_t n : {128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    smst::Xoshiro256 rng(n);
    auto g = smst::MakeErdosRenyi(n, 8.0 / double(n), rng);
    smst::MstOptions fixed;
    fixed.seed = 3;
    smst::MstOptions adaptive = fixed;
    adaptive.adaptive_blocks = true;
    auto a = smst::RunRandomizedMst(g, fixed);
    auto b = smst::RunRandomizedMst(g, adaptive);
    if (a.stats.max_awake != b.stats.max_awake) {
      std::cerr << "awake mismatch!\n";
      return 1;
    }
    t.AddRow({smst::Table::Num(static_cast<std::uint64_t>(n)),
              smst::Table::Num(a.stats.rounds),
              smst::Table::Num(b.stats.rounds),
              smst::Table::Num(double(a.stats.rounds) / double(b.stats.rounds),
                               2),
              smst::Table::Num(a.stats.max_awake),
              a.tree_edges == b.tree_edges ? "yes" : "NO"});
  }
  t.Print(std::cout);
  std::cout << "\nExpected: identical trees and awake complexity, with a "
               "~1.3-1.5x round speedup: the first ~log_3(n)\nphases shrink "
               "from Theta(n) to Theta(3^p) rounds each, but B_p saturates "
               "at n for the remaining\n~log_{4/3}(n) phases — a constant-"
               "factor win that leaves the paper's O(n log n) class intact.\n";
  return 0;
}
