// Flat-engine throughput curve (google-benchmark): the coroutine
// scheduler versus the flat batched-state-machine engine, serial and
// sharded, on identical work. Committed curve:
// bench/baselines/BENCH_flat.json.
//
// Two workload families:
//  * Dense rounds — every node awake and chattering on every port every
//    round (the round engine's worst case, same as bench_sharded). This
//    isolates per-node-round overhead: coroutine frame resume + scheduler
//    heap traffic vs one virtual Step() into a flat program. The ISSUE's
//    >=5x target is measured here.
//  * MST end-to-end — Randomized-MST and Deterministic-MST lowered to
//    their flat drivers (src/smst/mst/*_mst.cpp), so the curve also shows
//    what the lowering buys on the paper's real sleeping-model workload,
//    where most node-rounds are spent asleep.
//
// Engine axis (arg 1): 0 = coroutine serial, 1 = flat serial,
// 2 = flat + 2 shards. Results are bit-identical across all three
// (pinned by tests/flat_engine_test.cpp); this bench records the cost.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "smst/graph/generators.h"
#include "smst/mst/deterministic_mst.h"
#include "smst/mst/randomized_mst.h"
#include "smst/runtime/flat/program.h"
#include "smst/runtime/simulator.h"

namespace {

using namespace smst;

constexpr int kRounds = 32;

// arg1 encoding shared by every benchmark in this file.
enum EngineAxis : std::int64_t {
  kCoroutineSerial = 0,
  kFlatSerial = 1,
  kFlatSharded2 = 2,
};

Task<void> ChatterNode(NodeContext& ctx) {
  for (int r = 1; r <= kRounds; ++r) {
    SendBatch sends;
    for (std::uint32_t p = 0; p < ctx.Degree(); ++p) {
      sends.push_back({p, Message{1, ctx.Id(), 0, 0}});
    }
    co_await ctx.Awake(static_cast<Round>(r), std::move(sends));
  }
}

class FlatChatterProgram final : public FlatProgram {
 public:
  explicit FlatChatterProgram(const WeightedGraph& g) : g_(&g) {}

  Round Start(NodeIndex v, FlatEnv&, SendBatch& sends) override {
    PushAll(v, sends);
    return 1;
  }

  Round Step(NodeIndex v, Round now, FlatEnv&, const InboxBatch&,
             SendBatch& sends) override {
    if (now >= static_cast<Round>(kRounds)) return kFlatDone;
    PushAll(v, sends);
    return now + 1;
  }

 private:
  void PushAll(NodeIndex v, SendBatch& sends) const {
    const FlatNodeRef node{g_, v};
    for (std::uint32_t p = 0; p < node.Degree(); ++p) {
      sends.push_back({p, Message{1, node.Id(), 0, 0}});
    }
  }

  const WeightedGraph* g_;
};

SimulatorOptions OptionsFor(std::int64_t axis) {
  SimulatorOptions opt;
  // Throughput numbers are for the production configuration; the auditor
  // is O(messages) bookkeeping on top.
  opt.audit = AuditMode::kOff;
  if (axis != kCoroutineSerial) opt.engine = EngineMode::kFlat;
  if (axis == kFlatSharded2) opt.shards = 2;
  return opt;
}

void RunDense(benchmark::State& state, const WeightedGraph& g,
              std::int64_t axis) {
  std::uint64_t messages = 0;
  for (auto _ : state) {
    Simulator sim(g, OptionsFor(axis));
    if (axis == kCoroutineSerial) {
      sim.Run(ChatterNode);
    } else {
      FlatChatterProgram program(g);
      sim.Run(program);
    }
    messages = sim.Stats().total_messages;
    benchmark::DoNotOptimize(messages);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.NumNodes()) * kRounds);
  state.counters["messages"] =
      benchmark::Counter(static_cast<double>(messages));
  state.counters["engine_axis"] =
      benchmark::Counter(static_cast<double>(axis));
}

// ---------------------------------------------------- dense rounds: ring

void BM_DenseRing(benchmark::State& state) {
  Xoshiro256 rng(1);
  const auto g = MakeRing(static_cast<std::size_t>(state.range(0)), rng);
  RunDense(state, g, state.range(1));
}
BENCHMARK(BM_DenseRing)
    ->Args({1 << 12, kCoroutineSerial})
    ->Args({1 << 12, kFlatSerial})
    ->Args({1 << 12, kFlatSharded2})
    ->Args({1 << 15, kCoroutineSerial})
    ->Args({1 << 15, kFlatSerial})
    ->Args({1 << 15, kFlatSharded2})
    ->Args({1 << 18, kCoroutineSerial})
    ->Args({1 << 18, kFlatSerial})
    ->Args({1 << 18, kFlatSharded2})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------- dense rounds: Erdos-Renyi deg~8

void BM_DenseErdosRenyi(benchmark::State& state) {
  Xoshiro256 rng(2);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = MakeErdosRenyi(n, 8.0 / static_cast<double>(n), rng);
  RunDense(state, g, state.range(1));
}
BENCHMARK(BM_DenseErdosRenyi)
    ->Args({1 << 14, kCoroutineSerial})
    ->Args({1 << 14, kFlatSerial})
    ->Args({1 << 14, kFlatSharded2})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ----------------------------------------------------- MST end to end

void RunMst(benchmark::State& state, bool deterministic) {
  Xoshiro256 rng(3);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = MakeErdosRenyi(n, 8.0 / static_cast<double>(n), rng);
  const std::int64_t axis = state.range(1);
  MstOptions opt;
  opt.seed = 1;
  if (axis != kCoroutineSerial) opt.engine = EngineMode::kFlat;
  if (axis == kFlatSharded2) opt.shards = 2;
  std::uint64_t awake = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    auto res = deterministic ? RunDeterministicMst(g, opt)
                             : RunRandomizedMst(g, opt);
    awake = res.stats.awake_node_rounds;
    rounds = res.stats.rounds;
    benchmark::DoNotOptimize(res);
  }
  // node-rounds/s over the full simulated run (sleeping rounds included:
  // the engine still sweeps them); awake_node_rounds is reported alongside
  // so the sleeping ratio is visible in the JSON.
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(rounds));
  state.counters["awake_node_rounds"] =
      benchmark::Counter(static_cast<double>(awake));
  state.counters["engine_axis"] =
      benchmark::Counter(static_cast<double>(axis));
}

void BM_RandomizedMst(benchmark::State& state) { RunMst(state, false); }
BENCHMARK(BM_RandomizedMst)
    ->Args({256, kCoroutineSerial})
    ->Args({256, kFlatSerial})
    ->Args({256, kFlatSharded2})
    ->Args({1024, kCoroutineSerial})
    ->Args({1024, kFlatSerial})
    ->Args({1024, kFlatSharded2})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_DeterministicMst(benchmark::State& state) { RunMst(state, true); }
BENCHMARK(BM_DeterministicMst)
    ->Args({256, kCoroutineSerial})
    ->Args({256, kFlatSerial})
    ->Args({256, kFlatSharded2})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
