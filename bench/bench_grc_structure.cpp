// Experiment F1-grc — Figure 1 structural reproduction + Observation 1.
//
// Builds G_rc across sizes and prints the structural quantities the
// figure shows (rows, columns, the X highway, the binary tree I) and
// verifies Observation 1: hop diameter Theta(c / log n).
#include <cmath>
#include <iostream>

#include "smst/graph/properties.h"
#include "smst/lower_bounds/grc.h"
#include "smst/util/table.h"

int main() {
  std::cout << "== F1-grc: Figure 1 — the lower-bound family G_rc ==\n\n";
  smst::Table t({"n", "r (rows)", "c (cols)", "|X|", "|I|", "m",
                 "diameter D", "c/log2(n)", "D / (c/log2 n)"});
  smst::Xoshiro256 rng(1);
  for (std::size_t target : {100u, 200u, 400u, 800u, 1600u, 3200u}) {
    auto [rows, cols] = smst::GrcRegimeForSize(target);
    auto inst = smst::BuildGrc(rows, cols, rng);
    const double n = static_cast<double>(inst.graph.NumNodes());
    const auto d = smst::ExactDiameter(inst.graph);
    const double scale = static_cast<double>(cols) / std::log2(n);
    t.AddRow({smst::Table::Num(static_cast<std::uint64_t>(n)),
              smst::Table::Num(static_cast<std::uint64_t>(rows)),
              smst::Table::Num(static_cast<std::uint64_t>(cols)),
              smst::Table::Num(static_cast<std::uint64_t>(inst.x_cols.size())),
              smst::Table::Num(
                  static_cast<std::uint64_t>(inst.tree_internal.size())),
              smst::Table::Num(
                  static_cast<std::uint64_t>(inst.graph.NumEdges())),
              smst::Table::Num(static_cast<std::uint64_t>(d)),
              smst::Table::Num(scale, 1),
              smst::Table::Num(static_cast<double>(d) / scale, 2)});
  }
  t.Print(std::cout);
  std::cout << "\nObservation 1 reproduced: the D/(c/log n) ratio stays in a "
               "narrow constant band while c grows ~16x —\nthe X highway + "
               "binary tree shortcut makes the diameter Theta(c / log n), "
               "far below the c-hop row length.\n";
  return 0;
}
