// Sharded-engine throughput (google-benchmark): the serial scheduler
// versus the K-shard backend on identical work, at node counts past 10^6.
//
// The workload is the round engine's worst case — every node awake and
// sending on every port every round — so the numbers measure engine
// throughput (spawn + rounds + delivery + teardown), not any algorithm's
// sleeping pattern. Results are bit-identical across engines (pinned by
// tests/sharded_test.cpp); this bench records what that costs or buys in
// wall-clock. Committed curve: bench/baselines/BENCH_sharded.json.
//
// Topology spread:
//  * ring  — degree 2, block partition keeps all but 2K edges internal:
//            the sharding-friendly extreme.
//  * star  — one hub owning n-1 ports: serial hot spot, and under
//            round-robin almost every edge crosses shards: the exchange-
//            ring stress extreme.
//  * grc   — the paper's lower-bound family (4 x c grid-with-tree): a
//            realistic mixed topology.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "smst/graph/generators.h"
#include "smst/lower_bounds/grc.h"
#include "smst/runtime/simulator.h"

namespace {

using namespace smst;

constexpr int kRounds = 4;

Task<void> ChatterNode(NodeContext& ctx) {
  for (int r = 1; r <= kRounds; ++r) {
    SendBatch sends;
    for (std::uint32_t p = 0; p < ctx.Degree(); ++p) {
      sends.push_back({p, Message{1, ctx.Id(), 0, 0}});
    }
    co_await ctx.Awake(static_cast<Round>(r), std::move(sends));
  }
}

void RunEngine(benchmark::State& state, const WeightedGraph& g,
               std::uint32_t shards, ShardPolicy policy) {
  std::uint64_t messages = 0;
  for (auto _ : state) {
    SimulatorOptions opt;
    opt.shards = shards;
    opt.shard_policy = policy;
    // The auditor is O(messages) bookkeeping; throughput numbers are for
    // the production configuration.
    opt.audit = AuditMode::kOff;
    Simulator sim(g, opt);
    sim.Run(ChatterNode);
    messages = sim.Stats().total_messages;
    benchmark::DoNotOptimize(messages);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.NumNodes()) * kRounds);
  state.counters["messages"] =
      benchmark::Counter(static_cast<double>(messages));
  state.counters["shards"] = benchmark::Counter(static_cast<double>(shards));
}

// ----------------------------------------------------------------- ring

void BM_Ring(benchmark::State& state) {
  Xoshiro256 rng(1);
  const auto g = MakeRing(static_cast<std::size_t>(state.range(0)), rng);
  RunEngine(state, g, static_cast<std::uint32_t>(state.range(1)),
            ShardPolicy::kContiguousBlocks);
}
BENCHMARK(BM_Ring)
    ->Args({1 << 18, 0})
    ->Args({1 << 18, 2})
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 2})
    ->Args({1 << 21, 0})
    ->Args({1 << 21, 2})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ----------------------------------------------------------------- star

void BM_Star(benchmark::State& state) {
  Xoshiro256 rng(2);
  const auto g = MakeStar(static_cast<std::size_t>(state.range(0)), rng);
  RunEngine(state, g, static_cast<std::uint32_t>(state.range(1)),
            ShardPolicy::kRoundRobin);
}
BENCHMARK(BM_Star)
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 2})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------------ grc

void BM_Grc(benchmark::State& state) {
  Xoshiro256 rng(3);
  const auto inst = BuildGrc(4, static_cast<std::size_t>(state.range(0)), rng);
  RunEngine(state, inst.graph, static_cast<std::uint32_t>(state.range(1)),
            ShardPolicy::kContiguousBlocks);
}
BENCHMARK(BM_Grc)
    ->Args({1 << 18, 0})
    ->Args({1 << 18, 2})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
