// Experiment T1-lb-product — Table 1, "AT x RT Lower Bound" (Theorem 4).
//
// On the G_rc family, any algorithm running in T = o(c) rounds must have
// awake complexity Omega(r / log^2 n), i.e. awake x rounds = Omega~(n).
// We measure (a) the awake x rounds product of our algorithms on G_rc —
// all sit above the Omega~(n) frontier; (b) the mechanism: the bits that
// must cross the O(log n)-node tree bottleneck I, as per-node message
// load at I vs elsewhere.
#include <cmath>
#include <iostream>

#include "smst/graph/mst_reference.h"
#include "smst/lower_bounds/grc.h"
#include "smst/lower_bounds/set_disjointness.h"
#include "smst/mst/api.h"
#include "smst/mst/randomized_mst.h"
#include "smst/util/table.h"

int main() {
  std::cout << "== T1-lb-product: Theorem 4 — awake x rounds = Omega~(n) on "
               "G_rc ==\n\n";

  {
    std::cout << "-- awake x rounds vs the n floor (Randomized-MST and GHS "
                 "baseline)\n";
    smst::Table t({"n", "r", "c", "algorithm", "awake", "rounds",
                   "awake x rounds", "product / n"});
    for (std::size_t target : {200u, 400u, 800u, 1600u}) {
      auto [rows, cols] = smst::GrcRegimeForSize(target);
      smst::Xoshiro256 rng(target);
      auto inst = smst::BuildGrc(rows, cols, rng);
      const std::size_t n = inst.graph.NumNodes();
      for (auto algo : {smst::MstAlgorithm::kRandomized,
                        smst::MstAlgorithm::kGhsBaseline}) {
        auto r = smst::ComputeMst(inst.graph, algo, {.seed = 3});
        const double product = static_cast<double>(r.stats.max_awake) *
                               static_cast<double>(r.stats.rounds);
        t.AddRow({smst::Table::Num(static_cast<std::uint64_t>(n)),
                  smst::Table::Num(static_cast<std::uint64_t>(rows)),
                  smst::Table::Num(static_cast<std::uint64_t>(cols)),
                  smst::MstAlgorithmName(algo),
                  smst::Table::Num(r.stats.max_awake),
                  smst::Table::Num(r.stats.rounds),
                  smst::Table::Num(product, 0),
                  smst::Table::Num(product / static_cast<double>(n), 1)});
      }
    }
    t.Print(std::cout);
    std::cout << "(product/n stays bounded away from 0 and grows ~log "
                 "factors: the Omega~(n) trade-off frontier; no algorithm "
                 "can be simultaneously round-optimal and awake-optimal)\n\n";
  }

  {
    std::cout << "-- the congestion mechanism: message load at the tree "
                 "bottleneck I (SD instance encoded as MST weights)\n";
    smst::Table t({"n", "|I|", "max msgs at I", "mean msgs at I",
                   "mean msgs elsewhere", "I/elsewhere"});
    for (std::size_t target : {200u, 800u}) {
      auto [rows, cols] = smst::GrcRegimeForSize(target);
      smst::Xoshiro256 rng(target + 9);
      auto inst = smst::BuildGrc(rows, cols, rng);
      auto sd = smst::RandomSdInstance(rows - 1, rng, false);
      auto enc = smst::EncodeCssAsMstWeights(inst, sd, rng);
      auto run = smst::RunRandomizedMst(enc.graph, {.seed = 4});
      if (run.tree_edges != smst::KruskalMst(enc.graph)) {
        std::cerr << "MST mismatch\n";
        return 1;
      }
      std::vector<bool> in_i(enc.graph.NumNodes(), false);
      for (auto v : inst.tree_internal) in_i[v] = true;
      std::uint64_t max_i = 0, sum_i = 0, count_i = 0, sum_o = 0, count_o = 0;
      for (smst::NodeIndex v = 0; v < enc.graph.NumNodes(); ++v) {
        const std::uint64_t msgs = run.node_metrics[v].messages_sent;
        if (in_i[v]) {
          max_i = std::max(max_i, msgs);
          sum_i += msgs;
          ++count_i;
        } else {
          sum_o += msgs;
          ++count_o;
        }
      }
      t.AddRow({smst::Table::Num(
                    static_cast<std::uint64_t>(enc.graph.NumNodes())),
                smst::Table::Num(static_cast<std::uint64_t>(count_i)),
                smst::Table::Num(max_i),
                smst::Table::Num(double(sum_i) / double(count_i), 1),
                smst::Table::Num(double(sum_o) / double(count_o), 1),
                smst::Table::Num((double(sum_i) / double(count_i)) /
                                     (double(sum_o) / double(count_o)),
                                 2)});
    }
    t.Print(std::cout);
    std::cout << "(our algorithm spreads load: it pays with rounds instead "
                 "of congesting I — a fast algorithm would be forced to "
                 "concentrate Omega(r) bits there)\n";
  }
  return 0;
}
