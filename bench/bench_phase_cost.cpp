// Experiment L7-phase — Lemmas 3 and 7: every toolbox procedure costs
// O(1) awake rounds and O(n) running time; a whole phase costs O(1)
// awake rounds. We run each procedure in isolation on path-shaped LDTs
// of growing n (the deepest trees, i.e. the worst case for the
// schedule), and print the measured constants.
#include <iostream>
#include <vector>

#include "smst/graph/generators.h"
#include "smst/mst/deterministic_mst.h"
#include "smst/mst/randomized_mst.h"
#include "smst/runtime/simulator.h"
#include "smst/sleeping/forest_builder.h"
#include "smst/sleeping/merging.h"
#include "smst/sleeping/procedures.h"
#include "smst/util/table.h"

namespace {

using namespace smst;

struct ProcedureProbe {
  const char* name;
  // Returns a per-node program; receives the node's LDT state.
  std::function<Task<void>(NodeContext&, const LdtState&)> run;
};

Task<void> RunBroadcast(NodeContext& ctx, const LdtState& ldt) {
  co_await FragmentBroadcast(ctx, ldt, 1, Message{1, 99, 0, 0});
}
Task<void> RunUpcast(NodeContext& ctx, const LdtState& ldt) {
  co_await UpcastMin(ctx, ldt, 1, UpcastItem{ctx.Id(), 0, 0});
}
Task<void> RunUpcastSum(NodeContext& ctx, const LdtState& ldt) {
  co_await UpcastSum(ctx, ldt, 1, 1);
}
Task<void> RunSide(NodeContext& ctx, const LdtState& ldt) {
  co_await TransmitAdjacent(ctx, ldt, 1,
                            ToAllPorts(ctx, Message{2, ctx.Id(), 0, 0}));
}

}  // namespace

int main() {
  std::cout << "== L7-phase: Lemmas 3/7 — O(1) awake rounds per procedure "
               "and per phase ==\n\n";

  // --- toolbox procedures on a path LDT (depth n-1) -------------------
  {
    smst::Table t({"procedure", "n", "max awake", "rounds",
                   "rounds/(2n+1)"});
    const ProcedureProbe probes[] = {
        {"Fragment-Broadcast", RunBroadcast},
        {"Upcast-Min", RunUpcast},
        {"Upcast-Sum", RunUpcastSum},
        {"Transmit-Adjacent", RunSide},
    };
    for (const auto& probe : probes) {
      for (std::size_t n : {64u, 512u, 4096u}) {
        Xoshiro256 rng(n);
        GeneratorOptions opt;
        opt.shuffle_ids = false;
        auto g = MakePath(n, rng, opt);
        std::vector<EdgeIndex> tree;
        for (EdgeIndex e = 0; e < g.NumEdges(); ++e) tree.push_back(e);
        auto states = BuildForest(g, tree, {0});
        Simulator sim(g);
        sim.Run([&](NodeContext& ctx) {
          return probe.run(ctx, states[ctx.Index()]);
        });
        auto s = sim.Stats();
        t.AddRow({probe.name, Table::Num(static_cast<std::uint64_t>(n)),
                  Table::Num(s.max_awake), Table::Num(s.rounds),
                  Table::Num(double(s.rounds) / double(2 * n + 1), 2)});
      }
    }
    t.Print(std::cout);
    std::cout << "(max awake is a constant <= 2 at every n; each procedure "
                 "spans at most one (2n+1)-round block)\n\n";
  }

  // --- awake rounds per phase, whole algorithms ------------------------
  {
    std::cout << "-- awake rounds per phase (awake complexity / phases):\n";
    smst::Table t({"algorithm", "n", "phases", "max awake",
                   "awake per phase"});
    for (std::size_t n : {128u, 512u}) {
      Xoshiro256 rng(n + 3);
      auto g = MakeErdosRenyi(n, 8.0 / double(n), rng);
      auto rr = RunRandomizedMst(g, {.seed = 1});
      auto dr = RunDeterministicMst(g, {.seed = 1});
      t.AddRow({"Randomized-MST", Table::Num(static_cast<std::uint64_t>(n)),
                Table::Num(rr.phases), Table::Num(rr.stats.max_awake),
                Table::Num(double(rr.stats.max_awake) / double(rr.phases), 2)});
      t.AddRow({"Deterministic-MST", Table::Num(static_cast<std::uint64_t>(n)),
                Table::Num(dr.phases), Table::Num(dr.stats.max_awake),
                Table::Num(double(dr.stats.max_awake) / double(dr.phases), 2)});
    }
    t.Print(std::cout);
    std::cout << "(the per-phase awake constant is flat in n — Lemma 7; "
                 "multiplied by O(log n) phases it gives Theorem 1/2's "
                 "O(log n) awake complexity)\n";
  }
  return 0;
}
