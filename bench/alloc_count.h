// Allocation counter for the bench binaries.
//
// Linking bench_harness replaces the global operator new/delete with
// counting versions (alloc_count.cpp), so every bench can report
// allocations-per-awake-round alongside wall-clock numbers. The counter
// is thread_local: under the parallel sweep runner each cell executes
// wholly on one worker thread, so a before/after difference taken
// inside the cell body is exact for that cell, unpolluted by whatever
// the other workers allocate concurrently.
//
// Only the ordinary (throwing, unaligned) allocation functions are
// replaced; over-aligned allocations keep the default implementation
// and are not counted. Nothing in the measured hot paths is
// over-aligned, so the count is complete where it matters.
#pragma once

#include <cstdint>

namespace smst::bench {

// Number of ordinary operator-new calls made by the calling thread
// since it started. Monotonic; meaningful only as a difference.
std::uint64_t AllocCount() noexcept;

}  // namespace smst::bench
