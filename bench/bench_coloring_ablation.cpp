// Experiment C1-ablation — Corollary 1.
//
// The paper's remark: Fast-Awake-Coloring is the reason Deterministic-MST
// runs in O(nN log n) rounds; swapping in an O(log* n) coloring trades a
// log* factor of awake time for removing the N factor from the rounds.
// We run both variants on identical graphs across (n, N) and show the
// trade-off and the crossover in rounds as N grows.
#include <cmath>
#include <iostream>

#include "smst/graph/generators.h"
#include "smst/graph/mst_verify.h"
#include "smst/mst/deterministic_mst.h"
#include "smst/util/table.h"

int main() {
  std::cout << "== C1-ablation: Fast-Awake-Coloring vs log* coloring "
               "(Corollary 1) ==\n\n";

  smst::Table t({"n", "N", "awake (FastAwake)", "awake (log*)",
                 "rounds (FastAwake)", "rounds (log*)", "rounds ratio"});
  for (std::size_t n : {64u, 128u}) {
    for (std::uint64_t mult : {1u, 4u, 16u, 64u}) {
      const smst::NodeId N = n * mult;
      smst::Xoshiro256 rng(n);  // same topology per n
      smst::GeneratorOptions gopt;
      gopt.max_id = N;
      auto g = smst::MakeErdosRenyi(n, 8.0 / double(n), rng, gopt);

      smst::MstOptions fast_opt;
      fast_opt.seed = 1;
      auto fast = smst::RunDeterministicMst(g, fast_opt);

      smst::MstOptions star_opt;
      star_opt.seed = 1;
      star_opt.coloring = smst::ColoringVariant::kLogStar;
      auto star = smst::RunDeterministicMst(g, star_opt);

      for (const auto* r : {&fast, &star}) {
        auto check = smst::VerifyExactMst(g, r->tree_edges);
        if (!check.ok) {
          std::cerr << "VERIFICATION FAILED: " << check.error << "\n";
          return 1;
        }
      }
      t.AddRow({smst::Table::Num(static_cast<std::uint64_t>(n)),
                smst::Table::Num(N),
                smst::Table::Num(fast.stats.max_awake),
                smst::Table::Num(star.stats.max_awake),
                smst::Table::Num(fast.stats.rounds),
                smst::Table::Num(star.stats.rounds),
                smst::Table::Num(double(fast.stats.rounds) /
                                     double(star.stats.rounds),
                                 2)});
    }
  }
  t.Print(std::cout);
  std::cout
      << "\nExpected shape (the Corollary 1 trade-off):\n"
         " * awake: log* variant pays a small constant-ish factor more\n"
         "   (its coloring needs O(log* N) exchanges per phase, vs O(1)\n"
         "   stages-of-interest for Fast-Awake-Coloring);\n"
         " * rounds: FastAwake grows linearly with N (5N blocks per\n"
         "   phase), the log* variant is N-independent — the ratio column\n"
         "   crosses 1 and keeps growing as N/n grows.\n";
  return 0;
}
