// Experiment D-indep — the paper's §1 headline: awake complexity bypasses
// the Omega(D) round lower bound for global problems.
//
// At fixed n we sweep topologies whose hop diameters range from 1
// (complete graph) to n-1 (path): round complexity in the traditional
// model can never beat D, but the sleeping algorithms' awake complexity
// stays flat at O(log n) regardless of D.
#include <iostream>

#include "smst/graph/generators.h"
#include "smst/graph/mst_verify.h"
#include "smst/graph/properties.h"
#include "smst/mst/api.h"
#include "smst/util/table.h"

int main() {
  std::cout << "== D-indep: awake complexity is diameter-independent "
               "(bypassing the Omega(D) round bound) ==\n\n";
  const std::size_t n = 256;
  smst::Xoshiro256 rng(7);

  struct Family {
    const char* name;
    smst::WeightedGraph g;
  };
  std::vector<Family> families;
  families.push_back({"complete", smst::MakeComplete(64, rng)});  // D=1
  families.push_back({"hypercube(8)", smst::MakeHypercube(8, rng)});
  families.push_back({"grid 16x16", smst::MakeGrid(16, 16, rng)});
  families.push_back({"ring", smst::MakeRing(n, rng)});
  families.push_back({"caterpillar", smst::MakeCaterpillar(n / 2, rng)});
  families.push_back({"path", smst::MakePath(n, rng)});  // D=n-1

  smst::Table t({"family", "n", "diameter D", "awake (randomized)",
                 "awake (deterministic)", "rounds (randomized)"});
  for (auto& fam : families) {
    const auto d = smst::ExactDiameter(fam.g);
    auto rnd = smst::ComputeMst(fam.g, smst::MstAlgorithm::kRandomized,
                                {.seed = 11});
    auto det = smst::ComputeMst(fam.g, smst::MstAlgorithm::kDeterministic,
                                {.seed = 11});
    for (const auto* r : {&rnd, &det}) {
      auto check = smst::VerifyExactMst(fam.g, r->tree_edges);
      if (!check.ok) {
        std::cerr << "verification failed on " << fam.name << ": "
                  << check.error << "\n";
        return 1;
      }
    }
    t.AddRow({fam.name,
              smst::Table::Num(static_cast<std::uint64_t>(fam.g.NumNodes())),
              smst::Table::Num(static_cast<std::uint64_t>(d)),
              smst::Table::Num(rnd.stats.max_awake),
              smst::Table::Num(det.stats.max_awake),
              smst::Table::Num(rnd.stats.rounds)});
  }
  t.Print(std::cout);
  std::cout << "\nExpected: D spans 1 to n-1 (~250x) while both awake "
               "columns move only with log n —\nan MST is a *global* "
               "structure, yet no node needs to be awake anywhere near D "
               "rounds.\n";
  return 0;
}
