// Experiment D-indep — the paper's §1 headline: awake complexity bypasses
// the Omega(D) round lower bound for global problems.
//
// At fixed n we sweep topologies whose hop diameters range from 1
// (complete graph) to n-1 (path): round complexity in the traditional
// model can never beat D, but the sleeping algorithms' awake complexity
// stays flat at O(log n) regardless of D.
#include <iostream>
#include <vector>

#include "harness.h"
#include "smst/graph/generators.h"
#include "smst/graph/mst_verify.h"
#include "smst/graph/properties.h"
#include "smst/util/table.h"

int main(int argc, char** argv) {
  smst::bench::Harness h("diameter_independence", argc, argv);
  std::cout << "== D-indep: awake complexity is diameter-independent "
               "(bypassing the Omega(D) round bound) ==\n\n";
  const std::size_t n = 256;
  smst::Xoshiro256 rng(7);

  struct Family {
    const char* name;
    smst::WeightedGraph g;
  };
  // Built serially from one generator stream (the stream order is part of
  // the fixture); only the runs fan out across threads.
  std::vector<Family> families;
  families.push_back({"complete", smst::MakeComplete(64, rng)});  // D=1
  families.push_back({"hypercube(8)", smst::MakeHypercube(8, rng)});
  families.push_back({"grid 16x16", smst::MakeGrid(16, 16, rng)});
  families.push_back({"ring", smst::MakeRing(n, rng)});
  families.push_back({"caterpillar", smst::MakeCaterpillar(n / 2, rng)});
  families.push_back({"path", smst::MakePath(n, rng)});  // D=n-1

  std::vector<smst::RunSpec> specs;
  for (const auto& fam : families) {
    specs.push_back({&fam.g, smst::MstAlgorithm::kRandomized, {.seed = 11}});
    specs.push_back(
        {&fam.g, smst::MstAlgorithm::kDeterministic, {.seed = 11}});
  }
  const auto runs = h.Runner().RunAll(specs);

  smst::Table t({"family", "n", "diameter D", "awake (randomized)",
                 "awake (deterministic)", "rounds (randomized)"});
  for (std::size_t i = 0; i < families.size(); ++i) {
    const auto& fam = families[i];
    const auto& rnd = runs[2 * i];
    const auto& det = runs[2 * i + 1];
    for (const auto* r : {&rnd, &det}) {
      auto check = smst::VerifyExactMst(fam.g, r->tree_edges);
      if (!check.ok) {
        std::cerr << "verification failed on " << fam.name << ": "
                  << check.error << "\n";
        return 1;
      }
    }
    const auto d = smst::ExactDiameter(fam.g);
    t.AddRow({fam.name,
              smst::Table::Num(static_cast<std::uint64_t>(fam.g.NumNodes())),
              smst::Table::Num(static_cast<std::uint64_t>(d)),
              smst::Table::Num(rnd.stats.max_awake),
              smst::Table::Num(det.stats.max_awake),
              smst::Table::Num(rnd.stats.rounds)});
    h.JsonRecord("run", "\"family\":" + smst::bench::JsonStr(fam.name) +
                            ",\"n\":" + std::to_string(fam.g.NumNodes()) +
                            ",\"diameter\":" + std::to_string(d) +
                            ",\"awake_randomized\":" +
                            std::to_string(rnd.stats.max_awake) +
                            ",\"awake_deterministic\":" +
                            std::to_string(det.stats.max_awake) +
                            ",\"rounds_randomized\":" +
                            std::to_string(rnd.stats.rounds));
  }
  t.Print(std::cout);
  std::cout << "\nExpected: D spans 1 to n-1 (~250x) while both awake "
               "columns move only with log n —\nan MST is a *global* "
               "structure, yet no node needs to be awake anywhere near D "
               "rounds.\n";
  return 0;
}
