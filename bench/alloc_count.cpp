#include "alloc_count.h"

#include <cstdlib>
#include <new>

namespace {

thread_local std::uint64_t t_alloc_count = 0;

}  // namespace

namespace smst::bench {

std::uint64_t AllocCount() noexcept { return t_alloc_count; }

}  // namespace smst::bench

// The array and nothrow forms default to forwarding here, so replacing
// the two ordinary functions covers them as well.
void* operator new(std::size_t n) {
  ++t_alloc_count;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
