// Experiment T1-awake — Table 1, "Awake Time" column.
//
// Paper claims: Randomized-MST and Deterministic-MST have awake
// complexity O(log n); the traditional model forces awake = rounds
// (Theta(n log n) for GHS). We sweep n, report the measured worst-case
// and node-averaged awake rounds for every algorithm, and fit the
// scaling shape. Cells run in parallel (see --threads); results are
// identical to the old serial loop.
#include <cmath>
#include <iostream>
#include <vector>

#include "harness.h"
#include "smst/graph/generators.h"
#include "smst/util/fit.h"
#include "smst/util/table.h"

int main(int argc, char** argv) {
  smst::bench::Harness h("table1_awake", argc, argv);
  const std::uint64_t seeds = h.Seeds(3);

  std::cout << "== T1-awake: Table 1 'Awake Time' — awake complexity vs n ==\n"
            << "graphs: Erdos-Renyi with average degree 8 (connected), mean over "
            << seeds << " seeds, " << h.Threads() << " threads\n\n";

  const std::vector<std::size_t> sizes_fast{64, 128, 256, 512, 1024, 2048};
  const std::vector<std::size_t> sizes_det{32, 64, 128, 256, 512};

  const auto er8 = [](std::size_t n, std::uint64_t seed) {
    smst::Xoshiro256 rng(n * 31 + seed);
    return smst::MakeErdosRenyi(n, 8.0 / static_cast<double>(n), rng);
  };

  struct Algo {
    smst::MstAlgorithm a;
    const std::vector<std::size_t>* sizes;
    const char* paper;
  };
  const Algo algos[] = {
      {smst::MstAlgorithm::kRandomized, &sizes_fast, "O(log n)"},
      {smst::MstAlgorithm::kDeterministic, &sizes_det, "O(log n)"},
      {smst::MstAlgorithm::kDeterministicLogStar, &sizes_det,
       "O(log n log* n)"},
      {smst::MstAlgorithm::kBmSpanningTree, &sizes_fast,
       "O(log n)  [arbitrary ST]"},
      {smst::MstAlgorithm::kGhsBaseline, &sizes_fast, "Theta(rounds)"},
  };

  for (const Algo& algo : algos) {
    const bool verify = algo.a != smst::MstAlgorithm::kBmSpanningTree;
    auto sweep = h.Sweep(algo.a, *algo.sizes, seeds, er8, {}, verify);

    smst::Table t({"n", "awake max", "awake avg", "awake/log2(n)", "phases"});
    std::vector<double> xs, ys;
    for (const auto& agg : sweep.by_n) {
      xs.push_back(static_cast<double>(agg.n));
      ys.push_back(agg.max_awake);
      t.AddRow({smst::Table::Num(static_cast<std::uint64_t>(agg.n)),
                smst::Table::Num(agg.max_awake, 1),
                smst::Table::Num(agg.avg_awake, 1),
                smst::Table::Num(agg.max_awake / std::log2(double(agg.n)), 2),
                smst::Table::Num(agg.phases, 1)});
    }
    std::cout << "-- " << smst::MstAlgorithmName(algo.a)
              << "   (paper: " << algo.paper << ")\n";
    t.Print(std::cout);
    auto fits = smst::FitAll(xs, ys, smst::StandardModels());
    std::cout << "best scaling fit: " << fits[0].model
              << " (R^2=" << fits[0].r_squared << ", const "
              << fits[0].constant << ")\n\n";
  }

  std::cout << "Expected: the three sleeping algorithms fit 'log n' (flat\n"
               "awake/log2 n column); the always-awake baseline fits\n"
               "'n log n' — the gap Table 1 is about.\n";
  return 0;
}
