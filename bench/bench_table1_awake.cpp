// Experiment T1-awake — Table 1, "Awake Time" column.
//
// Paper claims: Randomized-MST and Deterministic-MST have awake
// complexity O(log n); the traditional model forces awake = rounds
// (Theta(n log n) for GHS). We sweep n, report the measured worst-case
// and node-averaged awake rounds for every algorithm, and fit the
// scaling shape.
#include <cmath>
#include <iostream>
#include <vector>

#include "smst/graph/generators.h"
#include "smst/graph/mst_verify.h"
#include "smst/mst/api.h"
#include "smst/util/fit.h"
#include "smst/util/table.h"

namespace {

constexpr int kSeeds = 3;

smst::MstRunResult RunOnce(const smst::WeightedGraph& g,
                           smst::MstAlgorithm a, std::uint64_t seed) {
  auto r = smst::ComputeMst(g, a, {.seed = seed});
  if (a != smst::MstAlgorithm::kBmSpanningTree) {
    auto check = smst::VerifyExactMst(g, r.tree_edges);
    if (!check.ok) {
      std::cerr << "VERIFICATION FAILED (" << smst::MstAlgorithmName(a)
                << "): " << check.error << "\n";
      std::exit(1);
    }
  }
  return r;
}

}  // namespace

int main() {
  std::cout << "== T1-awake: Table 1 'Awake Time' — awake complexity vs n ==\n"
            << "graphs: Erdos-Renyi with average degree 8 (connected), mean over "
            << kSeeds << " seeds\n\n";

  const std::vector<std::size_t> sizes_fast{64, 128, 256, 512, 1024, 2048};
  const std::vector<std::size_t> sizes_det{32, 64, 128, 256, 512};

  struct Algo {
    smst::MstAlgorithm a;
    const std::vector<std::size_t>* sizes;
    const char* paper;
  };
  const Algo algos[] = {
      {smst::MstAlgorithm::kRandomized, &sizes_fast, "O(log n)"},
      {smst::MstAlgorithm::kDeterministic, &sizes_det, "O(log n)"},
      {smst::MstAlgorithm::kDeterministicLogStar, &sizes_det,
       "O(log n log* n)"},
      {smst::MstAlgorithm::kBmSpanningTree, &sizes_fast,
       "O(log n)  [arbitrary ST]"},
      {smst::MstAlgorithm::kGhsBaseline, &sizes_fast, "Theta(rounds)"},
  };

  for (const Algo& algo : algos) {
    smst::Table t({"n", "awake max", "awake avg", "awake/log2(n)", "phases"});
    std::vector<double> xs, ys;
    for (std::size_t n : *algo.sizes) {
      double max_awake = 0, avg_awake = 0, phases = 0;
      for (int s = 1; s <= kSeeds; ++s) {
        smst::Xoshiro256 rng(n * 31 + s);
        auto g = smst::MakeErdosRenyi(n, 8.0 / static_cast<double>(n), rng);
        auto r = RunOnce(g, algo.a, s);
        max_awake += static_cast<double>(r.stats.max_awake);
        avg_awake += r.stats.avg_awake;
        phases += static_cast<double>(r.phases);
      }
      max_awake /= kSeeds;
      avg_awake /= kSeeds;
      phases /= kSeeds;
      xs.push_back(static_cast<double>(n));
      ys.push_back(max_awake);
      t.AddRow({smst::Table::Num(static_cast<std::uint64_t>(n)),
                smst::Table::Num(max_awake, 1),
                smst::Table::Num(avg_awake, 1),
                smst::Table::Num(max_awake / std::log2(double(n)), 2),
                smst::Table::Num(phases, 1)});
    }
    std::cout << "-- " << smst::MstAlgorithmName(algo.a)
              << "   (paper: " << algo.paper << ")\n";
    t.Print(std::cout);
    auto fits = smst::FitAll(xs, ys, smst::StandardModels());
    std::cout << "best scaling fit: " << fits[0].model
              << " (R^2=" << fits[0].r_squared << ", const "
              << fits[0].constant << ")\n\n";
  }

  std::cout << "Expected: the three sleeping algorithms fit 'log n' (flat\n"
               "awake/log2 n column); the always-awake baseline fits\n"
               "'n log n' — the gap Table 1 is about.\n";
  return 0;
}
