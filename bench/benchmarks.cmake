# Bench binaries. Included from the top-level CMakeLists (not
# add_subdirectory) so ${CMAKE_BINARY_DIR}/bench contains only the
# produced executables and `for b in build/bench/*; do $b; done` works.

# Shared sweep harness (flag parsing, parallel execution, JSON records).
# alloc_count.cpp replaces the global operator new/delete with counting
# versions; it lives here — and only here — so every bench binary gets
# exactly one definition (defining it per-binary would collide with the
# harness at link time).
add_library(bench_harness STATIC
  ${CMAKE_SOURCE_DIR}/bench/harness.cpp
  ${CMAKE_SOURCE_DIR}/bench/alloc_count.cpp)
target_link_libraries(bench_harness PUBLIC smst::smst)
target_include_directories(bench_harness PUBLIC ${CMAKE_SOURCE_DIR}/bench)

set(SMST_BENCHES
  bench_table1_awake.cpp
  bench_table1_runtime.cpp
  bench_lb_awake_ring.cpp
  bench_lb_product_grc.cpp
  bench_grc_structure.cpp
  bench_fragment_decay.cpp
  bench_blue_fraction.cpp
  bench_phase_cost.cpp
  bench_coloring_ablation.cpp
  bench_termination_ablation.cpp
  bench_diameter_independence.cpp
  bench_adaptive_blocks.cpp
  bench_robustness.cpp
  bench_micro.cpp
  bench_sharded.cpp
  bench_flat.cpp
)

foreach(src ${SMST_BENCHES})
  get_filename_component(name ${src} NAME_WE)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${src})
  target_link_libraries(${name} PRIVATE bench_harness smst::smst
                                        benchmark::benchmark)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endforeach()
