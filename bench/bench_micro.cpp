// Micro-benchmarks (google-benchmark): substrate throughput — sequential
// reference MSTs, graph generators, the round engine, and the toolbox
// procedures. These are engineering baselines (how much wall-clock a unit
// of simulation costs), not paper claims.
#include <benchmark/benchmark.h>

#include "alloc_count.h"
#include "smst/graph/generators.h"
#include "smst/graph/mst_reference.h"
#include "smst/mst/randomized_mst.h"
#include "smst/runtime/flat/program.h"
#include "smst/runtime/simulator.h"
#include "smst/sleeping/forest_builder.h"
#include "smst/sleeping/procedures.h"

namespace {

using namespace smst;

void BM_Kruskal(benchmark::State& state) {
  Xoshiro256 rng(1);
  auto g = MakeErdosRenyi(static_cast<std::size_t>(state.range(0)), 0.05, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KruskalMst(g));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.NumEdges()));
}
BENCHMARK(BM_Kruskal)->Arg(256)->Arg(1024);

void BM_Prim(benchmark::State& state) {
  Xoshiro256 rng(1);
  auto g = MakeErdosRenyi(static_cast<std::size_t>(state.range(0)), 0.05, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PrimMst(g));
  }
}
BENCHMARK(BM_Prim)->Arg(256)->Arg(1024);

void BM_Boruvka(benchmark::State& state) {
  Xoshiro256 rng(1);
  auto g = MakeErdosRenyi(static_cast<std::size_t>(state.range(0)), 0.05, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BoruvkaMst(g));
  }
}
BENCHMARK(BM_Boruvka)->Arg(256)->Arg(1024);

void BM_GenerateErdosRenyi(benchmark::State& state) {
  Xoshiro256 rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeErdosRenyi(n, 8.0 / double(n), rng));
  }
}
BENCHMARK(BM_GenerateErdosRenyi)->Arg(256)->Arg(1024);

Task<void> PingNode(NodeContext& ctx, int rounds) {
  for (int r = 1; r <= rounds; ++r) {
    SendBatch sends;
    for (std::uint32_t p = 0; p < ctx.Degree(); ++p) {
      sends.push_back({p, Message{1, ctx.Id(), 0, 0}});
    }
    co_await ctx.Awake(static_cast<Round>(r), std::move(sends));
  }
}

// Round-engine throughput: every node awake and chattering every round.
// The allocs_per_node_round counter pins the zero-allocation steady
// state as a reported number (0 after the first iteration's warm-up;
// the counter includes that warm-up, so expect ~0, not exactly 0).
void BM_SimulatorDenseRounds(benchmark::State& state) {
  Xoshiro256 rng(1);
  auto g = MakeRing(static_cast<std::size_t>(state.range(0)), rng);
  constexpr int kRounds = 64;
  const std::uint64_t allocs_before = bench::AllocCount();
  for (auto _ : state) {
    Simulator sim(g);
    sim.Run([](NodeContext& ctx) { return PingNode(ctx, kRounds); });
    benchmark::DoNotOptimize(sim.Stats());
  }
  const auto allocs =
      static_cast<double>(bench::AllocCount() - allocs_before);
  const auto node_rounds =
      static_cast<double>(state.iterations() * state.range(0) * kRounds);
  state.counters["allocs_per_node_round"] =
      benchmark::Counter(node_rounds == 0 ? 0.0 : allocs / node_rounds);
  state.SetItemsProcessed(state.iterations() * state.range(0) * kRounds);
}
// 2^18 leaves every per-node structure far outside cache: the regime
// where the coroutine engine's pointer-chasing collapses and the flat
// engine's fused sweeps keep streaming (the >=5x row; see BENCH_flat).
BENCHMARK(BM_SimulatorDenseRounds)->Arg(64)->Arg(512)->Arg(1 << 18);

// Flat-engine twin of BM_SimulatorDenseRounds: the identical every-node-
// every-round chatter, lowered to a FlatProgram. The pair is the headline
// engine comparison — same graph, same rounds, same messages, so the
// items/s ratio is pure per-node-round overhead (coroutine frame resume +
// scheduler heap traffic vs a virtual call into a batched state machine).
class FlatPingProgram final : public FlatProgram {
 public:
  FlatPingProgram(const WeightedGraph& g, int rounds)
      : g_(&g), rounds_(rounds) {}

  Round Start(NodeIndex v, FlatEnv&, SendBatch& sends) override {
    PushAll(v, sends);
    return 1;
  }

  Round Step(NodeIndex v, Round now, FlatEnv&, const InboxBatch&,
             SendBatch& sends) override {
    if (now >= static_cast<Round>(rounds_)) return kFlatDone;
    PushAll(v, sends);
    return now + 1;
  }

 private:
  void PushAll(NodeIndex v, SendBatch& sends) const {
    const FlatNodeRef node{g_, v};
    for (std::uint32_t p = 0; p < node.Degree(); ++p) {
      sends.push_back({p, Message{1, node.Id(), 0, 0}});
    }
  }

  const WeightedGraph* g_;
  int rounds_;
};

void BM_SimulatorDenseRoundsFlat(benchmark::State& state) {
  Xoshiro256 rng(1);
  auto g = MakeRing(static_cast<std::size_t>(state.range(0)), rng);
  constexpr int kRounds = 64;
  const std::uint64_t allocs_before = bench::AllocCount();
  for (auto _ : state) {
    SimulatorOptions opt;
    opt.engine = EngineMode::kFlat;
    Simulator sim(g, opt);
    FlatPingProgram program(g, kRounds);
    sim.Run(program);
    benchmark::DoNotOptimize(sim.Stats());
  }
  const auto allocs =
      static_cast<double>(bench::AllocCount() - allocs_before);
  const auto node_rounds =
      static_cast<double>(state.iterations() * state.range(0) * kRounds);
  state.counters["allocs_per_node_round"] =
      benchmark::Counter(node_rounds == 0 ? 0.0 : allocs / node_rounds);
  state.SetItemsProcessed(state.iterations() * state.range(0) * kRounds);
}
BENCHMARK(BM_SimulatorDenseRoundsFlat)->Arg(64)->Arg(512)->Arg(1 << 18);

// ------------------------------------------------ toolbox procedures
// One path fragment spanning the whole graph: the deepest LDT a fragment
// of n nodes can have, so one procedure block is the full 2n+1 rounds.
// Each bench reports node-rounds/s (n nodes x the simulated rounds per
// run) so the three procedures are comparable to each other and to the
// dense-round engine numbers above.

struct PathForest {
  WeightedGraph g;
  std::vector<LdtState> states;
};

PathForest MakePathForest(std::size_t n) {
  Xoshiro256 rng(1);
  GeneratorOptions opt;
  opt.shuffle_ids = false;
  auto g = MakePath(n, rng, opt);
  std::vector<EdgeIndex> tree;
  for (EdgeIndex e = 0; e < g.NumEdges(); ++e) tree.push_back(e);
  auto states = BuildForest(g, tree, {0});
  return {std::move(g), std::move(states)};
}

Task<void> BroadcastNode(NodeContext& ctx, const std::vector<LdtState>* states) {
  co_await FragmentBroadcast(ctx, (*states)[ctx.Index()], 1,
                             Message{1, 7, 0, 0});
}

void BM_FragmentBroadcast(benchmark::State& state) {
  auto pf = MakePathForest(static_cast<std::size_t>(state.range(0)));
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Simulator sim(pf.g);
    sim.Run([&pf](NodeContext& ctx) {
      return BroadcastNode(ctx, &pf.states);
    });
    rounds = sim.Stats().rounds;
    benchmark::DoNotOptimize(rounds);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(rounds));
}
BENCHMARK(BM_FragmentBroadcast)->Arg(256)->Arg(2048);

Task<void> UpcastNode(NodeContext& ctx, const std::vector<LdtState>* states) {
  co_await UpcastMin(ctx, (*states)[ctx.Index()], 1,
                     UpcastItem{ctx.Id(), 0, 0});
}

void BM_UpcastMin(benchmark::State& state) {
  auto pf = MakePathForest(static_cast<std::size_t>(state.range(0)));
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Simulator sim(pf.g);
    sim.Run([&pf](NodeContext& ctx) {
      return UpcastNode(ctx, &pf.states);
    });
    rounds = sim.Stats().rounds;
    benchmark::DoNotOptimize(rounds);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(rounds));
}
BENCHMARK(BM_UpcastMin)->Arg(256)->Arg(2048);

// LDT-build is host-side (no simulated rounds): one "node-round" here is
// one node rooted, levelled, and port-linked by the BFS.
void BM_LdtBuild(benchmark::State& state) {
  Xoshiro256 rng(1);
  GeneratorOptions opt;
  opt.shuffle_ids = false;
  auto g = MakePath(static_cast<std::size_t>(state.range(0)), rng, opt);
  std::vector<EdgeIndex> tree;
  for (EdgeIndex e = 0; e < g.NumEdges(); ++e) tree.push_back(e);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildForest(g, tree, {0}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LdtBuild)->Arg(256)->Arg(2048);

void BM_RandomizedMstEndToEnd(benchmark::State& state) {
  Xoshiro256 rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto g = MakeErdosRenyi(n, 8.0 / double(n), rng);
  double awake_rounds = 0;
  const std::uint64_t allocs_before = bench::AllocCount();
  for (auto _ : state) {
    auto res = RunRandomizedMst(g, {.seed = 1});
    awake_rounds += static_cast<double>(res.stats.awake_node_rounds);
    benchmark::DoNotOptimize(res);
  }
  const auto allocs =
      static_cast<double>(bench::AllocCount() - allocs_before);
  state.counters["allocs_per_awake_round"] =
      benchmark::Counter(awake_rounds == 0 ? 0.0 : allocs / awake_rounds);
}
BENCHMARK(BM_RandomizedMstEndToEnd)->Arg(128)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
