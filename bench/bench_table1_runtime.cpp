// Experiment T1-runtime — Table 1, "Run Time" column.
//
// Paper claims: Randomized-MST runs in O(n log n) rounds;
// Deterministic-MST in O(nN log n) (and the Corollary-1 variant in
// O(n log n log* n), independent of N). Part A sweeps n (N = n);
// part B fixes the graph and sweeps only the ID range N.
#include <cmath>
#include <iostream>
#include <vector>

#include "smst/graph/generators.h"
#include "smst/mst/api.h"
#include "smst/util/fit.h"
#include "smst/util/table.h"

int main() {
  std::cout << "== T1-runtime: Table 1 'Run Time' — round complexity ==\n\n";

  // --- Part A: rounds vs n (N = n) ------------------------------------
  {
    std::cout << "-- A: rounds vs n (Erdos-Renyi avg degree 8, N = n)\n";
    struct Algo {
      smst::MstAlgorithm a;
      std::vector<std::size_t> sizes;
      const char* paper;
    };
    const Algo algos[] = {
        {smst::MstAlgorithm::kRandomized, {64, 128, 256, 512, 1024, 2048},
         "O(n log n)"},
        {smst::MstAlgorithm::kDeterministic, {32, 64, 128, 256, 512},
         "O(nN log n) = O(n^2 log n) when N=n"},
        {smst::MstAlgorithm::kDeterministicLogStar, {32, 64, 128, 256, 512},
         "O(n log n log* n)"},
    };
    for (const auto& algo : algos) {
      smst::Table t({"n", "rounds", "rounds/(n log2 n)", "phases"});
      std::vector<double> xs, ys;
      for (std::size_t n : algo.sizes) {
        smst::Xoshiro256 rng(n * 17 + 1);
        auto g = smst::MakeErdosRenyi(n, 8.0 / static_cast<double>(n), rng);
        auto r = smst::ComputeMst(g, algo.a, {.seed = 1});
        xs.push_back(static_cast<double>(n));
        ys.push_back(static_cast<double>(r.stats.rounds));
        t.AddRow({smst::Table::Num(static_cast<std::uint64_t>(n)),
                  smst::Table::Num(r.stats.rounds),
                  smst::Table::Num(static_cast<double>(r.stats.rounds) /
                                       (double(n) * std::log2(double(n))),
                                   1),
                  smst::Table::Num(r.phases)});
      }
      std::cout << smst::MstAlgorithmName(algo.a) << "   (paper: "
                << algo.paper << ")\n";
      t.Print(std::cout);
      auto fits = smst::FitAll(xs, ys, smst::StandardModels());
      std::cout << "best scaling fit: " << fits[0].model
                << " (R^2=" << fits[0].r_squared << ")\n\n";
    }
  }

  // --- Part B: deterministic rounds vs N, fixed topology --------------
  {
    std::cout << "-- B: rounds vs ID range N (fixed n=64 Erdos-Renyi graph)\n"
              << "Fast-Awake-Coloring sweeps one stage per possible ID, so\n"
              << "rounds grow linearly in N; the Corollary-1 log* variant\n"
              << "does not depend on N at all.\n";
    smst::Table t({"N", "rounds (FastAwake)", "rounds/N", "rounds (log*)",
                   "awake (FastAwake)", "awake (log*)"});
    std::vector<double> xs, ys;
    for (smst::NodeId N : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
      smst::Xoshiro256 rng(77);  // same seed: identical topology & weights
      smst::GeneratorOptions gopt;
      gopt.max_id = N;
      auto g = smst::MakeErdosRenyi(64, 0.12, rng, gopt);
      auto fast = smst::ComputeMst(g, smst::MstAlgorithm::kDeterministic,
                                   {.seed = 1});
      auto star = smst::ComputeMst(
          g, smst::MstAlgorithm::kDeterministicLogStar, {.seed = 1});
      xs.push_back(static_cast<double>(N));
      ys.push_back(static_cast<double>(fast.stats.rounds));
      t.AddRow({smst::Table::Num(N), smst::Table::Num(fast.stats.rounds),
                smst::Table::Num(double(fast.stats.rounds) / double(N), 1),
                smst::Table::Num(star.stats.rounds),
                smst::Table::Num(fast.stats.max_awake),
                smst::Table::Num(star.stats.max_awake)});
    }
    t.Print(std::cout);
    auto fits = smst::FitAll(xs, ys, smst::StandardModels());
    std::cout << "FastAwake rounds-vs-N best fit: " << fits[0].model
              << " (R^2=" << fits[0].r_squared
              << ") — the 'n' model here is linear in N, i.e. the paper's "
                 "O(nN log n).\n";
  }
  return 0;
}
