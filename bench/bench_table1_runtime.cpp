// Experiment T1-runtime — Table 1, "Run Time" column.
//
// Paper claims: Randomized-MST runs in O(n log n) rounds;
// Deterministic-MST in O(nN log n) (and the Corollary-1 variant in
// O(n log n log* n), independent of N). Part A sweeps n (N = n);
// part B fixes the graph and sweeps only the ID range N.
#include <cmath>
#include <iostream>
#include <vector>

#include "harness.h"
#include "smst/graph/generators.h"
#include "smst/util/fit.h"
#include "smst/util/table.h"

int main(int argc, char** argv) {
  smst::bench::Harness h("table1_runtime", argc, argv);
  std::cout << "== T1-runtime: Table 1 'Run Time' — round complexity ==\n\n";

  // --- Part A: rounds vs n (N = n) ------------------------------------
  {
    std::cout << "-- A: rounds vs n (Erdos-Renyi avg degree 8, N = n)\n";
    const auto er8 = [](std::size_t n, std::uint64_t /*seed*/) {
      smst::Xoshiro256 rng(n * 17 + 1);
      return smst::MakeErdosRenyi(n, 8.0 / static_cast<double>(n), rng);
    };
    struct Algo {
      smst::MstAlgorithm a;
      std::vector<std::size_t> sizes;
      const char* paper;
    };
    const Algo algos[] = {
        {smst::MstAlgorithm::kRandomized, {64, 128, 256, 512, 1024, 2048},
         "O(n log n)"},
        {smst::MstAlgorithm::kDeterministic, {32, 64, 128, 256, 512},
         "O(nN log n) = O(n^2 log n) when N=n"},
        {smst::MstAlgorithm::kDeterministicLogStar, {32, 64, 128, 256, 512},
         "O(n log n log* n)"},
    };
    for (const auto& algo : algos) {
      auto sweep = h.Sweep(algo.a, algo.sizes, 1, er8, {}, false);
      smst::Table t({"n", "rounds", "rounds/(n log2 n)", "phases"});
      std::vector<double> xs, ys;
      for (const auto& agg : sweep.by_n) {
        xs.push_back(static_cast<double>(agg.n));
        ys.push_back(agg.rounds);
        t.AddRow({smst::Table::Num(static_cast<std::uint64_t>(agg.n)),
                  smst::Table::Num(agg.rounds, 0),
                  smst::Table::Num(agg.rounds / (double(agg.n) *
                                                 std::log2(double(agg.n))),
                                   1),
                  smst::Table::Num(agg.phases, 0)});
      }
      std::cout << smst::MstAlgorithmName(algo.a) << "   (paper: "
                << algo.paper << ")\n";
      t.Print(std::cout);
      auto fits = smst::FitAll(xs, ys, smst::StandardModels());
      std::cout << "best scaling fit: " << fits[0].model
                << " (R^2=" << fits[0].r_squared << ")\n\n";
    }
  }

  // --- Part B: deterministic rounds vs N, fixed topology --------------
  {
    std::cout << "-- B: rounds vs ID range N (fixed n=64 Erdos-Renyi graph)\n"
              << "Fast-Awake-Coloring sweeps one stage per possible ID, so\n"
              << "rounds grow linearly in N; the Corollary-1 log* variant\n"
              << "does not depend on N at all.\n";
    const std::vector<smst::NodeId> id_ranges{64, 128, 256, 512, 1024, 2048};
    // Paired (FastAwake, log*) runs per N, farmed out via the runner.
    std::vector<smst::MstRunResult> fast(id_ranges.size());
    std::vector<smst::MstRunResult> star(id_ranges.size());
    h.Runner().ForEach(id_ranges.size(), [&](std::size_t i) {
      smst::Xoshiro256 rng(77);  // same seed: identical topology & weights
      smst::GeneratorOptions gopt;
      gopt.max_id = id_ranges[i];
      auto g = smst::MakeErdosRenyi(64, 0.12, rng, gopt);
      fast[i] = smst::ComputeMst(g, smst::MstAlgorithm::kDeterministic,
                                 {.seed = 1});
      star[i] = smst::ComputeMst(
          g, smst::MstAlgorithm::kDeterministicLogStar, {.seed = 1});
    });
    smst::Table t({"N", "rounds (FastAwake)", "rounds/N", "rounds (log*)",
                   "awake (FastAwake)", "awake (log*)"});
    std::vector<double> xs, ys;
    for (std::size_t i = 0; i < id_ranges.size(); ++i) {
      const smst::NodeId N = id_ranges[i];
      xs.push_back(static_cast<double>(N));
      ys.push_back(static_cast<double>(fast[i].stats.rounds));
      t.AddRow({smst::Table::Num(N), smst::Table::Num(fast[i].stats.rounds),
                smst::Table::Num(double(fast[i].stats.rounds) / double(N), 1),
                smst::Table::Num(star[i].stats.rounds),
                smst::Table::Num(fast[i].stats.max_awake),
                smst::Table::Num(star[i].stats.max_awake)});
      h.JsonRecord("run", "\"part\":\"B\",\"N\":" + std::to_string(N) +
                              ",\"rounds_fastawake\":" +
                              std::to_string(fast[i].stats.rounds) +
                              ",\"rounds_logstar\":" +
                              std::to_string(star[i].stats.rounds));
    }
    t.Print(std::cout);
    auto fits = smst::FitAll(xs, ys, smst::StandardModels());
    std::cout << "FastAwake rounds-vs-N best fit: " << fits[0].model
              << " (R^2=" << fits[0].r_squared
              << ") — the 'n' model here is linear in N, i.e. the paper's "
                 "O(nN log n).\n";
  }
  return 0;
}
