// Shared sweep harness for the bench binaries.
//
// Every bench is ultimately a sweep over (algorithm × n × seed) cells;
// this harness owns the loop so the binaries only declare *what* to
// sweep and how to present it. It provides:
//
//  * flag parsing shared by all benches:
//      --threads N   worker threads (default: hardware concurrency)
//      --seeds K     override the bench's per-cell seed count
//      --json PATH   write JSON-lines records (schema: DESIGN.md §8)
//      --shards K    run every cell on the K-shard simulator backend
//                    (0 = serial; results are bit-identical either way)
//      --shard-policy block|rr   node-to-shard partition policy
//      --engine coroutine|flat   execution engine for every cell
//                    (results are bit-identical; flat is the batched
//                    state-machine lowering, DESIGN.md §13)
//  * parallel execution of the cells via smst::ParallelRunner, with
//    results identical to the serial loops the benches used to run
//    (each cell's graph and randomness derive only from (n, seed));
//  * one JSON record per run plus one aggregate record per (algo, n),
//    so sweep output is machine-readable without scraping tables.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "smst/graph/graph.h"
#include "smst/mst/api.h"
#include "smst/mst/options.h"
#include "smst/mst/result.h"
#include "smst/runtime/parallel_runner.h"
#include "smst/util/json.h"

namespace smst::bench {

// Builds the graph for one sweep cell. Called from worker threads; must
// be a pure function of (n, seed).
using GraphFactory =
    std::function<WeightedGraph(std::size_t n, std::uint64_t seed)>;

// One finished (algorithm, n, seed) cell.
struct SweepCell {
  std::size_t n = 0;
  std::uint64_t seed = 0;
  // Heap allocations made by the MST run itself (graph generation and
  // verification excluded), measured with the thread-local counter in
  // alloc_count.h. The awake hot path is designed to be allocation-free,
  // so this stays near the per-run setup cost.
  std::uint64_t allocs = 0;
  MstRunResult run;
};

// Seed-averaged view of one size, in the shape the tables print.
struct SweepAggregate {
  std::size_t n = 0;
  std::uint64_t runs = 0;
  double max_awake = 0;
  double avg_awake = 0;
  double rounds = 0;
  double messages = 0;
  double bits = 0;
  double dropped = 0;
  double phases = 0;
  double allocs = 0;
  // Seed-summed allocations over seed-summed awake node-rounds: the
  // regression-pinned "allocations per awake node-round" number.
  double allocs_per_awake_round = 0;
};

struct SweepOutput {
  // Row-major: sizes × seeds (cells[i * seeds + s] is sizes[i], seed s+1).
  std::vector<SweepCell> cells;
  std::vector<SweepAggregate> by_n;  // one entry per size
};

class Harness {
 public:
  // `experiment` tags every JSON record; argv supplies the shared flags.
  Harness(std::string experiment, int argc, char** argv);
  ~Harness();

  unsigned Threads() const { return runner_.Threads(); }
  const ParallelRunner& Runner() const { return runner_; }

  // The bench's default seed count unless --seeds overrode it.
  std::uint64_t Seeds(std::uint64_t fallback) const {
    return seeds_override_ != 0 ? seeds_override_ : fallback;
  }

  // Simulator shard count applied to every sweep cell (0 = serial).
  std::uint32_t Shards() const { return shards_; }
  ShardPolicy GetShardPolicy() const { return shard_policy_; }
  // Execution engine applied to every sweep cell.
  EngineMode Engine() const { return engine_; }

  // Runs `algo` on factory(n, seed) for every n in `sizes` and seed in
  // [1, seeds], in parallel. With `verify`, every result is checked
  // against the reference MST (throws std::runtime_error on mismatch);
  // pass false for algorithms that only promise a spanning tree.
  SweepOutput Sweep(MstAlgorithm algo, const std::vector<std::size_t>& sizes,
                    std::uint64_t seeds, const GraphFactory& factory,
                    const MstOptions& base = {}, bool verify = true);

  // Appends one free-form record to the JSON stream (no-op without
  // --json). `fields` is the record body after the experiment/record
  // envelope, e.g. R"("n":64,"rounds":123)".
  void JsonRecord(const std::string& record_type, const std::string& fields);

 private:
  std::string experiment_;
  ParallelRunner runner_{1};  // replaced from --threads in the constructor
  std::uint64_t seeds_override_ = 0;
  std::uint32_t shards_ = 0;
  ShardPolicy shard_policy_ = ShardPolicy::kContiguousBlocks;
  EngineMode engine_ = EngineMode::kCoroutine;
  std::ofstream json_;
};

// JSON field formatting helpers shared with the CLI.
std::string JsonNum(double v);
std::string JsonStr(const std::string& s);

}  // namespace smst::bench
