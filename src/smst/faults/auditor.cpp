#include "smst/faults/auditor.h"

#include <bit>
#include <sstream>
#include <stdexcept>

namespace smst {

namespace {

std::uint32_t WidthOf(std::uint64_t v) {
  return v == 0 ? 1u : static_cast<std::uint32_t>(std::bit_width(v));
}

// Information content of one message under the model's accounting: the
// +-infinity sentinels are distinguished symbols worth O(1) bits, not
// 64-bit integers (message.h documents them as outside the weight range).
std::uint32_t EffectiveBits(const Message& m) {
  auto field = [](std::uint64_t v) {
    return v == kPlusInfinity ? 1u : WidthOf(v);
  };
  return 8u + field(m.a) + field(m.b) + field(m.c);
}

}  // namespace

Auditor::Auditor(const WeightedGraph& graph) : Auditor(graph, Config{}) {}

Auditor::Auditor(const WeightedGraph& graph, Config config)
    : graph_(graph), config_(config), awake_in_(graph.NumNodes(), 0) {
  if (config_.max_message_bits != 0) {
    bit_budget_ = config_.max_message_bits;
  } else {
    // The CONGEST budget: every legitimate field is an ID (<= N), a
    // weight (<= the max finite edge weight), or a count/level/round
    // index (<= n, covered by the slack). All are poly(n), so the
    // per-field ceiling is the widest of those plus a small constant
    // slack for flag/count packing; three fields plus the tag byte.
    Weight max_weight = 0;
    for (EdgeIndex e = 0; e < graph.NumEdges(); ++e) {
      const Weight w = graph.GetEdge(e).weight;
      if (w != kPlusInfinity && w > max_weight) max_weight = w;
    }
    const std::uint32_t field_bits =
        std::max({WidthOf(graph.MaxId()), WidthOf(max_weight),
                  WidthOf(graph.NumNodes())}) +
        4;
    // One field may legitimately carry up to four log-sized values in
    // 16-bit lanes (the log* coloring's Transmit-Adjacent coordinates,
    // coloring.cpp Pack4) — still O(log n) information, but the fixed
    // lane positions push its *positional* width to 3*16 + the top
    // lane's content. Budget the message as one packed field plus two
    // plain fields, or three plain fields, whichever is wider.
    const std::uint32_t packed_field_bits =
        3u * 16u + std::min(field_bits, 16u);
    bit_budget_ =
        8u + std::max(3u * field_bits, packed_field_bits + 2u * field_bits);
  }
}

void Auditor::Violate(std::string check, Round r, NodeIndex node,
                      std::string detail) {
  ++violation_count_;
  if (config_.fail_fast) {
    throw std::runtime_error("audit violation [" + check + "] round " +
                             std::to_string(r) + " node " +
                             std::to_string(node) + ": " + detail);
  }
  if (recorded_.size() < config_.max_recorded) {
    recorded_.push_back(
        AuditViolation{std::move(check), r, node, std::move(detail)});
  }
}

void Auditor::OnAwake(Round r, NodeIndex v) {
  if (v >= awake_in_.size()) {
    Violate("asleep-send", r, v, "awake mark for a node outside the graph");
    return;
  }
  awake_in_[v] = r;
  ++awake_node_rounds_;
}

void Auditor::OnSend(Round r, NodeIndex v, std::uint32_t port,
                     const Message& m) {
  if (!AwakeNow(r, v)) {
    Violate("asleep-send", r, v,
            "sent on port " + std::to_string(port) +
                " while not awake this round");
  }
  const std::uint32_t bits = EffectiveBits(m);
  if (bits > bit_budget_) {
    Violate("congest-bits", r, v,
            "message of " + std::to_string(bits) + " bits exceeds the " +
                std::to_string(bit_budget_) + "-bit CONGEST budget");
  }
}

void Auditor::OnDeliver(Round r, NodeIndex src, NodeIndex dst,
                        const Message&) {
  if (!AwakeNow(r, dst)) {
    Violate("asleep-receive", r, dst,
            "delivery from node " + std::to_string(src) +
                " to a node not awake this round");
  }
}

void Auditor::OnDrop(Round, NodeIndex, bool injected) {
  if (injected) {
    ++injected_drops_;
  } else {
    ++model_drops_;
  }
}

void Auditor::CheckAwakeMeter(const Metrics& metrics) {
  std::uint64_t metered_awake = 0;
  std::uint64_t metered_drops = 0;
  for (const NodeMetrics& m : metrics.PerNode()) {
    metered_awake += m.awake_rounds;
    metered_drops += m.messages_dropped;
  }
  if (metered_awake != awake_node_rounds_) {
    Violate("awake-meter", metrics.LastRound(), kInvalidNode,
            "scheduler metered " + std::to_string(metered_awake) +
                " awake node-rounds, auditor observed " +
                std::to_string(awake_node_rounds_));
  }
  if (metered_drops != model_drops_) {
    Violate("awake-meter", metrics.LastRound(), kInvalidNode,
            "scheduler metered " + std::to_string(metered_drops) +
                " model drops, auditor observed " +
                std::to_string(model_drops_));
  }
}

void Auditor::CheckForest(Round when, const std::vector<LdtState>& states) {
  const std::size_t n = graph_.NumNodes();
  if (states.size() != n) {
    Violate("forest", when, kInvalidNode,
            "snapshot covers " + std::to_string(states.size()) + " of " +
                std::to_string(n) + " nodes");
    return;
  }
  // Edge-local checks: valid parent port, symmetric membership in the
  // parent's child list, level/fragment agreement, root labeling.
  for (NodeIndex v = 0; v < n; ++v) {
    const LdtState& s = states[v];
    if (s.IsRoot()) {
      if (s.level != 0) {
        Violate("forest", when, v, "root with nonzero level");
      }
      if (s.fragment_id != graph_.IdOf(v)) {
        Violate("forest", when, v, "root's fragment ID is not its own ID");
      }
      continue;
    }
    const auto ports = graph_.PortsOf(v);
    if (s.parent_port >= ports.size()) {
      Violate("forest", when, v, "parent port out of range");
      continue;
    }
    const NodeIndex parent = ports[s.parent_port].neighbor;
    const LdtState& p = states[parent];
    if (s.level != p.level + 1) {
      Violate("forest", when, v,
              "level " + std::to_string(s.level) + " but parent node " +
                  std::to_string(parent) + " has level " +
                  std::to_string(p.level));
    }
    if (s.fragment_id != p.fragment_id) {
      Violate("forest", when, v, "fragment ID differs from parent's");
    }
    const EdgeIndex edge = ports[s.parent_port].edge;
    bool symmetric = false;
    for (std::uint32_t q : p.child_ports) {
      const auto parent_ports = graph_.PortsOf(parent);
      if (q < parent_ports.size() && parent_ports[q].edge == edge) {
        symmetric = true;
        break;
      }
    }
    if (!symmetric) {
      Violate("forest", when, v,
              "parent node " + std::to_string(parent) +
                  " does not list this node as a child");
    }
  }
  // Parent chains must reach a root within n hops; a longer walk is a
  // cycle, attributed to the first node whose walk overruns.
  for (NodeIndex v = 0; v < n; ++v) {
    NodeIndex cur = v;
    std::size_t steps = 0;
    while (!states[cur].IsRoot()) {
      if (states[cur].parent_port >= graph_.PortsOf(cur).size()) break;
      cur = graph_.PortsOf(cur)[states[cur].parent_port].neighbor;
      if (++steps > n) {
        Violate("forest", when, v, "parent chain does not reach a root "
                                   "(cycle in the fragment structure)");
        break;
      }
    }
  }
}

std::string Auditor::Report() const {
  if (Clean()) return "";
  std::ostringstream out;
  out << violation_count_ << " audit violation(s)";
  if (violation_count_ > recorded_.size()) {
    out << " (" << recorded_.size() << " recorded)";
  }
  for (const AuditViolation& v : recorded_) {
    out << "\n  [" << v.check << "] round " << v.round;
    if (v.node != kInvalidNode) out << " node " << v.node;
    out << ": " << v.detail;
  }
  return out.str();
}

}  // namespace smst
