#include "smst/faults/fault_plan.h"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "smst/util/prng.h"

namespace smst {

namespace {

// Counter-based hashing: fold each coordinate into a SplitMix64 walk.
// Every adversary decision is one of these — no sequential generator
// state, so verdicts are independent of the order events are examined in.
std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  SplitMix64 sm(h ^ (v + 0x9e3779b97f4a7c15ULL));
  return sm.Next();
}

double HashToUnit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDuplicate: return "dup";
    case FaultKind::kWakeJitter: return "jitter";
    case FaultKind::kCrash: return "crash";
  }
  return "?";
}

std::string FaultPlan::ToString() const {
  std::ostringstream out;
  bool first = true;
  if (salt != 0) {
    out << "salt=" << salt;
    first = false;
  }
  for (const FaultRule& r : rules) {
    if (!first) out << ",";
    first = false;
    out << FaultKindName(r.kind) << "=";
    switch (r.kind) {
      case FaultKind::kDrop:
      case FaultKind::kDuplicate:
        out << r.probability;
        break;
      case FaultKind::kDelay:
      case FaultKind::kWakeJitter:
        out << r.param;
        if (r.probability != 1.0) out << ":" << r.probability;
        break;
      case FaultKind::kCrash:
        out << r.from_round;
        if (r.probability != 1.0) out << ":" << r.probability;
        break;
    }
    if (r.node != kInvalidNode) out << "@" << r.node;
  }
  return out.str();
}

namespace {

[[noreturn]] void SpecError(const std::string& item, const std::string& why) {
  throw std::invalid_argument("bad fault-plan item '" + item + "': " + why);
}

double ParseProb(const std::string& item, const std::string& s) {
  char* end = nullptr;
  const double p = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || p < 0.0 || p > 1.0) {
    SpecError(item, "probability must be in [0, 1]");
  }
  return p;
}

std::uint64_t ParseUint(const std::string& item, const std::string& s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (s.empty() || end != s.c_str() + s.size()) {
    SpecError(item, "expected an unsigned integer, got '" + s + "'");
  }
  return v;
}

}  // namespace

FaultPlan ParseFaultPlan(const std::string& spec) {
  FaultPlan plan;
  std::istringstream items(spec);
  std::string item;
  while (std::getline(items, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) SpecError(item, "expected key=value");
    const std::string key = item.substr(0, eq);
    std::string value = item.substr(eq + 1);

    // Peel the optional @NODE and :PROB suffixes (in either order they
    // were written; @ binds last in the grammar).
    NodeIndex node = kInvalidNode;
    if (const auto at = value.find('@'); at != std::string::npos) {
      node = static_cast<NodeIndex>(ParseUint(item, value.substr(at + 1)));
      value = value.substr(0, at);
    }
    double prob = 1.0;
    bool has_prob = false;
    if (const auto colon = value.find(':'); colon != std::string::npos) {
      prob = ParseProb(item, value.substr(colon + 1));
      has_prob = true;
      value = value.substr(0, colon);
    }
    if (value.empty()) SpecError(item, "missing value");

    if (key == "salt") {
      plan.salt = ParseUint(item, value);
      continue;
    }
    FaultRule rule;
    rule.node = node;
    rule.probability = prob;
    if (key == "drop" || key == "dup") {
      rule.kind = key == "drop" ? FaultKind::kDrop : FaultKind::kDuplicate;
      if (has_prob) SpecError(item, "use " + key + "=P, not :P");
      rule.probability = ParseProb(item, value);
    } else if (key == "delay" || key == "jitter") {
      rule.kind = key == "delay" ? FaultKind::kDelay : FaultKind::kWakeJitter;
      rule.param = ParseUint(item, value);
      if (rule.param == 0) SpecError(item, key + " needs a positive value");
    } else if (key == "crash") {
      rule.kind = FaultKind::kCrash;
      rule.from_round = ParseUint(item, value);
      if (rule.from_round == 0) SpecError(item, "crash round starts at 1");
    } else {
      SpecError(item, "unknown rule '" + key + "'");
    }
    plan.rules.push_back(rule);
  }
  return plan;
}

FaultSession::FaultSession(const FaultPlan* plan, std::uint64_t run_seed,
                           std::size_t num_nodes)
    : plan_(plan), active_(plan != nullptr && !plan->Empty()) {
  if (!active_) return;
  stream_seed_ = Mix(Mix(0x5eed0fa417ULL, plan->salt), run_seed);
  crash_round_.assign(num_nodes, kMaxRound);
  crash_counted_.assign(num_nodes, 0);
  for (std::size_t i = 0; i < plan_->rules.size(); ++i) {
    const FaultRule& r = plan_->rules[i];
    if (r.kind != FaultKind::kCrash) continue;
    for (NodeIndex v = 0; v < num_nodes; ++v) {
      if (r.node != kInvalidNode && r.node != v) continue;
      // One draw per (rule, node): a crash is a property of the node, not
      // of an individual wake.
      if (r.probability < 1.0 &&
          HashToUnit(EventHash(i, v, 0, 0)) >= r.probability) {
        continue;
      }
      if (r.from_round < crash_round_[v]) crash_round_[v] = r.from_round;
    }
  }
}

std::uint64_t FaultSession::EventHash(std::size_t rule_index, std::uint64_t a,
                                      std::uint64_t b, std::uint64_t c) const {
  return Mix(Mix(Mix(Mix(stream_seed_, rule_index), a), b), c);
}

bool FaultSession::Matches(const FaultRule& r, NodeIndex node,
                           Round round) const {
  if (r.node != kInvalidNode && r.node != node) return false;
  return round >= r.from_round && round <= r.to_round;
}

FaultSession::MessageVerdict FaultSession::OnMessage(NodeIndex src,
                                                     std::uint32_t port,
                                                     Round round) {
  MessageVerdict v;
  if (!active_) return v;
  for (std::size_t i = 0; i < plan_->rules.size(); ++i) {
    const FaultRule& r = plan_->rules[i];
    switch (r.kind) {
      case FaultKind::kDrop:
      case FaultKind::kDelay:
      case FaultKind::kDuplicate:
        break;
      default:
        continue;
    }
    if (!Matches(r, src, round)) continue;
    if (r.probability < 1.0 &&
        HashToUnit(EventHash(i, src, round, port)) >= r.probability) {
      continue;
    }
    switch (r.kind) {
      case FaultKind::kDrop:
        // Drop beats everything else; no need to look further.
        ++stats_.injected_drops;
        v.drop = true;
        return v;
      case FaultKind::kDelay:
        if (v.delay == 0) {
          ++stats_.injected_delays;
          v.delay = r.param;
        }
        break;
      case FaultKind::kDuplicate:
        if (!v.duplicate) {
          ++stats_.injected_duplicates;
          v.duplicate = true;
        }
        break;
      default:
        break;
    }
  }
  return v;
}

Round FaultSession::PerturbWake(NodeIndex node, Round requested,
                                Round min_round) {
  Round r = requested;
  if (active_) {
    for (std::size_t i = 0; i < plan_->rules.size(); ++i) {
      const FaultRule& rule = plan_->rules[i];
      if (rule.kind != FaultKind::kWakeJitter) continue;
      if (!Matches(rule, node, requested)) continue;
      const std::uint64_t h = EventHash(i, node, requested, 1);
      if (rule.probability < 1.0 && HashToUnit(h) >= rule.probability) {
        continue;
      }
      // Uniform offset in [-d, +d] from a second hash (the first decided
      // eligibility; reusing it would bias the offset towards small p).
      const std::uint64_t span = 2 * rule.param + 1;
      const std::int64_t offset =
          static_cast<std::int64_t>(EventHash(i, node, requested, 2) % span) -
          static_cast<std::int64_t>(rule.param);
      if (offset < 0 && r <= static_cast<std::uint64_t>(-offset)) {
        r = 1;
      } else {
        r = static_cast<Round>(static_cast<std::int64_t>(r) + offset);
      }
    }
  }
  if (r < min_round) r = min_round;
  if (r != requested) ++stats_.jittered_wakes;
  return r;
}

Round FaultSession::CrashRound(NodeIndex node) const {
  if (!active_ || crash_round_.empty()) return kMaxRound;
  return crash_round_[node];
}

bool FaultSession::SuppressWake(NodeIndex node, Round round) {
  if (!active_ || round < crash_round_[node]) return false;
  ++stats_.suppressed_wakes;
  if (!crash_counted_[node]) {
    crash_counted_[node] = 1;
    ++stats_.crashed_nodes;
  }
  return true;
}

}  // namespace smst
