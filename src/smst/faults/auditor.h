// Runtime invariant auditor for the sleeping-model CONGEST substrate.
//
// The Auditor is a pluggable checker layer that watches a run from the
// scheduler's hooks and independently re-derives the model's invariants
// every round:
//
//   congest-bits    no message exceeds the O(log n)-bit CONGEST budget
//                   (derived from the graph's ID range, weight range, and
//                   n; the +-infinity sentinels count as one symbol, and
//                   the budget admits one field packing four log-sized
//                   values in 16-bit lanes — the coloring's Pack4 idiom)
//   asleep-send     no node sends in a round it is not awake in
//   asleep-receive  no message is delivered to a sleeping node
//   awake-meter     the auditor's own awake-node-round count matches the
//                   scheduler's Metrics meter (CheckAwakeMeter)
//   forest          fragment structure stays a forest: parent/child
//                   symmetry, level = parent level + 1, no parent cycles
//                   (CheckForest, fed LDT snapshots by the algorithms or
//                   tests)
//
// Violations are recorded with round + node attribution (up to
// Config::max_recorded, counted beyond that). The hooks are compiled
// into the scheduler by default behind a null-pointer check and can be
// removed entirely with -DSMST_NO_AUDITOR=ON; Debug builds (and any
// build configured with -DSMST_AUDIT=ON) install an auditor on every
// Simulator by default, making every existing test a model-conformance
// test. The auditor never changes execution — it only observes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "smst/graph/graph.h"
#include "smst/runtime/message.h"
#include "smst/runtime/metrics.h"
#include "smst/sleeping/ldt.h"

namespace smst {

using Round = std::uint64_t;  // same alias as runtime/scheduler.h

struct AuditViolation {
  std::string check;  // "congest-bits" | "asleep-send" | ... (see above)
  Round round = 0;    // for "forest" fed from phase snapshots: the phase
  NodeIndex node = kInvalidNode;
  std::string detail;
};

class Auditor {
 public:
  struct Config {
    // Per-message bit ceiling; 0 derives the CONGEST budget from the
    // graph (see BitBudget()).
    std::uint32_t max_message_bits = 0;
    // Throw std::runtime_error at the first violation instead of
    // accumulating (tests that want a precise failure point).
    bool fail_fast = false;
    // Violations recorded verbatim; the rest only counted.
    std::size_t max_recorded = 64;
  };

  explicit Auditor(const WeightedGraph& graph);
  Auditor(const WeightedGraph& graph, Config config);

  // ---- scheduler hooks (observation only; cheap, branch-free inner) ---
  void OnAwake(Round r, NodeIndex v);
  void OnSend(Round r, NodeIndex v, std::uint32_t port, const Message& m);
  void OnDeliver(Round r, NodeIndex src, NodeIndex dst, const Message& m);
  // `injected` distinguishes adversary drops from sleeping-model loss.
  void OnDrop(Round r, NodeIndex src, bool injected);

  // ---- cross-checks ---------------------------------------------------
  // Compares the auditor's awake/drop meters against the scheduler's.
  void CheckAwakeMeter(const Metrics& metrics);
  // Verifies the LDT forest invariant over a whole-graph snapshot,
  // attributing the first offending node. `when` labels the violation's
  // round field (callers pass the phase or round the snapshot belongs to).
  void CheckForest(Round when, const std::vector<LdtState>& states);

  // ---- results --------------------------------------------------------
  bool Clean() const { return violation_count_ == 0; }
  std::uint64_t ViolationCount() const { return violation_count_; }
  const std::vector<AuditViolation>& Violations() const { return recorded_; }
  std::uint64_t AwakeNodeRounds() const { return awake_node_rounds_; }
  std::uint64_t ModelDrops() const { return model_drops_; }
  std::uint64_t InjectedDrops() const { return injected_drops_; }
  std::uint32_t BitBudget() const { return bit_budget_; }
  // One-line-per-violation report ("" when clean).
  std::string Report() const;

 private:
  void Violate(std::string check, Round r, NodeIndex node,
               std::string detail);
  bool AwakeNow(Round r, NodeIndex v) const {
    return v < awake_in_.size() && awake_in_[v] == r;
  }

  const WeightedGraph& graph_;
  Config config_;
  std::uint32_t bit_budget_ = 0;
  // node -> last round it was marked awake in (rounds start at 1, so 0
  // means "never").
  std::vector<Round> awake_in_;
  std::uint64_t awake_node_rounds_ = 0;
  std::uint64_t model_drops_ = 0;
  std::uint64_t injected_drops_ = 0;
  std::uint64_t violation_count_ = 0;
  std::vector<AuditViolation> recorded_;
};

}  // namespace smst
