// Structured classification of a (possibly faulted) run.
//
// Fault-free runs keep the historical contract: Simulator::Run and the
// algorithm harnesses throw on any failure. Under a FaultPlan the
// interesting result *is* the failure mode, so the runtime classifies it
// into a RunOutcome instead of hanging or surfacing an opaque exception:
//
//   kCompleted         every node program finished
//   kWrongResult       finished, but the output is not the MST (endpoint
//                      disagreement, missing edges, or a failed exact
//                      verification by the caller)
//   kNonTermination    a bounded-run guard fired: the scheduler's round
//                      watchdog or an algorithm's phase cap
//                      (NonTerminationError)
//   kCrashedPartition  the run stalled short of completion: crash-stopped
//                      nodes left peers suspended forever, or message
//                      loss starved a protocol step that cannot proceed
//                      (ProtocolStallError)
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "smst/faults/fault_plan.h"

namespace smst {

// Thrown by bounded-run guards: the scheduler's round watchdog and the
// algorithms' phase caps. Derives from std::runtime_error so existing
// callers that expect the old type keep working.
class NonTerminationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Thrown by protocol steps that cannot proceed because an expected
// message never arrived (a parent silent in its Down-Receive round, a
// merge target silent in the Side round, ...). Fault-free executions
// never throw it — the implementations are drop-free by construction —
// so under a FaultPlan it identifies a fault-induced stall.
class ProtocolStallError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class RunStatus : std::uint8_t {
  kCompleted,
  kWrongResult,
  kNonTermination,
  kCrashedPartition,
};

const char* RunStatusName(RunStatus s);

struct RunOutcome {
  RunStatus status = RunStatus::kCompleted;
  // Human-readable cause (exception message, verification error, ...).
  std::string detail;
  // Last round any node was awake when the run ended or was aborted.
  Round last_round = 0;
  // Node programs that never finished (crash-stopped nodes and the peers
  // they stranded mid-protocol).
  std::uint64_t unfinished_nodes = 0;
  // What the adversary injected (all zero for a null plan).
  FaultStats faults;
  // Runtime-auditor summary, filled when an auditor observed the run:
  // its independently-metered awake node-rounds and model drops (cross-
  // checked against the scheduler's Metrics) and any violations found.
  std::uint64_t audited_awake_node_rounds = 0;
  std::uint64_t audited_model_drops = 0;
  std::uint64_t audit_violations = 0;

  bool Ok() const { return status == RunStatus::kCompleted; }

  friend bool operator==(const RunOutcome&, const RunOutcome&) = default;
};

inline const char* RunStatusName(RunStatus s) {
  switch (s) {
    case RunStatus::kCompleted: return "completed";
    case RunStatus::kWrongResult: return "wrong-result";
    case RunStatus::kNonTermination: return "non-termination";
    case RunStatus::kCrashedPartition: return "crashed-partition";
  }
  return "?";
}

}  // namespace smst
