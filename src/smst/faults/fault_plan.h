// Deterministic fault-injection adversary for the sleeping-model runtime.
//
// A FaultPlan is a composable list of FaultRules installed on
// SchedulerOptions and consulted at message-delivery and wake-registration
// time. Every fault decision is a pure function of
// (plan salt ^ run seed, rule index, event coordinates) hashed through
// SplitMix64 — a counter-based PRNG stream dedicated to the adversary —
// so a faulted run is bit-reproducible and replayable: the same plan and
// seed produce the identical RunOutcome, metrics, and trace regardless of
// thread count or iteration order, and the adversary never perturbs the
// algorithms' own randomness (which flows from the per-node streams).
//
// Rule kinds (see DESIGN.md §10 for the full semantics):
//   kDrop       destroy a message at delivery time
//   kDelay      defer a message by `param` rounds; it is delivered iff the
//               receiver is awake in the deferred round, else it is lost
//               and counted as a model drop charged to the sender
//   kDuplicate  deliver one extra copy of a message in the same round
//   kWakeJitter perturb a node's Awake round by a uniform offset in
//               [-param, +param], clamped to stay strictly in the future
//   kCrash      crash-stop: every wake of the victim at or after
//               `from_round` is suppressed; the node halts forever
//
// Each rule has an activation window [from_round, to_round], an optional
// single-node filter, and a probability applied per eligible event (for
// kCrash the probability is drawn once per node, not per wake).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "smst/graph/graph.h"

namespace smst {

// Also defined (identically) in runtime/scheduler.h; redeclaring an alias
// with the same type is well-formed and avoids a header cycle.
using Round = std::uint64_t;

inline constexpr Round kMaxRound = ~Round{0};

enum class FaultKind : std::uint8_t {
  kDrop,
  kDelay,
  kDuplicate,
  kWakeJitter,
  kCrash,
};

const char* FaultKindName(FaultKind k);

struct FaultRule {
  FaultKind kind = FaultKind::kDrop;
  // Applied per eligible event (per message for kDrop/kDelay/kDuplicate,
  // per wake for kWakeJitter, once per node for kCrash).
  double probability = 1.0;
  // Restrict the rule to one node (the message *sender* for message
  // rules, the victim for kWakeJitter/kCrash); kInvalidNode = any node.
  NodeIndex node = kInvalidNode;
  // Activation window on the event's round (for kCrash: the crash round).
  Round from_round = 1;
  Round to_round = kMaxRound;
  // kDelay: rounds of deferral; kWakeJitter: jitter radius d. Unused
  // otherwise.
  std::uint64_t param = 0;

  friend bool operator==(const FaultRule&, const FaultRule&) = default;
};

struct FaultPlan {
  // Mixed with the run seed into the adversary's dedicated stream; two
  // plans differing only in salt realize independent fault patterns on
  // the same run.
  std::uint64_t salt = 0;
  std::vector<FaultRule> rules;

  bool Empty() const { return rules.empty(); }
  std::string ToString() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

// Parses the CLI/bench spec grammar: comma-separated items, each
//   drop=P[@NODE]         probabilistic drop (sender-filtered with @NODE)
//   delay=K[:P][@NODE]    delay by K rounds with probability P (default 1)
//   dup=P[@NODE]          duplicate with probability P
//   jitter=D[:P][@NODE]   wake jitter radius D with probability P (default 1)
//   crash=R[:P][@NODE]    crash-stop at round R (probability drawn once
//                         per node; default 1 — with no @NODE filter and
//                         P=1 every node halts at R)
//   salt=S                adversary stream salt (integer)
// Example: "drop=0.01,jitter=2". Throws std::invalid_argument on errors.
FaultPlan ParseFaultPlan(const std::string& spec);

// Counters of what the adversary actually did in one run; part of
// RunOutcome so replays can be compared end to end.
struct FaultStats {
  std::uint64_t injected_drops = 0;       // messages destroyed at delivery
  std::uint64_t injected_delays = 0;      // messages deferred
  std::uint64_t delayed_delivered = 0;    // deferred messages that arrived
  std::uint64_t delayed_lost = 0;         // deferred messages that hit sleepers
  std::uint64_t injected_duplicates = 0;  // extra copies created
  std::uint64_t jittered_wakes = 0;       // wakes moved by jitter
  std::uint64_t suppressed_wakes = 0;     // wakes swallowed by crash-stop
  std::uint64_t crashed_nodes = 0;        // nodes with >= 1 suppressed wake

  // Adds `other`'s counters into this object. Every event is counted by
  // exactly one shard session (message verdicts at the sender, delayed
  // bookkeeping at the receiver, wake faults at the owner), so summing
  // per-shard stats reproduces the serial engine's totals.
  void MergeFrom(const FaultStats& other) {
    injected_drops += other.injected_drops;
    injected_delays += other.injected_delays;
    delayed_delivered += other.delayed_delivered;
    delayed_lost += other.delayed_lost;
    injected_duplicates += other.injected_duplicates;
    jittered_wakes += other.jittered_wakes;
    suppressed_wakes += other.suppressed_wakes;
    crashed_nodes += other.crashed_nodes;
  }

  friend bool operator==(const FaultStats&, const FaultStats&) = default;
};

// One run's view of a FaultPlan: owns the derived adversary stream, the
// per-node crash decisions, and the injection counters. Stateless across
// events apart from the counters — every verdict is a hash of the event
// coordinates, which is what makes replays exact.
class FaultSession {
 public:
  // `plan` is borrowed and may be null (the fault-free session; every
  // verdict is then a no-op). `num_nodes` sizes the crash table.
  FaultSession(const FaultPlan* plan, std::uint64_t run_seed,
               std::size_t num_nodes);

  bool Active() const { return active_; }

  // Delivery-time verdict for one message, identified by its invariant
  // coordinates (sender, sender's port, send round).
  struct MessageVerdict {
    bool drop = false;
    Round delay = 0;       // 0 = deliver now
    bool duplicate = false;
  };
  MessageVerdict OnMessage(NodeIndex src, std::uint32_t port, Round round);

  // Wake perturbation: returns the (possibly jittered) round, clamped to
  // at least `min_round`. Counts the wake as jittered iff it moved.
  Round PerturbWake(NodeIndex node, Round requested, Round min_round);

  // True iff `node`'s wake at `round` is swallowed by a crash-stop rule.
  // Counts the suppression (and the node's crash, once).
  bool SuppressWake(NodeIndex node, Round round);

  // Crash round for `node` (kMaxRound = never crashes). Pure query.
  Round CrashRound(NodeIndex node) const;

  const FaultStats& Stats() const { return stats_; }
  // Mutation hooks for the scheduler's delayed-delivery bookkeeping.
  void CountDelayedDelivered() { ++stats_.delayed_delivered; }
  void CountDelayedLost() { ++stats_.delayed_lost; }

 private:
  std::uint64_t EventHash(std::size_t rule_index, std::uint64_t a,
                          std::uint64_t b, std::uint64_t c) const;
  bool Matches(const FaultRule& r, NodeIndex node, Round round) const;

  const FaultPlan* plan_ = nullptr;
  bool active_ = false;
  std::uint64_t stream_seed_ = 0;
  // node -> first round from which its wakes are suppressed (kMaxRound =
  // healthy). Resolved once at construction so SuppressWake is a load.
  std::vector<Round> crash_round_;
  std::vector<std::uint8_t> crash_counted_;
  FaultStats stats_;
};

}  // namespace smst
