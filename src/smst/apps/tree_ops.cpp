#include "smst/apps/tree_ops.h"

#include <stdexcept>

#include "smst/runtime/simulator.h"
#include "smst/sleeping/procedures.h"

namespace smst {

namespace {

constexpr std::uint16_t kTagAppBroadcast = 150;

struct Shared {
  const std::vector<LdtState>* forest = nullptr;
  const std::vector<TreeOpRequest>* requests = nullptr;
  std::vector<TreeOpOutcome>* outcomes = nullptr;
};

Task<void> NodeMain(NodeContext& ctx, Shared* sh) {
  const LdtState& ldt = (*sh->forest)[ctx.Index()];
  BlockCursor cursor(1, ctx.NumNodesKnown());
  for (std::size_t i = 0; i < sh->requests->size(); ++i) {
    const TreeOpRequest& req = (*sh->requests)[i];
    TreeOpOutcome& out = (*sh->outcomes)[i];
    switch (req.kind) {
      case TreeOpRequest::Kind::kBroadcast: {
        const Message got = co_await FragmentBroadcast(
            ctx, ldt, cursor.TakeBlock(),
            Message{kTagAppBroadcast, req.broadcast_value, 0, 0});
        out.per_node[ctx.Index()] = got.a;
        if (ldt.IsRoot()) out.root_value = got.a;
        break;
      }
      case TreeOpRequest::Kind::kAggregateMin: {
        const UpcastItem got =
            co_await UpcastMin(ctx, ldt, cursor.TakeBlock(),
                               UpcastItem{req.inputs[ctx.Index()], 0, 0});
        out.per_node[ctx.Index()] = got.key;
        if (ldt.IsRoot()) out.root_value = got.key;
        break;
      }
      case TreeOpRequest::Kind::kAggregateSum: {
        const UpcastSumResult got = co_await UpcastSum(
            ctx, ldt, cursor.TakeBlock(), req.inputs[ctx.Index()]);
        out.per_node[ctx.Index()] = got.subtree_total;
        if (ldt.IsRoot()) out.root_value = got.subtree_total;
        break;
      }
    }
  }
}

}  // namespace

TreeOpsReport RunTreeOps(const WeightedGraph& g, const MstRunResult& result,
                         const std::vector<TreeOpRequest>& requests,
                         std::uint64_t seed) {
  if (result.final_ldt.size() != g.NumNodes()) {
    throw std::invalid_argument("result does not belong to this graph");
  }
  for (const LdtState& s : result.final_ldt) {
    if (s.fragment_id != result.final_ldt.front().fragment_id) {
      throw std::invalid_argument(
          "TreeOps needs a single spanning tree (run did not converge)");
    }
  }
  for (const TreeOpRequest& req : requests) {
    if (req.kind != TreeOpRequest::Kind::kBroadcast &&
        req.inputs.size() != g.NumNodes()) {
      throw std::invalid_argument("aggregation inputs must cover every node");
    }
  }

  TreeOpsReport report;
  report.outcomes.resize(requests.size());
  for (auto& out : report.outcomes) {
    out.per_node.assign(g.NumNodes(), 0);
  }
  Shared sh{&result.final_ldt, &requests, &report.outcomes};
  SimulatorOptions opt;
  opt.seed = seed;
  Simulator sim(g, opt);
  sim.Run([&sh](NodeContext& ctx) { return NodeMain(ctx, &sh); });
  report.stats = sim.Stats();
  return report;
}

}  // namespace smst
