// Using the tree after it is built.
//
// The paper's motivation (§1) is that an MST is a primitive for
// energy-efficient broadcast and aggregation. The algorithms here don't
// just output edges — every node ends with its LDT state (fragment root,
// level, parent/children ports), and that state keeps paying rent: any
// number of broadcasts, min-aggregations, and sum-aggregations can run
// over the tree later at O(1) awake rounds and O(n) running time each,
// with no rebuilding.
//
// TreeOps wraps a finished MstRunResult's forest (a single LDT after a
// successful run) and executes batches of such operations in one
// simulation, verifying results against the inputs.
#pragma once

#include <cstdint>
#include <vector>

#include "smst/graph/graph.h"
#include "smst/mst/result.h"
#include "smst/runtime/metrics.h"

namespace smst {

struct TreeOpRequest {
  enum class Kind { kBroadcast, kAggregateMin, kAggregateSum };
  Kind kind = Kind::kBroadcast;
  // kBroadcast: the value the root disseminates (inputs elsewhere
  // ignored). kAggregateMin/Sum: per-node inputs (size n).
  std::uint64_t broadcast_value = 0;
  std::vector<std::uint64_t> inputs;
};

struct TreeOpOutcome {
  // kBroadcast: every node's received value (all equal on success).
  // kAggregateMin/Sum: entry v = the aggregate over v's subtree; the
  // root's entry is the tree-wide answer.
  std::vector<std::uint64_t> per_node;
  std::uint64_t root_value = 0;
};

struct TreeOpsReport {
  std::vector<TreeOpOutcome> outcomes;  // one per request, in order
  RunStats stats;                       // awake cost of the whole batch
};

// Runs `requests` back-to-back over the tree in `result` (which must
// hold a single spanning LDT, i.e. a successful MST/ST run on `g`).
// Throws std::invalid_argument on malformed inputs.
TreeOpsReport RunTreeOps(const WeightedGraph& g, const MstRunResult& result,
                         const std::vector<TreeOpRequest>& requests,
                         std::uint64_t seed = 1);

}  // namespace smst
