#include "smst/sleeping/procedures.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <string>

#include "smst/faults/run_outcome.h"

namespace smst {

std::optional<Message> MessageFromPort(std::span<const InMessage> inbox,
                                       std::uint32_t port) {
  for (const InMessage& m : inbox) {
    if (m.port == port) return m.msg;
  }
  return std::nullopt;
}

namespace {

constexpr auto FromPort = MessageFromPort;

}  // namespace

Task<Message> FragmentBroadcast(NodeContext& ctx, const LdtState& ldt,
                                Round block_start, Message root_msg,
                                std::size_t span) {
  const ScheduleRounds sched = TransmissionSchedule(
      block_start, ldt.level, span == 0 ? ctx.NumNodesKnown() : span);
  Message msg = root_msg;
  if (!ldt.IsRoot()) {
    auto inbox = co_await ctx.Awake(sched.down_receive);
    auto from_parent = FromPort(inbox, ldt.parent_port);
    if (!from_parent.has_value()) {
      // Drop-free by construction in the sleeping model, so a missing
      // parent message is a fault effect: classified, not a crash.
      throw ProtocolStallError(
          "FragmentBroadcast: node " + std::to_string(ctx.Id()) +
          " heard nothing from its parent in its Down-Receive round");
    }
    msg = *from_parent;
  }
  if (!ldt.child_ports.empty()) {
    SendBatch sends;
    sends.reserve(ldt.child_ports.size());
    for (std::uint32_t p : ldt.child_ports) sends.push_back({p, msg});
    co_await ctx.Awake(sched.down_send, std::move(sends));
  }
  co_return msg;
}

Task<UpcastItem> UpcastMin(NodeContext& ctx, const LdtState& ldt,
                           Round block_start, UpcastItem own,
                           std::size_t span) {
  const ScheduleRounds sched = TransmissionSchedule(
      block_start, ldt.level, span == 0 ? ctx.NumNodesKnown() : span);
  UpcastItem best = own;
  if (!ldt.child_ports.empty()) {
    auto inbox = co_await ctx.Awake(sched.up_receive);
    for (std::uint32_t p : ldt.child_ports) {
      if (auto m = FromPort(inbox, p); m.has_value()) {
        UpcastItem item{m->a, m->b, m->c};
        if (item < best) best = item;
      }
    }
  }
  if (!ldt.IsRoot() && !best.Absent()) {
    co_await ctx.Awake(
        sched.up_send,
        OutMessage{ldt.parent_port,
                   Message{kTagUpcastMin, best.key, best.b, best.c}});
  }
  co_return best;
}

Task<UpcastSumResult> UpcastSum(NodeContext& ctx, const LdtState& ldt,
                                Round block_start, std::uint64_t own,
                                std::size_t span) {
  const ScheduleRounds sched = TransmissionSchedule(
      block_start, ldt.level, span == 0 ? ctx.NumNodesKnown() : span);
  UpcastSumResult result;
  result.subtree_total = own;
  if (!ldt.child_ports.empty()) {
    auto inbox = co_await ctx.Awake(sched.up_receive);
    for (std::uint32_t p : ldt.child_ports) {
      std::uint64_t child_total = 0;
      if (auto m = FromPort(inbox, p); m.has_value()) child_total = m->a;
      result.child_totals.emplace_back(p, child_total);
      result.subtree_total += child_total;
    }
  }
  if (!ldt.IsRoot() && result.subtree_total > 0) {
    co_await ctx.Awake(
        sched.up_send,
        OutMessage{ldt.parent_port,
                   Message{kTagUpcastSum, result.subtree_total, 0, 0}});
  }
  co_return result;
}

Task<InboxBatch> TransmitAdjacent(NodeContext& ctx,
                                  const LdtState& ldt,
                                  Round block_start,
                                  SendBatch sends,
                                  std::size_t span) {
  const ScheduleRounds sched = TransmissionSchedule(
      block_start, ldt.level, span == 0 ? ctx.NumNodesKnown() : span);
  co_return co_await ctx.Awake(sched.side, std::move(sends));
}

SendBatch ToAllPorts(const NodeContext& ctx, Message msg) {
  SendBatch sends;
  sends.reserve(ctx.Degree());
  for (std::uint32_t p = 0; p < ctx.Degree(); ++p) sends.push_back({p, msg});
  return sends;
}

}  // namespace smst
