// Procedure Fast-Awake-Coloring(n, N) (paper §2.3).
//
// Properly 5-colors the supergraph H whose nodes are fragments and whose
// edges are the phase's valid MOEs (max degree 4). Fragments take their
// turn in fragment-ID order: N stages, one per possible ID. In stage i,
// only fragment i and its H-neighbors participate; everyone else sleeps,
// so each node is awake in at most 5 stages and the whole coloring costs
// O(1) awake rounds per node and O(nN) running time.
//
// Within a fragment's own stage, every node computes the same greedy
// choice — the highest-priority palette color no already-colored
// H-neighbor took (Blue > Red > Orange > Black > Green) — and the choice
// is funneled through the root (Upcast-Min + Fragment-Broadcast) before
// the boundary announces it to the neighbors (Transmit-Adjacent +
// Upcast-Min + Fragment-Broadcast = the paper's Neighbor-Awareness).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "smst/runtime/node.h"
#include "smst/runtime/task.h"
#include "smst/sleeping/ldt.h"
#include "smst/sleeping/schedule.h"

namespace smst {

// Coloring-internal message tags (< 100 like the rest of the toolbox);
// shared with the flat lowering in sleeping/flat_procedures.h.
inline constexpr std::uint16_t kTagColorChoice = 60;
inline constexpr std::uint16_t kTagColorAnnounce = 61;
inline constexpr std::uint16_t kTagColorNbr = 62;

// Palette in priority order; kNone = not yet colored.
enum class FragColor : std::uint8_t {
  kNone = 0,
  kBlue = 1,
  kRed = 2,
  kOrange = 3,
  kBlack = 4,
  kGreen = 5,
};

const char* FragColorName(FragColor c);

// One H-neighbor of this node's fragment. The list is identical at every
// node of a fragment (assembled fragment-wide before coloring).
struct NbrEntry {
  NodeId frag_id = 0;
  Weight weight = 0;    // the connecting valid-MOE edge's weight (unique)
  bool outgoing = false;  // true: our fragment's MOE; false: accepted incoming
};

// A boundary edge of *this node*: a valid-MOE edge incident to it.
struct HPort {
  std::uint32_t port = kNoPort;
  NodeId neighbor_frag = 0;
};

struct ColoringResult {
  FragColor my_color = FragColor::kNone;
  // Colors of the fragment's H-neighbors (known fragment-wide).
  std::map<NodeId, FragColor> neighbor_colors;
};

// Schedule blocks consumed per stage and in total (every node's cursor
// advances by kColoringBlocksPerStage * N regardless of participation).
inline constexpr std::uint64_t kColoringBlocksPerStage = 5;

// The fragment-wide greedy palette choice (highest-priority color no
// already-colored H-neighbor took) and the received-color validation,
// shared by the coroutine and flat forms of Fast-Awake-Coloring.
FragColor ColoringGreedyChoice(const std::map<NodeId, FragColor>& taken);
FragColor ColoringCheckedColor(std::uint64_t raw);

// Runs the N-stage coloring. `nbr` lists the fragment's H-neighbors
// (fragment-wide consistent); `h_ports` this node's own boundary edges.
Task<ColoringResult> FastAwakeColoring(NodeContext& ctx, const LdtState& ldt,
                                       BlockCursor& cursor,
                                       const std::vector<NbrEntry>& nbr,
                                       const std::vector<HPort>& h_ports);

// ----------------------------------------------------------------------
// Corollary 1: the log*-round coloring alternative.
//
// The brief announcement only says "replace Fast-Awake-Coloring with an
// O(log* n) coloring (see e.g. [22])"; we instantiate the classic
// pipeline for graphs of max degree 4:
//   1. orient every H-edge toward the larger fragment ID (a DAG) and
//      split each fragment's <=4 out-edges into 4 forests;
//   2. Cole-Vishkin color reduction on all 4 forests in parallel
//      (coordinates packed into one O(log n)-bit announcement) —
//      O(log* N) iterations down to 6 colors per forest;
//   3. Goldberg-Plotkin-Shannon shift-down + recolor, 3 iterations per
//      forest (again in parallel), down to 3 colors per forest;
//   4. the 3^4 = 81 combined colors are reduced to 5 by 76 steps that
//      each retire one color class (class members are pairwise
//      non-adjacent, so they recolor greedily in one step; a fragment is
//      awake only in its own step and its <=4 neighbors' steps).
// Every fragment is awake O(log* N) rounds per phase; the whole coloring
// spans a fixed number of blocks, so one phase costs O(n log* N) rounds.
//
// Merging afterwards uses the *local color minima* as the movers (the
// Blue role): strict minima are independent, every H-component has one,
// and the distance-to-minimum argument gives the same 1/341-fraction
// guarantee as the paper's Lemma 4.
// ----------------------------------------------------------------------

struct LogStarResult {
  std::uint32_t my_color = 0;  // 0..4
  std::map<NodeId, std::uint32_t> neighbor_colors;  // final colors

  // The mover rule replacing "Blue": strictly smaller than every
  // H-neighbor's final color.
  bool IsMover() const {
    for (const auto& [id, c] : neighbor_colors) {
      if (c <= my_color) return false;
    }
    return true;
  }
};

// Number of Cole-Vishkin iterations for initial colors in [1, N].
std::uint32_t LogStarCvIterations(NodeId max_id);

// Schedule blocks the whole LogStarColoring spans (same for every
// fragment; non-participants SkipBlocks this amount).
std::uint64_t LogStarColoringBlocks(std::size_t n, NodeId max_id);

// Runs the log* coloring. Precondition: `nbr` is non-empty (isolated
// fragments skip coloring; they are movers by definition) and max_id
// < 2^48 (4 coordinates must pack into one message).
Task<LogStarResult> LogStarColoring(NodeContext& ctx, const LdtState& ldt,
                                    BlockCursor& cursor,
                                    const std::vector<NbrEntry>& nbr,
                                    const std::vector<HPort>& h_ports);

}  // namespace smst
