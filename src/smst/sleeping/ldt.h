// Labeled Distance Tree (LDT) state.
//
// The paper's central data structure: a rooted spanning tree of a
// fragment where every node knows (a) the fragment ID (= the root's node
// ID), (b) its hop distance from the root ("level"), and (c) which of its
// ports lead to its parent and children. A Forest of LDTs (FLDT)
// partitions the graph; both MST algorithms maintain the FLDT invariant
// between phases and shrink the forest to a single LDT = the MST.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "smst/graph/graph.h"
#include "smst/util/small_vec.h"

namespace smst {

inline constexpr std::uint32_t kNoPort = static_cast<std::uint32_t>(-1);

// Tree fan-out is small in the model workloads, so child lists live
// inline (no heap) in the common case; merging re-roots then copy and
// mutate these every phase, which this keeps allocation-free.
using ChildPortList = SmallVec<std::uint32_t, 4>;

struct LdtState {
  NodeId fragment_id = 0;
  std::uint64_t level = 0;
  std::uint32_t parent_port = kNoPort;
  ChildPortList child_ports;

  bool IsRoot() const { return parent_port == kNoPort; }

  // A node's initial state: a singleton fragment rooted at itself.
  static LdtState Singleton(NodeId own_id) {
    LdtState s;
    s.fragment_id = own_id;
    s.level = 0;
    return s;
  }
};

// Whole-forest invariant check used by tests and (in debug builds) the
// algorithms between phases. Views every node's local state globally and
// verifies: parent/child pointers are symmetric tree edges, levels equal
// the hop distance to a unique root per fragment, and fragment IDs equal
// the root's node ID. Returns an empty string when the forest is valid,
// else a description of the first violation.
std::string CheckForestInvariant(const WeightedGraph& g,
                                 const std::vector<LdtState>& states);

}  // namespace smst
