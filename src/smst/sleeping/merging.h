// Procedure Merging-Fragments(n) (paper §2.2, illustrated in Appendix C).
//
// Merges every "tails" fragment into the "heads" fragment at the far end
// of its merge edge, in O(1) awake rounds and O(n) running time, while
// restoring the LDT invariant of the merged fragment:
//
//   sub-block A (Side):   everyone exchanges (fragment ID, level) with
//                         neighbors; the tails attachment node u_T also
//                         raises an ATTACH flag on the merge edge, so the
//                         heads endpoint u_H learns it gains a child and
//                         u_T learns its new fragment ID and level.
//   sub-block B (Up):     first Transmission-Schedule instance — the new
//                         (fragment ID, level) values propagate from u_T
//                         along the old-tree path to the old root; each
//                         path node re-orients (its new parent is the
//                         child it heard from).
//   sub-block C (Down):   second instance — every remaining tails node
//                         with still-empty NEW values adopts its old
//                         parent's value + 1 (orientation unchanged).
//
// (The paper's prose says nodes with *non-empty* NEW-LEVEL-NUM update in
// the down pass; taken literally that would corrupt the path computed in
// sub-block B, and Appendix C's figures show the intent: only the
// still-empty nodes adopt. We implement the figures. See DESIGN.md §2.)
//
// Heads fragments keep their identity; their nodes sleep through B and C.
#pragma once

#include <cstdint>
#include <vector>

#include "smst/runtime/node.h"
#include "smst/runtime/task.h"
#include "smst/sleeping/ldt.h"
#include "smst/sleeping/schedule.h"

namespace smst {

struct MergeRole {
  // True iff this node's fragment merges into another fragment now.
  bool is_tails = false;
  // On exactly one node of a tails fragment (the node incident to the
  // merge edge): the port of that edge. kNoPort elsewhere.
  std::uint32_t attach_port = kNoPort;
};

// Number of schedule blocks one merge occupies (A, B, C).
inline constexpr std::uint64_t kMergeBlocks = 3;

// Runs one merge wave. Updates `ldt` in place and marks newly added MST
// edges in `mst_port_mark` (one flag per own port; both endpoints of a
// merge edge mark it).
Task<void> MergingFragments(NodeContext& ctx, LdtState& ldt,
                            BlockCursor& cursor, MergeRole role,
                            std::vector<bool>& mst_port_mark);

}  // namespace smst
