// Harness utility: construct explicit LDT forests on a graph (used by
// tests and the toolbox micro-benches to exercise procedures on known
// tree shapes, outside of a full algorithm run).
#pragma once

#include <cstdint>
#include <queue>
#include <stdexcept>
#include <vector>

#include "smst/graph/graph.h"
#include "smst/sleeping/ldt.h"

namespace smst {

// Port of `v` that leads to `u`; throws if they are not adjacent.
inline std::uint32_t PortTo(const WeightedGraph& g, NodeIndex v, NodeIndex u) {
  std::uint32_t port = 0;
  for (const Port& p : g.PortsOf(v)) {
    if (p.neighbor == u) return port;
    ++port;
  }
  throw std::logic_error("PortTo: nodes not adjacent");
}

// Builds per-node LdtState for the forest formed by `tree_edges` (must be
// acyclic) rooted at `roots` (one root per tree). Levels are hop
// distances in the tree; fragment IDs are the roots' node IDs.
inline std::vector<LdtState> BuildForest(
    const WeightedGraph& g, const std::vector<EdgeIndex>& tree_edges,
    const std::vector<NodeIndex>& roots) {
  const std::size_t n = g.NumNodes();
  std::vector<std::vector<NodeIndex>> adj(n);
  for (EdgeIndex e : tree_edges) {
    adj[g.GetEdge(e).u].push_back(g.GetEdge(e).v);
    adj[g.GetEdge(e).v].push_back(g.GetEdge(e).u);
  }
  std::vector<LdtState> states(n);
  std::vector<bool> seen(n, false);
  for (NodeIndex root : roots) {
    std::queue<NodeIndex> q;
    q.push(root);
    seen[root] = true;
    states[root] = LdtState::Singleton(g.IdOf(root));
    while (!q.empty()) {
      NodeIndex v = q.front();
      q.pop();
      for (NodeIndex u : adj[v]) {
        if (seen[u]) continue;
        seen[u] = true;
        states[u].fragment_id = states[v].fragment_id;
        states[u].level = states[v].level + 1;
        states[u].parent_port = PortTo(g, u, v);
        states[v].child_ports.push_back(PortTo(g, v, u));
        q.push(u);
      }
    }
  }
  for (NodeIndex v = 0; v < n; ++v) {
    if (!seen[v]) throw std::logic_error("BuildForest: node not covered");
  }
  return states;
}

}  // namespace smst
