// Flat (coroutine-less) lowerings of the paper's toolbox procedures.
//
// Each struct here is the batched state-machine form of one procedure in
// procedures.h / merging.h / coloring.h: identical message tags, schedule
// rounds, LDT mutations, and error strings, with the coroutine's
// suspension points turned into an explicit resume protocol. A driver
// (the flat MST programs in src/smst/mst/) embeds one instance per node
// and runs it like this:
//
//   Round r = sub.Begin(node, ..., sends);         // may push sends
//   while (r != kFlatDone) {
//     <return r to the engine; next Step delivers round r's inbox>
//     r = sub.Resume(node, inbox, sends);
//   }
//   <read the procedure's result fields>
//
// Begin/Resume return the next awake round with that round's sends
// already pushed into the driver's out-parameter, or kFlatDone when the
// procedure has finished — the exact contract of FlatProgram::Step, so a
// driver can forward a sub-machine's round verbatim. A procedure that
// never needs to wake (e.g. Upcast-Min at a childless root with nothing
// to send) finishes inside Begin and the driver continues synchronously,
// just as the coroutine form would run through without suspending.
//
// State referenced across suspensions (the LDT, the driver's NbrEntry /
// HPort vectors) is held by pointer; drivers keep those objects at stable
// addresses for the procedure's lifetime, exactly as coroutine frames
// keep references into the node's locals.
#pragma once

#include <cstdint>
#include <vector>

#include "smst/runtime/flat/program.h"
#include "smst/sleeping/coloring.h"
#include "smst/sleeping/ldt.h"
#include "smst/sleeping/merging.h"
#include "smst/sleeping/procedures.h"
#include "smst/sleeping/schedule.h"

namespace smst {

// Fragment-Broadcast(n): after completion, `msg` holds the broadcast
// message (the coroutine form's return value).
struct FlatBroadcast {
  ScheduleRounds sched;
  Message msg;
  const LdtState* ldt = nullptr;
  std::uint8_t pc = 0;

  Round Begin(const FlatNodeRef& node, const LdtState& l, Round block_start,
              Message root_msg, SendBatch& sends, std::size_t span = 0);
  Round Resume(const FlatNodeRef& node, const InboxBatch& inbox,
               SendBatch& sends);

 private:
  Round SendDown(SendBatch& sends);
};

// Upcast-Min(n): after completion, `best` holds the subtree minimum (the
// coroutine form's return value).
struct FlatUpcastMin {
  ScheduleRounds sched;
  UpcastItem best;
  const LdtState* ldt = nullptr;
  std::uint8_t pc = 0;

  Round Begin(const FlatNodeRef& node, const LdtState& l, Round block_start,
              UpcastItem own, SendBatch& sends, std::size_t span = 0);
  Round Resume(const FlatNodeRef& node, const InboxBatch& inbox,
               SendBatch& sends);

 private:
  Round SendUp(SendBatch& sends);
};

// Upcast-Sum(n): after completion, `result` holds the subtree total and
// the per-child breakdown.
struct FlatUpcastSum {
  ScheduleRounds sched;
  UpcastSumResult result;
  const LdtState* ldt = nullptr;
  std::uint8_t pc = 0;

  Round Begin(const FlatNodeRef& node, const LdtState& l, Round block_start,
              std::uint64_t own, SendBatch& sends, std::size_t span = 0);
  Round Resume(const FlatNodeRef& node, const InboxBatch& inbox,
               SendBatch& sends);

 private:
  Round SendUp(SendBatch& sends);
};

// Merging-Fragments(n): mutates `ldt` and `mst_port_mark` in place with
// the same timing as the coroutine form (marks at sub-block A, LDT
// fields when the procedure completes).
struct FlatMerge {
  std::size_t span = 0;
  ScheduleRounds sched_a, sched_b, sched_c;
  LdtState* ldt = nullptr;
  std::vector<bool>* mark = nullptr;
  MergeRole role;
  bool have_new = false;
  NodeId new_frag = 0;
  std::uint64_t new_level = 0;
  std::uint32_t new_parent_port = kNoPort;
  ChildPortList new_children;
  std::uint8_t pc = 0;

  Round Begin(const FlatNodeRef& node, LdtState& l, BlockCursor& cursor,
              MergeRole r, std::vector<bool>& m, SendBatch& sends);
  Round Resume(const FlatNodeRef& node, const InboxBatch& inbox,
               SendBatch& sends);

 private:
  Round EnterB(const FlatNodeRef& node, SendBatch& sends);
  Round MaybeUpSend(const FlatNodeRef& node, SendBatch& sends);
  Round EnterC(const FlatNodeRef& node, SendBatch& sends);
  Round SendDownC(SendBatch& sends);
  Round Finalize();
};

// Fast-Awake-Coloring(n, N): after completion, `result` holds my_color
// and the fragment's H-neighbor colors.
struct FlatColoring {
  const LdtState* ldt = nullptr;
  const std::vector<NbrEntry>* nbr = nullptr;
  const std::vector<HPort>* h_ports = nullptr;
  std::size_t n = 0;
  Round base = 0;
  Round block_len = 0;
  std::vector<NodeId> stages;
  std::size_t stage_i = 0;
  NodeId stage = 0;
  Round b1 = 0, b2 = 0, b3 = 0, b4 = 0, b5 = 0;
  UpcastItem heard;
  ColoringResult result;
  FlatUpcastMin umin;
  FlatBroadcast bcast;
  std::uint8_t pc = 0;

  Round Begin(const FlatNodeRef& node, const LdtState& l, BlockCursor& cursor,
              const std::vector<NbrEntry>& nbr_in,
              const std::vector<HPort>& h_ports_in, SendBatch& sends);
  Round Resume(const FlatNodeRef& node, const InboxBatch& inbox,
               SendBatch& sends);

 private:
  Round NextStage(const FlatNodeRef& node, SendBatch& sends);
  Round OwnAfterUmin(const FlatNodeRef& node, SendBatch& sends);
  Round OwnAfterBcast(const FlatNodeRef& node, SendBatch& sends);
  Round ListenerAfterTransmit(const FlatNodeRef& node, SendBatch& sends);
  Round ListenerAfterUmin(const FlatNodeRef& node, SendBatch& sends);
  Round ListenerAfterBcast(const FlatNodeRef& node, SendBatch& sends);
  Round EndStage(const FlatNodeRef& node, SendBatch& sends);
};

}  // namespace smst
