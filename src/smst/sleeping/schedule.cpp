#include "smst/sleeping/schedule.h"

#include <cassert>

namespace smst {

ScheduleRounds TransmissionSchedule(Round block_start, std::uint64_t level,
                                    std::size_t span) {
  assert(level < span);
  const Round s = block_start;
  const Round nn = static_cast<Round>(span);
  ScheduleRounds r;
  r.is_root = level == 0;
  r.side = s + nn;
  if (r.is_root) {
    r.down_send = s;
    r.up_receive = s + 2 * nn;
  } else {
    r.down_receive = s + level - 1;
    r.down_send = s + level;
    r.up_receive = s + 2 * nn - level;
    r.up_send = s + 2 * nn - level + 1;
  }
  return r;
}

}  // namespace smst
