#include "smst/sleeping/merging.h"

#include <algorithm>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>

#include "smst/faults/run_outcome.h"
#include "smst/sleeping/procedures.h"

namespace smst {

namespace {

std::optional<Message> FromPort(std::span<const InMessage> inbox,
                                std::uint32_t port) {
  for (const InMessage& m : inbox) {
    if (m.port == port) return m.msg;
  }
  return std::nullopt;
}

// Drop-free by construction in the sleeping model, so a protocol step
// starved of its expected message is a fault effect (ProtocolStallError
// classifies it as a crashed partition rather than a crash).
[[noreturn]] void ProtocolError(const NodeContext& ctx, const std::string& what) {
  throw ProtocolStallError("MergingFragments: node " +
                           std::to_string(ctx.Id()) + ": " + what);
}

}  // namespace

Task<void> MergingFragments(NodeContext& ctx, LdtState& ldt,
                            BlockCursor& cursor, MergeRole role,
                            std::vector<bool>& mst_port_mark) {
  // The schedule span comes from the cursor so the adaptive-blocks
  // optimization applies here too (levels are bounded by the caller's
  // per-phase depth invariant).
  const std::size_t span = cursor.Span();
  const Round block_a = cursor.TakeBlock();
  const Round block_b = cursor.TakeBlock();
  const Round block_c = cursor.TakeBlock();

  // Pending NEW-* values (the paper's NEW-FRAGMENT-ID / NEW-LEVEL-NUM)
  // and re-orientation, applied only after sub-block C.
  bool have_new = false;
  NodeId new_frag = 0;
  std::uint64_t new_level = 0;
  std::uint32_t new_parent_port = ldt.parent_port;
  ChildPortList new_children = ldt.child_ports;

  // --- sub-block A: Side exchange of (fragment ID, level, ATTACH) ------
  {
    const auto sched = TransmissionSchedule(block_a, ldt.level, span);
    SendBatch sends;
    sends.reserve(ctx.Degree());
    for (std::uint32_t p = 0; p < ctx.Degree(); ++p) {
      const std::uint64_t attach =
          (role.is_tails && p == role.attach_port) ? 1 : 0;
      sends.push_back(
          {p, Message{kTagMergeSide, ldt.fragment_id, ldt.level, attach}});
    }
    auto inbox = co_await ctx.Awake(sched.side, std::move(sends));

    for (const InMessage& m : inbox) {
      if (m.msg.type != kTagMergeSide) continue;
      if (m.msg.c == 1) {
        // A neighbor attaches to us over this edge: we gain a child.
        if (role.is_tails) {
          ProtocolError(ctx, "a tails node received an ATTACH flag");
        }
        new_children.push_back(m.port);
        mst_port_mark[m.port] = true;
      }
    }
    if (role.is_tails && role.attach_port != kNoPort) {
      auto from_target = FromPort(inbox, role.attach_port);
      if (!from_target.has_value()) {
        ProtocolError(ctx, "merge target silent in the Side round");
      }
      new_frag = from_target->a;
      new_level = from_target->b + 1;
      have_new = true;
      // Re-root: the merge target becomes the parent; all old tree
      // neighbors (old children and old parent) become children.
      new_parent_port = role.attach_port;
      if (ldt.parent_port != kNoPort) new_children.push_back(ldt.parent_port);
      mst_port_mark[role.attach_port] = true;
    }
  }

  if (role.is_tails) {
    // --- sub-block B: first schedule instance (up the old tree) --------
    // The NEW values travel from u_T to the old root; each path node
    // re-orients toward the child it heard from.
    {
      const auto sched = TransmissionSchedule(block_b, ldt.level, span);
      if (!ldt.child_ports.empty()) {
        auto inbox = co_await ctx.Awake(sched.up_receive);
        std::uint32_t sender = kNoPort;
        for (std::uint32_t p : ldt.child_ports) {
          if (auto m = FromPort(inbox, p); m.has_value()) {
            if (sender != kNoPort) {
              ProtocolError(ctx, "two children on the re-root path");
            }
            sender = p;
            new_level = m->a + 1;
            new_frag = m->b;
            have_new = true;
          }
        }
        if (sender != kNoPort) {
          // New parent = that child; old parent (if any) becomes a child.
          new_parent_port = sender;
          new_children = ldt.child_ports;
          new_children.erase(std::remove(new_children.begin(),
                                         new_children.end(), sender),
                             new_children.end());
          if (ldt.parent_port != kNoPort) {
            new_children.push_back(ldt.parent_port);
          }
        }
      }
      if (have_new && !ldt.IsRoot()) {
        co_await ctx.Awake(
            sched.up_send,
            OutMessage{ldt.parent_port,
                       Message{kTagMergeUp, new_level, new_frag, 0}});
      }
    }

    // --- sub-block C: second instance (down the old tree) --------------
    // Still-empty nodes adopt (old parent's NEW level + 1); orientation
    // unchanged for them.
    {
      const auto sched = TransmissionSchedule(block_c, ldt.level, span);
      if (!have_new) {
        if (ldt.IsRoot()) {
          // The old root is always on the u_T -> root path.
          ProtocolError(ctx, "tails root has no NEW values after the up pass");
        }
        auto inbox = co_await ctx.Awake(sched.down_receive);
        auto m = FromPort(inbox, ldt.parent_port);
        if (!m.has_value()) {
          ProtocolError(ctx, "no NEW values arrived in the down pass");
        }
        new_level = m->a + 1;
        new_frag = m->b;
        have_new = true;
      }
      // Send down to every old child except the one the NEW values came
      // from (a path node's sender child already has them and sleeps
      // through Down-Receive; skipping it keeps the protocol drop-free).
      SendBatch sends;
      sends.reserve(ldt.child_ports.size());
      for (std::uint32_t p : ldt.child_ports) {
        if (p == new_parent_port) continue;
        sends.push_back({p, Message{kTagMergeDown, new_level, new_frag, 0}});
      }
      if (!sends.empty()) {
        co_await ctx.Awake(sched.down_send, std::move(sends));
      }
    }

    ldt.fragment_id = new_frag;
    ldt.level = new_level;
    ldt.parent_port = new_parent_port;
  }
  // Heads fragments keep ID / level / parent, and gain attach children.
  ldt.child_ports = std::move(new_children);
  co_return;
}

}  // namespace smst
