#include "smst/sleeping/coloring.h"

#include <algorithm>
#include <array>
#include <bit>
#include <set>
#include <stdexcept>
#include <string>

#include "smst/sleeping/procedures.h"

namespace smst {

FragColor ColoringGreedyChoice(const std::map<NodeId, FragColor>& taken) {
  for (FragColor c : {FragColor::kBlue, FragColor::kRed, FragColor::kOrange,
                      FragColor::kBlack, FragColor::kGreen}) {
    bool used = false;
    for (const auto& [id, color] : taken) used |= color == c;
    if (!used) return c;
  }
  // Max degree of H is 4, so one of 5 colors is always free.
  throw std::logic_error("FastAwakeColoring: palette exhausted (degree > 4?)");
}

FragColor ColoringCheckedColor(std::uint64_t raw) {
  if (raw < 1 || raw > 5) {
    throw std::runtime_error("FastAwakeColoring: invalid color value " +
                             std::to_string(raw));
  }
  return static_cast<FragColor>(raw);
}

const char* FragColorName(FragColor c) {
  switch (c) {
    case FragColor::kNone: return "None";
    case FragColor::kBlue: return "Blue";
    case FragColor::kRed: return "Red";
    case FragColor::kOrange: return "Orange";
    case FragColor::kBlack: return "Black";
    case FragColor::kGreen: return "Green";
  }
  return "?";
}

Task<ColoringResult> FastAwakeColoring(NodeContext& ctx, const LdtState& ldt,
                                       BlockCursor& cursor,
                                       const std::vector<NbrEntry>& nbr,
                                       const std::vector<HPort>& h_ports) {
  const std::size_t n = ctx.NumNodesKnown();
  const NodeId max_id = ctx.MaxIdKnown();
  const Round block_len = ScheduleBlockLength(n);
  const Round base = cursor.NextRound();
  // Claim all N stages' blocks up front; the stages this node sleeps
  // through cost nothing but this local arithmetic.
  cursor.SkipBlocks(kColoringBlocksPerStage * max_id);

  // The (at most 5) stages this node participates in, in stage order.
  std::vector<NodeId> stages{ldt.fragment_id};
  for (const NbrEntry& e : nbr) stages.push_back(e.frag_id);
  std::sort(stages.begin(), stages.end());
  stages.erase(std::unique(stages.begin(), stages.end()), stages.end());

  ColoringResult result;
  for (NodeId stage : stages) {
    const Round s0 = base + (stage - 1) * kColoringBlocksPerStage * block_len;
    const Round b1 = s0;                  // Upcast-Min (choice)
    const Round b2 = s0 + block_len;      // Fragment-Broadcast (choice)
    const Round b3 = s0 + 2 * block_len;  // Transmit-Adjacent (announce)
    const Round b4 = s0 + 3 * block_len;  // Upcast-Min (received color)
    const Round b5 = s0 + 4 * block_len;  // Fragment-Broadcast (received)

    if (stage == ldt.fragment_id) {
      // Our turn. All earlier-colored neighbors are in neighbor_colors,
      // so every node of the fragment computes the same greedy choice.
      const FragColor choice = ColoringGreedyChoice(result.neighbor_colors);
      UpcastItem offer{static_cast<std::uint64_t>(choice), 0, 0};
      UpcastItem agg = co_await UpcastMin(ctx, ldt, b1, offer);
      Message announced = co_await FragmentBroadcast(
          ctx, ldt, b2, Message{kTagColorChoice, agg.key, 0, 0});
      result.my_color = ColoringCheckedColor(announced.a);
      // Announce to neighbor fragments over the valid-MOE edges.
      if (!h_ports.empty()) {
        SendBatch sends;
        sends.reserve(h_ports.size());
        for (const HPort& hp : h_ports) {
          sends.push_back(
              {hp.port,
               Message{kTagColorAnnounce,
                       static_cast<std::uint64_t>(result.my_color),
                       ldt.fragment_id, 0}});
        }
        co_await TransmitAdjacent(ctx, ldt, b3, std::move(sends));
      }
      // b4 / b5 belong to the listening side; we sleep.
    } else {
      // A neighbor's turn: learn its color fragment-wide.
      UpcastItem heard;  // absent unless we border fragment `stage`
      bool borders_stage = false;
      for (const HPort& hp : h_ports) borders_stage |= hp.neighbor_frag == stage;
      if (borders_stage) {
        auto inbox = co_await TransmitAdjacent(ctx, ldt, b3, {});
        for (const InMessage& m : inbox) {
          if (m.msg.type == kTagColorAnnounce && m.msg.b == stage) {
            heard = UpcastItem{m.msg.a, stage, 0};
          }
        }
      }
      UpcastItem agg = co_await UpcastMin(ctx, ldt, b4, heard);
      Message learned = co_await FragmentBroadcast(
          ctx, ldt, b5, Message{kTagColorNbr, agg.key, stage, 0});
      result.neighbor_colors[stage] = ColoringCheckedColor(learned.a);
    }
  }
  co_return result;
}

// ======================================================================
// Corollary 1: log* coloring (see header for the pipeline overview).
// ======================================================================

namespace {

constexpr std::uint16_t kTagXchg = 63;      // Side announce: a=payload
constexpr std::uint16_t kTagXchgUp = 64;    // gather: key=nbr index, b=value
constexpr std::uint16_t kTagForest = 65;    // a=edge weight, b=forest index

// One simultaneous "announce to H-neighbors + make it fragment-wide"
// exchange: 1 Side block + 4 x (Upcast-Min + Fragment-Broadcast) blocks.
constexpr std::uint64_t kExchangeBlocks = 9;

// Retire combined colors 80..5 one class per step.
constexpr std::uint32_t kReductionSteps = 81 - 5;

// Announces `own_value` over the valid-MOE edges and returns every
// H-neighbor's announced value, known fragment-wide. Neighbors that did
// not announce (e.g. already-retired fragments in a reduction step) are
// simply absent from the result.
// When `announce` is false this fragment only listens (used by the
// reduction steps, where a listener's other neighbors may be asleep and
// sending to them would violate the drop-free protocol property).
Task<std::map<NodeId, std::uint64_t>> ExchangeValues(
    NodeContext& ctx, const LdtState& ldt, BlockCursor& cursor,
    const std::vector<NodeId>& sorted_nbr_ids,
    const std::vector<HPort>& h_ports, std::uint64_t own_value,
    bool announce = true) {
  // Side: announce on the boundary edges.
  SendBatch sends;
  if (announce) {
    sends.reserve(h_ports.size());
    for (const HPort& hp : h_ports) {
      sends.push_back({hp.port, Message{kTagXchg, own_value, 0, 0}});
    }
  }
  auto inbox =
      co_await TransmitAdjacent(ctx, ldt, cursor.TakeBlock(), std::move(sends));
  // This node's locally heard (neighbor index -> value).
  std::map<std::uint64_t, std::uint64_t> heard;
  for (const InMessage& m : inbox) {
    if (m.msg.type != kTagXchg) continue;
    for (const HPort& hp : h_ports) {
      if (hp.port == m.port) {
        const auto it = std::lower_bound(sorted_nbr_ids.begin(),
                                         sorted_nbr_ids.end(),
                                         hp.neighbor_frag);
        heard[static_cast<std::uint64_t>(it - sorted_nbr_ids.begin())] =
            m.msg.a;
      }
    }
  }
  // Four gather rounds make all heard values fragment-wide.
  std::map<NodeId, std::uint64_t> result;
  std::set<std::uint64_t> done_indices;
  for (int k = 0; k < 4; ++k) {
    UpcastItem offer;
    for (const auto& [index, value] : heard) {
      if (done_indices.count(index)) continue;
      UpcastItem candidate{index, value, 0};
      if (candidate < offer) offer = candidate;
      break;  // map is index-sorted: first undone is the minimum
    }
    const UpcastItem got =
        co_await UpcastMin(ctx, ldt, cursor.TakeBlock(), offer);
    const Message msg = co_await FragmentBroadcast(
        ctx, ldt, cursor.TakeBlock(), Message{kTagXchgUp, got.key, got.b, 0});
    if (msg.a != kPlusInfinity) {
      done_indices.insert(msg.a);
      result[sorted_nbr_ids[msg.a]] = msg.b;
    }
  }
  co_return result;
}

std::uint64_t CvStep(std::uint64_t own, std::uint64_t parent) {
  if (own == parent) {
    throw std::logic_error("LogStarColoring: equal colors across an edge");
  }
  const std::uint32_t i =
      static_cast<std::uint32_t>(std::countr_zero(own ^ parent));
  return 2ull * i + ((own >> i) & 1);
}

std::uint64_t Pack4(const std::array<std::uint64_t, 4>& c) {
  // Values wider than a 16-bit lane would silently corrupt their left
  // neighbor. Coordinates here are <= 95 after the first CV step (CvStep
  // of two < 2^48 colors yields 2i+b <= 95), but guard the boundary: the
  // first exchange must never pack a raw fragment ID.
  for (std::uint64_t v : c) {
    if (v >> 16 != 0) {
      throw std::logic_error("Pack4: value exceeds the 16-bit lane budget");
    }
  }
  return c[0] | (c[1] << 16) | (c[2] << 32) | (c[3] << 48);
}
std::array<std::uint64_t, 4> Unpack4(std::uint64_t v) {
  return {v & 0xffff, (v >> 16) & 0xffff, (v >> 32) & 0xffff,
          (v >> 48) & 0xffff};
}

}  // namespace

std::uint32_t LogStarCvIterations(NodeId max_id) {
  std::uint32_t t = 0;
  std::uint64_t bound = max_id;  // colors start as fragment IDs <= N
  while (bound > 5) {
    bound = 2 * (std::bit_width(bound) - 1) + 1;
    ++t;
  }
  return std::max<std::uint32_t>(t, 1);
}

std::uint64_t LogStarColoringBlocks(std::size_t /*n*/, NodeId max_id) {
  // orientation + t* CV exchanges + 6 GPS exchanges + 76 reduction steps.
  return kExchangeBlocks *
         (1ull + LogStarCvIterations(max_id) + 6 + kReductionSteps);
}

Task<LogStarResult> LogStarColoring(NodeContext& ctx, const LdtState& ldt,
                                    BlockCursor& cursor,
                                    const std::vector<NbrEntry>& nbr,
                                    const std::vector<HPort>& h_ports) {
  if (nbr.empty()) {
    throw std::logic_error("LogStarColoring: isolated fragments skip coloring");
  }
  if (ctx.MaxIdKnown() >= (NodeId{1} << 48)) {
    throw std::invalid_argument("LogStarColoring: needs N < 2^48");
  }
  const NodeId own_frag = ldt.fragment_id;

  // Fragment-wide consistent views derived from nbr (identical at every
  // node of the fragment).
  std::vector<NodeId> sorted_nbr_ids;
  for (const NbrEntry& e : nbr) sorted_nbr_ids.push_back(e.frag_id);
  std::sort(sorted_nbr_ids.begin(), sorted_nbr_ids.end());
  sorted_nbr_ids.erase(
      std::unique(sorted_nbr_ids.begin(), sorted_nbr_ids.end()),
      sorted_nbr_ids.end());

  // Out-edges (toward larger fragment IDs), sorted: index = forest 0..3.
  std::vector<NbrEntry> out_edges;
  for (const NbrEntry& e : nbr) {
    if (e.frag_id > own_frag) out_edges.push_back(e);
  }
  std::sort(out_edges.begin(), out_edges.end(),
            [](const NbrEntry& a, const NbrEntry& b) {
              return a.frag_id != b.frag_id ? a.frag_id < b.frag_id
                                            : a.weight < b.weight;
            });

  // --- orientation exchange: tell each in-neighbor which forest we put
  // the shared edge in; learn the same for our in-edges. --------------
  std::map<Weight, std::uint32_t> in_forest;  // in-edge weight -> forest
  {
    SendBatch sends;
    for (const HPort& hp : h_ports) {
      for (std::uint32_t k = 0; k < out_edges.size(); ++k) {
        if (out_edges[k].frag_id == hp.neighbor_frag &&
            ctx.WeightAtPort(hp.port) == out_edges[k].weight) {
          sends.push_back({hp.port, Message{kTagForest,
                                            out_edges[k].weight, k, 0}});
        }
      }
    }
    auto inbox = co_await TransmitAdjacent(ctx, ldt, cursor.TakeBlock(),
                                           std::move(sends));
    std::map<Weight, std::uint32_t> heard;
    for (const InMessage& m : inbox) {
      if (m.msg.type == kTagForest) {
        heard[m.msg.a] = static_cast<std::uint32_t>(m.msg.b);
      }
    }
    std::set<Weight> done;
    for (int k = 0; k < 4; ++k) {
      UpcastItem offer;
      for (const auto& [w, forest] : heard) {
        if (done.count(w)) continue;
        offer = UpcastItem{w, forest, 0};
        break;
      }
      const UpcastItem got =
          co_await UpcastMin(ctx, ldt, cursor.TakeBlock(), offer);
      const Message msg = co_await FragmentBroadcast(
          ctx, ldt, cursor.TakeBlock(),
          Message{kTagForest, got.key, got.b, 0});
      if (msg.a != kPlusInfinity) {
        done.insert(msg.a);
        in_forest[msg.a] = static_cast<std::uint32_t>(msg.b);
      }
    }
  }
  // Children per forest: the in-edges' source fragments, by the forest
  // index the *source* assigned.
  std::array<std::vector<NodeId>, 4> forest_children;
  for (const NbrEntry& e : nbr) {
    if (e.frag_id >= own_frag) continue;
    if (auto it = in_forest.find(e.weight); it != in_forest.end()) {
      forest_children[it->second % 4].push_back(e.frag_id);
    }
  }

  // --- Cole-Vishkin on all four forests in parallel ------------------
  std::array<std::uint64_t, 4> coord;
  coord.fill(own_frag);
  std::map<NodeId, std::array<std::uint64_t, 4>> nbr_coord;
  for (NodeId id : sorted_nbr_ids) nbr_coord[id].fill(id);

  const std::uint32_t cv_iters = LogStarCvIterations(ctx.MaxIdKnown());
  for (std::uint32_t t = 0; t < cv_iters; ++t) {
    for (std::uint32_t k = 0; k < 4; ++k) {
      if (k < out_edges.size()) {
        coord[k] = CvStep(coord[k], nbr_coord[out_edges[k].frag_id][k]);
      } else {
        coord[k] = coord[k] & 1;  // forest root: keep bit 0
      }
    }
    auto got = co_await ExchangeValues(ctx, ldt, cursor, sorted_nbr_ids,
                                       h_ports, Pack4(coord));
    for (const auto& [id, packed] : got) nbr_coord[id] = Unpack4(packed);
  }

  // --- Goldberg-Plotkin-Shannon: 6 colors -> 3 per forest ------------
  for (std::uint64_t retire : {5u, 4u, 3u}) {
    // Shift-down: adopt the parent's color; roots flip to stay proper.
    std::array<std::uint64_t, 4> next = coord;
    for (std::uint32_t k = 0; k < 4; ++k) {
      if (k < out_edges.size()) {
        next[k] = nbr_coord[out_edges[k].frag_id][k];
      } else {
        next[k] = coord[k] == 0 ? 1 : 0;
      }
    }
    coord = next;
    auto got = co_await ExchangeValues(ctx, ldt, cursor, sorted_nbr_ids,
                                       h_ports, Pack4(coord));
    for (const auto& [id, packed] : got) nbr_coord[id] = Unpack4(packed);

    // Recolor the retiring class into {0,1,2}: forbidden are the parent's
    // color and the children's (uniform after shift-down) color.
    for (std::uint32_t k = 0; k < 4; ++k) {
      if (coord[k] != retire) continue;
      std::set<std::uint64_t> forbidden;
      if (k < out_edges.size()) {
        forbidden.insert(nbr_coord[out_edges[k].frag_id][k]);
      }
      for (NodeId child : forest_children[k]) {
        forbidden.insert(nbr_coord[child][k]);
      }
      for (std::uint64_t c = 0; c <= 2; ++c) {
        if (!forbidden.count(c)) {
          coord[k] = c;
          break;
        }
      }
    }
    got = co_await ExchangeValues(ctx, ldt, cursor, sorted_nbr_ids, h_ports,
                                  Pack4(coord));
    for (const auto& [id, packed] : got) nbr_coord[id] = Unpack4(packed);
  }

  // --- combine to 3^4 = 81 colors, then retire classes 80..5 ---------
  auto combine = [](const std::array<std::uint64_t, 4>& c) {
    return static_cast<std::uint32_t>(c[0] + 3 * c[1] + 9 * c[2] +
                                      27 * c[3]);
  };
  std::uint32_t my_color = combine(coord);
  std::map<NodeId, std::uint32_t> nbr_color;
  for (const auto& [id, c] : nbr_coord) nbr_color[id] = combine(c);

  for (std::uint32_t step = 0; step < kReductionSteps; ++step) {
    const std::uint32_t retiring = 80 - step;
    const bool announcer = my_color == retiring;
    bool listener = false;
    for (const auto& [id, c] : nbr_color) listener |= c == retiring;
    if (!announcer && !listener) {
      cursor.SkipBlocks(kExchangeBlocks);
      continue;
    }
    if (announcer) {
      std::set<std::uint32_t> used;
      for (const auto& [id, c] : nbr_color) used.insert(c);
      for (std::uint32_t c = 0; c <= 4; ++c) {
        if (!used.count(c)) {
          my_color = c;
          break;
        }
      }
    }
    // Only the retiring class announces; every neighbor of an announcer
    // is a listener (it tracked the announcer's color), so nothing is
    // ever sent to a sleeping fragment.
    auto got = co_await ExchangeValues(ctx, ldt, cursor, sorted_nbr_ids,
                                       h_ports, my_color, announcer);
    for (const auto& [id, value] : got) {
      nbr_color[id] = static_cast<std::uint32_t>(value);
    }
  }

  LogStarResult result;
  result.my_color = my_color;
  result.neighbor_colors = std::move(nbr_color);
  co_return result;
}

}  // namespace smst
