#include "smst/sleeping/ldt.h"

#include <algorithm>
#include <queue>
#include <string>

namespace smst {

std::string CheckForestInvariant(const WeightedGraph& g,
                                 const std::vector<LdtState>& states) {
  const std::size_t n = g.NumNodes();
  if (states.size() != n) return "states size mismatch";

  auto describe = [&](NodeIndex v) {
    return "node " + std::to_string(v) + " (id " + std::to_string(g.IdOf(v)) +
           ")";
  };

  // Pointer symmetry: v's parent must list v as a child and vice versa,
  // and both must be in the same fragment.
  for (NodeIndex v = 0; v < n; ++v) {
    const LdtState& s = states[v];
    auto ports = g.PortsOf(v);
    if (s.parent_port != kNoPort) {
      if (s.parent_port >= ports.size()) {
        return describe(v) + " has an out-of-range parent port";
      }
      const NodeIndex p = ports[s.parent_port].neighbor;
      const LdtState& ps = states[p];
      if (ps.fragment_id != s.fragment_id) {
        return describe(v) + " and its parent disagree on fragment ID";
      }
      if (s.level != ps.level + 1) {
        return describe(v) + " level is not parent level + 1";
      }
      bool listed = false;
      std::uint32_t port_at_p = 0;
      for (const Port& q : g.PortsOf(p)) {
        if (q.neighbor == v &&
            std::find(ps.child_ports.begin(), ps.child_ports.end(),
                      port_at_p) != ps.child_ports.end()) {
          listed = true;
          break;
        }
        ++port_at_p;
      }
      if (!listed) return describe(v) + " is not listed by its parent";
    } else {
      if (s.level != 0) return describe(v) + " is a root with level != 0";
      if (s.fragment_id != g.IdOf(v)) {
        return describe(v) + " is a root whose fragment ID is not its own";
      }
    }
    for (std::uint32_t cp : s.child_ports) {
      if (cp >= ports.size()) {
        return describe(v) + " has an out-of-range child port";
      }
      const NodeIndex c = ports[cp].neighbor;
      const LdtState& cs = states[c];
      if (cs.fragment_id != s.fragment_id ||
          cs.parent_port == kNoPort ||
          g.PortsOf(c)[cs.parent_port].neighbor != v) {
        return describe(v) + " lists a child that does not point back";
      }
    }
  }

  // Per-fragment reachability: from each root, tree edges reach exactly
  // the nodes carrying its fragment ID.
  std::vector<bool> reached(n, false);
  for (NodeIndex r = 0; r < n; ++r) {
    if (!states[r].IsRoot()) continue;
    std::queue<NodeIndex> q;
    q.push(r);
    reached[r] = true;
    while (!q.empty()) {
      NodeIndex v = q.front();
      q.pop();
      for (std::uint32_t cp : states[v].child_ports) {
        NodeIndex c = g.PortsOf(v)[cp].neighbor;
        if (reached[c]) return describe(c) + " reached twice (cycle?)";
        reached[c] = true;
        q.push(c);
      }
    }
  }
  for (NodeIndex v = 0; v < n; ++v) {
    if (!reached[v]) return describe(v) + " is not reachable from any root";
  }
  return "";
}

}  // namespace smst
