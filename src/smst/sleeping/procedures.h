// The paper's toolbox (Appendix B): O(1)-awake, O(n)-round procedures on
// a Forest of Labeled Distance Trees. Every procedure occupies exactly
// one schedule block (2n+1 rounds); all fragments run the same procedure
// in the same block, so cross-fragment Side rounds line up globally.
//
// Awake costs (asserted by tests):
//   FragmentBroadcast  <= 2 wakes (1 for root / leaves)
//   UpcastMin          <= 2 wakes
//   UpcastSum          <= 2 wakes
//   TransmitAdjacent   == 1 wake
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "smst/runtime/node.h"
#include "smst/runtime/task.h"
#include "smst/sleeping/ldt.h"
#include "smst/sleeping/schedule.h"

namespace smst {

// Message tags used by the toolbox; algorithms use tags >= 100.
enum ProcedureTag : std::uint16_t {
  kTagBroadcast = 1,
  kTagUpcastMin = 2,
  kTagUpcastSum = 3,
  kTagSide = 4,
  kTagMergeSide = 5,
  kTagMergeUp = 6,
  kTagMergeDown = 7,
};

// Fragment-Broadcast(n): the root's message reaches every fragment node.
// The root passes its message in `root_msg` (ignored elsewhere); every
// node returns the broadcast message. Throws if a non-root node hears
// nothing from its parent (protocol violation).
// `span` selects the schedule span (0 = the default n); see schedule.h.
Task<Message> FragmentBroadcast(NodeContext& ctx, const LdtState& ldt,
                                Round block_start, Message root_msg,
                                std::size_t span = 0);

// A value offered to / aggregated by Upcast-Min. Ordered by (key, b, c);
// key == kPlusInfinity means "no value".
struct UpcastItem {
  std::uint64_t key = kPlusInfinity;
  std::uint64_t b = 0;
  std::uint64_t c = 0;

  bool Absent() const { return key == kPlusInfinity; }
  friend bool operator<(const UpcastItem& x, const UpcastItem& y) {
    if (x.key != y.key) return x.key < y.key;
    if (x.b != y.b) return x.b < y.b;
    return x.c < y.c;
  }
};

// Upcast-Min(n) (convergecast): the minimum of all offered values reaches
// the root. Every node returns the minimum over its own subtree (the
// root's return value is the fragment-wide minimum).
Task<UpcastItem> UpcastMin(NodeContext& ctx, const LdtState& ldt,
                           Round block_start, UpcastItem own,
                           std::size_t span = 0);

struct UpcastSumResult {
  std::uint64_t subtree_total = 0;  // own contribution + all descendants
  // (child port, that child's subtree total) in child_ports order; kept
  // so a later down-pass can split an allotment among subtrees. SmallVec:
  // LDT fan-out is small, so this stays inside the coroutine frame.
  SmallVec<std::pair<std::uint32_t, std::uint64_t>, 4> child_totals;
};

// Sum convergecast (used by Deterministic-MST's incoming-MOE counting).
// The root's subtree_total is the fragment-wide sum.
Task<UpcastSumResult> UpcastSum(NodeContext& ctx, const LdtState& ldt,
                                Round block_start, std::uint64_t own,
                                std::size_t span = 0);

// Transmit-Adjacent(n): every node is awake in the block's Side round and
// exchanges messages with simultaneously-awake neighbors. The caller
// chooses the per-port messages (or none); returns what arrived.
Task<InboxBatch> TransmitAdjacent(NodeContext& ctx,
                                  const LdtState& ldt,
                                  Round block_start,
                                  SendBatch sends,
                                  std::size_t span = 0);

// Convenience: the same message on every port.
SendBatch ToAllPorts(const NodeContext& ctx, Message msg);

// The message that arrived on `port`, if any.
std::optional<Message> MessageFromPort(std::span<const InMessage> inbox,
                                       std::uint32_t port);

}  // namespace smst
