#include "smst/sleeping/flat_procedures.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "smst/faults/run_outcome.h"

namespace smst {

namespace {

constexpr auto FromPort = MessageFromPort;

// Same classification and text as merging.cpp's ProtocolError.
[[noreturn]] void MergeProtocolError(const FlatNodeRef& node,
                                     const std::string& what) {
  throw ProtocolStallError("MergingFragments: node " +
                           std::to_string(node.Id()) + ": " + what);
}

}  // namespace

// Each flat class below is a hand-lowered state machine for a coroutine
// procedure; the twin directives let smst_lint cross-check that the two
// sides still use the same message tags and error strings.
// smst-lint-twin(FlatBroadcast=FragmentBroadcast)
// smst-lint-twin(FlatUpcastMin=UpcastMin)
// smst-lint-twin(FlatUpcastSum=UpcastSum)
// smst-lint-twin(FlatMerge=MergingFragments)
// smst-lint-twin(FlatColoring=FastAwakeColoring)

// --- Fragment-Broadcast -----------------------------------------------

Round FlatBroadcast::Begin(const FlatNodeRef& node, const LdtState& l,
                           Round block_start, Message root_msg,
                           SendBatch& sends, std::size_t span) {
  ldt = &l;
  sched = TransmissionSchedule(block_start, l.level,
                               span == 0 ? node.NumNodesKnown() : span);
  msg = root_msg;
  if (!l.IsRoot()) {
    pc = 1;
    return sched.down_receive;
  }
  return SendDown(sends);
}

Round FlatBroadcast::Resume(const FlatNodeRef& node, const InboxBatch& inbox,
                            SendBatch& sends) {
  if (pc == 1) {
    const auto from_parent = FromPort(inbox, ldt->parent_port);
    if (!from_parent.has_value()) {
      // Drop-free by construction in the sleeping model, so a missing
      // parent message is a fault effect: classified, not a crash.
      throw ProtocolStallError(
          "FragmentBroadcast: node " + std::to_string(node.Id()) +
          " heard nothing from its parent in its Down-Receive round");
    }
    msg = *from_parent;
    return SendDown(sends);
  }
  return kFlatDone;  // pc == 2: the Down-Send awake completed
}

Round FlatBroadcast::SendDown(SendBatch& sends) {
  if (!ldt->child_ports.empty()) {
    for (std::uint32_t p : ldt->child_ports) sends.push_back({p, msg});
    pc = 2;
    return sched.down_send;
  }
  return kFlatDone;
}

// --- Upcast-Min --------------------------------------------------------

Round FlatUpcastMin::Begin(const FlatNodeRef& node, const LdtState& l,
                           Round block_start, UpcastItem own, SendBatch& sends,
                           std::size_t span) {
  ldt = &l;
  sched = TransmissionSchedule(block_start, l.level,
                               span == 0 ? node.NumNodesKnown() : span);
  best = own;
  if (!l.child_ports.empty()) {
    pc = 1;
    return sched.up_receive;
  }
  return SendUp(sends);
}

Round FlatUpcastMin::Resume(const FlatNodeRef& /*node*/,
                            const InboxBatch& inbox, SendBatch& sends) {
  if (pc == 1) {
    for (std::uint32_t p : ldt->child_ports) {
      if (auto m = FromPort(inbox, p); m.has_value()) {
        UpcastItem item{m->a, m->b, m->c};
        if (item < best) best = item;
      }
    }
    return SendUp(sends);
  }
  return kFlatDone;  // pc == 2: the Up-Send awake completed
}

Round FlatUpcastMin::SendUp(SendBatch& sends) {
  if (!ldt->IsRoot() && !best.Absent()) {
    sends.push_back({ldt->parent_port,
                     Message{kTagUpcastMin, best.key, best.b, best.c}});
    pc = 2;
    return sched.up_send;
  }
  return kFlatDone;
}

// --- Upcast-Sum --------------------------------------------------------

Round FlatUpcastSum::Begin(const FlatNodeRef& node, const LdtState& l,
                           Round block_start, std::uint64_t own,
                           SendBatch& sends, std::size_t span) {
  ldt = &l;
  sched = TransmissionSchedule(block_start, l.level,
                               span == 0 ? node.NumNodesKnown() : span);
  result = UpcastSumResult{};
  result.subtree_total = own;
  if (!l.child_ports.empty()) {
    pc = 1;
    return sched.up_receive;
  }
  return SendUp(sends);
}

Round FlatUpcastSum::Resume(const FlatNodeRef& /*node*/,
                            const InboxBatch& inbox, SendBatch& sends) {
  if (pc == 1) {
    for (std::uint32_t p : ldt->child_ports) {
      std::uint64_t child_total = 0;
      if (auto m = FromPort(inbox, p); m.has_value()) child_total = m->a;
      result.child_totals.emplace_back(p, child_total);
      result.subtree_total += child_total;
    }
    return SendUp(sends);
  }
  return kFlatDone;  // pc == 2: the Up-Send awake completed
}

Round FlatUpcastSum::SendUp(SendBatch& sends) {
  if (!ldt->IsRoot() && result.subtree_total > 0) {
    sends.push_back({ldt->parent_port,
                     Message{kTagUpcastSum, result.subtree_total, 0, 0}});
    pc = 2;
    return sched.up_send;
  }
  return kFlatDone;
}

// --- Merging-Fragments --------------------------------------------------

Round FlatMerge::Begin(const FlatNodeRef& node, LdtState& l,
                       BlockCursor& cursor, MergeRole r, std::vector<bool>& m,
                       SendBatch& sends) {
  ldt = &l;
  mark = &m;
  role = r;
  span = cursor.Span();
  const Round block_a = cursor.TakeBlock();
  const Round block_b = cursor.TakeBlock();
  const Round block_c = cursor.TakeBlock();
  // The node's level is unchanged until Finalize, so all three sub-block
  // schedules can be fixed here (the coroutine computes each lazily but
  // from the same unchanged level).
  sched_a = TransmissionSchedule(block_a, l.level, span);
  sched_b = TransmissionSchedule(block_b, l.level, span);
  sched_c = TransmissionSchedule(block_c, l.level, span);

  have_new = false;
  new_frag = 0;
  new_level = 0;
  new_parent_port = l.parent_port;
  new_children = l.child_ports;

  // Sub-block A: Side exchange of (fragment ID, level, ATTACH).
  for (std::uint32_t p = 0; p < node.Degree(); ++p) {
    const std::uint64_t attach =
        (role.is_tails && p == role.attach_port) ? 1 : 0;
    sends.push_back(
        {p, Message{kTagMergeSide, l.fragment_id, l.level, attach}});
  }
  pc = 1;
  return sched_a.side;
}

Round FlatMerge::Resume(const FlatNodeRef& node, const InboxBatch& inbox,
                        SendBatch& sends) {
  switch (pc) {
    case 1: {  // sub-block A inbox
      for (const InMessage& m : inbox) {
        if (m.msg.type != kTagMergeSide) continue;
        if (m.msg.c == 1) {
          // A neighbor attaches to us over this edge: we gain a child.
          if (role.is_tails) {
            MergeProtocolError(node, "a tails node received an ATTACH flag");
          }
          new_children.push_back(m.port);
          (*mark)[m.port] = true;
        }
      }
      if (role.is_tails && role.attach_port != kNoPort) {
        const auto from_target = FromPort(inbox, role.attach_port);
        if (!from_target.has_value()) {
          MergeProtocolError(node, "merge target silent in the Side round");
        }
        new_frag = from_target->a;
        new_level = from_target->b + 1;
        have_new = true;
        // Re-root: the merge target becomes the parent; all old tree
        // neighbors (old children and old parent) become children.
        new_parent_port = role.attach_port;
        if (ldt->parent_port != kNoPort) {
          new_children.push_back(ldt->parent_port);
        }
        (*mark)[role.attach_port] = true;
      }
      if (!role.is_tails) return Finalize();  // heads: B and C are sleep
      return EnterB(node, sends);
    }
    case 2: {  // sub-block B Up-Receive inbox (tails only)
      std::uint32_t sender = kNoPort;
      for (std::uint32_t p : ldt->child_ports) {
        if (auto m = FromPort(inbox, p); m.has_value()) {
          if (sender != kNoPort) {
            MergeProtocolError(node, "two children on the re-root path");
          }
          sender = p;
          new_level = m->a + 1;
          new_frag = m->b;
          have_new = true;
        }
      }
      if (sender != kNoPort) {
        // New parent = that child; old parent (if any) becomes a child.
        new_parent_port = sender;
        new_children = ldt->child_ports;
        new_children.erase(
            std::remove(new_children.begin(), new_children.end(), sender),
            new_children.end());
        if (ldt->parent_port != kNoPort) {
          new_children.push_back(ldt->parent_port);
        }
      }
      return MaybeUpSend(node, sends);
    }
    case 3:  // sub-block B Up-Send completed
      return EnterC(node, sends);
    case 4: {  // sub-block C Down-Receive inbox
      const auto m = FromPort(inbox, ldt->parent_port);
      if (!m.has_value()) {
        MergeProtocolError(node, "no NEW values arrived in the down pass");
      }
      new_level = m->a + 1;
      new_frag = m->b;
      have_new = true;
      return SendDownC(sends);
    }
    default:  // pc == 5: sub-block C Down-Send completed
      return Finalize();
  }
}

Round FlatMerge::EnterB(const FlatNodeRef& node, SendBatch& sends) {
  if (!ldt->child_ports.empty()) {
    pc = 2;
    return sched_b.up_receive;
  }
  return MaybeUpSend(node, sends);
}

Round FlatMerge::MaybeUpSend(const FlatNodeRef& node, SendBatch& sends) {
  if (have_new && !ldt->IsRoot()) {
    sends.push_back({ldt->parent_port,
                     Message{kTagMergeUp, new_level, new_frag, 0}});
    pc = 3;
    return sched_b.up_send;
  }
  // Skip straight to sub-block C without pushing anything.
  return EnterC(node, sends);
}

Round FlatMerge::EnterC(const FlatNodeRef& node, SendBatch& sends) {
  if (!have_new) {
    if (ldt->IsRoot()) {
      // The old root is always on the u_T -> root path.
      MergeProtocolError(node, "tails root has no NEW values after the up pass");
    }
    pc = 4;
    return sched_c.down_receive;
  }
  return SendDownC(sends);
}

Round FlatMerge::SendDownC(SendBatch& sends) {
  // Send down to every old child except the one the NEW values came from
  // (a path node's sender child already has them and sleeps through
  // Down-Receive; skipping it keeps the protocol drop-free).
  const std::size_t before = sends.size();
  for (std::uint32_t p : ldt->child_ports) {
    if (p == new_parent_port) continue;
    sends.push_back({p, Message{kTagMergeDown, new_level, new_frag, 0}});
  }
  if (sends.size() > before) {
    pc = 5;
    return sched_c.down_send;
  }
  return Finalize();
}

Round FlatMerge::Finalize() {
  if (role.is_tails) {
    ldt->fragment_id = new_frag;
    ldt->level = new_level;
    ldt->parent_port = new_parent_port;
  }
  // Heads fragments keep ID / level / parent, and gain attach children.
  ldt->child_ports = std::move(new_children);
  return kFlatDone;
}

// --- Fast-Awake-Coloring -------------------------------------------------

Round FlatColoring::Begin(const FlatNodeRef& node, const LdtState& l,
                          BlockCursor& cursor,
                          const std::vector<NbrEntry>& nbr_in,
                          const std::vector<HPort>& h_ports_in,
                          SendBatch& sends) {
  ldt = &l;
  nbr = &nbr_in;
  h_ports = &h_ports_in;
  n = node.NumNodesKnown();
  const NodeId max_id = node.MaxIdKnown();
  block_len = ScheduleBlockLength(n);
  base = cursor.NextRound();
  // Claim all N stages' blocks up front; the stages this node sleeps
  // through cost nothing but this local arithmetic.
  cursor.SkipBlocks(kColoringBlocksPerStage * max_id);

  // The (at most 5) stages this node participates in, in stage order.
  stages.assign(1, l.fragment_id);
  for (const NbrEntry& e : nbr_in) stages.push_back(e.frag_id);
  std::sort(stages.begin(), stages.end());
  stages.erase(std::unique(stages.begin(), stages.end()), stages.end());

  result = ColoringResult{};
  stage_i = 0;
  return NextStage(node, sends);
}

Round FlatColoring::Resume(const FlatNodeRef& node, const InboxBatch& inbox,
                           SendBatch& sends) {
  switch (pc) {
    case 1: {  // own turn: Upcast-Min (choice)
      const Round r = umin.Resume(node, inbox, sends);
      if (r != kFlatDone) return r;
      return OwnAfterUmin(node, sends);
    }
    case 2: {  // own turn: Fragment-Broadcast (choice)
      const Round r = bcast.Resume(node, inbox, sends);
      if (r != kFlatDone) return r;
      return OwnAfterBcast(node, sends);
    }
    case 3:  // own turn: announce Transmit-Adjacent completed
      return EndStage(node, sends);
    case 4:  // listener: Transmit-Adjacent inbox
      for (const InMessage& m : inbox) {
        if (m.msg.type == kTagColorAnnounce && m.msg.b == stage) {
          heard = UpcastItem{m.msg.a, stage, 0};
        }
      }
      return ListenerAfterTransmit(node, sends);
    case 5: {  // listener: Upcast-Min (received color)
      const Round r = umin.Resume(node, inbox, sends);
      if (r != kFlatDone) return r;
      return ListenerAfterUmin(node, sends);
    }
    default: {  // pc == 6: listener: Fragment-Broadcast (received)
      const Round r = bcast.Resume(node, inbox, sends);
      if (r != kFlatDone) return r;
      return ListenerAfterBcast(node, sends);
    }
  }
}

Round FlatColoring::NextStage(const FlatNodeRef& node, SendBatch& sends) {
  if (stage_i == stages.size()) return kFlatDone;
  stage = stages[stage_i];
  const Round s0 = base + (stage - 1) * kColoringBlocksPerStage * block_len;
  b1 = s0;                  // Upcast-Min (choice)
  b2 = s0 + block_len;      // Fragment-Broadcast (choice)
  b3 = s0 + 2 * block_len;  // Transmit-Adjacent (announce)
  b4 = s0 + 3 * block_len;  // Upcast-Min (received color)
  b5 = s0 + 4 * block_len;  // Fragment-Broadcast (received)

  if (stage == ldt->fragment_id) {
    // Our turn. All earlier-colored neighbors are in neighbor_colors,
    // so every node of the fragment computes the same greedy choice.
    const FragColor choice = ColoringGreedyChoice(result.neighbor_colors);
    const UpcastItem offer{static_cast<std::uint64_t>(choice), 0, 0};
    const Round r = umin.Begin(node, *ldt, b1, offer, sends);
    if (r != kFlatDone) {
      pc = 1;
      return r;
    }
    return OwnAfterUmin(node, sends);
  }
  // A neighbor's turn: learn its color fragment-wide.
  heard = UpcastItem{};  // absent unless we border fragment `stage`
  bool borders_stage = false;
  for (const HPort& hp : *h_ports) borders_stage |= hp.neighbor_frag == stage;
  if (borders_stage) {
    pc = 4;
    return TransmissionSchedule(b3, ldt->level, n).side;
  }
  return ListenerAfterTransmit(node, sends);
}

Round FlatColoring::OwnAfterUmin(const FlatNodeRef& node, SendBatch& sends) {
  const Round r = bcast.Begin(node, *ldt, b2,
                              Message{kTagColorChoice, umin.best.key, 0, 0},
                              sends);
  if (r != kFlatDone) {
    pc = 2;
    return r;
  }
  return OwnAfterBcast(node, sends);
}

Round FlatColoring::OwnAfterBcast(const FlatNodeRef& node, SendBatch& sends) {
  result.my_color = ColoringCheckedColor(bcast.msg.a);
  // Announce to neighbor fragments over the valid-MOE edges.
  if (!h_ports->empty()) {
    for (const HPort& hp : *h_ports) {
      sends.push_back(
          {hp.port,
           Message{kTagColorAnnounce,
                   static_cast<std::uint64_t>(result.my_color),
                   ldt->fragment_id, 0}});
    }
    pc = 3;
    return TransmissionSchedule(b3, ldt->level, n).side;
  }
  // b4 / b5 belong to the listening side; we sleep.
  return EndStage(node, sends);
}

Round FlatColoring::ListenerAfterTransmit(const FlatNodeRef& node,
                                          SendBatch& sends) {
  const Round r = umin.Begin(node, *ldt, b4, heard, sends);
  if (r != kFlatDone) {
    pc = 5;
    return r;
  }
  return ListenerAfterUmin(node, sends);
}

Round FlatColoring::ListenerAfterUmin(const FlatNodeRef& node,
                                      SendBatch& sends) {
  const Round r = bcast.Begin(node, *ldt, b5,
                              Message{kTagColorNbr, umin.best.key, stage, 0},
                              sends);
  if (r != kFlatDone) {
    pc = 6;
    return r;
  }
  return ListenerAfterBcast(node, sends);
}

Round FlatColoring::ListenerAfterBcast(const FlatNodeRef& node,
                                       SendBatch& sends) {
  result.neighbor_colors[stage] = ColoringCheckedColor(bcast.msg.a);
  return EndStage(node, sends);
}

Round FlatColoring::EndStage(const FlatNodeRef& node, SendBatch& sends) {
  ++stage_i;
  return NextStage(node, sends);
}

}  // namespace smst
