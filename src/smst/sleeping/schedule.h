// Transmission-Schedule(root, u, n) — the paper's wake-up timetable.
//
// A schedule block spans 2n+1 consecutive rounds. Within a block starting
// at absolute round S, a node at distance `level` from its fragment root
// has five named rounds (paper §2.1 / Appendix B, relative rounds i, i+1,
// n+1, 2n-i+1, 2n-i+2):
//
//   Down-Receive       S + level - 1   (non-root only)
//   Down-Send          S + level
//   Side-Send-Receive  S + n
//   Up-Receive         S + 2n - level
//   Up-Send            S + 2n - level + 1   (non-root only)
//
// The root (level 0) has Down-Send = S, Side = S+n, Up-Receive = S+2n.
// Waking in a subset of these rounds pipelines information root-to-leaves
// (Down), leaves-to-root (Up), or across fragment boundaries (Side) in
// O(1) awake rounds and O(n) running time per block.
#pragma once

#include <cstdint>

#include "smst/runtime/scheduler.h"

namespace smst {

// Rounds per schedule block of span m. The span is the strict upper
// bound on node levels the block must accommodate: the paper always uses
// m = n (levels are < n), but any m > current max level works — the
// adaptive-blocks optimization shrinks early phases this way.
constexpr Round ScheduleBlockLength(std::size_t span) {
  return 2 * static_cast<Round>(span) + 1;
}

struct ScheduleRounds {
  Round down_receive = 0;  // meaningful iff !is_root
  Round down_send = 0;
  Round side = 0;
  Round up_receive = 0;
  Round up_send = 0;       // meaningful iff !is_root
  bool is_root = false;
};

// Absolute named rounds for a node at `level` within the block starting
// at `block_start`, with schedule span `span`. Precondition: level < span.
ScheduleRounds TransmissionSchedule(Round block_start, std::uint64_t level,
                                    std::size_t span);

// Hands out consecutive block start rounds. Every node of a run advances
// its own cursor through an identical sequence of procedure calls (and
// identical SetSpan updates), so all nodes agree on every block boundary
// without communication.
class BlockCursor {
 public:
  BlockCursor(Round first_round, std::size_t span)
      : next_(first_round), span_(span) {}

  // Returns the start round of the next block and advances past it.
  Round TakeBlock() {
    Round s = next_;
    next_ += ScheduleBlockLength(span_);
    return s;
  }

  // Advances past `count` blocks without using them (e.g. sleeping
  // through other fragments' coloring stages).
  void SkipBlocks(std::uint64_t count) {
    next_ += count * ScheduleBlockLength(span_);
  }

  // Changes the span of subsequent blocks (adaptive-blocks optimization;
  // must be applied identically by every node).
  void SetSpan(std::size_t span) { span_ = span; }
  std::size_t Span() const { return span_; }

  Round NextRound() const { return next_; }

 private:
  Round next_;
  std::size_t span_;
};

}  // namespace smst
