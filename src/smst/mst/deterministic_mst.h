// Algorithm Deterministic-MST (paper §2.3).
//
// GHS with deterministic symmetry breaking. Per phase:
//
//   step (i) — find & sparsify MOEs (9 blocks):
//     B1 Transmit-Adjacent : learn neighbors' fragment IDs
//     B2 Upcast-Min        : fragment MOE to the root
//     B3 Fragment-Broadcast: root announces (MOE weight, DONE?)
//     B4 Transmit-Adjacent : announce the MOE weight, so every node
//                            discovers the INCOMING-MOEs on its ports
//     B5 Upcast-Sum        : incoming-MOE counts per subtree to the root
//     B6 token down-pass   : the root allots at most 3 tokens; nodes
//                            select incoming MOEs and split the remainder
//                            among their subtrees (Transmission-Schedule)
//     B7 Transmit-Adjacent : each incoming-MOE edge's verdict crosses to
//                            the source fragment
//     B8 Upcast-Min        : the outgoing endpoint's verdict to the root
//                            (the paper's +-infinity sentinel trick)
//     B9 Fragment-Broadcast: fragment-wide "is our MOE valid?"
//   NBR-INFO gather (8 blocks): 4 rounds of Upcast-Min+Fragment-Broadcast
//     make the <=4 valid-MOE tuples (weight, neighbor fragment, direction)
//     known fragment-wide; the supergraph H has max degree 4.
//   step (ii) — color & merge:
//     Fast-Awake-Coloring (5N blocks) 5-colors H greedily in ID order.
//     Merge wave 1 (3 blocks): Blue fragments with H-neighbors merge into
//       an arbitrary (we pick: lowest-ID) neighbor.
//     Merge wave 2 (3 blocks): Blue singleton fragments (isolated in H)
//       merge along their own MOE into the (possibly freshly merged)
//       fragment at its far end.
//
// Each phase costs O(1) awake rounds and O(nN) rounds; O(log n) phases
// suffice (Lemmas 4-6), giving O(log n) awake and O(nN log n) round
// complexity (Theorem 2). With ColoringVariant::kLogStar the coloring is
// replaced by the Corollary-1 log*-round variant: O(log n log* n) awake,
// O(n log n log* n) rounds.
#pragma once

#include "smst/graph/graph.h"
#include "smst/mst/options.h"
#include "smst/mst/result.h"

namespace smst {

// Schedule blocks per phase, excluding the coloring (which contributes
// kColoringBlocksPerStage * N more with the FastAwake variant).
inline constexpr std::uint64_t kDeterministicFixedBlocksPerPhase = 23;

// The paper's phase budget ceil(log_{240000/239999} n) + 240000 — a
// worst-case artifact (~240000 + 240000*ln n). Exposed for documentation
// and the bench that explains why we run kEarlyDetect instead.
std::uint64_t DeterministicPaperPhaseCount(std::size_t n);

MstRunResult RunDeterministicMst(const WeightedGraph& g,
                                 const MstOptions& options = {});

}  // namespace smst
