#include "smst/mst/api.h"

#include <stdexcept>

#include "smst/mst/deterministic_mst.h"
#include "smst/mst/ghs_congest.h"
#include "smst/mst/randomized_mst.h"
#include "smst/mst/spanning_tree_bm.h"

namespace smst {

const char* MstAlgorithmName(MstAlgorithm a) {
  switch (a) {
    case MstAlgorithm::kRandomized: return "Randomized-MST";
    case MstAlgorithm::kDeterministic: return "Deterministic-MST";
    case MstAlgorithm::kDeterministicLogStar: return "Deterministic-MST(log*)";
    case MstAlgorithm::kGhsBaseline: return "GHS-baseline";
    case MstAlgorithm::kBmSpanningTree: return "BM-SpanningTree";
  }
  return "?";
}

MstRunResult ComputeMst(const WeightedGraph& g, MstAlgorithm algorithm,
                        const MstOptions& options) {
  switch (algorithm) {
    case MstAlgorithm::kRandomized:
      return RunRandomizedMst(g, options);
    case MstAlgorithm::kDeterministic:
      return RunDeterministicMst(g, options);
    case MstAlgorithm::kDeterministicLogStar: {
      MstOptions opt = options;
      opt.coloring = ColoringVariant::kLogStar;
      return RunDeterministicMst(g, opt);
    }
    case MstAlgorithm::kGhsBaseline:
      return RunGhsBaseline(g, options);
    case MstAlgorithm::kBmSpanningTree:
      return RunBmSpanningTree(g, options);
  }
  throw std::invalid_argument("unknown algorithm");
}

bool SupportsFlatEngine(MstAlgorithm algorithm, const MstOptions& options) {
  switch (algorithm) {
    case MstAlgorithm::kRandomized:
      return true;
    case MstAlgorithm::kDeterministic:
      return options.coloring == ColoringVariant::kFastAwake;
    default:
      return false;
  }
}

}  // namespace smst
