// Internals shared by the GHS-style sleeping algorithms (Randomized-MST
// and the Barenboim-Maimon-style spanning tree, which is the same engine
// with a different edge-selection rule). Not part of the public API.
#pragma once

#include <cstdint>
#include <vector>

#include "smst/graph/graph.h"
#include "smst/mst/options.h"
#include "smst/mst/result.h"
#include "smst/runtime/node.h"
#include "smst/sleeping/ldt.h"
#include "smst/sleeping/procedures.h"

namespace smst::detail {

enum class SelectionRule {
  kMinWeight,      // choose the minimum-weight outgoing edge -> MST
  kMinNeighborId,  // choose any outgoing edge (min neighbor fragment ID,
                   // weight tie-break) -> arbitrary spanning tree
};

// Runs the coin-flip GHS engine with the given selection rule.
MstRunResult RunGhsStyle(const WeightedGraph& g, const MstOptions& options,
                         SelectionRule rule);

// This node's best outgoing-edge candidate under `rule` (absent if every
// neighbor is in the same fragment). The item's `b` field always carries
// the edge weight, which identifies the edge globally. Templated over the
// node view so the coroutine (NodeContext) and flat (FlatNodeRef) engines
// share one definition.
template <typename Ctx>
UpcastItem LocalMoe(const Ctx& ctx, const LdtState& ldt,
                    const std::vector<NodeId>& nbr_frag, SelectionRule rule) {
  UpcastItem best;  // absent
  for (std::uint32_t p = 0; p < ctx.Degree(); ++p) {
    if (nbr_frag[p] == ldt.fragment_id) continue;
    const Weight w = ctx.WeightAtPort(p);
    UpcastItem candidate;
    switch (rule) {
      case SelectionRule::kMinWeight:
        candidate = UpcastItem{w, w, 0};
        break;
      case SelectionRule::kMinNeighborId:
        candidate = UpcastItem{nbr_frag[p], w, 0};
        break;
    }
    if (candidate < best) best = candidate;
  }
  return best;
}

// The port of this node's outgoing edge with the given weight, or kNoPort
// if the fragment's chosen edge is not incident here.
template <typename Ctx>
std::uint32_t PortOfOutgoingWeight(const Ctx& ctx, const LdtState& ldt,
                                   const std::vector<NodeId>& nbr_frag,
                                   Weight weight) {
  for (std::uint32_t p = 0; p < ctx.Degree(); ++p) {
    if (nbr_frag[p] != ldt.fragment_id && ctx.WeightAtPort(p) == weight) {
      return p;
    }
  }
  return kNoPort;
}

}  // namespace smst::detail
