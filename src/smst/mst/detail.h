// Internals shared by the GHS-style sleeping algorithms (Randomized-MST
// and the Barenboim-Maimon-style spanning tree, which is the same engine
// with a different edge-selection rule). Not part of the public API.
#pragma once

#include <cstdint>
#include <vector>

#include "smst/graph/graph.h"
#include "smst/mst/options.h"
#include "smst/mst/result.h"
#include "smst/runtime/node.h"
#include "smst/sleeping/ldt.h"
#include "smst/sleeping/procedures.h"

namespace smst::detail {

enum class SelectionRule {
  kMinWeight,      // choose the minimum-weight outgoing edge -> MST
  kMinNeighborId,  // choose any outgoing edge (min neighbor fragment ID,
                   // weight tie-break) -> arbitrary spanning tree
};

// Runs the coin-flip GHS engine with the given selection rule.
MstRunResult RunGhsStyle(const WeightedGraph& g, const MstOptions& options,
                         SelectionRule rule);

// This node's best outgoing-edge candidate under `rule` (absent if every
// neighbor is in the same fragment). The item's `b` field always carries
// the edge weight, which identifies the edge globally.
UpcastItem LocalMoe(const NodeContext& ctx, const LdtState& ldt,
                    const std::vector<NodeId>& nbr_frag, SelectionRule rule);

// The port of this node's outgoing edge with the given weight, or kNoPort
// if the fragment's chosen edge is not incident here.
std::uint32_t PortOfOutgoingWeight(const NodeContext& ctx, const LdtState& ldt,
                                   const std::vector<NodeId>& nbr_frag,
                                   Weight weight);

}  // namespace smst::detail
