// Algorithm Randomized-MST (paper §2.2).
//
// GHS adapted to the sleeping model. Per phase (9 schedule blocks):
//
//   step (i) — find & filter MOEs:
//     B1 Transmit-Adjacent : learn neighbors' fragment IDs
//     B2 Upcast-Min        : fragment MOE reaches the root
//     B3 Fragment-Broadcast: root announces (MOE, coin flip, DONE?)
//     B4 Transmit-Adjacent : exchange (MOE, coin) with adjacent fragments
//     B5 Upcast-Min        : the MOE endpoint's validity verdict goes up
//     B6 Fragment-Broadcast: everyone learns "do we merge?"
//   step (ii) — merge (B7-B9): Merging-Fragments with tails = fragments
//     that flipped tails and whose MOE leads to a heads fragment.
//
// Each phase costs O(1) awake rounds and 9(2n+1) rounds; with high
// probability O(log n) phases suffice (Lemma 1), giving O(log n) awake
// and O(n log n) round complexity (Theorem 1).
#pragma once

#include "smst/graph/graph.h"
#include "smst/mst/options.h"
#include "smst/mst/result.h"

namespace smst {

// Schedule blocks per phase (used by round-complexity assertions).
inline constexpr std::uint64_t kRandomizedBlocksPerPhase = 9;

// Paper phase budget: 4*ceil(log_{4/3} n) + 1.
std::uint64_t RandomizedPaperPhaseCount(std::size_t n);

MstRunResult RunRandomizedMst(const WeightedGraph& g,
                              const MstOptions& options = {});

}  // namespace smst
