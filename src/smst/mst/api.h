// Public one-call facade.
//
//   Xoshiro256 rng(7);
//   auto g = MakeErdosRenyi(200, 0.05, rng);
//   auto result = ComputeMst(g, MstAlgorithm::kRandomized, {.seed = 7});
//   // result.tree_edges is the MST; result.stats.max_awake is the awake
//   // complexity the paper bounds by O(log n).
#pragma once

#include "smst/graph/graph.h"
#include "smst/mst/options.h"
#include "smst/mst/result.h"

namespace smst {

MstRunResult ComputeMst(const WeightedGraph& g, MstAlgorithm algorithm,
                        const MstOptions& options = {});

// True when the algorithm has a flat-engine lowering for these options
// (MstOptions::engine == EngineMode::kFlat, DESIGN.md §13): the two
// paper algorithms, the deterministic one only with the fast-awake
// coloring. Running an unsupported combination throws (log*-coloring)
// or would silently fall back to coroutines (GHS, BM spanning tree) —
// callers offering an engine switch should check here first and be loud.
bool SupportsFlatEngine(MstAlgorithm algorithm, const MstOptions& options);

}  // namespace smst
