// Arbitrary spanning tree in O(log n) awake rounds, in the spirit of
// Barenboim-Maimon [2] (the paper's related work): the same coin-filtered
// fragment-merging engine as Randomized-MST, but each fragment grabs an
// arbitrary outgoing edge (minimum neighbor fragment ID) instead of the
// minimum-weight one. The output is a spanning tree but in general NOT
// the MST — the contrast the paper draws (its LDT machinery is exactly
// what upgrades "some spanning tree" to "the MST" at no awake cost).
#pragma once

#include "smst/graph/graph.h"
#include "smst/mst/options.h"
#include "smst/mst/result.h"

namespace smst {

MstRunResult RunBmSpanningTree(const WeightedGraph& g,
                               const MstOptions& options = {});

// Leader election in O(log n) awake rounds (also from [2]): run the
// spanning-tree construction; when the forest collapses to one tree,
// every node's fragment ID *is* the surviving root's ID — a leader every
// node already knows. Returns the leader's node ID and the run's stats.
struct LeaderElectionResult {
  NodeId leader_id = 0;
  RunStats stats;
  std::uint64_t phases = 0;
};
LeaderElectionResult RunLeaderElection(const WeightedGraph& g,
                                       const MstOptions& options = {});

}  // namespace smst
