#include "smst/mst/spanning_tree_bm.h"

#include <stdexcept>

#include "smst/mst/detail.h"

namespace smst {

MstRunResult RunBmSpanningTree(const WeightedGraph& g,
                               const MstOptions& options) {
  return detail::RunGhsStyle(g, options, detail::SelectionRule::kMinNeighborId);
}

LeaderElectionResult RunLeaderElection(const WeightedGraph& g,
                                       const MstOptions& options) {
  const MstRunResult run = RunBmSpanningTree(g, options);
  LeaderElectionResult result;
  // After convergence every node stores the same fragment ID: the root's
  // own node ID. No extra rounds are needed for anyone to learn it.
  result.leader_id = run.final_ldt.empty() ? 0 : run.final_ldt[0].fragment_id;
  for (const LdtState& s : run.final_ldt) {
    // A faulted run reports its failure through run.outcome instead of
    // converging; only a clean run is held to the convergence contract.
    if (run.outcome.Ok() && s.fragment_id != result.leader_id) {
      throw std::runtime_error("leader election did not converge");
    }
  }
  result.stats = run.stats;
  result.phases = run.phases;
  return result;
}

}  // namespace smst
