// Duff's-device helpers for writing FlatProgram drivers.
//
// A flat MST driver keeps one per-node state struct with an integer `pc`
// and runs the whole algorithm script inside `switch (st.pc)`. The two
// macros below turn a coroutine suspension into a (return, case-label)
// pair so the script reads almost exactly like its coroutine twin:
//
//   switch (st.pc) {
//     default: throw std::logic_error("flat program: corrupt pc");
//     case 0:
//       ...
//       // co_await ctx.Awake(r, sends)  ==>  (sends pushed just before)
//       SMST_FLAT_AWAKE(st, r);
//       ... use `inbox` ...
//       // co_await UpcastMin(...)  ==>
//       SMST_FLAT_SUB(st, umin, st.umin.Begin(node, ..., sends));
//       ... use st.umin.best ...
//       return kFlatDone;
//   }
//
// Rules the call site must follow (C++ jump-into-scope rules):
//  - each macro invocation sits on its own source line (`__LINE__` is the
//    case key), inside the driver's `switch (st.pc)`;
//  - `node` (FlatNodeRef), `inbox` (const InboxBatch&) and `sends`
//    (SendBatch&) are in scope at every invocation — SMST_FLAT_SUB
//    resumes the sub-machine with exactly those names;
//  - no local variable with an initializer may be in scope at a macro
//    invocation (jumping to its case label would skip the
//    initialization); persistent values live in the per-node struct,
//    scratch values in `{ ... }` blocks that contain no macro.
#pragma once

#include "smst/runtime/flat/program.h"

// One awake round: push the round's sends first, then suspend until
// `round_expr` comes due; the next Step re-enters just after.
#define SMST_FLAT_AWAKE(st, round_expr) \
  (st).pc = __LINE__;                   \
  return (round_expr);                  \
  case __LINE__:;

// Run a flat sub-procedure (sleeping/flat_procedures.h) to completion,
// forwarding each of its awake rounds as our own. `begin_call` is
// evaluated once; resumes go through `(st).sub.Resume(node, inbox,
// sends)`. `r_` is deliberately uninitialized: the case label jumps over
// its declaration, which is only legal for vacuous initialization.
#define SMST_FLAT_SUB(st, sub, begin_call)   \
  {                                          \
    ::smst::Round r_;                        \
    r_ = (begin_call);                       \
    while (r_ != ::smst::kFlatDone) {        \
      (st).pc = __LINE__;                    \
      return r_;                             \
      case __LINE__:                         \
        r_ = (st).sub.Resume(node, inbox, sends); \
    }                                        \
  }
