#include "smst/mst/deterministic_mst.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <string>

#include "smst/mst/detail.h"
#include "smst/mst/flat_driver.h"
#include "smst/runtime/simulator.h"
#include "smst/sleeping/coloring.h"
#include "smst/sleeping/flat_procedures.h"
#include "smst/sleeping/merging.h"
#include "smst/sleeping/procedures.h"

namespace smst {

namespace {

constexpr std::uint16_t kTagFragId = 110;
constexpr std::uint16_t kTagPhaseCtl = 111;     // a=MOE weight, b=done
constexpr std::uint16_t kTagMoeAnnounce = 112;  // a=our fragment's MOE weight
constexpr std::uint16_t kTagAllot = 113;        // a=token count for subtree
constexpr std::uint16_t kTagVerdict = 114;      // a=weight, b=selected?
constexpr std::uint16_t kTagValidity = 115;     // a=0 valid/1 invalid, b=target
constexpr std::uint16_t kTagNbrInfo = 116;      // a=weight, b=frag, c=outgoing

struct Shared {
  const WeightedGraph* g = nullptr;
  TerminationMode termination = TerminationMode::kEarlyDetect;
  ColoringVariant coloring = ColoringVariant::kFastAwake;
  std::uint64_t phase_cap = 0;
  bool record_snapshots = false;
  std::vector<std::vector<bool>> port_marks;
  std::vector<LdtState> final_ldt;
  std::vector<std::uint64_t> phases_done;
  std::vector<std::vector<LdtState>> snapshots;
  // Lazy growth races across shard workers; the telemetry path locks
  // (same rationale as the randomized engine's Shared — cell contents
  // are order-independent, everything else is disjoint-slot writes).
  std::mutex snapshot_mutex;

  void Snapshot(std::uint64_t phase, NodeIndex v, const LdtState& ldt) {
    if (!record_snapshots) return;
    std::lock_guard<std::mutex> lock(snapshot_mutex);
    if (snapshots.size() < phase) {
      snapshots.resize(phase, std::vector<LdtState>(g->NumNodes()));
    }
    snapshots[phase - 1][v] = ldt;
  }
};

// A valid-MOE edge incident to this node.
struct LocalEntry {
  Weight weight = 0;
  NodeId frag = 0;
  bool outgoing = false;
  std::uint32_t port = kNoPort;
};

Task<void> NodeMain(NodeContext& ctx, Shared* sh) {
  const std::size_t n = ctx.NumNodesKnown();
  const NodeId N = ctx.MaxIdKnown();
  LdtState ldt = LdtState::Singleton(ctx.Id());
  std::vector<bool>& mark = sh->port_marks[ctx.Index()];
  std::vector<NodeId> nbr_frag(ctx.Degree(), 0);
  BlockCursor cursor(1, n);

  const bool log_star = sh->coloring == ColoringVariant::kLogStar;
  const std::uint64_t coloring_blocks =
      log_star ? LogStarColoringBlocks(n, N) : kColoringBlocksPerStage * N;
  const std::uint64_t blocks_per_phase =
      kDeterministicFixedBlocksPerPhase + coloring_blocks;

  bool finished = false;
  std::uint64_t last_active_phase = 0;
  for (std::uint64_t phase = 1; phase <= sh->phase_cap; ++phase) {
    if (finished) {
      cursor.SkipBlocks(blocks_per_phase);
      continue;
    }
    last_active_phase = phase;
    if (ldt.IsRoot()) ctx.Probe(kProbeFragmentsAtPhase, phase);

    // ---- step (i): find the fragment MOE -----------------------------
    // B1: learn adjacent fragment IDs.
    {
      auto inbox = co_await TransmitAdjacent(
          ctx, ldt, cursor.TakeBlock(),
          ToAllPorts(ctx, Message{kTagFragId, ldt.fragment_id, 0, 0}));
      for (const InMessage& m : inbox) {
        if (m.msg.type == kTagFragId) nbr_frag[m.port] = m.msg.a;
      }
    }

    // B2 + B3: MOE to the root and (MOE weight, DONE) back down.
    const UpcastItem local_moe =
        detail::LocalMoe(ctx, ldt, nbr_frag, detail::SelectionRule::kMinWeight);
    const UpcastItem frag_moe =
        co_await UpcastMin(ctx, ldt, cursor.TakeBlock(), local_moe);
    Message ctl_msg{};
    if (ldt.IsRoot()) {
      ctl_msg = Message{kTagPhaseCtl, frag_moe.b,
                        frag_moe.Absent() ? std::uint64_t{1} : 0, 0};
    }
    const Message ctl =
        co_await FragmentBroadcast(ctx, ldt, cursor.TakeBlock(), ctl_msg);
    const Weight moe_weight = ctl.a;
    if (ctl.b != 0) {  // DONE: this fragment spans the graph
      finished = true;
      sh->Snapshot(phase, ctx.Index(), ldt);
      if (sh->termination == TerminationMode::kEarlyDetect) break;
      cursor.SkipBlocks(blocks_per_phase - 3);
      continue;
    }

    // ---- step (i) continued: sparsify incoming MOEs to at most 3 -----
    // B4: announce our MOE weight; detect INCOMING-MOEs on our ports (a
    // neighbor's announced weight equals the shared edge's weight).
    SmallVec<std::uint32_t, 8> incoming_ports;  // inline for typical degrees
    {
      auto inbox = co_await TransmitAdjacent(
          ctx, ldt, cursor.TakeBlock(),
          ToAllPorts(ctx, Message{kTagMoeAnnounce, moe_weight, 0, 0}));
      for (const InMessage& m : inbox) {
        if (m.msg.type == kTagMoeAnnounce &&
            nbr_frag[m.port] != ldt.fragment_id &&
            m.msg.a == ctx.WeightAtPort(m.port)) {
          incoming_ports.push_back(m.port);
        }
      }
      std::sort(incoming_ports.begin(), incoming_ports.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  return ctx.WeightAtPort(a) < ctx.WeightAtPort(b);
                });
    }

    // B5: incoming-MOE counts converge (per-subtree breakdown kept).
    const UpcastSumResult counts = co_await UpcastSum(
        ctx, ldt, cursor.TakeBlock(), incoming_ports.size());

    // B6: the root allots at most 3 tokens; each node selects its own
    // incoming edges (lightest first) and splits the rest by subtree.
    SmallVec<std::uint32_t, 8> valid_incoming;  // at most 3 selected
    {
      const Round block = cursor.TakeBlock();
      const auto sched = TransmissionSchedule(block, ldt.level, n);
      std::uint64_t allot = 0;
      if (ldt.IsRoot()) {
        allot = std::min<std::uint64_t>(3, counts.subtree_total);
      } else if (counts.subtree_total > 0) {
        auto inbox = co_await ctx.Awake(sched.down_receive);
        if (auto m = MessageFromPort(inbox, ldt.parent_port);
            m.has_value() && m->type == kTagAllot) {
          allot = m->a;
        }
      }
      for (std::uint32_t p : incoming_ports) {
        if (allot == 0) break;
        valid_incoming.push_back(p);
        --allot;
      }
      SendBatch sends;
      for (const auto& [child_port, child_total] : counts.child_totals) {
        const std::uint64_t give = std::min(allot, child_total);
        allot -= give;
        if (give > 0) {
          sends.push_back({child_port, Message{kTagAllot, give, 0, 0}});
        }
      }
      if (!sends.empty()) {
        co_await ctx.Awake(sched.down_send, std::move(sends));
      }
    }

    // B7: verdicts cross each incoming-MOE edge to its source fragment.
    const std::uint32_t moe_port =
        detail::PortOfOutgoingWeight(ctx, ldt, nbr_frag, moe_weight);
    bool out_valid = false;
    {
      SendBatch sends;
      for (std::uint32_t p : incoming_ports) {
        const bool selected =
            std::find(valid_incoming.begin(), valid_incoming.end(), p) !=
            valid_incoming.end();
        sends.push_back({p, Message{kTagVerdict, ctx.WeightAtPort(p),
                                    selected ? std::uint64_t{1} : 0, 0}});
      }
      auto inbox =
          co_await TransmitAdjacent(ctx, ldt, cursor.TakeBlock(), std::move(sends));
      if (moe_port != kNoPort) {
        if (auto m = MessageFromPort(inbox, moe_port);
            m.has_value() && m->type == kTagVerdict && m->a == moe_weight) {
          out_valid = m->b != 0;
        }
      }
    }

    // B8 + B9: outgoing validity to the root and fragment-wide. (The
    // paper encodes this with +-infinity sentinel weights in Upcast-Min;
    // an explicit flag is the same information.)
    UpcastItem verdict;
    if (moe_port != kNoPort) {
      verdict = UpcastItem{out_valid ? 0u : 1u, nbr_frag[moe_port], 0};
    }
    const UpcastItem up =
        co_await UpcastMin(ctx, ldt, cursor.TakeBlock(), verdict);
    const Message validity = co_await FragmentBroadcast(
        ctx, ldt, cursor.TakeBlock(), Message{kTagValidity, up.key, up.b, 0});
    const bool frag_out_valid = validity.a == 0;

    // ---- NBR-INFO gather: <=4 tuples fragment-wide (8 blocks) --------
    std::vector<LocalEntry> locals;
    for (std::uint32_t p : valid_incoming) {
      locals.push_back({ctx.WeightAtPort(p), nbr_frag[p], false, p});
    }
    if (moe_port != kNoPort && frag_out_valid) {
      locals.push_back({moe_weight, nbr_frag[moe_port], true, moe_port});
    }
    std::vector<NbrEntry> nbr_info;
    // Lambda and its captures are both locals of this coroutine frame and
    // the lambda never escapes it, so the references stay valid across the
    // co_awaits below. smst-lint-disable-next-line(coro-ref-capture)
    auto announced = [&](Weight w) {
      for (const NbrEntry& e : nbr_info) {
        if (e.weight == w) return true;
      }
      return false;
    };
    for (int k = 0; k < 4; ++k) {
      UpcastItem offer;
      for (const LocalEntry& e : locals) {
        if (announced(e.weight)) continue;
        UpcastItem candidate{e.weight, e.frag, e.outgoing ? 1u : 0u};
        if (candidate < offer) offer = candidate;
      }
      const UpcastItem got =
          co_await UpcastMin(ctx, ldt, cursor.TakeBlock(), offer);
      const Message msg = co_await FragmentBroadcast(
          ctx, ldt, cursor.TakeBlock(),
          Message{kTagNbrInfo, got.key, got.b, got.c});
      if (msg.a != kPlusInfinity && !announced(msg.a)) {
        nbr_info.push_back({msg.b, msg.a, msg.c != 0});
      }
    }

    // Our own boundary ports in H (deduplicated: a mutual MOE appears in
    // `locals` twice with the same port).
    std::vector<HPort> h_ports;
    for (const LocalEntry& e : locals) {
      bool dup = false;
      for (const HPort& hp : h_ports) dup |= hp.port == e.port;
      if (!dup) h_ports.push_back({e.port, e.frag});
    }

    // ---- step (ii): color H, then merge ------------------------------
    // The "mover" role (the paper's Blue): merges into a neighbor in
    // wave 1, or along its own MOE in wave 2 if isolated in H. With
    // Fast-Awake-Coloring movers are the Blue fragments; with the
    // Corollary-1 log* coloring they are the local color minima (same
    // independence and >= 1/341-per-component guarantees; see coloring.h).
    bool is_blue;
    if (!log_star) {
      const ColoringResult col =
          co_await FastAwakeColoring(ctx, ldt, cursor, nbr_info, h_ports);
      is_blue = col.my_color == FragColor::kBlue;
    } else if (nbr_info.empty()) {
      cursor.SkipBlocks(coloring_blocks);
      is_blue = true;  // isolated: trivially a local minimum
    } else {
      const LogStarResult col =
          co_await LogStarColoring(ctx, ldt, cursor, nbr_info, h_ports);
      is_blue = col.IsMover();
    }
    if (ldt.IsRoot() && is_blue) ctx.Probe(kProbeBlueAtPhase, phase);

    // Merge wave 1: Blue fragments with H-neighbors pick the lowest-ID
    // neighbor (any choice works; all its neighbors are non-Blue).
    {
      MergeRole role;
      if (is_blue && !nbr_info.empty()) {
        role.is_tails = true;
        // By value, not by pointer: NbrEntry is three words, and a copy
        // cannot go stale across the co_await below.
        NbrEntry chosen = nbr_info.front();
        for (const NbrEntry& e : nbr_info) {
          if (e.frag_id < chosen.frag_id ||
              (e.frag_id == chosen.frag_id && e.weight < chosen.weight)) {
            chosen = e;
          }
        }
        for (const LocalEntry& e : locals) {
          if (e.weight == chosen.weight) role.attach_port = e.port;
        }
        if (role.is_tails && ldt.IsRoot()) {
          ctx.Probe(kProbeMergesAtPhase, phase);
        }
      }
      co_await MergingFragments(ctx, ldt, cursor, role, mark);
    }

    // Merge wave 2: Blue singletons (isolated in H) follow their own MOE
    // into whatever fragment now sits at its far end.
    {
      MergeRole role;
      if (is_blue && nbr_info.empty()) {
        role.is_tails = true;
        if (moe_port != kNoPort) role.attach_port = moe_port;
        if (ldt.IsRoot()) ctx.Probe(kProbeMergesAtPhase, phase);
      }
      co_await MergingFragments(ctx, ldt, cursor, role, mark);
    }
    sh->Snapshot(phase, ctx.Index(), ldt);
  }

  if (!finished && sh->termination == TerminationMode::kEarlyDetect) {
    throw NonTerminationError("Deterministic-MST: phase cap " +
                             std::to_string(sh->phase_cap) +
                             " exceeded without termination");
  }
  ctx.ReportTermination(cursor.NextRound() - 1);
  sh->final_ldt[ctx.Index()] = ldt;
  sh->phases_done[ctx.Index()] = last_active_phase;
}

// ---------------------------------------------------------------------
// Flat-engine lowering of NodeMain (DESIGN §13). Fast-awake coloring
// only; RunDeterministicMst rejects the log* variant under the flat
// engine. Identical tags, schedule arithmetic, probes, and error strings
// — the differential tests pin bit-identical results.

bool NbrAnnounced(const std::vector<NbrEntry>& nbr_info, Weight w) {
  for (const NbrEntry& e : nbr_info) {
    if (e.weight == w) return true;
  }
  return false;
}

UpcastItem NbrOffer(const std::vector<LocalEntry>& locals,
                    const std::vector<NbrEntry>& nbr_info) {
  UpcastItem offer;
  for (const LocalEntry& e : locals) {
    if (NbrAnnounced(nbr_info, e.weight)) continue;
    UpcastItem candidate{e.weight, e.frag, e.outgoing ? 1u : 0u};
    if (candidate < offer) offer = candidate;
  }
  return offer;
}

struct FlatDetNode {
  int pc = 0;
  LdtState ldt;
  BlockCursor cursor{1, 1};
  std::vector<NodeId> nbr_frag;
  std::uint64_t phase = 0;
  bool finished = false;
  std::uint64_t last_active_phase = 0;
  Message ctl{};
  Weight moe_weight = 0;
  SmallVec<std::uint32_t, 8> incoming_ports;
  UpcastSumResult counts;
  ScheduleRounds b6_sched;
  std::uint64_t allot = 0;
  SmallVec<std::uint32_t, 8> valid_incoming;
  std::uint32_t moe_port = kNoPort;
  UpcastItem verdict;
  std::vector<LocalEntry> locals;
  std::vector<NbrEntry> nbr_info;
  std::vector<HPort> h_ports;
  int k = 0;
  bool is_blue = false;
  MergeRole role;
  FlatUpcastMin umin;
  FlatBroadcast bcast;
  FlatUpcastSum usum;
  FlatMerge merge;
  FlatColoring coloring;
};

class FlatDetProgram final : public FlatProgram {
 public:
  FlatDetProgram(const WeightedGraph& g, Shared* sh)
      : g_(&g), sh_(sh), nodes_(g.NumNodes()) {
    for (NodeIndex v = 0; v < g.NumNodes(); ++v) {
      FlatDetNode& st = nodes_[v];
      st.ldt = LdtState::Singleton(g.IdOf(v));
      st.cursor = BlockCursor(1, g.NumNodes());
      st.nbr_frag.assign(g.DegreeOf(v), 0);
    }
  }

  Round Start(NodeIndex v, FlatEnv& env, SendBatch& sends) override {
    const InboxBatch empty;
    return Advance(v, env, empty, sends);
  }

  Round Step(NodeIndex v, Round /*now*/, FlatEnv& env, const InboxBatch& inbox,
             SendBatch& sends) override {
    return Advance(v, env, inbox, sends);
  }

 private:
  Round Advance(NodeIndex v, FlatEnv& env, const InboxBatch& inbox,
                SendBatch& sends);

  const WeightedGraph* g_;
  Shared* sh_;
  std::vector<FlatDetNode> nodes_;
};

Round FlatDetProgram::Advance(NodeIndex v, FlatEnv& env,
                              const InboxBatch& inbox, SendBatch& sends) {
  FlatDetNode& st = nodes_[v];
  const FlatNodeRef node{g_, v};
  const std::size_t n = node.NumNodesKnown();
  const NodeId N = node.MaxIdKnown();
  std::vector<bool>& mark = sh_->port_marks[v];
  Metrics& metrics = *env.metrics;
  const std::uint64_t blocks_per_phase =
      kDeterministicFixedBlocksPerPhase + kColoringBlocksPerStage * N;

  switch (st.pc) {
    default:
      throw std::logic_error("flat program: corrupt pc");
    case 0:
      for (st.phase = 1; st.phase <= sh_->phase_cap; ++st.phase) {
        if (st.finished) {
          st.cursor.SkipBlocks(blocks_per_phase);
          continue;
        }
        st.last_active_phase = st.phase;
        if (st.ldt.IsRoot()) metrics.Probe(kProbeFragmentsAtPhase, st.phase);

        // ---- step (i): find the fragment MOE -------------------------
        // B1: learn adjacent fragment IDs.
        for (std::uint32_t p = 0; p < node.Degree(); ++p) {
          sends.push_back({p, Message{kTagFragId, st.ldt.fragment_id, 0, 0}});
        }
        SMST_FLAT_AWAKE(st, TransmissionSchedule(st.cursor.TakeBlock(), st.ldt.level, n).side);
        for (const InMessage& m : inbox) {
          if (m.msg.type == kTagFragId) st.nbr_frag[m.port] = m.msg.a;
        }

        // B2 + B3: MOE to the root and (MOE weight, DONE) back down.
        SMST_FLAT_SUB(st, umin, st.umin.Begin(node, st.ldt, st.cursor.TakeBlock(), detail::LocalMoe(node, st.ldt, st.nbr_frag, detail::SelectionRule::kMinWeight), sends));
        st.ctl = Message{};
        if (st.ldt.IsRoot()) {
          st.ctl = Message{kTagPhaseCtl, st.umin.best.b,
                           st.umin.best.Absent() ? std::uint64_t{1} : 0, 0};
        }
        SMST_FLAT_SUB(st, bcast, st.bcast.Begin(node, st.ldt, st.cursor.TakeBlock(), st.ctl, sends));
        st.moe_weight = st.bcast.msg.a;
        if (st.bcast.msg.b != 0) {  // DONE: this fragment spans the graph
          st.finished = true;
          sh_->Snapshot(st.phase, v, st.ldt);
          if (sh_->termination == TerminationMode::kEarlyDetect) break;
          st.cursor.SkipBlocks(blocks_per_phase - 3);
          continue;
        }

        // ---- step (i) continued: sparsify incoming MOEs to at most 3 -
        // B4: announce our MOE weight; detect INCOMING-MOEs.
        st.incoming_ports.clear();
        for (std::uint32_t p = 0; p < node.Degree(); ++p) {
          sends.push_back({p, Message{kTagMoeAnnounce, st.moe_weight, 0, 0}});
        }
        SMST_FLAT_AWAKE(st, TransmissionSchedule(st.cursor.TakeBlock(), st.ldt.level, n).side);
        for (const InMessage& m : inbox) {
          if (m.msg.type == kTagMoeAnnounce &&
              st.nbr_frag[m.port] != st.ldt.fragment_id &&
              m.msg.a == node.WeightAtPort(m.port)) {
            st.incoming_ports.push_back(m.port);
          }
        }
        std::sort(st.incoming_ports.begin(), st.incoming_ports.end(),
                  [&](std::uint32_t a, std::uint32_t b) {
                    return node.WeightAtPort(a) < node.WeightAtPort(b);
                  });

        // B5: incoming-MOE counts converge (per-subtree breakdown kept).
        SMST_FLAT_SUB(st, usum, st.usum.Begin(node, st.ldt, st.cursor.TakeBlock(), st.incoming_ports.size(), sends));
        st.counts = st.usum.result;

        // B6: the root allots at most 3 tokens; each node selects its
        // own incoming edges (lightest first), splits the rest by
        // subtree.
        st.b6_sched = TransmissionSchedule(st.cursor.TakeBlock(), st.ldt.level, n);
        st.allot = 0;
        if (st.ldt.IsRoot()) {
          st.allot = std::min<std::uint64_t>(3, st.counts.subtree_total);
        } else if (st.counts.subtree_total > 0) {
          SMST_FLAT_AWAKE(st, st.b6_sched.down_receive);
          if (auto m = MessageFromPort(inbox, st.ldt.parent_port);
              m.has_value() && m->type == kTagAllot) {
            st.allot = m->a;
          }
        }
        st.valid_incoming.clear();
        for (std::uint32_t p : st.incoming_ports) {
          if (st.allot == 0) break;
          st.valid_incoming.push_back(p);
          --st.allot;
        }
        for (const auto& [child_port, child_total] : st.counts.child_totals) {
          const std::uint64_t give = std::min(st.allot, child_total);
          st.allot -= give;
          if (give > 0) {
            sends.push_back({child_port, Message{kTagAllot, give, 0, 0}});
          }
        }
        if (!sends.empty()) {
          SMST_FLAT_AWAKE(st, st.b6_sched.down_send);
        }

        // B7: verdicts cross each incoming-MOE edge to its source.
        st.moe_port = detail::PortOfOutgoingWeight(node, st.ldt, st.nbr_frag,
                                                   st.moe_weight);
        for (std::uint32_t p : st.incoming_ports) {
          const bool selected =
              std::find(st.valid_incoming.begin(), st.valid_incoming.end(),
                        p) != st.valid_incoming.end();
          sends.push_back({p, Message{kTagVerdict, node.WeightAtPort(p),
                                      selected ? std::uint64_t{1} : 0, 0}});
        }
        SMST_FLAT_AWAKE(st, TransmissionSchedule(st.cursor.TakeBlock(), st.ldt.level, n).side);
        st.verdict = UpcastItem{};
        if (st.moe_port != kNoPort) {
          bool out_valid = false;
          if (auto m = MessageFromPort(inbox, st.moe_port);
              m.has_value() && m->type == kTagVerdict &&
              m->a == st.moe_weight) {
            out_valid = m->b != 0;
          }
          st.verdict =
              UpcastItem{out_valid ? 0u : 1u, st.nbr_frag[st.moe_port], 0};
        }

        // B8 + B9: outgoing validity to the root and fragment-wide.
        SMST_FLAT_SUB(st, umin, st.umin.Begin(node, st.ldt, st.cursor.TakeBlock(), st.verdict, sends));
        SMST_FLAT_SUB(st, bcast, st.bcast.Begin(node, st.ldt, st.cursor.TakeBlock(), Message{kTagValidity, st.umin.best.key, st.umin.best.b, 0}, sends));

        // ---- NBR-INFO gather: <=4 tuples fragment-wide (8 blocks) ----
        st.locals.clear();
        for (std::uint32_t p : st.valid_incoming) {
          st.locals.push_back({node.WeightAtPort(p), st.nbr_frag[p], false, p});
        }
        if (st.moe_port != kNoPort && st.bcast.msg.a == 0) {
          st.locals.push_back(
              {st.moe_weight, st.nbr_frag[st.moe_port], true, st.moe_port});
        }
        st.nbr_info.clear();
        for (st.k = 0; st.k < 4; ++st.k) {
          SMST_FLAT_SUB(st, umin, st.umin.Begin(node, st.ldt, st.cursor.TakeBlock(), NbrOffer(st.locals, st.nbr_info), sends));
          SMST_FLAT_SUB(st, bcast, st.bcast.Begin(node, st.ldt, st.cursor.TakeBlock(), Message{kTagNbrInfo, st.umin.best.key, st.umin.best.b, st.umin.best.c}, sends));
          if (st.bcast.msg.a != kPlusInfinity &&
              !NbrAnnounced(st.nbr_info, st.bcast.msg.a)) {
            st.nbr_info.push_back(
                {st.bcast.msg.b, st.bcast.msg.a, st.bcast.msg.c != 0});
          }
        }

        // Our own boundary ports in H (deduplicated).
        st.h_ports.clear();
        for (const LocalEntry& e : st.locals) {
          bool dup = false;
          for (const HPort& hp : st.h_ports) dup |= hp.port == e.port;
          if (!dup) st.h_ports.push_back({e.port, e.frag});
        }

        // ---- step (ii): color H, then merge --------------------------
        SMST_FLAT_SUB(st, coloring, st.coloring.Begin(node, st.ldt, st.cursor, st.nbr_info, st.h_ports, sends));
        st.is_blue = st.coloring.result.my_color == FragColor::kBlue;
        if (st.ldt.IsRoot() && st.is_blue) {
          metrics.Probe(kProbeBlueAtPhase, st.phase);
        }

        // Merge wave 1: Blue fragments with H-neighbors pick the
        // lowest-ID neighbor.
        st.role = MergeRole{};
        if (st.is_blue && !st.nbr_info.empty()) {
          st.role.is_tails = true;
          NbrEntry chosen = st.nbr_info.front();
          for (const NbrEntry& e : st.nbr_info) {
            if (e.frag_id < chosen.frag_id ||
                (e.frag_id == chosen.frag_id && e.weight < chosen.weight)) {
              chosen = e;
            }
          }
          for (const LocalEntry& e : st.locals) {
            if (e.weight == chosen.weight) st.role.attach_port = e.port;
          }
          if (st.role.is_tails && st.ldt.IsRoot()) {
            metrics.Probe(kProbeMergesAtPhase, st.phase);
          }
        }
        SMST_FLAT_SUB(st, merge, st.merge.Begin(node, st.ldt, st.cursor, st.role, mark, sends));

        // Merge wave 2: Blue singletons follow their own MOE.
        st.role = MergeRole{};
        if (st.is_blue && st.nbr_info.empty()) {
          st.role.is_tails = true;
          if (st.moe_port != kNoPort) st.role.attach_port = st.moe_port;
          if (st.ldt.IsRoot()) metrics.Probe(kProbeMergesAtPhase, st.phase);
        }
        SMST_FLAT_SUB(st, merge, st.merge.Begin(node, st.ldt, st.cursor, st.role, mark, sends));
        sh_->Snapshot(st.phase, v, st.ldt);
      }

      if (!st.finished && sh_->termination == TerminationMode::kEarlyDetect) {
        throw NonTerminationError("Deterministic-MST: phase cap " +
                                  std::to_string(sh_->phase_cap) +
                                  " exceeded without termination");
      }
      metrics.ExtendRun(st.cursor.NextRound() - 1);
      sh_->final_ldt[v] = st.ldt;
      sh_->phases_done[v] = st.last_active_phase;
      return kFlatDone;
  }
  throw std::logic_error("flat program: unreachable");
}

}  // namespace

std::uint64_t DeterministicPaperPhaseCount(std::size_t n) {
  const double base = 240000.0 / 239999.0;
  const double phases = std::log(static_cast<double>(n)) / std::log(base);
  return static_cast<std::uint64_t>(std::ceil(phases)) + 240000;
}

MstRunResult RunDeterministicMst(const WeightedGraph& g,
                                 const MstOptions& options) {
  if (options.engine == EngineMode::kFlat &&
      options.coloring == ColoringVariant::kLogStar) {
    throw std::invalid_argument(
        "the flat engine supports only the fast-awake coloring "
        "(use --engine coroutine for logstar)");
  }
  Shared sh;
  sh.g = &g;
  sh.termination = options.termination;
  sh.coloring = options.coloring;
  sh.record_snapshots = options.record_forest_snapshots;
  // Each phase with >= 2 fragments retires at least one (every H
  // component loses its Blue fragments; every singleton merges), so n+1
  // phases always suffice; the paper's budget is the w.h.p.-style
  // worst-case constant-factor bound.
  sh.phase_cap = options.termination == TerminationMode::kPaperPhaseCount
                     ? DeterministicPaperPhaseCount(g.NumNodes())
                     : g.NumNodes() + 1;
  for (NodeIndex v = 0; v < g.NumNodes(); ++v) {
    sh.port_marks.emplace_back(g.DegreeOf(v), false);
  }
  sh.final_ldt.resize(g.NumNodes());
  sh.phases_done.resize(g.NumNodes(), 0);

  SimulatorOptions sim_options;
  sim_options.seed = options.seed;
  sim_options.max_rounds = options.max_rounds;
  sim_options.record_wake_times = options.record_wake_times;
  sim_options.fault_plan = options.fault_plan;
  sim_options.audit = options.audit;
  sim_options.shards = options.shards;
  sim_options.shard_policy = options.shard_policy;
  sim_options.engine = options.engine;
  const bool faulted =
      options.fault_plan != nullptr && !options.fault_plan->Empty();
  Simulator sim(g, sim_options);
  RunOutcome outcome;
  if (options.engine == EngineMode::kFlat) {
    FlatDetProgram program(g, &sh);
    outcome = DriveProgram(sim, program, faulted);
  } else {
    outcome = DriveProgram(
        sim, [&sh](NodeContext& ctx) { return NodeMain(ctx, &sh); }, faulted);
  }

  std::uint64_t phases = 0;
  for (auto p : sh.phases_done) phases = std::max(phases, p);
  auto result = AssembleResult(g, sh.port_marks, sim.GetMetrics(), phases,
                               std::move(sh.final_ldt));
  sh.snapshots.resize(std::min<std::size_t>(sh.snapshots.size(), phases));
  result.forest_per_phase = std::move(sh.snapshots);
  result.outcome = std::move(outcome);
  if (faulted) RefineOutcome(result, g.NumNodes());
  return result;
}

}  // namespace smst
