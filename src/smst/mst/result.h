// Result of a distributed MST run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "smst/faults/run_outcome.h"
#include "smst/graph/graph.h"
#include "smst/runtime/metrics.h"
#include "smst/runtime/simulator.h"
#include "smst/sleeping/ldt.h"

namespace smst {

struct MstRunResult {
  // The edge set both endpoints marked as MST edges, sorted. (For the
  // spanning-tree algorithm this is the chosen spanning tree.)
  std::vector<EdgeIndex> tree_edges;
  // Non-empty iff the two endpoints of some edge disagreed on membership
  // (always empty for correct runs; surfaced for tests).
  std::string consistency_error;

  RunStats stats;             // awake / round / message metrics
  std::uint64_t phases = 0;   // phases until termination (or the budget)

  // How the run ended. Fault-free runs keep the historical throwing
  // contract and always report kCompleted here; under a FaultPlan the
  // failure mode is classified instead of thrown (tree_edges and the
  // telemetry below are then best-effort).
  RunOutcome outcome;

  // Telemetry: fragments alive at the start of each phase (1-indexed by
  // phase; entry 0 unused), from root probes.
  std::vector<std::uint64_t> fragments_per_phase;
  // Deterministic algorithm only: Blue fragments per phase.
  std::vector<std::uint64_t> blue_per_phase;

  // Final per-node LDT snapshot (telemetry; lets tests check the forest
  // collapsed to a single tree spanning the graph).
  std::vector<LdtState> final_ldt;

  // Per-node awake round numbers; filled iff MstOptions::record_wake_times.
  std::vector<std::vector<std::uint64_t>> wake_times;

  // Per-node metrics (awake rounds, messages, bits) — the congestion
  // view the Theorem-4 experiments need.
  std::vector<NodeMetrics> node_metrics;

  // forest_per_phase[p][v] = node v's LDT state at the end of phase p+1;
  // filled iff MstOptions::record_forest_snapshots.
  std::vector<std::vector<LdtState>> forest_per_phase;
};

// Shared by the algorithm harnesses: turns per-node per-port MST marks
// into an edge list, filling `consistency_error` on endpoint mismatch.
MstRunResult AssembleResult(const WeightedGraph& g,
                            const std::vector<std::vector<bool>>& port_marks,
                            const Metrics& metrics, std::uint64_t phases,
                            std::vector<LdtState> final_ldt);

// Shared by the algorithm harnesses: runs `program` under the dual
// contract — the throwing Simulator::Run when `faulted` is false, the
// classifying RunToOutcome when true.
RunOutcome DriveProgram(Simulator& sim, const NodeProgram& program,
                        bool faulted);
// Flat-engine twin of the above (SimulatorOptions::engine == kFlat).
RunOutcome DriveProgram(Simulator& sim, FlatProgram& program, bool faulted);

// Refines a faulted run's kCompleted outcome against the assembled
// result: an endpoint inconsistency or a non-spanning edge set becomes
// kWrongResult. (Exact weight verification is left to callers with a
// reference MST, e.g. VerifyMst.)
void RefineOutcome(MstRunResult& result, std::size_t num_nodes);

}  // namespace smst
