#include "smst/mst/result.h"

#include <string>

#include "smst/faults/auditor.h"
#include "smst/mst/options.h"

namespace smst {

MstRunResult AssembleResult(const WeightedGraph& g,
                            const std::vector<std::vector<bool>>& port_marks,
                            const Metrics& metrics, std::uint64_t phases,
                            std::vector<LdtState> final_ldt) {
  MstRunResult r;
  r.stats = metrics.Summarize();
  r.phases = phases;
  r.final_ldt = std::move(final_ldt);

  // Per-edge marks from both endpoints' port marks.
  std::vector<std::uint8_t> endpoint_count(g.NumEdges(), 0);
  for (NodeIndex v = 0; v < g.NumNodes(); ++v) {
    const auto ports = g.PortsOf(v);
    for (std::uint32_t p = 0; p < ports.size(); ++p) {
      if (port_marks[v][p]) ++endpoint_count[ports[p].edge];
    }
  }
  for (EdgeIndex e = 0; e < g.NumEdges(); ++e) {
    if (endpoint_count[e] == 2) {
      r.tree_edges.push_back(e);
    } else if (endpoint_count[e] == 1 && r.consistency_error.empty()) {
      r.consistency_error =
          "edge " + std::to_string(e) +
          " marked by exactly one endpoint (protocol inconsistency)";
    }
  }

  r.node_metrics = metrics.PerNode();
  if (metrics.WakeTimesEnabled()) {
    r.wake_times.reserve(g.NumNodes());
    for (NodeIndex v = 0; v < g.NumNodes(); ++v) {
      r.wake_times.push_back(metrics.Node(v).wake_times);
    }
  }

  r.fragments_per_phase.assign(phases + 1, 0);
  r.blue_per_phase.assign(phases + 1, 0);
  for (std::uint64_t phase = 1; phase <= phases; ++phase) {
    r.fragments_per_phase[phase] = static_cast<std::uint64_t>(
        metrics.ProbeValue(kProbeFragmentsAtPhase, phase));
    r.blue_per_phase[phase] = static_cast<std::uint64_t>(
        metrics.ProbeValue(kProbeBlueAtPhase, phase));
  }
  return r;
}

RunOutcome DriveProgram(Simulator& sim, const NodeProgram& program,
                        bool faulted) {
  if (!faulted) {
    sim.Run(program);
    // Run() already threw if the audit was not clean; surface the
    // auditor's meters so callers can cross-check them like in faulted
    // runs (all-zero when no auditor ran). Audit() covers both engines
    // (serial auditor, or summed shard auditors).
    RunOutcome out;
    const Simulator::AuditSummary a = sim.Audit();
    if (a.audited) {
      out.audited_awake_node_rounds = a.awake_node_rounds;
      out.audited_model_drops = a.model_drops;
      out.audit_violations = a.violations;
    }
    return out;
  }
  return sim.RunToOutcome(program);
}

RunOutcome DriveProgram(Simulator& sim, FlatProgram& program, bool faulted) {
  if (!faulted) {
    sim.Run(program);
    RunOutcome out;
    const Simulator::AuditSummary a = sim.Audit();
    if (a.audited) {
      out.audited_awake_node_rounds = a.awake_node_rounds;
      out.audited_model_drops = a.model_drops;
      out.audit_violations = a.violations;
    }
    return out;
  }
  return sim.RunToOutcome(program);
}

void RefineOutcome(MstRunResult& result, std::size_t num_nodes) {
  if (!result.outcome.Ok()) return;
  if (!result.consistency_error.empty()) {
    result.outcome.status = RunStatus::kWrongResult;
    result.outcome.detail = result.consistency_error;
    return;
  }
  if (result.tree_edges.size() + 1 != num_nodes) {
    result.outcome.status = RunStatus::kWrongResult;
    result.outcome.detail =
        "tree has " + std::to_string(result.tree_edges.size()) +
        " edges, a spanning tree on " + std::to_string(num_nodes) +
        " nodes needs " + std::to_string(num_nodes - 1);
  }
}

}  // namespace smst
