#include "smst/mst/result.h"

#include <string>

#include "smst/mst/options.h"

namespace smst {

MstRunResult AssembleResult(const WeightedGraph& g,
                            const std::vector<std::vector<bool>>& port_marks,
                            const Metrics& metrics, std::uint64_t phases,
                            std::vector<LdtState> final_ldt) {
  MstRunResult r;
  r.stats = metrics.Summarize();
  r.phases = phases;
  r.final_ldt = std::move(final_ldt);

  // Per-edge marks from both endpoints' port marks.
  std::vector<std::uint8_t> endpoint_count(g.NumEdges(), 0);
  for (NodeIndex v = 0; v < g.NumNodes(); ++v) {
    const auto ports = g.PortsOf(v);
    for (std::uint32_t p = 0; p < ports.size(); ++p) {
      if (port_marks[v][p]) ++endpoint_count[ports[p].edge];
    }
  }
  for (EdgeIndex e = 0; e < g.NumEdges(); ++e) {
    if (endpoint_count[e] == 2) {
      r.tree_edges.push_back(e);
    } else if (endpoint_count[e] == 1 && r.consistency_error.empty()) {
      r.consistency_error =
          "edge " + std::to_string(e) +
          " marked by exactly one endpoint (protocol inconsistency)";
    }
  }

  r.node_metrics = metrics.PerNode();
  if (metrics.WakeTimesEnabled()) {
    r.wake_times.reserve(g.NumNodes());
    for (NodeIndex v = 0; v < g.NumNodes(); ++v) {
      r.wake_times.push_back(metrics.Node(v).wake_times);
    }
  }

  r.fragments_per_phase.assign(phases + 1, 0);
  r.blue_per_phase.assign(phases + 1, 0);
  for (std::uint64_t phase = 1; phase <= phases; ++phase) {
    r.fragments_per_phase[phase] = static_cast<std::uint64_t>(
        metrics.ProbeValue(kProbeFragmentsAtPhase, phase));
    r.blue_per_phase[phase] = static_cast<std::uint64_t>(
        metrics.ProbeValue(kProbeBlueAtPhase, phase));
  }
  return r;
}

}  // namespace smst
