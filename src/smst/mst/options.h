// Options shared by the distributed MST algorithms.
#pragma once

#include <cstdint>

#include "smst/runtime/scheduler.h"
#include "smst/runtime/simulator.h"

namespace smst {

enum class MstAlgorithm {
  kRandomized,            // §2.2: coin-flip valid-MOE filtering
  kDeterministic,         // §2.3: Fast-Awake-Coloring, O(nN log n) rounds
  kDeterministicLogStar,  // Corollary 1: log*-coloring variant
  kGhsBaseline,           // traditional model: awake every round
  kBmSpanningTree,        // related work [2]: arbitrary spanning tree
};

const char* MstAlgorithmName(MstAlgorithm a);

enum class TerminationMode {
  // A fragment whose Upcast-Min finds no outgoing edge spans the whole
  // graph; its root announces DONE in the next Fragment-Broadcast and
  // everyone stops. O(1) extra awake rounds; exact termination.
  kEarlyDetect,
  // The paper's fixed phase budget (4*ceil(log_{4/3} n) + 1 randomized).
  // Nodes run every phase; once a single fragment remains the remaining
  // phases are no-ops. Correct w.h.p. exactly as stated in the paper.
  kPaperPhaseCount,
};

enum class ColoringVariant {
  kFastAwake,  // paper §2.3: N stages, O(1) awake, O(nN) rounds/phase
  kLogStar,    // Corollary 1: O(log* n) awake, O(n log* n) rounds/phase
};

struct MstOptions {
  std::uint64_t seed = 1;
  TerminationMode termination = TerminationMode::kEarlyDetect;
  ColoringVariant coloring = ColoringVariant::kFastAwake;
  // Watchdog passed to the simulator.
  Round max_rounds = std::uint64_t{1} << 62;
  // Safety cap on phases in kEarlyDetect mode (generous multiple of the
  // w.h.p. bound; exceeded only on algorithmic bugs).
  std::uint64_t max_phase_factor = 64;
  // Record per-node awake round numbers into MstRunResult::wake_times
  // (the ring lower-bound experiment's information-propagation analysis).
  bool record_wake_times = false;
  // Snapshot every node's LDT state at the end of each phase into
  // MstRunResult::forest_per_phase (tests check the FLDT invariant holds
  // *between* phases, not just at the end). Out-of-band telemetry.
  bool record_forest_snapshots = false;
  // Adaptive schedule blocks (randomized engine only): instead of the
  // paper's fixed 2n+1-round blocks, phase p uses blocks of span
  // B_p + 1, where B_1 = 0 and B_{p+1} = min(3*B_p + 1, n-1) bounds every
  // fragment's depth (a merged fragment is at most 3x+1 deeper than its
  // parts: heads depth + 1 + re-rooted tails depth <= B + 1 + 2B). Same
  // protocol, same coin flips, same tree and awake complexity — only the
  // early phases' sleeping rounds shrink. See bench_adaptive_blocks.
  bool adaptive_blocks = false;
  // Borrowed fault plan (null or empty = fault-free). A non-empty plan
  // switches the harness to bounded-run mode: instead of throwing, the
  // run is classified into MstRunResult::outcome (see faults/run_outcome.h)
  // and the result is assembled best-effort.
  const FaultPlan* fault_plan = nullptr;
  // Runtime invariant auditor (see faults/auditor.h); kDefault follows
  // the build configuration (on under SMST_AUDIT / Debug).
  AuditMode audit = AuditMode::kDefault;
  // Sharded simulator backend: 0 = serial engine; K >= 1 runs the node
  // programs on K worker threads with bit-identical results (DESIGN §12).
  std::uint32_t shards = 0;
  ShardPolicy shard_policy = ShardPolicy::kContiguousBlocks;
  // Execution engine: the coroutine runtime (one frame per node) or the
  // flat batched state machines (DESIGN §13). Bit-identical results; the
  // flat engine only trades wall-clock time. The deterministic algorithm
  // supports flat only with the kFastAwake coloring.
  EngineMode engine = EngineMode::kCoroutine;
};

// Probe kinds recorded out-of-band for the benches.
enum ProbeKind : std::uint32_t {
  kProbeFragmentsAtPhase = 1,  // key: phase; delta: +1 per fragment root
  kProbeBlueAtPhase = 2,       // key: phase; +1 per Blue fragment root
  kProbeMergesAtPhase = 3,     // key: phase; +1 per merging fragment
};

}  // namespace smst
