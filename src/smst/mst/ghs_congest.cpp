#include "smst/mst/ghs_congest.h"

#include "smst/mst/randomized_mst.h"

namespace smst {

MstRunResult RunGhsBaseline(const WeightedGraph& g, const MstOptions& options) {
  MstRunResult r = RunRandomizedMst(g, options);
  // Traditional model: a node is awake from round 1 until it terminates,
  // so awake complexity equals round complexity by definition.
  r.stats.max_awake = r.stats.rounds;
  r.stats.avg_awake = static_cast<double>(r.stats.rounds);
  r.stats.awake_node_rounds = r.stats.rounds * g.NumNodes();
  return r;
}

}  // namespace smst
