// Traditional-model baseline: GHS with every node awake every round.
//
// In the standard CONGEST model a node participates (and therefore burns
// energy) in every round from start to termination, so its awake
// complexity *is* the round complexity. We execute the same GHS protocol
// and account awake time accordingly: the message behaviour of an
// always-awake node is identical (our protocol never sends to a round in
// which the receiver isn't listening), so no idle wake needs simulating.
// This is the comparison point the paper's introduction argues against:
// Theta(n log n) awake rounds instead of O(log n).
#pragma once

#include "smst/graph/graph.h"
#include "smst/mst/options.h"
#include "smst/mst/result.h"

namespace smst {

MstRunResult RunGhsBaseline(const WeightedGraph& g,
                            const MstOptions& options = {});

}  // namespace smst
