#include "smst/mst/randomized_mst.h"

#include <cmath>
#include <mutex>
#include <stdexcept>
#include <string>

#include "smst/mst/detail.h"
#include "smst/mst/flat_driver.h"
#include "smst/runtime/simulator.h"
#include "smst/sleeping/flat_procedures.h"
#include "smst/sleeping/merging.h"
#include "smst/sleeping/procedures.h"
#include "smst/util/prng.h"

namespace smst {

namespace {

constexpr std::uint16_t kTagFragId = 100;
constexpr std::uint16_t kTagPhaseCtl = 101;  // a=MOE weight, b=done, c=tails
constexpr std::uint16_t kTagMoeCoin = 102;   // a=MOE weight, b=tails
constexpr std::uint16_t kTagValidity = 103;

struct Shared {
  const WeightedGraph* g = nullptr;
  detail::SelectionRule rule = detail::SelectionRule::kMinWeight;
  TerminationMode termination = TerminationMode::kEarlyDetect;
  std::uint64_t phase_cap = 0;
  bool record_snapshots = false;
  bool adaptive_blocks = false;
  std::vector<std::vector<bool>> port_marks;
  std::vector<LdtState> final_ldt;
  std::vector<std::uint64_t> phases_done;
  std::vector<std::vector<LdtState>> snapshots;
  // Snapshots grow lazily as phases complete; under the sharded engine
  // nodes on different workers hit that growth concurrently, so the
  // telemetry path takes a lock. Every other Shared field is written at
  // disjoint (node-indexed) slots and needs none. The final contents are
  // order-independent: cell (phase-1, v) is written by exactly one node.
  std::mutex snapshot_mutex;

  void Snapshot(std::uint64_t phase, NodeIndex v, const LdtState& ldt) {
    if (!record_snapshots) return;
    std::lock_guard<std::mutex> lock(snapshot_mutex);
    if (snapshots.size() < phase) {
      snapshots.resize(phase, std::vector<LdtState>(g->NumNodes()));
    }
    snapshots[phase - 1][v] = ldt;
  }
};

Task<void> NodeMain(NodeContext& ctx, Shared* sh);

// ---------------------------------------------------------------------
// Flat-engine lowering of NodeMain (DESIGN §13): the same script with
// every co_await turned into a (return round, case label) pair via the
// flat_driver.h macros. Identical message tags, schedule arithmetic,
// PRNG splits, probes, and error strings — the differential tests pin
// bit-identical results against the coroutine form.

struct FlatGhsNode {
  int pc = 0;
  Xoshiro256 rng{0};
  LdtState ldt;
  BlockCursor cursor{1, 1};
  std::vector<NodeId> nbr_frag;
  std::vector<bool> nbr_tails;
  std::uint64_t phase = 0;
  std::size_t span = 0;
  bool finished = false;
  std::uint64_t last_active_phase = 0;
  std::uint64_t depth_bound = 0;
  Message ctl{};
  Weight moe_weight = 0;
  bool tails = false;
  std::uint32_t moe_port = kNoPort;
  UpcastItem verdict;
  MergeRole role;
  FlatUpcastMin umin;
  FlatBroadcast bcast;
  FlatMerge merge;
};

class FlatGhsProgram final : public FlatProgram {
 public:
  FlatGhsProgram(const WeightedGraph& g, Shared* sh, std::uint64_t seed)
      : g_(&g), sh_(sh), nodes_(g.NumNodes()) {
    // The same per-node PRNG split Simulator hands coroutine contexts,
    // so the roots' coin sequences match the coroutine run exactly.
    Xoshiro256 root(seed);
    for (NodeIndex v = 0; v < g.NumNodes(); ++v) {
      FlatGhsNode& st = nodes_[v];
      st.rng = root.Split(v);
      st.ldt = LdtState::Singleton(g.IdOf(v));
      st.cursor = BlockCursor(1, g.NumNodes());
      st.nbr_frag.assign(g.DegreeOf(v), 0);
      st.nbr_tails.assign(g.DegreeOf(v), false);
    }
  }

  Round Start(NodeIndex v, FlatEnv& env, SendBatch& sends) override {
    const InboxBatch empty;
    return Advance(v, env, empty, sends);
  }

  Round Step(NodeIndex v, Round /*now*/, FlatEnv& env, const InboxBatch& inbox,
             SendBatch& sends) override {
    return Advance(v, env, inbox, sends);
  }

 private:
  Round Advance(NodeIndex v, FlatEnv& env, const InboxBatch& inbox,
                SendBatch& sends);

  const WeightedGraph* g_;
  Shared* sh_;
  std::vector<FlatGhsNode> nodes_;
};

Round FlatGhsProgram::Advance(NodeIndex v, FlatEnv& env,
                              const InboxBatch& inbox, SendBatch& sends) {
  FlatGhsNode& st = nodes_[v];
  const FlatNodeRef node{g_, v};
  const std::size_t n = node.NumNodesKnown();
  std::vector<bool>& mark = sh_->port_marks[v];
  Metrics& metrics = *env.metrics;

  switch (st.pc) {
    default:
      throw std::logic_error("flat program: corrupt pc");
    case 0:
      for (st.phase = 1; st.phase <= sh_->phase_cap; ++st.phase) {
        st.span = sh_->adaptive_blocks
                      ? static_cast<std::size_t>(
                            std::min<std::uint64_t>(st.depth_bound + 1, n))
                      : n;
        st.cursor.SetSpan(st.span);
        st.depth_bound =
            std::min<std::uint64_t>(3 * st.depth_bound + 1, n - 1);
        if (st.finished) {  // paper mode: remaining phases are no-ops
          st.cursor.SkipBlocks(kRandomizedBlocksPerPhase);
          continue;
        }
        st.last_active_phase = st.phase;
        if (st.ldt.IsRoot()) metrics.Probe(kProbeFragmentsAtPhase, st.phase);

        // B1: learn adjacent fragment IDs.
        for (std::uint32_t p = 0; p < node.Degree(); ++p) {
          sends.push_back({p, Message{kTagFragId, st.ldt.fragment_id, 0, 0}});
        }
        SMST_FLAT_AWAKE(st, TransmissionSchedule(st.cursor.TakeBlock(), st.ldt.level, st.span).side);
        for (const InMessage& m : inbox) {
          if (m.msg.type == kTagFragId) st.nbr_frag[m.port] = m.msg.a;
        }

        // B2: fragment MOE converges at the root.
        SMST_FLAT_SUB(st, umin, st.umin.Begin(node, st.ldt, st.cursor.TakeBlock(), detail::LocalMoe(node, st.ldt, st.nbr_frag, sh_->rule), sends, st.span));

        // B3: root announces (MOE edge weight, DONE, coin).
        st.ctl = Message{};
        if (st.ldt.IsRoot()) {
          const bool done = st.umin.best.Absent();
          const bool tails = st.rng.NextCoin();
          st.ctl = Message{kTagPhaseCtl, st.umin.best.b,
                           done ? std::uint64_t{1} : 0,
                           tails ? std::uint64_t{1} : 0};
        }
        SMST_FLAT_SUB(st, bcast, st.bcast.Begin(node, st.ldt, st.cursor.TakeBlock(), st.ctl, sends, st.span));
        st.moe_weight = st.bcast.msg.a;
        st.tails = st.bcast.msg.c != 0;
        if (st.bcast.msg.b != 0) {  // done
          st.finished = true;
          sh_->Snapshot(st.phase, v, st.ldt);
          if (sh_->termination == TerminationMode::kEarlyDetect) break;
          st.cursor.SkipBlocks(kRandomizedBlocksPerPhase - 3);
          continue;
        }

        // B4: exchange (MOE weight, coin) with adjacent fragments.
        st.nbr_tails.assign(node.Degree(), false);
        for (std::uint32_t p = 0; p < node.Degree(); ++p) {
          sends.push_back({p, Message{kTagMoeCoin, st.moe_weight, st.tails ? 1u : 0u, 0}});
        }
        SMST_FLAT_AWAKE(st, TransmissionSchedule(st.cursor.TakeBlock(), st.ldt.level, st.span).side);
        for (const InMessage& m : inbox) {
          if (m.msg.type == kTagMoeCoin) st.nbr_tails[m.port] = m.msg.b != 0;
        }

        // Validity: decided by the (unique) MOE endpoint.
        st.moe_port =
            detail::PortOfOutgoingWeight(node, st.ldt, st.nbr_frag, st.moe_weight);
        st.verdict = UpcastItem{};
        if (st.moe_port != kNoPort) {
          const bool valid = st.tails && !st.nbr_tails[st.moe_port];
          st.verdict = UpcastItem{valid ? 0u : 1u, 0, 0};
        }

        // B5 + B6: verdict to root, then fragment-wide.
        SMST_FLAT_SUB(st, umin, st.umin.Begin(node, st.ldt, st.cursor.TakeBlock(), st.verdict, sends, st.span));
        SMST_FLAT_SUB(st, bcast, st.bcast.Begin(node, st.ldt, st.cursor.TakeBlock(), Message{kTagValidity, st.umin.best.key, 0, 0}, sends, st.span));

        // B7-B9: merge tails fragments into their heads fragments.
        st.role = MergeRole{};
        st.role.is_tails = st.tails && st.bcast.msg.a == 0;
        if (st.role.is_tails && st.moe_port != kNoPort) {
          st.role.attach_port = st.moe_port;
        }
        if (st.role.is_tails && st.ldt.IsRoot()) {
          metrics.Probe(kProbeMergesAtPhase, st.phase);
        }
        SMST_FLAT_SUB(st, merge, st.merge.Begin(node, st.ldt, st.cursor, st.role, mark, sends));
        sh_->Snapshot(st.phase, v, st.ldt);
      }

      if (!st.finished && sh_->termination == TerminationMode::kEarlyDetect) {
        throw NonTerminationError("Randomized-MST: phase cap " +
                                  std::to_string(sh_->phase_cap) +
                                  " exceeded without termination");
      }
      metrics.ExtendRun(st.cursor.NextRound() - 1);
      sh_->final_ldt[v] = st.ldt;
      sh_->phases_done[v] = st.last_active_phase;
      return kFlatDone;
  }
  throw std::logic_error("flat program: unreachable");
}

MstRunResult RunEngine(const WeightedGraph& g, const MstOptions& options,
                       detail::SelectionRule rule) {
  Shared sh;
  sh.g = &g;
  sh.rule = rule;
  sh.record_snapshots = options.record_forest_snapshots;
  sh.adaptive_blocks = options.adaptive_blocks;
  sh.termination = options.termination;
  sh.phase_cap =
      options.termination == TerminationMode::kPaperPhaseCount
          ? RandomizedPaperPhaseCount(g.NumNodes())
          : options.max_phase_factor *
                (static_cast<std::uint64_t>(
                     std::ceil(std::log2(static_cast<double>(g.NumNodes())))) +
                 2);
  for (NodeIndex v = 0; v < g.NumNodes(); ++v) {
    sh.port_marks.emplace_back(g.DegreeOf(v), false);
  }
  sh.final_ldt.resize(g.NumNodes());
  sh.phases_done.resize(g.NumNodes(), 0);

  SimulatorOptions sim_options;
  sim_options.seed = options.seed;
  sim_options.max_rounds = options.max_rounds;
  sim_options.record_wake_times = options.record_wake_times;
  sim_options.fault_plan = options.fault_plan;
  sim_options.audit = options.audit;
  sim_options.shards = options.shards;
  sim_options.shard_policy = options.shard_policy;
  sim_options.engine = options.engine;
  const bool faulted =
      options.fault_plan != nullptr && !options.fault_plan->Empty();
  Simulator sim(g, sim_options);
  RunOutcome outcome;
  if (options.engine == EngineMode::kFlat) {
    FlatGhsProgram program(g, &sh, options.seed);
    outcome = DriveProgram(sim, program, faulted);
  } else {
    outcome = DriveProgram(
        sim, [&sh](NodeContext& ctx) { return NodeMain(ctx, &sh); }, faulted);
  }

  std::uint64_t phases = 0;
  for (auto p : sh.phases_done) phases = std::max(phases, p);
  auto result = AssembleResult(g, sh.port_marks, sim.GetMetrics(), phases,
                               std::move(sh.final_ldt));
  sh.snapshots.resize(std::min<std::size_t>(sh.snapshots.size(), phases));
  result.forest_per_phase = std::move(sh.snapshots);
  result.outcome = std::move(outcome);
  if (faulted) RefineOutcome(result, g.NumNodes());
  return result;
}

Task<void> NodeMain(NodeContext& ctx, Shared* sh) {
  const std::size_t n = ctx.NumNodesKnown();
  LdtState ldt = LdtState::Singleton(ctx.Id());
  std::vector<bool>& mark = sh->port_marks[ctx.Index()];
  std::vector<NodeId> nbr_frag(ctx.Degree(), 0);
  // Reused across phases (assign keeps the capacity) so the per-phase
  // steady state stays allocation-free.
  std::vector<bool> nbr_tails(ctx.Degree(), false);
  BlockCursor cursor(1, n);

  bool finished = false;
  std::uint64_t last_active_phase = 0;
  // Adaptive blocks: B_p bounds every fragment's depth at the start of
  // phase p (see MstOptions::adaptive_blocks). All nodes advance this
  // bound identically, so block boundaries stay globally agreed.
  std::uint64_t depth_bound = 0;
  for (std::uint64_t phase = 1; phase <= sh->phase_cap; ++phase) {
    const std::size_t span =
        sh->adaptive_blocks
            ? static_cast<std::size_t>(
                  std::min<std::uint64_t>(depth_bound + 1, n))
            : n;
    cursor.SetSpan(span);
    depth_bound = std::min<std::uint64_t>(3 * depth_bound + 1, n - 1);
    if (finished) {  // paper mode: remaining phases are no-ops, asleep
      cursor.SkipBlocks(kRandomizedBlocksPerPhase);
      continue;
    }
    last_active_phase = phase;
    if (ldt.IsRoot()) ctx.Probe(kProbeFragmentsAtPhase, phase);

    // B1: learn adjacent fragment IDs.
    {
      auto inbox = co_await TransmitAdjacent(
          ctx, ldt, cursor.TakeBlock(),
          ToAllPorts(ctx, Message{kTagFragId, ldt.fragment_id, 0, 0}), span);
      for (const InMessage& m : inbox) {
        if (m.msg.type == kTagFragId) nbr_frag[m.port] = m.msg.a;
      }
    }

    // Local MOE candidate among ports leading outside the fragment.
    const UpcastItem local_moe =
        detail::LocalMoe(ctx, ldt, nbr_frag, sh->rule);

    // B2: fragment MOE converges at the root.
    const UpcastItem frag_moe =
        co_await UpcastMin(ctx, ldt, cursor.TakeBlock(), local_moe, span);

    // B3: root announces (MOE edge weight, DONE, coin).
    Message ctl_msg{};
    if (ldt.IsRoot()) {
      const bool done = frag_moe.Absent();  // no outgoing edge: we span G
      const bool tails = ctx.Rng().NextCoin();
      ctl_msg = Message{kTagPhaseCtl, frag_moe.b,
                        done ? std::uint64_t{1} : 0,
                        tails ? std::uint64_t{1} : 0};
    }
    const Message ctl = co_await FragmentBroadcast(ctx, ldt,
                                                   cursor.TakeBlock(),
                                                   ctl_msg, span);
    const Weight moe_weight = ctl.a;
    const bool done = ctl.b != 0;
    const bool tails = ctl.c != 0;
    if (done) {
      finished = true;
      sh->Snapshot(phase, ctx.Index(), ldt);
      if (sh->termination == TerminationMode::kEarlyDetect) break;
      cursor.SkipBlocks(kRandomizedBlocksPerPhase - 3);
      continue;
    }

    // B4: exchange (MOE weight, coin) with adjacent fragments.
    nbr_tails.assign(ctx.Degree(), false);
    {
      auto inbox = co_await TransmitAdjacent(
          ctx, ldt, cursor.TakeBlock(),
          ToAllPorts(ctx, Message{kTagMoeCoin, moe_weight, tails ? 1u : 0u, 0}),
          span);
      for (const InMessage& m : inbox) {
        if (m.msg.type == kTagMoeCoin) nbr_tails[m.port] = m.msg.b != 0;
      }
    }

    // Validity: the MOE is valid iff we flipped tails and the fragment on
    // its far side flipped heads. Decided by the (unique) MOE endpoint.
    const std::uint32_t moe_port =
        detail::PortOfOutgoingWeight(ctx, ldt, nbr_frag, moe_weight);
    UpcastItem verdict;  // absent unless we are the endpoint
    if (moe_port != kNoPort) {
      const bool valid = tails && !nbr_tails[moe_port];
      verdict = UpcastItem{valid ? 0u : 1u, 0, 0};
    }

    // B5 + B6: verdict to root, then fragment-wide.
    const UpcastItem up =
        co_await UpcastMin(ctx, ldt, cursor.TakeBlock(), verdict, span);
    const Message valid_msg = co_await FragmentBroadcast(
        ctx, ldt, cursor.TakeBlock(), Message{kTagValidity, up.key, 0, 0},
        span);
    const bool merges = tails && valid_msg.a == 0;

    // B7-B9: merge tails fragments into their heads fragments.
    MergeRole role;
    role.is_tails = merges;
    if (merges && moe_port != kNoPort) role.attach_port = moe_port;
    if (merges && ldt.IsRoot()) ctx.Probe(kProbeMergesAtPhase, phase);
    co_await MergingFragments(ctx, ldt, cursor, role, mark);
    sh->Snapshot(phase, ctx.Index(), ldt);
  }

  if (!finished && sh->termination == TerminationMode::kEarlyDetect) {
    throw NonTerminationError("Randomized-MST: phase cap " +
                             std::to_string(sh->phase_cap) +
                             " exceeded without termination");
  }
  ctx.ReportTermination(cursor.NextRound() - 1);
  sh->final_ldt[ctx.Index()] = ldt;
  sh->phases_done[ctx.Index()] = last_active_phase;
}

}  // namespace

std::uint64_t RandomizedPaperPhaseCount(std::size_t n) {
  const double log43 = std::log(static_cast<double>(n)) / std::log(4.0 / 3.0);
  return 4 * static_cast<std::uint64_t>(std::ceil(log43)) + 1;
}

MstRunResult RunRandomizedMst(const WeightedGraph& g,
                              const MstOptions& options) {
  return RunEngine(g, options, detail::SelectionRule::kMinWeight);
}

namespace detail {

MstRunResult RunGhsStyle(const WeightedGraph& g, const MstOptions& options,
                         SelectionRule rule) {
  return RunEngine(g, options, rule);
}

}  // namespace detail
}  // namespace smst
