#include "smst/mst/randomized_mst.h"

#include <cmath>
#include <mutex>
#include <stdexcept>
#include <string>

#include "smst/mst/detail.h"
#include "smst/runtime/simulator.h"
#include "smst/sleeping/merging.h"
#include "smst/sleeping/procedures.h"

namespace smst {

namespace {

constexpr std::uint16_t kTagFragId = 100;
constexpr std::uint16_t kTagPhaseCtl = 101;  // a=MOE weight, b=done, c=tails
constexpr std::uint16_t kTagMoeCoin = 102;   // a=MOE weight, b=tails
constexpr std::uint16_t kTagValidity = 103;

struct Shared {
  const WeightedGraph* g = nullptr;
  detail::SelectionRule rule = detail::SelectionRule::kMinWeight;
  TerminationMode termination = TerminationMode::kEarlyDetect;
  std::uint64_t phase_cap = 0;
  bool record_snapshots = false;
  bool adaptive_blocks = false;
  std::vector<std::vector<bool>> port_marks;
  std::vector<LdtState> final_ldt;
  std::vector<std::uint64_t> phases_done;
  std::vector<std::vector<LdtState>> snapshots;
  // Snapshots grow lazily as phases complete; under the sharded engine
  // nodes on different workers hit that growth concurrently, so the
  // telemetry path takes a lock. Every other Shared field is written at
  // disjoint (node-indexed) slots and needs none. The final contents are
  // order-independent: cell (phase-1, v) is written by exactly one node.
  std::mutex snapshot_mutex;

  void Snapshot(std::uint64_t phase, NodeIndex v, const LdtState& ldt) {
    if (!record_snapshots) return;
    std::lock_guard<std::mutex> lock(snapshot_mutex);
    if (snapshots.size() < phase) {
      snapshots.resize(phase, std::vector<LdtState>(g->NumNodes()));
    }
    snapshots[phase - 1][v] = ldt;
  }
};

Task<void> NodeMain(NodeContext& ctx, Shared* sh);

MstRunResult RunEngine(const WeightedGraph& g, const MstOptions& options,
                       detail::SelectionRule rule) {
  Shared sh;
  sh.g = &g;
  sh.rule = rule;
  sh.record_snapshots = options.record_forest_snapshots;
  sh.adaptive_blocks = options.adaptive_blocks;
  sh.termination = options.termination;
  sh.phase_cap =
      options.termination == TerminationMode::kPaperPhaseCount
          ? RandomizedPaperPhaseCount(g.NumNodes())
          : options.max_phase_factor *
                (static_cast<std::uint64_t>(
                     std::ceil(std::log2(static_cast<double>(g.NumNodes())))) +
                 2);
  for (NodeIndex v = 0; v < g.NumNodes(); ++v) {
    sh.port_marks.emplace_back(g.DegreeOf(v), false);
  }
  sh.final_ldt.resize(g.NumNodes());
  sh.phases_done.resize(g.NumNodes(), 0);

  SimulatorOptions sim_options;
  sim_options.seed = options.seed;
  sim_options.max_rounds = options.max_rounds;
  sim_options.record_wake_times = options.record_wake_times;
  sim_options.fault_plan = options.fault_plan;
  sim_options.audit = options.audit;
  sim_options.shards = options.shards;
  sim_options.shard_policy = options.shard_policy;
  const bool faulted =
      options.fault_plan != nullptr && !options.fault_plan->Empty();
  Simulator sim(g, sim_options);
  RunOutcome outcome = DriveProgram(
      sim, [&sh](NodeContext& ctx) { return NodeMain(ctx, &sh); }, faulted);

  std::uint64_t phases = 0;
  for (auto p : sh.phases_done) phases = std::max(phases, p);
  auto result = AssembleResult(g, sh.port_marks, sim.GetMetrics(), phases,
                               std::move(sh.final_ldt));
  sh.snapshots.resize(std::min<std::size_t>(sh.snapshots.size(), phases));
  result.forest_per_phase = std::move(sh.snapshots);
  result.outcome = std::move(outcome);
  if (faulted) RefineOutcome(result, g.NumNodes());
  return result;
}

Task<void> NodeMain(NodeContext& ctx, Shared* sh) {
  const std::size_t n = ctx.NumNodesKnown();
  LdtState ldt = LdtState::Singleton(ctx.Id());
  std::vector<bool>& mark = sh->port_marks[ctx.Index()];
  std::vector<NodeId> nbr_frag(ctx.Degree(), 0);
  // Reused across phases (assign keeps the capacity) so the per-phase
  // steady state stays allocation-free.
  std::vector<bool> nbr_tails(ctx.Degree(), false);
  BlockCursor cursor(1, n);

  bool finished = false;
  std::uint64_t last_active_phase = 0;
  // Adaptive blocks: B_p bounds every fragment's depth at the start of
  // phase p (see MstOptions::adaptive_blocks). All nodes advance this
  // bound identically, so block boundaries stay globally agreed.
  std::uint64_t depth_bound = 0;
  for (std::uint64_t phase = 1; phase <= sh->phase_cap; ++phase) {
    const std::size_t span =
        sh->adaptive_blocks
            ? static_cast<std::size_t>(
                  std::min<std::uint64_t>(depth_bound + 1, n))
            : n;
    cursor.SetSpan(span);
    depth_bound = std::min<std::uint64_t>(3 * depth_bound + 1, n - 1);
    if (finished) {  // paper mode: remaining phases are no-ops, asleep
      cursor.SkipBlocks(kRandomizedBlocksPerPhase);
      continue;
    }
    last_active_phase = phase;
    if (ldt.IsRoot()) ctx.Probe(kProbeFragmentsAtPhase, phase);

    // B1: learn adjacent fragment IDs.
    {
      auto inbox = co_await TransmitAdjacent(
          ctx, ldt, cursor.TakeBlock(),
          ToAllPorts(ctx, Message{kTagFragId, ldt.fragment_id, 0, 0}), span);
      for (const InMessage& m : inbox) {
        if (m.msg.type == kTagFragId) nbr_frag[m.port] = m.msg.a;
      }
    }

    // Local MOE candidate among ports leading outside the fragment.
    const UpcastItem local_moe =
        detail::LocalMoe(ctx, ldt, nbr_frag, sh->rule);

    // B2: fragment MOE converges at the root.
    const UpcastItem frag_moe =
        co_await UpcastMin(ctx, ldt, cursor.TakeBlock(), local_moe, span);

    // B3: root announces (MOE edge weight, DONE, coin).
    Message ctl_msg{};
    if (ldt.IsRoot()) {
      const bool done = frag_moe.Absent();  // no outgoing edge: we span G
      const bool tails = ctx.Rng().NextCoin();
      ctl_msg = Message{kTagPhaseCtl, frag_moe.b,
                        done ? std::uint64_t{1} : 0,
                        tails ? std::uint64_t{1} : 0};
    }
    const Message ctl = co_await FragmentBroadcast(ctx, ldt,
                                                   cursor.TakeBlock(),
                                                   ctl_msg, span);
    const Weight moe_weight = ctl.a;
    const bool done = ctl.b != 0;
    const bool tails = ctl.c != 0;
    if (done) {
      finished = true;
      sh->Snapshot(phase, ctx.Index(), ldt);
      if (sh->termination == TerminationMode::kEarlyDetect) break;
      cursor.SkipBlocks(kRandomizedBlocksPerPhase - 3);
      continue;
    }

    // B4: exchange (MOE weight, coin) with adjacent fragments.
    nbr_tails.assign(ctx.Degree(), false);
    {
      auto inbox = co_await TransmitAdjacent(
          ctx, ldt, cursor.TakeBlock(),
          ToAllPorts(ctx, Message{kTagMoeCoin, moe_weight, tails ? 1u : 0u, 0}),
          span);
      for (const InMessage& m : inbox) {
        if (m.msg.type == kTagMoeCoin) nbr_tails[m.port] = m.msg.b != 0;
      }
    }

    // Validity: the MOE is valid iff we flipped tails and the fragment on
    // its far side flipped heads. Decided by the (unique) MOE endpoint.
    const std::uint32_t moe_port =
        detail::PortOfOutgoingWeight(ctx, ldt, nbr_frag, moe_weight);
    UpcastItem verdict;  // absent unless we are the endpoint
    if (moe_port != kNoPort) {
      const bool valid = tails && !nbr_tails[moe_port];
      verdict = UpcastItem{valid ? 0u : 1u, 0, 0};
    }

    // B5 + B6: verdict to root, then fragment-wide.
    const UpcastItem up =
        co_await UpcastMin(ctx, ldt, cursor.TakeBlock(), verdict, span);
    const Message valid_msg = co_await FragmentBroadcast(
        ctx, ldt, cursor.TakeBlock(), Message{kTagValidity, up.key, 0, 0},
        span);
    const bool merges = tails && valid_msg.a == 0;

    // B7-B9: merge tails fragments into their heads fragments.
    MergeRole role;
    role.is_tails = merges;
    if (merges && moe_port != kNoPort) role.attach_port = moe_port;
    if (merges && ldt.IsRoot()) ctx.Probe(kProbeMergesAtPhase, phase);
    co_await MergingFragments(ctx, ldt, cursor, role, mark);
    sh->Snapshot(phase, ctx.Index(), ldt);
  }

  if (!finished && sh->termination == TerminationMode::kEarlyDetect) {
    throw NonTerminationError("Randomized-MST: phase cap " +
                             std::to_string(sh->phase_cap) +
                             " exceeded without termination");
  }
  ctx.ReportTermination(cursor.NextRound() - 1);
  sh->final_ldt[ctx.Index()] = ldt;
  sh->phases_done[ctx.Index()] = last_active_phase;
}

}  // namespace

std::uint64_t RandomizedPaperPhaseCount(std::size_t n) {
  const double log43 = std::log(static_cast<double>(n)) / std::log(4.0 / 3.0);
  return 4 * static_cast<std::uint64_t>(std::ceil(log43)) + 1;
}

MstRunResult RunRandomizedMst(const WeightedGraph& g,
                              const MstOptions& options) {
  return RunEngine(g, options, detail::SelectionRule::kMinWeight);
}

namespace detail {

MstRunResult RunGhsStyle(const WeightedGraph& g, const MstOptions& options,
                         SelectionRule rule) {
  return RunEngine(g, options, rule);
}

UpcastItem LocalMoe(const NodeContext& ctx, const LdtState& ldt,
                    const std::vector<NodeId>& nbr_frag, SelectionRule rule) {
  UpcastItem best;  // absent
  for (std::uint32_t p = 0; p < ctx.Degree(); ++p) {
    if (nbr_frag[p] == ldt.fragment_id) continue;
    const Weight w = ctx.WeightAtPort(p);
    UpcastItem candidate;
    switch (rule) {
      case SelectionRule::kMinWeight:
        candidate = UpcastItem{w, w, 0};
        break;
      case SelectionRule::kMinNeighborId:
        candidate = UpcastItem{nbr_frag[p], w, 0};
        break;
    }
    if (candidate < best) best = candidate;
  }
  return best;
}

std::uint32_t PortOfOutgoingWeight(const NodeContext& ctx, const LdtState& ldt,
                                   const std::vector<NodeId>& nbr_frag,
                                   Weight weight) {
  for (std::uint32_t p = 0; p < ctx.Degree(); ++p) {
    if (nbr_frag[p] != ldt.fragment_id && ctx.WeightAtPort(p) == weight) {
      return p;
    }
  }
  return kNoPort;
}

}  // namespace detail
}  // namespace smst
