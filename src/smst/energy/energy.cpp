#include "smst/energy/energy.h"

#include <algorithm>

namespace smst {

EnergyModel EnergyModel::SensorMote() { return {100.0, 0.1, 1.0}; }
EnergyModel EnergyModel::WifiStation() { return {3000.0, 5.0, 30.0}; }
EnergyModel EnergyModel::BleBeacon() { return {30.0, 0.03, 0.3}; }

EnergyReport BillRun(const RunStats& stats,
                     const std::vector<NodeMetrics>& per_node,
                     const EnergyModel& model) {
  EnergyReport report;
  double awake_energy = 0.0;
  for (const NodeMetrics& m : per_node) {
    const double awake = static_cast<double>(m.awake_rounds);
    const double asleep =
        static_cast<double>(stats.rounds) - awake;  // rounds >= awake
    const double node_awake_cost =
        awake * model.awake_cost +
        static_cast<double>(m.messages_sent) * model.tx_cost;
    const double bill = node_awake_cost + asleep * model.sleep_cost;
    awake_energy += node_awake_cost;
    report.total += bill;
    report.max_per_node = std::max(report.max_per_node, bill);
  }
  report.avg_per_node =
      per_node.empty() ? 0.0 : report.total / static_cast<double>(per_node.size());
  report.awake_share = report.total > 0.0 ? awake_energy / report.total : 0.0;
  return report;
}

double RunsPerBattery(const EnergyReport& report, double battery_joules) {
  if (report.max_per_node <= 0.0) return 0.0;
  // Costs are in microjoule.
  return battery_joules * 1e6 / report.max_per_node;
}

}  // namespace smst
