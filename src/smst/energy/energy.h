// Energy accounting for sleeping-model runs.
//
// The paper's motivation (§1): in battery-powered radio networks a node
// pays for every round its radio is on — transmitting, receiving, or
// just listening — while a sleeping round is orders of magnitude
// cheaper. This module turns a run's metrics into energy figures under
// a configurable cost model, the quantity the awake complexity is a
// proxy for.
#pragma once

#include <cstdint>
#include <vector>

#include "smst/runtime/metrics.h"

namespace smst {

struct EnergyModel {
  // Cost of one awake round (radio on, worst case: idle listening).
  double awake_cost = 100.0;
  // Cost of one sleeping round (deep sleep, timer only).
  double sleep_cost = 0.1;
  // Extra cost per message sent (TX surcharge on top of the awake round).
  double tx_cost = 1.0;

  // Typical figures (microjoule per ~10ms round) for three radio
  // classes, for the examples and benches.
  static EnergyModel SensorMote();   // 802.15.4-class: 100 / 0.1 / 1
  static EnergyModel WifiStation();  // Wi-Fi PSM-class: 3000 / 5 / 30
  static EnergyModel BleBeacon();    // BLE-class: 30 / 0.03 / 0.3
};

struct EnergyReport {
  double total = 0.0;        // whole-network energy
  double max_per_node = 0.0; // the battery that dies first
  double avg_per_node = 0.0;
  double awake_share = 0.0;  // fraction of total spent on awake rounds
};

// Bills a finished run: every node pays awake_cost per awake round,
// sleep_cost per remaining round until the run's end, tx_cost per
// message sent.
EnergyReport BillRun(const RunStats& stats,
                     const std::vector<NodeMetrics>& per_node,
                     const EnergyModel& model);

// Lifetime estimate: how many executions of this run a battery of
// `battery_joules` at the worst-case node supports.
double RunsPerBattery(const EnergyReport& report, double battery_joules);

}  // namespace smst
