// The Theorem-3 ring experiment (unconditional Omega(log n) awake lower
// bound) — constructive artifacts:
//
//  * the witness family: rings with uniform random weights, where the two
//    heaviest edges are Omega(n) apart with constant probability and any
//    MST algorithm must carry a comparison between them across one of the
//    two arcs;
//  * the information-propagation analysis behind Lemma 11: from a run's
//    recorded wake times we replay which nodes could possibly have heard
//    from which others (one hop per simultaneously-awake adjacent pair),
//    and measure, per segment length 13^a, how often a segment still
//    contains a vertex that after its a-th awake round has heard nothing
//    from outside the segment — the event U(I, a) whose probability the
//    proof bounds below by 1/2 for *every* algorithm.
#pragma once

#include <cstdint>
#include <vector>

#include "smst/graph/graph.h"

namespace smst {

// Hop distance around the ring between the two heaviest edges. `g` must
// be a ring built by MakeRing (node i adjacent to i+1 mod n).
std::size_t TwoHeaviestEdgeSeparation(const WeightedGraph& g);

// The floor Theorem 3 implies: any constant-success MST algorithm on an
// n-ring has awake complexity at least ~log_13(n) (the proof's constant).
double RingAwakeFloor(std::size_t n);

// Knowledge replay on a ring: knowledge[v] after the run is the maximal
// contiguous arc [v-left, v+right] that information could have reached v
// from, given the per-node wake times (messages travel one hop per round
// and only between simultaneously awake neighbors). Returns per node the
// pair (left, right) of arc extents, computed after `awake_budget` wakes
// of each node (the proof tracks knowledge after a node's a-th wake;
// pass 0 for "after the full run").
struct ArcKnowledge {
  std::uint64_t left = 0;   // hops of upstream knowledge
  std::uint64_t right = 0;  // hops of downstream knowledge
};
std::vector<ArcKnowledge> ReplayRingKnowledge(
    std::size_t n, const std::vector<std::vector<std::uint64_t>>& wake_times,
    std::size_t awake_budget);

// Lemma-11 statistic: the fraction of disjoint segments of length 13^a
// that contain a vertex whose knowledge after its a-th awake round is
// contained in the segment. The proof shows this is >= 1/2 for every
// algorithm; measuring it for ours shows the mechanism concretely.
double SegmentIsolationFraction(
    std::size_t n, const std::vector<std::vector<std::uint64_t>>& wake_times,
    std::size_t a);

}  // namespace smst
