// Set-disjointness instances and the paper's SD -> DSD -> CSS -> MST
// encoding chain (§3.2).
//
// Alice holds x, Bob holds y (k bits each; k = r-1 here, one bit per row
// other than row 1). The CSS marking: all row paths and tree edges are
// marked; Alice's (resp. Bob's) attachment to row ell is marked iff
// x_ell = 0 (resp. y_ell = 0). The marked subgraph is a connected
// spanning subgraph of G_rc iff x and y are disjoint. The MST encoding
// gives every marked edge a smaller weight than every unmarked edge, so
// the MST uses an unmarked ("expensive") edge iff the sets intersect —
// solving MST solves SD, which costs Omega(k) bits across the cut.
#pragma once

#include <cstdint>
#include <vector>

#include "smst/graph/graph.h"
#include "smst/lower_bounds/grc.h"
#include "smst/util/prng.h"

namespace smst {

struct SdInstance {
  std::vector<bool> x;
  std::vector<bool> y;

  // True iff there is no position where both bits are 1.
  bool Disjoint() const;
};

// Random instance; `force_intersecting` plants one common 1.
SdInstance RandomSdInstance(std::size_t k, Xoshiro256& rng,
                            bool force_intersecting);

struct CssEncoding {
  WeightedGraph graph;          // G_rc topology, weights encode the marking
  std::vector<bool> marked;     // per edge
  std::size_t marked_count = 0;
};

// Rebuilds the G_rc graph with marked edges strictly lighter than every
// unmarked edge (distinct weights throughout). The SD instance must have
// k == rows-1 bits.
CssEncoding EncodeCssAsMstWeights(const GrcInstance& grc, const SdInstance& sd,
                                  Xoshiro256& rng);

// Ground truth for the reduction: does the marked subgraph span G_rc?
bool MarkedSubgraphSpans(const WeightedGraph& g, const std::vector<bool>& marked);

// The reduction's readout: given an MST edge set for the encoded graph,
// "sets are disjoint" iff no unmarked edge is in the MST.
bool SdAnswerFromMst(const CssEncoding& enc,
                     const std::vector<EdgeIndex>& mst_edges);

}  // namespace smst
