#include "smst/lower_bounds/set_disjointness.h"

#include <stdexcept>

#include "smst/graph/union_find.h"

namespace smst {

bool SdInstance::Disjoint() const {
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] && y[i]) return false;
  }
  return true;
}

SdInstance RandomSdInstance(std::size_t k, Xoshiro256& rng,
                            bool force_intersecting) {
  SdInstance sd;
  sd.x.resize(k);
  sd.y.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    sd.x[i] = rng.NextCoin();
    sd.y[i] = rng.NextCoin();
  }
  if (force_intersecting && k > 0) {
    const std::size_t i = rng.NextBelow(k);
    sd.x[i] = sd.y[i] = true;
  }
  return sd;
}

CssEncoding EncodeCssAsMstWeights(const GrcInstance& grc, const SdInstance& sd,
                                  Xoshiro256& rng) {
  const WeightedGraph& g = grc.graph;
  if (sd.x.size() != grc.rows - 1 || sd.y.size() != grc.rows - 1) {
    throw std::invalid_argument("SD instance must have rows-1 bits");
  }
  CssEncoding enc;
  enc.marked.assign(g.NumEdges(), false);
  for (EdgeIndex e : grc.backbone_edges) enc.marked[e] = true;
  for (std::size_t i = 0; i < grc.rows - 1; ++i) {
    if (!sd.x[i]) enc.marked[grc.alice_row_edges[i]] = true;
    if (!sd.y[i]) enc.marked[grc.bob_row_edges[i]] = true;
  }
  for (bool m : enc.marked) enc.marked_count += m ? 1 : 0;

  // Same topology (same edge order => same edge indices), new weights:
  // marked edges draw from [1, 8m], unmarked from [8m+1, 16m].
  const std::uint64_t m = g.NumEdges();
  auto light = SampleDistinct(1, 8 * m, enc.marked_count, rng);
  auto heavy = SampleDistinct(8 * m + 1, 16 * m,
                              g.NumEdges() - enc.marked_count, rng);
  Shuffle(light, rng);
  Shuffle(heavy, rng);
  GraphBuilder b(g.NumNodes());
  std::size_t li = 0, hi = 0;
  for (EdgeIndex e = 0; e < g.NumEdges(); ++e) {
    const Edge& edge = g.GetEdge(e);
    b.AddEdge(edge.u, edge.v, enc.marked[e] ? light[li++] : heavy[hi++]);
  }
  enc.graph = std::move(b).Build();
  return enc;
}

bool MarkedSubgraphSpans(const WeightedGraph& g,
                         const std::vector<bool>& marked) {
  UnionFind uf(g.NumNodes());
  for (EdgeIndex e = 0; e < g.NumEdges(); ++e) {
    if (marked[e]) uf.Union(g.GetEdge(e).u, g.GetEdge(e).v);
  }
  return uf.NumSets() == 1;
}

bool SdAnswerFromMst(const CssEncoding& enc,
                     const std::vector<EdgeIndex>& mst_edges) {
  for (EdgeIndex e : mst_edges) {
    if (!enc.marked[e]) return false;  // expensive edge used: intersecting
  }
  return true;
}

}  // namespace smst
