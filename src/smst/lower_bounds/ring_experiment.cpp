#include "smst/lower_bounds/ring_experiment.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace smst {

std::size_t TwoHeaviestEdgeSeparation(const WeightedGraph& g) {
  const std::size_t n = g.NumNodes();
  if (g.NumEdges() != n) throw std::invalid_argument("not a ring");
  // MakeRing adds edge i = (i, i+1 mod n), so edge positions are indices.
  EdgeIndex first = 0, second = 1;
  if (g.GetEdge(second).weight > g.GetEdge(first).weight) std::swap(first, second);
  for (EdgeIndex e = 2; e < g.NumEdges(); ++e) {
    if (g.GetEdge(e).weight > g.GetEdge(first).weight) {
      second = first;
      first = e;
    } else if (g.GetEdge(e).weight > g.GetEdge(second).weight) {
      second = e;
    }
  }
  const std::size_t d =
      first > second ? first - second : second - first;
  return std::min(d, n - d);
}

double RingAwakeFloor(std::size_t n) {
  // Lemma 11 iterates a up to log_13(n); Theorem 3 turns that into an
  // Omega(log n) awake floor. The constant-free concrete floor:
  return std::log(static_cast<double>(n)) / std::log(13.0);
}

std::vector<ArcKnowledge> ReplayRingKnowledge(
    std::size_t n, const std::vector<std::vector<std::uint64_t>>& wake_times,
    std::size_t awake_budget) {
  if (wake_times.size() != n) {
    throw std::invalid_argument("wake_times must cover every ring node");
  }
  // round -> nodes awake in it.
  std::map<std::uint64_t, std::vector<std::uint32_t>> by_round;
  std::vector<std::size_t> wakes_seen(n, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::uint64_t t : wake_times[v]) by_round[t].push_back(v);
  }

  std::vector<ArcKnowledge> now(n);           // evolving knowledge
  std::vector<ArcKnowledge> at_budget(n);     // snapshot at the a-th wake
  std::vector<bool> snapped(n, awake_budget == 0 ? false : false);

  auto cap = [&](std::uint64_t v) { return std::min<std::uint64_t>(v, n); };

  for (auto& [round, nodes] : by_round) {
    (void)round;
    std::sort(nodes.begin(), nodes.end());
    // Simultaneous exchange: read pre-round state, then apply.
    std::vector<std::pair<std::uint32_t, ArcKnowledge>> updates;
    auto awake = [&](std::uint32_t v) {
      return std::binary_search(nodes.begin(), nodes.end(), v);
    };
    for (std::uint32_t v : nodes) {
      ArcKnowledge k = now[v];
      const std::uint32_t up = static_cast<std::uint32_t>((v + n - 1) % n);
      const std::uint32_t down = static_cast<std::uint32_t>((v + 1) % n);
      if (awake(up)) {
        k.left = cap(std::max(k.left, now[up].left + 1));
        k.right = cap(std::max<std::uint64_t>(
            k.right, now[up].right > 0 ? now[up].right - 1 : 0));
      }
      if (awake(down)) {
        k.right = cap(std::max(k.right, now[down].right + 1));
        k.left = cap(std::max<std::uint64_t>(
            k.left, now[down].left > 0 ? now[down].left - 1 : 0));
      }
      updates.emplace_back(v, k);
    }
    for (auto& [v, k] : updates) now[v] = k;
    for (std::uint32_t v : nodes) {
      ++wakes_seen[v];
      if (awake_budget != 0 && wakes_seen[v] == awake_budget) {
        at_budget[v] = now[v];
        snapped[v] = true;
      }
    }
  }
  if (awake_budget == 0) return now;
  // Nodes with fewer wakes than the budget keep their final knowledge.
  for (std::uint32_t v = 0; v < n; ++v) {
    if (!snapped[v]) at_budget[v] = now[v];
  }
  return at_budget;
}

double SegmentIsolationFraction(
    std::size_t n, const std::vector<std::vector<std::uint64_t>>& wake_times,
    std::size_t a) {
  // a = 0: segments have length 1 and "knowledge after the 0th awake
  // round" is empty, so every segment trivially has an isolated vertex.
  if (a == 0) return 1.0;
  std::size_t seg_len = 1;
  for (std::size_t i = 0; i < a; ++i) seg_len *= 13;
  if (seg_len > n) return 0.0;
  const auto knowledge = ReplayRingKnowledge(n, wake_times, a);
  const std::size_t segments = n / seg_len;
  std::size_t isolated = 0;
  for (std::size_t s = 0; s < segments; ++s) {
    const std::size_t lo = s * seg_len;
    const std::size_t hi = lo + seg_len - 1;  // inclusive
    bool found = false;
    for (std::size_t v = lo; v <= hi && !found; ++v) {
      // Arc [v - left, v + right] within [lo, hi] (no wrap).
      found = knowledge[v].left <= v - lo && knowledge[v].right <= hi - v;
    }
    isolated += found ? 1 : 0;
  }
  return static_cast<double>(isolated) / static_cast<double>(segments);
}

}  // namespace smst
