#include "smst/lower_bounds/grc.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace smst {

namespace {

// Smallest power of two >= v (v >= 1).
std::size_t CeilPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

GrcInstance BuildGrc(std::size_t rows, std::size_t cols, Xoshiro256& rng) {
  if (rows < 2 || cols < 4) {
    throw std::invalid_argument("G_rc needs rows >= 2 and cols >= 4");
  }
  GrcInstance inst;
  inst.rows = rows;
  inst.cols = cols;

  // |X| = Theta(log n), a power of two, at most cols.
  const std::size_t approx_n = rows * cols;
  std::size_t x_count = CeilPow2(static_cast<std::size_t>(
      std::max(2.0, std::ceil(std::log2(static_cast<double>(approx_n))))));
  x_count = std::min(x_count, CeilPow2(cols) / 2 >= 2 ? CeilPow2(cols) / 2
                                                      : 2);
  while (x_count > cols) x_count /= 2;
  // Equally spaced columns including the first and last.
  for (std::size_t i = 0; i < x_count; ++i) {
    inst.x_cols.push_back(i * (cols - 1) / (x_count - 1));
  }
  inst.x_cols.erase(std::unique(inst.x_cols.begin(), inst.x_cols.end()),
                    inst.x_cols.end());
  // Keep |X| a power of two (duplicates can only arise for tiny cols).
  while ((inst.x_cols.size() & (inst.x_cols.size() - 1)) != 0) {
    inst.x_cols.pop_back();
  }
  const std::size_t x_size = inst.x_cols.size();

  // Node layout: rows*cols grid nodes, then x_size-1 tree internals
  // (a balanced binary tree over x_size leaves has x_size-1 internals).
  const std::size_t grid_nodes = rows * cols;
  const std::size_t internals = x_size - 1;
  const std::size_t n = grid_nodes + internals;

  inst.node_at.assign(rows, std::vector<NodeIndex>(cols));
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      inst.node_at[r][c] = static_cast<NodeIndex>(r * cols + c);
    }
  }
  for (std::size_t i = 0; i < internals; ++i) {
    inst.tree_internal.push_back(static_cast<NodeIndex>(grid_nodes + i));
  }
  inst.alice = inst.node_at[0][0];
  inst.bob = inst.node_at[0][cols - 1];

  std::vector<std::pair<NodeIndex, NodeIndex>> edges;
  std::vector<bool> is_backbone;
  auto add = [&](NodeIndex a, NodeIndex b, bool backbone) {
    edges.emplace_back(a, b);
    is_backbone.push_back(backbone);
    return static_cast<EdgeIndex>(edges.size() - 1);
  };

  // Row paths (backbone).
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c + 1 < cols; ++c) {
      add(inst.node_at[r][c], inst.node_at[r][c + 1], true);
    }
  }
  // Alice / Bob attachments to rows 2..r (the SD-encoding edges).
  for (std::size_t r = 1; r < rows; ++r) {
    inst.alice_row_edges.push_back(add(inst.alice, inst.node_at[r][0], false));
    inst.bob_row_edges.push_back(
        add(inst.bob, inst.node_at[r][cols - 1], false));
  }
  // X columns down to every other row (not backbone, never marked).
  for (std::size_t xc : inst.x_cols) {
    for (std::size_t r = 1; r < rows; ++r) {
      if (xc == 0 || xc == cols - 1) continue;  // Alice/Bob already attach
      add(inst.node_at[0][xc], inst.node_at[r][xc], false);
    }
  }
  // Balanced binary tree over X (backbone). Heap-style: internals are a
  // complete binary tree with x_size leaves below.
  {
    // Build bottom-up: level 0 = the X nodes in row 1.
    std::vector<NodeIndex> level;
    for (std::size_t xc : inst.x_cols) level.push_back(inst.node_at[0][xc]);
    std::size_t next_internal = 0;
    while (level.size() > 1) {
      std::vector<NodeIndex> above;
      for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
        NodeIndex parent = inst.tree_internal[next_internal++];
        add(parent, level[i], true);
        add(parent, level[i + 1], true);
        above.push_back(parent);
      }
      if (level.size() % 2 == 1) above.push_back(level.back());
      level = std::move(above);
    }
  }

  // Random distinct weights; IDs 1..n unshuffled (IDs are irrelevant to
  // the lower-bound experiments, and fixed IDs keep them reproducible).
  GraphBuilder builder(n);
  {
    const std::uint64_t hi = std::max<std::uint64_t>(1u << 20, edges.size()) * 16;
    auto weights = SampleDistinct(1, hi, edges.size(), rng);
    Shuffle(weights, rng);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      builder.AddEdge(edges[i].first, edges[i].second, weights[i]);
    }
  }
  inst.graph = std::move(builder).Build();
  for (EdgeIndex e = 0; e < is_backbone.size(); ++e) {
    if (is_backbone[e]) inst.backbone_edges.push_back(e);
  }
  return inst;
}

std::pair<std::size_t, std::size_t> GrcRegimeForSize(std::size_t n) {
  // c ~ sqrt(n) * log^2(n) clipped so that r = n/c >= 2; for the modest n
  // a simulation reaches, this keeps c >> r as the regime demands.
  const double logn = std::max(1.0, std::log2(static_cast<double>(n)));
  double c = std::sqrt(static_cast<double>(n)) * logn;
  std::size_t cols = static_cast<std::size_t>(c);
  std::size_t rows = std::max<std::size_t>(2, n / std::max<std::size_t>(cols, 4));
  cols = std::max<std::size_t>(4, n / rows);
  return {rows, cols};
}

}  // namespace smst
