// The lower-bound graph family G_rc (paper §3.2, Figure 1).
//
// r parallel paths ("rows") of c nodes each. Alice is the first node of
// row 1 and Bob its last; Alice (resp. Bob) also connects to the first
// (resp. last) node of every other row. Theta(log n) equally spaced
// columns X of row 1 (|X| a power of two, containing the first and last
// columns) connect down to every other row at the same column, and a
// balanced binary tree (new internal nodes I) is built over X. The
// highway X + tree gives hop diameter Theta(c / log n) (Observation 1),
// while any algorithm faster than o(c) rounds must squeeze Omega(r) bits
// through the O(log n) tree nodes — the congestion that the Theorem-4
// product lower bound charges to awake time.
#pragma once

#include <cstdint>
#include <vector>

#include "smst/graph/graph.h"
#include "smst/util/prng.h"

namespace smst {

struct GrcInstance {
  WeightedGraph graph;
  std::size_t rows = 0;  // r
  std::size_t cols = 0;  // c
  NodeIndex alice = kInvalidNode;
  NodeIndex bob = kInvalidNode;
  // Row-major node grid: node_at[row][col].
  std::vector<std::vector<NodeIndex>> node_at;
  // The X columns (as column indices into row 1) and the tree internals I.
  std::vector<std::size_t> x_cols;
  std::vector<NodeIndex> tree_internal;
  // Alice/Bob attachment edges per row ell in [2, r] (index ell-2): these
  // are the edges whose marking encodes the set-disjointness inputs.
  std::vector<EdgeIndex> alice_row_edges;
  std::vector<EdgeIndex> bob_row_edges;
  // Everything always marked in the CSS encoding: the r row paths plus
  // the binary tree edges (NOT the X-to-row column edges).
  std::vector<EdgeIndex> backbone_edges;
};

// Builds G_rc with random distinct weights. Requires rows >= 2 and
// cols >= 4. The network size is rows*cols + |I|.
GrcInstance BuildGrc(std::size_t rows, std::size_t cols, Xoshiro256& rng);

// The paper's parameter regime for network size n: c = Theta(sqrt(n)
// log^2 n)-ish and r = n/c. Returns (rows, cols) with rows >= 2.
std::pair<std::size_t, std::size_t> GrcRegimeForSize(std::size_t n);

}  // namespace smst
