#include "smst/util/table.h"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace smst {

namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == 'e' || c == 'E' || c == 'x')) {
      return false;
    }
  }
  return true;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(std::uint64_t v) { return std::to_string(v); }
std::string Table::Num(std::int64_t v) { return std::to_string(v); }

std::string Table::Num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto rule = [&] {
    os << '+';
    for (std::size_t w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells, bool numeric_align) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string& cell = cells[c];
      bool right = numeric_align && LooksNumeric(cell);
      std::size_t pad = width[c] - cell.size();
      os << ' ';
      if (right) os << std::string(pad, ' ') << cell;
      else os << cell << std::string(pad, ' ');
      os << " |";
    }
    os << '\n';
  };
  rule();
  line(header_, false);
  rule();
  for (const auto& row : rows_) line(row, true);
  rule();
}

std::string Table::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

}  // namespace smst
