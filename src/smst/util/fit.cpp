#include "smst/util/fit.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace smst {

std::vector<ScalingModel> StandardModels() {
  return {
      {"1", [](double) { return 1.0; }},
      {"log n", [](double n) { return std::log2(n); }},
      {"log n * log* n",
       [](double n) {
         // iterated log (base 2), standard definition
         int k = 0;
         while (n > 1.0) {
           n = std::log2(n);
           ++k;
         }
         return k;
       }},
      {"sqrt n", [](double n) { return std::sqrt(n); }},
      {"n", [](double n) { return n; }},
      {"n log n", [](double n) { return n * std::log2(n); }},
      {"n^2", [](double n) { return n * n; }},
  };
}

ScalingFit FitOne(const std::vector<double>& x, const std::vector<double>& y,
                  const ScalingModel& model) {
  assert(x.size() == y.size());
  assert(!x.empty());
  // Minimize sum (y_i - a f(x_i))^2  =>  a = sum(y f) / sum(f^2).
  double sfy = 0.0, sff = 0.0, sy = 0.0;
  std::vector<double> f(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    f[i] = model.shape(x[i]);
    sfy += f[i] * y[i];
    sff += f[i] * f[i];
    sy += y[i];
  }
  ScalingFit fit;
  fit.model = model.name;
  fit.constant = (sff > 0.0) ? sfy / sff : 0.0;
  const double mean = sy / static_cast<double>(y.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - fit.constant * f[i];
    ss_res += e * e;
    const double d = y[i] - mean;
    ss_tot += d * d;
  }
  fit.r_squared = (ss_tot > 0.0) ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

std::vector<ScalingFit> FitAll(const std::vector<double>& x,
                               const std::vector<double>& y,
                               const std::vector<ScalingModel>& models) {
  std::vector<ScalingFit> fits;
  fits.reserve(models.size());
  for (const auto& m : models) fits.push_back(FitOne(x, y, m));
  std::sort(fits.begin(), fits.end(),
            [](const ScalingFit& a, const ScalingFit& b) {
              return a.r_squared > b.r_squared;
            });
  return fits;
}

std::string BestFitName(const std::vector<double>& x,
                        const std::vector<double>& y) {
  return FitAll(x, y, StandardModels()).front().model;
}

}  // namespace smst
