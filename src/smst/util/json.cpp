#include "smst/util/json.h"

#include <cmath>
#include <cstdio>

namespace smst {

std::string JsonNum(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string JsonStr(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default: {
        const auto u = static_cast<unsigned char>(c);
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
      }
    }
  }
  out += '"';
  return out;
}

}  // namespace smst
