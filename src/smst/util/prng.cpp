#include "smst/util/prng.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace smst {

std::uint64_t Xoshiro256::NextBelow(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift with rejection for exact uniformity.
  std::uint64_t x = Next();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<unsigned __int128>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

Xoshiro256 Xoshiro256::Split(std::uint64_t stream_id) const {
  // Mix current state with the stream id through SplitMix64 so substreams
  // of the same parent are independent of each other and of the parent.
  SplitMix64 sm(state_[0] ^ (state_[2] * 0x9e3779b97f4a7c15ULL) ^
                (stream_id + 0x632be59bd9b4e019ULL));
  return Xoshiro256(sm.Next());
}

std::vector<std::uint64_t> SampleDistinct(std::uint64_t lo, std::uint64_t hi,
                                          std::size_t count, Xoshiro256& rng) {
  assert(hi >= lo);
  assert(hi - lo + 1 >= count);
  // Floyd's algorithm: O(count) expected draws, no rejection blowup even
  // when count is close to the range size.
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(count * 2);
  const std::uint64_t range = hi - lo;  // inclusive range size - 1
  for (std::uint64_t j = range - count + 1; j <= range; ++j) {
    std::uint64_t t = lo + rng.NextBelow(j + 1);
    if (!chosen.insert(t).second) chosen.insert(lo + j);
  }
  std::vector<std::uint64_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint64_t> SampleIds(std::size_t n, std::uint64_t max_id,
                                     Xoshiro256& rng) {
  assert(max_id >= n);
  std::vector<std::uint64_t> ids = SampleDistinct(1, max_id, n, rng);
  Shuffle(ids, rng);
  return ids;
}

}  // namespace smst
