// Deterministic, seedable pseudo-random number generation.
//
// Everything random in this library flows from a single run seed through
// SplitMix64-derived streams, so whole simulations are bit-reproducible.
// We provide xoshiro256** as the workhorse generator (fast, 256-bit state,
// passes BigCrush) and SplitMix64 for seeding / stream splitting, following
// the generators' reference constructions.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace smst {

// SplitMix64: tiny 64-bit generator used to expand seeds and derive
// independent substreams. One step per output.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: general-purpose generator. Satisfies the C++
// UniformRandomBitGenerator concept so it composes with <random> if needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return Next(); }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Unbiased uniform draw from [0, bound) via Lemire rejection.
  // Precondition: bound > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform draw from the inclusive range [lo, hi]. Precondition: lo <= hi.
  std::uint64_t NextInRange(std::uint64_t lo, std::uint64_t hi) {
    return lo + NextBelow(hi - lo + 1);
  }

  // Fair coin. True with probability 1/2.
  bool NextCoin() { return (Next() >> 63) != 0; }

  // Uniform double in [0, 1) with 53 bits of randomness.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Derive an independent substream; `stream_id` distinguishes children.
  Xoshiro256 Split(std::uint64_t stream_id) const;

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

// Fisher-Yates shuffle driven by our generator (std::shuffle's result is
// implementation-defined across standard libraries; this one is stable).
template <typename T>
void Shuffle(std::vector<T>& items, Xoshiro256& rng) {
  for (std::size_t i = items.size(); i > 1; --i) {
    std::size_t j = rng.NextBelow(i);
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

// Draws `count` distinct uint64 values from [lo, hi], sorted ascending.
// Used for unique edge weights (the paper assumes distinct weights, which
// makes the MST unique). Precondition: hi - lo + 1 >= count.
std::vector<std::uint64_t> SampleDistinct(std::uint64_t lo, std::uint64_t hi,
                                          std::size_t count, Xoshiro256& rng);

// Returns a random permutation of {1, ..., n} (used for node IDs in [1, N]
// when N == n) or a sorted random subset of size n of {1, ..., N} shuffled
// (when N > n).
std::vector<std::uint64_t> SampleIds(std::size_t n, std::uint64_t max_id,
                                     Xoshiro256& rng);

}  // namespace smst
