// Least-squares scaling fits.
//
// The paper states asymptotic bounds (Table 1); the benches validate them
// by sweeping n and fitting the measurements against candidate model
// curves (log n, n, n log n, ...). FitScaling returns, for y ≈ a·f(n),
// the constant a and the coefficient of determination R², so a bench can
// report which shape explains the data.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace smst {

struct ScalingModel {
  std::string name;                          // e.g. "log n"
  std::function<double(double)> shape;       // f(n)
};

struct ScalingFit {
  std::string model;
  double constant = 0.0;   // a in y ≈ a·f(n)
  double r_squared = 0.0;  // 1 - SS_res/SS_tot (can be negative: bad fit)
};

// Standard model set used across benches.
std::vector<ScalingModel> StandardModels();

// Fits y ≈ a·f(x) (no intercept) for one model.
ScalingFit FitOne(const std::vector<double>& x, const std::vector<double>& y,
                  const ScalingModel& model);

// Fits all models and returns them sorted by descending R².
std::vector<ScalingFit> FitAll(const std::vector<double>& x,
                               const std::vector<double>& y,
                               const std::vector<ScalingModel>& models);

// Convenience: best-fit name among StandardModels().
std::string BestFitName(const std::vector<double>& x,
                        const std::vector<double>& y);

}  // namespace smst
