#include "smst/util/args.h"

#include <stdexcept>

namespace smst {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0 || token.size() <= 2) {
      throw std::invalid_argument("expected --flag, got '" + token + "'");
    }
    token = token.substr(2);
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      values_[token.substr(0, eq)] = token.substr(eq + 1);
      continue;
    }
    // "--flag value" unless the next token is another flag (then it is a
    // boolean switch).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[token] = argv[++i];
    } else {
      values_[token] = "true";
    }
  }
}

bool ArgParser::Has(const std::string& name) const {
  used_[name] = true;
  return values_.count(name) > 0;
}

std::string ArgParser::GetString(const std::string& name,
                                 const std::string& fallback) const {
  used_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::uint64_t ArgParser::GetUint(const std::string& name,
                                 std::uint64_t fallback) const {
  used_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::size_t pos = 0;
  const std::uint64_t v = std::stoull(it->second, &pos);
  if (pos != it->second.size()) {
    throw std::invalid_argument("--" + name + " expects an integer, got '" +
                                it->second + "'");
  }
  return v;
}

double ArgParser::GetDouble(const std::string& name, double fallback) const {
  used_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::size_t pos = 0;
  const double v = std::stod(it->second, &pos);
  if (pos != it->second.size()) {
    throw std::invalid_argument("--" + name + " expects a number, got '" +
                                it->second + "'");
  }
  return v;
}

bool ArgParser::GetBool(const std::string& name, bool fallback) const {
  used_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  throw std::invalid_argument("--" + name + " expects true/false");
}

std::vector<std::string> ArgParser::UnusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, value] : values_) {
    if (!used_.count(name)) unused.push_back(name);
  }
  return unused;
}

}  // namespace smst
