#include "smst/util/args.h"

#include <cctype>
#include <cmath>
#include <stdexcept>

namespace smst {

namespace {

// std::stoull happily parses "-1" (wrapping to 2^64-1), leading
// whitespace, "+5", and "0x10" — all of which silently turn user typos
// like `--seeds -1` into enormous values. A uint flag accepts plain
// decimal digits only.
bool IsPlainDecimal(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0 || token.size() <= 2) {
      throw std::invalid_argument("expected --flag, got '" + token + "'");
    }
    token = token.substr(2);
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      values_[token.substr(0, eq)] = token.substr(eq + 1);
      continue;
    }
    // "--flag value" unless the next token is another flag (then it is a
    // boolean switch).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[token] = argv[++i];
    } else {
      values_[token] = "true";
    }
  }
}

bool ArgParser::Has(const std::string& name) const {
  used_[name] = true;
  return values_.count(name) > 0;
}

std::string ArgParser::GetString(const std::string& name,
                                 const std::string& fallback) const {
  used_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::uint64_t ArgParser::GetUint(const std::string& name,
                                 std::uint64_t fallback) const {
  used_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  if (!IsPlainDecimal(it->second)) {
    throw std::invalid_argument("--" + name + " expects an integer, got '" +
                                it->second + "'");
  }
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(it->second, &pos);
    if (pos != it->second.size()) {
      throw std::invalid_argument("");
    }
    return v;
  } catch (const std::exception&) {
    // All-digit strings can still overflow uint64 (std::out_of_range).
    throw std::invalid_argument("--" + name + " expects an integer, got '" +
                                it->second + "'");
  }
}

double ArgParser::GetDouble(const std::string& name, double fallback) const {
  used_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  // std::stod accepts leading whitespace, "nan", "inf", and hex floats;
  // none of those is a sensible flag value, and a NaN probability poisons
  // every comparison downstream. Require the token to start with a digit,
  // '-', or '.', and the parsed value to be finite.
  const std::string& text = it->second;
  const auto bad = [&]() -> std::invalid_argument {
    return std::invalid_argument("--" + name + " expects a number, got '" +
                                 text + "'");
  };
  if (text.empty()) throw bad();
  const char first = text.front();
  if (!std::isdigit(static_cast<unsigned char>(first)) && first != '-' &&
      first != '.') {
    throw bad();
  }
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size() || !std::isfinite(v)) throw bad();
    return v;
  } catch (const std::invalid_argument&) {
    throw bad();
  } catch (const std::out_of_range&) {
    throw bad();
  }
}

bool ArgParser::GetBool(const std::string& name, bool fallback) const {
  used_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  throw std::invalid_argument("--" + name + " expects true/false");
}

std::vector<std::string> ArgParser::UnusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, value] : values_) {
    if (!used_.count(name)) unused.push_back(name);
  }
  return unused;
}

}  // namespace smst
