// Fixed-width ASCII table printer for the paper-style outputs the benches
// and examples produce. Columns auto-size to contents; numbers are
// right-aligned, text left-aligned.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace smst {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Appends a row; cells may be fewer than the header (padded empty).
  void AddRow(std::vector<std::string> cells);

  // Convenience formatters used by the benches.
  static std::string Num(std::uint64_t v);
  static std::string Num(std::int64_t v);
  static std::string Num(double v, int precision = 3);

  void Print(std::ostream& os) const;
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace smst
