// JSON-lines field formatting shared by the bench harness and the CLI.
//
// The records these helpers produce feed strict parsers downstream
// (sweep-analysis scripts, jq), so the emitters must never produce
// invalid JSON:
//  * JsonNum maps non-finite doubles (NaN / ±inf — e.g. an average over
//    zero completed runs in a 100%-crash robustness sweep) to `null`;
//    bare `nan`/`inf` tokens are not JSON and corrupt the whole line.
//  * JsonStr escapes quotes, backslashes, and every control character
//    (`\n`, `\t`, ... as short escapes; other bytes < 0x20 as \u00XX),
//    so hostile or merely creative experiment names cannot break a
//    record.
#pragma once

#include <string>

namespace smst {

// Formats a double as a JSON number token: integral values print without
// a fraction, others with %.6g; non-finite values print as `null`.
std::string JsonNum(double v);

// Formats a string as a JSON string token, quotes included.
std::string JsonStr(const std::string& s);

}  // namespace smst
