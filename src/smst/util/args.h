// Minimal command-line flag parser for the CLI tool and examples.
// Supports --name value and --name=value, typed lookups with defaults,
// and unknown-flag detection.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace smst {

class ArgParser {
 public:
  // Parses argv; throws std::invalid_argument on malformed input
  // (non-flag tokens, missing values).
  ArgParser(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  std::uint64_t GetUint(const std::string& name, std::uint64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  // Flags that were provided but never looked up (typo detection).
  std::vector<std::string> UnusedFlags() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace smst
