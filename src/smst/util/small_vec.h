// SmallVec<T, N>: a vector with inline capacity for N elements.
//
// The simulator's per-awake message batches (sends, inboxes) almost
// always hold at most a handful of entries — node degrees in the model
// workloads are small — so storing the first N elements inside the
// object itself makes the steady-state awake path allocation-free.
// Beyond N elements SmallVec degrades gracefully to a heap buffer with
// the usual geometric growth, so correctness never depends on N.
//
// Supported surface (deliberately a subset of std::vector):
//   push_back / emplace_back / pop_back / clear / reserve / resize
//   size / empty / capacity / data / operator[] / front / back
//   begin / end (contiguous, so std::span construction works)
//   copy / move construction and assignment, operator==
//
// Growth gives the strong exception guarantee: if moving T can throw,
// elements are copied into the new buffer instead (move_if_noexcept),
// and a throwing copy leaves the original vector untouched.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace smst {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(N > 0, "SmallVec needs at least one inline slot");

 public:
  using value_type = T;
  using size_type = std::size_t;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() noexcept : data_(InlineData()) {}

  SmallVec(std::initializer_list<T> init) : SmallVec() {
    reserve(init.size());
    for (const T& v : init) emplace_back(v);
  }

  SmallVec(const SmallVec& other) : SmallVec() {
    reserve(other.size_);
    for (const T& v : other) emplace_back(v);
  }

  SmallVec(SmallVec&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>)
      : SmallVec() {
    StealOrMoveFrom(other);
  }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      SmallVec tmp(other);  // copy first: strong guarantee
      *this = std::move(tmp);
    }
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    if (this != &other) {
      clear();
      ReleaseHeap();
      StealOrMoveFrom(other);
    }
    return *this;
  }

  ~SmallVec() {
    DestroyAll();
    ReleaseHeap();
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return capacity_; }
  bool is_inline() const noexcept { return data_ == InlineData(); }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  iterator begin() noexcept { return data_; }
  iterator end() noexcept { return data_ + size_; }
  const_iterator begin() const noexcept { return data_; }
  const_iterator end() const noexcept { return data_ + size_; }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }
  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void reserve(std::size_t want) {
    if (want > capacity_) Grow(want);
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) Grow(size_ + 1);
    T* slot = data_ + size_;
    std::construct_at(slot, std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }
  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  void pop_back() {
    assert(size_ > 0);
    std::destroy_at(data_ + --size_);
  }

  // Removes [first, last), shifting the tail left (erase-remove idiom
  // support). Returns the iterator following the last removed element.
  iterator erase(iterator first, iterator last) {
    assert(begin() <= first && first <= last && last <= end());
    iterator tail = std::move(last, end(), first);
    std::destroy(tail, end());
    size_ = static_cast<std::size_t>(tail - begin());
    return first;
  }

  // Destroys the elements but keeps the current buffer (heap capacity is
  // retained, exactly like std::vector::clear).
  void clear() noexcept {
    DestroyAll();
    size_ = 0;
  }

  void resize(std::size_t count) {
    if (count < size_) {
      std::destroy(data_ + count, data_ + size_);
      size_ = count;
      return;
    }
    reserve(count);
    while (size_ < count) emplace_back();
  }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(a.data_[i] == b.data_[i])) return false;
    }
    return true;
  }

 private:
  T* InlineData() noexcept {
    return std::launder(reinterpret_cast<T*>(inline_storage_));
  }
  const T* InlineData() const noexcept {
    return std::launder(reinterpret_cast<const T*>(inline_storage_));
  }

  void DestroyAll() noexcept { std::destroy(data_, data_ + size_); }

  void ReleaseHeap() noexcept {
    if (!is_inline()) {
      std::allocator<T>{}.deallocate(data_, capacity_);
      data_ = InlineData();
      capacity_ = N;
    }
  }

  // Precondition: *this is empty and inline. Leaves `other` empty (but
  // with its heap capacity intact when it had one — matching the moved-
  // from state of std::vector closely enough for reuse in a loop).
  void StealOrMoveFrom(SmallVec& other) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    if (!other.is_inline()) {
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.InlineData();
      other.size_ = 0;
      other.capacity_ = N;
      return;
    }
    for (std::size_t i = 0; i < other.size_; ++i) {
      std::construct_at(data_ + i, std::move(other.data_[i]));
    }
    size_ = other.size_;
    other.DestroyAll();
    other.size_ = 0;
  }

  void Grow(std::size_t want) {
    std::size_t new_cap = capacity_ * 2;
    if (new_cap < want) new_cap = want;
    T* new_data = std::allocator<T>{}.allocate(new_cap);
    std::size_t moved = 0;
    try {
      for (; moved < size_; ++moved) {
        std::construct_at(new_data + moved,
                          std::move_if_noexcept(data_[moved]));
      }
    } catch (...) {
      std::destroy(new_data, new_data + moved);
      std::allocator<T>{}.deallocate(new_data, new_cap);
      throw;
    }
    DestroyAll();
    ReleaseHeap();
    data_ = new_data;
    capacity_ = new_cap;
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_;
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace smst
