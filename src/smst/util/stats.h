// Small descriptive-statistics helpers used by the benches (means over
// seeds, spread of awake distributions, percentiles of wake times).
#pragma once

#include <cstdint>
#include <vector>

namespace smst {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double median = 0.0;
};

// Summarizes a sample; empty input yields a zero Summary.
Summary Summarize(const std::vector<double>& values);

// The q-quantile (0 <= q <= 1) by linear interpolation on the sorted
// sample. Precondition: values non-empty.
double Quantile(std::vector<double> values, double q);

// Geometric mean of strictly positive values (ratios across sweeps).
// Empty input yields 0. A value <= 0 (or NaN) throws std::domain_error in
// every build type: the Release builds used to slide through
// log(0) = -inf and silently return 0, which reads as "ratio collapsed
// to zero" in a sweep table — a loud failure beats a fabricated number,
// and callers averaging ratios that can legitimately be zero should
// filter (and count) those first.
double GeometricMean(const std::vector<double>& values);

}  // namespace smst
