#include "smst/util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

namespace smst {

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.min = values.front();
  s.max = values.front();
  double sum = 0.0;
  for (double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(s.count);
  double ss = 0.0;
  for (double v : values) ss += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(ss / static_cast<double>(s.count));
  s.median = Quantile(values, 0.5);
  return s;
}

double Quantile(std::vector<double> values, double q) {
  assert(!values.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    if (!(v > 0.0)) {  // also catches NaN
      throw std::domain_error(
          "GeometricMean requires strictly positive values, got " +
          std::to_string(v));
    }
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace smst
