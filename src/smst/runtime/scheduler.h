// The sleeping-model round engine.
//
// Semantics (normative, see DESIGN.md §4):
//  * A node is awake in round r iff it co_awaited Awake(r, sends).
//  * At round r the scheduler gathers the sends of every round-r awake
//    node, delivers each message iff the *target* is also awake in round
//    r (otherwise drops it and counts it — sleeping nodes lose messages),
//    then resumes every round-r awake node with its inbox.
//  * Rounds with no awake node are skipped in O(log n) time, so an
//    execution with huge round counts (the deterministic algorithm's
//    O(nN log n)) costs only Σ awake node-rounds of simulation work.
//
// Fault injection (DESIGN.md §10): a FaultPlan installed on
// SchedulerOptions is consulted at delivery time (drop / delay /
// duplicate verdicts per message) and at wake registration (jitter,
// crash-stop). With a null plan every fault branch is a single
// well-predicted null/flag check and the engine is bit-identical to the
// fault-free build. An optional Auditor observes the same hook points;
// its call sites compile out under -DSMST_NO_AUDITOR.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "smst/faults/fault_plan.h"
#include "smst/graph/graph.h"
#include "smst/runtime/message.h"
#include "smst/runtime/metrics.h"
#include "smst/runtime/trace.h"

namespace smst {

class Auditor;

using Round = std::uint64_t;

// One suspended Awake(...) call; lives inside the awaiting coroutine's
// frame (stable while suspended). Defined here so the scheduler can hold
// pointers to it; constructed by NodeContext. The batches are SmallVecs
// with inline capacity, so a typical awake (degree-bounded sends and
// inbox) costs no heap allocation at all.
struct PendingWake {
  NodeIndex node = kInvalidNode;
  Round round = 0;
  SendBatch sends;
  InboxBatch inbox;
  void* handle_address = nullptr;  // std::coroutine_handle<> address
};

struct SchedulerOptions {
  // Watchdog: abort (NonTerminationError) if the round clock passes this.
  Round max_rounds = std::uint64_t{1} << 62;
  // Borrowed fault plan; null or empty = the fault-free engine. The
  // adversary stream is derived from plan->salt ^ run_seed.
  const FaultPlan* fault_plan = nullptr;
  std::uint64_t run_seed = 0;
  // Borrowed runtime invariant auditor (observation only); may be null.
  // Ignored when the library is built with SMST_NO_AUDITOR.
  Auditor* auditor = nullptr;
};

class Scheduler {
 public:
  Scheduler(const WeightedGraph& graph, Metrics& metrics,
            SchedulerOptions options);
  // Fault-free convenience ctor (tests drive the scheduler directly).
  Scheduler(const WeightedGraph& graph, Metrics& metrics, Round max_rounds)
      : Scheduler(graph, metrics, SchedulerOptions{max_rounds}) {}

  // Registers a suspended node; called from the Awake awaitable. Under an
  // active fault plan the requested round may be jittered or clamped (to
  // current_round + 1), and a crash-stopped node's registration is
  // swallowed entirely — its coroutine stays suspended forever.
  void Register(PendingWake* wake);

  // Runs rounds until no node is pending. Throws NonTerminationError if
  // `max_rounds` is exceeded (runaway algorithm watchdog) and
  // std::logic_error if one node was registered awake twice in a round.
  void RunUntilIdle();

  Round CurrentRound() const { return current_round_; }
  bool HasPending() const { return !heap_.empty(); }

  void SetTraceSink(TraceSink sink) { trace_ = std::move(sink); }

  // What the adversary did so far (all zero for a null plan).
  const FaultStats& InjectedFaults() const { return faults_.Stats(); }

 private:
  // Pending wakes live in a binary min-heap of (round, seq, bucket)
  // entries over a pool of reusable bucket vectors. Consecutive
  // registrations for the same round — the dominant pattern, since a
  // block of simultaneously-awake nodes schedules its next block from
  // one RunRound — append to the open bucket in O(1); a new round costs
  // one O(log R) heap push. Compared with the ordered map this
  // replaced, the hot path does zero steady-state allocation: buckets,
  // the heap's backing vector, and the per-round scratch buffers below
  // all recycle their capacity across the run's millions of rounds.
  //
  // The seq tiebreak keeps resume order FIFO in registration order (a
  // bucket holds a contiguous registration subsequence, and buckets of
  // one round pop in first-seq order), matching the map bit for bit.
  struct QueueEntry {
    Round round;
    std::uint64_t seq;
    std::uint32_t bucket;
    bool operator>(const QueueEntry& o) const {
      return round != o.round ? round > o.round : seq > o.seq;
    }
  };
  static constexpr std::uint32_t kNoBucket = ~std::uint32_t{0};

  // An adversary-delayed message parked until its due round. Ordered by
  // (due, seq) so the drain order — hence duplicate inbox order and drop
  // attribution — is deterministic.
  struct DelayedMessage {
    Round due;
    std::uint64_t seq;
    NodeIndex src;
    NodeIndex dst;
    std::uint32_t dst_port;
    Message msg;
    bool operator>(const DelayedMessage& o) const {
      return due != o.due ? due > o.due : seq > o.seq;
    }
  };

  // Per-waker trace scratch for one round (allocated only when tracing).
  struct TraceCounts {
    std::uint32_t dropped = 0;         // model drops (receiver asleep)
    std::uint32_t injected_drops = 0;  // adversary-destroyed sends
    std::uint32_t injected_delays = 0;
    std::uint32_t injected_dups = 0;
  };

  // Runs round `r` for the wakes staged in `round_wakers_`.
  void RunRound(Round r);
  // Delivers or expires delayed messages with due <= r; called after
  // awake_now_ is populated for round r (and with r = kMaxRound at the
  // end of the run, expiring everything still parked).
  void DrainDelayed(Round r);

  const WeightedGraph& graph_;
  Metrics& metrics_;
  Round max_rounds_;
  Round current_round_ = 0;
  FaultSession faults_;
  Auditor* auditor_ = nullptr;
  std::vector<QueueEntry> heap_;
  std::uint64_t next_seq_ = 0;
  std::vector<std::vector<PendingWake*>> buckets_;
  std::vector<std::uint32_t> free_buckets_;
  // Fast path: the bucket the last registration went into.
  Round open_round_ = 0;
  std::uint32_t open_bucket_ = kNoBucket;
  // Scratch reused every round: the current round's wakes and (when
  // tracing) their fault/drop counts.
  std::vector<PendingWake*> round_wakers_;
  std::vector<TraceCounts> round_trace_;
  // node -> its PendingWake for the round being processed (else null).
  std::vector<PendingWake*> awake_now_;
  // Min-heap of adversary-delayed messages (std::*_heap with
  // std::greater); empty for a null plan.
  std::vector<DelayedMessage> delayed_;
  std::uint64_t delayed_seq_ = 0;
  // CSR over ports, aligned with WeightedGraph's port tables:
  // reverse_ports_[port_offset_[v] + p] is the port index *at the
  // neighbor* for node v's port p. Precomputed so delivery resolves the
  // receiver's port with one load instead of a GetEdge + endpoint
  // comparison per message.
  std::vector<std::size_t> port_offset_;   // size n+1
  std::vector<std::uint32_t> reverse_ports_;
  // Scratch bitset reused by Register's duplicate-port check for nodes
  // of degree > 64 (sized to the max degree once; cleared per use).
  std::vector<std::uint64_t> seen_ports_scratch_;
  TraceSink trace_;
};

}  // namespace smst
