// The sleeping-model round engine.
//
// Semantics (normative, see DESIGN.md §4):
//  * A node is awake in round r iff it co_awaited Awake(r, sends).
//  * At round r the scheduler gathers the sends of every round-r awake
//    node, delivers each message iff the *target* is also awake in round
//    r (otherwise drops it and counts it — sleeping nodes lose messages),
//    then resumes every round-r awake node with its inbox.
//  * Rounds with no awake node are skipped in O(log n) time, so an
//    execution with huge round counts (the deterministic algorithm's
//    O(nN log n)) costs only Σ awake node-rounds of simulation work.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "smst/graph/graph.h"
#include "smst/runtime/message.h"
#include "smst/runtime/metrics.h"
#include "smst/runtime/trace.h"

namespace smst {

using Round = std::uint64_t;

// One suspended Awake(...) call; lives inside the awaiting coroutine's
// frame (stable while suspended). Defined here so the scheduler can hold
// pointers to it; constructed by NodeContext. The batches are SmallVecs
// with inline capacity, so a typical awake (degree-bounded sends and
// inbox) costs no heap allocation at all.
struct PendingWake {
  NodeIndex node = kInvalidNode;
  Round round = 0;
  SendBatch sends;
  InboxBatch inbox;
  void* handle_address = nullptr;  // std::coroutine_handle<> address
};

class Scheduler {
 public:
  Scheduler(const WeightedGraph& graph, Metrics& metrics,
            Round max_rounds);

  // Registers a suspended node; called from the Awake awaitable.
  void Register(PendingWake* wake);

  // Runs rounds until no node is pending. Throws std::runtime_error if
  // `max_rounds` is exceeded (runaway algorithm watchdog) and
  // std::logic_error if one node was registered awake twice in a round.
  void RunUntilIdle();

  Round CurrentRound() const { return current_round_; }
  bool HasPending() const { return !heap_.empty(); }

  void SetTraceSink(TraceSink sink) { trace_ = std::move(sink); }

 private:
  // Pending wakes live in a binary min-heap of (round, seq, bucket)
  // entries over a pool of reusable bucket vectors. Consecutive
  // registrations for the same round — the dominant pattern, since a
  // block of simultaneously-awake nodes schedules its next block from
  // one RunRound — append to the open bucket in O(1); a new round costs
  // one O(log R) heap push. Compared with the ordered map this
  // replaced, the hot path does zero steady-state allocation: buckets,
  // the heap's backing vector, and the per-round scratch buffers below
  // all recycle their capacity across the run's millions of rounds.
  //
  // The seq tiebreak keeps resume order FIFO in registration order (a
  // bucket holds a contiguous registration subsequence, and buckets of
  // one round pop in first-seq order), matching the map bit for bit.
  struct QueueEntry {
    Round round;
    std::uint64_t seq;
    std::uint32_t bucket;
    bool operator>(const QueueEntry& o) const {
      return round != o.round ? round > o.round : seq > o.seq;
    }
  };
  static constexpr std::uint32_t kNoBucket = ~std::uint32_t{0};

  // Runs round `r` for the wakes staged in `round_wakers_`.
  void RunRound(Round r);

  const WeightedGraph& graph_;
  Metrics& metrics_;
  Round max_rounds_;
  Round current_round_ = 0;
  std::vector<QueueEntry> heap_;
  std::uint64_t next_seq_ = 0;
  std::vector<std::vector<PendingWake*>> buckets_;
  std::vector<std::uint32_t> free_buckets_;
  // Fast path: the bucket the last registration went into.
  Round open_round_ = 0;
  std::uint32_t open_bucket_ = kNoBucket;
  // Scratch reused every round: the current round's wakes and (when
  // tracing) their drop counts.
  std::vector<PendingWake*> round_wakers_;
  std::vector<std::uint32_t> round_drops_;
  // node -> its PendingWake for the round being processed (else null).
  std::vector<PendingWake*> awake_now_;
  // CSR over ports, aligned with WeightedGraph's port tables:
  // reverse_ports_[port_offset_[v] + p] is the port index *at the
  // neighbor* for node v's port p. Precomputed so delivery resolves the
  // receiver's port with one load instead of a GetEdge + endpoint
  // comparison per message.
  std::vector<std::size_t> port_offset_;   // size n+1
  std::vector<std::uint32_t> reverse_ports_;
  // Scratch bitset reused by Register's duplicate-port check for nodes
  // of degree > 64 (sized to the max degree once; cleared per use).
  std::vector<std::uint64_t> seen_ports_scratch_;
  TraceSink trace_;
};

}  // namespace smst
