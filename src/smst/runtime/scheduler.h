// The sleeping-model round engine.
//
// Semantics (normative, see DESIGN.md §4):
//  * A node is awake in round r iff it co_awaited Awake(r, sends).
//  * At round r the scheduler gathers the sends of every round-r awake
//    node, delivers each message iff the *target* is also awake in round
//    r (otherwise drops it and counts it — sleeping nodes lose messages),
//    then resumes every round-r awake node with its inbox.
//  * Rounds with no awake node are skipped in O(log n) time, so an
//    execution with huge round counts (the deterministic algorithm's
//    O(nN log n)) costs only Σ awake node-rounds of simulation work.
//
// Fault injection (DESIGN.md §10): a FaultPlan installed on
// SchedulerOptions is consulted at delivery time (drop / delay /
// duplicate verdicts per message) and at wake registration (jitter,
// crash-stop). With a null plan every fault branch is a single
// well-predicted null/flag check and the engine is bit-identical to the
// fault-free build. An optional Auditor observes the same hook points;
// its call sites compile out under -DSMST_NO_AUDITOR.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "smst/faults/fault_plan.h"
#include "smst/graph/graph.h"
#include "smst/runtime/message.h"
#include "smst/runtime/metrics.h"
#include "smst/runtime/trace.h"

namespace smst {

class Auditor;
class ShardedEngine;
class FlatEngine;

using Round = std::uint64_t;

// One suspended Awake(...) call; lives inside the awaiting coroutine's
// frame (stable while suspended). Defined here so the scheduler can hold
// pointers to it; constructed by NodeContext. The batches are SmallVecs
// with inline capacity, so a typical awake (degree-bounded sends and
// inbox) costs no heap allocation at all.
struct PendingWake {
  NodeIndex node = kInvalidNode;
  Round round = 0;
  SendBatch sends;
  InboxBatch inbox;
  void* handle_address = nullptr;  // std::coroutine_handle<> address
};

// Advances one flat (coroutine-less) node when its wake comes due: the
// scheduler resumes a PendingWake whose handle_address is null by calling
// the installed stepper instead of a coroutine handle (runtime/flat/).
// The stepper owns the node's state machine; the wake's inbox/sends are
// its mailbox exactly as for a suspended coroutine.
class FlatStepper {
 public:
  virtual ~FlatStepper() = default;
  virtual void Step(PendingWake& wake) = 0;
};

struct SchedulerOptions {
  // Watchdog: abort (NonTerminationError) if the round clock passes this.
  Round max_rounds = std::uint64_t{1} << 62;
  // Borrowed fault plan; null or empty = the fault-free engine. The
  // adversary stream is derived from plan->salt ^ run_seed.
  const FaultPlan* fault_plan = nullptr;
  std::uint64_t run_seed = 0;
  // Borrowed runtime invariant auditor (observation only); may be null.
  // Ignored when the library is built with SMST_NO_AUDITOR.
  Auditor* auditor = nullptr;
};

class Scheduler {
 public:
  Scheduler(const WeightedGraph& graph, Metrics& metrics,
            SchedulerOptions options);
  // Fault-free convenience ctor (tests drive the scheduler directly).
  Scheduler(const WeightedGraph& graph, Metrics& metrics, Round max_rounds)
      : Scheduler(graph, metrics, SchedulerOptions{max_rounds}) {}

  // Registers a suspended node; called from the Awake awaitable. Under an
  // active fault plan the requested round may be jittered or clamped (to
  // current_round + 1), and a crash-stopped node's registration is
  // swallowed entirely — its coroutine stays suspended forever.
  void Register(PendingWake* wake);

  // Runs rounds until no node is pending. Throws NonTerminationError if
  // `max_rounds` is exceeded (runaway algorithm watchdog) and
  // std::logic_error if one node was registered awake twice in a round.
  void RunUntilIdle();

  Round CurrentRound() const { return current_round_; }
  bool HasPending() const { return !heap_.empty(); }
  // Earliest round with a registered wake (kMaxRound if none). The
  // sharded driver's round barrier reduces this over all shards to pick
  // the next global round; delayed messages never create rounds (one
  // parked for a round nobody wakes in is lost, as in the serial engine).
  Round NextPendingRound() const {
    return heap_.empty() ? kMaxRound : heap_.front().round;
  }

  void SetTraceSink(TraceSink sink) { trace_ = std::move(sink); }

  // Installs the handler for flat wakes (PendingWakes with a null
  // handle_address). Must outlive the run; null means every wake is a
  // coroutine wake.
  void SetFlatStepper(FlatStepper* stepper) { flat_stepper_ = stepper; }

  // What the adversary did so far (all zero for a null plan).
  const FaultStats& InjectedFaults() const { return faults_.Stats(); }

 private:
  // The sharded engine (runtime/sharded/engine.cpp) drives the same
  // staging / delivery / resume machinery phase by phase across worker
  // threads; it is the one sanctioned out-of-module user of these
  // internals (DESIGN.md §12). The flat fast engine (runtime/flat/
  // engine.cpp) borrows the precomputed CSR reverse-port tables so both
  // engines resolve receiver ports from one shared layout (DESIGN.md §13).
  friend class ShardedEngine;
  friend class FlatEngine;

  // Pending wakes live in a binary min-heap of (round, seq, bucket)
  // entries over a pool of reusable bucket vectors. Consecutive
  // registrations for the same round — the dominant pattern, since a
  // block of simultaneously-awake nodes schedules its next block from
  // one RunRound — append to the open bucket in O(1); a new round costs
  // one O(log R) heap push. Compared with the ordered map this
  // replaced, the hot path does zero steady-state allocation: buckets,
  // the heap's backing vector, and the per-round scratch buffers below
  // all recycle their capacity across the run's millions of rounds.
  //
  // The seq tiebreak gives the heap a strict order (buckets of one round
  // pop in registration order); the staged wakers are then sorted into
  // the canonical ascending-node-index round order (DESIGN.md §7), which
  // is what keeps serial and sharded executions bit-identical.
  struct QueueEntry {
    Round round;
    std::uint64_t seq;
    std::uint32_t bucket;
    bool operator>(const QueueEntry& o) const {
      return round != o.round ? round > o.round : seq > o.seq;
    }
  };
  static constexpr std::uint32_t kNoBucket = ~std::uint32_t{0};

  // An adversary-delayed message parked until its due round. Ordered by
  // the canonical key (due, birth_round, src, batch_pos, copy) — the
  // message's invariant coordinates rather than an insertion counter —
  // so the drain order (hence duplicate inbox order and drop
  // attribution) is deterministic *and* independent of which shard
  // parked the message. With the canonical ascending-node round order,
  // this key sorts exactly like the serial insertion order did.
  struct DelayedMessage {
    Round due;
    Round birth_round;  // the round the message was sent in
    NodeIndex src;
    std::uint32_t batch_pos;  // index within the sender's send batch
    std::uint8_t copy;        // 0 = original, 1 = adversary duplicate
    NodeIndex dst;
    std::uint32_t dst_port;
    Message msg;
    bool operator>(const DelayedMessage& o) const {
      if (due != o.due) return due > o.due;
      if (birth_round != o.birth_round) return birth_round > o.birth_round;
      if (src != o.src) return src > o.src;
      if (batch_pos != o.batch_pos) return batch_pos > o.batch_pos;
      return copy > o.copy;
    }
  };

  // Per-waker trace scratch for one round (allocated only when tracing).
  struct TraceCounts {
    std::uint32_t dropped = 0;         // model drops (receiver asleep)
    std::uint32_t injected_drops = 0;  // adversary-destroyed sends
    std::uint32_t injected_delays = 0;
    std::uint32_t injected_dups = 0;
  };

  // Pops every bucket of round `r` into round_wakers_, sorts them into
  // the canonical ascending-node order, populates awake_now_ (throwing
  // on double registration), and advances the round clock. Staging no
  // wakers (the shard has nothing due in a global round) is legal.
  void StageRound(Round r);
  // Serial remainder of a round for the staged wakers: drain delayed
  // messages, deliver sends, resume. The sharded engine replaces this
  // with its collect / exchange / receive phases.
  void DeliverAndResume();
  // Delivers or expires delayed messages with due <= r; called after
  // awake_now_ is populated for round r (and with r = kMaxRound at the
  // end of the run, expiring everything still parked).
  void DrainDelayed(Round r);

  const WeightedGraph& graph_;
  Metrics& metrics_;
  Round max_rounds_;
  Round current_round_ = 0;
  FaultSession faults_;
  Auditor* auditor_ = nullptr;
  std::vector<QueueEntry> heap_;
  std::uint64_t next_seq_ = 0;
  std::vector<std::vector<PendingWake*>> buckets_;
  std::vector<std::uint32_t> free_buckets_;
  // Fast path: the bucket the last registration went into.
  Round open_round_ = 0;
  std::uint32_t open_bucket_ = kNoBucket;
  // Scratch reused every round: the current round's wakes and (when
  // tracing) their fault/drop counts.
  std::vector<PendingWake*> round_wakers_;
  std::vector<TraceCounts> round_trace_;
  // node -> its PendingWake for the round being processed (else null).
  std::vector<PendingWake*> awake_now_;
  // Min-heap of adversary-delayed messages (std::*_heap with
  // std::greater); empty for a null plan.
  std::vector<DelayedMessage> delayed_;
  // CSR over ports, aligned with WeightedGraph's port tables:
  // reverse_ports_[port_offset_[v] + p] is the port index *at the
  // neighbor* for node v's port p. Precomputed so delivery resolves the
  // receiver's port with one load instead of a GetEdge + endpoint
  // comparison per message.
  std::vector<std::size_t> port_offset_;   // size n+1
  std::vector<std::uint32_t> reverse_ports_;
  // Scratch bitset reused by Register's duplicate-port check for nodes
  // of degree > 64 (sized to the max degree once; cleared per use).
  std::vector<std::uint64_t> seen_ports_scratch_;
  TraceSink trace_;
  FlatStepper* flat_stepper_ = nullptr;
};

}  // namespace smst
