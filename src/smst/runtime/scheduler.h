// The sleeping-model round engine.
//
// Semantics (normative, see DESIGN.md §4):
//  * A node is awake in round r iff it co_awaited Awake(r, sends).
//  * At round r the scheduler gathers the sends of every round-r awake
//    node, delivers each message iff the *target* is also awake in round
//    r (otherwise drops it and counts it — sleeping nodes lose messages),
//    then resumes every round-r awake node with its inbox.
//  * Rounds with no awake node are skipped in O(log n) time, so an
//    execution with huge round counts (the deterministic algorithm's
//    O(nN log n)) costs only Σ awake node-rounds of simulation work.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "smst/graph/graph.h"
#include "smst/runtime/message.h"
#include "smst/runtime/metrics.h"
#include "smst/runtime/trace.h"

namespace smst {

using Round = std::uint64_t;

// One suspended Awake(...) call; lives inside the awaiting coroutine's
// frame (stable while suspended). Defined here so the scheduler can hold
// pointers to it; constructed by NodeContext.
struct PendingWake {
  NodeIndex node = kInvalidNode;
  Round round = 0;
  std::vector<OutMessage> sends;
  std::vector<InMessage> inbox;
  void* handle_address = nullptr;  // std::coroutine_handle<> address
};

class Scheduler {
 public:
  Scheduler(const WeightedGraph& graph, Metrics& metrics,
            Round max_rounds);

  // Registers a suspended node; called from the Awake awaitable.
  void Register(PendingWake* wake);

  // Runs rounds until no node is pending. Throws std::runtime_error if
  // `max_rounds` is exceeded (runaway algorithm watchdog).
  void RunUntilIdle();

  Round CurrentRound() const { return current_round_; }
  bool HasPending() const { return !queue_.empty(); }

  void SetTraceSink(TraceSink sink) { trace_ = std::move(sink); }

 private:
  void RunRound(Round r, std::vector<PendingWake*> wakers);

  const WeightedGraph& graph_;
  Metrics& metrics_;
  Round max_rounds_;
  Round current_round_ = 0;
  std::map<Round, std::vector<PendingWake*>> queue_;
  // node -> its PendingWake for the round being processed (else null).
  std::vector<PendingWake*> awake_now_;
  // edge -> (port index at edge.u, port index at edge.v), precomputed so
  // delivery resolves the receiver's port in O(1).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_ports_;
  TraceSink trace_;
};

}  // namespace smst
