// NodeContext: the complete world as one node sees it.
//
// This is the only interface algorithm code may touch. It exposes exactly
// the paper's initial knowledge — own ID, n, N, degree, incident edge
// weights (by port), the round clock, and a private randomness source —
// plus the single model primitive:
//
//   InboxBatch received =
//       co_await ctx.Awake(round, {{port, msg}, ...});
//
// "Be asleep until `round`, be awake in `round`, send these messages, and
// receive whatever arrives from simultaneously-awake neighbors." Sleeping
// costs nothing; every Awake costs one awake round on the meter.
//
// Deliberately absent: neighbor identities (learned only via messages),
// any global state, other nodes' metrics.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <utility>
#include <vector>

#include "smst/graph/graph.h"
#include "smst/runtime/message.h"
#include "smst/runtime/metrics.h"
#include "smst/runtime/scheduler.h"
#include "smst/util/prng.h"

namespace smst {

class NodeContext {
 public:
  NodeContext(const WeightedGraph& graph, NodeIndex index,
              Scheduler& scheduler, Metrics& metrics, Xoshiro256 rng)
      : graph_(graph),
        index_(index),
        scheduler_(scheduler),
        metrics_(metrics),
        rng_(std::move(rng)) {}

  NodeContext(const NodeContext&) = delete;
  NodeContext& operator=(const NodeContext&) = delete;

  // --- the paper's initial knowledge -----------------------------------
  NodeId Id() const { return graph_.IdOf(index_); }
  std::size_t NumNodesKnown() const { return graph_.NumNodes(); }  // n
  NodeId MaxIdKnown() const { return graph_.MaxId(); }             // N
  std::size_t Degree() const { return graph_.DegreeOf(index_); }
  Weight WeightAtPort(std::uint32_t port) const {
    return graph_.PortsOf(index_)[port].weight;
  }
  Round CurrentRound() const { return scheduler_.CurrentRound(); }
  Xoshiro256& Rng() { return rng_; }

  // --- the model primitive ---------------------------------------------
  struct AwakeAwaiter {
    NodeContext* ctx;
    PendingWake wake;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      wake.handle_address = h.address();
      ctx->scheduler_.Register(&wake);
    }
    InboxBatch await_resume() { return std::move(wake.inbox); }
  };

  // Be awake in absolute round `round` (strictly after the current round)
  // and send `sends` (at most one message per port). The batches are
  // SmallVecs (message.h): up to kInlineMessageCapacity sends/receipts
  // stay inside the coroutine frame, so a typical awake allocates
  // nothing.
  AwakeAwaiter Awake(Round round, SendBatch sends = {}) {
    return AwakeAwaiter{
        this, PendingWake{index_, round, std::move(sends), {}, nullptr}};
  }

  // Single-send convenience. (Also sidesteps a GCC bug where a braced
  // initializer-list inside a co_await expression fails to compile:
  // "array used as initializer", GCC PR 102489.)
  AwakeAwaiter Awake(Round round, OutMessage send) {
    SendBatch sends;
    sends.push_back(std::move(send));
    return Awake(round, std::move(sends));
  }

  // Declares the round in which this node's program terminates locally;
  // extends the run-time meter past trailing sleeping rounds (run time
  // counts sleeping rounds too, per the model).
  void ReportTermination(Round round) { metrics_.ExtendRun(round); }

  // --- out-of-band telemetry (benches only; no effect on execution) ----
  void Probe(std::uint32_t kind, std::uint64_t key, std::int64_t delta = 1) {
    metrics_.Probe(kind, key, delta);
  }

  // Simulation-internal identity (used by algorithms only to index their
  // own output arrays; carries no model information a node lacks, since
  // outputs could equally be keyed by ID).
  NodeIndex Index() const { return index_; }

 private:
  const WeightedGraph& graph_;
  NodeIndex index_;
  Scheduler& scheduler_;
  Metrics& metrics_;
  Xoshiro256 rng_;
};

}  // namespace smst
