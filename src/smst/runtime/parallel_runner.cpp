#include "smst/runtime/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <thread>

namespace smst {

ParallelRunner::ParallelRunner(unsigned threads) : threads_(threads) {
  if (threads_ == 0) threads_ = std::thread::hardware_concurrency();
  if (threads_ == 0) threads_ = 1;
}

void ParallelRunner::ForEach(
    std::size_t count, const std::function<void(std::size_t)>& fn) const {
  if (count == 0) return;

  // Each index owns a slot, so a failure is reported for exactly the job
  // that raised it and rethrown in submission order below.
  std::vector<std::exception_ptr> failures(count);

  const std::size_t workers =
      std::min<std::size_t>(threads_, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (...) {
        failures[i] = std::current_exception();
      }
    }
  } else {
    std::atomic<std::size_t> cursor{0};
    auto worker = [&]() {
      for (;;) {
        const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          fn(i);
        } catch (...) {
          failures[i] = std::current_exception();
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  for (const std::exception_ptr& e : failures) {
    if (e) std::rethrow_exception(e);
  }
}

std::vector<MstRunResult> ParallelRunner::RunAll(
    const std::vector<RunSpec>& specs) const {
  std::vector<MstRunResult> results(specs.size());
  ForEach(specs.size(), [&](std::size_t i) {
    const RunSpec& spec = specs[i];
    if (spec.graph == nullptr) {
      throw std::invalid_argument("RunSpec.graph is null");
    }
    MstOptions options = spec.options;
    if (spec.seed != 0) options.seed = spec.seed;
    results[i] = ComputeMst(*spec.graph, spec.algorithm, options);
  });
  return results;
}

}  // namespace smst
