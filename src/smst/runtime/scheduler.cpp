#include "smst/runtime/scheduler.h"

#include <algorithm>
#include <cassert>
#include <coroutine>
#include <stdexcept>
#include <string>

#include "smst/faults/auditor.h"
#include "smst/faults/run_outcome.h"

// Auditor call sites compile to a single null check by default; a build
// configured with -DSMST_NO_AUDITOR=ON removes them entirely.
#ifdef SMST_NO_AUDITOR
#define SMST_AUDIT_HOOK(call) ((void)0)
#else
#define SMST_AUDIT_HOOK(call) \
  do {                        \
    if (auditor_) {           \
      auditor_->call;         \
    }                         \
  } while (0)
#endif

namespace smst {

Scheduler::Scheduler(const WeightedGraph& graph, Metrics& metrics,
                     SchedulerOptions options)
    : graph_(graph),
      metrics_(metrics),
      max_rounds_(options.max_rounds),
      faults_(options.fault_plan, options.run_seed, graph.NumNodes()),
      auditor_(options.auditor),
      awake_now_(graph.NumNodes(), nullptr),
      port_offset_(graph.NumNodes() + 1, 0) {
  std::size_t max_degree = 0;
  for (NodeIndex v = 0; v < graph_.NumNodes(); ++v) {
    const std::size_t deg = graph_.DegreeOf(v);
    port_offset_[v + 1] = port_offset_[v] + deg;
    max_degree = std::max(max_degree, deg);
  }
  // edge -> (port index at edge.u, port index at edge.v), then flattened
  // into the per-(node, port) reverse-port table the delivery loop reads.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_ports(
      graph.NumEdges());
  for (NodeIndex v = 0; v < graph_.NumNodes(); ++v) {
    std::uint32_t port_index = 0;
    for (const Port& p : graph_.PortsOf(v)) {
      if (graph_.GetEdge(p.edge).u == v) edge_ports[p.edge].first = port_index;
      else edge_ports[p.edge].second = port_index;
      ++port_index;
    }
  }
  reverse_ports_.resize(port_offset_.back());
  for (NodeIndex v = 0; v < graph_.NumNodes(); ++v) {
    std::uint32_t port_index = 0;
    for (const Port& p : graph_.PortsOf(v)) {
      reverse_ports_[port_offset_[v] + port_index] =
          graph_.GetEdge(p.edge).u == p.neighbor ? edge_ports[p.edge].first
                                                 : edge_ports[p.edge].second;
      ++port_index;
    }
  }
  if (max_degree > 64) {
    seen_ports_scratch_.resize((max_degree + 63) / 64);
  }
}

void Scheduler::Register(PendingWake* wake) {
  assert(wake != nullptr);
  assert(wake->node < graph_.NumNodes());
  if (faults_.Active()) {
    // Jitter may move the wake in either direction; clamping (rather than
    // the monotonicity throw below) keeps perturbed runs legal — from the
    // node's point of view the adversary skewed its clock. Crash-stop
    // swallows the registration entirely: the coroutine stays suspended
    // with no queue entry, and Task's destructor reclaims the frame.
    wake->round =
        faults_.PerturbWake(wake->node, wake->round, current_round_ + 1);
    if (faults_.SuppressWake(wake->node, wake->round)) return;
  } else if (wake->round <= current_round_) {
    throw std::logic_error(
        "node " + std::to_string(wake->node) + " requested awake round " +
        std::to_string(wake->round) + " but the clock is already at " +
        std::to_string(current_round_));
  }
  // CONGEST: at most one message per port per round. In a fault-free run
  // a double-send is a programming bug (logic_error, never classified);
  // under an active adversary a duplicated or delayed inbox can trick a
  // correct protocol into replying twice on one port, so the violation is
  // a fault effect and must stay classifiable (-> crashed-partition).
  const auto double_send = [this](NodeIndex node) -> void {
    const std::string what = "node " + std::to_string(node) +
                             " sent two messages on one port in one round";
    if (faults_.Active()) {
      throw std::runtime_error(what + " (fault-corrupted protocol state)");
    }
    throw std::logic_error("two messages on one port in one round");
  };
  {
    const std::size_t degree = graph_.DegreeOf(wake->node);
    if (degree <= 64) {
      std::uint64_t seen_ports = 0;
      for (const OutMessage& out : wake->sends) {
        if (out.port >= degree) {
          throw std::logic_error("send on nonexistent port");
        }
        if (((seen_ports >> out.port) & 1) != 0) {
          double_send(wake->node);
        }
        seen_ports |= std::uint64_t{1} << out.port;
      }
    } else {
      // Reuse the scheduler-owned scratch bitset (sized to the max
      // degree in the constructor) rather than allocating per awake.
      const std::size_t words = (degree + 63) / 64;
      std::fill_n(seen_ports_scratch_.begin(), words, 0);
      for (const OutMessage& out : wake->sends) {
        if (out.port >= degree) {
          throw std::logic_error("send on nonexistent port");
        }
        std::uint64_t& word = seen_ports_scratch_[out.port / 64];
        const std::uint64_t bit = std::uint64_t{1} << (out.port % 64);
        if ((word & bit) != 0) {
          double_send(wake->node);
        }
        word |= bit;
      }
    }
  }
  if (open_bucket_ != kNoBucket && open_round_ == wake->round) {
    buckets_[open_bucket_].push_back(wake);
    return;
  }
  std::uint32_t b;
  if (!free_buckets_.empty()) {
    b = free_buckets_.back();
    free_buckets_.pop_back();
  } else {
    b = static_cast<std::uint32_t>(buckets_.size());
    buckets_.emplace_back();
  }
  buckets_[b].push_back(wake);
  heap_.push_back(QueueEntry{wake->round, next_seq_++, b});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  open_round_ = wake->round;
  open_bucket_ = b;
}

void Scheduler::RunUntilIdle() {
  while (!heap_.empty()) {
    const Round r = heap_.front().round;
    if (r > max_rounds_) {
      throw NonTerminationError("round watchdog tripped at round " +
                                std::to_string(r) + " (max " +
                                std::to_string(max_rounds_) + ")");
    }
    StageRound(r);
    DeliverAndResume();
  }
  // Delayed messages still parked when every node is done (or crashed)
  // can never be delivered; expire them so the model-drop books balance.
  if (!delayed_.empty()) DrainDelayed(kMaxRound);
}

void Scheduler::StageRound(Round r) {
  current_round_ = r;
  metrics_.SetLastRound(r);
  // Stage every bucket of round r; resumed coroutines push only strictly
  // later rounds (Register enforces it), so the heap front is stable
  // until the round finishes.
  round_wakers_.clear();
  while (!heap_.empty() && heap_.front().round == r) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    std::vector<PendingWake*>& bucket = buckets_[heap_.back().bucket];
    round_wakers_.insert(round_wakers_.end(), bucket.begin(), bucket.end());
    bucket.clear();  // keeps capacity for reuse
    if (open_bucket_ == heap_.back().bucket) open_bucket_ = kNoBucket;
    free_buckets_.push_back(heap_.back().bucket);
    heap_.pop_back();
  }
  // Canonical round order: ascending node index, regardless of
  // registration history. Delivery and resume order therefore depend
  // only on *which* nodes are awake, which is what makes a sharded run
  // bit-identical to a serial one (DESIGN.md §7, §12). Each node appears
  // at most once per round, so the sort key is strict.
  std::sort(round_wakers_.begin(), round_wakers_.end(),
            [](const PendingWake* a, const PendingWake* b) {
              return a->node < b->node;
            });

  for (PendingWake* w : round_wakers_) {
    if (awake_now_[w->node] != nullptr) {
      // Two live PendingWakes for one node would silently clobber each
      // other's delivery state; only direct Register misuse can get here
      // (a coroutine is suspended while its wake is queued), but fail
      // loudly in every build type rather than corrupt the run.
      throw std::logic_error("node " + std::to_string(w->node) +
                             " registered awake twice in round " +
                             std::to_string(r));
    }
    awake_now_[w->node] = w;
    SMST_AUDIT_HOOK(OnAwake(r, w->node));
  }
}

void Scheduler::DrainDelayed(Round r) {
  while (!delayed_.empty() && delayed_.front().due <= r) {
    std::pop_heap(delayed_.begin(), delayed_.end(), std::greater<>{});
    const DelayedMessage m = delayed_.back();
    delayed_.pop_back();
    PendingWake* target = m.due == r ? awake_now_[m.dst] : nullptr;
    if (target != nullptr) {
      // The receiver happens to be awake in the deferred round: the
      // message arrives late but intact.
      target->inbox.push_back(InMessage{m.dst_port, m.msg});
      faults_.CountDelayedDelivered();
      SMST_AUDIT_HOOK(OnDeliver(r, m.src, m.dst, m.msg));
    } else {
      // Due round skipped or receiver asleep: sleeping-model loss,
      // charged to the sender like any other drop.
      ++metrics_.Node(m.src).messages_dropped;
      faults_.CountDelayedLost();
      SMST_AUDIT_HOOK(OnDrop(m.due, m.src, /*injected=*/false));
    }
  }
}

void Scheduler::DeliverAndResume() {
  const Round r = current_round_;

  // Adversary-delayed messages fall due before this round's own sends so
  // a late message and a fresh same-round message arrive in age order.
  if (!delayed_.empty()) DrainDelayed(r);

  // Delivery: same-round send/receive between simultaneously awake
  // endpoints; messages to sleepers are lost (and counted).
  std::vector<PendingWake*>& wakers = round_wakers_;
  round_trace_.assign(trace_ ? wakers.size() : 0, TraceCounts{});
  const bool faulty = faults_.Active();
  for (std::size_t wi = 0; wi < wakers.size(); ++wi) {
    PendingWake* w = wakers[wi];
    NodeMetrics& nm = metrics_.Node(w->node);
    // Hoist the per-node indirections out of the per-send loop: the port
    // table base and the precomputed receiver-port row.
    const Port* ports = graph_.PortsOf(w->node).data();
    const std::uint32_t* reverse = reverse_ports_.data() + port_offset_[w->node];
    for (std::uint32_t bp = 0; bp < w->sends.size(); ++bp) {
      const OutMessage& out = w->sends[bp];
      const Port& port = ports[out.port];
      ++nm.messages_sent;
      const std::uint64_t bits = out.msg.BitSize();
      nm.bits_sent += bits;
      metrics_.RecordMessageBits(bits);
      SMST_AUDIT_HOOK(OnSend(r, w->node, out.port, out.msg));
      if (faulty) {
        const FaultSession::MessageVerdict verdict =
            faults_.OnMessage(w->node, out.port, r);
        if (verdict.drop) {
          // Adversary drop: distinct from the sleeping-model loss below —
          // it does NOT count towards messages_dropped.
          if (trace_) ++round_trace_[wi].injected_drops;
          SMST_AUDIT_HOOK(OnDrop(r, w->node, /*injected=*/true));
          continue;
        }
        if (verdict.delay != 0) {
          delayed_.push_back(DelayedMessage{r + verdict.delay, r, w->node, bp,
                                            /*copy=*/0, port.neighbor,
                                            reverse[out.port], out.msg});
          std::push_heap(delayed_.begin(), delayed_.end(), std::greater<>{});
          if (trace_) ++round_trace_[wi].injected_delays;
          if (verdict.duplicate) {
            // The duplicate of a delayed message is also delayed (one
            // extra copy in the same deferred round).
            delayed_.push_back(DelayedMessage{r + verdict.delay, r, w->node,
                                              bp, /*copy=*/1, port.neighbor,
                                              reverse[out.port], out.msg});
            std::push_heap(delayed_.begin(), delayed_.end(), std::greater<>{});
            if (trace_) ++round_trace_[wi].injected_dups;
          }
          continue;
        }
        PendingWake* target = awake_now_[port.neighbor];
        if (target == nullptr) {
          ++nm.messages_dropped;
          if (trace_) ++round_trace_[wi].dropped;
          SMST_AUDIT_HOOK(OnDrop(r, w->node, /*injected=*/false));
          continue;
        }
        target->inbox.push_back(InMessage{reverse[out.port], out.msg});
        SMST_AUDIT_HOOK(OnDeliver(r, w->node, port.neighbor, out.msg));
        if (verdict.duplicate) {
          target->inbox.push_back(InMessage{reverse[out.port], out.msg});
          if (trace_) ++round_trace_[wi].injected_dups;
          SMST_AUDIT_HOOK(OnDeliver(r, w->node, port.neighbor, out.msg));
        }
        continue;
      }
      PendingWake* target = awake_now_[port.neighbor];
      if (target == nullptr) {
        ++nm.messages_dropped;
        if (trace_) ++round_trace_[wi].dropped;
        SMST_AUDIT_HOOK(OnDrop(r, w->node, /*injected=*/false));
        continue;
      }
      // The receiving side identifies the sender by its own port number
      // for the shared edge (precomputed in reverse_ports_).
      target->inbox.push_back(InMessage{reverse[out.port], out.msg});
      SMST_AUDIT_HOOK(OnDeliver(r, w->node, port.neighbor, out.msg));
    }
  }

  // Resume phase: every awake node gets its inbox and one awake round on
  // the meter, then runs to its next suspension (or completion).
  for (std::size_t wi = 0; wi < wakers.size(); ++wi) {
    PendingWake* w = wakers[wi];
    awake_now_[w->node] = nullptr;
    NodeMetrics& nm = metrics_.Node(w->node);
    ++nm.awake_rounds;
    if (metrics_.WakeTimesEnabled()) nm.wake_times.push_back(r);
    if (trace_) {
      const TraceCounts& tc = round_trace_[wi];
      trace_(TraceEvent{r, w->node,
                        static_cast<std::uint32_t>(w->sends.size()),
                        static_cast<std::uint32_t>(w->inbox.size()),
                        tc.dropped, tc.injected_drops, tc.injected_delays,
                        tc.injected_dups});
    }
    if (w->handle_address == nullptr) {
      // Flat node: no coroutine frame to resume; the installed stepper
      // advances its state machine in place (re-registering `w` itself
      // for the next wake, so the pointer stays valid — it lives in the
      // flat runtime's stable per-node slot, not a coroutine frame).
      flat_stepper_->Step(*w);
      continue;
    }
    auto handle = std::coroutine_handle<>::from_address(w->handle_address);
    // After resume(), `w` may be a dangling pointer (the coroutine frame
    // advanced past the awaitable); do not touch it again.
    handle.resume();
  }
}

}  // namespace smst
