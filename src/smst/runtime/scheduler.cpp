#include "smst/runtime/scheduler.h"

#include <cassert>
#include <coroutine>
#include <stdexcept>
#include <string>

namespace smst {

Scheduler::Scheduler(const WeightedGraph& graph, Metrics& metrics,
                     Round max_rounds)
    : graph_(graph),
      metrics_(metrics),
      max_rounds_(max_rounds),
      awake_now_(graph.NumNodes(), nullptr),
      edge_ports_(graph.NumEdges()) {
  for (NodeIndex v = 0; v < graph_.NumNodes(); ++v) {
    std::uint32_t port_index = 0;
    for (const Port& p : graph_.PortsOf(v)) {
      if (graph_.GetEdge(p.edge).u == v) edge_ports_[p.edge].first = port_index;
      else edge_ports_[p.edge].second = port_index;
      ++port_index;
    }
  }
}

void Scheduler::Register(PendingWake* wake) {
  assert(wake != nullptr);
  assert(wake->node < graph_.NumNodes());
  if (wake->round <= current_round_) {
    throw std::logic_error(
        "node " + std::to_string(wake->node) + " requested awake round " +
        std::to_string(wake->round) + " but the clock is already at " +
        std::to_string(current_round_));
  }
  // CONGEST: at most one message per port per round.
  {
    std::uint64_t seen_ports = 0;  // degrees can exceed 64; fall back below
    bool small = graph_.DegreeOf(wake->node) <= 64;
    std::vector<bool> seen_large;
    if (!small) seen_large.assign(graph_.DegreeOf(wake->node), false);
    for (const OutMessage& out : wake->sends) {
      if (out.port >= graph_.DegreeOf(wake->node)) {
        throw std::logic_error("send on nonexistent port");
      }
      bool dup = small ? ((seen_ports >> out.port) & 1) != 0
                       : seen_large[out.port];
      if (dup) {
        throw std::logic_error("two messages on one port in one round");
      }
      if (small) seen_ports |= std::uint64_t{1} << out.port;
      else seen_large[out.port] = true;
    }
  }
  queue_[wake->round].push_back(wake);
}

void Scheduler::RunUntilIdle() {
  while (!queue_.empty()) {
    auto it = queue_.begin();
    const Round r = it->first;
    if (r > max_rounds_) {
      throw std::runtime_error("round watchdog tripped at round " +
                               std::to_string(r) + " (max " +
                               std::to_string(max_rounds_) + ")");
    }
    std::vector<PendingWake*> wakers = std::move(it->second);
    queue_.erase(it);
    RunRound(r, std::move(wakers));
  }
}

void Scheduler::RunRound(Round r, std::vector<PendingWake*> wakers) {
  current_round_ = r;
  metrics_.SetLastRound(r);

  for (PendingWake* w : wakers) {
    assert(awake_now_[w->node] == nullptr && "node awake twice in a round");
    awake_now_[w->node] = w;
  }

  // Delivery: same-round send/receive between simultaneously awake
  // endpoints; messages to sleepers are lost (and counted).
  std::vector<std::uint32_t> drops_this_round(trace_ ? wakers.size() : 0, 0);
  for (std::size_t wi = 0; wi < wakers.size(); ++wi) {
    PendingWake* w = wakers[wi];
    NodeMetrics& nm = metrics_.Node(w->node);
    for (const OutMessage& out : w->sends) {
      const Port& port = graph_.PortsOf(w->node)[out.port];
      ++nm.messages_sent;
      const std::uint64_t bits = out.msg.BitSize();
      nm.bits_sent += bits;
      metrics_.RecordMessageBits(bits);
      PendingWake* target = awake_now_[port.neighbor];
      if (target == nullptr) {
        ++nm.messages_dropped;
        if (trace_) ++drops_this_round[wi];
        continue;
      }
      // The receiving side identifies the sender by its own port number
      // for the shared edge (precomputed).
      const auto& [port_at_u, port_at_v] = edge_ports_[port.edge];
      const std::uint32_t reverse_port =
          graph_.GetEdge(port.edge).u == port.neighbor ? port_at_u
                                                       : port_at_v;
      target->inbox.push_back(InMessage{reverse_port, out.msg});
    }
  }

  // Resume phase: every awake node gets its inbox and one awake round on
  // the meter, then runs to its next suspension (or completion).
  for (std::size_t wi = 0; wi < wakers.size(); ++wi) {
    PendingWake* w = wakers[wi];
    awake_now_[w->node] = nullptr;
    NodeMetrics& nm = metrics_.Node(w->node);
    ++nm.awake_rounds;
    if (metrics_.WakeTimesEnabled()) nm.wake_times.push_back(r);
    if (trace_) {
      trace_(TraceEvent{r, w->node,
                        static_cast<std::uint32_t>(w->sends.size()),
                        static_cast<std::uint32_t>(w->inbox.size()),
                        drops_this_round[wi]});
    }
    auto handle = std::coroutine_handle<>::from_address(w->handle_address);
    // After resume(), `w` may be a dangling pointer (the coroutine frame
    // advanced past the awaitable); do not touch it again.
    handle.resume();
  }
}

}  // namespace smst
