#include "smst/runtime/scheduler.h"

#include <algorithm>
#include <cassert>
#include <coroutine>
#include <stdexcept>
#include <string>

namespace smst {

Scheduler::Scheduler(const WeightedGraph& graph, Metrics& metrics,
                     Round max_rounds)
    : graph_(graph),
      metrics_(metrics),
      max_rounds_(max_rounds),
      awake_now_(graph.NumNodes(), nullptr),
      port_offset_(graph.NumNodes() + 1, 0) {
  std::size_t max_degree = 0;
  for (NodeIndex v = 0; v < graph_.NumNodes(); ++v) {
    const std::size_t deg = graph_.DegreeOf(v);
    port_offset_[v + 1] = port_offset_[v] + deg;
    max_degree = std::max(max_degree, deg);
  }
  // edge -> (port index at edge.u, port index at edge.v), then flattened
  // into the per-(node, port) reverse-port table the delivery loop reads.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_ports(
      graph.NumEdges());
  for (NodeIndex v = 0; v < graph_.NumNodes(); ++v) {
    std::uint32_t port_index = 0;
    for (const Port& p : graph_.PortsOf(v)) {
      if (graph_.GetEdge(p.edge).u == v) edge_ports[p.edge].first = port_index;
      else edge_ports[p.edge].second = port_index;
      ++port_index;
    }
  }
  reverse_ports_.resize(port_offset_.back());
  for (NodeIndex v = 0; v < graph_.NumNodes(); ++v) {
    std::uint32_t port_index = 0;
    for (const Port& p : graph_.PortsOf(v)) {
      reverse_ports_[port_offset_[v] + port_index] =
          graph_.GetEdge(p.edge).u == p.neighbor ? edge_ports[p.edge].first
                                                 : edge_ports[p.edge].second;
      ++port_index;
    }
  }
  if (max_degree > 64) {
    seen_ports_scratch_.resize((max_degree + 63) / 64);
  }
}

void Scheduler::Register(PendingWake* wake) {
  assert(wake != nullptr);
  assert(wake->node < graph_.NumNodes());
  if (wake->round <= current_round_) {
    throw std::logic_error(
        "node " + std::to_string(wake->node) + " requested awake round " +
        std::to_string(wake->round) + " but the clock is already at " +
        std::to_string(current_round_));
  }
  // CONGEST: at most one message per port per round.
  {
    const std::size_t degree = graph_.DegreeOf(wake->node);
    if (degree <= 64) {
      std::uint64_t seen_ports = 0;
      for (const OutMessage& out : wake->sends) {
        if (out.port >= degree) {
          throw std::logic_error("send on nonexistent port");
        }
        if (((seen_ports >> out.port) & 1) != 0) {
          throw std::logic_error("two messages on one port in one round");
        }
        seen_ports |= std::uint64_t{1} << out.port;
      }
    } else {
      // Reuse the scheduler-owned scratch bitset (sized to the max
      // degree in the constructor) rather than allocating per awake.
      const std::size_t words = (degree + 63) / 64;
      std::fill_n(seen_ports_scratch_.begin(), words, 0);
      for (const OutMessage& out : wake->sends) {
        if (out.port >= degree) {
          throw std::logic_error("send on nonexistent port");
        }
        std::uint64_t& word = seen_ports_scratch_[out.port / 64];
        const std::uint64_t bit = std::uint64_t{1} << (out.port % 64);
        if ((word & bit) != 0) {
          throw std::logic_error("two messages on one port in one round");
        }
        word |= bit;
      }
    }
  }
  if (open_bucket_ != kNoBucket && open_round_ == wake->round) {
    buckets_[open_bucket_].push_back(wake);
    return;
  }
  std::uint32_t b;
  if (!free_buckets_.empty()) {
    b = free_buckets_.back();
    free_buckets_.pop_back();
  } else {
    b = static_cast<std::uint32_t>(buckets_.size());
    buckets_.emplace_back();
  }
  buckets_[b].push_back(wake);
  heap_.push_back(QueueEntry{wake->round, next_seq_++, b});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  open_round_ = wake->round;
  open_bucket_ = b;
}

void Scheduler::RunUntilIdle() {
  while (!heap_.empty()) {
    const Round r = heap_.front().round;
    if (r > max_rounds_) {
      throw std::runtime_error("round watchdog tripped at round " +
                               std::to_string(r) + " (max " +
                               std::to_string(max_rounds_) + ")");
    }
    // Stage every bucket of round r; resumed coroutines push only
    // strictly later rounds (Register enforces it), so the heap front is
    // stable until RunRound returns.
    round_wakers_.clear();
    while (!heap_.empty() && heap_.front().round == r) {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
      std::vector<PendingWake*>& bucket = buckets_[heap_.back().bucket];
      round_wakers_.insert(round_wakers_.end(), bucket.begin(), bucket.end());
      bucket.clear();  // keeps capacity for reuse
      if (open_bucket_ == heap_.back().bucket) open_bucket_ = kNoBucket;
      free_buckets_.push_back(heap_.back().bucket);
      heap_.pop_back();
    }
    RunRound(r);
  }
}

void Scheduler::RunRound(Round r) {
  current_round_ = r;
  metrics_.SetLastRound(r);

  for (PendingWake* w : round_wakers_) {
    if (awake_now_[w->node] != nullptr) {
      // Two live PendingWakes for one node would silently clobber each
      // other's delivery state; only direct Register misuse can get here
      // (a coroutine is suspended while its wake is queued), but fail
      // loudly in every build type rather than corrupt the run.
      throw std::logic_error("node " + std::to_string(w->node) +
                             " registered awake twice in round " +
                             std::to_string(r));
    }
    awake_now_[w->node] = w;
  }

  // Delivery: same-round send/receive between simultaneously awake
  // endpoints; messages to sleepers are lost (and counted).
  std::vector<PendingWake*>& wakers = round_wakers_;
  round_drops_.assign(trace_ ? wakers.size() : 0, 0);
  for (std::size_t wi = 0; wi < wakers.size(); ++wi) {
    PendingWake* w = wakers[wi];
    NodeMetrics& nm = metrics_.Node(w->node);
    // Hoist the per-node indirections out of the per-send loop: the port
    // table base and the precomputed receiver-port row.
    const Port* ports = graph_.PortsOf(w->node).data();
    const std::uint32_t* reverse = reverse_ports_.data() + port_offset_[w->node];
    for (const OutMessage& out : w->sends) {
      const Port& port = ports[out.port];
      ++nm.messages_sent;
      const std::uint64_t bits = out.msg.BitSize();
      nm.bits_sent += bits;
      metrics_.RecordMessageBits(bits);
      PendingWake* target = awake_now_[port.neighbor];
      if (target == nullptr) {
        ++nm.messages_dropped;
        if (trace_) ++round_drops_[wi];
        continue;
      }
      // The receiving side identifies the sender by its own port number
      // for the shared edge (precomputed in reverse_ports_).
      target->inbox.push_back(InMessage{reverse[out.port], out.msg});
    }
  }

  // Resume phase: every awake node gets its inbox and one awake round on
  // the meter, then runs to its next suspension (or completion).
  for (std::size_t wi = 0; wi < wakers.size(); ++wi) {
    PendingWake* w = wakers[wi];
    awake_now_[w->node] = nullptr;
    NodeMetrics& nm = metrics_.Node(w->node);
    ++nm.awake_rounds;
    if (metrics_.WakeTimesEnabled()) nm.wake_times.push_back(r);
    if (trace_) {
      trace_(TraceEvent{r, w->node,
                        static_cast<std::uint32_t>(w->sends.size()),
                        static_cast<std::uint32_t>(w->inbox.size()),
                        round_drops_[wi]});
    }
    auto handle = std::coroutine_handle<>::from_address(w->handle_address);
    // After resume(), `w` may be a dangling pointer (the coroutine frame
    // advanced past the awaitable); do not touch it again.
    handle.resume();
  }
}

}  // namespace smst
