// Run metrics: the quantities the paper's Table 1 is about.
//
// The scheduler (not the algorithms) meters awake rounds, so an algorithm
// cannot under-report its awake complexity. Probes are out-of-band
// telemetry used by benches (e.g. fragment counts per phase); they do not
// affect execution.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace smst {

struct NodeMetrics {
  std::uint64_t awake_rounds = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t bits_sent = 0;
  std::uint64_t messages_dropped = 0;  // sent to a sleeping neighbor
  // The absolute round numbers this node was awake in, recorded only when
  // Metrics::EnableWakeTimes() was called (used by the ring lower-bound
  // experiment's information-propagation analysis).
  std::vector<std::uint64_t> wake_times;
};

// Aggregate view over a finished run.
struct RunStats {
  std::uint64_t rounds = 0;            // last round any node was awake
  std::uint64_t max_awake = 0;         // the paper's awake complexity
  double avg_awake = 0.0;              // node-averaged awake complexity
  std::uint64_t total_messages = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t max_message_bits = 0;  // largest single message
  std::uint64_t dropped_messages = 0;
  std::uint64_t awake_node_rounds = 0;  // Σ_v awake_v (simulation work)
};

class Metrics {
 public:
  explicit Metrics(std::size_t num_nodes) : per_node_(num_nodes) {}

  NodeMetrics& Node(std::size_t v) { return per_node_[v]; }
  const NodeMetrics& Node(std::size_t v) const { return per_node_[v]; }
  const std::vector<NodeMetrics>& PerNode() const { return per_node_; }

  void RecordMessageBits(std::uint64_t bits) {
    if (bits > max_message_bits_) max_message_bits_ = bits;
  }

  void EnableWakeTimes() { record_wake_times_ = true; }
  bool WakeTimesEnabled() const { return record_wake_times_; }
  void SetLastRound(std::uint64_t r) {
    if (r > last_round_) last_round_ = r;
  }
  // Run time counts every round until the last node terminates locally,
  // including trailing sleeping rounds (a paper-phase-budget run sleeps
  // through its unused phases but still "takes" them).
  void ExtendRun(std::uint64_t termination_round) {
    SetLastRound(termination_round);
  }
  std::uint64_t LastRound() const { return last_round_; }

  // Out-of-band bench telemetry: counters keyed by (kind, key). Stored as
  // a flat sorted vector — probe keys are few (one per phase per kind) and
  // hot in the algorithms' phase loops, where the sorted-array lower_bound
  // beats the node-per-entry std::map this replaced; iteration via
  // Probes() stays in ascending (kind, key) order.
  using ProbeKey = std::pair<std::uint32_t, std::uint64_t>;
  using ProbeEntry = std::pair<ProbeKey, std::int64_t>;
  void Probe(std::uint32_t kind, std::uint64_t key, std::int64_t delta = 1) {
    const ProbeKey k{kind, key};
    auto it = std::lower_bound(probes_.begin(), probes_.end(), k,
                               [](const ProbeEntry& e, const ProbeKey& want) {
                                 return e.first < want;
                               });
    if (it != probes_.end() && it->first == k) {
      it->second += delta;
    } else {
      probes_.insert(it, ProbeEntry{k, delta});
    }
  }
  std::int64_t ProbeValue(std::uint32_t kind, std::uint64_t key) const {
    const ProbeKey k{kind, key};
    auto it = std::lower_bound(probes_.begin(), probes_.end(), k,
                               [](const ProbeEntry& e, const ProbeKey& want) {
                                 return e.first < want;
                               });
    return it != probes_.end() && it->first == k ? it->second : 0;
  }
  // Sorted ascending by (kind, key); same iteration order as the old map.
  const std::vector<ProbeEntry>& Probes() const { return probes_; }

  RunStats Summarize() const;

  // Adds `other`'s meters into this object (sharded backend: one full-
  // size Metrics per shard, merged in fixed shard order). Counters sum;
  // last round and the message-bit peak take the max; probes key-sum;
  // wake times append (only a node's owner shard records them, so at
  // most one source contributes per node). Requires equal node counts.
  void MergeFrom(const Metrics& other);

 private:
  std::vector<NodeMetrics> per_node_;
  bool record_wake_times_ = false;
  std::uint64_t last_round_ = 0;
  std::uint64_t max_message_bits_ = 0;
  std::vector<ProbeEntry> probes_;
};

}  // namespace smst
