// Run metrics: the quantities the paper's Table 1 is about.
//
// The scheduler (not the algorithms) meters awake rounds, so an algorithm
// cannot under-report its awake complexity. Probes are out-of-band
// telemetry used by benches (e.g. fragment counts per phase); they do not
// affect execution.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace smst {

struct NodeMetrics {
  std::uint64_t awake_rounds = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t bits_sent = 0;
  std::uint64_t messages_dropped = 0;  // sent to a sleeping neighbor
  // The absolute round numbers this node was awake in, recorded only when
  // Metrics::EnableWakeTimes() was called (used by the ring lower-bound
  // experiment's information-propagation analysis).
  std::vector<std::uint64_t> wake_times;
};

// Aggregate view over a finished run.
struct RunStats {
  std::uint64_t rounds = 0;            // last round any node was awake
  std::uint64_t max_awake = 0;         // the paper's awake complexity
  double avg_awake = 0.0;              // node-averaged awake complexity
  std::uint64_t total_messages = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t max_message_bits = 0;  // largest single message
  std::uint64_t dropped_messages = 0;
  std::uint64_t awake_node_rounds = 0;  // Σ_v awake_v (simulation work)
};

class Metrics {
 public:
  explicit Metrics(std::size_t num_nodes) : per_node_(num_nodes) {}

  NodeMetrics& Node(std::size_t v) { return per_node_[v]; }
  const NodeMetrics& Node(std::size_t v) const { return per_node_[v]; }
  const std::vector<NodeMetrics>& PerNode() const { return per_node_; }

  void RecordMessageBits(std::uint64_t bits) {
    if (bits > max_message_bits_) max_message_bits_ = bits;
  }

  void EnableWakeTimes() { record_wake_times_ = true; }
  bool WakeTimesEnabled() const { return record_wake_times_; }
  void SetLastRound(std::uint64_t r) {
    if (r > last_round_) last_round_ = r;
  }
  // Run time counts every round until the last node terminates locally,
  // including trailing sleeping rounds (a paper-phase-budget run sleeps
  // through its unused phases but still "takes" them).
  void ExtendRun(std::uint64_t termination_round) {
    SetLastRound(termination_round);
  }
  std::uint64_t LastRound() const { return last_round_; }

  // Out-of-band bench telemetry: counters keyed by (kind, key).
  void Probe(std::uint32_t kind, std::uint64_t key, std::int64_t delta = 1) {
    probes_[{kind, key}] += delta;
  }
  std::int64_t ProbeValue(std::uint32_t kind, std::uint64_t key) const {
    auto it = probes_.find({kind, key});
    return it == probes_.end() ? 0 : it->second;
  }
  const std::map<std::pair<std::uint32_t, std::uint64_t>, std::int64_t>&
  Probes() const {
    return probes_;
  }

  RunStats Summarize() const;

 private:
  std::vector<NodeMetrics> per_node_;
  bool record_wake_times_ = false;
  std::uint64_t last_round_ = 0;
  std::uint64_t max_message_bits_ = 0;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::int64_t> probes_;
};

}  // namespace smst
