// Simulator: drives one node program per node to completion and collects
// the run's metrics. Deterministic under a fixed seed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "smst/graph/graph.h"
#include "smst/runtime/metrics.h"
#include "smst/runtime/node.h"
#include "smst/runtime/task.h"

namespace smst {

struct SimulatorOptions {
  std::uint64_t seed = 1;
  // Watchdog: abort if the round clock passes this (runaway algorithms).
  Round max_rounds = std::uint64_t{1} << 62;
  // Record every node's awake round numbers (lower-bound experiments).
  bool record_wake_times = false;
  // Optional per-(node, awake round) event sink; see runtime/trace.h.
  TraceSink trace;
};

// A node program: the algorithm one node runs. Must eventually finish.
using NodeProgram = std::function<Task<void>(NodeContext&)>;

class Simulator {
 public:
  Simulator(const WeightedGraph& graph, SimulatorOptions options = {});
  ~Simulator();

  // Starts `program` on every node and runs rounds until all programs
  // finish. Rethrows the first node failure. May be called once.
  void Run(const NodeProgram& program);

  const Metrics& GetMetrics() const { return metrics_; }
  RunStats Stats() const { return metrics_.Summarize(); }

 private:
  const WeightedGraph& graph_;
  SimulatorOptions options_;
  Metrics metrics_;
  Scheduler scheduler_;
  // Contexts must be address-stable across the run (coroutines hold
  // references); a deque keeps elements pinned while growing without one
  // heap allocation per node.
  std::deque<NodeContext> contexts_;
  std::vector<TaskRunner> runners_;
  bool ran_ = false;
};

}  // namespace smst
