// Simulator: drives one node program per node to completion and collects
// the run's metrics. Deterministic under a fixed seed — including under a
// fault plan, whose adversary stream is derived from (plan salt ^ seed).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "smst/faults/fault_plan.h"
#include "smst/faults/run_outcome.h"
#include "smst/graph/graph.h"
#include "smst/runtime/metrics.h"
#include "smst/runtime/node.h"
#include "smst/runtime/task.h"

namespace smst {

class Auditor;

// Whether this run gets a runtime invariant auditor (see faults/auditor.h).
// kDefault = on in builds configured with SMST_AUDIT (all Debug builds),
// off otherwise; kOn/kOff force it. A library built with SMST_NO_AUDITOR
// has no hooks, so every mode degrades to off.
enum class AuditMode : std::uint8_t { kDefault, kOn, kOff };

struct SimulatorOptions {
  std::uint64_t seed = 1;
  // Watchdog: abort if the round clock passes this (runaway algorithms).
  Round max_rounds = std::uint64_t{1} << 62;
  // Record every node's awake round numbers (lower-bound experiments).
  bool record_wake_times = false;
  // Optional per-(node, awake round) event sink; see runtime/trace.h.
  TraceSink trace;
  // Borrowed fault plan (null or empty = fault-free run); consulted by
  // the scheduler at delivery and wake-registration time.
  const FaultPlan* fault_plan = nullptr;
  AuditMode audit = AuditMode::kDefault;
};

// A node program: the algorithm one node runs. Must eventually finish.
using NodeProgram = std::function<Task<void>(NodeContext&)>;

class Simulator {
 public:
  Simulator(const WeightedGraph& graph, SimulatorOptions options = {});
  ~Simulator();

  // Starts `program` on every node and runs rounds until all programs
  // finish. Rethrows the first node failure, throws if any node never
  // finished, and (when an auditor is installed) throws on any audit
  // violation — the historical all-or-nothing contract for fault-free
  // runs. May be called once per Simulator.
  void Run(const NodeProgram& program);

  // Bounded-run variant for faulted executions: instead of throwing,
  // classifies what happened into a RunOutcome (completed /
  // non-termination / crashed-partition; callers that can verify the
  // result refine kCompleted into kWrongResult). std::logic_error —
  // programming bugs, not fault effects — still propagates. May be called
  // once per Simulator, instead of Run.
  RunOutcome RunToOutcome(const NodeProgram& program);

  const Metrics& GetMetrics() const { return metrics_; }
  RunStats Stats() const { return metrics_.Summarize(); }
  // Null unless this run has an auditor installed.
  const Auditor* GetAuditor() const { return auditor_.get(); }
  const FaultStats& InjectedFaults() const;

 private:
  // Shared body of Run/RunToOutcome: spawn, start, run until idle,
  // rethrow the first failed node program.
  void Execute(const NodeProgram& program);
  std::uint64_t CountUnfinished() const;
  void FillAuditSummary(RunOutcome& out) const;

  const WeightedGraph& graph_;
  SimulatorOptions options_;
  Metrics metrics_;
  std::unique_ptr<Auditor> auditor_;  // before scheduler_: it borrows it
  Scheduler scheduler_;
  // Contexts must be address-stable across the run (coroutines hold
  // references); a deque keeps elements pinned while growing without one
  // heap allocation per node.
  std::deque<NodeContext> contexts_;
  std::vector<TaskRunner> runners_;
  bool ran_ = false;
};

}  // namespace smst
