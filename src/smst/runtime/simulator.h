// Simulator: drives one node program per node to completion and collects
// the run's metrics. Deterministic under a fixed seed — including under a
// fault plan, whose adversary stream is derived from (plan salt ^ seed).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "smst/faults/fault_plan.h"
#include "smst/faults/run_outcome.h"
#include "smst/graph/graph.h"
#include "smst/runtime/flat/program.h"
#include "smst/runtime/metrics.h"
#include "smst/runtime/node.h"
#include "smst/runtime/sharded/partition.h"
#include "smst/runtime/task.h"

namespace smst {

class Auditor;
class ShardedEngine;
class FlatEngine;
class FlatRuntime;

// Which execution engine runs the node programs. kCoroutine drives one
// coroutine per node (the NodeProgram overloads); kFlat drives a batched
// FlatProgram state machine (the FlatProgram overloads) with
// bit-identical results (DESIGN.md §13). The option must match the
// overload used — the mismatch is a logic_error.
enum class EngineMode : std::uint8_t { kCoroutine, kFlat };

const char* EngineModeName(EngineMode mode);
// Parses "coroutine" / "flat" (the CLI/harness --engine values); throws
// std::invalid_argument naming the valid values on anything else.
EngineMode ParseEngineMode(const std::string& name);

// Whether this run gets a runtime invariant auditor (see faults/auditor.h).
// kDefault = on in builds configured with SMST_AUDIT (all Debug builds),
// off otherwise; kOn/kOff force it. A library built with SMST_NO_AUDITOR
// has no hooks, so every mode degrades to off.
enum class AuditMode : std::uint8_t { kDefault, kOn, kOff };

struct SimulatorOptions {
  std::uint64_t seed = 1;
  // Watchdog: abort if the round clock passes this (runaway algorithms).
  Round max_rounds = std::uint64_t{1} << 62;
  // Record every node's awake round numbers (lower-bound experiments).
  bool record_wake_times = false;
  // Optional per-(node, awake round) event sink; see runtime/trace.h.
  TraceSink trace;
  // Borrowed fault plan (null or empty = fault-free run); consulted by
  // the scheduler at delivery and wake-registration time.
  const FaultPlan* fault_plan = nullptr;
  AuditMode audit = AuditMode::kDefault;
  // Sharded multi-worker backend: 0 = serial engine (default); K >= 1
  // partitions the nodes over K worker threads (clamped to n), each with
  // its own Scheduler, exchanging message batches at round barriers.
  // Results, metrics, and outcomes are bit-identical to the serial
  // engine for every K (DESIGN.md §12). `trace` is serial-only.
  std::uint32_t shards = 0;
  ShardPolicy shard_policy = ShardPolicy::kContiguousBlocks;
  // Execution engine; kFlat requires driving the run with the
  // FlatProgram overloads of Run/RunToOutcome. `trace` is
  // coroutine-only (events are defined per coroutine resume), rejected
  // loudly in the constructor like trace+shards.
  EngineMode engine = EngineMode::kCoroutine;
};

// A node program: the algorithm one node runs. Must eventually finish.
using NodeProgram = std::function<Task<void>(NodeContext&)>;

class Simulator {
 public:
  Simulator(const WeightedGraph& graph, SimulatorOptions options = {});
  ~Simulator();

  // Starts `program` on every node and runs rounds until all programs
  // finish. Rethrows the first node failure, throws if any node never
  // finished, and (when an auditor is installed) throws on any audit
  // violation — the historical all-or-nothing contract for fault-free
  // runs. May be called once per Simulator.
  void Run(const NodeProgram& program);

  // Bounded-run variant for faulted executions: instead of throwing,
  // classifies what happened into a RunOutcome (completed /
  // non-termination / crashed-partition; callers that can verify the
  // result refine kCompleted into kWrongResult). std::logic_error —
  // programming bugs, not fault effects — still propagates. May be called
  // once per Simulator, instead of Run.
  RunOutcome RunToOutcome(const NodeProgram& program);

  // Flat-engine twins of Run/RunToOutcome (SimulatorOptions::engine must
  // be kFlat). The caller owns `program` (one instance holds every
  // node's state); results are bit-identical to running the coroutine
  // form of the same algorithm.
  void Run(FlatProgram& program);
  RunOutcome RunToOutcome(FlatProgram& program);

  const Metrics& GetMetrics() const { return metrics_; }
  RunStats Stats() const { return metrics_.Summarize(); }
  // Null unless this run has a serial-engine auditor installed (sharded
  // runs audit per shard; use Audit() for the engine-independent view).
  const Auditor* GetAuditor() const { return auditor_.get(); }
  const FaultStats& InjectedFaults() const;

  // Engine-independent auditor summary: the serial auditor's meters, or
  // the shard auditors' summed meters (audited == false when no auditor
  // ran). Valid after Run/RunToOutcome.
  struct AuditSummary {
    bool audited = false;
    std::uint64_t awake_node_rounds = 0;
    std::uint64_t model_drops = 0;
    std::uint64_t violations = 0;
    std::string report;  // "" when clean
  };
  AuditSummary Audit() const;

 private:
  // Shared body of Run/RunToOutcome: spawn, start, run until idle,
  // rethrow the first failed node program.
  void Execute(const NodeProgram& program);
  // Flat twin of Execute: picks the fault-free fast engine
  // (runtime/flat/engine.h) when nothing observes the event stream, the
  // scheduler-backed FlatRuntime otherwise, or hands the program to the
  // sharded engine.
  void ExecuteFlat(FlatProgram& program);
  // Post-Execute tail shared by the coroutine and flat overloads.
  void FinishRun();
  RunOutcome FinishOutcome(RunOutcome out);
  // Classifies the in-flight exception into `out` (rethrows logic_error).
  static void ClassifyFailure(RunOutcome& out);
  std::uint64_t CountUnfinished() const;
  NodeIndex FirstUnfinishedNode() const;
  void FillAuditSummary(RunOutcome& out) const;

  const WeightedGraph& graph_;
  SimulatorOptions options_;
  Metrics metrics_;
  std::unique_ptr<Auditor> auditor_;  // before scheduler_: it borrows it
  // Exactly one engine exists per Simulator: the serial scheduler, or
  // the sharded multi-worker backend when options.shards >= 1.
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<ShardedEngine> sharded_;
  // Serial-engine state. Contexts must be address-stable across the run
  // (coroutines hold references); a deque keeps elements pinned while
  // growing without one heap allocation per node. In sharded mode the
  // engine owns the per-shard equivalents.
  std::deque<NodeContext> contexts_;
  std::vector<TaskRunner> runners_;
  // Flat-engine state (at most one is live, per ExecuteFlat's choice).
  std::unique_ptr<FlatRuntime> flat_runtime_;
  std::unique_ptr<FlatEngine> flat_engine_;
  // Filled by Run/RunToOutcome after a sharded run (the shard auditors'
  // CheckAwakeMeter cross-check runs exactly once, there).
  AuditSummary sharded_audit_;
  bool ran_ = false;
};

}  // namespace smst
