// Optional execution tracing.
//
// A TraceSink receives one event per (awake node, round) after delivery:
// what the node sent and received, and what the fault-injection adversary
// (if any) did to its sends. Intended for debugging node programs and for
// teaching (the deterministic walkthrough); tracing a large run is
// expensive by design — leave the sink null for measurement runs.
//
// Field semantics under fault injection (DESIGN.md §10):
//  * `dropped` counts only *model* drops — sends whose receiver was
//    asleep, the sleeping-model loss that also feeds the node's
//    `messages_dropped` meter. A send the adversary destroyed is counted
//    in `injected_drops` instead, never in both.
//  * `injected_delays` counts sends deferred this round; the eventual
//    late delivery (or loss) surfaces at the *receiver* via its inbox
//    size (or the sender's `messages_dropped` meter), not as a second
//    trace event for the sender.
//  * `injected_dups` counts extra copies the adversary created from this
//    node's sends this round (a duplicated delayed send counts here in
//    the send round, even though both copies arrive later).
//  * `received` is the inbox size, so it includes duplicates and late
//    (delayed) arrivals.
// Fault-free runs leave the three injected_* fields zero, and events are
// bit-identical to those of a build without the fault layer.
#pragma once

#include <cstdint>
#include <functional>

#include "smst/graph/graph.h"
#include "smst/runtime/message.h"

namespace smst {

struct TraceEvent {
  std::uint64_t round = 0;
  NodeIndex node = kInvalidNode;
  std::uint32_t sent = 0;      // messages sent this round
  std::uint32_t received = 0;  // messages received this round (inbox size)
  std::uint32_t dropped = 0;   // of the sent, how many hit sleepers
  std::uint32_t injected_drops = 0;   // sends destroyed by the adversary
  std::uint32_t injected_delays = 0;  // sends deferred by the adversary
  std::uint32_t injected_dups = 0;    // extra copies created from sends
};

using TraceSink = std::function<void(const TraceEvent&)>;

}  // namespace smst
