// Optional execution tracing.
//
// A TraceSink receives one event per (awake node, round) after delivery:
// what the node sent and received. Intended for debugging node programs
// and for teaching (the deterministic walkthrough); tracing a large run
// is expensive by design — leave the sink null for measurement runs.
#pragma once

#include <cstdint>
#include <functional>

#include "smst/graph/graph.h"
#include "smst/runtime/message.h"

namespace smst {

struct TraceEvent {
  std::uint64_t round = 0;
  NodeIndex node = kInvalidNode;
  std::uint32_t sent = 0;      // messages sent this round
  std::uint32_t received = 0;  // messages received this round
  std::uint32_t dropped = 0;   // of the sent, how many hit sleepers
};

using TraceSink = std::function<void(const TraceEvent&)>;

}  // namespace smst
