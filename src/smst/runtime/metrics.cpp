#include "smst/runtime/metrics.h"

#include <cassert>

namespace smst {

void Metrics::MergeFrom(const Metrics& other) {
  assert(per_node_.size() == other.per_node_.size());
  for (std::size_t v = 0; v < per_node_.size(); ++v) {
    NodeMetrics& mine = per_node_[v];
    const NodeMetrics& theirs = other.per_node_[v];
    mine.awake_rounds += theirs.awake_rounds;
    mine.messages_sent += theirs.messages_sent;
    mine.bits_sent += theirs.bits_sent;
    mine.messages_dropped += theirs.messages_dropped;
    if (!theirs.wake_times.empty()) {
      mine.wake_times.insert(mine.wake_times.end(), theirs.wake_times.begin(),
                             theirs.wake_times.end());
    }
  }
  record_wake_times_ = record_wake_times_ || other.record_wake_times_;
  if (other.last_round_ > last_round_) last_round_ = other.last_round_;
  if (other.max_message_bits_ > max_message_bits_) {
    max_message_bits_ = other.max_message_bits_;
  }
  for (const ProbeEntry& e : other.probes_) {
    Probe(e.first.first, e.first.second, e.second);
  }
}

RunStats Metrics::Summarize() const {
  RunStats s;
  s.rounds = last_round_;
  s.max_message_bits = max_message_bits_;
  std::uint64_t sum_awake = 0;
  for (const NodeMetrics& m : per_node_) {
    sum_awake += m.awake_rounds;
    if (m.awake_rounds > s.max_awake) s.max_awake = m.awake_rounds;
    s.total_messages += m.messages_sent;
    s.total_bits += m.bits_sent;
    s.dropped_messages += m.messages_dropped;
  }
  s.awake_node_rounds = sum_awake;
  s.avg_awake = per_node_.empty()
                    ? 0.0
                    : static_cast<double>(sum_awake) /
                          static_cast<double>(per_node_.size());
  return s;
}

}  // namespace smst
