#include "smst/runtime/metrics.h"

namespace smst {

RunStats Metrics::Summarize() const {
  RunStats s;
  s.rounds = last_round_;
  s.max_message_bits = max_message_bits_;
  std::uint64_t sum_awake = 0;
  for (const NodeMetrics& m : per_node_) {
    sum_awake += m.awake_rounds;
    if (m.awake_rounds > s.max_awake) s.max_awake = m.awake_rounds;
    s.total_messages += m.messages_sent;
    s.total_bits += m.bits_sent;
    s.dropped_messages += m.messages_dropped;
  }
  s.awake_node_rounds = sum_awake;
  s.avg_awake = per_node_.empty()
                    ? 0.0
                    : static_cast<double>(sum_awake) /
                          static_cast<double>(per_node_.size());
  return s;
}

}  // namespace smst
