// Thread-pool batch execution of independent simulator runs.
//
// Every empirical claim in this reproduction is a sweep over
// (algorithm × graph × seed) cells, and each cell runs on its own
// Simulator with its own Metrics and seeded RNG streams — there is no
// shared mutable state between runs, so a sweep is embarrassingly
// parallel. ParallelRunner::RunAll executes a vector of RunSpec jobs on
// a pool of worker threads and returns the results in submission order,
// bit-identical to running the same specs in a serial loop (pinned by
// parallel_runner_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "smst/graph/graph.h"
#include "smst/mst/api.h"
#include "smst/mst/options.h"
#include "smst/mst/result.h"

namespace smst {

// One sweep cell. The graph is borrowed and must outlive the batch;
// sharing one graph across many seeds is the common case and is safe
// because simulations only read it.
struct RunSpec {
  const WeightedGraph* graph = nullptr;
  MstAlgorithm algorithm = MstAlgorithm::kRandomized;
  MstOptions options;
  // Convenience: if nonzero, overrides options.seed for this run.
  std::uint64_t seed = 0;
};

class ParallelRunner {
 public:
  // threads == 0 picks std::thread::hardware_concurrency() (at least 1).
  explicit ParallelRunner(unsigned threads = 0);

  unsigned Threads() const { return threads_; }

  // Runs ComputeMst for every spec and returns the results indexed like
  // `specs`. Worker assignment is dynamic (an atomic cursor), which does
  // not affect results: output order is by submission index and each
  // run's randomness is derived only from its own seed. If jobs throw,
  // every job still gets a worker (failures don't starve the rest) and
  // the failure of the smallest submission index is rethrown after all
  // workers drain — the same failure a serial loop would surface first.
  std::vector<MstRunResult> RunAll(const std::vector<RunSpec>& specs) const;

  // The generic core: invokes fn(i) for i in [0, count) across the pool.
  // Used by RunAll and by bench harnesses whose per-cell work is more
  // than one ComputeMst call (verification, paired ablation runs, ...).
  void ForEach(std::size_t count,
               const std::function<void(std::size_t)>& fn) const;

 private:
  unsigned threads_;
};

}  // namespace smst
