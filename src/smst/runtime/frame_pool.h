// Size-bucketed recycling pool for coroutine frames.
//
// Every `co_await`ed sub-procedure (Task<T>) allocates one coroutine
// frame; a single MST run performs millions of such awaits, and the
// frames come in a handful of distinct sizes (one per coroutine
// function). This pool intercepts Task's promise-level operator
// new/delete and recycles freed frames through per-size free lists, so
// after a brief warm-up the steady-state awake path performs zero heap
// allocations for frames.
//
// Threading design (deliberate, verified by the TSan CI job's
// oversubscribed parallel-runner sweep): the arena is *thread-local*.
// Each worker thread owns a private set of free lists and a private
// bump region, so there is no synchronization on the hot path and no
// false sharing between workers. Fresh blocks are carved from large
// process-lifetime slabs rather than allocated one by one — per-frame
// heap allocation grows a worker thread's malloc arena in syscall-sized
// steps, which is ruinously slow on sandboxed kernels (see the note in
// frame_pool.cpp). Because slabs never die, a frame may legally outlive
// the thread that allocated it: the sharded engine's workers spawn
// frames that the main thread releases at teardown, and the block is
// then recycled into the *freeing* thread's arena — which is why the
// sharded engine tears shards down on per-shard reaper threads rather
// than the main thread. Exiting threads donate their free lists (and
// slab remainder) to a mutex-protected registry; later threads adopt
// one donated list per size class, so K symmetric donors feed the next
// run's K workers evenly, and churning workers through the parallel
// runner recycles blocks instead of accreting dead arenas.
//
// Build the library with -DSMST_NO_FRAME_POOL (CMake option
// SMST_NO_FRAME_POOL) to bypass the pool entirely: frames then go
// straight to global operator new/delete, which is what you want when
// hunting leaks or use-after-free on coroutine frames with
// ASan/Valgrind, since pooling otherwise masks both.
#pragma once

#include <cstddef>
#include <cstdint>

namespace smst {

// Allocates a frame of `bytes` bytes (pool fast path for small frames,
// global operator new beyond the pooled size range).
void* FrameAllocate(std::size_t bytes);

// Returns a frame previously obtained from FrameAllocate. `bytes` must
// be the allocation size (coroutine deallocation is sized, so the
// bucket is recomputed instead of stored per block).
void FrameDeallocate(void* p, std::size_t bytes) noexcept;

// Standard-allocator shim over the pool, for node-count-sized
// containers that must grow on worker threads (the sharded backend's
// per-shard NodeContext deque). Growing such a container through plain
// malloc trips the same cold-arena pathology the pool exists to avoid;
// routing its chunks here makes them slab-carved instead. Oversized
// requests (a deque's pointer map, say) fall through to global
// operator new exactly like oversized frames do.
template <class T>
struct FramePoolAllocator {
  using value_type = T;
  FramePoolAllocator() noexcept = default;
  template <class U>
  FramePoolAllocator(const FramePoolAllocator<U>&) noexcept {}
  T* allocate(std::size_t n) {
    return static_cast<T*>(FrameAllocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    FrameDeallocate(p, n * sizeof(T));
  }
  friend bool operator==(const FramePoolAllocator&,
                         const FramePoolAllocator&) noexcept {
    return true;
  }
};

// Introspection for tests and benches: counters for the calling
// thread's arena only.
struct FramePoolStats {
  std::uint64_t pool_hits = 0;     // served from a free list
  std::uint64_t fresh_blocks = 0;  // pooled size class, new block
  std::uint64_t oversized = 0;     // larger than any bucket
};
FramePoolStats GetFramePoolStats();

}  // namespace smst
