// Size-bucketed recycling pool for coroutine frames.
//
// Every `co_await`ed sub-procedure (Task<T>) allocates one coroutine
// frame; a single MST run performs millions of such awaits, and the
// frames come in a handful of distinct sizes (one per coroutine
// function). This pool intercepts Task's promise-level operator
// new/delete and recycles freed frames through per-size free lists, so
// after a brief warm-up the steady-state awake path performs zero heap
// allocations for frames.
//
// Threading design (deliberate, verified by the TSan CI job's
// oversubscribed parallel-runner sweep): the arena is *thread-local*.
// Each worker thread of the parallel runner owns a private set of free
// lists and never touches another thread's, so there is no
// synchronization on the hot path and no false sharing between workers.
// A frame freed on a different thread than the one that allocated it is
// simply recycled into the *freeing* thread's arena — correct, because
// blocks carry no owner; in practice this never happens, since a
// Simulator runs entirely on one thread. Pooled blocks are returned to
// the system when their thread exits.
//
// Build the library with -DSMST_NO_FRAME_POOL (CMake option
// SMST_NO_FRAME_POOL) to bypass the pool entirely: frames then go
// straight to global operator new/delete, which is what you want when
// hunting leaks or use-after-free on coroutine frames with
// ASan/Valgrind, since pooling otherwise masks both.
#pragma once

#include <cstddef>
#include <cstdint>

namespace smst {

// Allocates a frame of `bytes` bytes (pool fast path for small frames,
// global operator new beyond the pooled size range).
void* FrameAllocate(std::size_t bytes);

// Returns a frame previously obtained from FrameAllocate. `bytes` must
// be the allocation size (coroutine deallocation is sized, so the
// bucket is recomputed instead of stored per block).
void FrameDeallocate(void* p, std::size_t bytes) noexcept;

// Introspection for tests and benches: counters for the calling
// thread's arena only.
struct FramePoolStats {
  std::uint64_t pool_hits = 0;     // served from a free list
  std::uint64_t fresh_blocks = 0;  // pooled size class, new block
  std::uint64_t oversized = 0;     // larger than any bucket
};
FramePoolStats GetFramePoolStats();

}  // namespace smst
