// Minimal C++20 coroutine task used to write node programs.
//
// Node programs read like the paper's pseudocode: a top-level coroutine
// per node that `co_await`s sub-procedures (themselves Task<T>) and, at
// the leaves, the scheduler's Awake awaitable. Task<T> is lazy (starts on
// first await/Start), single-consumer, move-only, and chains completion to
// its awaiter with symmetric transfer, so arbitrarily deep procedure
// nesting costs no stack.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>

#include "smst/runtime/frame_pool.h"

namespace smst {

template <typename T>
class [[nodiscard]] Task;

namespace detail {

// Behaviour shared by Task<T> and Task<void> promises.
struct PromiseBase {
#ifndef SMST_NO_FRAME_POOL
  // Coroutine frames are recycled through the thread-local frame pool:
  // a run's millions of sub-procedure awaits reuse a handful of blocks
  // instead of hitting the heap each time. Sized delete lets the pool
  // recompute the size bucket without a per-block header. Disable with
  // the SMST_NO_FRAME_POOL CMake option (see frame_pool.h).
  static void* operator new(std::size_t bytes) { return FrameAllocate(bytes); }
  static void operator delete(void* p, std::size_t bytes) noexcept {
    FrameDeallocate(p, bytes);
  }
#endif

  std::coroutine_handle<> continuation;  // resumed when this task finishes
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      // Symmetric transfer to whoever awaited us; a detached/top-level
      // task simply returns control to the resumer.
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  // Awaitable interface: `co_await child_task` starts the child and
  // resumes the parent when it returns.
  bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;  // start the child now
  }
  T await_resume() {
    auto& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
    assert(p.value.has_value());
    return std::move(*p.value);
  }

 private:
  friend class TaskRunner;
  explicit Task(Handle h) : handle_(h) {}
  void Destroy() {
    if (handle_) handle_.destroy();
    handle_ = {};
  }
  Handle handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
  };
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  void await_resume() {
    if (handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

 private:
  friend class TaskRunner;
  explicit Task(Handle h) : handle_(h) {}
  void Destroy() {
    if (handle_) handle_.destroy();
    handle_ = {};
  }
  Handle handle_;
};

// Drives top-level (per-node) tasks from non-coroutine code: the
// simulator Starts each program, the scheduler resumes leaf awaitables,
// and Done/RethrowIfFailed observe completion.
class TaskRunner {
 public:
  explicit TaskRunner(Task<void> task) : task_(std::move(task)) {}

  // Runs the task until its first suspension (or completion).
  void Start() {
    assert(task_.handle_);
    task_.handle_.resume();
  }

  bool Done() const { return !task_.handle_ || task_.handle_.done(); }

  void RethrowIfFailed() const {
    if (task_.handle_ && task_.handle_.done() &&
        task_.handle_.promise().exception) {
      std::rethrow_exception(task_.handle_.promise().exception);
    }
  }

 private:
  Task<void> task_;
};

}  // namespace smst
