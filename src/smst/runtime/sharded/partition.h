// Node-set partitioning for the sharded simulator backend.
//
// A ShardPartition assigns every node to exactly one shard worker; each
// worker owns its nodes' coroutines, wake queue, metrics, and delayed-
// message parking. Ownership is a pure function of (n, shard count,
// policy), so a partition is reproducible and the cross-shard message
// routing derived from it is deterministic.
//
// Policies:
//  * kContiguousBlocks — balanced index ranges ([0, n/K) to shard 0, and
//    so on). Generators lay out rings and grids with index locality, so
//    contiguous blocks keep most edges shard-internal. Default.
//  * kRoundRobin — node v to shard v % K. Near-perfect load balance for
//    workloads where awake cost varies with index (e.g. a star's center),
//    at the price of making almost every edge cross-shard.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "smst/graph/graph.h"

namespace smst {

enum class ShardPolicy : std::uint8_t {
  kContiguousBlocks,
  kRoundRobin,
};

const char* ShardPolicyName(ShardPolicy p);
// Parses "block" / "rr" (the CLI grammar); throws std::invalid_argument.
ShardPolicy ParseShardPolicy(const std::string& text);

class ShardPartition {
 public:
  // `shards` is clamped to [1, max(n, 1)]: more workers than nodes would
  // only add idle barrier participants.
  ShardPartition(std::size_t num_nodes, std::uint32_t shards,
                 ShardPolicy policy);

  std::uint32_t NumShards() const { return shards_; }
  ShardPolicy Policy() const { return policy_; }
  std::uint32_t Owner(NodeIndex v) const { return owner_[v]; }
  // Position of `v` within its owner's NodesOf list (nodes are listed in
  // ascending index order, so local order mirrors global order).
  std::uint32_t LocalIndex(NodeIndex v) const { return local_index_[v]; }
  const std::vector<NodeIndex>& NodesOf(std::uint32_t shard) const {
    return nodes_[shard];
  }

 private:
  std::uint32_t shards_;
  ShardPolicy policy_;
  std::vector<std::uint32_t> owner_;        // node -> shard
  std::vector<std::uint32_t> local_index_;  // node -> rank within shard
  std::vector<std::vector<NodeIndex>> nodes_;
};

}  // namespace smst
