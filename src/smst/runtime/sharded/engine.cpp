#include "smst/runtime/sharded/engine.h"

#include <cassert>
#include <coroutine>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "smst/faults/auditor.h"
#include "smst/faults/run_outcome.h"
#include "smst/util/prng.h"

// Same convention as scheduler.cpp: auditor hooks are a null check by
// default and vanish under -DSMST_NO_AUDITOR.
#ifdef SMST_NO_AUDITOR
#define SMST_SHARD_AUDIT(aud, call) ((void)0)
#else
#define SMST_SHARD_AUDIT(aud, call) \
  do {                              \
    if (aud) {                      \
      (aud)->call;                  \
    }                               \
  } while (0)
#endif

namespace smst {

ShardedEngine::Shard::Shard(const WeightedGraph& graph,
                            const ShardedEngineOptions& options)
    : metrics(graph.NumNodes()),
      auditor(options.audit ? std::make_unique<Auditor>(graph) : nullptr),
      scheduler(std::make_unique<Scheduler>(
          graph, metrics,
          SchedulerOptions{options.max_rounds, options.fault_plan,
                           options.seed, auditor.get()})) {
  if (options.record_wake_times) metrics.EnableWakeTimes();
}

ShardedEngine::ShardedEngine(const WeightedGraph& graph,
                             ShardedEngineOptions options)
    : graph_(graph),
      options_(options),
      partition_(graph.NumNodes(), options.shards, options.policy),
      exchange_(partition_.NumShards()),
      merged_metrics_(graph.NumNodes()) {
  const std::uint32_t k = partition_.NumShards();
  // Slots only; each worker constructs its own Shard in ShardMain so
  // the per-shard O(n) state is built in parallel, owner-thread-local.
  shards_.resize(k);
  errors_.resize(k);
  next_round_.assign(k, kMaxRound);
  if (options_.record_wake_times) merged_metrics_.EnableWakeTimes();
}

ShardedEngine::~ShardedEngine() {
  // Tear shards down on their own threads (one per shard, K > 1 only).
  // Destroying a shard releases ~n/K coroutine frames and context
  // chunks into the destroying thread's pool arena; doing that on
  // per-shard reaper threads both parallelizes teardown and — because
  // each reaper donates its free lists to the pool registry on exit,
  // one donation entry per shard — leaves the blocks where the *next*
  // run's K workers each adopt an even share. Freeing on the main
  // thread would instead strand every block in the main arena, and
  // repeated sharded runs in one process would re-fault fresh slab
  // pages every time.
  if (shards_.size() > 1) {
    std::vector<std::thread> reapers;
    reapers.reserve(shards_.size());
    for (auto& shard : shards_) {
      if (shard) reapers.emplace_back([&shard] { shard.reset(); });
    }
    for (std::thread& t : reapers) t.join();
  }
}

void ShardedEngine::Execute(const NodeProgram& program) {
  ExecuteImpl(&program, nullptr);
}

void ShardedEngine::ExecuteFlat(FlatProgram& program) {
  ExecuteImpl(nullptr, &program);
}

void ShardedEngine::ExecuteImpl(const NodeProgram* coro, FlatProgram* flat) {
  if (ran_) throw std::logic_error("ShardedEngine may run only once");
  ran_ = true;

  const std::uint32_t k = partition_.NumShards();
  barrier_.emplace(static_cast<std::ptrdiff_t>(k), RoundReduce{this});

  std::vector<std::thread> workers;
  workers.reserve(k);
  for (std::uint32_t s = 0; s < k; ++s) {
    workers.emplace_back([this, s, coro, flat] { ShardMain(s, coro, flat); });
  }
  for (std::thread& t : workers) t.join();

  // Merge in fixed shard order so the result is a pure function of the
  // per-shard states: every counter is a sum, round and message-bit
  // peaks are maxima, probes are key-summed, wake times are owner-only.
  for (const auto& shard : shards_) {
    if (!shard) continue;  // failed before constructing; see errors_
    merged_metrics_.MergeFrom(shard->metrics);
    merged_faults_.MergeFrom(shard->scheduler->InjectedFaults());
  }
  // Shard-level failures (watchdog, double registration, allocation
  // failure) rethrow lowest-shard-first — deterministic, and for the
  // watchdog identical on every shard anyway.
  for (const std::exception_ptr& e : errors_) {
    if (e) std::rethrow_exception(e);
  }
}

void ShardedEngine::ShardMain(std::uint32_t s, const NodeProgram* coro,
                              FlatProgram* flat) {
  try {
    // Build this shard's state and spawn its node programs on the worker
    // thread itself: the Metrics/Scheduler arrays, the contexts, and the
    // coroutine frames are then allocated (and first-touched) by the
    // thread that will use them, and the K shards set up in parallel.
    // Each node's randomness is the same seed-derived substream the
    // serial engine would hand it: Split is a pure function of
    // (seed, node index).
    shards_[s] = std::make_unique<Shard>(graph_, options_);
    Shard& shard = *shards_[s];
    shard.inbound.resize(partition_.NumShards());
    const std::vector<NodeIndex>& local = partition_.NodesOf(s);
    shard.cross_ports.assign(graph_.NumNodes(), 0);
    for (NodeIndex v : local) {
      for (const Port& port : graph_.PortsOf(v)) {
        if (partition_.Owner(port.neighbor) != s) {
          shard.cross_ports[v] = 1;
          break;
        }
      }
    }
    if (flat != nullptr) {
      // Flat form: one FlatRuntime drives this shard's partition of the
      // shared program; its StartAll registers the same first wakes the
      // coroutine spawn-then-Start two-pass would.
      shard.flat = std::make_unique<FlatRuntime>(*shard.scheduler, *flat,
                                                 shard.metrics, local);
      shard.flat->StartAll();
    } else {
      Xoshiro256 root_rng(options_.seed);
      shard.runners.reserve(local.size());
      for (NodeIndex v : local) {
        shard.contexts.emplace_back(graph_, v, *shard.scheduler,
                                    shard.metrics, root_rng.Split(v));
      }
      for (NodeContext& ctx : shard.contexts) {
        shard.runners.emplace_back((*coro)(ctx));
      }
      for (TaskRunner& r : shard.runners) r.Start();
    }
    for (;;) {
      next_round_[s] = shard.scheduler->NextPendingRound();
      barrier_->arrive_and_wait();  // completion computes global_round_
      if (abort_.load(std::memory_order_acquire)) return;
      const Round r = global_round_;
      if (r == kMaxRound) break;  // every shard idle: clean stop
      if (r > options_.max_rounds) {
        // Same trip point and message as the serial engine; every shard
        // throws this identically.
        throw NonTerminationError("round watchdog tripped at round " +
                                  std::to_string(r) + " (max " +
                                  std::to_string(options_.max_rounds) + ")");
      }
      shard.scheduler->StageRound(r);  // possibly zero local wakers
      CollectSends(s, r);
      barrier_->arrive_and_wait();  // all sends published
      if (abort_.load(std::memory_order_acquire)) return;
      ReceiveAndResume(s, r);
    }
    // Clean stop: expire still-parked delayed messages so the model-drop
    // books balance (mirrors the serial end-of-run drain).
    shard.scheduler->DrainDelayed(kMaxRound);
  } catch (...) {
    errors_[s] = std::current_exception();
    // Release the others: the drop counts as this shard's arrival for
    // the phase it abandoned, and the flag (published before the drop)
    // tells them to stop at their next barrier exit.
    abort_.store(true, std::memory_order_release);
    barrier_->arrive_and_drop();
  }
}

void ShardedEngine::CollectSends(std::uint32_t s, Round r) {
  // Pre-barrier half of the round: publish the *cross-shard* sends to
  // the exchange. Shard-local sends are handled entirely by this
  // shard's own post-barrier scan (ReceiveAndResume), where they can
  // interleave with remote arrivals in canonical source order —
  // pushing them through a ring would only add copies.
  //
  // Each send is metered (count, bits, audit OnSend) in the phase that
  // consumes it — cross-shard here, local in the delivery scan — so
  // this pass stays a cheap read-only sweep when few edges cross
  // shards. Metrics are commutative sums and the auditor's books are
  // order-free within a round, so the split cannot change any total.
  //
  // Fault verdicts likewise fire exactly once per send (OnMessage
  // counts what it injects): here for cross-shard sends, because a
  // drop/delay/duplicate must be resolved before the entry goes on the
  // wire, and in the delivery scan for local sends.
  Shard& shard = *shards_[s];
  Scheduler& sched = *shard.scheduler;
  Auditor* const auditor = shard.auditor.get();
  const bool faulty = sched.faults_.Active();
  for (PendingWake* w : sched.round_wakers_) {
    if (!shard.cross_ports[w->node]) continue;  // all ports internal
    const Port* ports = graph_.PortsOf(w->node).data();
    const std::uint32_t* reverse =
        sched.reverse_ports_.data() + sched.port_offset_[w->node];
    for (std::uint32_t bp = 0; bp < w->sends.size(); ++bp) {
      const OutMessage& out = w->sends[bp];
      const Port& port = ports[out.port];
      const NodeIndex dst = port.neighbor;
      const std::uint32_t to = partition_.Owner(dst);
      if (to == s) continue;  // metered and delivered post-barrier
      NodeMetrics& nm = shard.metrics.Node(w->node);
      ++nm.messages_sent;
      const std::uint64_t bits = out.msg.BitSize();
      nm.bits_sent += bits;
      shard.metrics.RecordMessageBits(bits);
      SMST_SHARD_AUDIT(auditor, OnSend(r, w->node, out.port, out.msg));
      WireEntry e{w->node, dst,          reverse[out.port], bp,
                  /*due=*/0, /*birth=*/r, /*copy=*/0,        out.msg};
      if (faulty) {
        const FaultSession::MessageVerdict verdict =
            sched.faults_.OnMessage(w->node, out.port, r);
        if (verdict.drop) {
          SMST_SHARD_AUDIT(auditor, OnDrop(r, w->node, /*injected=*/true));
          continue;
        }
        // A delayed entry carries its absolute due round; the receiver
        // shard parks it. A duplicate is one extra adjacent copy, fresh
        // or delayed alongside its original — exactly the serial
        // scheduler's behaviour.
        if (verdict.delay != 0) e.due = r + verdict.delay;
        exchange_.Push(s, to, e);
        if (verdict.duplicate) {
          e.copy = 1;
          exchange_.Push(s, to, e);
        }
        continue;
      }
      exchange_.Push(s, to, e);
    }
  }
}

void ShardedEngine::ReceiveAndResume(std::uint32_t s, Round r) {
  Shard& shard = *shards_[s];
  Scheduler& sched = *shard.scheduler;
  Auditor* const auditor = shard.auditor.get();

  // Late arrivals first, exactly like the serial round: delayed messages
  // parked here fall due before this round's fresh sends, in canonical
  // key order.
  sched.DrainDelayed(r);

  // Pull this shard's inbound streams (the self ring is never used:
  // local sends skip the exchange). Each producer emitted in ascending
  // (src, batch_pos, copy) order and shards own disjoint node sets, so
  // stepping local wakers and remote stream heads by minimum source
  // reproduces the serial delivery loop's global order exactly.
  const std::uint32_t k = partition_.NumShards();
  for (std::uint32_t from = 0; from < k; ++from) {
    shard.inbound[from].clear();
    if (from != s) exchange_.DrainInto(from, s, shard.inbound[from]);
  }
  std::vector<std::size_t>& pos = shard.merge_pos;
  pos.assign(k, 0);
  const bool faulty = sched.faults_.Active();
  std::size_t wi = 0;  // next local waker in sched.round_wakers_
  for (;;) {
    std::uint32_t pick = k;
    NodeIndex best_src = kInvalidNode;
    for (std::uint32_t from = 0; from < k; ++from) {
      if (pos[from] >= shard.inbound[from].size()) continue;
      const NodeIndex src = shard.inbound[from][pos[from]].src;
      if (pick == k || src < best_src) {
        pick = from;
        best_src = src;
      }
    }
    const bool local = wi < sched.round_wakers_.size() &&
                       (pick == k || sched.round_wakers_[wi]->node < best_src);
    if (local) {
      // A local sender: run the serial delivery loop body for its batch.
      // Cross-shard sends were metered and published pre-barrier;
      // everything else — metering, verdict, delayed parking, drop
      // accounting, delivery — happens here, bit-for-bit like
      // scheduler.cpp's DeliverAndResume.
      PendingWake* w = sched.round_wakers_[wi++];
      NodeMetrics& nm = shard.metrics.Node(w->node);
      const Port* ports = graph_.PortsOf(w->node).data();
      const std::uint32_t* reverse =
          sched.reverse_ports_.data() + sched.port_offset_[w->node];
      for (std::uint32_t bp = 0; bp < w->sends.size(); ++bp) {
        const OutMessage& out = w->sends[bp];
        const Port& port = ports[out.port];
        const NodeIndex dst = port.neighbor;
        if (partition_.Owner(dst) != s) continue;  // already on the wire
        ++nm.messages_sent;
        const std::uint64_t bits = out.msg.BitSize();
        nm.bits_sent += bits;
        shard.metrics.RecordMessageBits(bits);
        SMST_SHARD_AUDIT(auditor, OnSend(r, w->node, out.port, out.msg));
        if (faulty) {
          const FaultSession::MessageVerdict verdict =
              sched.faults_.OnMessage(w->node, out.port, r);
          if (verdict.drop) {
            SMST_SHARD_AUDIT(auditor, OnDrop(r, w->node, /*injected=*/true));
            continue;
          }
          if (verdict.delay != 0) {
            sched.delayed_.push_back(
                Scheduler::DelayedMessage{r + verdict.delay, r, w->node, bp,
                                          /*copy=*/0, dst, reverse[out.port],
                                          out.msg});
            std::push_heap(sched.delayed_.begin(), sched.delayed_.end(),
                           std::greater<>{});
            if (verdict.duplicate) {
              sched.delayed_.push_back(
                  Scheduler::DelayedMessage{r + verdict.delay, r, w->node, bp,
                                            /*copy=*/1, dst, reverse[out.port],
                                            out.msg});
              std::push_heap(sched.delayed_.begin(), sched.delayed_.end(),
                             std::greater<>{});
            }
            continue;
          }
          PendingWake* target = sched.awake_now_[dst];
          if (target == nullptr) {
            ++nm.messages_dropped;
            SMST_SHARD_AUDIT(auditor, OnDrop(r, w->node, /*injected=*/false));
            continue;
          }
          target->inbox.push_back(InMessage{reverse[out.port], out.msg});
          SMST_SHARD_AUDIT(auditor, OnDeliver(r, w->node, dst, out.msg));
          if (verdict.duplicate) {
            target->inbox.push_back(InMessage{reverse[out.port], out.msg});
            SMST_SHARD_AUDIT(auditor, OnDeliver(r, w->node, dst, out.msg));
          }
          continue;
        }
        PendingWake* target = sched.awake_now_[dst];
        if (target == nullptr) {
          ++nm.messages_dropped;
          SMST_SHARD_AUDIT(auditor, OnDrop(r, w->node, /*injected=*/false));
          continue;
        }
        target->inbox.push_back(InMessage{reverse[out.port], out.msg});
        SMST_SHARD_AUDIT(auditor, OnDeliver(r, w->node, dst, out.msg));
      }
      continue;
    }
    if (pick == k) break;
    const WireEntry& e = shard.inbound[pick][pos[pick]++];
    if (e.due != 0) {
      // Adversary-delayed: park at the receiver under the canonical key.
      sched.delayed_.push_back(Scheduler::DelayedMessage{
          e.due, e.birth_round, e.src, e.batch_pos, e.copy, e.dst, e.dst_port,
          e.msg});
      std::push_heap(sched.delayed_.begin(), sched.delayed_.end(),
                     std::greater<>{});
      continue;
    }
    PendingWake* target = sched.awake_now_[e.dst];
    if (target == nullptr) {
      // Sleeping-model loss, charged to the sender. The charge lands in
      // the *receiver* shard's metrics (only this shard knows the
      // target slept); summation at merge time restores the per-node
      // total. A fresh adversary duplicate (copy == 1) of a lost send is
      // never materialized in the serial engine — the original's single
      // drop is the only charge — so its wire entry vanishes silently.
      if (e.copy == 0) {
        ++shard.metrics.Node(e.src).messages_dropped;
        SMST_SHARD_AUDIT(auditor, OnDrop(r, e.src, /*injected=*/false));
      }
      continue;
    }
    target->inbox.push_back(InMessage{e.dst_port, e.msg});
    SMST_SHARD_AUDIT(auditor, OnDeliver(r, e.src, e.dst, e.msg));
  }

  // Resume in canonical (ascending node) order; all staged wakers are
  // local, so this never touches another shard's coroutines.
  for (PendingWake* w : sched.round_wakers_) {
    sched.awake_now_[w->node] = nullptr;
    NodeMetrics& nm = shard.metrics.Node(w->node);
    ++nm.awake_rounds;
    if (shard.metrics.WakeTimesEnabled()) nm.wake_times.push_back(r);
    if (w->handle_address == nullptr) {
      // Flat node: the shard's FlatRuntime (the scheduler's installed
      // stepper) advances it in place; `w` stays valid — it lives in the
      // runtime's stable slot, not a coroutine frame.
      sched.flat_stepper_->Step(*w);
      continue;
    }
    auto handle = std::coroutine_handle<>::from_address(w->handle_address);
    // After resume(), `w` may dangle (the frame advanced past the
    // awaitable); do not touch it again.
    handle.resume();
  }
}

void ShardedEngine::MergeMetricsInto(Metrics& target) const {
  target.MergeFrom(merged_metrics_);
}

std::uint64_t ShardedEngine::CountUnfinished() const {
  std::uint64_t unfinished = 0;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    const Shard* shard = shards_[s].get();
    if (shard == nullptr) {
      // Failed before constructing: every local node is unfinished.
      unfinished += partition_.NodesOf(s).size();
      continue;
    }
    if (shard->flat) {
      unfinished += shard->flat->CountUnfinished();
      continue;
    }
    for (const TaskRunner& r : shard->runners) {
      if (!r.Done()) ++unfinished;
    }
  }
  return unfinished;
}

NodeIndex ShardedEngine::FirstUnfinishedNode() const {
  for (NodeIndex v = 0; v < graph_.NumNodes(); ++v) {
    const Shard* shard = shards_[partition_.Owner(v)].get();
    const std::uint32_t i = partition_.LocalIndex(v);
    // A shard that aborted before spawning (or constructing) has no
    // runners; treat its nodes as unfinished.
    if (shard == nullptr) return v;
    if (shard->flat) {
      if (!shard->flat->DoneAt(i)) return v;
      continue;
    }
    if (i >= shard->runners.size() || !shard->runners[i].Done()) {
      return v;
    }
  }
  return kInvalidNode;
}

void ShardedEngine::RethrowFirstNodeFailure() const {
  for (NodeIndex v = 0; v < graph_.NumNodes(); ++v) {
    const Shard* shard = shards_[partition_.Owner(v)].get();
    if (shard == nullptr) continue;
    const std::uint32_t i = partition_.LocalIndex(v);
    if (shard->flat) {
      shard->flat->RethrowIfFailedAt(i);
      continue;
    }
    if (i < shard->runners.size()) shard->runners[i].RethrowIfFailed();
  }
}

ShardedEngine::AuditTotals ShardedEngine::CheckAndSummarizeAudit() {
  AuditTotals totals;
  for (const auto& shard : shards_) {
    Auditor* a = shard ? shard->auditor.get() : nullptr;
    if (a == nullptr) continue;
    totals.audited = true;
    a->CheckAwakeMeter(shard->metrics);
    totals.awake_node_rounds += a->AwakeNodeRounds();
    totals.model_drops += a->ModelDrops();
    totals.violations += a->ViolationCount();
    totals.report += a->Report();
  }
  return totals;
}

}  // namespace smst
