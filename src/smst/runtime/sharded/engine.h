// Sharded multi-worker backend for the sleeping-model simulator.
//
// The node set is partitioned into K shards; each shard worker thread
// owns a full Scheduler instance (wake heap, delayed-message parking,
// fault session, optional auditor) plus the coroutines and metrics of
// its nodes. A round proceeds in barrier-separated phases:
//
//   select   every shard publishes NextPendingRound(); the barrier's
//            completion reduces them to the global round R = min
//   stage    each shard stages its round-R wakers (canonical ascending
//            node order) and marks them awake
//   collect  each shard meters its nodes' sends and publishes the
//            *cross-shard* ones (fault verdicts applied sender-side)
//            through the ShardExchange; shard-local sends wait for the
//            delivery scan
//   barrier
//   receive  each shard drains its delayed heap for round R, then runs
//            one scan that steps its local wakers and its remote inbound
//            streams in ascending source order — delivering local sends
//            directly (serial loop body, one copy) and remote entries to
//            awake targets (charging model drops receiver-side)
//   resume   each shard resumes its wakers in ascending node order
//
// Determinism: round staging order is canonical, fault verdicts are pure
// hashes of event coordinates, per-shard metrics/fault counters merge by
// commutative sums (maxima for round/bit peaks) in fixed shard order,
// and the delayed heap orders by the canonical message key — so a run's
// results, metrics, and outcome are bit-identical to the serial engine
// for every shard count. DESIGN.md §12 gives the full argument.
//
// Not supported here: TraceSink (per-sender drop counts are only known
// receiver-side after the barrier; the Simulator rejects trace + shards).
#pragma once

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "smst/faults/fault_plan.h"
#include "smst/graph/graph.h"
#include "smst/runtime/flat/runtime.h"
#include "smst/runtime/frame_pool.h"
#include "smst/runtime/metrics.h"
#include "smst/runtime/node.h"
#include "smst/runtime/scheduler.h"
#include "smst/runtime/sharded/exchange.h"
#include "smst/runtime/sharded/partition.h"
#include "smst/runtime/task.h"

namespace smst {

class Auditor;

struct ShardedEngineOptions {
  std::uint32_t shards = 2;
  ShardPolicy policy = ShardPolicy::kContiguousBlocks;
  std::uint64_t seed = 1;
  Round max_rounds = std::uint64_t{1} << 62;
  bool record_wake_times = false;
  const FaultPlan* fault_plan = nullptr;
  bool audit = false;  // one Auditor per shard when set
};

class ShardedEngine {
 public:
  using NodeProgram = std::function<Task<void>(NodeContext&)>;

  ShardedEngine(const WeightedGraph& graph, ShardedEngineOptions options);
  ~ShardedEngine();

  // Runs every node program to completion (or abort). Shard-level
  // failures (round watchdog, double registration) rethrow here, lowest
  // shard index first; node-program failures are left in their promises
  // for RethrowFirstNodeFailure. Per-shard metrics and fault counters
  // are merged (in shard order) before any rethrow, so callers observe
  // a consistent aborted state. May be called once.
  void Execute(const NodeProgram& program);

  // Flat twin of Execute: each shard drives its partition of `program`
  // through a scheduler-backed FlatRuntime instead of coroutines. The
  // single program instance is shared across worker threads — safe
  // because shards own disjoint node sets and flat programs keep all
  // mutable state in per-node slots (runtime/flat/program.h).
  void ExecuteFlat(FlatProgram& program);

  // --- post-run views (valid after Execute, even if it threw) ----------
  const Metrics& MergedMetrics() const { return merged_metrics_; }
  // Adds the merged per-shard totals into `target` (the Simulator's
  // metrics object, which node contexts never saw in sharded mode).
  void MergeMetricsInto(Metrics& target) const;
  const FaultStats& InjectedFaults() const { return merged_faults_; }

  std::uint64_t CountUnfinished() const;
  NodeIndex FirstUnfinishedNode() const;  // kInvalidNode if all finished
  // Rethrows the first failed node program in global node-index order.
  void RethrowFirstNodeFailure() const;

  // Merged auditor view (all zero / empty when auditing is off).
  struct AuditTotals {
    bool audited = false;
    std::uint64_t awake_node_rounds = 0;
    std::uint64_t model_drops = 0;
    std::uint64_t violations = 0;
    std::string report;  // concatenated per-shard reports ("" when clean)
  };
  // Runs each shard auditor's CheckAwakeMeter against its own metrics
  // (per-shard books balance: awakes are metered at the owner, model
  // drops at the receiver) and returns the summed totals.
  AuditTotals CheckAndSummarizeAudit();

  const ShardPartition& Partition() const { return partition_; }

 private:
  struct Shard {
    Shard(const WeightedGraph& graph, const ShardedEngineOptions& options);

    Metrics metrics;                     // full-size; merged by summation
    std::unique_ptr<Auditor> auditor;    // before scheduler: it borrows it
    std::unique_ptr<Scheduler> scheduler;
    // Contexts must be address-stable (coroutines hold references). The
    // deque's chunks come from the frame pool: this container grows on
    // the worker thread, where plain malloc is arena-growth-bound (see
    // frame_pool.cpp), and a chunked pool-backed deque sidesteps that.
    std::deque<NodeContext, FramePoolAllocator<NodeContext>> contexts;
    std::vector<TaskRunner> runners;  // parallel to partition NodesOf
    // Flat-engine runs own a FlatRuntime instead of contexts/runners
    // (also parallel to partition NodesOf); exactly one form is live.
    std::unique_ptr<FlatRuntime> flat;
    // Consumer-side scratch, reused every round: one inbound buffer per
    // producer shard, plus the merge cursors over those buffers.
    std::vector<std::vector<WireEntry>> inbound;
    std::vector<std::size_t> merge_pos;
    // cross_ports[v] != 0 iff local node v has at least one neighbor
    // owned by another shard. CollectSends skips a waker's whole batch
    // on this bit, so the pre-barrier sweep touches only boundary
    // nodes — on a block-partitioned ring that is ~2 nodes per shard
    // instead of all of them. Indexed by global node; only local
    // entries are ever written or read.
    std::vector<std::uint8_t> cross_ports;
  };

  // Shared Execute/ExecuteFlat body; exactly one of the programs is
  // non-null and selects what ShardMain spawns per shard.
  void ExecuteImpl(const NodeProgram* coro, FlatProgram* flat);
  void ShardMain(std::uint32_t s, const NodeProgram* coro, FlatProgram* flat);
  void CollectSends(std::uint32_t s, Round r);
  void ReceiveAndResume(std::uint32_t s, Round r);

  // Barrier completion: reduce the published per-shard next rounds to
  // the global round. Runs exactly once per barrier phase, on the last
  // arriving thread; the barrier sequences it against all shard reads.
  struct RoundReduce {
    ShardedEngine* engine;
    void operator()() noexcept {
      Round m = kMaxRound;
      for (Round r : engine->next_round_) m = std::min(m, r);
      engine->global_round_ = m;
    }
  };

  const WeightedGraph& graph_;
  ShardedEngineOptions options_;
  ShardPartition partition_;
  ShardExchange exchange_;
  // Slot s is constructed by worker s itself (ShardMain), not in the
  // engine constructor: the O(n)-sized Metrics and Scheduler arrays are
  // then built in parallel and first-touched by their owner thread.
  // Null after Execute only if that shard failed before constructing;
  // its exception is in errors_[s]. The join in Execute orders every
  // slot's write before the main thread's reads.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::exception_ptr> errors_;  // shard-level failures

  std::vector<Round> next_round_;  // written by shard s before barrier
  Round global_round_ = 0;         // written by the barrier completion
  std::optional<std::barrier<RoundReduce>> barrier_;
  std::atomic<bool> abort_{false};

  Metrics merged_metrics_;
  FaultStats merged_faults_;
  bool ran_ = false;
};

}  // namespace smst
