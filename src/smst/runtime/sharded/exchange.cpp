#include "smst/runtime/sharded/exchange.h"

#include <bit>

namespace smst {

SpscRing::SpscRing(std::size_t capacity_pow2)
    : buf_(std::bit_ceil(capacity_pow2 < 2 ? 2 : capacity_pow2)),
      mask_(buf_.size() - 1) {}

void SpscRing::Push(const WireEntry& e) {
  const std::size_t tail = tail_.load(std::memory_order_relaxed);
  const std::size_t head = head_.load(std::memory_order_acquire);
  if (tail - head >= buf_.size()) {
    // Ring full. Spilling (instead of resizing or spinning) keeps Push
    // wait-free and the ring allocation-free at steady state; the spill
    // is only read after the round barrier, so no synchronization here.
    spill_.push_back(e);
    return;
  }
  buf_[tail & mask_] = e;
  tail_.store(tail + 1, std::memory_order_release);
}

void SpscRing::DrainInto(std::vector<WireEntry>& out) {
  std::size_t head = head_.load(std::memory_order_relaxed);
  const std::size_t tail = tail_.load(std::memory_order_acquire);
  while (head != tail) {
    out.push_back(buf_[head & mask_]);
    ++head;
  }
  head_.store(head, std::memory_order_release);
  if (!spill_.empty()) {
    // Entries spill only after the ring filled, so ring-then-spill is
    // push order.
    out.insert(out.end(), spill_.begin(), spill_.end());
    spill_.clear();
  }
}

ShardExchange::ShardExchange(std::uint32_t shards)
    : shards_(shards), rings_(static_cast<std::size_t>(shards) * shards) {}

}  // namespace smst
