#include "smst/runtime/sharded/partition.h"

#include <algorithm>
#include <stdexcept>

namespace smst {

const char* ShardPolicyName(ShardPolicy p) {
  switch (p) {
    case ShardPolicy::kContiguousBlocks: return "block";
    case ShardPolicy::kRoundRobin: return "rr";
  }
  return "?";
}

ShardPolicy ParseShardPolicy(const std::string& text) {
  if (text == "block") return ShardPolicy::kContiguousBlocks;
  if (text == "rr") return ShardPolicy::kRoundRobin;
  throw std::invalid_argument("unknown shard policy '" + text +
                              "' (expected block or rr)");
}

ShardPartition::ShardPartition(std::size_t num_nodes, std::uint32_t shards,
                               ShardPolicy policy)
    : shards_(std::max<std::uint32_t>(
          1, std::min<std::uint64_t>(shards, std::max<std::size_t>(
                                                 num_nodes, 1)))),
      policy_(policy),
      owner_(num_nodes),
      local_index_(num_nodes),
      nodes_(shards_) {
  if (policy_ == ShardPolicy::kRoundRobin) {
    for (NodeIndex v = 0; v < num_nodes; ++v) owner_[v] = v % shards_;
  } else {
    // Balanced contiguous blocks: the first n % K shards get one extra
    // node, so block sizes differ by at most one.
    const std::size_t base = num_nodes / shards_;
    const std::size_t extra = num_nodes % shards_;
    std::size_t begin = 0;
    for (std::uint32_t s = 0; s < shards_; ++s) {
      const std::size_t size = base + (s < extra ? 1 : 0);
      for (std::size_t i = 0; i < size; ++i) {
        owner_[begin + i] = s;
      }
      begin += size;
    }
  }
  for (NodeIndex v = 0; v < num_nodes; ++v) {
    local_index_[v] = static_cast<std::uint32_t>(nodes_[owner_[v]].size());
    nodes_[owner_[v]].push_back(v);
  }
}

}  // namespace smst
