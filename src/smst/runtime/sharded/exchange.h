// Cross-shard message exchange for the sharded simulator backend.
//
// Every surviving *cross-shard* message of a round — fresh or adversary-
// delayed — travels as a WireEntry through the per-(producer, consumer)
// ring of a ShardExchange; shard-local sends are delivered directly by
// the owner's post-barrier scan and never touch a ring. Receive order
// stays a pure function of the entries themselves: each producer emits
// in ascending source order (it iterates its staged wakers sorted by
// node index), shards own disjoint node sets, and the consumer steps its
// local wakers and its remote stream heads by minimum source — so the
// interleaved sequence equals the serial engine's delivery order exactly,
// for any shard count. DESIGN.md §12 gives the full determinism argument.
//
// Concurrency: each pair ring is single-producer single-consumer with
// acquire/release cursors (the hmbdc-style bounded ring), so a consumer
// may start draining while the producer is still appending. The sharded
// driver additionally separates the produce and consume phases with a
// round barrier; the ring's overflow spill vector relies on that barrier
// (it is produced before the barrier and consumed only after).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "smst/graph/graph.h"
#include "smst/runtime/message.h"

namespace smst {

// Same alias as runtime/scheduler.h; redeclaring it identically avoids
// pulling the whole scheduler header into the wire format.
using Round = std::uint64_t;

// One message on the wire between shards. `due` = 0 means fresh (deliver
// in the current round iff the destination is awake); otherwise it is the
// absolute round an adversary-delayed message falls due, and the consumer
// parks it in its delayed heap. (birth_round, src, batch_pos, copy) is
// the message's canonical identity: the round it was sent, its sender,
// its position in the sender's send batch, and 0/1 for original versus
// adversary duplicate. The delayed heap orders by exactly this key, so
// drain order is shard-count-invariant.
struct WireEntry {
  NodeIndex src = kInvalidNode;
  NodeIndex dst = kInvalidNode;
  std::uint32_t dst_port = 0;
  std::uint32_t batch_pos = 0;
  Round due = 0;
  Round birth_round = 0;
  std::uint8_t copy = 0;
  Message msg;
};

// Bounded single-producer single-consumer ring with an unbounded spill.
// Push never blocks: when the ring is full the entry goes to the spill
// vector, which the consumer reads only after the round barrier.
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity_pow2 = 1024);

  // Producer side only.
  void Push(const WireEntry& e);
  // Consumer side only: appends everything currently visible (ring, then
  // spill) to `out` in push order and empties the ring.
  // Precondition for reading the spill: the producer's round phase has
  // ended (the driver's barrier provides the happens-before edge).
  void DrainInto(std::vector<WireEntry>& out);

  bool EmptyUnsynchronized() const {
    return head_.load(std::memory_order_relaxed) ==
               tail_.load(std::memory_order_relaxed) &&
           spill_.empty();
  }

 private:
  std::vector<WireEntry> buf_;
  std::size_t mask_;
  // Cache-line separated cursors: tail_ is producer-written, head_ is
  // consumer-written; keeping them on distinct lines avoids ping-ponging
  // one line between the two workers every push/pop.
  alignas(64) std::atomic<std::size_t> tail_{0};  // next write slot
  alignas(64) std::atomic<std::size_t> head_{0};  // next read slot
  std::vector<WireEntry> spill_;  // producer-owned overflow
};

// K x K mesh of pair rings. Producer s pushes to (s, t) during its
// collect phase; consumer t drains column t during its receive phase.
class ShardExchange {
 public:
  explicit ShardExchange(std::uint32_t shards);

  void Push(std::uint32_t from, std::uint32_t to, const WireEntry& e) {
    rings_[from * shards_ + to].Push(e);
  }

  // Drains ring (from, to) into `out` (appending); producer order — i.e.
  // ascending (src, batch_pos, copy) within the round — is preserved.
  void DrainInto(std::uint32_t from, std::uint32_t to,
                 std::vector<WireEntry>& out) {
    rings_[from * shards_ + to].DrainInto(out);
  }

  std::uint32_t NumShards() const { return shards_; }

 private:
  std::uint32_t shards_;
  std::vector<SpscRing> rings_;
};

}  // namespace smst
