#include "smst/runtime/simulator.h"

#include <numeric>
#include <stdexcept>
#include <string>

#include "smst/faults/auditor.h"
#include "smst/runtime/flat/engine.h"
#include "smst/runtime/flat/runtime.h"
#include "smst/runtime/sharded/engine.h"

namespace smst {

namespace {

bool WantAuditor(AuditMode mode) {
#ifdef SMST_NO_AUDITOR
  (void)mode;
  return false;
#else
  switch (mode) {
    case AuditMode::kOn: return true;
    case AuditMode::kOff: return false;
    case AuditMode::kDefault:
#ifdef SMST_AUDIT_DEFAULT_ON
      return true;
#else
      return false;
#endif
  }
  return false;
#endif
}

SchedulerOptions MakeSchedulerOptions(const SimulatorOptions& o,
                                      Auditor* auditor) {
  SchedulerOptions s;
  s.max_rounds = o.max_rounds;
  s.fault_plan = o.fault_plan;
  s.run_seed = o.seed;
  s.auditor = auditor;
  return s;
}

}  // namespace

const char* EngineModeName(EngineMode mode) {
  switch (mode) {
    case EngineMode::kCoroutine: return "coroutine";
    case EngineMode::kFlat: return "flat";
  }
  return "?";
}

EngineMode ParseEngineMode(const std::string& name) {
  if (name == "coroutine") return EngineMode::kCoroutine;
  if (name == "flat") return EngineMode::kFlat;
  throw std::invalid_argument("unknown engine '" + name +
                              "' (valid: coroutine, flat)");
}

Simulator::Simulator(const WeightedGraph& graph, SimulatorOptions options)
    : graph_(graph), options_(std::move(options)), metrics_(graph.NumNodes()) {
  if (options_.record_wake_times) metrics_.EnableWakeTimes();
  if (options_.engine == EngineMode::kFlat && options_.trace) {
    // TraceEvent is defined per coroutine resume (per-wake send/inbox
    // counts at suspension points); a flat node has no such points, so
    // reject the combination loudly rather than emit a stream with
    // different meaning.
    throw std::invalid_argument(
        "tracing requires the coroutine engine (--engine coroutine)");
  }
  if (options_.shards > 0) {
    if (options_.trace) {
      // A sender's model-drop counts are only known receiver-side after
      // the exchange barrier, so exact per-sender trace events cannot be
      // emitted shard-locally. Tracing is a debugging feature; use the
      // serial engine for it.
      throw std::invalid_argument(
          "tracing requires the serial engine (shards = 0)");
    }
    ShardedEngineOptions e;
    e.shards = options_.shards;
    e.policy = options_.shard_policy;
    e.seed = options_.seed;
    e.max_rounds = options_.max_rounds;
    e.record_wake_times = options_.record_wake_times;
    e.fault_plan = options_.fault_plan;
    e.audit = WantAuditor(options_.audit);
    sharded_ = std::make_unique<ShardedEngine>(graph_, e);
    return;
  }
  auditor_ = WantAuditor(options_.audit) ? std::make_unique<Auditor>(graph)
                                         : nullptr;
  scheduler_ = std::make_unique<Scheduler>(
      graph, metrics_, MakeSchedulerOptions(options_, auditor_.get()));
  if (options_.trace) scheduler_->SetTraceSink(options_.trace);
}

Simulator::~Simulator() = default;

const FaultStats& Simulator::InjectedFaults() const {
  return sharded_ ? sharded_->InjectedFaults() : scheduler_->InjectedFaults();
}

void Simulator::Execute(const NodeProgram& program) {
  if (ran_) throw std::logic_error("Simulator may run only once");
  ran_ = true;
  if (options_.engine != EngineMode::kCoroutine) {
    throw std::logic_error(
        "SimulatorOptions::engine is flat; drive the run with the "
        "FlatProgram overload");
  }

  if (sharded_) {
    // The engine owns the per-shard contexts and runners; it merges the
    // per-shard metrics into its totals before rethrowing shard-level
    // failures, so metrics_ is consistent on every exit path.
    try {
      sharded_->Execute(program);
    } catch (...) {
      sharded_->MergeMetricsInto(metrics_);
      throw;
    }
    sharded_->MergeMetricsInto(metrics_);
    sharded_->RethrowFirstNodeFailure();
    return;
  }

  Xoshiro256 root_rng(options_.seed);
  runners_.reserve(graph_.NumNodes());
  for (NodeIndex v = 0; v < graph_.NumNodes(); ++v) {
    // Each node's private randomness is a substream keyed by its index so
    // runs are reproducible regardless of scheduling order.
    contexts_.emplace_back(graph_, v, *scheduler_, metrics_,
                           root_rng.Split(v));
  }
  for (NodeIndex v = 0; v < graph_.NumNodes(); ++v) {
    runners_.emplace_back(program(contexts_[v]));
  }
  // Start after all tasks exist: a program may run to completion
  // immediately, and starting in a second pass keeps round-1 sends of all
  // nodes registered before the first round executes.
  for (TaskRunner& r : runners_) r.Start();

  scheduler_->RunUntilIdle();

  // Rethrow failures before the never-finished check: a node that threw
  // (e.g. Scheduler::Register rejecting a bad wake from inside the Awake
  // suspend path) is the root cause, and peers it stranded mid-protocol
  // must not mask it with the generic error below.
  for (NodeIndex v = 0; v < graph_.NumNodes(); ++v) {
    runners_[v].RethrowIfFailed();
  }
}

void Simulator::ExecuteFlat(FlatProgram& program) {
  if (ran_) throw std::logic_error("Simulator may run only once");
  ran_ = true;
  if (options_.engine != EngineMode::kFlat) {
    throw std::logic_error(
        "SimulatorOptions::engine is coroutine; drive the run with the "
        "NodeProgram overload");
  }

  if (sharded_) {
    try {
      sharded_->ExecuteFlat(program);
    } catch (...) {
      sharded_->MergeMetricsInto(metrics_);
      throw;
    }
    sharded_->MergeMetricsInto(metrics_);
    sharded_->RethrowFirstNodeFailure();
    return;
  }

  const bool faulted =
      options_.fault_plan != nullptr && !options_.fault_plan->Empty();
  if (!auditor_ && !faulted) {
    // Nothing observes the event stream (no auditor, no adversary, no
    // trace — rejected in the constructor), so the run can use the
    // batched fast engine instead of the scheduler (DESIGN.md §13).
    flat_engine_ = std::make_unique<FlatEngine>(graph_, metrics_, *scheduler_,
                                                options_.max_rounds);
    flat_engine_->Run(program);
    flat_engine_->RethrowFirstFailure();
    return;
  }

  std::vector<NodeIndex> nodes(graph_.NumNodes());
  std::iota(nodes.begin(), nodes.end(), NodeIndex{0});
  flat_runtime_ = std::make_unique<FlatRuntime>(*scheduler_, program,
                                                metrics_, std::move(nodes));
  flat_runtime_->StartAll();
  scheduler_->RunUntilIdle();
  flat_runtime_->RethrowFirstFailure();
}

std::uint64_t Simulator::CountUnfinished() const {
  if (sharded_) return sharded_->CountUnfinished();
  if (flat_engine_) return flat_engine_->CountUnfinished();
  if (flat_runtime_) return flat_runtime_->CountUnfinished();
  std::uint64_t unfinished = 0;
  for (const TaskRunner& r : runners_) {
    if (!r.Done()) ++unfinished;
  }
  return unfinished;
}

NodeIndex Simulator::FirstUnfinishedNode() const {
  if (sharded_) return sharded_->FirstUnfinishedNode();
  if (flat_engine_) return flat_engine_->FirstUnfinishedNode();
  if (flat_runtime_) return flat_runtime_->FirstUnfinishedNode();
  for (NodeIndex v = 0; v < graph_.NumNodes(); ++v) {
    if (!runners_[v].Done()) return v;
  }
  return kInvalidNode;
}

Simulator::AuditSummary Simulator::Audit() const {
  if (sharded_) return sharded_audit_;
  AuditSummary s;
  if (auditor_) {
    s.audited = true;
    s.awake_node_rounds = auditor_->AwakeNodeRounds();
    s.model_drops = auditor_->ModelDrops();
    s.violations = auditor_->ViolationCount();
    s.report = auditor_->Report();
  }
  return s;
}

void Simulator::FillAuditSummary(RunOutcome& out) const {
  const AuditSummary s = Audit();
  if (!s.audited) return;
  out.audited_awake_node_rounds = s.awake_node_rounds;
  out.audited_model_drops = s.model_drops;
  out.audit_violations = s.violations;
}

void Simulator::FinishRun() {
  const NodeIndex unfinished = FirstUnfinishedNode();
  if (unfinished != kInvalidNode) {
    throw std::runtime_error(
        "node " + std::to_string(unfinished) +
        " never finished (suspended with an empty wake queue)");
  }
  if (sharded_) {
    const ShardedEngine::AuditTotals t = sharded_->CheckAndSummarizeAudit();
    sharded_audit_ = AuditSummary{t.audited, t.awake_node_rounds,
                                  t.model_drops, t.violations, t.report};
    if (sharded_audit_.audited && sharded_audit_.violations != 0) {
      throw std::runtime_error(sharded_audit_.report);
    }
    return;
  }
  if (auditor_) {
    // Model conformance is part of the fault-free contract: a clean run
    // must also be a clean audit (builds with SMST_AUDIT make every
    // existing test a conformance test this way).
    auditor_->CheckAwakeMeter(metrics_);
    if (!auditor_->Clean()) {
      throw std::runtime_error(auditor_->Report());
    }
  }
}

void Simulator::Run(const NodeProgram& program) {
  Execute(program);
  FinishRun();
}

void Simulator::Run(FlatProgram& program) {
  ExecuteFlat(program);
  FinishRun();
}

void Simulator::ClassifyFailure(RunOutcome& out) {
  try {
    throw;
  } catch (const NonTerminationError& e) {
    out.status = RunStatus::kNonTermination;
    out.detail = e.what();
  } catch (const ProtocolStallError& e) {
    out.status = RunStatus::kCrashedPartition;
    out.detail = e.what();
  } catch (const std::logic_error&) {
    throw;  // a programming bug, not a fault effect
  } catch (const std::exception& e) {
    // Any other failure a fault drove the algorithm into (defensive
    // checks on malformed protocol state) counts as a crashed run.
    out.status = RunStatus::kCrashedPartition;
    out.detail = e.what();
  }
}

RunOutcome Simulator::FinishOutcome(RunOutcome out) {
  const std::uint64_t unfinished = CountUnfinished();
  out.unfinished_nodes = unfinished;
  if (out.status == RunStatus::kCompleted && unfinished > 0) {
    out.status = RunStatus::kCrashedPartition;
    out.detail = std::to_string(unfinished) +
                 " node program(s) never finished (crash-stopped nodes "
                 "and the peers they stranded)";
  }
  out.last_round = metrics_.LastRound();
  out.faults = InjectedFaults();
  if (sharded_) {
    const ShardedEngine::AuditTotals t = sharded_->CheckAndSummarizeAudit();
    sharded_audit_ = AuditSummary{t.audited, t.awake_node_rounds,
                                  t.model_drops, t.violations, t.report};
  } else if (auditor_) {
    auditor_->CheckAwakeMeter(metrics_);
  }
  FillAuditSummary(out);
  return out;
}

RunOutcome Simulator::RunToOutcome(const NodeProgram& program) {
  RunOutcome out;
  try {
    Execute(program);
  } catch (...) {
    ClassifyFailure(out);
  }
  return FinishOutcome(out);
}

RunOutcome Simulator::RunToOutcome(FlatProgram& program) {
  RunOutcome out;
  try {
    ExecuteFlat(program);
  } catch (...) {
    ClassifyFailure(out);
  }
  return FinishOutcome(out);
}

}  // namespace smst
