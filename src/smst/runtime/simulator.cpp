#include "smst/runtime/simulator.h"

#include <stdexcept>
#include <string>

namespace smst {

Simulator::Simulator(const WeightedGraph& graph, SimulatorOptions options)
    : graph_(graph),
      options_(options),
      metrics_(graph.NumNodes()),
      scheduler_(graph, metrics_, options.max_rounds) {
  if (options.record_wake_times) metrics_.EnableWakeTimes();
  if (options_.trace) scheduler_.SetTraceSink(options_.trace);
}

Simulator::~Simulator() = default;

void Simulator::Run(const NodeProgram& program) {
  if (ran_) throw std::logic_error("Simulator::Run may be called once");
  ran_ = true;

  Xoshiro256 root_rng(options_.seed);
  runners_.reserve(graph_.NumNodes());
  for (NodeIndex v = 0; v < graph_.NumNodes(); ++v) {
    // Each node's private randomness is a substream keyed by its index so
    // runs are reproducible regardless of scheduling order.
    contexts_.emplace_back(graph_, v, scheduler_, metrics_,
                           root_rng.Split(v));
  }
  for (NodeIndex v = 0; v < graph_.NumNodes(); ++v) {
    runners_.emplace_back(program(contexts_[v]));
  }
  // Start after all tasks exist: a program may run to completion
  // immediately, and starting in a second pass keeps round-1 sends of all
  // nodes registered before the first round executes.
  for (TaskRunner& r : runners_) r.Start();

  scheduler_.RunUntilIdle();

  // Rethrow failures before the never-finished check: a node that threw
  // (e.g. Scheduler::Register rejecting a bad wake from inside the Awake
  // suspend path) is the root cause, and peers it stranded mid-protocol
  // must not mask it with the generic error below.
  for (NodeIndex v = 0; v < graph_.NumNodes(); ++v) {
    runners_[v].RethrowIfFailed();
  }
  for (NodeIndex v = 0; v < graph_.NumNodes(); ++v) {
    if (!runners_[v].Done()) {
      throw std::runtime_error(
          "node " + std::to_string(v) +
          " never finished (suspended with an empty wake queue)");
    }
  }
}

}  // namespace smst
