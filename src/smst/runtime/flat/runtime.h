// Generic flat-node driver: runs a FlatProgram on the *real* Scheduler.
//
// Each node owns one stable slot holding its PendingWake; registering the
// wake with a null handle_address routes the scheduler's resume back into
// FlatRuntime::Step (the FlatStepper hook), which advances the program's
// state machine and re-registers the same wake for the next round. Every
// scheduler feature — fault verdicts, wake jitter/crash, the auditor, the
// sharded engine's exchange — therefore sees the identical event stream
// as a coroutine run of the same algorithm. The cost of generality is the
// scheduler's per-wake bookkeeping; the fault-free serial fast path lives
// in runtime/flat/engine.h instead.
#pragma once

#include <cstdint>
#include <exception>
#include <vector>

#include "smst/graph/graph.h"
#include "smst/runtime/flat/program.h"
#include "smst/runtime/scheduler.h"

namespace smst {

class FlatRuntime : public FlatStepper {
 public:
  // `nodes` lists the node indices this runtime owns (all of them for the
  // serial engine; one shard's partition for the sharded engine), in
  // ascending order. Installs itself as the scheduler's FlatStepper.
  FlatRuntime(Scheduler& scheduler, FlatProgram& program, Metrics& metrics,
              std::vector<NodeIndex> nodes);

  // Runs every node to its first suspension and registers the resulting
  // wakes, in ascending node order — the flat equivalent of constructing
  // all Tasks and then TaskRunner::Start()ing them in a second pass.
  void StartAll();

  // FlatStepper: one awake round for the node owning `wake`.
  void Step(PendingWake& wake) override;

  // Mirrors TaskRunner queries, indexed by position in `nodes`. A failed
  // node counts as done (its coroutine twin ran to completion via
  // unhandled_exception); a node whose wake was crash-suppressed stays
  // not-done forever.
  bool DoneAt(std::size_t local) const {
    return status_[local] != Status::kRunning;
  }
  void RethrowIfFailedAt(std::size_t local) const;

  std::uint64_t CountUnfinished() const;
  // Smallest owned node index still unfinished (kInvalidNode if none).
  NodeIndex FirstUnfinishedNode() const;
  // Rethrows the failure of the smallest-index failed node, if any.
  void RethrowFirstFailure() const;

 private:
  enum class Status : std::uint8_t { kRunning, kDone, kFailed };

  Scheduler& scheduler_;
  FlatProgram& program_;
  FlatEnv env_;
  std::vector<NodeIndex> nodes_;
  // Sized once in the constructor and never resized: the scheduler holds
  // pointers into wakes_ across the whole run.
  std::vector<PendingWake> wakes_;
  std::vector<Status> status_;
  std::vector<std::exception_ptr> errors_;
};

}  // namespace smst
