#include "smst/runtime/flat/runtime.h"

#include <utility>

namespace smst {

FlatRuntime::FlatRuntime(Scheduler& scheduler, FlatProgram& program,
                         Metrics& metrics, std::vector<NodeIndex> nodes)
    : scheduler_(scheduler),
      program_(program),
      nodes_(std::move(nodes)),
      wakes_(nodes_.size()),
      status_(nodes_.size(), Status::kRunning),
      errors_(nodes_.size()) {
  env_.metrics = &metrics;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    wakes_[i].node = nodes_[i];
    wakes_[i].handle_address = nullptr;  // marks the wake as flat
  }
  scheduler_.SetFlatStepper(this);
}

void FlatRuntime::StartAll() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    PendingWake& w = wakes_[i];
    try {
      const Round first = program_.Start(w.node, env_, w.sends);
      if (first == kFlatDone) {
        status_[i] = Status::kDone;
        w.sends.clear();
        continue;
      }
      w.round = first;
      // Register validates the send batch and may jitter or swallow the
      // wake under a fault plan; a throw here is the node's failure
      // exactly as a coroutine's Awake-suspend throw lands in its
      // promise (the catch below is that promise).
      scheduler_.Register(&w);
    } catch (...) {
      status_[i] = Status::kFailed;
      errors_[i] = std::current_exception();
      w.sends.clear();
    }
  }
}

void FlatRuntime::Step(PendingWake& w) {
  const std::size_t i = static_cast<std::size_t>(&w - wakes_.data());
  // Hand the program this round's inbox and a cleared send batch; the
  // wake's own containers keep their heap capacity across rounds.
  InboxBatch inbox = std::move(w.inbox);
  w.inbox.clear();
  w.sends.clear();
  try {
    const Round next = program_.Step(w.node, w.round, env_, inbox, w.sends);
    if (next == kFlatDone) {
      status_[i] = Status::kDone;
      w.sends.clear();
      return;
    }
    w.round = next;
    scheduler_.Register(&w);
  } catch (...) {
    status_[i] = Status::kFailed;
    errors_[i] = std::current_exception();
    w.sends.clear();
  }
}

void FlatRuntime::RethrowIfFailedAt(std::size_t local) const {
  if (errors_[local]) std::rethrow_exception(errors_[local]);
}

std::uint64_t FlatRuntime::CountUnfinished() const {
  std::uint64_t unfinished = 0;
  for (const Status s : status_) {
    if (s == Status::kRunning) ++unfinished;
  }
  return unfinished;
}

NodeIndex FlatRuntime::FirstUnfinishedNode() const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (status_[i] == Status::kRunning) return nodes_[i];
  }
  return kInvalidNode;
}

void FlatRuntime::RethrowFirstFailure() const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (errors_[i]) std::rethrow_exception(errors_[i]);
  }
}

}  // namespace smst
