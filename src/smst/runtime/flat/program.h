// Flat (coroutine-less) node programs.
//
// A FlatProgram is the batched state-machine form of a NodeProgram: one
// object holds struct-of-arrays state for *all* nodes and advances any
// node by one awake round per call. Instead of `co_await Awake(r, sends)`
// suspending a per-node coroutine frame, a flat node *returns* its next
// awake round (with the round's sends pushed into the out-parameter) and
// is called again with that round's inbox. The mapping is exact:
//
//   coroutine                      flat
//   ---------                      ----
//   program(ctx) + Start()         Start(v, env, sends) -> first round
//   resume with inbox              Step(v, now, env, inbox, sends)
//   co_await Awake(r, sends)       return r (sends already pushed)
//   co_return                      return kFlatDone
//
// Engines call Start once per node (before round 1) and then Step each
// time the node's requested round comes due, in the same canonical
// ascending-node order as coroutine resumes — which is why a flat run is
// bit-identical to the coroutine run of the same algorithm (DESIGN.md
// §13). Exceptions thrown by Start/Step mark the node failed exactly
// like a coroutine exception reaching the promise.
#pragma once

#include <cstdint>

#include "smst/graph/graph.h"
#include "smst/runtime/message.h"
#include "smst/runtime/metrics.h"

namespace smst {

using Round = std::uint64_t;

// Sentinel return: the node's program finished (co_return equivalent).
// Real awake rounds are >= 1, so 0 is unambiguous.
inline constexpr Round kFlatDone = 0;

// What a flat program may touch besides its own state: the run's metrics
// sink (for Probe / ExtendRun — the out-of-band telemetry NodeContext
// exposes). Per-node randomness is the program's own concern: drivers
// split a root PRNG per node exactly like Simulator does for contexts.
struct FlatEnv {
  Metrics* metrics = nullptr;
};

// A node program lowered to a batched state machine over all nodes.
// One instance serves every node of a run (sharded engines share it
// across worker threads; implementations keep per-node state in
// disjoint per-node slots and touch nothing else from Step).
class FlatProgram {
 public:
  virtual ~FlatProgram() = default;

  // Runs node v up to its first suspension. Returns the node's first
  // awake round with that round's sends pushed into `sends`, or
  // kFlatDone if the node finishes without ever waking.
  virtual Round Start(NodeIndex v, FlatEnv& env, SendBatch& sends) = 0;

  // Advances node v through its awake round `now`: `inbox` holds the
  // round's delivered messages; the implementation pushes the *next*
  // requested round's sends into `sends` and returns that round, or
  // kFlatDone when the node terminates.
  virtual Round Step(NodeIndex v, Round now, FlatEnv& env,
                     const InboxBatch& inbox, SendBatch& sends) = 0;
};

// The node-local graph view a flat program sees: the same ID / degree /
// port-weight queries NodeContext offers, without the scheduler handle.
struct FlatNodeRef {
  const WeightedGraph* g = nullptr;
  NodeIndex v = kInvalidNode;

  NodeId Id() const { return g->IdOf(v); }
  std::uint64_t NumNodesKnown() const { return g->NumNodes(); }
  NodeId MaxIdKnown() const { return g->MaxId(); }
  std::uint32_t Degree() const {
    return static_cast<std::uint32_t>(g->DegreeOf(v));
  }
  Weight WeightAtPort(std::uint32_t port) const {
    return g->PortsOf(v)[port].weight;
  }
};

}  // namespace smst
