// Fault-free serial fast path for flat programs.
//
// When a run needs no fault plan, no auditor, and no trace sink, nothing
// in the scheduler's per-wake machinery (pointer-sorted wake staging,
// fault verdict branches, delayed-message heap) earns its keep: a flat
// program's nodes are dense indices with one stable slot each, so the
// whole round loop collapses into array sweeps over struct-of-arrays
// node state. This engine is that collapse. It reproduces the serial
// scheduler's observable behaviour exactly — same round clock, same
// canonical ascending-node delivery and step order, same metrics
// (messages / bits / drops / awake rounds / wake times / last round),
// same error messages — so its runs are bit-identical to the coroutine
// engine's (pinned by tests/flat_engine_test.cpp). See DESIGN.md §13
// for why each sweep preserves the scheduler's order.
#pragma once

#include <cstdint>
#include <exception>
#include <vector>

#include "smst/graph/graph.h"
#include "smst/runtime/flat/program.h"
#include "smst/runtime/metrics.h"
#include "smst/runtime/scheduler.h"

namespace smst {

class FlatEngine {
 public:
  // Borrows the CSR reverse-port tables from `csr` (a Scheduler built on
  // the same graph; FlatEngine is its friend) so both engines resolve
  // receiver ports from one precomputed layout.
  FlatEngine(const WeightedGraph& graph, Metrics& metrics,
             const Scheduler& csr, Round max_rounds);

  // Starts every node and runs rounds until none is pending. Throws
  // NonTerminationError when the watchdog trips; program failures are
  // captured per node (rethrow with RethrowFirstFailure, as the
  // simulator does after a run).
  void Run(FlatProgram& program);

  std::uint64_t CountUnfinished() const;
  NodeIndex FirstUnfinishedNode() const;
  void RethrowFirstFailure() const;

 private:
  enum class Status : std::uint8_t { kRunning, kDone, kFailed };

  // Queues node v's next wake at round r, enforcing the scheduler's
  // fault-free Register contract (monotone rounds, valid ports, one
  // message per port) with identical error messages.
  void RegisterNext(NodeIndex v, Round r, const SendBatch& sends);
  void ValidateSends(NodeIndex v, const SendBatch& sends);
  // The bucket-push half of RegisterNext, for callers that already
  // validated the batch (the fused sweep validates while the node's
  // state is cache-hot).
  void PushRegistered(NodeIndex v, Round r);
  // The round loop proper; split out of Run so the metric fold below
  // runs on both the clean exit and the watchdog throw.
  void RunRounds(FlatProgram& program, FlatEnv& env, bool wake_times);
  // One all-awake round as a single fused sweep: node v steps as soon as
  // the ascending delivery cursor passes thresh_[v] (so its inbox is
  // complete and its send slot already drained), instead of in a second
  // full pass after all deliveries. At large n this halves the memory
  // traffic per round — the step re-reads inbox_[v]/sends_[v] while
  // they are still in cache. Observable behaviour is unchanged: delivery
  // order is still ascending sender, each node still sees its complete
  // round-r inbox, and per-node effects (metrics, errors, next-round
  // registrations) are order-independent across nodes within a round.
  void FusedRound(FlatProgram& program, FlatEnv& env, Round r,
                  bool wake_times);
  void BuildFusedOrder();
  // Adds the dense accumulator records into the shared NodeMetrics
  // records and resets them (so a second call is a no-op).
  void FoldMetrics();

  const WeightedGraph& graph_;
  Metrics& metrics_;
  Round max_rounds_;
  Round current_ = 0;

  // Struct-of-arrays node state: per-node mailboxes (sends_[v] is the
  // batch node v queued for its next awake round; inbox_[v] what this
  // round delivered to it), the program status lane, and the captured
  // failure, all indexed by the dense node index. A node's pending round
  // lives only in the queue buckets below — no per-node copy is kept.
  std::vector<SendBatch> sends_;
  std::vector<InboxBatch> inbox_;
  std::vector<Status> status_;
  std::vector<std::exception_ptr> errors_;

  // Awake stamp: stamp_[v] == r iff v is awake in the round r currently
  // being delivered (rounds are >= 1, so 0 means never). One store per
  // staged node replaces the scheduler's awake_now_ pointer map.
  std::vector<Round> stamp_;

  // Dense meter records (32-byte stride, one hardware-prefetched stream)
  // for the hot per-round accounting; folded into the 64-byte
  // NodeMetrics records once per run by FoldMetrics. Wake-time
  // recording, when enabled, still appends to NodeMetrics directly (it
  // needs the per-round value, not a sum).
  struct MeterAcc {
    std::uint64_t awake = 0;
    std::uint64_t msgs = 0;
    std::uint64_t bits = 0;
    std::uint64_t drops = 0;
  };
  std::vector<MeterAcc> acc_;
  std::uint64_t max_bits_seen_ = 0;

  // Round queue: the scheduler's bucketed min-heap with NodeIndex
  // buckets instead of PendingWake pointers. The dominant pattern —
  // every staged node re-registers for the same next round, in
  // ascending order — appends to one open bucket, so staging a round is
  // usually a single swap (the sortedness check during splicing skips
  // the sort entirely; the pointer engine cannot, because its buckets
  // hold frame addresses, not indices).
  struct QueueEntry {
    Round round;
    std::uint64_t seq;
    std::uint32_t bucket;
    bool operator>(const QueueEntry& o) const {
      return round != o.round ? round > o.round : seq > o.seq;
    }
  };
  static constexpr std::uint32_t kNoBucket = ~std::uint32_t{0};
  std::vector<QueueEntry> heap_;
  std::uint64_t next_seq_ = 0;
  std::vector<std::vector<NodeIndex>> buckets_;
  std::vector<std::uint32_t> free_buckets_;
  Round open_round_ = 0;
  std::uint32_t open_bucket_ = kNoBucket;
  std::vector<NodeIndex> staged_;
  std::vector<std::uint64_t> seen_ports_scratch_;

  // Fused-sweep order (built lazily on the first all-awake round):
  // thresh_[v] = max(v, max neighbor of v) is the delivery-cursor value
  // after which v may step; step_order_ lists nodes by ascending
  // threshold (ties in ascending node order); next_round_[v] holds the
  // validated wake round a fused step requested (0 = none), drained by
  // an ascending registration pass at the end of the round.
  std::vector<NodeIndex> thresh_;
  std::vector<NodeIndex> step_order_;
  std::vector<Round> next_round_;
  bool fused_ready_ = false;

  // Borrowed from the friend Scheduler (same graph, same layout).
  const std::vector<std::size_t>& port_offset_;
  const std::vector<std::uint32_t>& reverse_ports_;
};

}  // namespace smst
