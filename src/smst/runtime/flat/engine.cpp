#include "smst/runtime/flat/engine.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "smst/faults/run_outcome.h"

namespace smst {

FlatEngine::FlatEngine(const WeightedGraph& graph, Metrics& metrics,
                       const Scheduler& csr, Round max_rounds)
    : graph_(graph),
      metrics_(metrics),
      max_rounds_(max_rounds),
      sends_(graph.NumNodes()),
      inbox_(graph.NumNodes()),
      status_(graph.NumNodes(), Status::kRunning),
      errors_(graph.NumNodes()),
      stamp_(graph.NumNodes(), 0),
      acc_(graph.NumNodes()),
      port_offset_(csr.port_offset_),
      reverse_ports_(csr.reverse_ports_) {
  std::size_t max_degree = 0;
  for (NodeIndex v = 0; v < graph_.NumNodes(); ++v) {
    max_degree = std::max(max_degree, graph_.DegreeOf(v));
  }
  if (max_degree > 64) {
    seen_ports_scratch_.resize((max_degree + 63) / 64);
  }
}

void FlatEngine::ValidateSends(NodeIndex v, const SendBatch& sends) {
  // Same contract and messages as Scheduler::Register's fault-free path:
  // CONGEST allows at most one message per port per round, on a port
  // that exists.
  const std::size_t degree = graph_.DegreeOf(v);
  if (degree <= 64) {
    std::uint64_t seen_ports = 0;
    for (const OutMessage& out : sends) {
      if (out.port >= degree) {
        throw std::logic_error("send on nonexistent port");
      }
      if (((seen_ports >> out.port) & 1) != 0) {
        throw std::logic_error("two messages on one port in one round");
      }
      seen_ports |= std::uint64_t{1} << out.port;
    }
  } else {
    const std::size_t words = (degree + 63) / 64;
    std::fill_n(seen_ports_scratch_.begin(), words, 0);
    for (const OutMessage& out : sends) {
      if (out.port >= degree) {
        throw std::logic_error("send on nonexistent port");
      }
      std::uint64_t& word = seen_ports_scratch_[out.port / 64];
      const std::uint64_t bit = std::uint64_t{1} << (out.port % 64);
      if ((word & bit) != 0) {
        throw std::logic_error("two messages on one port in one round");
      }
      word |= bit;
    }
  }
}

void FlatEngine::RegisterNext(NodeIndex v, Round r, const SendBatch& sends) {
  if (r <= current_) {
    throw std::logic_error(
        "node " + std::to_string(v) + " requested awake round " +
        std::to_string(r) + " but the clock is already at " +
        std::to_string(current_));
  }
  ValidateSends(v, sends);
  PushRegistered(v, r);
}

void FlatEngine::PushRegistered(NodeIndex v, Round r) {
  // The queued batch itself stays in sends_[v]; only the node index goes
  // into the round bucket.
  if (open_bucket_ != kNoBucket && open_round_ == r) {
    buckets_[open_bucket_].push_back(v);
    return;
  }
  std::uint32_t b;
  if (!free_buckets_.empty()) {
    b = free_buckets_.back();
    free_buckets_.pop_back();
  } else {
    b = static_cast<std::uint32_t>(buckets_.size());
    buckets_.emplace_back();
  }
  buckets_[b].push_back(v);
  heap_.push_back(QueueEntry{r, next_seq_++, b});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  open_round_ = r;
  open_bucket_ = b;
}

void FlatEngine::Run(FlatProgram& program) {
  FlatEnv env;
  env.metrics = &metrics_;

  // Start pass: every node to its first suspension, ascending — the flat
  // twin of the simulator's construct-all-then-Start-all two-pass.
  for (NodeIndex v = 0; v < graph_.NumNodes(); ++v) {
    SendBatch& sends = sends_[v];
    sends.clear();
    try {
      const Round first = program.Start(v, env, sends);
      if (first == kFlatDone) {
        status_[v] = Status::kDone;
        sends.clear();
        continue;
      }
      RegisterNext(v, first, sends);
    } catch (...) {
      sends.clear();
      status_[v] = Status::kFailed;
      errors_[v] = std::current_exception();
    }
  }

  const bool wake_times = metrics_.WakeTimesEnabled();
  try {
    RunRounds(program, env, wake_times);
  } catch (...) {
    // The watchdog throw must leave the meters exactly as a coroutine
    // run's would be at the same point: fold what accumulated, then let
    // the exception continue.
    FoldMetrics();
    throw;
  }
  FoldMetrics();
}

void FlatEngine::RunRounds(FlatProgram& program, FlatEnv& env,
                           const bool wake_times) {
  while (!heap_.empty()) {
    const Round r = heap_.front().round;
    if (r > max_rounds_) {
      throw NonTerminationError("round watchdog tripped at round " +
                                std::to_string(r) + " (max " +
                                std::to_string(max_rounds_) + ")");
    }
    current_ = r;
    metrics_.SetLastRound(r);

    // Stage: splice round-r buckets into the canonical ascending order.
    // Steps push only strictly later rounds, so the heap front is stable.
    // The dominant shape — every round-r node registered into one bucket
    // — swaps that bucket straight into staged_ (no element copies);
    // multi-bucket rounds fall back to appending. Sortedness is checked
    // while splicing: the step sweep runs ascending, so registrations
    // usually arrive pre-sorted and the sort is skipped.
    staged_.clear();
    bool sorted = true;
    while (!heap_.empty() && heap_.front().round == r) {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
      std::vector<NodeIndex>& bucket = buckets_[heap_.back().bucket];
      if (staged_.empty()) {
        staged_.swap(bucket);
        for (std::size_t i = 1; i < staged_.size(); ++i) {
          if (staged_[i] < staged_[i - 1]) {
            sorted = false;
            break;
          }
        }
      } else {
        for (const NodeIndex v : bucket) {
          if (v < staged_.back()) sorted = false;
          staged_.push_back(v);
        }
        bucket.clear();
      }
      if (open_bucket_ == heap_.back().bucket) open_bucket_ = kNoBucket;
      free_buckets_.push_back(heap_.back().bucket);
      heap_.pop_back();
    }
    if (!sorted) std::sort(staged_.begin(), staged_.end());

    const std::size_t staged_count = staged_.size();
    const NodeIndex* nodes = staged_.data();

    // All-awake rounds (every dense-round workload, and every toolbox
    // block where the whole graph participates) need no awake stamps:
    // each delivery lands on a staged receiver by construction, so the
    // stamp pass and the per-message stamp probe are skipped wholesale —
    // and the delivery and step sweeps fuse into one pass.
    const bool all_awake = staged_count == graph_.NumNodes();
    if (all_awake) {
      FusedRound(program, env, r, wake_times);
      continue;
    }
    for (std::size_t i = 0; i < staged_count; ++i) stamp_[nodes[i]] = r;

    // Delivery sweep (whole round before any node steps): ascending
    // sender, batch order — the scheduler's exact delivery order. The
    // per-sender meters land in the dense accumulator records; the sums
    // and maxima are associative, so folding them into NodeMetrics once
    // at the end of the run (FoldMetrics) yields bit-identical totals.
    for (std::size_t i = 0; i < staged_count; ++i) {
      const NodeIndex v = nodes[i];
      MeterAcc& acc = acc_[v];
      ++acc.awake;
      if (wake_times) metrics_.Node(v).wake_times.push_back(r);
      const SendBatch& sends = sends_[v];
      if (sends.empty()) continue;
      const OutMessage* out_begin = sends.data();
      const std::size_t out_count = sends.size();
      const Port* ports = graph_.PortsOf(v).data();
      const std::uint32_t* reverse = reverse_ports_.data() + port_offset_[v];
      std::uint64_t bits_sum = 0;
      std::uint64_t dropped = 0;
      for (std::size_t j = 0; j < out_count; ++j) {
        // The scatter target (a neighbor's inbox header) is the one
        // irregular access in the sweep; fetching the next message's
        // target while this one is written hides most of its latency on
        // high-degree nodes.
        if (j + 1 < out_count) {
          __builtin_prefetch(&inbox_[ports[out_begin[j + 1].port].neighbor],
                             1);
        }
        const OutMessage& out = out_begin[j];
        const std::uint64_t bits = out.msg.BitSize();
        bits_sum += bits;
        if (bits > max_bits_seen_) max_bits_seen_ = bits;
        const NodeIndex neighbor = ports[out.port].neighbor;
        if (stamp_[neighbor] == r) {
          inbox_[neighbor].push_back(InMessage{reverse[out.port], out.msg});
        } else {
          // Sleeping-model loss: the receiver is not awake this round.
          ++dropped;
        }
      }
      acc.msgs += out_count;
      acc.bits += bits_sum;
      acc.drops += dropped;
    }

    // Step sweep: the program itself. The node's inbox slot is handed to
    // Step directly (programs take it by const reference and only ever
    // write into their own send slot) and cleared afterwards, so the
    // inline buffer is never copied; the send slot is reused round over
    // round, so its heap spill (if any) is allocated once.
    for (std::size_t i = 0; i < staged_count; ++i) {
      const NodeIndex v = nodes[i];
      SendBatch& sends = sends_[v];
      sends.clear();
      try {
        const Round next = program.Step(v, r, env, inbox_[v], sends);
        inbox_[v].clear();
        if (next == kFlatDone) {
          status_[v] = Status::kDone;
          sends.clear();
          continue;
        }
        RegisterNext(v, next, sends);
      } catch (...) {
        inbox_[v].clear();
        sends.clear();
        status_[v] = Status::kFailed;
        errors_[v] = std::current_exception();
      }
    }
  }
}

void FlatEngine::BuildFusedOrder() {
  const NodeIndex n = graph_.NumNodes();
  thresh_.resize(n);
  for (NodeIndex v = 0; v < n; ++v) {
    NodeIndex t = v;
    for (const Port& p : graph_.PortsOf(v)) {
      if (p.neighbor > t) t = p.neighbor;
    }
    thresh_[v] = t;
  }
  step_order_.resize(n);
  for (NodeIndex v = 0; v < n; ++v) step_order_[v] = v;
  // Ties step in ascending node order (stable over the iota above), so
  // the fused step order is fully determined by the graph.
  std::stable_sort(step_order_.begin(), step_order_.end(),
                   [this](NodeIndex a, NodeIndex b) {
                     return thresh_[a] < thresh_[b];
                   });
  next_round_.assign(n, 0);
  fused_ready_ = true;
}

void FlatEngine::FusedRound(FlatProgram& program, FlatEnv& env, const Round r,
                            const bool wake_times) {
  // All-awake round: staged_ is exactly 0..n-1, so the delivery cursor
  // IS the sender id, every send lands on an awake receiver (no stamp
  // probes), and node v's inbox is complete — and its own send slot
  // drained — as soon as the cursor passes thresh_[v]. Stepping it right
  // then touches inbox_[v]/sends_[v] while they are still resident
  // instead of re-streaming the whole slot arrays in a second pass; on
  // neighbor-local graphs (rings, paths, grids) the working set of the
  // entire round collapses to a sliding window.
  if (!fused_ready_) BuildFusedOrder();
  const NodeIndex n = graph_.NumNodes();
  std::size_t cursor = 0;  // into step_order_
  for (NodeIndex v = 0; v < n; ++v) {
    // Delivery for sender v — same body, order, and meters as the
    // two-sweep path.
    MeterAcc& acc = acc_[v];
    ++acc.awake;
    if (wake_times) metrics_.Node(v).wake_times.push_back(r);
    const SendBatch& sends = sends_[v];
    const std::size_t out_count = sends.size();
    if (out_count != 0) {
      const OutMessage* out_begin = sends.data();
      const Port* ports = graph_.PortsOf(v).data();
      const std::uint32_t* reverse = reverse_ports_.data() + port_offset_[v];
      std::uint64_t bits_sum = 0;
      for (std::size_t j = 0; j < out_count; ++j) {
        if (j + 1 < out_count) {
          __builtin_prefetch(&inbox_[ports[out_begin[j + 1].port].neighbor],
                             1);
        }
        const OutMessage& out = out_begin[j];
        const std::uint64_t bits = out.msg.BitSize();
        bits_sum += bits;
        if (bits > max_bits_seen_) max_bits_seen_ = bits;
        inbox_[ports[out.port].neighbor].push_back(
            InMessage{reverse[out.port], out.msg});
      }
      acc.msgs += out_count;
      acc.bits += bits_sum;
    }

    // Step every node whose threshold the cursor just passed. Validation
    // runs here, while the batch is hot; the bucket push is deferred to
    // the ascending registration pass below so staged order stays sorted.
    while (cursor < n && thresh_[step_order_[cursor]] <= v) {
      const NodeIndex u = step_order_[cursor++];
      SendBatch& out = sends_[u];
      out.clear();
      next_round_[u] = 0;
      try {
        const Round next = program.Step(u, r, env, inbox_[u], out);
        inbox_[u].clear();
        if (next == kFlatDone) {
          status_[u] = Status::kDone;
          out.clear();
          continue;
        }
        if (next <= current_) {
          throw std::logic_error(
              "node " + std::to_string(u) + " requested awake round " +
              std::to_string(next) + " but the clock is already at " +
              std::to_string(current_));
        }
        ValidateSends(u, out);
        next_round_[u] = next;
      } catch (...) {
        inbox_[u].clear();
        out.clear();
        status_[u] = Status::kFailed;
        errors_[u] = std::current_exception();
      }
    }
  }

  // Registration pass: ascending nodes, already-validated batches. Pure
  // index traffic — the message slots are not touched again.
  for (NodeIndex v = 0; v < n; ++v) {
    if (next_round_[v] != 0) PushRegistered(v, next_round_[v]);
  }
}

void FlatEngine::FoldMetrics() {
  for (NodeIndex v = 0; v < graph_.NumNodes(); ++v) {
    MeterAcc& acc = acc_[v];
    if (acc.awake == 0 && acc.msgs == 0) continue;
    NodeMetrics& nm = metrics_.Node(v);
    nm.awake_rounds += acc.awake;
    nm.messages_sent += acc.msgs;
    nm.bits_sent += acc.bits;
    nm.messages_dropped += acc.drops;
    acc = MeterAcc{};
  }
  if (max_bits_seen_ > 0) {
    metrics_.RecordMessageBits(max_bits_seen_);
    max_bits_seen_ = 0;
  }
}

std::uint64_t FlatEngine::CountUnfinished() const {
  std::uint64_t unfinished = 0;
  for (const Status s : status_) {
    if (s == Status::kRunning) ++unfinished;
  }
  return unfinished;
}

NodeIndex FlatEngine::FirstUnfinishedNode() const {
  for (NodeIndex v = 0; v < status_.size(); ++v) {
    if (status_[v] == Status::kRunning) return v;
  }
  return kInvalidNode;
}

void FlatEngine::RethrowFirstFailure() const {
  for (const std::exception_ptr& e : errors_) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace smst
