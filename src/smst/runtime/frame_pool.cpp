#include "smst/runtime/frame_pool.h"

#include <cstddef>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

namespace smst {

namespace {

// Frames are rounded up to 64-byte size classes; anything above 8 KiB
// bypasses the pool. The largest frame in this codebase today is the
// randomized-MST NodeMain at ~4.7 KiB (inline message batches make
// frames wide), so the cap leaves roughly 2x headroom.
constexpr std::size_t kGranularity = 64;
constexpr std::size_t kMaxPooledBytes = 8192;
constexpr std::size_t kNumBuckets = kMaxPooledBytes / kGranularity;

// Fresh blocks are carved from slabs this large. One slab allocation
// amortizes the allocator's per-request cost over thousands of frames,
// which matters on worker threads: glibc grows a thread's malloc arena
// in small syscall-metered steps, and under sandboxed kernels a
// per-frame 4 KiB arena extension costs microseconds — spawning 10^6
// node coroutines that way took seconds, versus milliseconds from
// slabs (large requests go straight to mmap, bypassing the arena).
constexpr std::size_t kSlabBytes = std::size_t{1} << 20;

struct FreeBlock {
  FreeBlock* next;
};

// Process-lifetime slab and orphan store. Slabs are deliberately
// immortal: a frame allocated on a sharded-engine worker is released on
// the main thread at engine teardown, after the worker has exited, so
// slab memory must outlive the thread that carved it. The registry
// object itself is heap-born and never destroyed (see Registry()) so
// exiting threads can donate during any stage of shutdown.
//
// What exiting threads donate under the mutex:
//  * their free lists (per size class), so the parallel runner's next
//    wave of workers reuses blocks instead of carving new slabs, and
//  * the unused tail of their current slab (when it can still serve the
//    largest size class), so thread churn strands at most 8 KiB per
//    exit rather than up to a whole slab.
//
// Donations are kept as a stack of whole lists per size class, one
// entry per donating thread, never spliced: donating is O(buckets)
// (no walk to a tail), and a refilling thread adopts exactly one
// donated list per bucket. K symmetric donors therefore feed K later
// workers evenly — splicing everything into one chain would instead
// hand the whole pool to whichever worker refills first and leave the
// rest carving fresh (fault-expensive) slab pages.
struct SlabRegistry {
  std::mutex mu;
  std::vector<FreeBlock*> orphan_lists[kNumBuckets];
  std::vector<std::pair<char*, char*>> partial_slabs;
};

SlabRegistry& Registry() {
  static SlabRegistry* r = new SlabRegistry;
  return *r;
}

// One arena per thread: private free lists and a private bump region,
// no synchronization on the allocate/release hot path. The registry
// mutex is touched only when the bump region runs dry (once per slab,
// i.e. once per ~16k small frames) and at thread exit.
struct Arena {
  FreeBlock* heads[kNumBuckets] = {};
  char* slab_cur = nullptr;
  char* slab_end = nullptr;
  FramePoolStats stats;

  ~Arena() {
    SlabRegistry& reg = Registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      if (heads[b] != nullptr) reg.orphan_lists[b].push_back(heads[b]);
    }
    if (static_cast<std::size_t>(slab_end - slab_cur) >= kMaxPooledBytes) {
      reg.partial_slabs.emplace_back(slab_cur, slab_end);
    }
  }
};

thread_local Arena t_arena;

constexpr std::size_t BucketOf(std::size_t bytes) {
  return (bytes + kGranularity - 1) / kGranularity - 1;
}

// Refills the calling thread's arena: adopts one donated free list per
// empty size class (see the SlabRegistry comment for why one, not all),
// then ensures the bump region can serve any pooled size class — from a
// donated partial slab if one is waiting, else a fresh slab.
void Refill(Arena& a) {
  SlabRegistry& reg = Registry();
  bool need_slab;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      if (a.heads[b] != nullptr || reg.orphan_lists[b].empty()) continue;
      a.heads[b] = reg.orphan_lists[b].back();
      reg.orphan_lists[b].pop_back();
    }
    need_slab =
        static_cast<std::size_t>(a.slab_end - a.slab_cur) < kMaxPooledBytes;
    if (need_slab && !reg.partial_slabs.empty()) {
      std::tie(a.slab_cur, a.slab_end) = reg.partial_slabs.back();
      reg.partial_slabs.pop_back();
      need_slab = false;
    }
  }
  if (need_slab) {
    char* slab = static_cast<char*>(::operator new(kSlabBytes));
    a.slab_cur = slab;
    a.slab_end = slab + kSlabBytes;
  }
}

}  // namespace

void* FrameAllocate(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  if (bytes > kMaxPooledBytes) {
    ++t_arena.stats.oversized;
    return ::operator new(bytes);
  }
  Arena& a = t_arena;
  const std::size_t b = BucketOf(bytes);
  const std::size_t block = (b + 1) * kGranularity;
  for (;;) {
    if (FreeBlock* head = a.heads[b]) {
      a.heads[b] = head->next;
      ++a.stats.pool_hits;
      return head;
    }
    if (static_cast<std::size_t>(a.slab_end - a.slab_cur) >= block) {
      void* p = a.slab_cur;
      a.slab_cur += block;
      ++a.stats.fresh_blocks;
      return p;
    }
    // At most one Refill per allocation: afterwards the bump region
    // holds at least kMaxPooledBytes, so the carve above succeeds.
    Refill(a);
  }
}

void FrameDeallocate(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (bytes == 0) bytes = 1;
  if (bytes <= kMaxPooledBytes) {
    Arena& a = t_arena;
    const std::size_t b = BucketOf(bytes);
    FreeBlock* block = static_cast<FreeBlock*>(p);
    block->next = a.heads[b];
    a.heads[b] = block;
    return;
  }
  ::operator delete(p);
}

FramePoolStats GetFramePoolStats() { return t_arena.stats; }

}  // namespace smst
