#include "smst/runtime/frame_pool.h"

#include <new>

namespace smst {

namespace {

// Frames are rounded up to 64-byte size classes; anything above 8 KiB
// bypasses the pool. The largest frame in this codebase today is the
// randomized-MST NodeMain at ~4.7 KiB (inline message batches make
// frames wide), so the cap leaves roughly 2x headroom.
constexpr std::size_t kGranularity = 64;
constexpr std::size_t kMaxPooledBytes = 8192;
constexpr std::size_t kNumBuckets = kMaxPooledBytes / kGranularity;

struct FreeBlock {
  FreeBlock* next;
};

// One arena per thread; see frame_pool.h for the threading rationale.
// The destructor runs at thread exit and releases every pooled block,
// so long-lived processes that churn worker threads do not accrete
// dead arenas.
struct Arena {
  FreeBlock* heads[kNumBuckets] = {};
  FramePoolStats stats;

  ~Arena() {
    for (FreeBlock* head : heads) {
      while (head != nullptr) {
        FreeBlock* next = head->next;
        ::operator delete(head);
        head = next;
      }
    }
  }
};

thread_local Arena t_arena;

constexpr std::size_t BucketOf(std::size_t bytes) {
  return (bytes + kGranularity - 1) / kGranularity - 1;
}

}  // namespace

void* FrameAllocate(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  if (bytes <= kMaxPooledBytes) {
    Arena& a = t_arena;
    const std::size_t b = BucketOf(bytes);
    if (FreeBlock* block = a.heads[b]) {
      a.heads[b] = block->next;
      ++a.stats.pool_hits;
      return block;
    }
    ++a.stats.fresh_blocks;
    return ::operator new((b + 1) * kGranularity);
  }
  ++t_arena.stats.oversized;
  return ::operator new(bytes);
}

void FrameDeallocate(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (bytes == 0) bytes = 1;
  if (bytes <= kMaxPooledBytes) {
    Arena& a = t_arena;
    const std::size_t b = BucketOf(bytes);
    FreeBlock* block = static_cast<FreeBlock*>(p);
    block->next = a.heads[b];
    a.heads[b] = block;
    return;
  }
  ::operator delete(p);
}

FramePoolStats GetFramePoolStats() { return t_arena.stats; }

}  // namespace smst
