// CONGEST messages.
//
// The model allows O(log n)-bit messages per edge per round. We represent
// a message as a small tagged record (a type tag plus three 64-bit
// fields); BitSize() reports the information content actually used so
// tests can assert the O(log n) budget. Field values are IDs, levels,
// weights, counts — all poly(n), i.e. O(log n) bits each.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "smst/util/small_vec.h"

namespace smst {

// Sentinel weight values used by the deterministic algorithm's validity
// echo (the paper's ±infinity). They sit outside the generator weight
// range, and compare correctly as uint64s.
inline constexpr std::uint64_t kMinusInfinity = 0;
inline constexpr std::uint64_t kPlusInfinity = ~std::uint64_t{0};

struct Message {
  std::uint16_t type = 0;  // algorithm-defined tag
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;

  // Bits needed to encode this message: tag byte + the occupied widths.
  // (An exact wire format would add field delimiters; this is the
  // standard information-theoretic accounting used for CONGEST.)
  std::uint32_t BitSize() const {
    auto width = [](std::uint64_t v) -> std::uint32_t {
      return v == 0 ? 1u : static_cast<std::uint32_t>(std::bit_width(v));
    };
    return 8u + width(a) + width(b) + width(c);
  }

  friend bool operator==(const Message&, const Message&) = default;
};

// A message queued for sending, addressed by local port number (CONGEST
// nodes address neighbors only through ports).
struct OutMessage {
  std::uint32_t port = 0;
  Message msg;
};

// A received message, tagged with the local port it arrived on.
struct InMessage {
  std::uint32_t port = 0;
  Message msg;
};

// Per-awake message batches. Typical degrees in the model workloads are
// small, so batches of up to kInlineMessageCapacity messages live inside
// the coroutine frame and never touch the heap; larger batches (high-
// degree nodes) fall back to a heap buffer transparently.
inline constexpr std::size_t kInlineMessageCapacity = 4;
using SendBatch = SmallVec<OutMessage, kInlineMessageCapacity>;
using InboxBatch = SmallVec<InMessage, kInlineMessageCapacity>;

}  // namespace smst
