#include "smst/graph/mst_verify.h"

#include <algorithm>
#include <queue>

#include "smst/graph/mst_reference.h"
#include "smst/graph/properties.h"

namespace smst {

MstCheck VerifyExactMst(const WeightedGraph& g,
                        const std::vector<EdgeIndex>& candidate) {
  if (candidate.size() != g.NumNodes() - 1) {
    return {false, "expected " + std::to_string(g.NumNodes() - 1) +
                       " edges, got " + std::to_string(candidate.size())};
  }
  if (!IsSpanningTree(g, EdgeMask(g, candidate))) {
    return {false, "candidate is not a spanning tree"};
  }
  const auto truth = KruskalMst(g);
  if (candidate != truth) {
    // Find one differing edge for the message.
    for (std::size_t i = 0; i < truth.size(); ++i) {
      if (i >= candidate.size() || candidate[i] != truth[i]) {
        return {false, "edge set differs from the unique MST (first "
                       "mismatch at sorted position " +
                           std::to_string(i) + ")"};
      }
    }
    return {false, "edge set differs from the unique MST"};
  }
  return {true, ""};
}

MstCheck CertifyMstByCycleProperty(const WeightedGraph& g,
                                   const std::vector<EdgeIndex>& candidate) {
  const auto mask = EdgeMask(g, candidate);
  if (!IsSpanningTree(g, mask)) {
    return {false, "candidate is not a spanning tree"};
  }
  // Tree adjacency for path queries.
  std::vector<std::vector<Port>> tree(g.NumNodes());
  for (EdgeIndex e : candidate) {
    const Edge& edge = g.GetEdge(e);
    tree[edge.u].push_back({edge.v, e, edge.weight});
    tree[edge.v].push_back({edge.u, e, edge.weight});
  }
  // For each non-tree edge (u,v): max tree-path weight u->v must be < w.
  for (EdgeIndex e = 0; e < g.NumEdges(); ++e) {
    if (mask[e]) continue;
    const Edge& nt = g.GetEdge(e);
    // BFS from u to v tracking the max edge weight along the tree path.
    std::vector<Weight> max_w(g.NumNodes(), 0);
    std::vector<bool> seen(g.NumNodes(), false);
    std::queue<NodeIndex> q;
    seen[nt.u] = true;
    q.push(nt.u);
    while (!q.empty() && !seen[nt.v]) {
      NodeIndex x = q.front();
      q.pop();
      for (const Port& p : tree[x]) {
        if (seen[p.neighbor]) continue;
        seen[p.neighbor] = true;
        max_w[p.neighbor] = std::max(max_w[x], p.weight);
        q.push(p.neighbor);
      }
    }
    if (max_w[nt.v] > nt.weight) {
      return {false, "cycle property violated by non-tree edge " +
                         std::to_string(e)};
    }
  }
  return {true, ""};
}

}  // namespace smst
