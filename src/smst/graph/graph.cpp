#include "smst/graph/graph.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace smst {

NodeIndex WeightedGraph::IndexOfId(NodeId id) const {
  for (NodeIndex v = 0; v < ids_.size(); ++v) {
    if (ids_[v] == id) return v;
  }
  return kInvalidNode;
}

Weight WeightedGraph::TotalWeight(std::span<const EdgeIndex> edge_set) const {
  Weight total = 0;
  for (EdgeIndex e : edge_set) total += edges_[e].weight;
  return total;
}

GraphBuilder::GraphBuilder(std::size_t num_nodes) : num_nodes_(num_nodes) {
  if (num_nodes == 0) throw std::invalid_argument("graph must be non-empty");
}

GraphBuilder& GraphBuilder::AddEdge(NodeIndex u, NodeIndex v, Weight w) {
  if (u >= num_nodes_ || v >= num_nodes_) {
    throw std::invalid_argument("edge endpoint out of range");
  }
  if (u == v) throw std::invalid_argument("self-loop not allowed");
  edges_.push_back(Edge{u, v, w});
  return *this;
}

GraphBuilder& GraphBuilder::SetIds(std::vector<NodeId> ids, NodeId max_id) {
  if (ids.size() != num_nodes_) {
    throw std::invalid_argument("ids size must equal node count");
  }
  ids_ = std::move(ids);
  max_id_ = max_id;
  return *this;
}

WeightedGraph GraphBuilder::Build() && {
  WeightedGraph g;
  g.edges_ = std::move(edges_);

  // Determinism audit: the three unordered_sets below are membership-only
  // duplicate detectors — nothing ever iterates them, so hash order cannot
  // reach the built graph. smst_lint's det-unordered-iter rule guards this
  // from regressing; port tables below are built in edge-insertion order.

  // Distinct weights (required: makes the MST unique).
  {
    std::unordered_set<Weight> seen;
    seen.reserve(g.edges_.size() * 2);
    for (const Edge& e : g.edges_) {
      if (!seen.insert(e.weight).second) {
        throw std::invalid_argument("duplicate edge weight " +
                                    std::to_string(e.weight));
      }
    }
  }
  // Simple graph: no parallel edges.
  {
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(g.edges_.size() * 2);
    for (const Edge& e : g.edges_) {
      const std::uint64_t lo = std::min(e.u, e.v);
      const std::uint64_t hi = std::max(e.u, e.v);
      if (!seen.insert((lo << 32) | hi).second) {
        throw std::invalid_argument("parallel edge between " +
                                    std::to_string(e.u) + " and " +
                                    std::to_string(e.v));
      }
    }
  }

  // IDs: default 1..n; validate distinct and within [1, max_id].
  if (ids_.empty()) {
    ids_.resize(num_nodes_);
    std::iota(ids_.begin(), ids_.end(), NodeId{1});
    max_id_ = num_nodes_;
  }
  {
    std::unordered_set<NodeId> seen;
    seen.reserve(ids_.size() * 2);
    for (NodeId id : ids_) {
      if (id == 0 || id > max_id_) {
        throw std::invalid_argument("node ID " + std::to_string(id) +
                                    " outside [1, N]");
      }
      if (!seen.insert(id).second) {
        throw std::invalid_argument("duplicate node ID " + std::to_string(id));
      }
    }
  }
  g.ids_ = std::move(ids_);
  g.max_id_ = max_id_;

  // Build CSR port tables in edge-insertion order.
  g.port_offset_.assign(num_nodes_ + 1, 0);
  for (const Edge& e : g.edges_) {
    ++g.port_offset_[e.u + 1];
    ++g.port_offset_[e.v + 1];
  }
  for (std::size_t v = 0; v < num_nodes_; ++v) {
    g.port_offset_[v + 1] += g.port_offset_[v];
  }
  g.ports_.resize(2 * g.edges_.size());
  std::vector<std::size_t> cursor(g.port_offset_.begin(),
                                  g.port_offset_.end() - 1);
  for (EdgeIndex e = 0; e < g.edges_.size(); ++e) {
    const Edge& edge = g.edges_[e];
    g.ports_[cursor[edge.u]++] = Port{edge.v, e, edge.weight};
    g.ports_[cursor[edge.v]++] = Port{edge.u, e, edge.weight};
  }

  // Connectivity (the model requires a connected network).
  {
    std::vector<bool> visited(num_nodes_, false);
    std::vector<NodeIndex> stack{0};
    visited[0] = true;
    std::size_t count = 1;
    while (!stack.empty()) {
      NodeIndex v = stack.back();
      stack.pop_back();
      for (const Port& p : g.PortsOf(v)) {
        if (!visited[p.neighbor]) {
          visited[p.neighbor] = true;
          ++count;
          stack.push_back(p.neighbor);
        }
      }
    }
    if (count != num_nodes_) {
      throw std::invalid_argument("graph is not connected");
    }
  }
  return g;
}

}  // namespace smst
