// Graph family generators.
//
// Every generator draws distinct edge weights and (optionally shuffled)
// node IDs from the supplied PRNG, so a (family, size, seed) triple pins
// down one exact instance. All families are connected by construction.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "smst/graph/graph.h"
#include "smst/util/prng.h"

namespace smst {

struct GeneratorOptions {
  // N, the top of the ID range. 0 means "use n" (IDs are then a random
  // permutation of 1..n). Values > n sample IDs from [1, N]; the
  // deterministic algorithm's run time scales with this.
  NodeId max_id = 0;
  // When false, node IDs are 1..n in index order (useful in unit tests).
  bool shuffle_ids = true;
};

// -- deterministic topologies, random weights --------------------------
WeightedGraph MakePath(std::size_t n, Xoshiro256& rng,
                       const GeneratorOptions& opt = {});
WeightedGraph MakeRing(std::size_t n, Xoshiro256& rng,
                       const GeneratorOptions& opt = {});
WeightedGraph MakeStar(std::size_t n, Xoshiro256& rng,
                       const GeneratorOptions& opt = {});
WeightedGraph MakeComplete(std::size_t n, Xoshiro256& rng,
                           const GeneratorOptions& opt = {});
WeightedGraph MakeBinaryTree(std::size_t n, Xoshiro256& rng,
                             const GeneratorOptions& opt = {});
// rows*cols nodes, 4-neighbor mesh.
WeightedGraph MakeGrid(std::size_t rows, std::size_t cols, Xoshiro256& rng,
                       const GeneratorOptions& opt = {});
// Two complete graphs of size n/2 joined by a single bridge edge.
WeightedGraph MakeBarbell(std::size_t n, Xoshiro256& rng,
                          const GeneratorOptions& opt = {});
// d-dimensional hypercube (2^d nodes).
WeightedGraph MakeHypercube(std::size_t dimensions, Xoshiro256& rng,
                            const GeneratorOptions& opt = {});
// A spine path with one leaf per spine node (2*spine nodes): deep trees
// with heavy branching, a worst case for the schedule's Up/Down passes.
WeightedGraph MakeCaterpillar(std::size_t spine, Xoshiro256& rng,
                              const GeneratorOptions& opt = {});
// Complete graph on n/2 nodes with a path of n/2 nodes hanging off it:
// the classic high-diameter + dense-core stress shape.
WeightedGraph MakeLollipop(std::size_t n, Xoshiro256& rng,
                           const GeneratorOptions& opt = {});

// -- random topologies --------------------------------------------------
// Erdős–Rényi G(n, p), patched to connectivity by adding a random
// spanning tree over the components if needed.
WeightedGraph MakeErdosRenyi(std::size_t n, double p, Xoshiro256& rng,
                             const GeneratorOptions& opt = {});
// Random spanning tree alone (uniform attachment), a worst case for
// fragment diameters.
WeightedGraph MakeRandomTree(std::size_t n, Xoshiro256& rng,
                             const GeneratorOptions& opt = {});
// Random geometric graph on the unit square with connection radius
// `radius` (patched to connectivity); the usual model for the sensor
// networks the paper's introduction motivates.
WeightedGraph MakeRandomGeometric(std::size_t n, double radius,
                                  Xoshiro256& rng,
                                  const GeneratorOptions& opt = {});

// Builds a graph from an explicit edge list (u, v) pairs, assigning random
// distinct weights and IDs. Shared helper for the lower-bound families.
WeightedGraph FromEdgeList(std::size_t n,
                           const std::vector<std::pair<NodeIndex, NodeIndex>>& edges,
                           Xoshiro256& rng, const GeneratorOptions& opt = {});

}  // namespace smst
