#include "smst/graph/mst_reference.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "smst/graph/union_find.h"

namespace smst {

std::vector<EdgeIndex> KruskalMst(const WeightedGraph& g) {
  std::vector<EdgeIndex> order(g.NumEdges());
  for (EdgeIndex e = 0; e < g.NumEdges(); ++e) order[e] = e;
  std::sort(order.begin(), order.end(), [&](EdgeIndex a, EdgeIndex b) {
    return g.GetEdge(a).weight < g.GetEdge(b).weight;
  });
  UnionFind uf(g.NumNodes());
  std::vector<EdgeIndex> mst;
  mst.reserve(g.NumNodes() - 1);
  for (EdgeIndex e : order) {
    const Edge& edge = g.GetEdge(e);
    if (uf.Union(edge.u, edge.v)) {
      mst.push_back(e);
      if (mst.size() == g.NumNodes() - 1) break;
    }
  }
  std::sort(mst.begin(), mst.end());
  return mst;
}

std::vector<EdgeIndex> PrimMst(const WeightedGraph& g) {
  // Lazy Prim with a min-heap of (weight, edge, far endpoint).
  struct Item {
    Weight w;
    EdgeIndex e;
    NodeIndex to;
    bool operator>(const Item& o) const { return w > o.w; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  std::vector<bool> in_tree(g.NumNodes(), false);
  auto add = [&](NodeIndex v) {
    in_tree[v] = true;
    for (const Port& p : g.PortsOf(v)) {
      if (!in_tree[p.neighbor]) heap.push({p.weight, p.edge, p.neighbor});
    }
  };
  add(0);
  std::vector<EdgeIndex> mst;
  mst.reserve(g.NumNodes() - 1);
  while (mst.size() + 1 < g.NumNodes() && !heap.empty()) {
    Item item = heap.top();
    heap.pop();
    if (in_tree[item.to]) continue;
    mst.push_back(item.e);
    add(item.to);
  }
  std::sort(mst.begin(), mst.end());
  return mst;
}

std::vector<EdgeIndex> BoruvkaMst(const WeightedGraph& g) {
  UnionFind uf(g.NumNodes());
  std::vector<EdgeIndex> mst;
  mst.reserve(g.NumNodes() - 1);
  while (uf.NumSets() > 1) {
    // Minimum outgoing edge per component, found in one edge scan.
    std::vector<EdgeIndex> best(g.NumNodes(), kInvalidEdge);
    for (EdgeIndex e = 0; e < g.NumEdges(); ++e) {
      const Edge& edge = g.GetEdge(e);
      const std::size_t cu = uf.Find(edge.u);
      const std::size_t cv = uf.Find(edge.v);
      if (cu == cv) continue;
      for (std::size_t c : {cu, cv}) {
        if (best[c] == kInvalidEdge ||
            edge.weight < g.GetEdge(best[c]).weight) {
          best[c] = e;
        }
      }
    }
    bool merged_any = false;
    for (NodeIndex v = 0; v < g.NumNodes(); ++v) {
      const EdgeIndex e = best[v];
      if (e == kInvalidEdge) continue;
      const Edge& edge = g.GetEdge(e);
      if (uf.Union(edge.u, edge.v)) {
        mst.push_back(e);
        merged_any = true;
      }
    }
    if (!merged_any) break;  // unreachable with distinct weights
  }
  std::sort(mst.begin(), mst.end());
  return mst;
}

std::vector<bool> EdgeMask(const WeightedGraph& g,
                           const std::vector<EdgeIndex>& edges) {
  std::vector<bool> mask(g.NumEdges(), false);
  for (EdgeIndex e : edges) mask[e] = true;
  return mask;
}

}  // namespace smst
