// Sequential reference MST algorithms.
//
// With distinct weights the MST is unique, so these give ground truth the
// distributed algorithms are compared against edge-for-edge. Three
// classics are provided; agreement among them is itself a test.
#pragma once

#include <vector>

#include "smst/graph/graph.h"

namespace smst {

// Each returns the MST as sorted edge indices (size n-1).
std::vector<EdgeIndex> KruskalMst(const WeightedGraph& g);
std::vector<EdgeIndex> PrimMst(const WeightedGraph& g);
std::vector<EdgeIndex> BoruvkaMst(const WeightedGraph& g);

// Edge-index set -> boolean mask over edges.
std::vector<bool> EdgeMask(const WeightedGraph& g,
                           const std::vector<EdgeIndex>& edges);

}  // namespace smst
