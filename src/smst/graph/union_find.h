// Disjoint-set forest with union by size and path halving. Used by the
// sequential reference MSTs and the verifiers.
#pragma once

#include <cstddef>
#include <numeric>
#include <utility>
#include <vector>

namespace smst {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1), sets_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t Find(std::size_t v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];  // path halving
      v = parent_[v];
    }
    return v;
  }

  // Merges the sets of a and b; returns false iff already joined.
  bool Union(std::size_t a, std::size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --sets_;
    return true;
  }

  bool Connected(std::size_t a, std::size_t b) { return Find(a) == Find(b); }
  std::size_t NumSets() const { return sets_; }
  std::size_t SizeOf(std::size_t v) { return size_[Find(v)]; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t sets_;
};

}  // namespace smst
