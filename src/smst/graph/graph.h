// Weighted undirected graph with CONGEST port numbering.
//
// This is the shared substrate: generators build it, the simulator hands
// each node only its own ports (neighbor-blind, per the model), and the
// sequential reference MSTs consume it whole.
//
// Conventions:
//  * Nodes are dense indices 0..n-1 internally; each node additionally has
//    a distinct *ID* in [1, N] (the value the distributed algorithms see;
//    the deterministic algorithm's run time depends on N = max ID).
//  * Edge weights are distinct uint64s (the paper assumes distinct
//    weights so the MST is unique). The builder enforces this.
//  * Each node's incident edges occupy ports 0..deg-1 in insertion order;
//    a node addresses messages by port, never by neighbor index.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace smst {

using NodeIndex = std::uint32_t;
using EdgeIndex = std::uint32_t;
using NodeId = std::uint64_t;
using Weight = std::uint64_t;

inline constexpr NodeIndex kInvalidNode = static_cast<NodeIndex>(-1);
inline constexpr EdgeIndex kInvalidEdge = static_cast<EdgeIndex>(-1);

struct Edge {
  NodeIndex u = kInvalidNode;
  NodeIndex v = kInvalidNode;
  Weight weight = 0;
};

// One entry of a node's port table.
struct Port {
  NodeIndex neighbor = kInvalidNode;
  EdgeIndex edge = kInvalidEdge;
  Weight weight = 0;
};

class WeightedGraph {
 public:
  WeightedGraph() = default;

  std::size_t NumNodes() const { return ids_.size(); }
  std::size_t NumEdges() const { return edges_.size(); }

  const Edge& GetEdge(EdgeIndex e) const { return edges_[e]; }
  const std::vector<Edge>& Edges() const { return edges_; }

  // The node's port table: incident edges in port order.
  std::span<const Port> PortsOf(NodeIndex v) const {
    return {ports_.data() + port_offset_[v],
            port_offset_[v + 1] - port_offset_[v]};
  }
  std::size_t DegreeOf(NodeIndex v) const {
    return port_offset_[v + 1] - port_offset_[v];
  }

  NodeId IdOf(NodeIndex v) const { return ids_[v]; }
  NodeId MaxId() const { return max_id_; }

  // Inverse of IdOf; kInvalidNode if no node has that ID.
  NodeIndex IndexOfId(NodeId id) const;

  // The endpoint of edge `e` that is not `v`. Precondition: v is an
  // endpoint of e.
  NodeIndex OtherEndpoint(EdgeIndex e, NodeIndex v) const {
    const Edge& edge = edges_[e];
    return edge.u == v ? edge.v : edge.u;
  }

  // Sum of weights over an edge set (used to compare MSTs by value).
  Weight TotalWeight(std::span<const EdgeIndex> edge_set) const;

 private:
  friend class GraphBuilder;

  std::vector<Edge> edges_;
  std::vector<Port> ports_;                // CSR-packed port tables
  std::vector<std::size_t> port_offset_;   // size n+1
  std::vector<NodeId> ids_;                // node index -> ID
  NodeId max_id_ = 0;                      // N (>= every ID)
};

// Builds a WeightedGraph and validates the model's preconditions:
// simple (no loops / parallel edges), connected, distinct positive
// weights, distinct IDs in [1, N]. Violations throw std::invalid_argument
// with a message naming the offending edge/node.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t num_nodes);

  GraphBuilder& AddEdge(NodeIndex u, NodeIndex v, Weight w);

  // Assigns node IDs (defaults to 1..n in index order if never called).
  // `max_id` must be >= every ID; it becomes the algorithms' N.
  GraphBuilder& SetIds(std::vector<NodeId> ids, NodeId max_id);

  // Validates and produces the immutable graph. The builder is consumed.
  WeightedGraph Build() &&;

 private:
  std::size_t num_nodes_;
  std::vector<Edge> edges_;
  std::vector<NodeId> ids_;
  NodeId max_id_ = 0;
};

}  // namespace smst
