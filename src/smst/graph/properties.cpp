#include "smst/graph/properties.h"

#include <algorithm>
#include <queue>

#include "smst/graph/union_find.h"

namespace smst {

std::vector<std::uint32_t> BfsDistances(const WeightedGraph& g,
                                        NodeIndex source) {
  constexpr std::uint32_t kUnreached = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> dist(g.NumNodes(), kUnreached);
  std::queue<NodeIndex> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    NodeIndex v = frontier.front();
    frontier.pop();
    for (const Port& p : g.PortsOf(v)) {
      if (dist[p.neighbor] == kUnreached) {
        dist[p.neighbor] = dist[v] + 1;
        frontier.push(p.neighbor);
      }
    }
  }
  return dist;
}

std::uint32_t Eccentricity(const WeightedGraph& g, NodeIndex source) {
  auto dist = BfsDistances(g, source);
  return *std::max_element(dist.begin(), dist.end());
}

std::uint32_t ExactDiameter(const WeightedGraph& g) {
  std::uint32_t best = 0;
  for (NodeIndex v = 0; v < g.NumNodes(); ++v) {
    best = std::max(best, Eccentricity(g, v));
  }
  return best;
}

std::uint32_t DoubleSweepDiameterLowerBound(const WeightedGraph& g) {
  auto d0 = BfsDistances(g, 0);
  NodeIndex far = static_cast<NodeIndex>(
      std::max_element(d0.begin(), d0.end()) - d0.begin());
  return Eccentricity(g, far);
}

bool IsSpanningTree(const WeightedGraph& g,
                    const std::vector<bool>& edge_set) {
  std::size_t count = 0;
  UnionFind uf(g.NumNodes());
  for (EdgeIndex e = 0; e < g.NumEdges(); ++e) {
    if (!edge_set[e]) continue;
    ++count;
    const Edge& edge = g.GetEdge(e);
    if (!uf.Union(edge.u, edge.v)) return false;  // cycle
  }
  return count == g.NumNodes() - 1 && uf.NumSets() == 1;
}

}  // namespace smst
