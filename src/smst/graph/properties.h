// Structural graph queries used by tests and the lower-bound experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "smst/graph/graph.h"

namespace smst {

// Hop distances from `source` to every node (unweighted BFS).
std::vector<std::uint32_t> BfsDistances(const WeightedGraph& g,
                                        NodeIndex source);

// Largest hop distance from `source` (its eccentricity).
std::uint32_t Eccentricity(const WeightedGraph& g, NodeIndex source);

// Exact hop diameter: max eccentricity over all nodes. O(n·m); intended
// for test/bench sizes. Observation 1 of the paper is checked with this.
std::uint32_t ExactDiameter(const WeightedGraph& g);

// Double-sweep lower bound on the diameter; cheap (2 BFS) and exact on
// trees. Used when n is too large for ExactDiameter.
std::uint32_t DoubleSweepDiameterLowerBound(const WeightedGraph& g);

// True iff `edge_set` (as a boolean mask over edges) forms a spanning tree
// of g: n-1 edges, acyclic, connects every node.
bool IsSpanningTree(const WeightedGraph& g, const std::vector<bool>& edge_set);

}  // namespace smst
