#include "smst/graph/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace smst {

namespace {

using EdgeList = std::vector<std::pair<NodeIndex, NodeIndex>>;

// Weights are sampled distinct from a poly-sized range so they fit in the
// O(log n)-bit messages the model allows.
std::vector<Weight> DrawWeights(std::size_t m, Xoshiro256& rng) {
  const std::uint64_t hi = std::max<std::uint64_t>(1u << 20, m) * 16;
  auto sorted = SampleDistinct(1, hi, m, rng);
  Shuffle(sorted, rng);
  return sorted;
}

WeightedGraph BuildFrom(std::size_t n, const EdgeList& edges, Xoshiro256& rng,
                        const GeneratorOptions& opt) {
  GraphBuilder b(n);
  auto weights = DrawWeights(edges.size(), rng);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    b.AddEdge(edges[i].first, edges[i].second, weights[i]);
  }
  const NodeId max_id = opt.max_id == 0 ? n : opt.max_id;
  if (max_id < n) throw std::invalid_argument("max_id must be >= n");
  if (opt.shuffle_ids || max_id != n) {
    b.SetIds(SampleIds(n, max_id, rng), max_id);
  }
  return std::move(b).Build();
}

// Connects the components of `edges` with minimum extra edges chosen at
// random representatives, so random families are always usable.
void PatchConnectivity(std::size_t n, EdgeList& edges, Xoshiro256& rng) {
  std::vector<NodeIndex> parent(n);
  for (NodeIndex v = 0; v < n; ++v) parent[v] = v;
  auto find = [&](NodeIndex v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (auto [u, v] : edges) parent[find(u)] = find(v);
  std::vector<NodeIndex> reps;
  for (NodeIndex v = 0; v < n; ++v) {
    if (find(v) == v) reps.push_back(v);
  }
  Shuffle(reps, rng);
  for (std::size_t i = 1; i < reps.size(); ++i) {
    edges.emplace_back(reps[i - 1], reps[i]);
    parent[find(reps[i - 1])] = find(reps[i]);
  }
}

}  // namespace

WeightedGraph MakePath(std::size_t n, Xoshiro256& rng,
                       const GeneratorOptions& opt) {
  EdgeList edges;
  for (NodeIndex v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return BuildFrom(n, edges, rng, opt);
}

WeightedGraph MakeRing(std::size_t n, Xoshiro256& rng,
                       const GeneratorOptions& opt) {
  if (n < 3) throw std::invalid_argument("ring needs n >= 3");
  EdgeList edges;
  for (NodeIndex v = 0; v < n; ++v) {
    edges.emplace_back(v, static_cast<NodeIndex>((v + 1) % n));
  }
  return BuildFrom(n, edges, rng, opt);
}

WeightedGraph MakeStar(std::size_t n, Xoshiro256& rng,
                       const GeneratorOptions& opt) {
  EdgeList edges;
  for (NodeIndex v = 1; v < n; ++v) edges.emplace_back(0, v);
  return BuildFrom(n, edges, rng, opt);
}

WeightedGraph MakeComplete(std::size_t n, Xoshiro256& rng,
                           const GeneratorOptions& opt) {
  EdgeList edges;
  for (NodeIndex u = 0; u < n; ++u) {
    for (NodeIndex v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return BuildFrom(n, edges, rng, opt);
}

WeightedGraph MakeBinaryTree(std::size_t n, Xoshiro256& rng,
                             const GeneratorOptions& opt) {
  EdgeList edges;
  for (NodeIndex v = 1; v < n; ++v) edges.emplace_back((v - 1) / 2, v);
  return BuildFrom(n, edges, rng, opt);
}

WeightedGraph MakeGrid(std::size_t rows, std::size_t cols, Xoshiro256& rng,
                       const GeneratorOptions& opt) {
  auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeIndex>(r * cols + c);
  };
  EdgeList edges;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(at(r, c), at(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(at(r, c), at(r + 1, c));
    }
  }
  return BuildFrom(rows * cols, edges, rng, opt);
}

WeightedGraph MakeBarbell(std::size_t n, Xoshiro256& rng,
                          const GeneratorOptions& opt) {
  if (n < 4) throw std::invalid_argument("barbell needs n >= 4");
  const std::size_t half = n / 2;
  EdgeList edges;
  auto clique = [&](NodeIndex lo, NodeIndex hi) {
    for (NodeIndex u = lo; u < hi; ++u) {
      for (NodeIndex v = u + 1; v < hi; ++v) edges.emplace_back(u, v);
    }
  };
  clique(0, static_cast<NodeIndex>(half));
  clique(static_cast<NodeIndex>(half), static_cast<NodeIndex>(n));
  edges.emplace_back(static_cast<NodeIndex>(half - 1),
                     static_cast<NodeIndex>(half));
  return BuildFrom(n, edges, rng, opt);
}

WeightedGraph MakeHypercube(std::size_t dimensions, Xoshiro256& rng,
                            const GeneratorOptions& opt) {
  if (dimensions == 0 || dimensions > 20) {
    throw std::invalid_argument("hypercube needs 1 <= d <= 20");
  }
  const std::size_t n = std::size_t{1} << dimensions;
  EdgeList edges;
  for (NodeIndex v = 0; v < n; ++v) {
    for (std::size_t d = 0; d < dimensions; ++d) {
      const NodeIndex u = v ^ (NodeIndex{1} << d);
      if (v < u) edges.emplace_back(v, u);
    }
  }
  return BuildFrom(n, edges, rng, opt);
}

WeightedGraph MakeCaterpillar(std::size_t spine, Xoshiro256& rng,
                              const GeneratorOptions& opt) {
  if (spine == 0) throw std::invalid_argument("caterpillar needs spine >= 1");
  EdgeList edges;
  for (NodeIndex v = 0; v + 1 < spine; ++v) edges.emplace_back(v, v + 1);
  for (NodeIndex v = 0; v < spine; ++v) {
    edges.emplace_back(v, static_cast<NodeIndex>(spine + v));
  }
  return BuildFrom(2 * spine, edges, rng, opt);
}

WeightedGraph MakeLollipop(std::size_t n, Xoshiro256& rng,
                           const GeneratorOptions& opt) {
  if (n < 4) throw std::invalid_argument("lollipop needs n >= 4");
  const std::size_t head = n / 2;
  EdgeList edges;
  for (NodeIndex u = 0; u < head; ++u) {
    for (NodeIndex v = u + 1; v < head; ++v) edges.emplace_back(u, v);
  }
  for (NodeIndex v = static_cast<NodeIndex>(head) - 1; v + 1 < n; ++v) {
    edges.emplace_back(v, v + 1);
  }
  return BuildFrom(n, edges, rng, opt);
}

WeightedGraph MakeErdosRenyi(std::size_t n, double p, Xoshiro256& rng,
                             const GeneratorOptions& opt) {
  EdgeList edges;
  for (NodeIndex u = 0; u < n; ++u) {
    for (NodeIndex v = u + 1; v < n; ++v) {
      if (rng.NextDouble() < p) edges.emplace_back(u, v);
    }
  }
  PatchConnectivity(n, edges, rng);
  return BuildFrom(n, edges, rng, opt);
}

WeightedGraph MakeRandomTree(std::size_t n, Xoshiro256& rng,
                             const GeneratorOptions& opt) {
  EdgeList edges;
  for (NodeIndex v = 1; v < n; ++v) {
    edges.emplace_back(static_cast<NodeIndex>(rng.NextBelow(v)), v);
  }
  return BuildFrom(n, edges, rng, opt);
}

WeightedGraph MakeRandomGeometric(std::size_t n, double radius,
                                  Xoshiro256& rng,
                                  const GeneratorOptions& opt) {
  std::vector<std::pair<double, double>> pts(n);
  for (auto& [x, y] : pts) {
    x = rng.NextDouble();
    y = rng.NextDouble();
  }
  const double r2 = radius * radius;
  EdgeList edges;
  for (NodeIndex u = 0; u < n; ++u) {
    for (NodeIndex v = u + 1; v < n; ++v) {
      const double dx = pts[u].first - pts[v].first;
      const double dy = pts[u].second - pts[v].second;
      if (dx * dx + dy * dy <= r2) edges.emplace_back(u, v);
    }
  }
  PatchConnectivity(n, edges, rng);
  return BuildFrom(n, edges, rng, opt);
}

WeightedGraph FromEdgeList(std::size_t n, const EdgeList& edges,
                           Xoshiro256& rng, const GeneratorOptions& opt) {
  return BuildFrom(n, edges, rng, opt);
}

}  // namespace smst
