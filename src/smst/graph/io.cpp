#include "smst/graph/io.h"

#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace smst {

namespace {

[[noreturn]] void Fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("edge list line " + std::to_string(line) +
                              ": " + what);
}

}  // namespace

WeightedGraph ReadEdgeList(std::istream& in) {
  std::optional<GraphBuilder> builder;
  std::size_t n = 0;
  NodeId max_id = 0;
  std::vector<NodeId> ids;
  bool has_ids = false;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;  // blank / comment-only

    if (first == "n") {
      if (builder.has_value()) Fail(line_no, "duplicate 'n' header");
      if (!(ls >> n) || n == 0) Fail(line_no, "bad node count");
      if (!(ls >> max_id)) max_id = n;
      if (max_id < n) Fail(line_no, "max-id below node count");
      builder.emplace(n);
      ids.assign(n, 0);
      continue;
    }
    if (!builder.has_value()) Fail(line_no, "edges before the 'n' header");
    if (first == "id") {
      NodeIndex v;
      NodeId id;
      if (!(ls >> v >> id) || v >= n) Fail(line_no, "bad id line");
      ids[v] = id;
      has_ids = true;
      continue;
    }
    // Edge line: u v w.
    NodeIndex u, v;
    Weight w;
    std::istringstream es(line);
    if (!(es >> u >> v >> w)) Fail(line_no, "expected 'u v weight'");
    try {
      builder->AddEdge(u, v, w);
    } catch (const std::invalid_argument& e) {
      Fail(line_no, e.what());
    }
  }
  if (!builder.has_value()) throw std::invalid_argument("empty edge list");
  if (has_ids) {
    for (std::size_t v = 0; v < n; ++v) {
      if (ids[v] == 0) {
        throw std::invalid_argument("node " + std::to_string(v) +
                                    " has no 'id' line");
      }
    }
    builder->SetIds(std::move(ids), max_id);
  }
  return std::move(*builder).Build();
}

WeightedGraph ReadEdgeListFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open '" + path + "'");
  return ReadEdgeList(in);
}

void WriteEdgeList(const WeightedGraph& g, std::ostream& out) {
  out << "# sleeping-mst edge list\n";
  out << "n " << g.NumNodes() << " " << g.MaxId() << "\n";
  for (NodeIndex v = 0; v < g.NumNodes(); ++v) {
    out << "id " << v << " " << g.IdOf(v) << "\n";
  }
  for (const Edge& e : g.Edges()) {
    out << e.u << " " << e.v << " " << e.weight << "\n";
  }
}

void WriteDot(const WeightedGraph& g, const std::vector<EdgeIndex>& tree_edges,
              std::ostream& out) {
  std::vector<bool> in_tree(g.NumEdges(), false);
  for (EdgeIndex e : tree_edges) in_tree[e] = true;
  out << "graph smst {\n  node [shape=circle fontsize=10];\n";
  for (NodeIndex v = 0; v < g.NumNodes(); ++v) {
    out << "  " << v << " [label=\"" << v << " (" << g.IdOf(v) << ")\"];\n";
  }
  for (EdgeIndex e = 0; e < g.NumEdges(); ++e) {
    const Edge& edge = g.GetEdge(e);
    out << "  " << edge.u << " -- " << edge.v << " [label=\"" << edge.weight
        << "\"";
    if (in_tree[e]) out << " penwidth=2.5 color=\"#2166ac\"";
    else out << " color=\"#bbbbbb\"";
    out << "];\n";
  }
  out << "}\n";
}

}  // namespace smst
