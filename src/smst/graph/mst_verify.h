// MST verification helpers shared by tests and benches.
#pragma once

#include <string>
#include <vector>

#include "smst/graph/graph.h"

namespace smst {

struct MstCheck {
  bool ok = false;
  std::string error;  // empty when ok
};

// Verifies that `candidate` (sorted edge indices) is exactly the unique
// MST of g: spanning tree + edge-for-edge equality against Kruskal.
MstCheck VerifyExactMst(const WeightedGraph& g,
                        const std::vector<EdgeIndex>& candidate);

// Independent certification without a reference run: spanning tree + the
// cycle property (every non-tree edge is the heaviest on the cycle it
// closes). With distinct weights this characterizes the MST.
MstCheck CertifyMstByCycleProperty(const WeightedGraph& g,
                                   const std::vector<EdgeIndex>& candidate);

}  // namespace smst
