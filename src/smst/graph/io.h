// Graph serialization: a plain edge-list text format for loading user
// networks (CLI `--input`), and Graphviz DOT export with optional MST
// highlighting for inspection.
//
// Edge-list format (whitespace-separated, '#' comments):
//   n <node-count> [<max-id>]
//   [id <node-index> <node-id>]...      (optional; default IDs 1..n)
//   <u> <v> <weight>                    (one line per edge, 0-based)
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "smst/graph/graph.h"

namespace smst {

// Parses the edge-list format; throws std::invalid_argument with a line
// number on malformed input (and propagates GraphBuilder's validation:
// distinct weights, connectivity, ...).
WeightedGraph ReadEdgeList(std::istream& in);
WeightedGraph ReadEdgeListFile(const std::string& path);

// Writes a graph in the same format (round-trips through ReadEdgeList).
void WriteEdgeList(const WeightedGraph& g, std::ostream& out);

// Graphviz DOT. Tree edges (if provided) are drawn bold/colored; node
// labels show "index (id)".
void WriteDot(const WeightedGraph& g, const std::vector<EdgeIndex>& tree_edges,
              std::ostream& out);

}  // namespace smst
