// Theorem 3 demo: the Omega(log n) awake lower bound on rings, made
// concrete. We build the proof's witness family (rings with random
// weights), show the two heaviest edges sit far apart — so deciding which
// one leaves the MST requires information to cross Omega(n) hops — and
// replay our algorithm's wake schedule to measure how slowly knowledge
// can spread per awake round (the Lemma 11 mechanism).
//
//   $ ./ring_lower_bound [n] [seed]
#include <cstdlib>
#include <iostream>

#include "smst/graph/generators.h"
#include "smst/lower_bounds/ring_experiment.h"
#include "smst/mst/randomized_mst.h"
#include "smst/util/table.h"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 169;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  smst::Xoshiro256 rng(seed);
  auto ring = smst::MakeRing(n, rng);
  const std::size_t sep = smst::TwoHeaviestEdgeSeparation(ring);
  std::cout << "ring of n=" << n << ": the two heaviest edges are " << sep
            << " hops apart (" << 100.0 * sep / n
            << "% of the ring) - any MST algorithm must carry their\n"
               "comparison across one of the two arcs between them.\n\n";

  smst::MstOptions opt;
  opt.seed = seed;
  opt.record_wake_times = true;
  auto run = smst::RunRandomizedMst(ring, opt);

  std::cout << "Randomized-MST on this ring: awake=" << run.stats.max_awake
            << " (floor from Theorem 3: " << smst::RingAwakeFloor(n)
            << "), rounds=" << run.stats.rounds << "\n\n";

  std::cout << "Lemma 11 replay - knowledge can cross at most one hop per\n"
               "simultaneously-awake edge, so after a wakes a 13^a-segment\n"
               "often still has an isolated vertex:\n\n";
  smst::Table t({"a", "segment length 13^a", "segments",
                 "fraction with isolated vertex"});
  std::size_t len = 1;
  for (std::size_t a = 0; len * 13 <= n && a <= 4; ++a) {
    t.AddRow({smst::Table::Num(static_cast<std::uint64_t>(a)),
              smst::Table::Num(static_cast<std::uint64_t>(len)),
              smst::Table::Num(static_cast<std::uint64_t>(n / len)),
              smst::Table::Num(
                  smst::SegmentIsolationFraction(n, run.wake_times, a), 3)});
    len *= 13;
  }
  t.Print(std::cout);
  std::cout << "\n(The proof lower-bounds this fraction by 1/2 for EVERY\n"
               "algorithm; chaining it up to a = log_13 n yields the\n"
               "Omega(log n) awake bound.)\n";
  return 0;
}
