// Bring your own network: build an explicit topology with GraphBuilder
// (your deployment's links and link costs, your node IDs), run both
// awake-optimal algorithms on it, and inspect the per-node bill.
//
// The topology here is a small campus: two wired clusters (cliques)
// bridged by a point-to-point link, plus a solar sensor string (path)
// hanging off one cluster. Weights are link costs (lower = preferred).
#include <iostream>

#include "smst/graph/graph.h"
#include "smst/graph/mst_verify.h"
#include "smst/mst/api.h"
#include "smst/util/table.h"

int main() {
  // 4-node cluster A (0..3), 4-node cluster B (4..7), bridge 3-4,
  // sensor string 7-8-9-10. Node IDs are "asset tags" in [1, 100].
  smst::GraphBuilder builder(11);
  smst::Weight w = 0;
  auto clique = [&](smst::NodeIndex lo, smst::NodeIndex hi) {
    for (smst::NodeIndex a = lo; a <= hi; ++a) {
      for (smst::NodeIndex b = a + 1; b <= hi; ++b) {
        builder.AddEdge(a, b, 10 + (w += 3));  // cheap intra-cluster
      }
    }
  };
  clique(0, 3);
  clique(4, 7);
  builder.AddEdge(3, 4, 500);                      // the expensive bridge
  builder.AddEdge(7, 8, 100).AddEdge(8, 9, 101).AddEdge(9, 10, 102);
  builder.SetIds({11, 17, 23, 31, 42, 47, 53, 61, 71, 83, 97}, 100);
  auto g = std::move(builder).Build();

  std::cout << "custom campus network: n=" << g.NumNodes() << " m="
            << g.NumEdges() << " IDs in [1, N=" << g.MaxId() << "]\n\n";

  smst::Table t({"algorithm", "tree weight", "awake", "rounds", "phases"});
  for (auto algo : {smst::MstAlgorithm::kRandomized,
                    smst::MstAlgorithm::kDeterministic,
                    smst::MstAlgorithm::kDeterministicLogStar}) {
    auto r = smst::ComputeMst(g, algo, {.seed = 2});
    auto check = smst::VerifyExactMst(g, r.tree_edges);
    if (!check.ok) {
      std::cerr << "verification failed: " << check.error << "\n";
      return 1;
    }
    t.AddRow({smst::MstAlgorithmName(algo),
              smst::Table::Num(g.TotalWeight(r.tree_edges)),
              smst::Table::Num(r.stats.max_awake),
              smst::Table::Num(r.stats.rounds), smst::Table::Num(r.phases)});
  }
  t.Print(std::cout);

  // The MST must keep the bridge (it is a cut edge) and drop the heavy
  // redundant clique links.
  auto r = smst::ComputeMst(g, smst::MstAlgorithm::kRandomized, {.seed = 2});
  bool bridge_in = false;
  for (auto e : r.tree_edges) {
    const auto& edge = g.GetEdge(e);
    bridge_in |= (edge.u == 3 && edge.v == 4);
  }
  std::cout << "\nbridge 3-4 in the MST (it must be: cut edge): "
            << (bridge_in ? "yes" : "NO") << "\n";
  return bridge_in ? 0 : 1;
}
