// The paper's motivating scenario (§1): a battery-powered wireless sensor
// field needs an MST for energy-efficient broadcast. Nodes pay for every
// round they are awake (radio on, even if just listening); sleeping is
// nearly free. We build a random geometric "sensor field", compute the
// MST with the sleeping algorithm and with the traditional always-awake
// GHS, and compare the energy bills — then broadcast over the MST.
//
//   $ ./sensor_network [n] [seed]
#include <cstdlib>
#include <iostream>

#include "smst/apps/tree_ops.h"
#include "smst/energy/energy.h"
#include "smst/graph/generators.h"
#include "smst/graph/mst_verify.h"
#include "smst/graph/properties.h"
#include "smst/mst/api.h"
#include "smst/util/table.h"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  smst::Xoshiro256 rng(seed);
  auto field = smst::MakeRandomGeometric(n, 0.16, rng);
  std::cout << "sensor field: " << field.NumNodes() << " sensors, "
            << field.NumEdges() << " radio links, hop diameter "
            << smst::ExactDiameter(field) << "\n\n";

  auto sleeping = smst::ComputeMst(field, smst::MstAlgorithm::kRandomized,
                                   {.seed = seed});
  auto traditional = smst::ComputeMst(field, smst::MstAlgorithm::kGhsBaseline,
                                      {.seed = seed});
  if (!smst::VerifyExactMst(field, sleeping.tree_edges).ok) {
    std::cerr << "MST verification failed\n";
    return 1;
  }

  // 802.15.4-class radio costs; the GHS baseline has every node awake
  // every round by definition of the traditional model.
  const auto model = smst::EnergyModel::SensorMote();
  auto baseline_metrics = traditional.node_metrics;
  for (auto& m : baseline_metrics) m.awake_rounds = traditional.stats.rounds;
  const auto bill_sleeping =
      smst::BillRun(sleeping.stats, sleeping.node_metrics, model);
  const auto bill_traditional =
      smst::BillRun(traditional.stats, baseline_metrics, model);

  smst::Table t({"algorithm", "awake rounds (max)", "rounds",
                 "worst node (uJ)", "battery @1J lasts (runs)"});
  struct Row {
    const char* name;
    const smst::MstRunResult* r;
    const smst::EnergyReport* bill;
  };
  for (Row row :
       {Row{"sleeping Randomized-MST", &sleeping, &bill_sleeping},
        Row{"always-awake GHS (traditional)", &traditional,
            &bill_traditional}}) {
    t.AddRow({row.name, smst::Table::Num(row.r->stats.max_awake),
              smst::Table::Num(row.r->stats.rounds),
              smst::Table::Num(row.bill->max_per_node, 1),
              smst::Table::Num(smst::RunsPerBattery(*row.bill, 1.0), 1)});
  }
  t.Print(std::cout);
  std::cout << "\nsleeping-model energy saving: "
            << bill_traditional.max_per_node / bill_sleeping.max_per_node
            << "x at the worst-case node on this field\n\n";

  // Use the MST: the final LDT supports the energy-efficient broadcast
  // and aggregation the introduction motivates — still in the sleeping
  // model, still O(1) awake rounds per operation.
  smst::TreeOpRequest alert;
  alert.kind = smst::TreeOpRequest::Kind::kBroadcast;
  alert.broadcast_value = 0xA1E57;  // "alert" payload from the sink
  smst::TreeOpRequest battery_min;
  battery_min.kind = smst::TreeOpRequest::Kind::kAggregateMin;
  smst::Xoshiro256 sensor_rng(seed + 1);
  for (std::size_t v = 0; v < n; ++v) {
    battery_min.inputs.push_back(sensor_rng.NextInRange(200, 1000));
  }
  auto ops = smst::RunTreeOps(field, sleeping, {alert, battery_min});
  std::size_t reached = 0;
  for (auto v : ops.outcomes[0].per_node) reached += v == 0xA1E57 ? 1 : 0;
  std::cout << "over the finished MST, still sleeping-model:\n"
            << "  alert broadcast reached " << reached << "/" << n
            << " sensors\n"
            << "  lowest battery reported to the sink: "
            << ops.outcomes[1].root_value << " mV\n"
            << "  awake cost of both operations: " << ops.stats.max_awake
            << " rounds per sensor\n";
  return reached == n ? 0 : 1;
}
